//! The direct-solver advantage the paper leads with: once the
//! factorization is built, each additional right-hand side costs almost
//! nothing — compare against running CG from scratch per RHS.
//!
//! ```sh
//! cargo run --release --example laplace_multirhs
//! ```

use srsf::iterative::cg::cg;
use srsf::prelude::*;
use std::time::Instant;

fn main() {
    let side = 64;
    let n_rhs = 16;
    let grid = UnitGrid::new(side);
    let kernel = LaplaceKernel::new(&grid);
    let pts = grid.points();
    let fast = FastKernelOp::laplace(&kernel, &grid);

    // Direct: one factorization, then n_rhs cheap solves.
    let t0 = Instant::now();
    let f = Solver::builder(&kernel, &pts)
        .tol(1e-9)
        .build()
        .expect("factorization");
    let tfact = t0.elapsed().as_secs_f64();

    // All right-hand sides as one n x n_rhs block: the solve phase runs
    // level-3 (GEMM/blocked-TRSM per record) instead of n_rhs separate
    // vector sweeps.
    let mut bmat = Mat::zeros(grid.n(), n_rhs);
    for seed in 0..n_rhs {
        bmat.col_mut(seed)
            .copy_from_slice(&random_vector::<f64>(grid.n(), seed as u64));
    }
    let t1 = Instant::now();
    let xmat = f.solve_mat(&bmat);
    let tsolves = t1.elapsed().as_secs_f64();
    let mut direct_res = 0.0f64;
    for j in 0..n_rhs {
        direct_res = direct_res.max(relative_residual(&fast, xmat.col(j), bmat.col(j)));
    }

    // Iterative baseline: CG per RHS on the ill-conditioned first-kind
    // system (paper: ~5 sqrt(N) iterations without preconditioning).
    let t2 = Instant::now();
    let mut cg_iters = 0;
    let mut cg_res = 0.0f64;
    for seed in 0..n_rhs {
        let b = random_vector::<f64>(grid.n(), seed as u64);
        let r = cg(&fast, &b, 1e-8, 5000);
        cg_iters += r.iterations;
        cg_res = cg_res.max(r.relres);
    }
    let tcg = t2.elapsed().as_secs_f64();

    println!("N = {}, {} right-hand sides", grid.n(), n_rhs);
    println!("direct:   tfact = {tfact:.2}s, {n_rhs} solves = {tsolves:.3}s, worst relres {direct_res:.1e}");
    println!("cg:       {n_rhs} solves = {tcg:.2}s ({} iters total, ~{} per RHS), worst relres {cg_res:.1e}",
        cg_iters, cg_iters / n_rhs);
    println!(
        "amortized direct cost per extra RHS: {:.4}s vs CG {:.3}s",
        tsolves / n_rhs as f64,
        tcg / n_rhs as f64
    );
}
