//! The distributed-memory factorization on a process grid: interior/
//! boundary phases, 4-color rounds, neighbor-only messages — with the
//! measured communication counters checked against the paper's §IV
//! bounds, over either transport backend.
//!
//! ```sh
//! # Default: 4 ranks as threads (in-process transport), 64x64 grid.
//! cargo run --release --example distributed_demo
//!
//! # 4 ranks as real OS processes over localhost TCP; also re-runs the
//! # factorization in-process and checks the two backends produced
//! # bit-identical solutions and identical counters.
//! cargo run --release --example distributed_demo -- --transport tcp
//!
//! # Resident serving: factor once, keep the rank world alive, amortize
//! # k solves against it — records never leave their ranks, and the
//! # per-solve communication is measured separately from factorization.
//! cargo run --release --example distributed_demo -- --resident --solve-reps 5
//!
//! # Vary the grid and the process count (p must be a power of four).
//! cargo run --release --example distributed_demo -- --p 16 --side 128
//!
//! # Tracing and metrics: write a Chrome/Perfetto trace of the traced
//! # run, print the per-phase profile table, and (with --resident) the
//! # serve-metrics snapshot: latency histogram + per-rank gauges.
//! cargo run --release --example distributed_demo -- --trace-out trace.json
//! cargo run --release --example distributed_demo -- --resident --metrics
//!
//! # Chaos: checkpoint the factorization, kill a worker mid-serve with a
//! # seeded fault plan, watch the typed failure, then restore the world
//! # from the snapshots and verify a bit-identical re-solve.
//! cargo run --release --example distributed_demo -- --transport tcp --chaos
//! ```

use srsf::prelude::*;
use srsf::runtime::NetworkModel;
use std::time::Instant;

struct Args {
    side: usize,
    p: usize,
    transport: Transport,
    resident: bool,
    solve_reps: usize,
    chaos: bool,
    trace_out: Option<String>,
    metrics: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        side: 64,
        p: 4,
        transport: Transport::InProc,
        resident: false,
        solve_reps: 5,
        chaos: false,
        trace_out: None,
        metrics: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |what: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{what} expects a value; see --help"))
        };
        match flag.as_str() {
            "--side" => args.side = value("--side").parse().expect("--side N"),
            "--p" => args.p = value("--p").parse().expect("--p N"),
            "--transport" => {
                args.transport = value("--transport")
                    .parse()
                    .unwrap_or_else(|e| panic!("{e}"))
            }
            "--resident" => args.resident = true,
            "--chaos" => args.chaos = true,
            "--trace-out" => args.trace_out = Some(value("--trace-out")),
            "--metrics" => args.metrics = true,
            "--solve-reps" => {
                // At least one solve: the per-solve counter math divides
                // by the rep count.
                args.solve_reps = value("--solve-reps")
                    .parse::<usize>()
                    .expect("--solve-reps K")
                    .max(1)
            }
            "--help" | "-h" => {
                println!(
                    "usage: distributed_demo [--side N] [--p N] [--transport inproc|tcp]\n\
                     \x20                       [--resident [--solve-reps K]] [--chaos]\n\
                     \x20                       [--trace-out trace.json] [--metrics]\n\
                     defaults: --side 64 --p 4 --transport inproc --solve-reps 5"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other:?}; see --help"),
        }
    }
    args
}

/// Chaos demo: factor with per-rank checkpoints under a seeded fault
/// plan that kills a worker rank at its first solve barrier, show the
/// typed `RankFailed` failure (bounded by the receive timeout, no hang),
/// drop the degraded world cleanly, then restore a fresh resident world
/// from the snapshots and verify the re-solve is bit-identical to a
/// fault-free reference.
fn run_chaos(side: usize, p: usize, transport: Transport) {
    assert!(
        p >= 4,
        "--chaos needs --p >= 4: a worker rank dies while the rest survive"
    );
    let victim = p - 1; // a worker rank; rank 0 must survive to report
                        // Fixed location: on the TCP transport the worker processes
                        // re-execute this binary and must resolve the same directory.
    let dir = std::env::temp_dir().join("srsf_demo_chaos_ckpt");
    let plan = FaultPlan::seeded(29).with_crash(victim as u32, 1);

    let grid = UnitGrid::new(side);
    let kernel = LaplaceKernel::new(&grid);
    let pts = grid.points();
    let b = random_vector::<f64>(grid.n(), 11);

    println!(
        "chaos: N = {}, p = {p} ranks, transport = {transport}",
        grid.n()
    );
    println!("chaos: checkpointing every rank into {}", dir.display());
    println!("chaos: seeded plan crashes rank {victim} at its first solve barrier");
    // The factor sweep is barrier-free, so the build completes (and the
    // snapshots are written) before the injected crash can fire.
    let doomed = Solver::builder(&kernel, &pts)
        .opts(
            FactorOpts::default()
                .with_tol(1e-6)
                .with_recv_timeout(std::time::Duration::from_secs(5)),
        )
        .driver(Driver::distributed(p))
        .transport(transport.with_faults(plan))
        .resident(true)
        .checkpoint_dir(&dir)
        .build()
        .expect("chaos factorization (the crash fires mid-serve, not mid-factor)");

    println!("chaos: solving — rank {victim}'s crash report follows on stderr");
    let t0 = Instant::now();
    match doomed.try_solve(&b) {
        Ok(_) => panic!("the injected crash should have failed this solve"),
        Err(e) => {
            assert!(
                matches!(e, SrsfError::RankFailed { .. }),
                "expected RankFailed, got {e}"
            );
            println!(
                "chaos: typed failure after {:.2?}: SrsfError::RankFailed ({e})",
                t0.elapsed()
            );
        }
    }
    drop(doomed);
    println!("chaos: degraded world dropped; surviving workers reaped");

    let restored =
        Solver::restore_resident(&pts, &dir, Transport::InProc).expect("restore from snapshots");
    println!("restore: resident world rebuilt from the snapshots (no re-factorization)");
    let x = restored.try_solve(&b).expect("restored solve");

    let gathered = Solver::builder(&kernel, &pts)
        .tol(1e-6)
        .driver(Driver::distributed(p))
        .build()
        .expect("fault-free reference factorization");
    let want = gathered.solve_mat(&Mat::from_vec(b.len(), 1, b.clone()));
    assert_eq!(
        x,
        want.as_slice().to_vec(),
        "restored solve must match the fault-free reference bit for bit"
    );
    println!("restore: re-solve bit-identical to the fault-free gathered reference");
}

/// Resident-service demo: factor once on a persistent rank world, serve
/// `reps` solves in place, report the amortization and the per-solve
/// communication, and check the served results against the gathered
/// factorization bit for bit.
fn run_resident(
    side: usize,
    p: usize,
    transport: Transport,
    reps: usize,
    trace_out: Option<&str>,
    metrics: bool,
) {
    let grid = UnitGrid::new(side);
    let kernel = LaplaceKernel::new(&grid);
    let pts = grid.points();
    let b = random_vector::<f64>(grid.n(), 11);

    let t0 = Instant::now();
    // On the TCP transport this call spawns `p - 1` worker processes that
    // stay alive — parked in their serve loops — until the solver is shut
    // down; everything below runs in the launching process only.
    let f = Solver::builder(&kernel, &pts)
        .tol(1e-6)
        .driver(Driver::distributed(p))
        .transport(transport)
        .resident(true)
        .trace(trace_out.is_some())
        .build()
        .expect("resident factorization");
    let t_factor = t0.elapsed().as_secs_f64();

    println!(
        "resident service: N = {}, p = {p} ranks, transport = {transport}",
        grid.n()
    );
    let records = f.records_per_rank().expect("resident record probe");
    println!("\nper-rank residency (records never leave their ranks):");
    println!("{:>5} {:>10} {:>14}", "rank", "records", "factor bytes");
    let bytes = f.memory_bytes_per_rank().expect("per-rank bytes");
    for (r, (n, bb)) in records.iter().zip(bytes.iter()).enumerate() {
        println!("{r:>5} {n:>10} {bb:>14}");
    }
    println!(
        "rank 0 holds {} of {} records (top block {} resident on rank 0)",
        records[0],
        f.n_records(),
        f.top_size()
    );

    // Amortized serving: k solves against the one resident factorization,
    // with exact per-solve counters from bracketing probes.
    let before = f.resident_comm_probe().expect("probe");
    let t1 = Instant::now();
    let mut x = Vec::new();
    for _ in 0..reps {
        x = f.solve(&b);
    }
    let t_solves = t1.elapsed().as_secs_f64();
    let after = f.resident_comm_probe().expect("probe");

    let fast = FastKernelOp::laplace(&kernel, &grid);
    println!(
        "\n{reps} resident solves in {:.3}s ({:.3}s each) after a {:.3}s factorization",
        t_solves,
        t_solves / reps as f64,
        t_factor
    );
    println!("relres = {:.3e}", relative_residual(&fast, &x, &b));
    let max_msgs = (0..p)
        .map(|r| (after.per_rank[r].msgs_sent - before.per_rank[r].msgs_sent) / reps as u64)
        .max()
        .unwrap();
    let max_words = (0..p)
        .map(|r| (after.per_rank[r].words_sent - before.per_rank[r].words_sent) / reps as u64)
        .max()
        .unwrap();
    let sqrt_np = (grid.n() as f64 / p as f64).sqrt();
    println!(
        "per-solve communication: max msgs = {max_msgs}, max words = {max_words} \
         ({:.1} x sqrt(N/p) = {:.0})",
        max_words as f64 / sqrt_np,
        sqrt_np
    );

    // The served results are the gathered factorization's blocked sweep,
    // bit for bit — residency changes where records live, not the answer.
    let gathered = Solver::builder(&kernel, &pts)
        .tol(1e-6)
        .driver(Driver::distributed(p))
        .build()
        .expect("gathered comparison factorization");
    let want = gathered.solve_mat(&Mat::from_vec(b.len(), 1, b.clone()));
    assert_eq!(
        x,
        want.as_slice().to_vec(),
        "resident solve must match the gathered blocked sweep bit for bit"
    );
    println!("\nresident vs gathered: solutions bit-identical across {reps} served solves");

    if metrics {
        let snap = f.metrics().expect("resident driver exposes metrics");
        println!("\nserve metrics:\n{}", snap.render());
        print_compression(f.stats());
    }
    if let Some(path) = trace_out {
        // Drains every rank's ring buffer over the serve protocol; the
        // report covers the factorization and all solves since startup.
        let reports = f.trace_reports();
        std::fs::write(path, srsf::trace::export::chrome_trace_json(&reports))
            .expect("write trace file");
        println!("\n{}", srsf::trace::export::profile_table(&reports));
        println!(
            "trace: wrote Chrome/Perfetto JSON for {} ranks to {path}",
            reports.len()
        );
    }

    let stats = f.shutdown().expect("resident shutdown");
    assert_eq!(stats.per_rank.len(), p);
    println!("resident shutdown: clean (no live workers)");
}

/// Compression observability: the per-level skeleton rank table (Fig. 9
/// of the paper) plus the sketched path's counters — how often the
/// a-posteriori check forced a retry or a CPQR fallback, and how many
/// sketch blocks went through the FFT fast path vs dense GEMMs.
fn print_compression(stats: &srsf::prelude::FactorStats) {
    println!("\ncompression (all ranks):");
    println!("{:>7} {:>8} {:>10}", "level", "boxes", "avg rank");
    for (level, avg) in stats.rank_table() {
        let boxes = stats.ranks[&level].0;
        println!("{level:>7} {boxes:>8} {avg:>10.1}");
    }
    let c = &stats.compression;
    println!(
        "sketch retries = {}, CPQR fallbacks = {}, sketch blocks: {} FFT / {} dense",
        c.sketch_retries, c.sketch_fallbacks, c.fft_block_applies, c.dense_block_applies
    );
}

fn main() {
    let Args {
        side,
        p,
        transport,
        resident,
        solve_reps,
        chaos,
        trace_out,
        metrics,
    } = parse_args();
    if chaos {
        return run_chaos(side, p, transport);
    }
    if resident {
        return run_resident(
            side,
            p,
            transport,
            solve_reps,
            trace_out.as_deref(),
            metrics,
        );
    }
    let grid = UnitGrid::new(side);
    let kernel = LaplaceKernel::new(&grid);
    let pts = grid.points();

    let b = random_vector::<f64>(grid.n(), 11);
    // On the TCP transport this call spawns `p - 1` worker processes
    // that re-execute this binary up to this same call; everything
    // below runs in the launching process only.
    let (f, x) = Solver::builder(&kernel, &pts)
        .tol(1e-6)
        .driver(Driver::distributed(p))
        .transport(transport)
        .trace(trace_out.is_some())
        .build_with_solution(&b)
        .expect("dist factorization");
    let stats = f
        .comm_stats()
        .expect("distributed driver records comm stats")
        .clone();

    let fast = FastKernelOp::laplace(&kernel, &grid);
    println!(
        "N = {}, p = {p} ranks, transport = {transport} ({})",
        grid.n(),
        match transport.base() {
            BaseTransport::InProc => "ranks as threads of this process",
            BaseTransport::Tcp => "every rank a real OS process on localhost",
        }
    );
    println!(
        "distributed solve relres = {:.3e}",
        relative_residual(&fast, &x, &b)
    );

    println!("\nper-rank communication:");
    println!(
        "{:>5} {:>10} {:>12} {:>12}",
        "rank", "messages", "words", "compute[s]"
    );
    for (r, s) in stats.per_rank.iter().enumerate() {
        println!(
            "{:>5} {:>10} {:>12} {:>12.3}",
            r, s.msgs_sent, s.words_sent, s.compute_s
        );
    }
    let sqrt_np = (grid.n() as f64 / p as f64).sqrt();
    println!("\npaper bound (Eq. 13): words = O(sqrt(N/p) + log p) = O({sqrt_np:.0})");
    println!(
        "measured max words = {} ({:.1} x sqrt(N/p))",
        stats.max_words(),
        stats.max_words() as f64 / sqrt_np
    );
    println!(
        "modeled critical path: intra-node {:.3}s, inter-node {:.3}s",
        stats.critical_path_s(&NetworkModel::intra_node()),
        stats.critical_path_s(&NetworkModel::inter_node())
    );
    println!(
        "factorization records gathered on rank 0: {}",
        f.n_records()
    );
    if metrics {
        println!("\nserve metrics are recorded by the resident driver; re-run with --resident");
        print_compression(f.stats());
    }
    if let Some(path) = &trace_out {
        // Per-rank reports were gathered with the factorization itself.
        let reports = f.trace_reports();
        std::fs::write(path, srsf::trace::export::chrome_trace_json(&reports))
            .expect("write trace file");
        println!("\n{}", srsf::trace::export::profile_table(&reports));
        println!(
            "trace: wrote Chrome/Perfetto JSON for {} ranks to {path}",
            reports.len()
        );
    }

    // On the TCP backend, re-run in-process and check the §IV counters
    // are a property of the algorithm, not of the fabric carrying it.
    if transport.base() == BaseTransport::InProc {
        return;
    }
    let (f_in, x_in) = Solver::builder(&kernel, &pts)
        .tol(1e-6)
        .driver(Driver::distributed(p))
        .build_with_solution(&b)
        .expect("inproc comparison factorization");
    let in_stats = f_in.comm_stats().expect("inproc comm stats");
    assert_eq!(x, x_in, "solutions must be bit-identical across backends");
    for (r, (a, c)) in stats
        .per_rank
        .iter()
        .zip(in_stats.per_rank.iter())
        .enumerate()
    {
        assert_eq!(
            (a.msgs_sent, a.words_sent),
            (c.msgs_sent, c.words_sent),
            "rank {r} counters differ across backends"
        );
    }
    println!(
        "\nbackend equivalence: tcp vs inproc solutions bit-identical, \
         per-rank message/word counters identical across {p} ranks"
    );
}
