//! The distributed-memory factorization on a process grid: interior/
//! boundary phases, 4-color rounds, neighbor-only messages — with the
//! measured communication counters checked against the paper's §IV
//! bounds, over either transport backend.
//!
//! ```sh
//! # Default: 4 ranks as threads (in-process transport), 64x64 grid.
//! cargo run --release --example distributed_demo
//!
//! # 4 ranks as real OS processes over localhost TCP; also re-runs the
//! # factorization in-process and checks the two backends produced
//! # bit-identical solutions and identical counters.
//! cargo run --release --example distributed_demo -- --transport tcp
//!
//! # Vary the grid and the process count (p must be a power of four).
//! cargo run --release --example distributed_demo -- --p 16 --side 128
//! ```

use srsf::prelude::*;
use srsf::runtime::NetworkModel;

struct Args {
    side: usize,
    p: usize,
    transport: Transport,
}

fn parse_args() -> Args {
    let mut args = Args {
        side: 64,
        p: 4,
        transport: Transport::InProc,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |what: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{what} expects a value; see --help"))
        };
        match flag.as_str() {
            "--side" => args.side = value("--side").parse().expect("--side N"),
            "--p" => args.p = value("--p").parse().expect("--p N"),
            "--transport" => {
                args.transport = value("--transport")
                    .parse()
                    .unwrap_or_else(|e| panic!("{e}"))
            }
            "--help" | "-h" => {
                println!(
                    "usage: distributed_demo [--side N] [--p N] [--transport inproc|tcp]\n\
                     defaults: --side 64 --p 4 --transport inproc"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other:?}; see --help"),
        }
    }
    args
}

fn main() {
    let Args { side, p, transport } = parse_args();
    let grid = UnitGrid::new(side);
    let kernel = LaplaceKernel::new(&grid);
    let pts = grid.points();

    let b = random_vector::<f64>(grid.n(), 11);
    // On the TCP transport this call spawns `p - 1` worker processes
    // that re-execute this binary up to this same call; everything
    // below runs in the launching process only.
    let (f, x) = Solver::builder(&kernel, &pts)
        .tol(1e-6)
        .driver(Driver::distributed(p))
        .transport(transport)
        .build_with_solution(&b)
        .expect("dist factorization");
    let stats = f
        .comm_stats()
        .expect("distributed driver records comm stats")
        .clone();

    let fast = FastKernelOp::laplace(&kernel, &grid);
    println!(
        "N = {}, p = {p} ranks, transport = {transport} ({})",
        grid.n(),
        match transport {
            Transport::InProc => "ranks as threads of this process",
            Transport::Tcp => "every rank a real OS process on localhost",
        }
    );
    println!(
        "distributed solve relres = {:.3e}",
        relative_residual(&fast, &x, &b)
    );

    println!("\nper-rank communication:");
    println!(
        "{:>5} {:>10} {:>12} {:>12}",
        "rank", "messages", "words", "compute[s]"
    );
    for (r, s) in stats.per_rank.iter().enumerate() {
        println!(
            "{:>5} {:>10} {:>12} {:>12.3}",
            r, s.msgs_sent, s.words_sent, s.compute_s
        );
    }
    let sqrt_np = (grid.n() as f64 / p as f64).sqrt();
    println!("\npaper bound (Eq. 13): words = O(sqrt(N/p) + log p) = O({sqrt_np:.0})");
    println!(
        "measured max words = {} ({:.1} x sqrt(N/p))",
        stats.max_words(),
        stats.max_words() as f64 / sqrt_np
    );
    println!(
        "modeled critical path: intra-node {:.3}s, inter-node {:.3}s",
        stats.critical_path_s(&NetworkModel::intra_node()),
        stats.critical_path_s(&NetworkModel::inter_node())
    );
    println!(
        "factorization records gathered on rank 0: {}",
        f.n_records()
    );

    // On the TCP backend, re-run in-process and check the §IV counters
    // are a property of the algorithm, not of the fabric carrying it.
    if transport == Transport::InProc {
        return;
    }
    let (f_in, x_in) = Solver::builder(&kernel, &pts)
        .tol(1e-6)
        .driver(Driver::distributed(p))
        .build_with_solution(&b)
        .expect("inproc comparison factorization");
    let in_stats = f_in.comm_stats().expect("inproc comm stats");
    assert_eq!(x, x_in, "solutions must be bit-identical across backends");
    for (r, (a, c)) in stats
        .per_rank
        .iter()
        .zip(in_stats.per_rank.iter())
        .enumerate()
    {
        assert_eq!(
            (a.msgs_sent, a.words_sent),
            (c.msgs_sent, c.words_sent),
            "rank {r} counters differ across backends"
        );
    }
    println!(
        "\nbackend equivalence: tcp vs inproc solutions bit-identical, \
         per-rank message/word counters identical across {p} ranks"
    );
}
