//! The distributed-memory factorization on a simulated 2x2 process grid:
//! interior/boundary phases, 4-color rounds, neighbor-only messages — with
//! the measured communication counters checked against the paper's §IV
//! bounds.
//!
//! ```sh
//! cargo run --release --example distributed_demo
//! ```

use srsf::prelude::*;
use srsf::runtime::NetworkModel;

fn main() {
    let side = 64;
    let p = 4;
    let grid = UnitGrid::new(side);
    let kernel = LaplaceKernel::new(&grid);
    let pts = grid.points();

    let b = random_vector::<f64>(grid.n(), 11);
    let (f, x) = Solver::builder(&kernel, &pts)
        .tol(1e-6)
        .driver(Driver::distributed(p))
        .build_with_solution(&b)
        .expect("dist factorization");
    let stats = f
        .comm_stats()
        .expect("distributed driver records comm stats")
        .clone();

    let fast = FastKernelOp::laplace(&kernel, &grid);
    println!("N = {}, p = {p} simulated ranks", grid.n());
    println!(
        "distributed solve relres = {:.3e}",
        relative_residual(&fast, &x, &b)
    );

    println!("\nper-rank communication:");
    println!(
        "{:>5} {:>10} {:>12} {:>12}",
        "rank", "messages", "words", "compute[s]"
    );
    for (r, s) in stats.per_rank.iter().enumerate() {
        println!(
            "{:>5} {:>10} {:>12} {:>12.3}",
            r, s.msgs_sent, s.words_sent, s.compute_s
        );
    }
    let sqrt_np = (grid.n() as f64 / p as f64).sqrt();
    println!("\npaper bound (Eq. 13): words = O(sqrt(N/p) + log p) = O({sqrt_np:.0})");
    println!(
        "measured max words = {} ({:.1} x sqrt(N/p))",
        stats.max_words(),
        stats.max_words() as f64 / sqrt_np
    );
    println!(
        "modeled critical path: intra-node {:.3}s, inter-node {:.3}s",
        stats.critical_path_s(&NetworkModel::intra_node()),
        stats.critical_path_s(&NetworkModel::inter_node())
    );
    println!(
        "factorization records gathered on rank 0: {}",
        f.n_records()
    );
}
