//! Quickstart: factor and solve a 2-D Laplace volume integral equation.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use srsf::prelude::*;

fn main() {
    // 64x64 collocation grid on the unit square (N = 4096 unknowns).
    let grid = UnitGrid::new(64);
    let kernel = LaplaceKernel::new(&grid);
    let pts = grid.points();

    // Factor A ~= (compressed inverse) at tolerance 1e-6.
    let t0 = std::time::Instant::now();
    let f = Solver::builder(&kernel, &pts)
        .tol(1e-6)
        .driver(Driver::Sequential)
        .build()
        .expect("factorization");
    println!(
        "factored N = {} in {:.2}s ({} box eliminations, top block {}, {:.1} MB)",
        f.n(),
        t0.elapsed().as_secs_f64(),
        f.n_records(),
        f.top_size(),
        f.memory_bytes() as f64 / 1e6
    );

    // Solve against a random right-hand side.
    let b = random_vector::<f64>(grid.n(), 7);
    let t1 = std::time::Instant::now();
    let x = f.solve(&b);
    println!("solved one RHS in {:.4}s", t1.elapsed().as_secs_f64());

    // Verify with the O(N log N) FFT operator.
    let a = FastKernelOp::laplace(&kernel, &grid);
    let relres = relative_residual(&a, &x, &b);
    println!("relative residual ||Ax - b||/||b|| = {relres:.3e}");
    assert!(relres < 1e-4);

    // Skeleton ranks per level (the structure behind the O(N) cost).
    println!("\naverage skeleton rank per level:");
    for (level, rank) in f.stats().rank_table() {
        println!("  level {level}: {rank:.1}");
    }
}
