//! The factorization as a preconditioner (the paper's Tables III and V):
//! a loose-tolerance factorization turns ill-conditioned systems into a
//! handful of Krylov iterations.
//!
//! ```sh
//! cargo run --release --example preconditioning
//! ```

use srsf::iterative::cg::cg;
use srsf::iterative::gmres::{gmres, GmresOpts};
use srsf::prelude::*;

fn main() {
    // --- Laplace: first-kind, condition number ~ O(N) --------------------
    let side = 64;
    let grid = UnitGrid::new(side);
    let kernel = LaplaceKernel::new(&grid);
    let pts = grid.points();
    let fast = FastKernelOp::laplace(&kernel, &grid);
    let b = random_vector::<f64>(grid.n(), 3);

    let plain = cg(&fast, &b, 1e-12, 10_000);
    println!(
        "Laplace N = {}: unpreconditioned CG: {} iterations (relres {:.1e})",
        grid.n(),
        plain.iterations,
        plain.relres
    );
    // One preconditioner per tolerance — each built by a *different*
    // driver, all consumed through the same `Factorized` interface.
    let drivers = [
        Driver::Sequential,
        Driver::colored(2),
        Driver::distributed(4),
    ];
    for (tol, driver) in [1e-3, 1e-6, 1e-9].into_iter().zip(drivers) {
        let f = Solver::builder(&kernel, &pts)
            .tol(tol)
            .driver(driver)
            .build()
            .unwrap();
        let res = pcg_factorized(&fast, &f, &b, 1e-12, 200);
        println!(
            "  eps = {tol:.0e} preconditioner ({driver:?}): {} PCG iterations (relres {:.1e})",
            res.iterations, res.relres
        );
    }

    // --- Helmholtz: indefinite complex system ------------------------------
    let kappa = 25.0;
    let hk = HelmholtzKernel::new(&grid, kappa);
    let hfast = FastKernelOp::helmholtz(&hk, &grid);
    let hb = random_vector::<c64>(grid.n(), 5);
    let un = gmres(
        &hfast,
        None,
        &hb,
        &GmresOpts {
            restart: 20,
            tol: 1e-12,
            max_iters: 2000,
        },
    );
    println!(
        "\nHelmholtz kappa = {kappa}: unpreconditioned GMRES(20): {} iterations{}",
        un.iterations,
        if un.converged { "" } else { " (cap hit)" }
    );
    let hf = Solver::builder(&hk, &pts).tol(1e-6).build().unwrap();
    let pre = gmres_factorized(
        &hfast,
        &hf,
        &hb,
        &GmresOpts {
            restart: 30,
            tol: 1e-12,
            max_iters: 200,
        },
    );
    println!(
        "  eps = 1e-6 preconditioner: {} GMRES iterations (relres {:.1e})",
        pre.iterations, pre.relres
    );
}
