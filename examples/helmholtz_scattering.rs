//! Lippmann–Schwinger scattering (the paper's Figure 7 workload): a plane
//! wave hits a Gaussian-bump scatterer; the induced density is solved with
//! the direct factorization and the total field is evaluated on the grid.
//!
//! ```sh
//! cargo run --release --example helmholtz_scattering
//! ```

use srsf::kernels::field::{
    lippmann_schwinger_rhs, plane_wave, sigma_from_mu, total_field_on_grid,
};
use srsf::prelude::*;

fn main() {
    let side = 64;
    let kappa = 25.0;
    let grid = UnitGrid::new(side);
    let kernel = HelmholtzKernel::new(&grid, kappa); // Gaussian bump b(x)
    let pts = grid.points();

    println!("Lippmann-Schwinger: kappa = {kappa}, N = {side}x{side}");
    let f = Solver::builder(&kernel, &pts)
        .tol(1e-6)
        .build()
        .expect("factorization");

    // Incoming plane wave traveling left to right.
    let uin = plane_wave(&pts, kappa, (1.0, 0.0));
    let rhs = lippmann_schwinger_rhs(&kernel, &pts, &uin);
    let mu = f.solve(&rhs);
    let relres = relative_residual(&FastKernelOp::helmholtz(&kernel, &grid), &mu, &rhs);
    println!("solve relres = {relres:.3e}");

    // Total field u = u_in + V sigma.
    let sigma = sigma_from_mu(&kernel, &mu);
    let u = total_field_on_grid(&grid, kappa, &sigma, &uin);

    // ASCII rendering of Re(u): the shadow/focusing pattern behind the bump.
    println!("\nRe(total field), {side}x{side} (downsampled):");
    let shades = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    let step = side / 32;
    let max_amp = u.iter().map(|z| z.norm()).fold(0.0, f64::max);
    for iy in (0..side).step_by(step).rev() {
        let mut row = String::new();
        for ix in (0..side).step_by(step) {
            let v = u[iy * side + ix].re;
            let t = ((v / max_amp + 1.0) / 2.0).clamp(0.0, 0.999);
            row.push(shades[(t * shades.len() as f64) as usize]);
        }
        println!("  {row}");
    }
    println!("\nmax |u| = {max_amp:.3} (incident amplitude 1)");
}
