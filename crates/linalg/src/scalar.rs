//! The [`Scalar`] abstraction shared by every numeric routine in the solver.
//!
//! The factorization is generic over the matrix element type: the Laplace
//! kernel produces real matrices, the Helmholtz kernel complex ones. The
//! trait deliberately exposes only the operations the solver needs, so both
//! `f64` and [`crate::c64`] implement it without dead weight.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Field element usable throughout the solver (either `f64` or [`crate::c64`]).
///
/// Semantics follow complex arithmetic conventions: [`Scalar::conj`] is the
/// complex conjugate (identity for reals), [`Scalar::abs`] the modulus, and
/// dot products conjugate their first argument.
pub trait Scalar:
    Copy
    + Clone
    + Send
    + Sync
    + 'static
    + PartialEq
    + fmt::Debug
    + fmt::Display
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum<Self>
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// `true` if the type carries an imaginary part.
    const IS_COMPLEX: bool;

    /// Embed a real number.
    fn from_f64(x: f64) -> Self;
    /// Build from real and imaginary parts (imaginary part ignored for `f64`).
    fn from_re_im(re: f64, im: f64) -> Self;
    /// Complex conjugate (identity on reals).
    fn conj(self) -> Self;
    /// Modulus |z|.
    fn abs(self) -> f64;
    /// Squared modulus |z|^2, computed without the square root.
    fn abs_sq(self) -> f64;
    /// Real part.
    fn re(self) -> f64;
    /// Imaginary part (0 for reals).
    fn im(self) -> f64;
    /// Multiply by a real scale factor.
    fn scale(self, s: f64) -> Self;
    /// Principal square root.
    fn sqrt(self) -> Self;
    /// `true` unless NaN/inf has crept in.
    fn is_finite(self) -> bool;

    /// Fused multiply-add `self * b + c`, the inner primitive of the GEMM
    /// micro-kernel. Maps to a hardware FMA where the target has one
    /// (single rounding); on targets without FMA this is slower than
    /// `self * b + c`, so only the throughput-bound kernels use it.
    fn mul_add(self, b: Self, c: Self) -> Self;

    /// Multiplicative inverse.
    #[inline]
    fn recip(self) -> Self {
        Self::ONE / self
    }
}

impl Scalar for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const IS_COMPLEX: bool = false;

    #[inline]
    fn from_f64(x: f64) -> Self {
        x
    }
    #[inline]
    fn from_re_im(re: f64, _im: f64) -> Self {
        re
    }
    #[inline]
    fn conj(self) -> Self {
        self
    }
    #[inline]
    fn abs(self) -> f64 {
        f64::abs(self)
    }
    #[inline]
    fn abs_sq(self) -> f64 {
        self * self
    }
    #[inline]
    fn re(self) -> f64 {
        self
    }
    #[inline]
    fn im(self) -> f64 {
        0.0
    }
    #[inline]
    fn scale(self, s: f64) -> Self {
        self * s
    }
    #[inline]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    #[inline]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
    #[inline]
    fn mul_add(self, b: Self, c: Self) -> Self {
        f64::mul_add(self, b, c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generic_axioms<T: Scalar>(a: T, b: T) {
        assert_eq!(a + T::ZERO, a);
        assert_eq!(a * T::ONE, a);
        let c = a * b;
        assert!((c.abs() - a.abs() * b.abs()).abs() < 1e-12 * (1.0 + c.abs()));
        assert!((a.abs_sq() - a.abs() * a.abs()).abs() < 1e-12 * (1.0 + a.abs_sq()));
    }

    #[test]
    fn f64_scalar_axioms() {
        generic_axioms(3.5f64, -2.0f64);
        assert_eq!(2.0f64.conj(), 2.0);
        assert_eq!((-3.0f64).abs(), 3.0);
        assert_eq!(4.0f64.sqrt(), 2.0);
        assert_eq!(2.0f64.recip(), 0.5);
        assert_eq!(f64::from_re_im(1.5, 99.0), 1.5);
        assert_eq!(1.5f64.re(), 1.5);
        assert_eq!(1.5f64.im(), 0.0);
    }

    #[test]
    fn f64_scale_and_finite() {
        assert_eq!(3.0f64.scale(0.5), 1.5);
        assert!(1.0f64.is_finite());
        assert!(!(f64::NAN).is_finite());
        assert!(!(f64::INFINITY).is_finite());
    }
}
