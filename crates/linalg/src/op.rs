//! Abstract linear operators on vectors.
//!
//! Lives in the linalg crate so dense operators (here), FFT fast operators
//! (`srsf-kernels`), and the factorization-as-preconditioner
//! (`srsf-core`) can all implement one trait consumed by the Krylov
//! solvers (`srsf-iterative`).

use crate::mat::Mat;
use crate::scalar::Scalar;
use crate::vecops::nrm2;

/// A square linear operator `y = A x`.
pub trait LinOp<T: Scalar>: Sync {
    /// Problem dimension.
    fn dim(&self) -> usize;
    /// Apply the operator.
    fn apply(&self, x: &[T]) -> Vec<T>;
}

/// A dense matrix as a [`LinOp`].
pub struct DenseOp<T> {
    mat: Mat<T>,
}

impl<T: Scalar> DenseOp<T> {
    /// Wrap a square matrix.
    pub fn new(mat: Mat<T>) -> Self {
        assert_eq!(mat.nrows(), mat.ncols(), "LinOp requires a square matrix");
        Self { mat }
    }

    /// Borrow the underlying matrix.
    pub fn mat(&self) -> &Mat<T> {
        &self.mat
    }
}

impl<T: Scalar> LinOp<T> for DenseOp<T> {
    fn dim(&self) -> usize {
        self.mat.nrows()
    }
    fn apply(&self, x: &[T]) -> Vec<T> {
        self.mat.matvec(x)
    }
}

/// `||A x - b|| / ||b||` — the `relres` metric reported throughout the
/// paper's tables.
pub fn relative_residual<T: Scalar>(a: &dyn LinOp<T>, x: &[T], b: &[T]) -> f64 {
    assert_eq!(x.len(), b.len());
    let ax = a.apply(x);
    let num = ax
        .iter()
        .zip(b.iter())
        .map(|(p, q)| (*p - *q).abs_sq())
        .sum::<f64>()
        .sqrt();
    num / nrm2(b).max(f64::MIN_POSITIVE.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_op_applies() {
        let m = Mat::from_fn(3, 3, |i, j| if i == j { 2.0 } else { 0.0 });
        let op = DenseOp::new(m);
        assert_eq!(op.dim(), 3);
        assert_eq!(op.apply(&[1.0, 2.0, 3.0]), vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn residual_zero_for_exact_solution() {
        let m = Mat::from_fn(2, 2, |i, j| {
            ((i + 1) * (j + 2)) as f64 + if i == j { 3.0 } else { 0.0 }
        });
        let x = vec![1.0, -1.0];
        let b = m.matvec(&x);
        let op = DenseOp::new(m);
        assert!(relative_residual(&op, &x, &b) < 1e-15);
        // Perturbed solution has nonzero residual.
        let x2 = vec![1.1, -1.0];
        assert!(relative_residual(&op, &x2, &b) > 1e-3);
    }

    #[test]
    #[should_panic]
    fn dense_op_rejects_rectangular() {
        let _ = DenseOp::new(Mat::<f64>::zeros(2, 3));
    }
}
