//! A double-precision complex number, written from scratch.
//!
//! The approved dependency set for this reproduction does not include
//! `num-complex`, and the solver only needs a small surface: field
//! arithmetic, conjugation, modulus, exponential (for plane waves) and
//! polar construction (for FFT twiddle factors). Division uses Smith's
//! algorithm to avoid overflow for badly scaled operands.

use crate::scalar::Scalar;
use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Complex number with `f64` components.
#[allow(non_camel_case_types)]
#[derive(Copy, Clone, PartialEq, Default)]
pub struct c64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl c64 {
    /// The imaginary unit `i`.
    pub const I: c64 = c64 { re: 0.0, im: 1.0 };
    /// Zero.
    pub const ZERO: c64 = c64 { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: c64 = c64 { re: 1.0, im: 0.0 };

    /// Construct from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// `r * e^{i theta}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Self::new(r * theta.cos(), r * theta.sin())
    }

    /// Complex exponential `e^{self}`.
    #[inline]
    pub fn exp(self) -> Self {
        let r = self.re.exp();
        Self::new(r * self.im.cos(), r * self.im.sin())
    }

    /// Principal argument in `(-pi, pi]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Modulus, overflow-safe via `hypot`.
    #[inline]
    pub fn norm(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared modulus.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Multiply by the imaginary unit (cheaper than a full multiply).
    #[inline]
    pub fn mul_i(self) -> Self {
        Self::new(-self.im, self.re)
    }

    /// Multiply by a real factor (inherent twin of [`Scalar::scale`], so
    /// call sites don't need the trait in scope).
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Self::new(self.re * s, self.im * s)
    }

    /// Complex conjugate (inherent twin of [`Scalar::conj`]).
    #[inline]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Principal square root.
    #[inline]
    pub fn sqrt_c(self) -> Self {
        // Kahan's branch-stable formulation.
        if self.re == 0.0 && self.im == 0.0 {
            return Self::ZERO;
        }
        let m = self.norm();
        let t = ((m + self.re.abs()) * 0.5).sqrt();
        if self.re >= 0.0 {
            Self::new(t, self.im / (2.0 * t))
        } else {
            let u = self.im.abs() / (2.0 * t);
            Self::new(u, if self.im >= 0.0 { t } else { -t })
        }
    }
}

impl fmt::Debug for c64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}i",
            self.re,
            if self.im < 0.0 { "-" } else { "+" },
            self.im.abs()
        )
    }
}

impl fmt::Display for c64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<f64> for c64 {
    #[inline]
    fn from(x: f64) -> Self {
        Self::new(x, 0.0)
    }
}

impl Add for c64 {
    type Output = Self;
    #[inline]
    fn add(self, o: Self) -> Self {
        Self::new(self.re + o.re, self.im + o.im)
    }
}

impl Sub for c64 {
    type Output = Self;
    #[inline]
    fn sub(self, o: Self) -> Self {
        Self::new(self.re - o.re, self.im - o.im)
    }
}

impl Mul for c64 {
    type Output = Self;
    #[inline]
    fn mul(self, o: Self) -> Self {
        Self::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

impl Div for c64 {
    type Output = Self;
    #[inline]
    fn div(self, o: Self) -> Self {
        // Smith's algorithm: scale by the larger component of the divisor.
        if o.re.abs() >= o.im.abs() {
            let r = o.im / o.re;
            let d = o.re + o.im * r;
            Self::new((self.re + self.im * r) / d, (self.im - self.re * r) / d)
        } else {
            let r = o.re / o.im;
            let d = o.re * r + o.im;
            Self::new((self.re * r + self.im) / d, (self.im * r - self.re) / d)
        }
    }
}

impl Neg for c64 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self::new(-self.re, -self.im)
    }
}

impl AddAssign for c64 {
    #[inline]
    fn add_assign(&mut self, o: Self) {
        self.re += o.re;
        self.im += o.im;
    }
}

impl SubAssign for c64 {
    #[inline]
    fn sub_assign(&mut self, o: Self) {
        self.re -= o.re;
        self.im -= o.im;
    }
}

impl MulAssign for c64 {
    #[inline]
    fn mul_assign(&mut self, o: Self) {
        *self = *self * o;
    }
}

impl DivAssign for c64 {
    #[inline]
    fn div_assign(&mut self, o: Self) {
        *self = *self / o;
    }
}

impl Mul<f64> for c64 {
    type Output = Self;
    #[inline]
    fn mul(self, s: f64) -> Self {
        Self::new(self.re * s, self.im * s)
    }
}

impl Mul<c64> for f64 {
    type Output = c64;
    #[inline]
    fn mul(self, z: c64) -> c64 {
        c64::new(self * z.re, self * z.im)
    }
}

impl Sum for c64 {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |a, b| a + b)
    }
}

impl Scalar for c64 {
    const ZERO: Self = c64::ZERO;
    const ONE: Self = c64::ONE;
    const IS_COMPLEX: bool = true;

    #[inline]
    fn from_f64(x: f64) -> Self {
        Self::new(x, 0.0)
    }
    #[inline]
    fn from_re_im(re: f64, im: f64) -> Self {
        Self::new(re, im)
    }
    #[inline]
    fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }
    #[inline]
    fn abs(self) -> f64 {
        self.norm()
    }
    #[inline]
    fn abs_sq(self) -> f64 {
        self.norm_sq()
    }
    #[inline]
    fn re(self) -> f64 {
        self.re
    }
    #[inline]
    fn im(self) -> f64 {
        self.im
    }
    #[inline]
    fn scale(self, s: f64) -> Self {
        Self::new(self.re * s, self.im * s)
    }
    #[inline]
    fn sqrt(self) -> Self {
        self.sqrt_c()
    }
    #[inline]
    fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
    #[inline]
    fn mul_add(self, b: Self, c: Self) -> Self {
        // Four real FMAs: re = re*b.re - im*b.im + c.re, analogous for im.
        Self::new(
            self.re.mul_add(b.re, self.im.mul_add(-b.im, c.re)),
            self.re.mul_add(b.im, self.im.mul_add(b.re, c.im)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: c64, b: c64, tol: f64) -> bool {
        (a - b).norm() <= tol * (1.0 + a.norm().max(b.norm()))
    }

    #[test]
    fn field_arithmetic() {
        let a = c64::new(1.0, 2.0);
        let b = c64::new(-3.0, 0.5);
        assert_eq!(a + b, c64::new(-2.0, 2.5));
        assert_eq!(a - b, c64::new(4.0, 1.5));
        assert_eq!(a * b, c64::new(-3.0 - 1.0, 0.5 - 6.0));
        assert!(close(a / b * b, a, 1e-15));
        assert!(close(a * a.recip(), c64::ONE, 1e-15));
    }

    #[test]
    fn division_is_overflow_safe() {
        let big = c64::new(1e300, 1e300);
        let q = big / big;
        assert!(close(q, c64::ONE, 1e-14));
        let q2 = c64::ONE / c64::new(1e-300, 1e-300);
        assert!(q2.is_finite());
    }

    #[test]
    fn conjugation_and_modulus() {
        let a = c64::new(3.0, -4.0);
        assert_eq!(a.conj(), c64::new(3.0, 4.0));
        assert_eq!(a.norm(), 5.0);
        assert_eq!(a.norm_sq(), 25.0);
        assert_eq!((a * a.conj()).re, 25.0);
        assert_eq!((a * a.conj()).im, 0.0);
    }

    #[test]
    fn exp_and_polar() {
        // Euler's identity.
        let z = c64::new(0.0, std::f64::consts::PI);
        assert!(close(z.exp(), c64::new(-1.0, 0.0), 1e-15));
        let w = c64::from_polar(2.0, 0.7);
        assert!((w.norm() - 2.0).abs() < 1e-15);
        assert!((w.arg() - 0.7).abs() < 1e-15);
    }

    #[test]
    fn sqrt_branches() {
        for &z in &[
            c64::new(4.0, 0.0),
            c64::new(-4.0, 0.0),
            c64::new(0.0, 2.0),
            c64::new(0.0, -2.0),
            c64::new(3.0, -4.0),
            c64::new(-3.0, 4.0),
        ] {
            let s = z.sqrt_c();
            assert!(close(s * s, z, 1e-14), "sqrt({z:?})^2 = {:?}", s * s);
            // Principal branch: non-negative real part.
            assert!(s.re >= -1e-15);
        }
        assert_eq!(c64::ZERO.sqrt_c(), c64::ZERO);
    }

    #[test]
    fn mul_i_matches_full_multiply() {
        let a = c64::new(1.25, -0.5);
        assert_eq!(a.mul_i(), a * c64::I);
    }

    #[test]
    fn scalar_trait_impl() {
        let a = c64::new(1.0, -1.0);
        assert_eq!(a.re(), 1.0);
        assert_eq!(a.im(), -1.0);
        assert_eq!(a.scale(2.0), c64::new(2.0, -2.0));
        assert_eq!(c64::from_re_im(0.5, 0.25), c64::new(0.5, 0.25));
        assert!((a.abs_sq() - 2.0).abs() < 1e-15);
    }
}
