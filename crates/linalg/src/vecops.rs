//! BLAS-1 style helpers on slices.
//!
//! Dot products conjugate their first argument, matching the complex inner
//! product convention used by GMRES and the ID error bounds.

use crate::scalar::Scalar;

/// Conjugated dot product `x^H y`, four-way unrolled to expose ILP (these
/// reductions sit on the CPQR pivot path).
pub fn dot<T: Scalar>(x: &[T], y: &[T]) -> T {
    assert_eq!(x.len(), y.len());
    let mut acc = [T::ZERO; 4];
    let (xc, xr) = x.split_at(x.len() - x.len() % 4);
    let (yc, yr) = y.split_at(xc.len());
    for (a, b) in xc.chunks_exact(4).zip(yc.chunks_exact(4)) {
        for i in 0..4 {
            acc[i] = a[i].conj().mul_add(b[i], acc[i]);
        }
    }
    let mut s = acc[0] + acc[1] + acc[2] + acc[3];
    for (a, b) in xr.iter().zip(yr.iter()) {
        s = a.conj().mul_add(*b, s);
    }
    s
}

/// Euclidean norm, accumulated in squared modulus to avoid complex sqrt;
/// four-way unrolled like [`dot`].
pub fn nrm2<T: Scalar>(x: &[T]) -> f64 {
    let mut acc = [0.0f64; 4];
    let (xc, xr) = x.split_at(x.len() - x.len() % 4);
    for a in xc.chunks_exact(4) {
        for i in 0..4 {
            acc[i] += a[i].abs_sq();
        }
    }
    let mut s = acc[0] + acc[1] + acc[2] + acc[3];
    for a in xr {
        s += a.abs_sq();
    }
    s.sqrt()
}

/// `y += alpha * x`.
pub fn axpy<T: Scalar>(alpha: T, x: &[T], y: &mut [T]) {
    assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * *xi;
    }
}

/// `x *= alpha`.
pub fn scal<T: Scalar>(alpha: T, x: &mut [T]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Maximum modulus of any entry.
pub fn max_abs<T: Scalar>(x: &[T]) -> f64 {
    x.iter().map(|v| v.abs()).fold(0.0, f64::max)
}

/// Relative l2 difference `||x - y|| / max(||y||, floor)`.
pub fn rel_diff<T: Scalar>(x: &[T], y: &[T]) -> f64 {
    assert_eq!(x.len(), y.len());
    let num = x
        .iter()
        .zip(y.iter())
        .map(|(a, b)| (*a - *b).abs_sq())
        .sum::<f64>()
        .sqrt();
    let den = nrm2(y).max(f64::MIN_POSITIVE.sqrt());
    num / den
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::c64;

    #[test]
    fn dot_conjugates_first_argument() {
        let x = [c64::new(0.0, 1.0)];
        let y = [c64::new(0.0, 1.0)];
        // <i, i> = conj(i)*i = 1
        assert_eq!(dot(&x, &y), c64::ONE);
        let r = dot(&[1.0, 2.0], &[3.0, 4.0]);
        assert_eq!(r, 11.0);
    }

    #[test]
    fn nrm2_and_max_abs() {
        assert_eq!(nrm2(&[3.0, 4.0]), 5.0);
        let z = [c64::new(3.0, 4.0)];
        assert_eq!(nrm2(&z), 5.0);
        assert_eq!(max_abs(&[-2.0, 1.5]), 2.0);
        assert_eq!(nrm2::<f64>(&[]), 0.0);
    }

    #[test]
    fn axpy_scal() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, -1.0], &mut y);
        assert_eq!(y, vec![3.0, -1.0]);
        scal(0.5, &mut y);
        assert_eq!(y, vec![1.5, -0.5]);
    }

    #[test]
    fn rel_diff_basic() {
        assert!(rel_diff(&[1.0, 2.0], &[1.0, 2.0]) == 0.0);
        let d = rel_diff(&[1.1, 2.0], &[1.0, 2.0]);
        assert!((d - 0.1 / 5.0f64.sqrt()).abs() < 1e-12);
    }
}
