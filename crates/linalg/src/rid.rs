//! Randomized sketch-then-ID: the fast path behind skeletonization.
//!
//! A column ID of a tall `m x n` matrix `A` only needs the *pivot order*
//! and the triangular factor of the leading columns — information that
//! survives a row sketch. [`rand_interp_decomp`] therefore draws a seeded
//! Rademacher sketch `Ω` (`l x m`, entries ±1), forms the small matrix
//! `Y = Ω A` with the packed level-3 GEMM, and runs the downdated-norm
//! CPQR on `Y` instead of on `A` — `O(l m n + l n k)` instead of
//! `O(m n k)` with `l ≪ m`.
//!
//! # A-posteriori verification loop
//!
//! The sketch certifies its own accuracy in two layers:
//!
//! 1. **Pivot certificate.** The CPQR on the `l`-row pivot block of `Y`
//!    must *stop early* (`rank < l`): the downdated column norms — the
//!    exact residual norms of the sketched matrix — dropped below
//!    `tol * |first pivot|` while rows were still available. If CPQR
//!    consumes every sketch row, the tolerance was never certified and
//!    the attempt is rejected. (Stopping at the caller's `max_rank` cap
//!    or at full column rank `n` is accepted by definition.)
//! 2. **Holdout check.** [`RID_VERIFY_ROWS`] extra sketch rows are held
//!    out of the pivot CPQR entirely. The candidate `(S, R, T)` must
//!    reproduce them: `‖Y_v[:,R] − Y_v[:,S] T‖_F ≤ c·tol·‖Y_v‖_F`.
//!    Because these rows never influenced pivot selection, they catch an
//!    unluckily aligned sketch that layer 1 cannot see.
//!
//! On rejection the sketch size doubles and the loop retries; once
//! `2 l ≥ m` the sketch is no longer cheaper than the real thing and the
//! routine falls back to the full deterministic [`interp_decomp`] — so
//! accuracy is never worse than the non-randomized path.
//!
//! # Determinism
//!
//! Sketch entries are a pure function of the seed and the *global*
//! (row, column) coordinates: one counter-based splitmix-style hash
//! `mix(seed, r, c/64)` yields the signs of 64 consecutive columns (bit
//! `c mod 64`), with no sequential state. Any
//! sub-block of `Ω` can be generated independently ([`sketch_block`]),
//! which is what lets `srsf-core` accumulate `Y` block-by-block without
//! materializing the tall matrix, and guarantees the same seed yields
//! the same sketch on every driver, thread count, and transport.

use crate::gemm::matmul;
use crate::id::{id_from_cpqr, interp_decomp, IdResult};
use crate::mat::Mat;
use crate::norms::fro_norm;
use crate::qr::cpqr;
use crate::scalar::Scalar;

/// Extra sketch rows held out of the pivot CPQR for the a-posteriori
/// verification (layer 2 of the module-level loop).
pub const RID_VERIFY_ROWS: usize = 8;

/// What happened inside one [`rand_interp_decomp`] call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RidTelemetry {
    /// Times the sketch was rejected and doubled.
    pub retries: u32,
    /// Whether the routine fell back to the full deterministic CPQR ID.
    pub fell_back: bool,
    /// Pivot rows of the accepted sketch (0 when `fell_back`).
    pub sketch_rows: usize,
}

/// SplitMix64-style finalizer over `(seed, r, c)` — a stateless
/// counter-based generator with O(1) random access to any sketch entry.
#[inline]
fn mix(seed: u64, r: u64, c: u64) -> u64 {
    let mut z =
        seed ^ r.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ c.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive a sub-seed from a base seed and two coordinates (used by
/// `srsf-core` to key the per-box sketch by `(kernel, level, ix, iy)`).
#[inline]
pub fn derive_seed(base: u64, a: u64, b: u64) -> u64 {
    mix(base, a, b)
}

/// Rademacher sketch entry `ω[r, c] ∈ {+1, −1}` for global coordinates.
///
/// One `mix` call yields the signs of 64 consecutive columns (bit `c mod
/// 64` of the hash word for column group `c / 64`), so bulk generation in
/// [`sketch_block`] pays one hash per 64 entries while random access stays
/// O(1) and bitwise consistent with the bulk path.
#[inline]
pub fn sketch_sign(seed: u64, r: usize, c: usize) -> f64 {
    let word = mix(seed, r as u64, (c >> 6) as u64);
    if (word >> (c & 63)) & 1 == 0 {
        1.0
    } else {
        -1.0
    }
}

/// Materialize the sketch sub-block `Ω[0..rows, col0..col0+cols]`.
///
/// Columns index rows of the sketched matrix; because entries are a pure
/// function of global coordinates, disjoint column ranges of `Ω` can be
/// generated independently and their `Ω_blk · A_blk` products summed.
pub fn sketch_block<T: Scalar>(seed: u64, rows: usize, col0: usize, cols: usize) -> Mat<T> {
    if rows == 0 || cols == 0 {
        return Mat::zeros(rows, cols);
    }
    // Hash each 64-column word once per row, then expand bits.
    let w0 = col0 >> 6;
    let nw = ((col0 + cols - 1) >> 6) - w0 + 1;
    let mut words = vec![0u64; rows * nw];
    for r in 0..rows {
        for w in 0..nw {
            words[r * nw + w] = mix(seed, r as u64, (w0 + w) as u64);
        }
    }
    Mat::from_fn(rows, cols, |r, c| {
        let gc = col0 + c;
        let word = words[r * nw + ((gc >> 6) - w0)];
        T::from_f64(if (word >> (gc & 63)) & 1 == 0 {
            1.0
        } else {
            -1.0
        })
    })
}

/// Attempt an ID from an already-formed sketch `Y = Ω A`.
///
/// `y` holds `pivot_rows` pivot rows on top of [`RID_VERIFY_ROWS`]
/// holdout rows (fewer holdout rows — including zero — are allowed; the
/// holdout check then weakens accordingly). Returns `None` when the
/// attempt fails either verification layer and the caller should retry
/// with a larger sketch.
pub fn id_from_sketch<T: Scalar>(
    y: &Mat<T>,
    pivot_rows: usize,
    tol: f64,
    max_rank: usize,
) -> Option<IdResult<T>> {
    let n = y.ncols();
    debug_assert!(pivot_rows <= y.nrows());
    let yp = y.block(0, 0, pivot_rows, n);
    let c = cpqr(yp, tol, max_rank);
    let k = c.rank;
    // Layer 1: the CPQR must have stopped for a *reason* — tolerance
    // reached (rank < pivot_rows), full column rank, or the caller's cap.
    if k >= pivot_rows && k < n && k < max_rank {
        return None;
    }
    let id = id_from_cpqr(c, n);
    // Layer 2: the holdout rows must be reproduced by (S, T). Skipped
    // when the rank was capped (best-effort by definition) or exact.
    let v_rows = y.nrows() - pivot_rows;
    if v_rows > 0 && k < n && k < max_rank && !id.redundant.is_empty() {
        let yv = y.block(pivot_rows, 0, v_rows, n);
        let all: Vec<usize> = (0..v_rows).collect();
        let vr = yv.select(&all, &id.redundant);
        let vs = yv.select(&all, &id.skel);
        let mut err = vr;
        err.axpy(-T::ONE, &matmul(&vs, &id.t));
        let slack = 100.0 * (n.max(1) as f64).sqrt();
        if fro_norm(&err) > slack * tol * fro_norm(&yv).max(1e-300) {
            return None;
        }
    }
    Some(id)
}

/// Compute a column ID of `a` by randomized sketching (module-level
/// algorithm), with the full deterministic [`interp_decomp`] as fallback.
///
/// `rank_guess` sizes the initial sketch (`rank_guess + oversample`
/// pivot rows); a guess below the true rank costs retries, never
/// accuracy. Returns the ID together with [`RidTelemetry`] describing
/// the path taken.
pub fn rand_interp_decomp<T: Scalar>(
    a: &Mat<T>,
    tol: f64,
    max_rank: usize,
    rank_guess: usize,
    oversample: usize,
    seed: u64,
) -> (IdResult<T>, RidTelemetry) {
    let m = a.nrows();
    let n = a.ncols();
    let mut tel = RidTelemetry::default();
    if m == 0 || n == 0 {
        return (interp_decomp(a.clone(), tol, max_rank), tel);
    }
    let mut l = (rank_guess + oversample).max(4);
    loop {
        if 2 * (l + RID_VERIFY_ROWS) >= m {
            tel.fell_back = true;
            tel.sketch_rows = 0;
            return (interp_decomp(a.clone(), tol, max_rank), tel);
        }
        let omega = sketch_block::<T>(seed, l + RID_VERIFY_ROWS, 0, m);
        let y = matmul(&omega, a);
        match id_from_sketch(&y, l, tol, max_rank) {
            Some(id) => {
                tel.sketch_rows = l;
                return (id, tel);
            }
            None => {
                tel.retries += 1;
                l *= 2;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::c64;
    use crate::norms::max_abs_diff;

    /// The defining ID property plus the index partition, with the same
    /// slack conventions as the deterministic oracle tests in `id.rs`.
    fn check_id<T: Scalar>(a: &Mat<T>, id: &IdResult<T>, tol: f64, slack: f64) {
        let m = a.nrows();
        let rows: Vec<usize> = (0..m).collect();
        let ar = a.select(&rows, &id.redundant);
        let as_ = a.select(&rows, &id.skel);
        let approx = matmul(&as_, &id.t);
        let err = max_abs_diff(&ar, &approx);
        let scale = fro_norm(a).max(1e-300);
        assert!(
            err <= slack * tol * scale + 1e-13 * scale,
            "RID error {err:.3e} vs tol {tol:.1e} (scale {scale:.3e})"
        );
        let mut all: Vec<usize> = id.skel.iter().chain(id.redundant.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..a.ncols()).collect::<Vec<usize>>());
    }

    fn xorshift(state: &mut u64) -> f64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        (*state % 2000) as f64 / 1000.0 - 1.0
    }

    fn low_rank_f64(m: usize, n: usize, k: usize, seed: u64) -> Mat<f64> {
        let mut s = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let u = Mat::from_fn(m, k, |_, _| xorshift(&mut s));
        let v = Mat::from_fn(k, n, |_, _| xorshift(&mut s));
        let mut a = matmul(&u, &v);
        for val in a.as_mut_slice().iter_mut() {
            *val += 1e-9 * xorshift(&mut s);
        }
        a
    }

    #[test]
    fn rid_matches_oracle_bound_on_sweep() {
        for (m, n) in [(80usize, 24usize), (120, 40), (200, 17), (96, 96)] {
            for k in [2usize, 5, 9] {
                for seed in [1u64, 42, 4096] {
                    let a = low_rank_f64(m, n, k, seed);
                    let tol = 1e-6;
                    let (id, tel) = rand_interp_decomp(&a, tol, usize::MAX, k, 8, seed);
                    assert!(!tel.fell_back, "sketch should suffice at {m}x{n} rank {k}");
                    check_id(&a, &id, tol, 1e3);
                    // Deterministic full ID finds (about) the same rank.
                    let full = interp_decomp(a.clone(), tol, usize::MAX);
                    assert!(
                        id.rank() <= full.rank() + 4 && id.rank() + 4 >= full.rank(),
                        "rank {} vs deterministic {}",
                        id.rank(),
                        full.rank()
                    );
                }
            }
        }
    }

    #[test]
    fn rid_complex_kernel_matrix() {
        let src: Vec<f64> = (0..48).map(|i| i as f64 / 48.0).collect();
        let trg: Vec<f64> = (0..160).map(|i| 4.0 + i as f64 / 160.0).collect();
        let kappa = 3.0;
        let a = Mat::from_fn(160, 48, |i, j| {
            let r = (trg[i] - src[j]).abs();
            c64::from_polar(1.0 / r.sqrt(), kappa * r)
        });
        let (id, tel) = rand_interp_decomp(&a, 1e-8, usize::MAX, 12, 8, 7);
        assert!(!tel.fell_back);
        assert!(id.rank() < 30);
        check_id(&a, &id, 1e-8, 1e3);
    }

    #[test]
    fn rid_ragged_shapes() {
        // Wide (m < n) and nearly square ragged shapes still satisfy the
        // bound — the sketch may fall back when m is small, which is fine.
        for (m, n) in [(30usize, 90usize), (45, 44), (64, 7)] {
            let a = low_rank_f64(m, n, 3, 11);
            let (id, _tel) = rand_interp_decomp(&a, 1e-6, usize::MAX, 3, 8, 11);
            check_id(&a, &id, 1e-6, 1e3);
        }
    }

    #[test]
    fn rid_rank_cap_respected() {
        let a = Mat::from_fn(200, 16, |i, j| 1.0 / (1.0 + (i as f64 - j as f64).abs()));
        let (id, _) = rand_interp_decomp(&a, 0.0, 6, 6, 8, 3);
        assert_eq!(id.rank(), 6);
        assert_eq!(id.redundant.len(), 10);
    }

    #[test]
    fn rid_zero_matrix_all_redundant() {
        let a: Mat<f64> = Mat::zeros(100, 12);
        let (id, _) = rand_interp_decomp(&a, 1e-10, usize::MAX, 4, 8, 5);
        assert_eq!(id.rank(), 0);
        assert_eq!(id.redundant.len(), 12);
    }

    #[test]
    fn rid_empty_matrix() {
        let a: Mat<f64> = Mat::zeros(0, 0);
        let (id, tel) = rand_interp_decomp(&a, 1e-10, usize::MAX, 4, 8, 5);
        assert_eq!(id.rank(), 0);
        assert!(id.skel.is_empty() && id.redundant.is_empty());
        assert!(!tel.fell_back);
        let b: Mat<f64> = Mat::zeros(50, 0);
        let (id, _) = rand_interp_decomp(&b, 1e-10, usize::MAX, 4, 8, 5);
        assert_eq!(id.rank(), 0);
    }

    #[test]
    fn rid_forced_fallback_matches_deterministic() {
        // m too small for any sketch to be cheaper: the guess alone puts
        // 2(l + verify) past m, so the first iteration falls back.
        let a = low_rank_f64(20, 15, 4, 9);
        let (id, tel) = rand_interp_decomp(&a, 1e-6, usize::MAX, 16, 8, 9);
        assert!(tel.fell_back);
        assert_eq!(tel.retries, 0);
        let full = interp_decomp(a.clone(), 1e-6, usize::MAX);
        assert_eq!(id.skel, full.skel);
        assert_eq!(id.redundant, full.redundant);
        assert_eq!(max_abs_diff(&id.t, &full.t), 0.0);
    }

    #[test]
    fn rid_undersized_guess_retries_then_succeeds() {
        // True rank 10 but guess 1: the first sketch cannot certify the
        // tolerance (CPQR eats every pivot row), so the loop doubles.
        let a = low_rank_f64(400, 40, 10, 21);
        let (id, tel) = rand_interp_decomp(&a, 1e-6, usize::MAX, 1, 2, 21);
        assert!(tel.retries >= 1, "expected at least one doubling");
        assert!(!tel.fell_back);
        check_id(&a, &id, 1e-6, 1e3);
    }

    #[test]
    fn rid_full_rank_keeps_everything() {
        let a: Mat<f64> = Mat::from_fn(96, 8, |i, j| if i == j { 1.0 } else { 0.0 });
        let (id, _) = rand_interp_decomp(&a, 1e-12, usize::MAX, 8, 8, 2);
        assert_eq!(id.rank(), 8);
        assert!(id.redundant.is_empty());
    }

    #[test]
    fn sketch_entries_are_stateless_and_blockwise_consistent() {
        let seed = 0xDEAD_BEEF;
        let whole = sketch_block::<f64>(seed, 6, 0, 32);
        let left = sketch_block::<f64>(seed, 6, 0, 20);
        let right = sketch_block::<f64>(seed, 6, 20, 12);
        for r in 0..6 {
            for c in 0..32 {
                let want = whole[(r, c)];
                let got = if c < 20 {
                    left[(r, c)]
                } else {
                    right[(r, c - 20)]
                };
                assert_eq!(want, got);
                assert!(want == 1.0 || want == -1.0);
                assert_eq!(want, sketch_sign(seed, r, c));
            }
        }
        // Different seeds give different sketches.
        let other = sketch_block::<f64>(seed ^ 1, 6, 0, 32);
        assert!(max_abs_diff(&whole, &other) > 0.0);
    }
}
