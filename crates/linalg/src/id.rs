//! Interpolative decomposition (ID), Definition 1 of the paper.
//!
//! A column ID of `A` at tolerance `eps` splits the column indices into
//! skeletons `S` and redundants `R = J \ S` with an interpolation matrix `T`
//! such that `A[:, R] ~= A[:, S] * T`. Built directly on the greedy CPQR:
//! if `A P = Q [R11 R12]`, then `S` are the first `rank` pivots and
//! `T = R11^{-1} R12`. Both halves ride the level-3 kernels: the CPQR is
//! blocked with downdated column norms, and the triangular solve for `T`
//! is the blocked [`solve_upper_mat`].

use crate::mat::Mat;
use crate::qr::cpqr;
use crate::scalar::Scalar;
use crate::triangular::solve_upper_mat;

/// Outcome of [`interp_decomp`].
#[derive(Clone, Debug)]
pub struct IdResult<T> {
    /// Skeleton column indices (into the original column order).
    pub skel: Vec<usize>,
    /// Redundant column indices; disjoint from `skel`, union covers all.
    pub redundant: Vec<usize>,
    /// Interpolation matrix, `|skel| x |redundant|`.
    pub t: Mat<T>,
}

impl<T: Scalar> IdResult<T> {
    /// Number of skeleton columns (the numerical rank).
    pub fn rank(&self) -> usize {
        self.skel.len()
    }
}

/// Compute a column ID of `a` at relative tolerance `tol`.
///
/// `max_rank` optionally caps the number of skeletons (used by tests and
/// ablations; the solver passes `usize::MAX`).
pub fn interp_decomp<T: Scalar>(a: Mat<T>, tol: f64, max_rank: usize) -> IdResult<T> {
    let n = a.ncols();
    if n == 0 {
        return IdResult {
            skel: Vec::new(),
            redundant: Vec::new(),
            t: Mat::zeros(0, 0),
        };
    }
    id_from_cpqr(cpqr(a, tol, max_rank), n)
}

/// Turn a finished CPQR into the ID `(S, R, T)` — shared tail of
/// [`interp_decomp`] and the sketched path in [`crate::rid`].
pub(crate) fn id_from_cpqr<T: Scalar>(c: crate::qr::Cpqr<T>, n: usize) -> IdResult<T> {
    let k = c.rank;
    debug_assert_eq!(c.jpvt.len(), n);
    let skel = c.jpvt[..k].to_vec();
    let redundant = c.jpvt[k..].to_vec();
    // T = R11^{-1} R12 (k x (n-k)); empty dims handled by the Mat machinery.
    let r11 = c.r11();
    let mut t = c.r12();
    if k > 0 && !t.is_empty() {
        solve_upper_mat(&r11, false, &mut t);
    }
    IdResult { skel, redundant, t }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::c64;
    use crate::gemm::matmul;
    use crate::norms::{fro_norm, max_abs_diff};

    /// Check the defining property ‖A[:,R] − A[:,S]·T‖ ≤ c·tol·‖A‖.
    fn check_id<T: Scalar>(a: &Mat<T>, id: &IdResult<T>, tol: f64, slack: f64) {
        let m = a.nrows();
        let ar = a.select(&(0..m).collect::<Vec<_>>(), &id.redundant);
        let as_ = a.select(&(0..m).collect::<Vec<_>>(), &id.skel);
        let approx = matmul(&as_, &id.t);
        let err = max_abs_diff(&ar, &approx);
        let scale = fro_norm(a).max(1e-300);
        assert!(
            err <= slack * tol * scale + 1e-13 * scale,
            "ID error {err:.3e} vs tol {tol:.1e} (scale {scale:.3e})"
        );
        // Partition property.
        let mut all: Vec<usize> = id.skel.iter().chain(id.redundant.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..a.ncols()).collect::<Vec<_>>());
    }

    #[test]
    fn id_exact_on_low_rank() {
        let u = Mat::from_fn(12, 3, |i, j| ((i * (j + 1)) % 7) as f64 - 3.0);
        let v = Mat::from_fn(3, 9, |i, j| ((2 * i + j) % 5) as f64 - 2.0);
        let a = matmul(&u, &v);
        let id = interp_decomp(a.clone(), 1e-10, usize::MAX);
        assert!(id.rank() <= 3);
        check_id(&a, &id, 1e-10, 100.0);
    }

    #[test]
    fn id_kernel_like_matrix_decays() {
        // Smooth kernel sampled at separated clusters: ranks far below n.
        let src: Vec<f64> = (0..40).map(|i| i as f64 / 40.0).collect();
        let trg: Vec<f64> = (0..60).map(|i| 5.0 + i as f64 / 60.0).collect();
        let a = Mat::from_fn(60, 40, |i, j| 1.0 / (trg[i] - src[j]));
        let id = interp_decomp(a.clone(), 1e-8, usize::MAX);
        assert!(id.rank() < 15, "rank {} should be small", id.rank());
        check_id(&a, &id, 1e-8, 500.0);
    }

    #[test]
    fn id_complex_kernel() {
        let src: Vec<f64> = (0..24).map(|i| i as f64 / 24.0).collect();
        let trg: Vec<f64> = (0..30).map(|i| 4.0 + i as f64 / 30.0).collect();
        let kappa = 3.0;
        let a = Mat::from_fn(30, 24, |i, j| {
            let r = (trg[i] - src[j]).abs();
            c64::from_polar(1.0 / r.sqrt(), kappa * r)
        });
        let id = interp_decomp(a.clone(), 1e-8, usize::MAX);
        assert!(id.rank() < 20);
        check_id(&a, &id, 1e-8, 500.0);
    }

    #[test]
    fn id_full_rank_keeps_everything() {
        let a: Mat<f64> = Mat::identity(6);
        let id = interp_decomp(a, 1e-14, usize::MAX);
        assert_eq!(id.rank(), 6);
        assert!(id.redundant.is_empty());
        assert_eq!(id.t.ncols(), 0);
    }

    #[test]
    fn id_zero_matrix_all_redundant() {
        let a: Mat<f64> = Mat::zeros(5, 4);
        let id = interp_decomp(a, 1e-10, usize::MAX);
        assert_eq!(id.rank(), 0);
        assert_eq!(id.redundant.len(), 4);
        assert_eq!(id.t.nrows(), 0);
    }

    #[test]
    fn id_empty_matrix() {
        let a: Mat<f64> = Mat::zeros(5, 0);
        let id = interp_decomp(a, 1e-10, usize::MAX);
        assert_eq!(id.rank(), 0);
        assert!(id.skel.is_empty());
        assert!(id.redundant.is_empty());
    }

    #[test]
    fn id_rank_cap_respected() {
        let a = Mat::from_fn(8, 8, |i, j| 1.0 / (1.0 + (i as f64 - j as f64).abs()));
        let id = interp_decomp(a, 0.0, 4);
        assert_eq!(id.rank(), 4);
        assert_eq!(id.redundant.len(), 4);
    }

    #[test]
    fn tighter_tolerance_gives_higher_rank() {
        let src: Vec<f64> = (0..50).map(|i| i as f64 / 50.0).collect();
        let trg: Vec<f64> = (0..50).map(|i| 3.0 + i as f64 / 50.0).collect();
        let a = Mat::from_fn(50, 50, |i, j| (-(trg[i] - src[j]).abs()).exp());
        let loose = interp_decomp(a.clone(), 1e-4, usize::MAX);
        let tight = interp_decomp(a, 1e-10, usize::MAX);
        assert!(tight.rank() >= loose.rank());
    }
}

#[cfg(test)]
mod sweep_tests {
    use super::*;
    use crate::gemm::matmul;
    use crate::norms::{fro_norm, max_abs_diff};

    /// For random low-rank-plus-noise matrices the ID must satisfy its
    /// defining error bound and index-partition invariant. A deterministic
    /// sweep over shapes, ranks, and seeds.
    #[test]
    fn id_error_bound_holds_on_random_sweep() {
        for (m, n) in [
            (4usize, 4usize),
            (7, 5),
            (12, 23),
            (23, 12),
            (16, 16),
            (24, 9),
        ] {
            for k in 1usize..4 {
                for seed in [0u64, 17, 313, 999] {
                    // Deterministic pseudo-random entries from the seed.
                    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let mut next = move || {
                        state ^= state << 13;
                        state ^= state >> 7;
                        state ^= state << 17;
                        (state % 2000) as f64 / 1000.0 - 1.0
                    };
                    let u = Mat::from_fn(m, k, |_, _| next());
                    let v = Mat::from_fn(k, n, |_, _| next());
                    let mut a = matmul(&u, &v);
                    // small noise floor
                    let noise = 1e-9;
                    for val in a.as_mut_slice().iter_mut() {
                        *val += noise * next();
                    }
                    let tol = 1e-6;
                    let id = interp_decomp(a.clone(), tol, usize::MAX);
                    let rows: Vec<usize> = (0..m).collect();
                    let ar = a.select(&rows, &id.redundant);
                    let as_ = a.select(&rows, &id.skel);
                    let err = max_abs_diff(&ar, &matmul(&as_, &id.t));
                    assert!(
                        err <= 1e3 * tol * fro_norm(&a).max(1e-12),
                        "ID error {err:.3e} too large for {m}x{n} rank {k} seed {seed}"
                    );
                    let mut all: Vec<usize> =
                        id.skel.iter().chain(id.redundant.iter()).copied().collect();
                    all.sort_unstable();
                    assert_eq!(all, (0..n).collect::<Vec<_>>());
                }
            }
        }
    }
}
