//! Column-major dense matrix.
//!
//! Column-major storage matches the access pattern of every kernel in this
//! crate (Householder reflections, triangular solves and GEMM all sweep down
//! columns), so the innermost loops are contiguous.

use crate::scalar::Scalar;
use core::fmt;
use core::ops::{Index, IndexMut};

/// Dense `nrows x ncols` matrix stored column-major.
#[derive(Clone, PartialEq)]
pub struct Mat<T> {
    nrows: usize,
    ncols: usize,
    data: Vec<T>,
}

impl<T: Scalar> Mat<T> {
    /// All-zero matrix. Zero-sized dimensions are allowed and useful: boxes
    /// with no redundant points produce genuinely empty blocks.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        Self {
            nrows,
            ncols,
            data: vec![T::ZERO; nrows * ncols],
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = T::ONE;
        }
        m
    }

    /// Build entry-wise from a function of `(row, col)`.
    pub fn from_fn(nrows: usize, ncols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(nrows * ncols);
        for j in 0..ncols {
            for i in 0..nrows {
                data.push(f(i, j));
            }
        }
        Self { nrows, ncols, data }
    }

    /// Wrap an existing column-major buffer.
    pub fn from_vec(nrows: usize, ncols: usize, data: Vec<T>) -> Self {
        assert_eq!(
            data.len(),
            nrows * ncols,
            "buffer length {} != {nrows}x{ncols}",
            data.len()
        );
        Self { nrows, ncols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// `true` if either dimension is zero.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nrows == 0 || self.ncols == 0
    }

    /// Raw column-major slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Raw mutable column-major slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Contiguous view of column `j`.
    #[inline]
    pub fn col(&self, j: usize) -> &[T] {
        debug_assert!(j < self.ncols);
        &self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// Mutable view of column `j`.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [T] {
        debug_assert!(j < self.ncols);
        &mut self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// Two disjoint mutable column views (`j1 != j2`), used by pivoting swaps.
    pub fn cols_mut_pair(&mut self, j1: usize, j2: usize) -> (&mut [T], &mut [T]) {
        assert_ne!(j1, j2);
        let n = self.nrows;
        let (lo, hi) = if j1 < j2 { (j1, j2) } else { (j2, j1) };
        let (a, b) = self.data.split_at_mut(hi * n);
        let first = &mut a[lo * n..(lo + 1) * n];
        let second = &mut b[..n];
        if j1 < j2 {
            (first, second)
        } else {
            (second, first)
        }
    }

    /// Swap two columns.
    pub fn swap_cols(&mut self, j1: usize, j2: usize) {
        if j1 == j2 {
            return;
        }
        let (a, b) = self.cols_mut_pair(j1, j2);
        a.swap_with_slice(b);
    }

    /// Swap two rows.
    pub fn swap_rows(&mut self, i1: usize, i2: usize) {
        if i1 == i2 {
            return;
        }
        for j in 0..self.ncols {
            self.data.swap(j * self.nrows + i1, j * self.nrows + i2);
        }
    }

    /// Plain transpose, tiled so both the strided writes and the
    /// contiguous reads stay within one cache tile at a time.
    pub fn transpose(&self) -> Mat<T> {
        self.transposed(false)
    }

    /// Conjugate transpose (adjoint). Equal to [`Mat::transpose`] for reals.
    pub fn adjoint(&self) -> Mat<T> {
        self.transposed(T::IS_COMPLEX)
    }

    /// Cache-tiled out-of-place (conjugate) transpose.
    fn transposed(&self, conj: bool) -> Mat<T> {
        const TILE: usize = 32;
        let (m, n) = (self.nrows, self.ncols);
        let mut out = Mat::zeros(n, m);
        for jb in (0..n).step_by(TILE) {
            let jend = (jb + TILE).min(n);
            for ib in (0..m).step_by(TILE) {
                let iend = (ib + TILE).min(m);
                for j in jb..jend {
                    let src = &self.col(j)[ib..iend];
                    for (off, &v) in src.iter().enumerate() {
                        out.data[(ib + off) * n + j] = if conj { v.conj() } else { v };
                    }
                }
            }
        }
        out
    }

    /// Entry-wise reference transpose (test oracle for the tiled path).
    #[doc(hidden)]
    pub fn transpose_naive(&self) -> Mat<T> {
        Mat::from_fn(self.ncols, self.nrows, |i, j| self[(j, i)])
    }

    /// Entry-wise reference adjoint (test oracle for the tiled path).
    #[doc(hidden)]
    pub fn adjoint_naive(&self) -> Mat<T> {
        Mat::from_fn(self.ncols, self.nrows, |i, j| self[(j, i)].conj())
    }

    /// Gather the submatrix `self[rows, cols]`.
    pub fn select(&self, rows: &[usize], cols: &[usize]) -> Mat<T> {
        let mut out = Mat::zeros(rows.len(), cols.len());
        for (jj, &j) in cols.iter().enumerate() {
            let src = self.col(j);
            let dst = out.col_mut(jj);
            for (ii, &i) in rows.iter().enumerate() {
                dst[ii] = src[i];
            }
        }
        out
    }

    /// Contiguous block copy `self[r0..r0+nr, c0..c0+nc]`.
    pub fn block(&self, r0: usize, c0: usize, nr: usize, nc: usize) -> Mat<T> {
        assert!(r0 + nr <= self.nrows && c0 + nc <= self.ncols);
        let mut out = Mat::zeros(nr, nc);
        for j in 0..nc {
            let src = &self.col(c0 + j)[r0..r0 + nr];
            out.col_mut(j).copy_from_slice(src);
        }
        out
    }

    /// Write `block` into `self` starting at `(r0, c0)`.
    pub fn set_block(&mut self, r0: usize, c0: usize, block: &Mat<T>) {
        assert!(r0 + block.nrows <= self.nrows && c0 + block.ncols <= self.ncols);
        for j in 0..block.ncols {
            let dst_col = self.col_mut(c0 + j);
            dst_col[r0..r0 + block.nrows].copy_from_slice(block.col(j));
        }
    }

    /// Gather rows `idx` into a dense `idx.len() x ncols` matrix — the
    /// multi-RHS analogue of the solve phase's vector gather. Indices may
    /// repeat; they are read, never aliased mutably.
    pub fn gather_rows(&self, idx: &[u32]) -> Mat<T> {
        let mut out = Mat::zeros(idx.len(), self.ncols);
        for j in 0..self.ncols {
            let src = self.col(j);
            let dst = out.col_mut(j);
            for (k, &i) in idx.iter().enumerate() {
                dst[k] = src[i as usize];
            }
        }
        out
    }

    /// Scatter `vals` back into rows `idx`: `self[idx[k], j] = vals[k, j]`.
    pub fn scatter_rows(&mut self, idx: &[u32], vals: &Mat<T>) {
        assert_eq!(vals.nrows, idx.len());
        assert_eq!(vals.ncols, self.ncols);
        for j in 0..self.ncols {
            let src = vals.col(j);
            let dst = self.col_mut(j);
            for (k, &i) in idx.iter().enumerate() {
                dst[i as usize] = src[k];
            }
        }
    }

    /// Subtract `vals` from rows `idx`: `self[idx[k], j] -= vals[k, j]`.
    /// Used to merge additive neighbor updates in a fixed record order so
    /// the threaded solve apply stays bit-deterministic.
    pub fn scatter_rows_sub(&mut self, idx: &[u32], vals: &Mat<T>) {
        assert_eq!(vals.nrows, idx.len());
        assert_eq!(vals.ncols, self.ncols);
        for j in 0..self.ncols {
            let src = vals.col(j);
            let dst = self.col_mut(j);
            for (k, &i) in idx.iter().enumerate() {
                dst[i as usize] -= src[k];
            }
        }
    }

    /// `self += alpha * other`, entry-wise.
    pub fn axpy(&mut self, alpha: T, other: &Mat<T>) {
        assert_eq!(self.nrows, other.nrows);
        assert_eq!(self.ncols, other.ncols);
        for (d, s) in self.data.iter_mut().zip(other.data.iter()) {
            *d += alpha * *s;
        }
    }

    /// Scale every entry by `alpha`.
    pub fn scale_assign(&mut self, alpha: T) {
        for d in self.data.iter_mut() {
            *d *= alpha;
        }
    }

    /// Stack vertically: `[self; bottom]`.
    pub fn vstack(&self, bottom: &Mat<T>) -> Mat<T> {
        assert_eq!(self.ncols, bottom.ncols, "vstack: column mismatch");
        let mut out = Mat::zeros(self.nrows + bottom.nrows, self.ncols);
        for j in 0..self.ncols {
            out.col_mut(j)[..self.nrows].copy_from_slice(self.col(j));
            out.col_mut(j)[self.nrows..].copy_from_slice(bottom.col(j));
        }
        out
    }

    /// Stack horizontally: `[self, right]`.
    pub fn hstack(&self, right: &Mat<T>) -> Mat<T> {
        assert_eq!(self.nrows, right.nrows, "hstack: row mismatch");
        let mut data = Vec::with_capacity((self.ncols + right.ncols) * self.nrows);
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&right.data);
        Mat::from_vec(self.nrows, self.ncols + right.ncols, data)
    }

    /// Matrix-vector product `y = self * x`.
    pub fn matvec(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.ncols);
        let mut y = vec![T::ZERO; self.nrows];
        self.matvec_acc_into(x, &mut y);
        y
    }

    /// `y += self * x`.
    pub fn matvec_acc_into(&self, x: &[T], y: &mut [T]) {
        assert_eq!(x.len(), self.ncols);
        assert_eq!(y.len(), self.nrows);
        for j in 0..self.ncols {
            let xj = x[j];
            if xj == T::ZERO {
                continue;
            }
            let col = self.col(j);
            for i in 0..self.nrows {
                y[i] += col[i] * xj;
            }
        }
    }

    /// `y -= self * x`.
    pub fn matvec_sub_into(&self, x: &[T], y: &mut [T]) {
        assert_eq!(x.len(), self.ncols);
        assert_eq!(y.len(), self.nrows);
        for j in 0..self.ncols {
            let xj = x[j];
            if xj == T::ZERO {
                continue;
            }
            let col = self.col(j);
            for i in 0..self.nrows {
                y[i] -= col[i] * xj;
            }
        }
    }

    /// `y += self^H * x` (adjoint matvec).
    pub fn adjoint_matvec_acc_into(&self, x: &[T], y: &mut [T]) {
        assert_eq!(x.len(), self.nrows);
        assert_eq!(y.len(), self.ncols);
        for j in 0..self.ncols {
            let col = self.col(j);
            let mut acc = T::ZERO;
            for i in 0..self.nrows {
                acc += col[i].conj() * x[i];
            }
            y[j] += acc;
        }
    }

    /// Approximate number of heap bytes held by the matrix.
    pub fn heap_bytes(&self) -> usize {
        self.data.capacity() * core::mem::size_of::<T>()
    }
}

impl<T: Scalar> Index<(usize, usize)> for Mat<T> {
    type Output = T;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &T {
        debug_assert!(
            i < self.nrows && j < self.ncols,
            "index ({i},{j}) out of bounds"
        );
        &self.data[j * self.nrows + i]
    }
}

impl<T: Scalar> IndexMut<(usize, usize)> for Mat<T> {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut T {
        debug_assert!(
            i < self.nrows && j < self.ncols,
            "index ({i},{j}) out of bounds"
        );
        &mut self.data[j * self.nrows + i]
    }
}

impl<T: fmt::Debug> fmt::Debug for Mat<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Mat {}x{} [", self.nrows, self.ncols)?;
        let show_rows = self.nrows.min(8);
        let show_cols = self.ncols.min(8);
        for i in 0..show_rows {
            write!(f, "  ")?;
            for j in 0..show_cols {
                write!(f, "{:?} ", self.data[j * self.nrows + i])?;
            }
            writeln!(f, "{}", if self.ncols > show_cols { "..." } else { "" })?;
        }
        if self.nrows > show_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::c64;

    #[test]
    fn construction_and_indexing() {
        let m = Mat::from_fn(3, 2, |i, j| (10 * i + j) as f64);
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.ncols(), 2);
        assert_eq!(m[(2, 1)], 21.0);
        assert_eq!(m.col(1), &[1.0, 11.0, 21.0]);
        let id: Mat<f64> = Mat::identity(3);
        assert_eq!(id[(0, 0)], 1.0);
        assert_eq!(id[(1, 0)], 0.0);
    }

    #[test]
    fn zero_sized_matrices_are_fine() {
        let m: Mat<f64> = Mat::zeros(0, 5);
        assert!(m.is_empty());
        let v = m.matvec(&[1.0; 5]);
        assert!(v.is_empty());
        let t = m.transpose();
        assert_eq!(t.nrows(), 5);
        assert_eq!(t.ncols(), 0);
        let s = m.select(&[], &[1, 2]);
        assert_eq!(s.nrows(), 0);
        assert_eq!(s.ncols(), 2);
    }

    #[test]
    fn transpose_and_adjoint() {
        let m = Mat::from_fn(2, 3, |i, j| c64::new(i as f64, j as f64));
        let t = m.transpose();
        let a = m.adjoint();
        assert_eq!(t[(2, 1)], m[(1, 2)]);
        assert_eq!(a[(2, 1)], m[(1, 2)].conj());
        // (A^H)^H == A
        let back = a.adjoint();
        assert_eq!(back, m);
    }

    #[test]
    fn select_and_block() {
        let m = Mat::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let s = m.select(&[3, 0], &[1, 2]);
        assert_eq!(s[(0, 0)], m[(3, 1)]);
        assert_eq!(s[(1, 1)], m[(0, 2)]);
        let b = m.block(1, 2, 2, 2);
        assert_eq!(b[(0, 0)], m[(1, 2)]);
        assert_eq!(b[(1, 1)], m[(2, 3)]);
        let mut z = Mat::zeros(4, 4);
        z.set_block(1, 2, &b);
        assert_eq!(z[(2, 3)], m[(2, 3)]);
        assert_eq!(z[(0, 0)], 0.0);
    }

    #[test]
    fn swap_rows_cols() {
        let mut m = Mat::from_fn(3, 3, |i, j| (i * 3 + j) as f64);
        let orig = m.clone();
        m.swap_cols(0, 2);
        assert_eq!(m[(1, 0)], orig[(1, 2)]);
        m.swap_cols(0, 2);
        m.swap_rows(0, 1);
        assert_eq!(m[(0, 2)], orig[(1, 2)]);
        m.swap_rows(0, 0); // no-op
        m.swap_cols(1, 1); // no-op
    }

    #[test]
    fn stack_operations() {
        let a = Mat::from_fn(2, 2, |i, j| (i + j) as f64);
        let b = Mat::from_fn(1, 2, |_, j| (10 + j) as f64);
        let v = a.vstack(&b);
        assert_eq!(v.nrows(), 3);
        assert_eq!(v[(2, 1)], 11.0);
        let c = Mat::from_fn(2, 1, |i, _| (20 + i) as f64);
        let h = a.hstack(&c);
        assert_eq!(h.ncols(), 3);
        assert_eq!(h[(1, 2)], 21.0);
    }

    #[test]
    fn matvec_variants() {
        let m = Mat::from_fn(2, 3, |i, j| (i * 3 + j + 1) as f64);
        let x = [1.0, 0.0, -1.0];
        let y = m.matvec(&x);
        assert_eq!(y, vec![1.0 - 3.0, 4.0 - 6.0]);
        let mut acc = vec![1.0, 1.0];
        m.matvec_acc_into(&x, &mut acc);
        assert_eq!(acc, vec![-1.0, -1.0]);
        let mut sub = vec![0.0, 0.0];
        m.matvec_sub_into(&x, &mut sub);
        assert_eq!(sub, vec![2.0, 2.0]);
        let mut at = vec![0.0; 3];
        m.adjoint_matvec_acc_into(&[1.0, 1.0], &mut at);
        assert_eq!(at, vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn gather_scatter_rows_roundtrip() {
        let m = Mat::from_fn(5, 3, |i, j| (10 * i + j) as f64);
        let idx = [4u32, 0, 2];
        let g = m.gather_rows(&idx);
        assert_eq!(g.nrows(), 3);
        assert_eq!(g[(0, 1)], m[(4, 1)]);
        assert_eq!(g[(2, 2)], m[(2, 2)]);
        let mut back = Mat::zeros(5, 3);
        back.scatter_rows(&idx, &g);
        for &i in &idx {
            for j in 0..3 {
                assert_eq!(back[(i as usize, j)], m[(i as usize, j)]);
            }
        }
        assert_eq!(back[(1, 0)], 0.0);
        let mut sub = m.clone();
        sub.scatter_rows_sub(&idx, &g);
        for &i in &idx {
            for j in 0..3 {
                assert_eq!(sub[(i as usize, j)], 0.0);
            }
        }
        assert_eq!(sub[(3, 1)], m[(3, 1)]);
        // Empty index set and zero-column RHS are fine.
        let e = m.gather_rows(&[]);
        assert_eq!(e.nrows(), 0);
        let z: Mat<f64> = Mat::zeros(5, 0);
        let gz = z.gather_rows(&idx);
        assert_eq!((gz.nrows(), gz.ncols()), (3, 0));
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Mat::from_fn(2, 2, |i, j| (i + j) as f64);
        let b = Mat::identity(2);
        a.axpy(2.0, &b);
        assert_eq!(a[(0, 0)], 2.0);
        assert_eq!(a[(1, 1)], 4.0);
        a.scale_assign(0.5);
        assert_eq!(a[(1, 1)], 2.0);
    }

    #[test]
    #[should_panic]
    fn from_vec_length_mismatch_panics() {
        let _ = Mat::<f64>::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }
}
