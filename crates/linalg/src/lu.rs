//! Partially pivoted LU factorization.
//!
//! Used to eliminate the redundant diagonal blocks `X_RR` in the strong
//! skeletonization operator and to finish the top of the tree with a dense
//! solve. Row pivoting is essential: the skeletonized diagonal blocks are
//! well conditioned empirically but carry no structural guarantee.

use crate::gemm::gemm_acc_block;
use crate::mat::Mat;
use crate::scalar::Scalar;
use crate::triangular::{
    solve_lower_mat, solve_lower_mat_unblocked, solve_lower_vec, solve_upper_mat, solve_upper_vec,
};

/// Panel width of the blocked factorization.
const NB: usize = 48;

/// Packed LU factors of a square matrix: `P A = L U` with unit-lower `L`
/// and upper `U` stored in one matrix, plus the pivot row swaps.
#[derive(Clone, Debug)]
pub struct Lu<T> {
    /// Packed factors: strictly-lower part of `L` and the whole of `U`.
    pub lu: Mat<T>,
    /// `piv[k] = r` means rows `k` and `r` were swapped at step `k`.
    pub piv: Vec<usize>,
}

/// Error raised when a pivot column is exactly zero (singular to working
/// precision).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SingularError {
    /// Elimination step at which no usable pivot was found.
    pub step: usize,
}

impl core::fmt::Display for SingularError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "matrix is singular at elimination step {}", self.step)
    }
}

impl std::error::Error for SingularError {}

impl<T: Scalar> Lu<T> {
    /// Factor `a` with partial (row) pivoting.
    ///
    /// Panel-blocked right-looking elimination: each `NB`-column panel is
    /// factored with the level-2 kernel (pivot swaps applied across the
    /// full matrix), the `U12` block is obtained by a unit-lower
    /// triangular solve against the panel, and the trailing Schur update
    /// `A22 -= L21 * U12` rides the cache-blocked GEMM.
    pub fn factor(mut a: Mat<T>) -> Result<Self, SingularError> {
        let n = a.nrows();
        assert_eq!(a.ncols(), n, "LU requires a square matrix");
        if n <= NB {
            return Self::factor_unblocked(a);
        }
        let mut piv = Vec::with_capacity(n);
        let mut j0 = 0;
        while j0 < n {
            let nb = NB.min(n - j0);
            // Level-2 panel factorization on columns j0..j0+nb.
            for k in j0..j0 + nb {
                let col = a.col(k);
                let mut best = k;
                let mut best_abs = col[k].abs();
                for i in (k + 1)..n {
                    let v = col[i].abs();
                    if v > best_abs {
                        best_abs = v;
                        best = i;
                    }
                }
                if best_abs == 0.0 {
                    return Err(SingularError { step: k });
                }
                piv.push(best);
                a.swap_rows(k, best);
                let inv = a[(k, k)].recip();
                let colk_tail: Vec<T> = {
                    let colk = a.col_mut(k);
                    for i in (k + 1)..n {
                        colk[i] *= inv;
                    }
                    colk[k + 1..].to_vec()
                };
                // Rank-1 update restricted to the remaining panel columns.
                for j in (k + 1)..(j0 + nb) {
                    let akj = a[(k, j)];
                    if akj == T::ZERO {
                        continue;
                    }
                    let colj = a.col_mut(j);
                    for (off, lik) in colk_tail.iter().enumerate() {
                        colj[k + 1 + off] -= *lik * akj;
                    }
                }
            }
            if j0 + nb < n {
                // U12 := L11^{-1} A12 (unit lower triangular from the panel).
                let l11 = a.block(j0, j0, nb, nb);
                let mut u12 = a.block(j0, j0 + nb, nb, n - j0 - nb);
                solve_lower_mat_unblocked(&l11, true, &mut u12);
                a.set_block(j0, j0 + nb, &u12);
                // Schur update: A22 -= L21 * U12.
                let l21 = a.block(j0 + nb, j0, n - j0 - nb, nb);
                gemm_acc_block(
                    &mut a,
                    (j0 + nb, j0 + nb, n - j0 - nb, n - j0 - nb),
                    -T::ONE,
                    &l21,
                    (0, 0, n - j0 - nb, nb),
                    &u12,
                    (0, 0, nb, n - j0 - nb),
                );
            }
            j0 += nb;
        }
        Ok(Self { lu: a, piv })
    }

    /// Unblocked right-looking reference factorization (test oracle; also
    /// handles small matrices).
    #[doc(hidden)]
    pub fn factor_unblocked(mut a: Mat<T>) -> Result<Self, SingularError> {
        let n = a.nrows();
        assert_eq!(a.ncols(), n, "LU requires a square matrix");
        let mut piv = Vec::with_capacity(n);
        for k in 0..n {
            // Pivot search in column k, rows k..n.
            let col = a.col(k);
            let mut best = k;
            let mut best_abs = col[k].abs();
            for i in (k + 1)..n {
                let v = col[i].abs();
                if v > best_abs {
                    best_abs = v;
                    best = i;
                }
            }
            if best_abs == 0.0 {
                return Err(SingularError { step: k });
            }
            piv.push(best);
            a.swap_rows(k, best);
            let pivot = a[(k, k)];
            let inv = pivot.recip();
            // Scale multipliers and apply the rank-1 update column by column.
            let colk_tail: Vec<T> = {
                let colk = a.col_mut(k);
                for i in (k + 1)..n {
                    colk[i] *= inv;
                }
                colk[k + 1..].to_vec()
            };
            for j in (k + 1)..n {
                let akj = a[(k, j)];
                if akj == T::ZERO {
                    continue;
                }
                let colj = a.col_mut(j);
                for (off, lik) in colk_tail.iter().enumerate() {
                    colj[k + 1 + off] -= *lik * akj;
                }
            }
        }
        Ok(Self { lu: a, piv })
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.lu.nrows()
    }

    /// Apply the row permutation `P` to a vector in place.
    pub fn apply_piv_vec(&self, b: &mut [T]) {
        for (k, &r) in self.piv.iter().enumerate() {
            b.swap(k, r);
        }
    }

    /// Apply `P` to every column of a matrix in place.
    pub fn apply_piv_mat(&self, b: &mut Mat<T>) {
        for (k, &r) in self.piv.iter().enumerate() {
            if k != r {
                b.swap_rows(k, r);
            }
        }
    }

    /// In-place solve `b := A^{-1} b`.
    pub fn solve_vec(&self, b: &mut [T]) {
        assert_eq!(b.len(), self.dim());
        self.apply_piv_vec(b);
        solve_lower_vec(&self.lu, true, b);
        solve_upper_vec(&self.lu, false, b);
    }

    /// In-place multi-RHS solve `B := A^{-1} B`.
    pub fn solve_mat(&self, b: &mut Mat<T>) {
        assert_eq!(b.nrows(), self.dim());
        self.apply_piv_mat(b);
        solve_lower_mat(&self.lu, true, b);
        solve_upper_mat(&self.lu, false, b);
    }

    /// `b := L^{-1} P b` — the forward half, used by the factorization's
    /// upward solve pass.
    pub fn forward_vec(&self, b: &mut [T]) {
        assert_eq!(b.len(), self.dim());
        self.apply_piv_vec(b);
        solve_lower_vec(&self.lu, true, b);
    }

    /// `b := U^{-1} b` — the backward half, used by the downward pass.
    pub fn backward_vec(&self, b: &mut [T]) {
        assert_eq!(b.len(), self.dim());
        solve_upper_vec(&self.lu, false, b);
    }

    /// `B := L^{-1} P B`, matrix version of [`Lu::forward_vec`].
    pub fn forward_mat(&self, b: &mut Mat<T>) {
        assert_eq!(b.nrows(), self.dim());
        self.apply_piv_mat(b);
        solve_lower_mat(&self.lu, true, b);
    }

    /// `B := U^{-1} B`, matrix version of [`Lu::backward_vec`] — the
    /// blocked downward half of the factorization's multi-RHS solve.
    pub fn backward_mat(&self, b: &mut Mat<T>) {
        assert_eq!(b.nrows(), self.dim());
        solve_upper_mat(&self.lu, false, b);
    }

    /// `B := B U^{-1}` from the right, used to build `X_SR U^{-1}`.
    pub fn solve_upper_right(&self, b: &mut Mat<T>) {
        crate::triangular::solve_upper_right_mat(b, &self.lu, false);
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.lu.heap_bytes() + self.piv.capacity() * core::mem::size_of::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::c64;
    use crate::gemm::matmul;
    use crate::norms::max_abs_diff;

    fn test_matrix(n: usize) -> Mat<f64> {
        // Diagonally dominant + nonsymmetric perturbation: well conditioned.
        Mat::from_fn(n, n, |i, j| {
            if i == j {
                n as f64 + 1.0
            } else {
                ((i * 31 + j * 17) % 7) as f64 * 0.3 - 1.0
            }
        })
    }

    #[test]
    fn solve_recovers_solution() {
        for n in [1, 2, 5, 17] {
            let a = test_matrix(n);
            let x: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
            let mut b = a.matvec(&x);
            let lu = Lu::factor(a).unwrap();
            lu.solve_vec(&mut b);
            for (got, want) in b.iter().zip(x.iter()) {
                assert!((got - want).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn multi_rhs_solve() {
        let a = test_matrix(8);
        let x = Mat::from_fn(8, 3, |i, j| (i as f64 - j as f64) * 0.2);
        let mut b = matmul(&a, &x);
        let lu = Lu::factor(a).unwrap();
        lu.solve_mat(&mut b);
        assert!(max_abs_diff(&b, &x) < 1e-10);
    }

    #[test]
    fn forward_backward_mat_compose_to_solve_mat() {
        let a = test_matrix(9);
        let x = Mat::from_fn(9, 4, |i, j| (i as f64 * 0.6 - j as f64).cos());
        let b = matmul(&a, &x);
        let lu = Lu::factor(a).unwrap();
        let mut via_halves = b.clone();
        lu.forward_mat(&mut via_halves);
        lu.backward_mat(&mut via_halves);
        assert!(max_abs_diff(&via_halves, &x) < 1e-10);
        // And the halves compose to exactly the same op sequence solve_mat runs.
        let mut direct = b;
        lu.solve_mat(&mut direct);
        assert_eq!(via_halves, direct);
    }

    #[test]
    fn forward_backward_compose_to_solve() {
        let a = test_matrix(6);
        let x: Vec<f64> = (0..6).map(|i| i as f64 * 0.7 - 2.0).collect();
        let mut b = a.matvec(&x);
        let lu = Lu::factor(a).unwrap();
        lu.forward_vec(&mut b);
        lu.backward_vec(&mut b);
        for (got, want) in b.iter().zip(x.iter()) {
            assert!((got - want).abs() < 1e-10);
        }
    }

    #[test]
    fn right_solve_matches_inverse() {
        let a = test_matrix(5);
        let lu = Lu::factor(a.clone()).unwrap();
        // Compute A^{-1} column by column.
        let mut inv = Mat::identity(5);
        lu.solve_mat(&mut inv);
        // B U^{-1} where U from packed factors.
        let b = Mat::from_fn(3, 5, |i, j| (i + j) as f64 * 0.5 - 1.0);
        let mut upper = Mat::zeros(5, 5);
        for j in 0..5 {
            for i in 0..=j {
                upper[(i, j)] = lu.lu[(i, j)];
            }
        }
        let mut got = matmul(&b, &upper);
        lu.solve_upper_right(&mut got);
        assert!(max_abs_diff(&got, &b) < 1e-10);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Mat::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]); // [[0,1],[1,0]]
        let lu = Lu::factor(a).unwrap();
        let mut b = vec![2.0, 3.0];
        lu.solve_vec(&mut b);
        // A = antidiagonal, A x = b => x = [3, 2]
        assert!((b[0] - 3.0).abs() < 1e-14);
        assert!((b[1] - 2.0).abs() < 1e-14);
    }

    #[test]
    fn singular_matrix_is_detected() {
        let a = Mat::from_vec(2, 2, vec![1.0, 2.0, 2.0, 4.0]); // rank 1
        match Lu::factor(a) {
            Err(SingularError { step }) => assert_eq!(step, 1),
            Ok(_) => panic!("expected singularity"),
        }
    }

    #[test]
    fn complex_lu() {
        let a = Mat::from_fn(4, 4, |i, j| {
            if i == j {
                c64::new(4.0, 1.0)
            } else {
                c64::new(0.3 * i as f64, -0.2 * j as f64)
            }
        });
        let x: Vec<c64> = (0..4).map(|i| c64::new(i as f64, 1.0 - i as f64)).collect();
        let mut b = a.matvec(&x);
        let lu = Lu::factor(a).unwrap();
        lu.solve_vec(&mut b);
        for (got, want) in b.iter().zip(x.iter()) {
            assert!((*got - *want).norm() < 1e-10);
        }
    }

    #[test]
    fn reconstruction_pa_eq_lu() {
        let n = 7;
        let a = test_matrix(n);
        let lu = Lu::factor(a.clone()).unwrap();
        let mut l = Mat::identity(n);
        let mut u = Mat::zeros(n, n);
        for j in 0..n {
            for i in 0..n {
                if i > j {
                    l[(i, j)] = lu.lu[(i, j)];
                } else {
                    u[(i, j)] = lu.lu[(i, j)];
                }
            }
        }
        let mut pa = a;
        lu.apply_piv_mat(&mut pa);
        assert!(max_abs_diff(&pa, &matmul(&l, &u)) < 1e-12);
    }
}
