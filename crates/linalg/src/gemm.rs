//! Matrix-matrix products.
//!
//! The solver's hot loop is the Schur-complement update `A_NN -= E * F`
//! with blocks whose dimensions are the per-box skeleton ranks (tens to low
//! hundreds). A register-blocked jki-order kernel with contiguous column
//! access keeps this within a small factor of tuned BLAS at those sizes.

use crate::mat::Mat;
use crate::scalar::Scalar;

/// `C = A * B`.
pub fn matmul<T: Scalar>(a: &Mat<T>, b: &Mat<T>) -> Mat<T> {
    let mut c = Mat::zeros(a.nrows(), b.ncols());
    matmul_acc(&mut c, T::ONE, a, b);
    c
}

/// `C += alpha * A * B`.
///
/// jki loop order: for each output column `j`, accumulate rank-1 updates
/// `alpha * b[l,j] * A[:,l]`; both the read of `A[:,l]` and the update of
/// `C[:,j]` are contiguous.
pub fn matmul_acc<T: Scalar>(c: &mut Mat<T>, alpha: T, a: &Mat<T>, b: &Mat<T>) {
    assert_eq!(a.ncols(), b.nrows(), "gemm: inner dimension mismatch");
    assert_eq!(c.nrows(), a.nrows(), "gemm: output rows mismatch");
    assert_eq!(c.ncols(), b.ncols(), "gemm: output cols mismatch");
    let m = a.nrows();
    let k = a.ncols();
    if m == 0 || k == 0 || b.ncols() == 0 {
        return;
    }
    for j in 0..b.ncols() {
        let bcol = b.col(j);
        let ccol = c.col_mut(j);
        // Unroll over pairs of inner indices to expose ILP.
        let mut l = 0;
        while l + 1 < k {
            let s0 = alpha * bcol[l];
            let s1 = alpha * bcol[l + 1];
            let a0 = a.col(l);
            let a1 = a.col(l + 1);
            for i in 0..m {
                ccol[i] += a0[i] * s0 + a1[i] * s1;
            }
            l += 2;
        }
        if l < k {
            let s0 = alpha * bcol[l];
            let a0 = a.col(l);
            for i in 0..m {
                ccol[i] += a0[i] * s0;
            }
        }
    }
}

/// `C -= A * B`, the Schur-update form.
pub fn matmul_sub<T: Scalar>(c: &mut Mat<T>, a: &Mat<T>, b: &Mat<T>) {
    matmul_acc(c, -T::ONE, a, b);
}

/// `C = A^H * B` (adjoint on the left).
pub fn adjoint_matmul<T: Scalar>(a: &Mat<T>, b: &Mat<T>) -> Mat<T> {
    assert_eq!(a.nrows(), b.nrows(), "A^H B: row mismatch");
    let m = a.ncols();
    let n = b.ncols();
    let k = a.nrows();
    let mut c = Mat::zeros(m, n);
    // Dot-product form: both operands stream down columns.
    for j in 0..n {
        let bcol = b.col(j);
        let ccol = c.col_mut(j);
        for (i, cij) in ccol.iter_mut().enumerate() {
            let acol = a.col(i);
            let mut acc = T::ZERO;
            for l in 0..k {
                acc += acol[l].conj() * bcol[l];
            }
            *cij = acc;
        }
    }
    c
}

/// `C -= A^H * B`.
pub fn adjoint_matmul_sub<T: Scalar>(c: &mut Mat<T>, a: &Mat<T>, b: &Mat<T>) {
    let prod = adjoint_matmul(a, b);
    c.axpy(-T::ONE, &prod);
}

/// `C = A * B^H` (adjoint on the right).
pub fn matmul_adjoint<T: Scalar>(a: &Mat<T>, b: &Mat<T>) -> Mat<T> {
    assert_eq!(a.ncols(), b.ncols(), "A B^H: inner mismatch");
    let m = a.nrows();
    let n = b.nrows();
    let k = a.ncols();
    let mut c = Mat::zeros(m, n);
    for l in 0..k {
        let acol = a.col(l);
        let bcol = b.col(l);
        for j in 0..n {
            let s = bcol[j].conj();
            if s == T::ZERO {
                continue;
            }
            let ccol = c.col_mut(j);
            for i in 0..m {
                ccol[i] += acol[i] * s;
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::c64;
    use crate::norms::max_abs_diff;

    fn naive<T: Scalar>(a: &Mat<T>, b: &Mat<T>) -> Mat<T> {
        Mat::from_fn(a.nrows(), b.ncols(), |i, j| {
            (0..a.ncols()).map(|l| a[(i, l)] * b[(l, j)]).sum()
        })
    }

    #[test]
    fn matmul_matches_naive_real() {
        for (m, k, n) in [(1, 1, 1), (3, 4, 2), (5, 5, 5), (7, 3, 6), (2, 8, 1)] {
            let a = Mat::from_fn(m, k, |i, j| ((i * 7 + j * 3) % 11) as f64 - 5.0);
            let b = Mat::from_fn(k, n, |i, j| ((i * 5 + j * 2) % 13) as f64 - 6.0);
            let c = matmul(&a, &b);
            assert!(max_abs_diff(&c, &naive(&a, &b)) < 1e-12);
        }
    }

    #[test]
    fn matmul_matches_naive_complex() {
        let a = Mat::from_fn(4, 3, |i, j| c64::new(i as f64, j as f64 - 1.0));
        let b = Mat::from_fn(3, 5, |i, j| c64::new(j as f64, -(i as f64)));
        let c = matmul(&a, &b);
        assert!(max_abs_diff(&c, &naive(&a, &b)) < 1e-12);
    }

    #[test]
    fn acc_and_sub_forms() {
        let a = Mat::from_fn(3, 3, |i, j| (i + 2 * j) as f64);
        let b = Mat::from_fn(3, 3, |i, j| (2 * i + j) as f64);
        let mut c = Mat::identity(3);
        matmul_acc(&mut c, 2.0, &a, &b);
        let mut expect = naive(&a, &b);
        expect.scale_assign(2.0);
        expect.axpy(1.0, &Mat::identity(3));
        assert!(max_abs_diff(&c, &expect) < 1e-12);

        let mut d = naive(&a, &b);
        matmul_sub(&mut d, &a, &b);
        assert!(max_abs_diff(&d, &Mat::zeros(3, 3)) < 1e-12);
    }

    #[test]
    fn adjoint_left_right() {
        let a = Mat::from_fn(4, 2, |i, j| c64::new(i as f64 + 1.0, j as f64));
        let b = Mat::from_fn(4, 3, |i, j| c64::new(j as f64, i as f64 - 2.0));
        let c = adjoint_matmul(&a, &b);
        let expect = naive(&a.adjoint(), &b);
        assert!(max_abs_diff(&c, &expect) < 1e-12);

        let w = Mat::from_fn(5, 3, |i, j| c64::new(i as f64 * 0.5, 1.0 - j as f64));
        let d = matmul_adjoint(&b, &w);
        let expect2 = naive(&b, &w.adjoint());
        assert!(max_abs_diff(&d, &expect2) < 1e-12);

        let mut e = expect.clone();
        adjoint_matmul_sub(&mut e, &a, &b);
        assert!(max_abs_diff(&e, &Mat::zeros(2, 3)) < 1e-12);
    }

    #[test]
    fn empty_dimensions() {
        let a: Mat<f64> = Mat::zeros(0, 3);
        let b: Mat<f64> = Mat::zeros(3, 2);
        let c = matmul(&a, &b);
        assert_eq!(c.nrows(), 0);
        let a2: Mat<f64> = Mat::zeros(2, 0);
        let b2: Mat<f64> = Mat::zeros(0, 2);
        let c2 = matmul(&a2, &b2);
        assert_eq!(max_abs_diff(&c2, &Mat::zeros(2, 2)), 0.0);
    }
}
