//! Matrix-matrix products (the level-3 core of the solver).
//!
//! Two products dominate factorization wall-clock: the Schur-complement
//! update `A_NN -= E * F` during elimination and the trailing-matrix
//! updates inside the blocked QR / CPQR / LU routines. [`matmul_acc`]
//! therefore runs a cache-blocked GEMM: operands are packed into
//! contiguous micro-panels (`MC x KC` of `A`, `KC x NC` of `B`) and
//! combined by a register-tiled fused-multiply-add micro-kernel (16x4 for
//! `f64`, 4x4 for [`crate::c64`]), with an opt-in `std::thread::scope`
//! parallel path over
//! output column panels for large products (see [`set_gemm_threads`]).
//! Small products fall through to a register-blocked jki kernel, which is
//! also exposed as [`matmul_acc_naive`] — the reference oracle the blocked
//! path is tested against.

use crate::mat::Mat;
use crate::scalar::Scalar;
use core::cell::Cell;

// ---------------------------------------------------------------------------
// Threading knob
// ---------------------------------------------------------------------------

thread_local! {
    static GEMM_THREADS: Cell<usize> = const { Cell::new(1) };
}

/// The GEMM worker-thread budget of the *current* thread (default 1, i.e.
/// serial). Thread-local on purpose: the colored and distributed drivers
/// run many box eliminations on their own worker threads, where nested
/// GEMM parallelism would only oversubscribe — their workers keep the
/// serial default while the sequential driver can opt in.
pub fn gemm_threads() -> usize {
    GEMM_THREADS.with(Cell::get)
}

/// Set the GEMM thread budget for the current thread and return the
/// previous value. `0` means "auto" (`std::thread::available_parallelism`).
/// Products below a size threshold stay serial regardless.
pub fn set_gemm_threads(n: usize) -> usize {
    let n = if n == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        n
    };
    GEMM_THREADS.with(|c| c.replace(n))
}

// ---------------------------------------------------------------------------
// Blocking parameters
// ---------------------------------------------------------------------------

/// Rows of a packed `A` panel (sized so the panel fits in L2 for `f64`).
const MC: usize = 128;
/// Shared inner dimension of packed panels.
const KC: usize = 128;
/// Columns of a packed `B` panel.
const NC: usize = 512;

/// Below this many multiply-adds the packing overhead is not worth it and
/// the jki kernel wins.
const BLOCK_MIN_FLOPS: usize = 96 * 96 * 24;
/// Minimum multiply-adds before the scoped-thread path engages.
const PAR_MIN_FLOPS: usize = 160 * 160 * 160;
/// Minimum output columns handed to one worker thread.
const PAR_MIN_COLS: usize = 32;

// ---------------------------------------------------------------------------
// Column-major views (support sub-block products without copies)
// ---------------------------------------------------------------------------

/// Read-only view of a column-major sub-block.
#[derive(Clone, Copy)]
struct View<'a, T> {
    data: &'a [T],
    ld: usize,
    r0: usize,
    c0: usize,
    rows: usize,
    cols: usize,
}

impl<'a, T: Scalar> View<'a, T> {
    fn of(m: &'a Mat<T>) -> Self {
        Self {
            data: m.as_slice(),
            ld: m.nrows().max(1),
            r0: 0,
            c0: 0,
            rows: m.nrows(),
            cols: m.ncols(),
        }
    }

    fn sub(m: &'a Mat<T>, (r0, c0, rows, cols): BlockSpec) -> Self {
        assert!(r0 + rows <= m.nrows() && c0 + cols <= m.ncols());
        Self {
            data: m.as_slice(),
            ld: m.nrows().max(1),
            r0,
            c0,
            rows,
            cols,
        }
    }

    #[inline]
    fn col(&self, j: usize) -> &'a [T] {
        let s = (self.c0 + j) * self.ld + self.r0;
        &self.data[s..s + self.rows]
    }

    /// Narrow to columns `j0 .. j0 + cols`.
    fn subcols(mut self, j0: usize, cols: usize) -> Self {
        debug_assert!(j0 + cols <= self.cols);
        self.c0 += j0;
        self.cols = cols;
        self
    }
}

/// Mutable view of a column-major sub-block. `base` is the element offset
/// of `data[0]` within the original full buffer, so views survive being
/// split at column boundaries for the threaded path.
struct ViewMut<'a, T> {
    data: &'a mut [T],
    ld: usize,
    base: usize,
    r0: usize,
    c0: usize,
    rows: usize,
    cols: usize,
}

impl<'a, T: Scalar> ViewMut<'a, T> {
    fn sub(m: &'a mut Mat<T>, (r0, c0, rows, cols): BlockSpec) -> Self {
        assert!(r0 + rows <= m.nrows() && c0 + cols <= m.ncols());
        let ld = m.nrows().max(1);
        Self {
            data: m.as_mut_slice(),
            ld,
            base: 0,
            r0,
            c0,
            rows,
            cols,
        }
    }

    #[inline]
    fn col_mut(&mut self, j: usize) -> &mut [T] {
        let s = (self.c0 + j) * self.ld + self.r0 - self.base;
        &mut self.data[s..s + self.rows]
    }

    /// Split at column `j` into disjoint views over `0..j` and `j..cols`.
    fn split_cols(self, j: usize) -> (ViewMut<'a, T>, ViewMut<'a, T>) {
        debug_assert!(j <= self.cols);
        let cut = (self.c0 + j) * self.ld - self.base;
        let cut = cut.min(self.data.len());
        let (head, tail) = self.data.split_at_mut(cut);
        (
            ViewMut {
                data: head,
                ld: self.ld,
                base: self.base,
                r0: self.r0,
                c0: self.c0,
                rows: self.rows,
                cols: j,
            },
            ViewMut {
                data: tail,
                ld: self.ld,
                base: self.base + cut,
                r0: self.r0,
                c0: self.c0 + j,
                rows: self.rows,
                cols: self.cols - j,
            },
        )
    }
}

/// Sub-block coordinates `(row offset, col offset, rows, cols)`.
pub(crate) type BlockSpec = (usize, usize, usize, usize);

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

/// `C = A * B`.
pub fn matmul<T: Scalar>(a: &Mat<T>, b: &Mat<T>) -> Mat<T> {
    let mut c = Mat::zeros(a.nrows(), b.ncols());
    matmul_acc(&mut c, T::ONE, a, b);
    c
}

/// `C += alpha * A * B`, cache-blocked above a size threshold.
pub fn matmul_acc<T: Scalar>(c: &mut Mat<T>, alpha: T, a: &Mat<T>, b: &Mat<T>) {
    assert_eq!(a.ncols(), b.nrows(), "gemm: inner dimension mismatch");
    assert_eq!(c.nrows(), a.nrows(), "gemm: output rows mismatch");
    assert_eq!(c.ncols(), b.ncols(), "gemm: output cols mismatch");
    let (m, n) = (c.nrows(), c.ncols());
    let cblk = (0, 0, m, n);
    gemm_dispatch(ViewMut::sub(c, cblk), alpha, View::of(a), View::of(b));
}

/// `C -= A * B`, the Schur-update form.
pub fn matmul_sub<T: Scalar>(c: &mut Mat<T>, a: &Mat<T>, b: &Mat<T>) {
    matmul_acc(c, -T::ONE, a, b);
}

/// `C[cblk] += alpha * A[ablk] * B[bblk]` on sub-blocks, without copying
/// the operands out — the building block of the panel-blocked LU and the
/// blocked triangular solves.
pub(crate) fn gemm_acc_block<T: Scalar>(
    c: &mut Mat<T>,
    cblk: BlockSpec,
    alpha: T,
    a: &Mat<T>,
    ablk: BlockSpec,
    b: &Mat<T>,
    bblk: BlockSpec,
) {
    debug_assert_eq!(ablk.3, bblk.2, "gemm block: inner dimension mismatch");
    debug_assert_eq!(cblk.2, ablk.2, "gemm block: output rows mismatch");
    debug_assert_eq!(cblk.3, bblk.3, "gemm block: output cols mismatch");
    gemm_dispatch(
        ViewMut::sub(c, cblk),
        alpha,
        View::sub(a, ablk),
        View::sub(b, bblk),
    );
}

/// `C += alpha * A * B`, reference jki kernel: for each output column `j`,
/// accumulate rank-1 updates `alpha * b[l,j] * A[:,l]`; both the read of
/// `A[:,l]` and the update of `C[:,j]` are contiguous. Serves small
/// products and is the test oracle for the blocked path.
#[doc(hidden)]
pub fn matmul_acc_naive<T: Scalar>(c: &mut Mat<T>, alpha: T, a: &Mat<T>, b: &Mat<T>) {
    assert_eq!(a.ncols(), b.nrows(), "gemm: inner dimension mismatch");
    assert_eq!(c.nrows(), a.nrows(), "gemm: output rows mismatch");
    assert_eq!(c.ncols(), b.ncols(), "gemm: output cols mismatch");
    let (m, n) = (c.nrows(), c.ncols());
    gemm_naive(
        ViewMut::sub(c, (0, 0, m, n)),
        alpha,
        View::of(a),
        View::of(b),
    );
}

/// `C = A^H * B` (adjoint on the left).
pub fn adjoint_matmul<T: Scalar>(a: &Mat<T>, b: &Mat<T>) -> Mat<T> {
    let mut c = Mat::zeros(a.ncols(), b.ncols());
    adjoint_matmul_acc(&mut c, T::ONE, a, b);
    c
}

/// `C += alpha * A^H * B`. Large products are routed through a tiled
/// explicit adjoint plus the blocked GEMM; small ones use the dot-product
/// form directly.
pub fn adjoint_matmul_acc<T: Scalar>(c: &mut Mat<T>, alpha: T, a: &Mat<T>, b: &Mat<T>) {
    assert_eq!(a.nrows(), b.nrows(), "A^H B: row mismatch");
    assert_eq!(c.nrows(), a.ncols(), "A^H B: output rows mismatch");
    assert_eq!(c.ncols(), b.ncols(), "A^H B: output cols mismatch");
    let m = a.ncols();
    let n = b.ncols();
    let k = a.nrows();
    if m * n * k >= BLOCK_MIN_FLOPS {
        let at = a.adjoint();
        matmul_acc(c, alpha, &at, b);
        return;
    }
    adjoint_matmul_acc_naive(c, alpha, a, b);
}

/// `C -= A^H * B`.
pub fn adjoint_matmul_sub<T: Scalar>(c: &mut Mat<T>, a: &Mat<T>, b: &Mat<T>) {
    adjoint_matmul_acc(c, -T::ONE, a, b);
}

/// Reference dot-product form of `C += alpha * A^H B`: both operands
/// stream down columns.
#[doc(hidden)]
pub fn adjoint_matmul_acc_naive<T: Scalar>(c: &mut Mat<T>, alpha: T, a: &Mat<T>, b: &Mat<T>) {
    assert_eq!(a.nrows(), b.nrows(), "A^H B: row mismatch");
    let k = a.nrows();
    for j in 0..b.ncols() {
        let bcol = b.col(j);
        let ccol = c.col_mut(j);
        for (i, cij) in ccol.iter_mut().enumerate() {
            let acol = a.col(i);
            let mut acc = T::ZERO;
            for l in 0..k {
                acc += acol[l].conj() * bcol[l];
            }
            *cij += alpha * acc;
        }
    }
}

/// `C = A * B^H` (adjoint on the right). Large products go through a tiled
/// explicit adjoint of `B` plus the blocked GEMM.
pub fn matmul_adjoint<T: Scalar>(a: &Mat<T>, b: &Mat<T>) -> Mat<T> {
    assert_eq!(a.ncols(), b.ncols(), "A B^H: inner mismatch");
    let m = a.nrows();
    let n = b.nrows();
    let k = a.ncols();
    if m * n * k >= BLOCK_MIN_FLOPS {
        let bh = b.adjoint();
        return matmul(a, &bh);
    }
    matmul_adjoint_naive(a, b)
}

/// Reference rank-1-update form of `A * B^H`.
#[doc(hidden)]
pub fn matmul_adjoint_naive<T: Scalar>(a: &Mat<T>, b: &Mat<T>) -> Mat<T> {
    assert_eq!(a.ncols(), b.ncols(), "A B^H: inner mismatch");
    let m = a.nrows();
    let n = b.nrows();
    let k = a.ncols();
    let mut c = Mat::zeros(m, n);
    for l in 0..k {
        let acol = a.col(l);
        let bcol = b.col(l);
        for j in 0..n {
            let s = bcol[j].conj();
            if s == T::ZERO {
                continue;
            }
            let ccol = c.col_mut(j);
            for i in 0..m {
                ccol[i] += acol[i] * s;
            }
        }
    }
    c
}

// ---------------------------------------------------------------------------
// Dispatch + threaded path
// ---------------------------------------------------------------------------

fn gemm_dispatch<T: Scalar>(c: ViewMut<'_, T>, alpha: T, a: View<'_, T>, b: View<'_, T>) {
    let (m, n, k) = (c.rows, c.cols, a.cols);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let flops = m * n * k;
    if flops < BLOCK_MIN_FLOPS || m < 16 || n < 4 || k < 16 {
        gemm_naive(c, alpha, a, b);
        return;
    }
    let nt = if flops >= PAR_MIN_FLOPS {
        gemm_threads().min(n / PAR_MIN_COLS).max(1)
    } else {
        1
    };
    if nt <= 1 {
        gemm_blocked(c, alpha, a, b);
        return;
    }
    let chunk = n.div_ceil(nt);
    std::thread::scope(|s| {
        let mut rest = c;
        let mut j = 0;
        while j < n {
            let take = chunk.min(n - j);
            let (head, tail) = rest.split_cols(take);
            rest = tail;
            let bsub = b.subcols(j, take);
            s.spawn(move || gemm_blocked(head, alpha, a, bsub));
            j += take;
        }
    });
}

/// jki-order register-blocked kernel for small products and the oracle.
fn gemm_naive<T: Scalar>(mut c: ViewMut<'_, T>, alpha: T, a: View<'_, T>, b: View<'_, T>) {
    let (m, n, k) = (c.rows, c.cols, a.cols);
    if m == 0 || k == 0 {
        return;
    }
    for j in 0..n {
        let bcol = b.col(j);
        let ccol = c.col_mut(j);
        // Unroll over pairs of inner indices to expose ILP.
        let mut l = 0;
        while l + 1 < k {
            let s0 = alpha * bcol[l];
            let s1 = alpha * bcol[l + 1];
            let a0 = a.col(l);
            let a1 = a.col(l + 1);
            for i in 0..m {
                ccol[i] = a0[i].mul_add(s0, a1[i].mul_add(s1, ccol[i]));
            }
            l += 2;
        }
        if l < k {
            let s0 = alpha * bcol[l];
            let a0 = a.col(l);
            for i in 0..m {
                ccol[i] = a0[i].mul_add(s0, ccol[i]);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Blocked path: packing + register-tiled micro-kernel
// ---------------------------------------------------------------------------

fn gemm_blocked<T: Scalar>(c: ViewMut<'_, T>, alpha: T, a: View<'_, T>, b: View<'_, T>) {
    // Micro-tile sizes per scalar type: 16x4 keeps the 64 f64 accumulators
    // in sixteen 256-bit registers (tuned empirically against 8x4, 8x8,
    // 24x4 and 16x8); complex multiplies are 4x the flops, so 4x4 suffices.
    if T::IS_COMPLEX {
        gemm_blocked_mr_nr::<T, 4, 4>(c, alpha, a, b);
    } else {
        gemm_blocked_mr_nr::<T, 16, 4>(c, alpha, a, b);
    }
}

fn gemm_blocked_mr_nr<T: Scalar, const MR: usize, const NR: usize>(
    mut c: ViewMut<'_, T>,
    alpha: T,
    a: View<'_, T>,
    b: View<'_, T>,
) {
    let (m, n, k) = (c.rows, c.cols, a.cols);
    let mut apack: Vec<T> = Vec::new();
    let mut bpack: Vec<T> = Vec::new();
    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            pack_b::<T, NR>(b, pc, jc, kc, nc, &mut bpack);
            for ic in (0..m).step_by(MC) {
                let mc = MC.min(m - ic);
                pack_a::<T, MR>(a, ic, pc, mc, kc, &mut apack);
                let np = nc.div_ceil(NR);
                let mp = mc.div_ceil(MR);
                for q in 0..np {
                    let j0 = q * NR;
                    let jcols = NR.min(nc - j0);
                    let bpanel = &bpack[q * kc * NR..(q + 1) * kc * NR];
                    for p in 0..mp {
                        let i0 = p * MR;
                        let irows = MR.min(mc - i0);
                        let apanel = &apack[p * kc * MR..(p + 1) * kc * MR];
                        let acc = micro_kernel::<T, MR, NR>(kc, apanel, bpanel);
                        for j in 0..jcols {
                            let col = c.col_mut(jc + j0 + j);
                            let dst = &mut col[ic + i0..ic + i0 + irows];
                            for (d, av) in dst.iter_mut().zip(acc[j].iter()) {
                                *d += alpha * *av;
                            }
                        }
                    }
                }
            }
        }
    }
}

/// `MR x NR` register-tiled inner product over a depth-`kc` packed pair.
#[inline(always)]
fn micro_kernel<T: Scalar, const MR: usize, const NR: usize>(
    kc: usize,
    apanel: &[T],
    bpanel: &[T],
) -> [[T; MR]; NR] {
    let mut acc = [[T::ZERO; MR]; NR];
    for (av, bv) in apanel
        .chunks_exact(MR)
        .zip(bpanel.chunks_exact(NR))
        .take(kc)
    {
        for j in 0..NR {
            let s = bv[j];
            for i in 0..MR {
                acc[j][i] = av[i].mul_add(s, acc[j][i]);
            }
        }
    }
    acc
}

/// Pack `A[ic.., pc..]` (`mc x kc`) into row micro-panels of `MR`,
/// zero-padding the ragged bottom panel.
fn pack_a<T: Scalar, const MR: usize>(
    a: View<'_, T>,
    ic: usize,
    pc: usize,
    mc: usize,
    kc: usize,
    buf: &mut Vec<T>,
) {
    let panels = mc.div_ceil(MR);
    buf.clear();
    buf.resize(panels * kc * MR, T::ZERO);
    for p in 0..panels {
        let i0 = p * MR;
        let rows = MR.min(mc - i0);
        let dst = &mut buf[p * kc * MR..(p + 1) * kc * MR];
        for l in 0..kc {
            let src = &a.col(pc + l)[ic + i0..ic + i0 + rows];
            dst[l * MR..l * MR + rows].copy_from_slice(src);
        }
    }
}

/// Pack `B[pc.., jc..]` (`kc x nc`) into column micro-panels of `NR`,
/// zero-padding the ragged right panel.
fn pack_b<T: Scalar, const NR: usize>(
    b: View<'_, T>,
    pc: usize,
    jc: usize,
    kc: usize,
    nc: usize,
    buf: &mut Vec<T>,
) {
    let panels = nc.div_ceil(NR);
    buf.clear();
    buf.resize(panels * kc * NR, T::ZERO);
    for q in 0..panels {
        let j0 = q * NR;
        let cols = NR.min(nc - j0);
        let dst = &mut buf[q * kc * NR..(q + 1) * kc * NR];
        for j in 0..cols {
            let src = &b.col(jc + j0 + j)[pc..pc + kc];
            for (l, &v) in src.iter().enumerate() {
                dst[l * NR + j] = v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::c64;
    use crate::norms::max_abs_diff;

    fn naive<T: Scalar>(a: &Mat<T>, b: &Mat<T>) -> Mat<T> {
        Mat::from_fn(a.nrows(), b.ncols(), |i, j| {
            (0..a.ncols()).map(|l| a[(i, l)] * b[(l, j)]).sum()
        })
    }

    #[test]
    fn matmul_matches_naive_real() {
        for (m, k, n) in [(1, 1, 1), (3, 4, 2), (5, 5, 5), (7, 3, 6), (2, 8, 1)] {
            let a = Mat::from_fn(m, k, |i, j| ((i * 7 + j * 3) % 11) as f64 - 5.0);
            let b = Mat::from_fn(k, n, |i, j| ((i * 5 + j * 2) % 13) as f64 - 6.0);
            let c = matmul(&a, &b);
            assert!(max_abs_diff(&c, &naive(&a, &b)) < 1e-12);
        }
    }

    #[test]
    fn matmul_matches_naive_complex() {
        let a = Mat::from_fn(4, 3, |i, j| c64::new(i as f64, j as f64 - 1.0));
        let b = Mat::from_fn(3, 5, |i, j| c64::new(j as f64, -(i as f64)));
        let c = matmul(&a, &b);
        assert!(max_abs_diff(&c, &naive(&a, &b)) < 1e-12);
    }

    #[test]
    fn blocked_path_matches_naive() {
        // Big enough to cross BLOCK_MIN_FLOPS and exercise ragged edges.
        for (m, k, n) in [(97, 103, 67), (130, 260, 41), (256, 64, 64)] {
            let a = Mat::from_fn(m, k, |i, j| ((i * 7 + j * 3) % 23) as f64 * 0.25 - 2.0);
            let b = Mat::from_fn(k, n, |i, j| ((i * 5 + j * 11) % 19) as f64 * 0.5 - 4.0);
            let mut c = Mat::from_fn(m, n, |i, j| (i + j) as f64 * 0.01);
            let mut c_ref = c.clone();
            matmul_acc(&mut c, 1.5, &a, &b);
            matmul_acc_naive(&mut c_ref, 1.5, &a, &b);
            let scale = crate::norms::fro_norm(&c_ref).max(1.0);
            assert!(max_abs_diff(&c, &c_ref) < 1e-12 * scale);
        }
    }

    #[test]
    fn threaded_path_matches_serial() {
        let m = 192;
        let k = 192;
        let n = 192;
        let a = Mat::from_fn(m, k, |i, j| ((i * 13 + j) % 17) as f64 - 8.0);
        let b = Mat::from_fn(k, n, |i, j| ((i + 3 * j) % 29) as f64 * 0.1);
        let serial = matmul(&a, &b);
        let prev = set_gemm_threads(3);
        let threaded = matmul(&a, &b);
        set_gemm_threads(prev);
        // Thread split is by output columns only, so the arithmetic per
        // column is identical: results must match bit-for-bit.
        assert_eq!(max_abs_diff(&serial, &threaded), 0.0);
    }

    #[test]
    fn thread_knob_is_thread_local_and_restores() {
        assert_eq!(gemm_threads(), 1);
        let prev = set_gemm_threads(4);
        assert_eq!(prev, 1);
        assert_eq!(gemm_threads(), 4);
        std::thread::scope(|s| {
            s.spawn(|| assert_eq!(gemm_threads(), 1, "knob must not leak across threads"));
        });
        set_gemm_threads(prev);
        assert_eq!(gemm_threads(), 1);
        // 0 resolves to the available parallelism (>= 1).
        let before = set_gemm_threads(0);
        assert!(gemm_threads() >= 1);
        set_gemm_threads(before);
    }

    #[test]
    fn acc_and_sub_forms() {
        let a = Mat::from_fn(3, 3, |i, j| (i + 2 * j) as f64);
        let b = Mat::from_fn(3, 3, |i, j| (2 * i + j) as f64);
        let mut c = Mat::identity(3);
        matmul_acc(&mut c, 2.0, &a, &b);
        let mut expect = naive(&a, &b);
        expect.scale_assign(2.0);
        expect.axpy(1.0, &Mat::identity(3));
        assert!(max_abs_diff(&c, &expect) < 1e-12);

        let mut d = naive(&a, &b);
        matmul_sub(&mut d, &a, &b);
        assert!(max_abs_diff(&d, &Mat::zeros(3, 3)) < 1e-12);
    }

    #[test]
    fn adjoint_left_right() {
        let a = Mat::from_fn(4, 2, |i, j| c64::new(i as f64 + 1.0, j as f64));
        let b = Mat::from_fn(4, 3, |i, j| c64::new(j as f64, i as f64 - 2.0));
        let c = adjoint_matmul(&a, &b);
        let expect = naive(&a.adjoint(), &b);
        assert!(max_abs_diff(&c, &expect) < 1e-12);

        let w = Mat::from_fn(5, 3, |i, j| c64::new(i as f64 * 0.5, 1.0 - j as f64));
        let d = matmul_adjoint(&b, &w);
        let expect2 = naive(&b, &w.adjoint());
        assert!(max_abs_diff(&d, &expect2) < 1e-12);

        let mut e = expect.clone();
        adjoint_matmul_sub(&mut e, &a, &b);
        assert!(max_abs_diff(&e, &Mat::zeros(2, 3)) < 1e-12);
    }

    #[test]
    fn adjoint_blocked_path_matches_naive() {
        let a = Mat::from_fn(140, 90, |i, j| {
            c64::new((i % 9) as f64 - 4.0, (j % 5) as f64)
        });
        let b = Mat::from_fn(140, 70, |i, j| {
            c64::new((j % 7) as f64, (i % 3) as f64 - 1.0)
        });
        let big = adjoint_matmul(&a, &b);
        let mut small = Mat::zeros(90, 70);
        adjoint_matmul_acc_naive(&mut small, c64::ONE, &a, &b);
        let scale = crate::norms::fro_norm(&small).max(1.0);
        assert!(max_abs_diff(&big, &small) < 1e-12 * scale);

        let w = Mat::from_fn(130, 140, |i, j| c64::new((i + j) as f64 * 0.01, 1.0));
        let ah = a.adjoint(); // 90x140
        let r_big = matmul_adjoint(&ah, &w); // 90x130 result via blocked
        let r_ref = matmul_adjoint_naive(&ah, &w);
        let scale2 = crate::norms::fro_norm(&r_ref).max(1.0);
        assert!(max_abs_diff(&r_big, &r_ref) < 1e-12 * scale2);
    }

    #[test]
    fn sub_block_gemm_matches_full() {
        let a = Mat::from_fn(12, 9, |i, j| (i * 9 + j) as f64 * 0.1);
        let b = Mat::from_fn(9, 10, |i, j| (i + j) as f64 - 4.0);
        let mut c = Mat::zeros(14, 12);
        // C[2..2+5, 3..3+4] += A[1..1+5, 2..2+6] * B[0..0+6, 5..5+4]
        gemm_acc_block(
            &mut c,
            (2, 3, 5, 4),
            1.0,
            &a,
            (1, 2, 5, 6),
            &b,
            (0, 5, 6, 4),
        );
        for i in 0..5 {
            for j in 0..4 {
                let want: f64 = (0..6).map(|l| a[(1 + i, 2 + l)] * b[(l, 5 + j)]).sum();
                assert!((c[(2 + i, 3 + j)] - want).abs() < 1e-12);
            }
        }
        // Everything outside the target block stays zero.
        assert_eq!(c[(0, 0)], 0.0);
        assert_eq!(c[(7, 3)], 0.0);
        assert_eq!(c[(2, 7)], 0.0);
    }

    #[test]
    fn empty_dimensions() {
        let a: Mat<f64> = Mat::zeros(0, 3);
        let b: Mat<f64> = Mat::zeros(3, 2);
        let c = matmul(&a, &b);
        assert_eq!(c.nrows(), 0);
        let a2: Mat<f64> = Mat::zeros(2, 0);
        let b2: Mat<f64> = Mat::zeros(0, 2);
        let c2 = matmul(&a2, &b2);
        assert_eq!(max_abs_diff(&c2, &Mat::zeros(2, 2)), 0.0);
    }
}
