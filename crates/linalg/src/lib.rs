//! `srsf-linalg`: dense linear-algebra substrate for the srsf solver.
//!
//! The strong recursive skeletonization factorization needs a small but
//! complete set of dense kernels over both real (`f64`) and complex
//! ([`c64`]) scalars:
//!
//! * a column-major dense matrix type [`Mat`],
//! * matrix multiplication (plain / adjoint variants) in [`gemm`],
//! * partially pivoted LU ([`lu`]) and triangular solves ([`triangular`]),
//! * Householder QR and greedy column-pivoted QR ([`qr`]),
//! * the interpolative decomposition ([`id`]) used for skeletonization,
//! * BLAS-1 style vector helpers ([`vecops`]).
//!
//! Everything is written from scratch: the Rust ecosystem's hierarchical
//! linear-algebra support is thin, and the approved dependency set for this
//! reproduction does not include a BLAS binding. The hot kernels are
//! level-3 formulations — a cache-blocked GEMM with packed operand panels
//! and a register-tiled micro-kernel (plus an opt-in scoped-thread path,
//! see [`set_gemm_threads`]), compact-WY blocked Householder QR/CPQR with
//! downdated column norms, a panel-blocked LU, and blocked triangular
//! solves — each keeping its level-2 predecessor as a `*_naive` /
//! `*_unblocked` reference oracle for the randomized agreement tests.

#![forbid(unsafe_code)]

pub mod complex;
pub mod gemm;
pub mod id;
pub mod lu;
pub mod mat;
pub mod norms;
pub mod op;
pub mod qr;
pub mod rid;
pub mod scalar;
pub mod triangular;
pub mod vecops;

pub use complex::c64;
pub use gemm::{gemm_threads, set_gemm_threads};
pub use id::{interp_decomp, IdResult};
pub use lu::Lu;
pub use mat::Mat;
pub use op::{relative_residual, DenseOp, LinOp};
pub use qr::{cpqr, householder_qr, Cpqr};
pub use rid::{rand_interp_decomp, RidTelemetry};
pub use scalar::Scalar;
