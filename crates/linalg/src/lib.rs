//! `srsf-linalg`: dense linear-algebra substrate for the srsf solver.
//!
//! The strong recursive skeletonization factorization needs a small but
//! complete set of dense kernels over both real (`f64`) and complex
//! ([`c64`]) scalars:
//!
//! * a column-major dense matrix type [`Mat`],
//! * matrix multiplication (plain / adjoint variants) in [`gemm`],
//! * partially pivoted LU ([`lu`]) and triangular solves ([`triangular`]),
//! * Householder QR and greedy column-pivoted QR ([`qr`]),
//! * the interpolative decomposition ([`id`]) used for skeletonization,
//! * BLAS-1 style vector helpers ([`vecops`]).
//!
//! Everything is written from scratch: the Rust ecosystem's hierarchical
//! linear-algebra support is thin, and the approved dependency set for this
//! reproduction does not include a BLAS binding. The implementations favour
//! clarity and cache-friendly loops (contiguous column access) over
//! hand-tuned micro-kernels; at the block sizes appearing in the solver
//! (tens to a few hundreds) they are well within a small constant of tuned
//! code.

pub mod complex;
pub mod gemm;
pub mod id;
pub mod lu;
pub mod mat;
pub mod norms;
pub mod op;
pub mod qr;
pub mod scalar;
pub mod triangular;
pub mod vecops;

pub use complex::c64;
pub use id::{interp_decomp, IdResult};
pub use lu::Lu;
pub use mat::Mat;
pub use op::{relative_residual, DenseOp, LinOp};
pub use qr::{cpqr, householder_qr, Cpqr};
pub use scalar::Scalar;
