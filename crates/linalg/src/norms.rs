//! Matrix norms and comparison helpers.

use crate::mat::Mat;
use crate::scalar::Scalar;

/// Frobenius norm.
pub fn fro_norm<T: Scalar>(a: &Mat<T>) -> f64 {
    a.as_slice().iter().map(|v| v.abs_sq()).sum::<f64>().sqrt()
}

/// Largest entry modulus.
pub fn max_abs<T: Scalar>(a: &Mat<T>) -> f64 {
    a.as_slice().iter().map(|v| v.abs()).fold(0.0, f64::max)
}

/// Induced 1-norm (max column sum).
pub fn one_norm<T: Scalar>(a: &Mat<T>) -> f64 {
    (0..a.ncols())
        .map(|j| a.col(j).iter().map(|v| v.abs()).sum::<f64>())
        .fold(0.0, f64::max)
}

/// Induced infinity-norm (max row sum).
pub fn inf_norm<T: Scalar>(a: &Mat<T>) -> f64 {
    let mut sums = vec![0.0; a.nrows()];
    for j in 0..a.ncols() {
        for (i, v) in a.col(j).iter().enumerate() {
            sums[i] += v.abs();
        }
    }
    sums.into_iter().fold(0.0, f64::max)
}

/// Largest entry-wise difference.
pub fn max_abs_diff<T: Scalar>(a: &Mat<T>, b: &Mat<T>) -> f64 {
    assert_eq!(a.nrows(), b.nrows());
    assert_eq!(a.ncols(), b.ncols());
    a.as_slice()
        .iter()
        .zip(b.as_slice().iter())
        .map(|(x, y)| (*x - *y).abs())
        .fold(0.0, f64::max)
}

/// Relative Frobenius difference `||a - b||_F / max(||b||_F, eps)`.
pub fn rel_fro_diff<T: Scalar>(a: &Mat<T>, b: &Mat<T>) -> f64 {
    assert_eq!(a.nrows(), b.nrows());
    assert_eq!(a.ncols(), b.ncols());
    let num = a
        .as_slice()
        .iter()
        .zip(b.as_slice().iter())
        .map(|(x, y)| (*x - *y).abs_sq())
        .sum::<f64>()
        .sqrt();
    num / fro_norm(b).max(f64::MIN_POSITIVE.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::c64;

    #[test]
    fn norms_on_known_matrix() {
        let a = Mat::from_vec(2, 2, vec![3.0, 0.0, -4.0, 0.0]); // cols [3,0],[-4,0]
        assert_eq!(fro_norm(&a), 5.0);
        assert_eq!(max_abs(&a), 4.0);
        assert_eq!(one_norm(&a), 4.0);
        assert_eq!(inf_norm(&a), 7.0);
    }

    #[test]
    fn complex_norms() {
        let a = Mat::from_vec(1, 1, vec![c64::new(3.0, 4.0)]);
        assert_eq!(fro_norm(&a), 5.0);
        assert_eq!(one_norm(&a), 5.0);
        assert_eq!(inf_norm(&a), 5.0);
    }

    #[test]
    fn diffs() {
        let a = Mat::identity(2);
        let mut b: Mat<f64> = Mat::identity(2);
        b[(0, 1)] = 1e-3;
        assert!((max_abs_diff(&a, &b) - 1e-3).abs() < 1e-18);
        assert!(rel_fro_diff(&a, &a) == 0.0);
        assert!(rel_fro_diff(&a, &b) > 0.0);
    }
}
