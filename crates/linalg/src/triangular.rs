//! Triangular solves (TRSM/TRSV equivalents).
//!
//! The elimination step of the factorization needs all four orientations:
//! `L^{-1} B` and `U^{-1} B` for building the coupling matrices, and
//! `B U^{-1}` / `B L^{-1}` for the Schur factors multiplied from the right.
//! The matrix variants are blocked: the triangle is cut into `NB x NB`
//! diagonal blocks that are solved with the level-2 kernels, and the bulk
//! of the work — propagating each solved block into the remaining rows or
//! columns — rides the cache-blocked GEMM ([`crate::gemm`]). The
//! per-column level-2 forms are kept as `*_unblocked` reference oracles.

use crate::gemm::gemm_acc_block;
use crate::mat::Mat;
use crate::scalar::Scalar;

/// Diagonal-block size of the blocked TRSM forms.
const NB: usize = 64;

/// In-place `b := L^{-1} b` with `L` lower triangular (vector RHS).
pub fn solve_lower_vec<T: Scalar>(l: &Mat<T>, unit_diag: bool, b: &mut [T]) {
    let n = l.nrows();
    assert_eq!(l.ncols(), n);
    assert_eq!(b.len(), n);
    for j in 0..n {
        if !unit_diag {
            b[j] /= l[(j, j)];
        }
        let bj = b[j];
        if bj == T::ZERO {
            continue;
        }
        let col = l.col(j);
        for i in (j + 1)..n {
            b[i] -= col[i] * bj;
        }
    }
}

/// In-place `b := U^{-1} b` with `U` upper triangular (vector RHS).
pub fn solve_upper_vec<T: Scalar>(u: &Mat<T>, unit_diag: bool, b: &mut [T]) {
    let n = u.nrows();
    assert_eq!(u.ncols(), n);
    assert_eq!(b.len(), n);
    for j in (0..n).rev() {
        if !unit_diag {
            b[j] /= u[(j, j)];
        }
        let bj = b[j];
        if bj == T::ZERO {
            continue;
        }
        let col = u.col(j);
        for i in 0..j {
            b[i] -= col[i] * bj;
        }
    }
}

/// In-place `B := L^{-1} B`, matrix RHS (blocked).
pub fn solve_lower_mat<T: Scalar>(l: &Mat<T>, unit_diag: bool, b: &mut Mat<T>) {
    let n = l.nrows();
    assert_eq!(l.nrows(), b.nrows());
    if n <= NB || b.ncols() == 0 {
        return solve_lower_mat_unblocked(l, unit_diag, b);
    }
    let ncols = b.ncols();
    let mut j0 = 0;
    while j0 < n {
        let nb = NB.min(n - j0);
        // Solve the diagonal block against rows j0..j0+nb of B.
        let l11 = l.block(j0, j0, nb, nb);
        let mut b1 = b.block(j0, 0, nb, ncols);
        solve_lower_mat_unblocked(&l11, unit_diag, &mut b1);
        b.set_block(j0, 0, &b1);
        // Propagate: B[j0+nb.., :] -= L[j0+nb.., j0..j0+nb] * B1.
        if j0 + nb < n {
            gemm_acc_block(
                b,
                (j0 + nb, 0, n - j0 - nb, ncols),
                -T::ONE,
                l,
                (j0 + nb, j0, n - j0 - nb, nb),
                &b1,
                (0, 0, nb, ncols),
            );
        }
        j0 += nb;
    }
}

/// In-place `B := U^{-1} B`, matrix RHS (blocked).
pub fn solve_upper_mat<T: Scalar>(u: &Mat<T>, unit_diag: bool, b: &mut Mat<T>) {
    let n = u.nrows();
    assert_eq!(u.nrows(), b.nrows());
    if n <= NB || b.ncols() == 0 {
        return solve_upper_mat_unblocked(u, unit_diag, b);
    }
    let ncols = b.ncols();
    let mut jend = n;
    while jend > 0 {
        let nb = NB.min(jend);
        let j0 = jend - nb;
        let u11 = u.block(j0, j0, nb, nb);
        let mut b1 = b.block(j0, 0, nb, ncols);
        solve_upper_mat_unblocked(&u11, unit_diag, &mut b1);
        b.set_block(j0, 0, &b1);
        // Propagate upward: B[..j0, :] -= U[..j0, j0..jend] * B1.
        if j0 > 0 {
            gemm_acc_block(
                b,
                (0, 0, j0, ncols),
                -T::ONE,
                u,
                (0, j0, j0, nb),
                &b1,
                (0, 0, nb, ncols),
            );
        }
        jend = j0;
    }
}

/// Per-column reference form of [`solve_lower_mat`] (test oracle; also the
/// diagonal-block kernel of the blocked path).
#[doc(hidden)]
pub fn solve_lower_mat_unblocked<T: Scalar>(l: &Mat<T>, unit_diag: bool, b: &mut Mat<T>) {
    assert_eq!(l.nrows(), b.nrows());
    for j in 0..b.ncols() {
        solve_lower_vec(l, unit_diag, b.col_mut(j));
    }
}

/// Per-column reference form of [`solve_upper_mat`] (test oracle; also the
/// diagonal-block kernel of the blocked path).
#[doc(hidden)]
pub fn solve_upper_mat_unblocked<T: Scalar>(u: &Mat<T>, unit_diag: bool, b: &mut Mat<T>) {
    assert_eq!(u.nrows(), b.nrows());
    for j in 0..b.ncols() {
        solve_upper_vec(u, unit_diag, b.col_mut(j));
    }
}

/// In-place `B := B U^{-1}` (upper triangular from the right, blocked).
///
/// Column block `J` of the result depends on result blocks `< J`:
/// `X[:, J] = (B[:, J] - X[:, <J] U[<J, J]) U[J,J]^{-1}`.
pub fn solve_upper_right_mat<T: Scalar>(b: &mut Mat<T>, u: &Mat<T>, unit_diag: bool) {
    let n = u.nrows();
    assert_eq!(u.ncols(), n);
    assert_eq!(b.ncols(), n);
    if n <= NB || b.nrows() == 0 {
        return solve_upper_right_mat_unblocked(b, u, unit_diag);
    }
    let m = b.nrows();
    let mut j0 = 0;
    while j0 < n {
        let nb = NB.min(n - j0);
        // B[:, j0..j0+nb] -= X[:, ..j0] * U[..j0, j0..j0+nb].
        if j0 > 0 {
            let solved = b.block(0, 0, m, j0);
            gemm_acc_block(
                b,
                (0, j0, m, nb),
                -T::ONE,
                &solved,
                (0, 0, m, j0),
                u,
                (0, j0, j0, nb),
            );
        }
        // Diagonal right-solve on the block.
        let u11 = u.block(j0, j0, nb, nb);
        let mut b1 = b.block(0, j0, m, nb);
        solve_upper_right_mat_unblocked(&mut b1, &u11, unit_diag);
        b.set_block(0, j0, &b1);
        j0 += nb;
    }
}

/// In-place `B := B L^{-1}` (lower triangular from the right, blocked).
pub fn solve_lower_right_mat<T: Scalar>(b: &mut Mat<T>, l: &Mat<T>, unit_diag: bool) {
    let n = l.nrows();
    assert_eq!(l.ncols(), n);
    assert_eq!(b.ncols(), n);
    if n <= NB || b.nrows() == 0 {
        return solve_lower_right_mat_unblocked(b, l, unit_diag);
    }
    let m = b.nrows();
    let mut jend = n;
    while jend > 0 {
        let nb = NB.min(jend);
        let j0 = jend - nb;
        // B[:, j0..jend] -= X[:, jend..] * L[jend.., j0..jend].
        if jend < n {
            let solved = b.block(0, jend, m, n - jend);
            gemm_acc_block(
                b,
                (0, j0, m, nb),
                -T::ONE,
                &solved,
                (0, 0, m, n - jend),
                l,
                (jend, j0, n - jend, nb),
            );
        }
        let l11 = l.block(j0, j0, nb, nb);
        let mut b1 = b.block(0, j0, m, nb);
        solve_lower_right_mat_unblocked(&mut b1, &l11, unit_diag);
        b.set_block(0, j0, &b1);
        jend = j0;
    }
}

/// Reference form of [`solve_upper_right_mat`] (test oracle and
/// diagonal-block kernel).
#[doc(hidden)]
pub fn solve_upper_right_mat_unblocked<T: Scalar>(b: &mut Mat<T>, u: &Mat<T>, unit_diag: bool) {
    let n = u.nrows();
    assert_eq!(u.ncols(), n);
    assert_eq!(b.ncols(), n);
    let m = b.nrows();
    for j in 0..n {
        let ucol: Vec<T> = u.col(j).to_vec();
        for l in 0..j {
            let s = ucol[l];
            if s == T::ZERO {
                continue;
            }
            let (xl, xj) = b.cols_mut_pair(l, j);
            for i in 0..m {
                xj[i] -= xl[i] * s;
            }
        }
        if !unit_diag {
            let d = ucol[j];
            for v in b.col_mut(j) {
                *v /= d;
            }
        }
    }
}

/// Reference form of [`solve_lower_right_mat`] (test oracle and
/// diagonal-block kernel).
#[doc(hidden)]
pub fn solve_lower_right_mat_unblocked<T: Scalar>(b: &mut Mat<T>, l: &Mat<T>, unit_diag: bool) {
    let n = l.nrows();
    assert_eq!(l.ncols(), n);
    assert_eq!(b.ncols(), n);
    let m = b.nrows();
    for j in (0..n).rev() {
        let lcol: Vec<T> = l.col(j).to_vec();
        for k in (j + 1)..n {
            let s = lcol[k];
            if s == T::ZERO {
                continue;
            }
            let (xk, xj) = b.cols_mut_pair(k, j);
            for i in 0..m {
                xj[i] -= xk[i] * s;
            }
        }
        if !unit_diag {
            let d = lcol[j];
            for v in b.col_mut(j) {
                *v /= d;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::c64;
    use crate::gemm::matmul;
    use crate::norms::max_abs_diff;

    fn lower(n: usize) -> Mat<f64> {
        Mat::from_fn(n, n, |i, j| {
            if i > j {
                0.3 * (i as f64 - j as f64)
            } else if i == j {
                2.0 + i as f64
            } else {
                0.0
            }
        })
    }

    fn upper(n: usize) -> Mat<f64> {
        lower(n).transpose()
    }

    #[test]
    fn lower_vec_roundtrip() {
        let l = lower(5);
        let x: Vec<f64> = (0..5).map(|i| i as f64 - 2.0).collect();
        let mut b = l.matvec(&x);
        solve_lower_vec(&l, false, &mut b);
        for (a, e) in b.iter().zip(x.iter()) {
            assert!((a - e).abs() < 1e-12);
        }
    }

    #[test]
    fn upper_vec_roundtrip() {
        let u = upper(5);
        let x: Vec<f64> = (0..5).map(|i| (i * i) as f64 * 0.1 - 1.0).collect();
        let mut b = u.matvec(&x);
        solve_upper_vec(&u, false, &mut b);
        for (a, e) in b.iter().zip(x.iter()) {
            assert!((a - e).abs() < 1e-12);
        }
    }

    #[test]
    fn unit_diagonal_variants() {
        let mut l = lower(4);
        for i in 0..4 {
            l[(i, i)] = 1.0;
        }
        let x = vec![1.0, -2.0, 0.5, 3.0];
        let mut b = l.matvec(&x);
        solve_lower_vec(&l, true, &mut b);
        for (a, e) in b.iter().zip(x.iter()) {
            assert!((a - e).abs() < 1e-12);
        }
    }

    #[test]
    fn matrix_left_solves() {
        let l = lower(4);
        let u = upper(4);
        let x = Mat::from_fn(4, 3, |i, j| (i + j) as f64 - 1.5);
        let mut bl = matmul(&l, &x);
        solve_lower_mat(&l, false, &mut bl);
        assert!(max_abs_diff(&bl, &x) < 1e-12);
        let mut bu = matmul(&u, &x);
        solve_upper_mat(&u, false, &mut bu);
        assert!(max_abs_diff(&bu, &x) < 1e-12);
    }

    /// The blocked matrix solves must agree with the per-column forms on
    /// systems big enough to engage the block path.
    #[test]
    fn blocked_left_solves_match_unblocked() {
        let n = 150; // > NB so at least three blocks
        let l = lower(n);
        let u = upper(n);
        let b0 = Mat::from_fn(n, 37, |i, j| ((i * 7 + j * 13) % 23) as f64 * 0.1 - 1.0);
        for unit in [false, true] {
            let mut b_blocked = b0.clone();
            let mut b_ref = b0.clone();
            solve_lower_mat(&l, unit, &mut b_blocked);
            solve_lower_mat_unblocked(&l, unit, &mut b_ref);
            let scale = crate::norms::fro_norm(&b_ref).max(1.0);
            assert!(max_abs_diff(&b_blocked, &b_ref) < 1e-12 * scale);

            let mut c_blocked = b0.clone();
            let mut c_ref = b0.clone();
            solve_upper_mat(&u, unit, &mut c_blocked);
            solve_upper_mat_unblocked(&u, unit, &mut c_ref);
            let scale = crate::norms::fro_norm(&c_ref).max(1.0);
            assert!(max_abs_diff(&c_blocked, &c_ref) < 1e-12 * scale);
        }
    }

    #[test]
    fn blocked_right_solves_match_unblocked() {
        let n = 150;
        let l = lower(n);
        let u = upper(n);
        let b0 = Mat::from_fn(29, n, |i, j| ((i * 11 + j * 3) % 17) as f64 * 0.2 - 1.5);
        for unit in [false, true] {
            let mut b_blocked = b0.clone();
            let mut b_ref = b0.clone();
            solve_upper_right_mat(&mut b_blocked, &u, unit);
            solve_upper_right_mat_unblocked(&mut b_ref, &u, unit);
            let scale = crate::norms::fro_norm(&b_ref).max(1.0);
            assert!(max_abs_diff(&b_blocked, &b_ref) < 1e-12 * scale);

            let mut c_blocked = b0.clone();
            let mut c_ref = b0.clone();
            solve_lower_right_mat(&mut c_blocked, &l, unit);
            solve_lower_right_mat_unblocked(&mut c_ref, &l, unit);
            let scale = crate::norms::fro_norm(&c_ref).max(1.0);
            assert!(max_abs_diff(&c_blocked, &c_ref) < 1e-12 * scale);
        }
    }

    #[test]
    fn matrix_right_solves() {
        let u = upper(4);
        let x = Mat::from_fn(3, 4, |i, j| (2 * i + j) as f64 * 0.25 - 1.0);
        let mut b = matmul(&x, &u);
        solve_upper_right_mat(&mut b, &u, false);
        assert!(max_abs_diff(&b, &x) < 1e-12);

        let l = lower(4);
        let mut b2 = matmul(&x, &l);
        solve_lower_right_mat(&mut b2, &l, false);
        assert!(max_abs_diff(&b2, &x) < 1e-12);
    }

    #[test]
    fn right_solves_unit_diag() {
        let mut u = upper(4);
        let mut l = lower(4);
        for i in 0..4 {
            u[(i, i)] = 1.0;
            l[(i, i)] = 1.0;
        }
        let x = Mat::from_fn(2, 4, |i, j| (i * 4 + j) as f64 * 0.1);
        let mut b = matmul(&x, &u);
        solve_upper_right_mat(&mut b, &u, true);
        assert!(max_abs_diff(&b, &x) < 1e-12);
        let mut b2 = matmul(&x, &l);
        solve_lower_right_mat(&mut b2, &l, true);
        assert!(max_abs_diff(&b2, &x) < 1e-12);
    }

    #[test]
    fn complex_triangular() {
        let l = Mat::from_fn(3, 3, |i, j| {
            if i >= j {
                c64::new(1.0 + i as f64, 0.5 * j as f64)
            } else {
                c64::ZERO
            }
        });
        let x = vec![c64::new(1.0, 1.0), c64::new(-1.0, 0.0), c64::new(0.0, 2.0)];
        let mut b = l.matvec(&x);
        solve_lower_vec(&l, false, &mut b);
        for (a, e) in b.iter().zip(x.iter()) {
            assert!((*a - *e).norm() < 1e-12);
        }
    }
}
