//! Triangular solves (TRSM/TRSV equivalents).
//!
//! The elimination step of the factorization needs all four orientations:
//! `L^{-1} B` and `U^{-1} B` for building the coupling matrices, and
//! `B U^{-1}` / `B L^{-1}` for the Schur factors multiplied from the right.

use crate::mat::Mat;
use crate::scalar::Scalar;

/// In-place `b := L^{-1} b` with `L` lower triangular (vector RHS).
pub fn solve_lower_vec<T: Scalar>(l: &Mat<T>, unit_diag: bool, b: &mut [T]) {
    let n = l.nrows();
    assert_eq!(l.ncols(), n);
    assert_eq!(b.len(), n);
    for j in 0..n {
        if !unit_diag {
            b[j] /= l[(j, j)];
        }
        let bj = b[j];
        if bj == T::ZERO {
            continue;
        }
        let col = l.col(j);
        for i in (j + 1)..n {
            b[i] -= col[i] * bj;
        }
    }
}

/// In-place `b := U^{-1} b` with `U` upper triangular (vector RHS).
pub fn solve_upper_vec<T: Scalar>(u: &Mat<T>, unit_diag: bool, b: &mut [T]) {
    let n = u.nrows();
    assert_eq!(u.ncols(), n);
    assert_eq!(b.len(), n);
    for j in (0..n).rev() {
        if !unit_diag {
            b[j] /= u[(j, j)];
        }
        let bj = b[j];
        if bj == T::ZERO {
            continue;
        }
        let col = u.col(j);
        for i in 0..j {
            b[i] -= col[i] * bj;
        }
    }
}

/// In-place `B := L^{-1} B`, matrix RHS.
pub fn solve_lower_mat<T: Scalar>(l: &Mat<T>, unit_diag: bool, b: &mut Mat<T>) {
    assert_eq!(l.nrows(), b.nrows());
    for j in 0..b.ncols() {
        solve_lower_vec(l, unit_diag, b.col_mut(j));
    }
}

/// In-place `B := U^{-1} B`, matrix RHS.
pub fn solve_upper_mat<T: Scalar>(u: &Mat<T>, unit_diag: bool, b: &mut Mat<T>) {
    assert_eq!(u.nrows(), b.nrows());
    for j in 0..b.ncols() {
        solve_upper_vec(u, unit_diag, b.col_mut(j));
    }
}

/// In-place `B := B U^{-1}` (upper triangular from the right).
///
/// Column `j` of the result depends on result columns `< j`:
/// `X[:,j] = (B[:,j] - sum_{l<j} X[:,l] U[l,j]) / U[j,j]`.
pub fn solve_upper_right_mat<T: Scalar>(b: &mut Mat<T>, u: &Mat<T>, unit_diag: bool) {
    let n = u.nrows();
    assert_eq!(u.ncols(), n);
    assert_eq!(b.ncols(), n);
    let m = b.nrows();
    for j in 0..n {
        let ucol: Vec<T> = u.col(j).to_vec();
        for l in 0..j {
            let s = ucol[l];
            if s == T::ZERO {
                continue;
            }
            let (xl, xj) = b.cols_mut_pair(l, j);
            for i in 0..m {
                xj[i] -= xl[i] * s;
            }
        }
        if !unit_diag {
            let d = ucol[j];
            for v in b.col_mut(j) {
                *v /= d;
            }
        }
    }
}

/// In-place `B := B L^{-1}` (lower triangular from the right).
pub fn solve_lower_right_mat<T: Scalar>(b: &mut Mat<T>, l: &Mat<T>, unit_diag: bool) {
    let n = l.nrows();
    assert_eq!(l.ncols(), n);
    assert_eq!(b.ncols(), n);
    let m = b.nrows();
    for j in (0..n).rev() {
        let lcol: Vec<T> = l.col(j).to_vec();
        for k in (j + 1)..n {
            let s = lcol[k];
            if s == T::ZERO {
                continue;
            }
            let (xk, xj) = b.cols_mut_pair(k, j);
            for i in 0..m {
                xj[i] -= xk[i] * s;
            }
        }
        if !unit_diag {
            let d = lcol[j];
            for v in b.col_mut(j) {
                *v /= d;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::c64;
    use crate::gemm::matmul;
    use crate::norms::max_abs_diff;

    fn lower(n: usize) -> Mat<f64> {
        Mat::from_fn(n, n, |i, j| {
            if i > j {
                0.3 * (i as f64 - j as f64)
            } else if i == j {
                2.0 + i as f64
            } else {
                0.0
            }
        })
    }

    fn upper(n: usize) -> Mat<f64> {
        lower(n).transpose()
    }

    #[test]
    fn lower_vec_roundtrip() {
        let l = lower(5);
        let x: Vec<f64> = (0..5).map(|i| i as f64 - 2.0).collect();
        let mut b = l.matvec(&x);
        solve_lower_vec(&l, false, &mut b);
        for (a, e) in b.iter().zip(x.iter()) {
            assert!((a - e).abs() < 1e-12);
        }
    }

    #[test]
    fn upper_vec_roundtrip() {
        let u = upper(5);
        let x: Vec<f64> = (0..5).map(|i| (i * i) as f64 * 0.1 - 1.0).collect();
        let mut b = u.matvec(&x);
        solve_upper_vec(&u, false, &mut b);
        for (a, e) in b.iter().zip(x.iter()) {
            assert!((a - e).abs() < 1e-12);
        }
    }

    #[test]
    fn unit_diagonal_variants() {
        let mut l = lower(4);
        for i in 0..4 {
            l[(i, i)] = 1.0;
        }
        let x = vec![1.0, -2.0, 0.5, 3.0];
        let mut b = l.matvec(&x);
        solve_lower_vec(&l, true, &mut b);
        for (a, e) in b.iter().zip(x.iter()) {
            assert!((a - e).abs() < 1e-12);
        }
    }

    #[test]
    fn matrix_left_solves() {
        let l = lower(4);
        let u = upper(4);
        let x = Mat::from_fn(4, 3, |i, j| (i + j) as f64 - 1.5);
        let mut bl = matmul(&l, &x);
        solve_lower_mat(&l, false, &mut bl);
        assert!(max_abs_diff(&bl, &x) < 1e-12);
        let mut bu = matmul(&u, &x);
        solve_upper_mat(&u, false, &mut bu);
        assert!(max_abs_diff(&bu, &x) < 1e-12);
    }

    #[test]
    fn matrix_right_solves() {
        let u = upper(4);
        let x = Mat::from_fn(3, 4, |i, j| (2 * i + j) as f64 * 0.25 - 1.0);
        let mut b = matmul(&x, &u);
        solve_upper_right_mat(&mut b, &u, false);
        assert!(max_abs_diff(&b, &x) < 1e-12);

        let l = lower(4);
        let mut b2 = matmul(&x, &l);
        solve_lower_right_mat(&mut b2, &l, false);
        assert!(max_abs_diff(&b2, &x) < 1e-12);
    }

    #[test]
    fn right_solves_unit_diag() {
        let mut u = upper(4);
        let mut l = lower(4);
        for i in 0..4 {
            u[(i, i)] = 1.0;
            l[(i, i)] = 1.0;
        }
        let x = Mat::from_fn(2, 4, |i, j| (i * 4 + j) as f64 * 0.1);
        let mut b = matmul(&x, &u);
        solve_upper_right_mat(&mut b, &u, true);
        assert!(max_abs_diff(&b, &x) < 1e-12);
        let mut b2 = matmul(&x, &l);
        solve_lower_right_mat(&mut b2, &l, true);
        assert!(max_abs_diff(&b2, &x) < 1e-12);
    }

    #[test]
    fn complex_triangular() {
        let l = Mat::from_fn(3, 3, |i, j| {
            if i >= j {
                c64::new(1.0 + i as f64, 0.5 * j as f64)
            } else {
                c64::ZERO
            }
        });
        let x = vec![c64::new(1.0, 1.0), c64::new(-1.0, 0.0), c64::new(0.0, 2.0)];
        let mut b = l.matvec(&x);
        solve_lower_vec(&l, false, &mut b);
        for (a, e) in b.iter().zip(x.iter()) {
            assert!((*a - *e).norm() < 1e-12);
        }
    }
}
