//! Householder QR and greedy column-pivoted QR (CPQR).
//!
//! CPQR is the engine behind the interpolative decomposition (Definition 1
//! in the paper): pivot columns become skeleton indices, and the truncated
//! trailing block bounds the compression error. We follow the greedy
//! column-pivoting strategy of `LowRankApprox.jl` (paper §II-B) rather than
//! strong RRQR: cheaper, and well behaved on kernel matrices in practice.
//!
//! Both factorizations are blocked. Reflectors are accumulated in compact-WY
//! form `Q = I - V T V^H` so trailing-matrix updates ride the cache-blocked
//! GEMM of [`crate::gemm`], and `cpqr` maintains partial column norms by
//! classic downdating (one subtraction per column per step instead of a full
//! renorm) with the LAPACK-style recompute-on-cancellation safeguard. The
//! original level-2 routines are kept as `*_naive` reference oracles.

use crate::gemm::{adjoint_matmul, gemm_acc_block, matmul_sub};
use crate::mat::Mat;
use crate::scalar::Scalar;
use crate::vecops::nrm2;

/// Reflector block size of the compact-WY paths.
const NB: usize = 32;

/// Result of an (optionally truncated) column-pivoted QR factorization.
#[derive(Clone, Debug)]
pub struct Cpqr<T> {
    /// Packed Householder vectors (below diagonal) and `R` (upper triangle).
    pub factors: Mat<T>,
    /// Householder coefficients, one per elimination step.
    pub tau: Vec<T>,
    /// Column permutation: `jpvt[k]` is the original index of permuted column `k`.
    pub jpvt: Vec<usize>,
    /// Numerical rank detected at the requested tolerance.
    pub rank: usize,
}

impl<T: Scalar> Cpqr<T> {
    /// The `rank x rank` leading upper-triangular block `R11`.
    pub fn r11(&self) -> Mat<T> {
        let k = self.rank;
        let mut r = Mat::zeros(k, k);
        for j in 0..k {
            for i in 0..=j {
                r[(i, j)] = self.factors[(i, j)];
            }
        }
        r
    }

    /// The `rank x (n - rank)` coupling block `R12`.
    pub fn r12(&self) -> Mat<T> {
        let k = self.rank;
        let n = self.factors.ncols();
        let mut r = Mat::zeros(k, n - k);
        for j in k..n {
            for i in 0..k {
                r[(i, j - k)] = self.factors[(i, j)];
            }
        }
        r
    }
}

/// Generate a Householder reflector for `x`, returning `(tau, beta)` and
/// overwriting `x[1..]` with the reflector tail `v[1..]` (with `v[0] = 1`).
///
/// The reflector satisfies `(I - tau v v^H) x = beta e1` with `|beta| = ||x||`.
fn make_householder<T: Scalar>(x: &mut [T]) -> (T, T) {
    let alpha = x[0];
    let tail_sq: f64 = x[1..].iter().map(|v| v.abs_sq()).sum();
    let alpha_abs = alpha.abs();
    let norm = (alpha_abs * alpha_abs + tail_sq).sqrt();
    if norm == 0.0 || (tail_sq == 0.0 && !T::IS_COMPLEX) {
        // Already collinear with e1; no reflection needed.
        return (T::ZERO, alpha);
    }
    // beta = -sign(alpha) * norm (for complex: -alpha/|alpha| * norm).
    let phase = if alpha_abs == 0.0 {
        T::ONE
    } else {
        alpha.scale(1.0 / alpha_abs)
    };
    let beta = -phase.scale(norm);
    let denom = alpha - beta;
    // tau = (beta - alpha) / beta
    let tau = (beta - alpha) / beta;
    let inv = denom.recip();
    for v in x[1..].iter_mut() {
        *v *= inv;
    }
    x[0] = T::ONE;
    (tau, beta)
}

/// Apply `(I - tau v v^H)` to a column slice, where `v` has implicit leading 1.
fn apply_householder<T: Scalar>(v: &[T], tau: T, col: &mut [T]) {
    debug_assert_eq!(v.len(), col.len());
    if tau == T::ZERO {
        return;
    }
    // w = v^H col (v[0] is the implicit 1)
    let w = col[0] + crate::vecops::dot(&v[1..], &col[1..]);
    let tw = tau * w;
    col[0] -= tw;
    for i in 1..v.len() {
        col[i] = v[i].mul_add(-tw, col[i]);
    }
}

// ---------------------------------------------------------------------------
// Compact-WY machinery
// ---------------------------------------------------------------------------

/// Extract the unit-lower-trapezoidal reflector block `V` (rows `j0..m`)
/// from packed factors columns `j0..j0+kb`.
fn extract_v<T: Scalar>(f: &Mat<T>, j0: usize, kb: usize) -> Mat<T> {
    let m = f.nrows() - j0;
    let mut v = Mat::zeros(m, kb);
    for j in 0..kb {
        let src = &f.col(j0 + j)[j0..];
        let dst = v.col_mut(j);
        dst[j] = T::ONE;
        dst[j + 1..].copy_from_slice(&src[j + 1..]);
    }
    v
}

/// Form the upper-triangular compact-WY factor `T` of the forward product
/// `H(1) H(2) ... H(kb) = I - V T V^H` (LAPACK `larft`, forward/columnwise).
fn form_t<T: Scalar>(v: &Mat<T>, tau: &[T]) -> Mat<T> {
    let kb = tau.len();
    let m = v.nrows();
    let mut t = Mat::zeros(kb, kb);
    for i in 0..kb {
        t[(i, i)] = tau[i];
        if i == 0 {
            continue;
        }
        // w = V[:, ..i]^H v_i (v_i is zero above row i).
        let vi = v.col(i);
        let mut w = vec![T::ZERO; i];
        for (j, wj) in w.iter_mut().enumerate() {
            let vj = v.col(j);
            *wj = crate::vecops::dot(&vj[i..m], &vi[i..m]);
        }
        // T[..i, i] = -tau_i * T[..i, ..i] * w.
        for r in 0..i {
            let mut acc = T::ZERO;
            for (l, wl) in w.iter().enumerate().skip(r) {
                acc += t[(r, l)] * *wl;
            }
            t[(r, i)] = -(tau[i] * acc);
        }
    }
    t
}

/// In-place `W := T W` (or `T^H W` when `adjoint`) with `T` upper triangular.
fn trmm_upper_left<T: Scalar>(t: &Mat<T>, adjoint: bool, w: &mut Mat<T>) {
    let k = t.nrows();
    for jcol in 0..w.ncols() {
        let col = w.col_mut(jcol);
        if !adjoint {
            // y[i] = sum_{l >= i} T[i,l] x[l]; ascending overwrite is safe.
            for i in 0..k {
                let mut acc = t[(i, i)] * col[i];
                for l in (i + 1)..k {
                    acc += t[(i, l)] * col[l];
                }
                col[i] = acc;
            }
        } else {
            // y[i] = sum_{l <= i} conj(T[l,i]) x[l]; descending is safe.
            for i in (0..k).rev() {
                let mut acc = t[(i, i)].conj() * col[i];
                for l in 0..i {
                    acc += t[(l, i)].conj() * col[l];
                }
                col[i] = acc;
            }
        }
    }
}

/// Apply the block reflector: `C := (I - V op(T) V^H) C`, with
/// `op(T) = T^H` when `adjoint_t` (the `Q^H C` product used during
/// factorization) and `T` otherwise (the `Q C` product used by `form_q`).
fn apply_block_reflector<T: Scalar>(v: &Mat<T>, t: &Mat<T>, adjoint_t: bool, c: &mut Mat<T>) {
    if v.ncols() == 0 || c.ncols() == 0 {
        return;
    }
    // W = V^H C (kb x n), then W := op(T) W, then C -= V W.
    let mut w = adjoint_matmul(v, c);
    trmm_upper_left(t, adjoint_t, &mut w);
    matmul_sub(c, v, &w);
}

// ---------------------------------------------------------------------------
// Unpivoted QR
// ---------------------------------------------------------------------------

/// Unpivoted Householder QR. Returns packed factors and `tau`.
///
/// Blocked: each `NB`-column panel is factored with the level-2 kernel and
/// the trailing matrix is updated with one compact-WY block reflector
/// (`C -= V (T^H (V^H C))`), which is all GEMM.
pub fn householder_qr<T: Scalar>(mut a: Mat<T>) -> (Mat<T>, Vec<T>) {
    let m = a.nrows();
    let n = a.ncols();
    let steps = m.min(n);
    let mut tau = Vec::with_capacity(steps);
    let mut j0 = 0;
    while j0 < steps {
        let kb = NB.min(steps - j0);
        // Level-2 factorization of the panel columns.
        for k in j0..j0 + kb {
            let (t, beta) = {
                let col = &mut a.col_mut(k)[k..];
                make_householder(col)
            };
            tau.push(t);
            let v: Vec<T> = a.col(k)[k..].to_vec();
            for j in (k + 1)..(j0 + kb) {
                let col = &mut a.col_mut(j)[k..];
                apply_householder(&v, t, col);
            }
            a[(k, k)] = beta;
        }
        // Trailing update: A[j0.., j0+kb..] := (I - V T^H V^H) A[j0.., j0+kb..].
        if j0 + kb < n {
            let v = extract_v(&a, j0, kb);
            let t = form_t(&v, &tau[j0..j0 + kb]);
            let mut trail = a.block(j0, j0 + kb, m - j0, n - j0 - kb);
            apply_block_reflector(&v, &t, true, &mut trail);
            a.set_block(j0, j0 + kb, &trail);
        }
        j0 += kb;
    }
    (a, tau)
}

/// Level-2 reference QR (test oracle for the blocked path).
#[doc(hidden)]
pub fn householder_qr_naive<T: Scalar>(mut a: Mat<T>) -> (Mat<T>, Vec<T>) {
    let m = a.nrows();
    let n = a.ncols();
    let steps = m.min(n);
    let mut tau = Vec::with_capacity(steps);
    for k in 0..steps {
        let (t, beta) = {
            let col = &mut a.col_mut(k)[k..];
            make_householder(col)
        };
        tau.push(t);
        let v: Vec<T> = a.col(k)[k..].to_vec();
        for j in (k + 1)..n {
            let col = &mut a.col_mut(j)[k..];
            apply_householder(&v, t, col);
        }
        a[(k, k)] = beta;
    }
    (a, tau)
}

/// Extract the explicit `Q` (thin, `m x k`) from packed Householder factors.
///
/// Blocked backward accumulation: reflector blocks are applied in reverse
/// order to the identity, each as one compact-WY product restricted to the
/// rows and columns it can touch.
pub fn form_q<T: Scalar>(factors: &Mat<T>, tau: &[T], k: usize) -> Mat<T> {
    let m = factors.nrows();
    let mut q = Mat::zeros(m, k);
    for j in 0..k.min(m) {
        q[(j, j)] = T::ONE;
    }
    let r = tau.len().min(k);
    let mut starts: Vec<usize> = (0..r).step_by(NB).collect();
    while let Some(j0) = starts.pop() {
        let kb = NB.min(r - j0);
        let v = extract_v(factors, j0, kb);
        let t = form_t(&v, &tau[j0..j0 + kb]);
        // Columns `< j0` are still unit vectors supported above row j0 and
        // are untouched by this block; apply to the rest only.
        let mut blk = q.block(j0, j0, m - j0, k - j0);
        apply_block_reflector(&v, &t, false, &mut blk);
        q.set_block(j0, j0, &blk);
    }
    q
}

/// Level-2 reference `form_q` (test oracle for the blocked path).
#[doc(hidden)]
pub fn form_q_naive<T: Scalar>(factors: &Mat<T>, tau: &[T], k: usize) -> Mat<T> {
    let m = factors.nrows();
    let mut q = Mat::zeros(m, k);
    for j in 0..k.min(m) {
        q[(j, j)] = T::ONE;
    }
    // Apply reflectors in reverse order to the identity block.
    for step in (0..tau.len().min(k)).rev() {
        let mut v: Vec<T> = factors.col(step)[step..].to_vec();
        if !v.is_empty() {
            v[0] = T::ONE;
        }
        for j in 0..k {
            let col = &mut q.col_mut(j)[step..];
            apply_householder(&v, tau[step], col);
        }
    }
    q
}

// ---------------------------------------------------------------------------
// Column-pivoted QR
// ---------------------------------------------------------------------------

/// Greedy column-pivoted QR, truncated at relative tolerance `tol` (on
/// `|R[k,k]| / |R[0,0]|`) or at `max_rank`, whichever comes first.
///
/// LAPACK `xGEQP3`-style blocked factorization. Pivoting uses partial
/// column norms maintained by downdating (`vn1[j]^2 -= |R[k,j]|^2` per
/// step, O(n) instead of the O(mn) exact renorm) with a
/// recompute-on-cancellation safeguard: when cancellation would leave a
/// downdated norm with fewer than half the mantissa bits trusted, the
/// affected columns are renormed exactly — lazily materialized against the
/// panel's reflectors when few columns are hit (the common case on the
/// fast-decaying kernel matrices this solver compresses), or after a
/// LAPACK-style panel cut when cancellation is widespread. Within a panel,
/// updates are applied lazily — only the pivot column and pivot row are
/// brought up to date per step — and the bulk of the trailing matrix is
/// updated once per panel with a single GEMM (`A22 -= V2 F^H`). The
/// selected pivot column's norm is always recomputed exactly before the
/// tolerance test, so truncation decisions match the naive implementation.
pub fn cpqr<T: Scalar>(mut a: Mat<T>, tol: f64, max_rank: usize) -> Cpqr<T> {
    let m = a.nrows();
    let n = a.ncols();
    let steps = m.min(n).min(max_rank);
    let mut jpvt: Vec<usize> = (0..n).collect();
    let mut tau: Vec<T> = Vec::with_capacity(steps);
    let mut rank = 0;
    if steps == 0 {
        return Cpqr {
            factors: a,
            tau,
            jpvt,
            rank,
        };
    }

    // Partial column norms: vn1[j] approximates ||A_true[k.., j]|| at the
    // current step k; vn2[j] is the value at the last exact computation.
    let mut vn1: Vec<f64> = (0..n).map(|j| nrm2(a.col(j))).collect();
    let mut vn2 = vn1.clone();
    let tol3z = f64::EPSILON.sqrt();
    let mut first_pivot = 0.0_f64;
    let mut recompute: Vec<usize> = Vec::new();
    let mut flagged: Vec<usize> = Vec::new();
    let mut scratch: Vec<T> = Vec::new();

    let mut j0 = 0;
    let mut stopped = false;
    'panels: while j0 < steps {
        let nb = NB.min(steps - j0);
        // F accumulates the panel's trailing-update coefficients:
        // A_true[:, j] = A_stored[:, j] - V[:, ..kb] * conj(F[j - j0, ..kb])
        // for the not-yet-updated trailing columns j >= j0 + kb.
        let mut f = Mat::<T>::zeros(n - j0, nb);
        let mut kb = 0;
        while kb < nb {
            let k = j0 + kb;
            // Select the pivot by the maintained partial norms.
            let mut best = k;
            let mut best_v = vn1[k];
            for j in (k + 1)..n {
                if vn1[j] > best_v {
                    best_v = vn1[j];
                    best = j;
                }
            }
            if best != k {
                a.swap_cols(k, best);
                jpvt.swap(k, best);
                vn1.swap(k, best);
                vn2.swap(k, best);
                f.swap_rows(k - j0, best - j0);
            }
            // Bring the pivot column up to date against the panel's
            // earlier reflectors: A[k.., k] -= V[k.., i] * conj(F[k-j0, i]).
            for i in 0..kb {
                let fv = f[(k - j0, i)].conj();
                if fv == T::ZERO {
                    continue;
                }
                let (vcol, pcol) = a.cols_mut_pair(j0 + i, k);
                for r in k..m {
                    pcol[r] = vcol[r].mul_add(-fv, pcol[r]);
                }
            }
            // The updated pivot column's exact norm drives the tolerance
            // test, exactly as in the unblocked algorithm.
            let pivot_norm = nrm2(&a.col(k)[k..]);
            if j0 == 0 && kb == 0 {
                first_pivot = pivot_norm;
            }
            if pivot_norm == 0.0 || pivot_norm <= tol * first_pivot {
                stopped = true;
                break;
            }
            // Householder step.
            let (t, beta) = {
                let col = &mut a.col_mut(k)[k..];
                make_householder(col)
            };
            tau.push(t);
            rank = k + 1;
            // F[jl, kb] = tau * A_stored[k.., j]^H v for trailing j, then
            // the incremental correction for the stale part:
            // F[:, kb] -= tau * F[:, ..kb] * (V[:, ..kb]^H v).
            {
                let vcol = a.col(k);
                for j in (k + 1)..n {
                    let acol = a.col(j);
                    f[(j - j0, kb)] = t * crate::vecops::dot(&acol[k..m], &vcol[k..m]);
                }
                for jl in 0..=kb {
                    f[(jl, kb)] = T::ZERO;
                }
                if kb > 0 {
                    let mut auxv = vec![T::ZERO; kb];
                    for (i, aux) in auxv.iter_mut().enumerate() {
                        let pcol = a.col(j0 + i);
                        *aux = -(t * crate::vecops::dot(&pcol[k..m], &vcol[k..m]));
                    }
                    for (i, aux) in auxv.iter().enumerate() {
                        if *aux == T::ZERO {
                            continue;
                        }
                        let (fi, fk) = f.cols_mut_pair(i, kb);
                        for (dst, src) in fk.iter_mut().zip(fi.iter()) {
                            *dst += *src * *aux;
                        }
                    }
                }
            }
            // Bring the pivot *row* up to date across all trailing columns
            // (makes row k of R exact): A[k, j] -= V[k, i] * conj(F[jl, i]).
            {
                let mut row_upd = vec![T::ZERO; n - k - 1];
                for i in 0..=kb {
                    let vki = if i == kb { T::ONE } else { a[(k, j0 + i)] };
                    if vki == T::ZERO {
                        continue;
                    }
                    let fcol = &f.col(i)[k + 1 - j0..];
                    for (dst, fv) in row_upd.iter_mut().zip(fcol.iter()) {
                        *dst = vki.mul_add(fv.conj(), *dst);
                    }
                }
                for (jl, upd) in row_upd.into_iter().enumerate() {
                    a[(k, k + 1 + jl)] -= upd;
                }
            }
            a[(k, k)] = beta;
            // Downdate the partial norms below the now-exact pivot row.
            flagged.clear();
            for j in (k + 1)..n {
                if vn1[j] == 0.0 {
                    continue;
                }
                let temp = (a[(k, j)].abs() / vn1[j]).min(1.0);
                let temp = ((1.0 + temp) * (1.0 - temp)).max(0.0);
                let ratio = vn1[j] / vn2[j].max(f64::MIN_POSITIVE);
                if temp * ratio * ratio <= tol3z {
                    // Cancellation: the downdated value has lost too many
                    // mantissa bits to be trusted.
                    flagged.push(j);
                } else {
                    vn1[j] *= temp.sqrt();
                }
            }
            kb += 1;
            let mut cut_panel = false;
            if !flagged.is_empty() {
                // LAPACK's xLAQPS cuts the panel here and recomputes after
                // the block update. That is ruinous on fast-decaying
                // (kernel-type) matrices, where cancellation fires every
                // couple of steps and shrinks every panel to one or two
                // columns. Instead, when only a few columns are affected,
                // materialize each one's updated trailing part against the
                // panel's reflectors (`A_true = A_stored - V F^H`, O(m kb)
                // per column) and renorm it exactly; fall back to the
                // panel cut only when cancellation is widespread and the
                // bulk block update amortizes better.
                if flagged.len() <= (n - k) / 4 {
                    for &j in &flagged {
                        scratch.clear();
                        scratch.extend_from_slice(&a.col(j)[k + 1..]);
                        let frow = j - j0;
                        for i in 0..kb {
                            let fv = f[(frow, i)].conj();
                            if fv == T::ZERO {
                                continue;
                            }
                            let vcol = &a.col(j0 + i)[k + 1..];
                            for (d, v) in scratch.iter_mut().zip(vcol.iter()) {
                                *d = v.mul_add(-fv, *d);
                            }
                        }
                        vn1[j] = nrm2(&scratch);
                        vn2[j] = vn1[j];
                    }
                } else {
                    recompute.extend_from_slice(&flagged);
                    cut_panel = true;
                }
            }
            if cut_panel {
                break;
            }
        }
        // Block update of the rows below the panel, written straight into
        // `a`: A[j0+kb.., j0+kb..] -= V2 * F2^H (one GEMM per panel). This
        // also runs when the tolerance stopped the factorization mid-panel,
        // so the trailing block of `factors` is the true residual under the
        // returned permutation — the same contract as the level-2 oracle.
        if stopped && kb > 0 && j0 + kb < n {
            // The stopped step's pivot column (position j0+kb) was already
            // lazily brought up to date; un-apply that so the block update
            // below does not subtract the panel's corrections twice.
            let k = j0 + kb;
            for i in 0..kb {
                let fv = f[(k - j0, i)].conj();
                if fv == T::ZERO {
                    continue;
                }
                let (vcol, pcol) = a.cols_mut_pair(j0 + i, k);
                for r in k..m {
                    pcol[r] = vcol[r].mul_add(fv, pcol[r]);
                }
            }
        }
        if kb > 0 && j0 + kb < n && j0 + kb < m {
            let v2 = {
                let mut v = Mat::zeros(m - j0 - kb, kb);
                for i in 0..kb {
                    let src = &a.col(j0 + i)[j0 + kb..];
                    v.col_mut(i).copy_from_slice(src);
                }
                v
            };
            let f2h = f.block(kb, 0, n - j0 - kb, kb).adjoint();
            gemm_acc_block(
                &mut a,
                (j0 + kb, j0 + kb, m - j0 - kb, n - j0 - kb),
                -T::ONE,
                &v2,
                (0, 0, m - j0 - kb, kb),
                &f2h,
                (0, 0, kb, n - j0 - kb),
            );
        }
        j0 += kb;
        if stopped {
            break 'panels;
        }
        // Exact renorms for the columns that hit cancellation.
        for j in recompute.drain(..) {
            if j >= j0 {
                vn1[j] = nrm2(&a.col(j)[j0..]);
                vn2[j] = vn1[j];
            }
        }
    }
    Cpqr {
        factors: a,
        tau,
        jpvt,
        rank,
    }
}

/// Level-2 reference CPQR with exact per-step renorms (test oracle).
///
/// Column norms are recomputed exactly at every step — a factor ~`rank`
/// more norm work than downdating (O(rank * mn) versus O(mn) total), which
/// is why the blocked [`cpqr`] replaces it on the hot path — but it is
/// unconditionally robust, making it the reference the blocked
/// factorization is validated against.
#[doc(hidden)]
pub fn cpqr_naive<T: Scalar>(mut a: Mat<T>, tol: f64, max_rank: usize) -> Cpqr<T> {
    let m = a.nrows();
    let n = a.ncols();
    let steps = m.min(n).min(max_rank);
    let mut jpvt: Vec<usize> = (0..n).collect();
    let mut tau: Vec<T> = Vec::with_capacity(steps);
    let mut rank = 0;
    let mut first_pivot = 0.0_f64;
    for k in 0..steps {
        // Exact column norms of the trailing block.
        let mut best = k;
        let mut best_norm = -1.0_f64;
        for j in k..n {
            let norm_sq: f64 = a.col(j)[k..].iter().map(|v| v.abs_sq()).sum();
            if norm_sq > best_norm {
                best_norm = norm_sq;
                best = j;
            }
        }
        let pivot_norm = best_norm.max(0.0).sqrt();
        if k == 0 {
            first_pivot = pivot_norm;
        }
        if pivot_norm <= tol * first_pivot || pivot_norm == 0.0 {
            break;
        }
        a.swap_cols(k, best);
        jpvt.swap(k, best);
        let (t, beta) = {
            let col = &mut a.col_mut(k)[k..];
            make_householder(col)
        };
        tau.push(t);
        let v: Vec<T> = a.col(k)[k..].to_vec();
        for j in (k + 1)..n {
            let col = &mut a.col_mut(j)[k..];
            apply_householder(&v, t, col);
        }
        a[(k, k)] = beta;
        rank = k + 1;
    }
    Cpqr {
        factors: a,
        tau,
        jpvt,
        rank,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::c64;
    use crate::gemm::{adjoint_matmul, matmul};
    use crate::norms::{fro_norm, max_abs_diff};

    fn upper_of<T: Scalar>(f: &Mat<T>, k: usize) -> Mat<T> {
        let n = f.ncols();
        let mut r = Mat::zeros(k, n);
        for j in 0..n {
            for i in 0..=j.min(k - 1) {
                r[(i, j)] = f[(i, j)];
            }
        }
        r
    }

    #[test]
    fn qr_reconstructs() {
        let a = Mat::from_fn(6, 4, |i, j| ((i * 5 + j * 3) % 11) as f64 - 5.0);
        let (f, tau) = householder_qr(a.clone());
        let q = form_q(&f, &tau, 4);
        let r = upper_of(&f, 4);
        let qr = matmul(&q, &r);
        assert!(max_abs_diff(&qr, &a) < 1e-12);
        // Q orthonormal
        let qtq = adjoint_matmul(&q, &q);
        assert!(max_abs_diff(&qtq, &Mat::identity(4)) < 1e-12);
    }

    #[test]
    fn qr_complex_reconstructs() {
        let a = Mat::from_fn(5, 3, |i, j| {
            c64::new((i + j) as f64, (i as f64) - 2.0 * j as f64)
        });
        let (f, tau) = householder_qr(a.clone());
        let q = form_q(&f, &tau, 3);
        let r = upper_of(&f, 3);
        let qr = matmul(&q, &r);
        assert!(max_abs_diff(&qr, &a) < 1e-12);
        let qtq = adjoint_matmul(&q, &q);
        assert!(max_abs_diff(&qtq, &Mat::identity(3)) < 1e-12);
    }

    /// Full-rank pseudo-random matrix; lattice-style formulas are avoided
    /// here because they tend to be numerically rank deficient, which makes
    /// factor-by-factor comparison meaningless past the rank.
    fn rand_mat(m: usize, n: usize, seed: u64) -> Mat<f64> {
        let mut state = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        Mat::from_fn(m, n, |_, _| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 2_000_000) as f64 / 1_000_000.0 - 1.0
        })
    }

    /// Shapes spanning several reflector blocks so the compact-WY path is
    /// exercised, validated against the level-2 oracle.
    #[test]
    fn blocked_qr_matches_naive_multi_panel() {
        for (m, n) in [(80, 70), (97, 45), (64, 100)] {
            let a = rand_mat(m, n, (m * 1000 + n) as u64);
            let (f_b, tau_b) = householder_qr(a.clone());
            let (f_n, tau_n) = householder_qr_naive(a.clone());
            let scale = fro_norm(&a).max(1.0);
            assert!(max_abs_diff(&f_b, &f_n) < 1e-12 * scale);
            for (tb, tn) in tau_b.iter().zip(tau_n.iter()) {
                assert!((*tb - *tn).abs() < 1e-12);
            }
            let k = m.min(n);
            let q_b = form_q(&f_b, &tau_b, k);
            let q_n = form_q_naive(&f_n, &tau_n, k);
            assert!(max_abs_diff(&q_b, &q_n) < 1e-12);
            let qr = matmul(&q_b, &upper_of(&f_b, k));
            assert!(max_abs_diff(&qr, &a) < 1e-11 * scale);
        }
    }

    #[test]
    fn cpqr_full_rank_reconstructs_with_permutation() {
        let a = Mat::from_fn(6, 5, |i, j| {
            ((i * 7 + j) % 5) as f64 + if i == j { 4.0 } else { 0.0 }
        });
        let c = cpqr(a.clone(), 1e-14, usize::MAX);
        assert_eq!(c.rank, 5);
        let q = form_q(&c.factors, &c.tau, c.rank);
        let r = upper_of(&c.factors, c.rank);
        let qr = matmul(&q, &r);
        // qr should equal a with columns permuted by jpvt
        let ap = Mat::from_fn(6, 5, |i, j| a[(i, c.jpvt[j])]);
        assert!(max_abs_diff(&qr, &ap) < 1e-12);
    }

    #[test]
    fn cpqr_detects_low_rank() {
        // Rank-2 matrix: outer product of genuinely independent factors.
        let u = Mat::from_fn(8, 2, |i, j| {
            if j == 0 {
                i as f64
            } else {
                (i * i) as f64 * 0.1
            }
        });
        let v = Mat::from_fn(2, 6, |i, j| {
            if i == 0 {
                1.0 + j as f64
            } else {
                (-1.0f64).powi(j as i32)
            }
        });
        let a = matmul(&u, &v);
        let c = cpqr(a.clone(), 1e-10, usize::MAX);
        assert_eq!(c.rank, 2, "rank-2 matrix should truncate at 2");
        // Residual of the dropped block is small.
        let q = form_q(&c.factors, &c.tau, c.rank);
        let r = upper_of(&c.factors, c.rank);
        let ap = Mat::from_fn(8, 6, |i, j| a[(i, c.jpvt[j])]);
        let qr = matmul(&q, &r);
        assert!(max_abs_diff(&qr, &ap) < 1e-9 * fro_norm(&a).max(1.0));
    }

    #[test]
    fn cpqr_diag_of_r_nonincreasing() {
        let a = Mat::from_fn(10, 10, |i, j| 1.0 / ((i + j) as f64 + 1.0)); // Hilbert: fast decay
        let c = cpqr(a, 1e-12, usize::MAX);
        let mut prev = f64::INFINITY;
        for k in 0..c.rank {
            let d = c.factors[(k, k)].abs();
            // Downdated norms are exact to a few ulps between recomputes,
            // so allow a slightly wider slack than exact renorming would.
            assert!(d <= prev * (1.0 + 1e-8), "pivot magnitudes must decay");
            prev = d;
        }
        assert!(c.rank < 10, "Hilbert matrix is numerically rank deficient");
    }

    #[test]
    fn cpqr_max_rank_cap() {
        let a = Mat::from_fn(6, 6, |i, j| if i == j { 1.0 } else { 0.1 * (i + j) as f64 });
        let c = cpqr(a, 0.0, 3);
        assert_eq!(c.rank, 3);
        assert_eq!(c.tau.len(), 3);
    }

    #[test]
    fn cpqr_zero_matrix_rank_zero() {
        let a: Mat<f64> = Mat::zeros(4, 5);
        let c = cpqr(a, 1e-10, usize::MAX);
        assert_eq!(c.rank, 0);
        assert_eq!(c.jpvt.len(), 5);
    }

    #[test]
    fn cpqr_r11_r12_shapes() {
        let a = Mat::from_fn(6, 5, |i, j| ((i * 3 + j * 5) % 7) as f64);
        let c = cpqr(a, 1e-13, usize::MAX);
        let r11 = c.r11();
        let r12 = c.r12();
        assert_eq!(r11.nrows(), c.rank);
        assert_eq!(r11.ncols(), c.rank);
        assert_eq!(r12.nrows(), c.rank);
        assert_eq!(r12.ncols(), 5 - c.rank);
    }

    /// Multi-panel CPQR against the exact-renorm oracle: identical pivots
    /// and factors on a matrix with well-separated column norms.
    #[test]
    fn blocked_cpqr_matches_naive_multi_panel() {
        let (m, n) = (90, 75);
        let mut a = rand_mat(m, n, 424242);
        // Scale columns to distinct, well-separated norms so the pivot
        // order is unambiguous for both norm strategies.
        for j in 0..n {
            let s = 1.0 + (n - j) as f64;
            for v in a.col_mut(j) {
                *v *= s;
            }
        }
        let c_b = cpqr(a.clone(), 1e-13, usize::MAX);
        let c_n = cpqr_naive(a.clone(), 1e-13, usize::MAX);
        assert_eq!(c_b.rank, c_n.rank);
        assert_eq!(c_b.jpvt, c_n.jpvt);
        let k = c_b.rank;
        let scale = fro_norm(&a).max(1.0);
        assert!(
            max_abs_diff(&upper_of(&c_b.factors, k), &upper_of(&c_n.factors, k)) < 1e-11 * scale
        );
        // Reconstruction through the blocked factors.
        let q = form_q(&c_b.factors, &c_b.tau, k);
        let qr = matmul(&q, &upper_of(&c_b.factors, k));
        let ap = Mat::from_fn(m, n, |i, j| a[(i, c_b.jpvt[j])]);
        assert!(max_abs_diff(&qr, &ap) < 1e-11 * scale);
    }

    /// Near-identical columns force catastrophic cancellation in the
    /// downdating formula; the recompute safeguard must keep the
    /// factorization correct.
    #[test]
    fn cpqr_downdating_cancellation_stress() {
        let m = 60;
        let n = 40;
        // All columns nearly equal to a common vector, with tiny
        // perturbations: after the first reflector every partial norm
        // collapses by ~1e8, exactly the regime the safeguard targets.
        let a = Mat::from_fn(m, n, |i, j| {
            let base = ((i * 7) % 13) as f64 + 1.0;
            base + 1e-8 * ((i * 31 + j * 57) % 101) as f64
        });
        let c = cpqr(a.clone(), 1e-14, usize::MAX);
        let k = c.rank;
        assert!(k >= 2, "perturbations are independent, rank must exceed 1");
        let q = form_q(&c.factors, &c.tau, k);
        let qtq = adjoint_matmul(&q, &q);
        assert!(max_abs_diff(&qtq, &Mat::identity(k)) < 1e-10);
        let qr = matmul(&q, &upper_of(&c.factors, k));
        let ap = Mat::from_fn(m, n, |i, j| a[(i, c.jpvt[j])]);
        assert!(max_abs_diff(&qr, &ap) < 1e-10 * fro_norm(&a).max(1.0));
    }

    /// The compact-WY accumulation must reproduce the explicit product
    /// of Householder matrices: `H0 H1 H2 = I - V T V^H`.
    #[test]
    fn compact_wy_matches_explicit_product() {
        let m = 8;
        let kb = 3;
        let mut v = Mat::zeros(m, kb);
        for j in 0..kb {
            v[(j, j)] = 1.0;
            for i in (j + 1)..m {
                v[(i, j)] = ((i * 7 + j * 3) % 5) as f64 * 0.2 - 0.4;
            }
        }
        let tau = vec![0.7, 1.3, 0.4];
        // Explicit P = H0 H1 H2 with Hi = I - tau_i v_i v_i^T.
        let mut p = Mat::identity(m);
        for i in 0..kb {
            let mut h = Mat::identity(m);
            for r in 0..m {
                for c in 0..m {
                    h[(r, c)] -= tau[i] * v[(r, i)] * v[(c, i)];
                }
            }
            p = matmul(&p, &h);
        }
        let t = super::form_t(&v, &tau);
        let vt = matmul(&v, &t);
        let mut wy = Mat::identity(m);
        wy.axpy(-1.0, &matmul(&vt, &v.transpose()));
        assert!(max_abs_diff(&p, &wy) < 1e-14);
        // Forward application (form_q direction): C := P C.
        let c0 = Mat::from_fn(m, 4, |i, j| (i * 4 + j) as f64 * 0.1 - 1.0);
        let mut c1 = c0.clone();
        super::apply_block_reflector(&v, &t, false, &mut c1);
        assert!(max_abs_diff(&c1, &matmul(&p, &c0)) < 1e-13);
        // Adjoint application (factorization direction): C := P^T C, which
        // equals the sequential H2 (H1 (H0 C)) of the level-2 kernel.
        let mut c2 = c0.clone();
        super::apply_block_reflector(&v, &t, true, &mut c2);
        assert!(max_abs_diff(&c2, &matmul(&p.transpose(), &c0)) < 1e-13);
        let mut c3 = c0.clone();
        for i in 0..kb {
            let vv: Vec<f64> = (i..m).map(|r| v[(r, i)]).collect();
            for j in 0..c3.ncols() {
                super::apply_householder(&vv, tau[i], &mut c3.col_mut(j)[i..]);
            }
        }
        assert!(max_abs_diff(&c2, &c3) < 1e-13);
    }

    #[test]
    fn householder_on_e1_is_identity_like() {
        let mut x = vec![2.0, 0.0, 0.0];
        let (tau, beta) = make_householder(&mut x);
        assert_eq!(tau, 0.0);
        assert_eq!(beta, 2.0);
    }
}
