//! Householder QR and greedy column-pivoted QR (CPQR).
//!
//! CPQR is the engine behind the interpolative decomposition (Definition 1
//! in the paper): pivot columns become skeleton indices, and the truncated
//! trailing block bounds the compression error. We follow the greedy
//! column-pivoting strategy of `LowRankApprox.jl` (paper §II-B) rather than
//! strong RRQR: cheaper, and well behaved on kernel matrices in practice.

use crate::mat::Mat;
use crate::scalar::Scalar;

/// Result of an (optionally truncated) column-pivoted QR factorization.
#[derive(Clone, Debug)]
pub struct Cpqr<T> {
    /// Packed Householder vectors (below diagonal) and `R` (upper triangle).
    pub factors: Mat<T>,
    /// Householder coefficients, one per elimination step.
    pub tau: Vec<T>,
    /// Column permutation: `jpvt[k]` is the original index of permuted column `k`.
    pub jpvt: Vec<usize>,
    /// Numerical rank detected at the requested tolerance.
    pub rank: usize,
}

impl<T: Scalar> Cpqr<T> {
    /// The `rank x rank` leading upper-triangular block `R11`.
    pub fn r11(&self) -> Mat<T> {
        let k = self.rank;
        let mut r = Mat::zeros(k, k);
        for j in 0..k {
            for i in 0..=j {
                r[(i, j)] = self.factors[(i, j)];
            }
        }
        r
    }

    /// The `rank x (n - rank)` coupling block `R12`.
    pub fn r12(&self) -> Mat<T> {
        let k = self.rank;
        let n = self.factors.ncols();
        let mut r = Mat::zeros(k, n - k);
        for j in k..n {
            for i in 0..k {
                r[(i, j - k)] = self.factors[(i, j)];
            }
        }
        r
    }
}

/// Generate a Householder reflector for `x`, returning `(tau, beta)` and
/// overwriting `x[1..]` with the reflector tail `v[1..]` (with `v[0] = 1`).
///
/// The reflector satisfies `(I - tau v v^H) x = beta e1` with `|beta| = ||x||`.
fn make_householder<T: Scalar>(x: &mut [T]) -> (T, T) {
    let alpha = x[0];
    let tail_sq: f64 = x[1..].iter().map(|v| v.abs_sq()).sum();
    let alpha_abs = alpha.abs();
    let norm = (alpha_abs * alpha_abs + tail_sq).sqrt();
    if norm == 0.0 || (tail_sq == 0.0 && !T::IS_COMPLEX) {
        // Already collinear with e1; no reflection needed.
        return (T::ZERO, alpha);
    }
    // beta = -sign(alpha) * norm (for complex: -alpha/|alpha| * norm).
    let phase = if alpha_abs == 0.0 {
        T::ONE
    } else {
        alpha.scale(1.0 / alpha_abs)
    };
    let beta = -phase.scale(norm);
    let denom = alpha - beta;
    // tau = (beta - alpha) / beta
    let tau = (beta - alpha) / beta;
    let inv = denom.recip();
    for v in x[1..].iter_mut() {
        *v *= inv;
    }
    x[0] = T::ONE;
    (tau, beta)
}

/// Apply `(I - tau v v^H)` to a column slice, where `v` has implicit leading 1.
fn apply_householder<T: Scalar>(v: &[T], tau: T, col: &mut [T]) {
    debug_assert_eq!(v.len(), col.len());
    if tau == T::ZERO {
        return;
    }
    // w = v^H col
    let mut w = col[0];
    for i in 1..v.len() {
        w += v[i].conj() * col[i];
    }
    let tw = tau * w;
    col[0] -= tw;
    for i in 1..v.len() {
        col[i] -= v[i] * tw;
    }
}

/// Unpivoted Householder QR. Returns packed factors and `tau`.
pub fn householder_qr<T: Scalar>(mut a: Mat<T>) -> (Mat<T>, Vec<T>) {
    let m = a.nrows();
    let n = a.ncols();
    let steps = m.min(n);
    let mut tau = Vec::with_capacity(steps);
    for k in 0..steps {
        let (t, beta) = {
            let col = &mut a.col_mut(k)[k..];
            make_householder(col)
        };
        tau.push(t);
        let v: Vec<T> = a.col(k)[k..].to_vec();
        for j in (k + 1)..n {
            let col = &mut a.col_mut(j)[k..];
            apply_householder(&v, t, col);
        }
        a[(k, k)] = beta;
    }
    (a, tau)
}

/// Extract the explicit `Q` (thin, `m x k`) from packed Householder factors.
pub fn form_q<T: Scalar>(factors: &Mat<T>, tau: &[T], k: usize) -> Mat<T> {
    let m = factors.nrows();
    let mut q = Mat::zeros(m, k);
    for j in 0..k {
        q[(j, j)] = T::ONE;
    }
    // Apply reflectors in reverse order to the identity block.
    for step in (0..tau.len().min(k)).rev() {
        let mut v: Vec<T> = factors.col(step)[step..].to_vec();
        if !v.is_empty() {
            v[0] = T::ONE;
        }
        for j in 0..k {
            let col = &mut q.col_mut(j)[step..];
            apply_householder(&v, tau[step], col);
        }
    }
    q
}

/// Greedy column-pivoted QR, truncated at relative tolerance `tol` (on
/// `|R[k,k]| / |R[0,0]|`) or at `max_rank`, whichever comes first.
///
/// Column norms are recomputed exactly at every step. That is a factor ~2
/// over LAPACK's downdating but is unconditionally robust; the matrices
/// compressed in the solver have O(1) rows, so this is never hot enough to
/// matter.
pub fn cpqr<T: Scalar>(mut a: Mat<T>, tol: f64, max_rank: usize) -> Cpqr<T> {
    let m = a.nrows();
    let n = a.ncols();
    let steps = m.min(n).min(max_rank);
    let mut jpvt: Vec<usize> = (0..n).collect();
    let mut tau: Vec<T> = Vec::with_capacity(steps);
    let mut rank = 0;
    let mut first_pivot = 0.0_f64;
    for k in 0..steps {
        // Exact column norms of the trailing block.
        let mut best = k;
        let mut best_norm = -1.0_f64;
        for j in k..n {
            let norm_sq: f64 = a.col(j)[k..].iter().map(|v| v.abs_sq()).sum();
            if norm_sq > best_norm {
                best_norm = norm_sq;
                best = j;
            }
        }
        let pivot_norm = best_norm.max(0.0).sqrt();
        if k == 0 {
            first_pivot = pivot_norm;
        }
        if pivot_norm <= tol * first_pivot || pivot_norm == 0.0 {
            break;
        }
        a.swap_cols(k, best);
        jpvt.swap(k, best);
        let (t, beta) = {
            let col = &mut a.col_mut(k)[k..];
            make_householder(col)
        };
        tau.push(t);
        let v: Vec<T> = a.col(k)[k..].to_vec();
        for j in (k + 1)..n {
            let col = &mut a.col_mut(j)[k..];
            apply_householder(&v, t, col);
        }
        a[(k, k)] = beta;
        rank = k + 1;
    }
    Cpqr {
        factors: a,
        tau,
        jpvt,
        rank,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::c64;
    use crate::gemm::{adjoint_matmul, matmul};
    use crate::norms::{fro_norm, max_abs_diff};

    fn upper_of<T: Scalar>(f: &Mat<T>, k: usize) -> Mat<T> {
        let n = f.ncols();
        let mut r = Mat::zeros(k, n);
        for j in 0..n {
            for i in 0..=j.min(k - 1) {
                r[(i, j)] = f[(i, j)];
            }
        }
        r
    }

    #[test]
    fn qr_reconstructs() {
        let a = Mat::from_fn(6, 4, |i, j| ((i * 5 + j * 3) % 11) as f64 - 5.0);
        let (f, tau) = householder_qr(a.clone());
        let q = form_q(&f, &tau, 4);
        let r = upper_of(&f, 4);
        let qr = matmul(&q, &r);
        assert!(max_abs_diff(&qr, &a) < 1e-12);
        // Q orthonormal
        let qtq = adjoint_matmul(&q, &q);
        assert!(max_abs_diff(&qtq, &Mat::identity(4)) < 1e-12);
    }

    #[test]
    fn qr_complex_reconstructs() {
        let a = Mat::from_fn(5, 3, |i, j| {
            c64::new((i + j) as f64, (i as f64) - 2.0 * j as f64)
        });
        let (f, tau) = householder_qr(a.clone());
        let q = form_q(&f, &tau, 3);
        let r = upper_of(&f, 3);
        let qr = matmul(&q, &r);
        assert!(max_abs_diff(&qr, &a) < 1e-12);
        let qtq = adjoint_matmul(&q, &q);
        assert!(max_abs_diff(&qtq, &Mat::identity(3)) < 1e-12);
    }

    #[test]
    fn cpqr_full_rank_reconstructs_with_permutation() {
        let a = Mat::from_fn(6, 5, |i, j| {
            ((i * 7 + j) % 5) as f64 + if i == j { 4.0 } else { 0.0 }
        });
        let c = cpqr(a.clone(), 1e-14, usize::MAX);
        assert_eq!(c.rank, 5);
        let q = form_q(&c.factors, &c.tau, c.rank);
        let r = upper_of(&c.factors, c.rank);
        let qr = matmul(&q, &r);
        // qr should equal a with columns permuted by jpvt
        let ap = Mat::from_fn(6, 5, |i, j| a[(i, c.jpvt[j])]);
        assert!(max_abs_diff(&qr, &ap) < 1e-12);
    }

    #[test]
    fn cpqr_detects_low_rank() {
        // Rank-2 matrix: outer product of genuinely independent factors.
        let u = Mat::from_fn(8, 2, |i, j| {
            if j == 0 {
                i as f64
            } else {
                (i * i) as f64 * 0.1
            }
        });
        let v = Mat::from_fn(2, 6, |i, j| {
            if i == 0 {
                1.0 + j as f64
            } else {
                (-1.0f64).powi(j as i32)
            }
        });
        let a = matmul(&u, &v);
        let c = cpqr(a.clone(), 1e-10, usize::MAX);
        assert_eq!(c.rank, 2, "rank-2 matrix should truncate at 2");
        // Residual of the dropped block is small.
        let q = form_q(&c.factors, &c.tau, c.rank);
        let r = upper_of(&c.factors, c.rank);
        let ap = Mat::from_fn(8, 6, |i, j| a[(i, c.jpvt[j])]);
        let qr = matmul(&q, &r);
        assert!(max_abs_diff(&qr, &ap) < 1e-9 * fro_norm(&a).max(1.0));
    }

    #[test]
    fn cpqr_diag_of_r_nonincreasing() {
        let a = Mat::from_fn(10, 10, |i, j| 1.0 / ((i + j) as f64 + 1.0)); // Hilbert: fast decay
        let c = cpqr(a, 1e-12, usize::MAX);
        let mut prev = f64::INFINITY;
        for k in 0..c.rank {
            let d = c.factors[(k, k)].abs();
            assert!(d <= prev * (1.0 + 1e-10), "pivot magnitudes must decay");
            prev = d;
        }
        assert!(c.rank < 10, "Hilbert matrix is numerically rank deficient");
    }

    #[test]
    fn cpqr_max_rank_cap() {
        let a = Mat::from_fn(6, 6, |i, j| if i == j { 1.0 } else { 0.1 * (i + j) as f64 });
        let c = cpqr(a, 0.0, 3);
        assert_eq!(c.rank, 3);
        assert_eq!(c.tau.len(), 3);
    }

    #[test]
    fn cpqr_zero_matrix_rank_zero() {
        let a: Mat<f64> = Mat::zeros(4, 5);
        let c = cpqr(a, 1e-10, usize::MAX);
        assert_eq!(c.rank, 0);
        assert_eq!(c.jpvt.len(), 5);
    }

    #[test]
    fn cpqr_r11_r12_shapes() {
        let a = Mat::from_fn(6, 5, |i, j| ((i * 3 + j * 5) % 7) as f64);
        let c = cpqr(a, 1e-13, usize::MAX);
        let r11 = c.r11();
        let r12 = c.r12();
        assert_eq!(r11.nrows(), c.rank);
        assert_eq!(r11.ncols(), c.rank);
        assert_eq!(r12.nrows(), c.rank);
        assert_eq!(r12.ncols(), 5 - c.rank);
    }

    #[test]
    fn householder_on_e1_is_identity_like() {
        let mut x = vec![2.0, 0.0, 0.0];
        let (tau, beta) = make_householder(&mut x);
        assert_eq!(tau, 0.0);
        assert_eq!(beta, 2.0);
    }
}
