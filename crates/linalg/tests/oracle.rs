//! Randomized oracle tests: every blocked level-3 kernel must agree with
//! its retained naive/unblocked predecessor to 1e-12 relative error,
//! across rectangular shapes, degenerate (empty / single-column) edges,
//! and both `f64` and `c64` scalars.

use srsf_linalg::gemm::{
    adjoint_matmul, adjoint_matmul_acc_naive, matmul, matmul_acc, matmul_acc_naive, matmul_adjoint,
    matmul_adjoint_naive,
};
use srsf_linalg::norms::{fro_norm, max_abs_diff};
use srsf_linalg::qr::{
    cpqr, cpqr_naive, form_q, form_q_naive, householder_qr, householder_qr_naive,
};
use srsf_linalg::triangular::{
    solve_lower_mat, solve_lower_mat_unblocked, solve_lower_right_mat,
    solve_lower_right_mat_unblocked, solve_upper_mat, solve_upper_mat_unblocked,
    solve_upper_right_mat, solve_upper_right_mat_unblocked,
};
use srsf_linalg::{c64, Lu, Mat, Scalar};

const TOL: f64 = 1e-12;

/// Deterministic xorshift stream.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407))
    }
    fn next_f64(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0 % 2_000_000) as f64 / 1_000_000.0 - 1.0
    }
}

trait TestScalar: Scalar {
    fn rand(rng: &mut Rng) -> Self;
}

impl TestScalar for f64 {
    fn rand(rng: &mut Rng) -> Self {
        rng.next_f64()
    }
}

impl TestScalar for c64 {
    fn rand(rng: &mut Rng) -> Self {
        c64::new(rng.next_f64(), rng.next_f64())
    }
}

fn rand_mat<T: TestScalar>(m: usize, n: usize, rng: &mut Rng) -> Mat<T> {
    Mat::from_fn(m, n, |_, _| T::rand(rng))
}

fn assert_close<T: Scalar>(got: &Mat<T>, want: &Mat<T>, what: &str) {
    let scale = fro_norm(want).max(1.0);
    let err = max_abs_diff(got, want);
    assert!(
        err <= TOL * scale,
        "{what}: {err:.3e} vs scale {scale:.3e} ({}x{})",
        want.nrows(),
        want.ncols()
    );
}

/// Shapes spanning small (naive path), large (blocked path), ragged
/// micro-tile edges, and degenerate cases.
const GEMM_SHAPES: &[(usize, usize, usize)] = &[
    (1, 1, 1),
    (5, 3, 7),
    (17, 33, 9),
    (64, 64, 64),
    (97, 103, 67),
    (130, 260, 41),
    (200, 17, 200),
    (0, 4, 3),
    (4, 0, 3),
    (4, 3, 0),
    (128, 1, 128),
];

fn gemm_oracle<T: TestScalar>(seed: u64) {
    for (i, &(m, k, n)) in GEMM_SHAPES.iter().enumerate() {
        let mut rng = Rng::new(seed + i as u64);
        let a = rand_mat::<T>(m, k, &mut rng);
        let b = rand_mat::<T>(k, n, &mut rng);
        let c0 = rand_mat::<T>(m, n, &mut rng);
        let alpha = T::from_re_im(0.7, -0.3);
        let mut c = c0.clone();
        matmul_acc(&mut c, alpha, &a, &b);
        let mut c_ref = c0.clone();
        matmul_acc_naive(&mut c_ref, alpha, &a, &b);
        assert_close(&c, &c_ref, "matmul_acc");

        // Adjoint forms (left and right).
        let at = rand_mat::<T>(k, m, &mut rng);
        let got = adjoint_matmul(&at, &b);
        let mut want = Mat::zeros(m, n);
        adjoint_matmul_acc_naive(&mut want, T::ONE, &at, &b);
        assert_close(&got, &want, "adjoint_matmul");

        let bh = rand_mat::<T>(n, k, &mut rng);
        let got = matmul_adjoint(&a, &bh);
        let want = matmul_adjoint_naive(&a, &bh);
        assert_close(&got, &want, "matmul_adjoint");
    }
}

#[test]
fn gemm_blocked_matches_naive_f64() {
    gemm_oracle::<f64>(1);
}

#[test]
fn gemm_blocked_matches_naive_c64() {
    gemm_oracle::<c64>(2);
}

#[test]
fn transpose_tiled_matches_naive() {
    for (i, &(m, n)) in [(0usize, 5usize), (1, 1), (33, 65), (100, 7), (70, 129)]
        .iter()
        .enumerate()
    {
        let mut rng = Rng::new(77 + i as u64);
        let a = rand_mat::<c64>(m, n, &mut rng);
        assert_eq!(a.transpose(), a.transpose_naive());
        assert_eq!(a.adjoint(), a.adjoint_naive());
        let b = rand_mat::<f64>(n, m, &mut rng);
        assert_eq!(b.transpose(), b.transpose_naive());
        assert_eq!(b.adjoint(), b.adjoint_naive());
    }
}

fn qr_oracle<T: TestScalar>(seed: u64) {
    for (i, &(m, n)) in [
        (1usize, 1usize),
        (10, 4),
        (4, 10),
        (50, 50),
        (90, 70),
        (64, 100),
        (130, 40),
        (5, 0),
    ]
    .iter()
    .enumerate()
    {
        let mut rng = Rng::new(seed + i as u64);
        let a = rand_mat::<T>(m, n, &mut rng);
        let (f_b, tau_b) = householder_qr(a.clone());
        let (f_n, tau_n) = householder_qr_naive(a.clone());
        assert_close(&f_b, &f_n, "householder_qr factors");
        for (tb, tn) in tau_b.iter().zip(tau_n.iter()) {
            assert!((*tb - *tn).abs() < TOL * 10.0, "tau mismatch");
        }
        let k = m.min(n);
        let q_b = form_q(&f_b, &tau_b, k);
        let q_n = form_q_naive(&f_n, &tau_n, k);
        assert_close(&q_b, &q_n, "form_q");
    }
}

#[test]
fn qr_blocked_matches_naive_f64() {
    qr_oracle::<f64>(3);
}

#[test]
fn qr_blocked_matches_naive_c64() {
    qr_oracle::<c64>(4);
}

fn cpqr_oracle<T: TestScalar>(seed: u64) {
    for (i, &(m, n)) in [(20usize, 12usize), (60, 90), (90, 60), (80, 80)]
        .iter()
        .enumerate()
    {
        let mut rng = Rng::new(seed + i as u64);
        // Distinct, well-separated column norms make the pivot sequence
        // unambiguous for both norm strategies.
        let mut a = rand_mat::<T>(m, n, &mut rng);
        for j in 0..n {
            let s = T::from_f64(1.0 + (n - j) as f64);
            for v in a.col_mut(j) {
                *v *= s;
            }
        }
        let c_b = cpqr(a.clone(), 1e-13, usize::MAX);
        let c_n = cpqr_naive(a.clone(), 1e-13, usize::MAX);
        assert_eq!(c_b.rank, c_n.rank, "rank mismatch {m}x{n}");
        assert_eq!(c_b.jpvt, c_n.jpvt, "pivot mismatch {m}x{n}");
        // Compare the R factor on the factored rows.
        let k = c_b.rank;
        let r_b = Mat::from_fn(
            k,
            n,
            |i, j| if i <= j { c_b.factors[(i, j)] } else { T::ZERO },
        );
        let r_n = Mat::from_fn(
            k,
            n,
            |i, j| if i <= j { c_n.factors[(i, j)] } else { T::ZERO },
        );
        assert_close(&r_b, &r_n, "cpqr R");
        // Both must reconstruct the permuted input.
        let q = form_q(&c_b.factors, &c_b.tau, k);
        let qr = matmul(&q, &r_b);
        let ap = Mat::from_fn(m, n, |i, j| a[(i, c_b.jpvt[j])]);
        let scale = fro_norm(&a).max(1.0);
        let err = max_abs_diff(&qr, &ap);
        assert!(err <= 1e-11 * scale, "cpqr reconstruction {err:.3e}");
    }
}

#[test]
fn cpqr_blocked_matches_naive_f64() {
    cpqr_oracle::<f64>(5);
}

#[test]
fn cpqr_blocked_matches_naive_c64() {
    cpqr_oracle::<c64>(6);
}

/// Near-identical columns collapse every partial norm by ~1e8 after one
/// reflector — the downdating-cancellation regime. The blocked CPQR must
/// stay a valid factorization (the pivot *order* may legitimately differ
/// from the exact-renorm oracle in this regime, the error bound may not).
#[test]
fn cpqr_cancellation_stress_both_scalars() {
    fn run<T: TestScalar>(seed: u64) {
        let (m, n) = (70, 50);
        let mut rng = Rng::new(seed);
        let base: Vec<T> = (0..m).map(|_| T::rand(&mut rng)).collect();
        let a = Mat::from_fn(m, n, |i, _| base[i] + T::rand(&mut rng).scale(1e-8));
        let c = cpqr(a.clone(), 1e-14, usize::MAX);
        let k = c.rank;
        assert!(k >= 2, "perturbations are independent; rank must exceed 1");
        let q = form_q(&c.factors, &c.tau, k);
        let qtq = adjoint_matmul(&q, &q);
        assert!(
            max_abs_diff(&qtq, &Mat::identity(k)) < 1e-9,
            "Q lost orthonormality"
        );
        let r = Mat::from_fn(
            k,
            n,
            |i, j| if i <= j { c.factors[(i, j)] } else { T::ZERO },
        );
        let qr = matmul(&q, &r);
        let ap = Mat::from_fn(m, n, |i, j| a[(i, c.jpvt[j])]);
        assert!(max_abs_diff(&qr, &ap) < 1e-9 * fro_norm(&a).max(1.0));
    }
    run::<f64>(7);
    run::<c64>(8);
}

fn lu_oracle<T: TestScalar>(seed: u64) {
    for (i, &n) in [1usize, 7, 48, 49, 100, 150].iter().enumerate() {
        let mut rng = Rng::new(seed + i as u64);
        let mut a = rand_mat::<T>(n, n, &mut rng);
        for d in 0..n {
            a[(d, d)] += T::from_f64(n as f64); // diagonally dominant
        }
        let lu_b = Lu::factor(a.clone()).expect("blocked LU");
        let lu_n = Lu::factor_unblocked(a.clone()).expect("unblocked LU");
        assert_eq!(lu_b.piv, lu_n.piv, "pivot mismatch n={n}");
        assert_close(&lu_b.lu, &lu_n.lu, "LU factors");
    }
}

#[test]
fn lu_blocked_matches_unblocked_f64() {
    lu_oracle::<f64>(9);
}

#[test]
fn lu_blocked_matches_unblocked_c64() {
    lu_oracle::<c64>(10);
}

fn triangular_oracle<T: TestScalar>(seed: u64) {
    for (i, &(n, nrhs)) in [(1usize, 1usize), (40, 7), (65, 64), (150, 33), (150, 0)]
        .iter()
        .enumerate()
    {
        let mut rng = Rng::new(seed + i as u64);
        let mut l = Mat::<T>::zeros(n, n);
        for j in 0..n {
            for r in j..n {
                l[(r, j)] = T::rand(&mut rng).scale(0.5);
            }
            l[(j, j)] = T::from_f64(2.0 + j as f64 * 0.01);
        }
        let u = l.adjoint();
        let b0 = rand_mat::<T>(n, nrhs, &mut rng);
        let r0 = rand_mat::<T>(nrhs, n, &mut rng);
        for unit in [false, true] {
            let mut x = b0.clone();
            let mut x_ref = b0.clone();
            solve_lower_mat(&l, unit, &mut x);
            solve_lower_mat_unblocked(&l, unit, &mut x_ref);
            assert_close(&x, &x_ref, "solve_lower_mat");

            let mut y = b0.clone();
            let mut y_ref = b0.clone();
            solve_upper_mat(&u, unit, &mut y);
            solve_upper_mat_unblocked(&u, unit, &mut y_ref);
            assert_close(&y, &y_ref, "solve_upper_mat");

            let mut w = r0.clone();
            let mut w_ref = r0.clone();
            solve_upper_right_mat(&mut w, &u, unit);
            solve_upper_right_mat_unblocked(&mut w_ref, &u, unit);
            assert_close(&w, &w_ref, "solve_upper_right_mat");

            let mut z = r0.clone();
            let mut z_ref = r0.clone();
            solve_lower_right_mat(&mut z, &l, unit);
            solve_lower_right_mat_unblocked(&mut z_ref, &l, unit);
            assert_close(&z, &z_ref, "solve_lower_right_mat");
        }
    }
}

#[test]
fn triangular_blocked_matches_unblocked_f64() {
    triangular_oracle::<f64>(11);
}

#[test]
fn triangular_blocked_matches_unblocked_c64() {
    triangular_oracle::<c64>(12);
}

/// On tolerance-truncated factorizations the trailing block of `factors`
/// must be the true residual under the returned permutation — the same
/// contract as the exact-renorm oracle (pivot order within the redundant
/// set may differ, so compare the permutation-invariant residual norm).
#[test]
fn cpqr_truncated_residual_matches_naive() {
    let (m, n) = (120, 200);
    // Fast-decaying kernel-type matrix: truncates well below min(m, n).
    let src: Vec<f64> = (0..n).map(|j| j as f64 / n as f64).collect();
    let trg: Vec<f64> = (0..m).map(|i| 1.4 + i as f64 / m as f64).collect();
    let a = Mat::from_fn(m, n, |i, j| 1.0 / (trg[i] - src[j]));
    let c_b = cpqr(a.clone(), 1e-8, usize::MAX);
    let c_n = cpqr_naive(a.clone(), 1e-8, usize::MAX);
    assert_eq!(c_b.rank, c_n.rank);
    let k = c_b.rank;
    assert!(
        k < m.min(n),
        "test needs an actually truncated factorization"
    );
    let res_b = c_b.factors.block(k, k, m - k, n - k);
    let res_n = c_n.factors.block(k, k, m - k, n - k);
    let (nb, nn) = (fro_norm(&res_b), fro_norm(&res_n));
    // The residual sits at the factorization's noise floor, so the two
    // arithmetic orders agree to ~single-precision there — while stale
    // (missing-update) data would be wrong by orders of magnitude.
    assert!(
        (nb - nn).abs() <= 1e-5 * nn.max(1e-300),
        "residual norms differ: blocked {nb:.6e} vs naive {nn:.6e}"
    );
}
