//! Fuzz + property tests for every [`Wire`] decoder in the runtime codec.
//!
//! Three properties, for each wire type:
//!
//! 1. **Totality** — `decode` over adversarial bytes (random streams,
//!    truncations of valid encodings, bit-flipped valid encodings) never
//!    panics and never over-allocates: it returns `Ok` or a
//!    [`CodecError`], nothing else. A length prefix claiming more
//!    elements than the payload holds must be rejected *before* any
//!    allocation is sized from it.
//! 2. **Round trip** — decode(encode(x)) == x for randomly generated
//!    values, including ragged nested containers and zero-sized edge
//!    cases.
//! 3. **Strict-prefix truncation** of a valid encoding never panics.
//!
//! The generator is a dependency-free xorshift64* PRNG, so failures
//! reproduce from the printed seed. The whole suite is Miri-compatible
//! (`cargo +nightly miri test -p srsf-runtime --test codec_fuzz`);
//! under Miri the iteration counts drop so the interpreter finishes in
//! minutes while still exercising every decoder.

use srsf_linalg::{c64, Lu, Mat};
use srsf_runtime::codec::{ByteReader, CodecError, Wire};
use std::panic::{catch_unwind, AssertUnwindSafe};

const fn iters(full: usize, miri: usize) -> usize {
    if cfg!(miri) {
        miri
    } else {
        full
    }
}

/// xorshift64* — tiny deterministic PRNG (Vigna, "An experimental
/// exploration of Marsaglia's xorshift generators, scrambled").
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
    fn bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| self.next() as u8).collect()
    }
    fn f64(&mut self) -> f64 {
        // Mix in non-finite and denormal-ish values now and then.
        match self.below(16) {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            3 => 0.0,
            _ => f64::from_bits(self.next()),
        }
    }
}

/// Decode `bytes` as `T`, demanding "no panic": any unwind is promoted
/// to a test failure that prints the offending payload.
fn decode_total<T: Wire>(name: &str, bytes: &[u8]) -> Result<T, CodecError> {
    let owned = bytes.to_vec();
    catch_unwind(AssertUnwindSafe(move || {
        T::decode(&mut ByteReader::new(owned))
    }))
    .unwrap_or_else(|_| {
        panic!(
            "decoding {name} panicked instead of returning CodecError; payload = {:02x?}",
            bytes
        )
    })
}

/// Property 1 + 3 for one type: random streams, then every strict
/// prefix and a few bit flips of each valid encoding from `sample`.
fn fuzz_type<T: Wire>(name: &str, seed: u64, mut sample: impl FnMut(&mut Rng) -> T) {
    let mut rng = Rng::new(seed);
    for _ in 0..iters(2000, 24) {
        let len = rng.below(97);
        let payload = rng.bytes(len);
        let _ = decode_total::<T>(name, &payload);
    }
    for _ in 0..iters(64, 4) {
        let valid = sample(&mut rng).to_bytes();
        // Strict prefixes: truncation at every boundary must stay total.
        let step = if cfg!(miri) { 8 } else { 1 };
        for cut in (0..valid.len()).step_by(step) {
            let _ = decode_total::<T>(name, &valid[..cut]);
        }
        // Bit flips: corruption inside a structurally valid frame.
        if !valid.is_empty() {
            for _ in 0..iters(16, 2) {
                let mut bent = valid.clone();
                let at = rng.below(bent.len());
                bent[at] ^= 1 << rng.below(8);
                let _ = decode_total::<T>(name, &bent);
            }
        }
    }
}

/// Property 2: decode(encode(x)) == x.
fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(
    name: &str,
    seed: u64,
    mut sample: impl FnMut(&mut Rng) -> T,
) {
    let mut rng = Rng::new(seed);
    for _ in 0..iters(256, 8) {
        let x = sample(&mut rng);
        let bytes = x.to_bytes();
        let len = bytes.len();
        let back = T::from_bytes(bytes)
            .unwrap_or_else(|e| panic!("{name}: round trip failed to decode: {e}"));
        assert_eq!(back, x, "{name}: round trip changed the value");
        // And the decode must consume exactly the encoding: a reader
        // positioned after it sees a sentinel we plant behind.
        let mut w = srsf_runtime::codec::ByteWriter::new();
        x.encode(&mut w);
        w.put_u64(0xDEAD_BEEF_F00D_CAFE);
        let mut r = ByteReader::new(w.finish());
        let _ = T::decode(&mut r).unwrap_or_else(|e| panic!("{name}: decode: {e}"));
        assert_eq!(
            r.position(),
            len,
            "{name}: decode consumed a different number of bytes than encode produced"
        );
        let sentinel = r
            .try_get_u64()
            .unwrap_or_else(|e| panic!("{name}: sentinel: {e}"));
        assert_eq!(sentinel, 0xDEAD_BEEF_F00D_CAFE, "{name}: misaligned decode");
    }
}

// ---- value generators --------------------------------------------------

fn gen_string(rng: &mut Rng) -> String {
    let n = rng.below(12);
    (0..n)
        .map(|_| match rng.below(4) {
            0 => 'µ',
            1 => '思',
            2 => '𝕊',
            _ => (b'a' + (rng.below(26) as u8)) as char,
        })
        .collect()
}

fn gen_mat_f64(rng: &mut Rng) -> Mat<f64> {
    let (m, n) = (rng.below(5), rng.below(5));
    let mut vals: Vec<f64> = (0..m * n).map(|_| rng.f64()).collect();
    // NaN breaks PartialEq-based round-trip checks; keep bits exotic
    // but comparable.
    for v in &mut vals {
        if v.is_nan() {
            *v = 42.0;
        }
    }
    Mat::from_vec(m, n, vals)
}

fn gen_mat_c64(rng: &mut Rng) -> Mat<c64> {
    let (m, n) = (rng.below(5), rng.below(5));
    let vals: Vec<c64> = (0..m * n)
        .map(|_| {
            let (re, im) = (rng.f64(), rng.f64());
            c64::new(
                if re.is_nan() { 42.0 } else { re },
                if im.is_nan() { -42.0 } else { im },
            )
        })
        .collect();
    Mat::from_vec(m, n, vals)
}

fn gen_lu(rng: &mut Rng) -> Lu<f64> {
    let n = rng.below(4);
    Lu {
        lu: Mat::from_vec(n, n, (0..n * n).map(|i| i as f64).collect()),
        piv: (0..n).map(|_| rng.below(8)).collect(),
    }
}

/// Ragged nested vectors: inner lengths vary within one value.
fn gen_ragged(rng: &mut Rng) -> Vec<Vec<u64>> {
    let n = rng.below(6);
    (0..n)
        .map(|_| {
            let m = rng.below(7);
            (0..m).map(|_| rng.next()).collect()
        })
        .collect()
}

// ---- totality over adversarial bytes -----------------------------------

#[test]
fn primitives_decode_is_total() {
    fuzz_type::<u64>("u64", 11, |r| r.next());
    fuzz_type::<i64>("i64", 12, |r| r.next() as i64);
    fuzz_type::<u32>("u32", 13, |r| r.next() as u32);
    fuzz_type::<i32>("i32", 14, |r| r.next() as i32);
    fuzz_type::<usize>("usize", 15, |r| r.next() as usize);
    fuzz_type::<bool>("bool", 16, |r| r.next() & 1 == 0);
    fuzz_type::<f64>("f64", 17, |r| r.f64());
    fuzz_type::<c64>("c64", 18, |r| c64::new(r.f64(), r.f64()));
}

#[test]
fn containers_decode_is_total() {
    fuzz_type::<String>("String", 21, gen_string);
    fuzz_type::<Vec<u64>>("Vec<u64>", 22, |r| {
        (0..r.below(9)).map(|_| r.next()).collect()
    });
    fuzz_type::<Vec<Vec<u64>>>("Vec<Vec<u64>>", 23, gen_ragged);
    fuzz_type::<Option<u64>>("Option<u64>", 24, |r| (r.next() & 1 == 0).then(|| r.next()));
    fuzz_type::<Result<u64, String>>("Result<u64,String>", 25, |r| {
        if r.next() & 1 == 0 {
            Ok(r.next())
        } else {
            Err(gen_string(r))
        }
    });
    fuzz_type::<(u64, String)>("(u64,String)", 26, |r| (r.next(), gen_string(r)));
    fuzz_type::<(bool, u32, f64)>("(bool,u32,f64)", 27, |r| {
        (r.next() & 1 == 0, r.next() as u32, r.f64())
    });
}

#[test]
fn linalg_decode_is_total() {
    fuzz_type::<Mat<f64>>("Mat<f64>", 31, gen_mat_f64);
    fuzz_type::<Mat<c64>>("Mat<c64>", 32, gen_mat_c64);
    fuzz_type::<Lu<f64>>("Lu<f64>", 33, gen_lu);
}

/// A length prefix claiming far more elements than the payload carries
/// must be rejected up front (`CodecError::Oversized`), not allocated.
#[test]
fn oversized_length_prefixes_are_rejected_before_allocation() {
    for claimed in [u64::MAX, u64::MAX / 8, 1 << 40] {
        let mut w = srsf_runtime::codec::ByteWriter::new();
        w.put_u64(claimed);
        let bytes = w.finish();
        assert!(matches!(
            Vec::<u64>::from_bytes(bytes.clone()),
            Err(CodecError::Oversized { .. })
        ));
        assert!(Vec::<Vec<u64>>::from_bytes(bytes.clone()).is_err());
        assert!(String::from_bytes(bytes).is_err());
    }
    // Matrix headers: each dimension is bounded on its own, so the
    // (huge, 0) product trick cannot smuggle a giant dimension through.
    let mut w = srsf_runtime::codec::ByteWriter::new();
    w.put_u64(u64::MAX);
    w.put_u64(0);
    assert!(Mat::<f64>::from_bytes(w.finish()).is_err());
}

// ---- round trips -------------------------------------------------------

#[test]
fn primitives_round_trip() {
    round_trip::<u64>("u64", 41, |r| r.next());
    round_trip::<i64>("i64", 42, |r| r.next() as i64);
    round_trip::<u32>("u32", 43, |r| r.next() as u32);
    round_trip::<i32>("i32", 44, |r| r.next() as i32);
    round_trip::<usize>("usize", 45, |r| r.next() as usize);
    round_trip::<bool>("bool", 46, |r| r.next() & 1 == 0);
}

#[test]
fn containers_round_trip_ragged() {
    round_trip::<String>("String", 51, gen_string);
    round_trip::<Vec<Vec<u64>>>("Vec<Vec<u64>>", 52, gen_ragged);
    round_trip::<Option<Vec<u64>>>("Option<Vec<u64>>", 53, |r| {
        (r.next() & 1 == 0).then(|| (0..r.below(5)).map(|_| r.next()).collect())
    });
    round_trip::<Result<u64, String>>("Result<u64,String>", 54, |r| {
        if r.next() & 1 == 0 {
            Ok(r.next())
        } else {
            Err(gen_string(r))
        }
    });
    round_trip::<(u64, String, Vec<u64>)>("(u64,String,Vec<u64>)", 55, |r| {
        (
            r.next(),
            gen_string(r),
            (0..r.below(5)).map(|_| r.next()).collect(),
        )
    });
}

#[test]
fn linalg_round_trip() {
    round_trip::<Mat<f64>>("Mat<f64>", 61, gen_mat_f64);
    round_trip::<Mat<c64>>("Mat<c64>", 62, gen_mat_c64);
}

#[test]
fn lu_round_trip() {
    let mut rng = Rng::new(63);
    for _ in 0..iters(128, 8) {
        let lu = gen_lu(&mut rng);
        let back = Lu::<f64>::from_bytes(lu.to_bytes()).expect("lu decode");
        assert_eq!(back.lu, lu.lu);
        assert_eq!(back.piv, lu.piv);
    }
}
