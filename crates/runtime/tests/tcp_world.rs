//! The TCP backend against real OS processes: results, counters and
//! failure diagnostics must match the in-process backend.
//!
//! Every test sets [`set_tcp_child_args`] to `[<test_name>, "--exact"]`
//! so a spawned worker re-runs exactly the one test that launched it
//! (the re-exec discipline documented on `srsf_runtime::transport`), and
//! every test runs its TCP session *before* any in-process comparison
//! run, so workers exit inside the TCP session instead of re-simulating
//! the comparisons.

use srsf_runtime::codec::{ByteReader, ByteWriter};
use srsf_runtime::world::RankCtx;
use srsf_runtime::{set_tcp_child_args, tags, Transport, World};
use std::time::Duration;

fn worker_args(test_name: &str) -> Option<Vec<String>> {
    Some(vec![test_name.to_string(), "--exact".to_string()])
}

fn ring(ctx: &mut RankCtx) -> u64 {
    let me = ctx.rank();
    let next = (me + 1) % ctx.size();
    let prev = (me + ctx.size() - 1) % ctx.size();
    let mut w = ByteWriter::new();
    w.put_u64(me as u64);
    ctx.send(next, 0, w.finish());
    let got = ByteReader::new(ctx.recv(prev, 0)).get_u64();
    ctx.barrier();
    got
}

#[test]
fn tcp_ring_pass_over_processes() {
    set_tcp_child_args(worker_args("tcp_ring_pass_over_processes"));
    let (tcp, tcp_stats) = World::new(4).transport(Transport::Tcp).run(ring);
    assert!(
        !srsf_runtime::is_spawned_worker(),
        "workers exit inside run()"
    );
    let (inproc, inproc_stats) = World::new(4).run(ring);
    assert_eq!(tcp, vec![3, 0, 1, 2]);
    assert_eq!(tcp, inproc);
    for rank in 0..4 {
        assert_eq!(
            (
                tcp_stats.per_rank[rank].msgs_sent,
                tcp_stats.per_rank[rank].words_sent
            ),
            (
                inproc_stats.per_rank[rank].msgs_sent,
                inproc_stats.per_rank[rank].words_sent
            ),
            "rank {rank} counters differ across backends"
        );
    }
}

/// A chattier pattern: interleaved tags (exercising out-of-order
/// buffering across the sockets), mid-protocol barriers, and payloads
/// big enough to span many TCP segments.
fn traffic(ctx: &mut RankCtx) -> u64 {
    let me = ctx.rank();
    let p = ctx.size();
    let t_a = tags::tag(2, 1, tags::KIND_PHASE_UPDATE);
    let t_b = tags::tag(2, 1, tags::KIND_SOLVE_VAL);
    // Everyone sends everyone two tagged messages, higher tag first.
    for dst in 0..p {
        if dst == me {
            continue;
        }
        let mut w = ByteWriter::new();
        for i in 0..4096u64 {
            w.put_u64(i.wrapping_mul(me as u64 + 1));
        }
        ctx.send(dst, t_b, w.finish());
        let mut w = ByteWriter::new();
        w.put_u64(me as u64);
        ctx.send(dst, t_a, w.finish());
    }
    ctx.barrier();
    let mut acc = 0u64;
    // Receive in the opposite tag order.
    for src in 0..p {
        if src == me {
            continue;
        }
        acc += ByteReader::new(ctx.recv(src, t_a)).get_u64();
        let mut r = ByteReader::new(ctx.recv(src, t_b));
        acc = acc.wrapping_add(r.get_u64());
        assert_eq!(r.remaining(), 4095 * 8);
    }
    ctx.barrier();
    acc
}

#[test]
fn tcp_counters_match_inproc_bit_for_bit() {
    set_tcp_child_args(worker_args("tcp_counters_match_inproc_bit_for_bit"));
    let (tcp, tcp_stats) = World::new(4).transport(Transport::Tcp).run(traffic);
    let (inproc, inproc_stats) = World::new(4).run(traffic);
    assert_eq!(tcp, inproc);
    assert_eq!(tcp_stats.total_msgs(), inproc_stats.total_msgs());
    assert_eq!(tcp_stats.total_words(), inproc_stats.total_words());
    for rank in 0..4 {
        let t = &tcp_stats.per_rank[rank];
        let i = &inproc_stats.per_rank[rank];
        assert_eq!(t.msgs_sent, i.msgs_sent, "rank {rank} msgs");
        assert_eq!(t.words_sent, i.words_sent, "rank {rank} words");
    }
    // 2 messages to each of 3 peers, per rank.
    assert_eq!(tcp_stats.per_rank[0].msgs_sent, 6);
}

#[test]
fn tcp_recv_timeout_names_the_waiting_step() {
    set_tcp_child_args(worker_args("tcp_recv_timeout_names_the_waiting_step"));
    let waited_tag = tags::tag(2, 1, tags::KIND_FOLD);
    let err = std::panic::catch_unwind(|| {
        World::new(2)
            .transport(Transport::Tcp)
            .with_recv_timeout(Duration::from_millis(400))
            .run(move |ctx| {
                if ctx.rank() == 0 {
                    // Never sent: rank 0 (the launching process) must run
                    // into the honored timeout...
                    let _ = ctx.recv(1, waited_tag);
                } else {
                    // ...while rank 1 deterministically outlives it (it
                    // is reaped by the launcher's unwind), so the failure
                    // is a timeout, not a lost link.
                    std::thread::sleep(Duration::from_secs(20));
                }
                0u64
            });
    })
    .unwrap_err();
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| "non-string panic".into());
    assert!(msg.contains("rank 0 timed out"), "{msg}");
    assert!(msg.contains("from rank 1"), "{msg}");
    assert!(msg.contains("level 2"), "{msg}");
    assert!(msg.contains("FOLD"), "{msg}");
}

#[test]
fn tcp_dead_peer_fails_fast_with_diagnostics() {
    set_tcp_child_args(worker_args("tcp_dead_peer_fails_fast_with_diagnostics"));
    let waited_tag = tags::tag(2, 1, tags::KIND_FOLD);
    let err = std::panic::catch_unwind(|| {
        World::new(2)
            .transport(Transport::Tcp)
            .with_recv_timeout(Duration::from_secs(60))
            .run(move |ctx| {
                if ctx.rank() == 0 {
                    // Rank 1 finishes and exits; the closed link must
                    // fail this receive immediately (not after 60 s),
                    // still naming the waiting step.
                    let _ = ctx.recv(1, waited_tag);
                }
                0u64
            });
    })
    .unwrap_err();
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| "non-string panic".into());
    assert!(msg.contains("rank 0 lost rank 1"), "{msg}");
    assert!(msg.contains("FOLD"), "{msg}");
}

#[test]
fn tcp_worker_panic_is_relayed_with_its_message() {
    set_tcp_child_args(worker_args("tcp_worker_panic_is_relayed_with_its_message"));
    let err = std::panic::catch_unwind(|| {
        World::new(2).transport(Transport::Tcp).run(|ctx| {
            if ctx.rank() == 1 {
                panic!("deliberate failure in the worker rank");
            }
            0u64
        });
    })
    .unwrap_err();
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| "non-string panic".into());
    assert!(msg.contains("rank 1 panicked"), "{msg}");
    assert!(
        msg.contains("deliberate failure in the worker rank"),
        "{msg}"
    );
}

#[test]
fn tcp_single_rank_world_is_degenerate() {
    set_tcp_child_args(worker_args("tcp_single_rank_world_is_degenerate"));
    // p = 1 exchanges no messages: nothing to spawn, nothing to count.
    let (results, stats) = World::new(1).transport(Transport::Tcp).run(|ctx| {
        let v = ctx.rank() + ctx.size();
        ctx.compute(move || v)
    });
    assert_eq!(results, vec![1]);
    assert_eq!(stats.total_msgs(), 0);
}

#[test]
fn tcp_sessions_in_sequence_reach_their_own_workers() {
    set_tcp_child_args(worker_args(
        "tcp_sessions_in_sequence_reach_their_own_workers",
    ));
    // Two TCP sessions from one thread: workers of the second session
    // must recompute the first in-process and join only the second.
    let (a, _) = World::new(2).transport(Transport::Tcp).run(ring);
    let (b, _) = World::new(4).transport(Transport::Tcp).run(ring);
    assert_eq!(a, vec![1, 0]);
    assert_eq!(b, vec![3, 0, 1, 2]);
}

#[test]
fn tcp_resident_session_serves_rounds_and_shuts_down_cleanly() {
    set_tcp_child_args(worker_args(
        "tcp_resident_session_serves_rounds_and_shuts_down_cleanly",
    ));
    // A resident session over real OS processes: the workers stay alive
    // between rounds (same processes, same sockets), echo commands back,
    // and exit on the tag-based shutdown — collected liveness-aware by
    // finish(). A worker must never be respawned between rounds: it
    // proves identity by echoing a counter it keeps in process memory.
    let p = 4;
    let (s0, mut handle) = World::new(p).transport(Transport::Tcp).run_resident(
        |ctx| ctx.rank() * 10,
        |ctx, seed| {
            let mut served = 0u64;
            while let Some(cmd) = ctx.recv_service_idle(0, tags::TAG_SERVE_CMD) {
                if cmd.is_empty() {
                    break;
                }
                served += 1;
                let mut w = ByteWriter::new();
                w.put_u64(seed as u64 + served);
                ctx.send_service(0, tags::TAG_SERVE_SOL, w.finish());
            }
        },
    );
    assert_eq!(s0, 0, "rank 0 keeps its factor output");
    assert!(!srsf_runtime::is_spawned_worker(), "workers exit in serve");
    for round in 1..=3u64 {
        for dst in 1..p {
            let mut w = ByteWriter::new();
            w.put_u64(round);
            handle
                .ctx()
                .send_service(dst, tags::TAG_SERVE_CMD, w.finish());
        }
        for src in 1..p {
            let reply = handle.ctx().recv(src, tags::TAG_SERVE_SOL);
            let v = ByteReader::new(reply).get_u64();
            // seed (10 * rank) + per-process served counter: only a
            // process that survived every earlier round reports this.
            assert_eq!(v, src as u64 * 10 + round, "round {round} from {src}");
        }
    }
    // Service frames are envelope traffic: no data messages were counted.
    assert_eq!(handle.ctx().stats().msgs_sent, 0);
    for dst in 1..p {
        assert!(handle.worker_live(dst), "rank {dst} died early");
        handle
            .ctx()
            .send_service(dst, tags::TAG_SERVE_CMD, Vec::new());
    }
    let stats = handle.finish();
    assert_eq!(stats.per_rank.len(), p);
}
