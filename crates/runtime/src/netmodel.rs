//! α–β (latency–bandwidth) network cost model.
//!
//! Used to reproduce Table VII of the paper ("1 process per compute node"):
//! the same algorithm and traffic, costed under shared-memory vs
//! network-interconnect parameters. The presets are representative of a
//! modern HPC system (Slingshot-class interconnect) and of intra-node
//! shared memory; absolute values are documented modeling constants, and
//! the experiments report both raw counters and modeled times.

/// Linear cost model: `time = alpha * messages + beta * words`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetworkModel {
    /// Per-message latency in seconds.
    pub alpha_s: f64,
    /// Per-word (8-byte) transfer time in seconds.
    pub beta_s_per_word: f64,
}

impl NetworkModel {
    /// Custom model.
    pub fn new(alpha_s: f64, beta_s_per_word: f64) -> Self {
        Self {
            alpha_s,
            beta_s_per_word,
        }
    }

    /// Ranks packed on one node: sub-microsecond latency, memory-bus-class
    /// bandwidth (~20 GB/s effective per pair).
    pub fn intra_node() -> Self {
        Self {
            alpha_s: 5e-7,
            beta_s_per_word: 4e-10,
        }
    }

    /// One rank per node over the interconnect: ~2 µs latency, ~10 GB/s
    /// effective point-to-point bandwidth.
    pub fn inter_node() -> Self {
        Self {
            alpha_s: 2e-6,
            beta_s_per_word: 8e-10,
        }
    }

    /// Cost of moving `words` 8-byte words in `msgs` messages.
    pub fn cost(&self, msgs: u64, words: u64) -> f64 {
        self.alpha_s * msgs as f64 + self.beta_s_per_word * words as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_is_linear() {
        let m = NetworkModel::new(1e-6, 1e-9);
        assert_eq!(m.cost(0, 0), 0.0);
        let one = m.cost(1, 1000);
        assert!((one - (1e-6 + 1e-6)).abs() < 1e-18);
        assert!((m.cost(2, 2000) - 2.0 * one).abs() < 1e-15);
    }

    #[test]
    fn inter_node_slower_than_intra() {
        let intra = NetworkModel::intra_node();
        let inter = NetworkModel::inter_node();
        assert!(inter.cost(10, 10_000) > intra.cost(10, 10_000));
        assert!(inter.alpha_s > intra.alpha_s);
    }
}
