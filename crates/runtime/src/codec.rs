//! Byte-level encoding of scalars, vectors and matrices for message
//! payloads.
//!
//! Messages between ranks carry only bytes (as they would over a real
//! interconnect); this module provides the little-endian wire format used
//! by the distributed factorization: `u64` sizes/ids, raw `f64` data, and
//! matrices as `(nrows, ncols, column-major data)`. Complex scalars encode
//! as interleaved `(re, im)` pairs.

use srsf_linalg::{Mat, Scalar};

/// A finished message payload (owned bytes).
///
/// Messages are built once, sent once, and consumed once, so a plain byte
/// vector is all the "zero-copy buffer" machinery this runtime needs.
pub type Bytes = Vec<u8>;

/// Append-only wire-format writer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// New empty writer.
    pub fn new() -> Self {
        Self { buf: Vec::new() }
    }

    /// Write an unsigned 64-bit integer.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a double.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a scalar (1 or 2 doubles).
    pub fn put_scalar<T: Scalar>(&mut self, v: T) {
        self.put_f64(v.re());
        if T::IS_COMPLEX {
            self.put_f64(v.im());
        }
    }

    /// Write a length-prefixed slice of `u64`.
    pub fn put_u64_slice(&mut self, v: &[u64]) {
        self.put_u64(v.len() as u64);
        for &x in v {
            self.put_u64(x);
        }
    }

    /// Write a length-prefixed scalar slice.
    pub fn put_scalar_slice<T: Scalar>(&mut self, v: &[T]) {
        self.put_u64(v.len() as u64);
        for &x in v {
            self.put_scalar(x);
        }
    }

    /// Write a matrix as `(nrows, ncols, column-major entries)`.
    pub fn put_mat<T: Scalar>(&mut self, m: &Mat<T>) {
        self.put_u64(m.nrows() as u64);
        self.put_u64(m.ncols() as u64);
        for &x in m.as_slice() {
            self.put_scalar(x);
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finish and freeze the payload.
    pub fn finish(self) -> Bytes {
        self.buf
    }
}

/// Sequential wire-format reader.
#[derive(Debug)]
pub struct ByteReader {
    buf: Bytes,
    pos: usize,
}

impl ByteReader {
    /// Wrap a payload.
    pub fn new(buf: Bytes) -> Self {
        Self { buf, pos: 0 }
    }

    fn take<const N: usize>(&mut self) -> [u8; N] {
        let out: [u8; N] = self
            .buf
            .get(self.pos..self.pos + N)
            .and_then(|s| s.try_into().ok())
            .expect("payload underrun");
        self.pos += N;
        out
    }

    /// Read an unsigned 64-bit integer.
    pub fn get_u64(&mut self) -> u64 {
        u64::from_le_bytes(self.take::<8>())
    }

    /// Read a double.
    pub fn get_f64(&mut self) -> f64 {
        f64::from_le_bytes(self.take::<8>())
    }

    /// Read a scalar.
    pub fn get_scalar<T: Scalar>(&mut self) -> T {
        let re = self.get_f64();
        let im = if T::IS_COMPLEX { self.get_f64() } else { 0.0 };
        T::from_re_im(re, im)
    }

    /// Read a length-prefixed `u64` slice.
    pub fn get_u64_slice(&mut self) -> Vec<u64> {
        let n = self.get_u64() as usize;
        (0..n).map(|_| self.get_u64()).collect()
    }

    /// Read a length-prefixed scalar slice.
    pub fn get_scalar_slice<T: Scalar>(&mut self) -> Vec<T> {
        let n = self.get_u64() as usize;
        (0..n).map(|_| self.get_scalar()).collect()
    }

    /// Read a matrix.
    pub fn get_mat<T: Scalar>(&mut self) -> Mat<T> {
        let nrows = self.get_u64() as usize;
        let ncols = self.get_u64() as usize;
        let data: Vec<T> = (0..nrows * ncols).map(|_| self.get_scalar()).collect();
        Mat::from_vec(nrows, ncols, data)
    }

    /// Remaining unread bytes.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srsf_linalg::c64;

    #[test]
    fn round_trip_primitives() {
        let mut w = ByteWriter::new();
        w.put_u64(42);
        w.put_f64(-1.5);
        w.put_u64_slice(&[1, 2, 3]);
        let mut r = ByteReader::new(w.finish());
        assert_eq!(r.get_u64(), 42);
        assert_eq!(r.get_f64(), -1.5);
        assert_eq!(r.get_u64_slice(), vec![1, 2, 3]);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn round_trip_real_matrix() {
        let m = Mat::from_fn(3, 2, |i, j| (i * 10 + j) as f64 - 5.0);
        let mut w = ByteWriter::new();
        w.put_mat(&m);
        let mut r = ByteReader::new(w.finish());
        let back: Mat<f64> = r.get_mat();
        assert_eq!(back, m);
    }

    #[test]
    fn round_trip_complex() {
        let m = Mat::from_fn(2, 4, |i, j| c64::new(i as f64, -(j as f64)));
        let v = vec![c64::new(1.0, 2.0), c64::new(-3.0, 0.5)];
        let mut w = ByteWriter::new();
        w.put_mat(&m);
        w.put_scalar_slice(&v);
        let mut r = ByteReader::new(w.finish());
        let back: Mat<c64> = r.get_mat();
        let backv: Vec<c64> = r.get_scalar_slice();
        assert_eq!(back, m);
        assert_eq!(backv, v);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn empty_matrix_round_trip() {
        let m: Mat<f64> = Mat::zeros(0, 5);
        let mut w = ByteWriter::new();
        w.put_mat(&m);
        let mut r = ByteReader::new(w.finish());
        let back: Mat<f64> = r.get_mat();
        assert_eq!(back.nrows(), 0);
        assert_eq!(back.ncols(), 5);
    }

    #[test]
    fn sizes_as_expected() {
        let mut w = ByteWriter::new();
        assert!(w.is_empty());
        w.put_scalar(1.0f64);
        assert_eq!(w.len(), 8);
        w.put_scalar(c64::ONE);
        assert_eq!(w.len(), 24);
    }
}
