//! Byte-level encoding of scalars, vectors and matrices for message
//! payloads.
//!
//! Messages between ranks carry only bytes (as they do over a real
//! interconnect); this module provides the little-endian wire format used
//! by the distributed factorization: `u64` sizes/ids, raw `f64` data, and
//! matrices as `(nrows, ncols, column-major data)`. Complex scalars encode
//! as interleaved `(re, im)` pairs.
//!
//! Two reading disciplines share one format:
//!
//! * the `try_get_*` methods are **bounds-checked** and return a
//!   [`CodecError`] instead of panicking — mandatory on any path that
//!   consumes bytes from another OS process (the TCP transport's
//!   handshake, result, and record frames), where a truncated or
//!   corrupted frame must surface as a diagnosable error, not a slice
//!   panic or an attacker-sized allocation;
//! * the plain `get_*` methods panic on malformed input and are reserved
//!   for same-binary protocol payloads, where a malformed frame is a
//!   protocol bug. They are thin `expect` wrappers over the `try_*`
//!   variants, so even the panic message names the offset and the missing
//!   byte count.
//!
//! The [`Wire`] trait builds on the reader/writer pair: any type that is
//! `Wire` can cross a process boundary as a tagged frame. The runtime
//! implements it for primitives, tuples, containers, matrices and
//! [`CommStats`](crate::stats::CommStats); `srsf-core` layers its
//! factorization records on top.

use srsf_linalg::{Mat, Scalar};

/// A finished message payload (owned bytes).
///
/// Messages are built once, sent once, and consumed once, so a plain byte
/// vector is all the "zero-copy buffer" machinery this runtime needs.
pub type Bytes = Vec<u8>;

/// A malformed payload detected by the bounds-checked readers.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodecError {
    /// The payload ended before a fixed-size read could complete.
    Truncated {
        /// Bytes the read needed.
        needed: usize,
        /// Bytes actually remaining.
        remaining: usize,
        /// Read offset at which the shortfall was detected.
        at: usize,
    },
    /// A length prefix claims more data than the payload can hold — the
    /// frame is rejected *before* any allocation is sized from it.
    Oversized {
        /// Element count the prefix claims.
        claimed: u64,
        /// Bytes remaining in the payload.
        remaining: usize,
        /// Read offset of the length prefix.
        at: usize,
    },
    /// A value decoded correctly but is not valid for the target type
    /// (unknown enum discriminant, non-UTF-8 string, …).
    Invalid {
        /// What was being decoded.
        what: &'static str,
        /// Read offset of the offending value.
        at: usize,
    },
}

impl core::fmt::Display for CodecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CodecError::Truncated {
                needed,
                remaining,
                at,
            } => write!(
                f,
                "truncated payload: needed {needed} bytes at offset {at}, only {remaining} remain"
            ),
            CodecError::Oversized {
                claimed,
                remaining,
                at,
            } => write!(
                f,
                "oversized length prefix at offset {at}: claims {claimed} elements but only \
                 {remaining} bytes remain"
            ),
            CodecError::Invalid { what, at } => {
                write!(f, "invalid {what} at offset {at}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Append-only wire-format writer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// New empty writer.
    pub fn new() -> Self {
        Self { buf: Vec::new() }
    }

    /// Write an unsigned 64-bit integer.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a double.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a scalar (1 or 2 doubles).
    pub fn put_scalar<T: Scalar>(&mut self, v: T) {
        self.put_f64(v.re());
        if T::IS_COMPLEX {
            self.put_f64(v.im());
        }
    }

    /// Write a length-prefixed run of raw bytes.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Write a length-prefixed slice of `u64`.
    pub fn put_u64_slice(&mut self, v: &[u64]) {
        self.put_u64(v.len() as u64);
        for &x in v {
            self.put_u64(x);
        }
    }

    /// Write a length-prefixed scalar slice.
    pub fn put_scalar_slice<T: Scalar>(&mut self, v: &[T]) {
        self.put_u64(v.len() as u64);
        for &x in v {
            self.put_scalar(x);
        }
    }

    /// Write a matrix as `(nrows, ncols, column-major entries)`.
    pub fn put_mat<T: Scalar>(&mut self, m: &Mat<T>) {
        self.put_u64(m.nrows() as u64);
        self.put_u64(m.ncols() as u64);
        for &x in m.as_slice() {
            self.put_scalar(x);
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finish and freeze the payload.
    pub fn finish(self) -> Bytes {
        self.buf
    }
}

/// Sequential wire-format reader.
#[derive(Debug)]
pub struct ByteReader {
    buf: Bytes,
    pos: usize,
}

impl ByteReader {
    /// Wrap a payload.
    pub fn new(buf: Bytes) -> Self {
        Self { buf, pos: 0 }
    }

    fn try_take<const N: usize>(&mut self) -> Result<[u8; N], CodecError> {
        let out: [u8; N] = self
            .buf
            .get(self.pos..self.pos + N)
            .and_then(|s| s.try_into().ok())
            .ok_or(CodecError::Truncated {
                needed: N,
                remaining: self.remaining(),
                at: self.pos,
            })?;
        self.pos += N;
        Ok(out)
    }

    /// Reject a length prefix that claims more elements than the
    /// remaining bytes can encode (each element occupies at least
    /// `elem_bytes`), *before* any allocation is sized from it.
    fn check_len(&self, claimed: u64, elem_bytes: usize) -> Result<usize, CodecError> {
        let fits = claimed
            .checked_mul(elem_bytes as u64)
            .is_some_and(|total| total <= self.remaining() as u64);
        if !fits {
            return Err(CodecError::Oversized {
                claimed,
                remaining: self.remaining(),
                at: self.pos.saturating_sub(8),
            });
        }
        Ok(claimed as usize)
    }

    /// Bounds-checked read of an unsigned 64-bit integer.
    pub fn try_get_u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.try_take::<8>()?))
    }

    /// Bounds-checked read of a double.
    pub fn try_get_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_le_bytes(self.try_take::<8>()?))
    }

    /// Bounds-checked read of a scalar.
    pub fn try_get_scalar<T: Scalar>(&mut self) -> Result<T, CodecError> {
        let re = self.try_get_f64()?;
        let im = if T::IS_COMPLEX {
            self.try_get_f64()?
        } else {
            0.0
        };
        Ok(T::from_re_im(re, im))
    }

    /// Bounds-checked read of a length-prefixed run of raw bytes.
    pub fn try_get_bytes(&mut self) -> Result<Vec<u8>, CodecError> {
        let claimed = self.try_get_u64()?;
        let n = self.check_len(claimed, 1)?;
        let out = self.buf[self.pos..self.pos + n].to_vec();
        self.pos += n;
        Ok(out)
    }

    /// Bounds-checked read of a length-prefixed `u64` slice.
    pub fn try_get_u64_slice(&mut self) -> Result<Vec<u64>, CodecError> {
        let claimed = self.try_get_u64()?;
        let n = self.check_len(claimed, 8)?;
        (0..n).map(|_| self.try_get_u64()).collect()
    }

    /// Bounds-checked read of a length-prefixed scalar slice.
    pub fn try_get_scalar_slice<T: Scalar>(&mut self) -> Result<Vec<T>, CodecError> {
        let claimed = self.try_get_u64()?;
        let n = self.check_len(claimed, scalar_bytes::<T>())?;
        (0..n).map(|_| self.try_get_scalar()).collect()
    }

    /// Bounds-checked read of a matrix. The claimed dimensions are
    /// validated against the remaining payload before the backing buffer
    /// is allocated, so a corrupted header cannot trigger an
    /// attacker-sized allocation.
    pub fn try_get_mat<T: Scalar>(&mut self) -> Result<Mat<T>, CodecError> {
        let at = self.pos;
        let nrows = self.try_get_u64()?;
        let ncols = self.try_get_u64()?;
        // Bound each dimension on its own (ids in this codebase are u32,
        // so no real matrix exceeds this): otherwise a corrupt header
        // like (u64::MAX, 0) would pass the product check with 0 payload
        // bytes and hand downstream code a matrix claiming ~1.8e19 rows.
        if nrows > u32::MAX as u64 || ncols > u32::MAX as u64 {
            return Err(CodecError::Invalid {
                what: "matrix dimension",
                at,
            });
        }
        let total = nrows * ncols;
        let n = self.check_len(total, scalar_bytes::<T>())?;
        let data: Result<Vec<T>, CodecError> = (0..n).map(|_| self.try_get_scalar()).collect();
        Ok(Mat::from_vec(nrows as usize, ncols as usize, data?))
    }

    /// Read an unsigned 64-bit integer.
    ///
    /// # Panics
    ///
    /// Panics on a truncated payload; use [`ByteReader::try_get_u64`] for
    /// untrusted bytes.
    pub fn get_u64(&mut self) -> u64 {
        // INVARIANT: deliberate — this is the documented panicking variant;
        // untrusted bytes go through try_get_u64
        self.try_get_u64().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Read a double (panicking; see [`ByteReader::try_get_f64`]).
    pub fn get_f64(&mut self) -> f64 {
        // INVARIANT: deliberate — documented panicking variant of try_get_f64
        self.try_get_f64().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Read a scalar (panicking; see [`ByteReader::try_get_scalar`]).
    pub fn get_scalar<T: Scalar>(&mut self) -> T {
        // INVARIANT: deliberate — documented panicking variant of try_get_scalar
        self.try_get_scalar().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Read a length-prefixed `u64` slice (panicking; see
    /// [`ByteReader::try_get_u64_slice`]).
    pub fn get_u64_slice(&mut self) -> Vec<u64> {
        // INVARIANT: deliberate — documented panicking variant of try_get_u64_slice
        self.try_get_u64_slice().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Read a length-prefixed scalar slice (panicking; see
    /// [`ByteReader::try_get_scalar_slice`]).
    pub fn get_scalar_slice<T: Scalar>(&mut self) -> Vec<T> {
        self.try_get_scalar_slice()
            // INVARIANT: deliberate — documented panicking variant of
            // try_get_scalar_slice
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Read a matrix (panicking; see [`ByteReader::try_get_mat`]).
    pub fn get_mat<T: Scalar>(&mut self) -> Mat<T> {
        // INVARIANT: deliberate — documented panicking variant of try_get_mat
        self.try_get_mat().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Remaining unread bytes.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current read offset.
    pub fn position(&self) -> usize {
        self.pos
    }
}

/// Encoded size of one scalar.
fn scalar_bytes<T: Scalar>() -> usize {
    if T::IS_COMPLEX {
        16
    } else {
        8
    }
}

/// A type that can cross a process boundary as message bytes.
///
/// Implemented by everything the transport layer ships that is richer
/// than a raw payload: rank results returned from spawned worker
/// processes, communication counters, and (in `srsf-core`) the
/// factorization records. `decode` is total — it must return a
/// [`CodecError`] rather than panic on malformed bytes, because worker
/// frames cross a real process boundary.
pub trait Wire: Sized {
    /// Append this value to a payload.
    fn encode(&self, w: &mut ByteWriter);

    /// Read a value back; errors on truncated or corrupted bytes.
    fn decode(r: &mut ByteReader) -> Result<Self, CodecError>;

    /// Encode into a fresh payload.
    fn to_bytes(&self) -> Bytes {
        let mut w = ByteWriter::new();
        self.encode(&mut w);
        w.finish()
    }

    /// Decode from a full payload (trailing bytes are not an error; the
    /// caller owns framing).
    fn from_bytes(bytes: Bytes) -> Result<Self, CodecError> {
        Self::decode(&mut ByteReader::new(bytes))
    }
}

impl Wire for () {
    fn encode(&self, _w: &mut ByteWriter) {}
    fn decode(_r: &mut ByteReader) -> Result<Self, CodecError> {
        Ok(())
    }
}

macro_rules! wire_as_u64 {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            fn encode(&self, w: &mut ByteWriter) {
                w.put_u64(*self as u64);
            }
            fn decode(r: &mut ByteReader) -> Result<Self, CodecError> {
                Ok(r.try_get_u64()? as $t)
            }
        }
    )*};
}
// u64 is the identity; i64 is a lossless 64-bit reinterpret.
wire_as_u64!(u64, i64);

macro_rules! wire_narrowing {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            fn encode(&self, w: &mut ByteWriter) {
                // Sign-extends the signed types, so the round trip is
                // exact and out-of-range slots are detectable on decode.
                w.put_u64(*self as i64 as u64)
            }
            fn decode(r: &mut ByteReader) -> Result<Self, CodecError> {
                let at = r.position();
                let v = r.try_get_u64()?;
                // Accept either the unsigned value or the sign-extended
                // form; anything else is a corrupt slot, not a value to
                // silently truncate.
                <$t>::try_from(v)
                    .or_else(|_| <$t>::try_from(v as i64))
                    .map_err(|_| CodecError::Invalid {
                        what: concat!("out-of-range ", stringify!($t)),
                        at,
                    })
            }
        }
    )*};
}
// usize is only a lossless reinterpret on 64-bit hosts; the checked
// decode keeps a 32-bit target from silently truncating a 64-bit slot.
wire_narrowing!(u32, i32, usize);

impl Wire for bool {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(u64::from(*self));
    }
    fn decode(r: &mut ByteReader) -> Result<Self, CodecError> {
        let at = r.position();
        match r.try_get_u64()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Invalid { what: "bool", at }),
        }
    }
}

impl Wire for f64 {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_f64(*self);
    }
    fn decode(r: &mut ByteReader) -> Result<Self, CodecError> {
        r.try_get_f64()
    }
}

impl Wire for srsf_linalg::c64 {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_scalar(*self);
    }
    fn decode(r: &mut ByteReader) -> Result<Self, CodecError> {
        r.try_get_scalar()
    }
}

impl Wire for String {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_bytes(self.as_bytes());
    }
    fn decode(r: &mut ByteReader) -> Result<Self, CodecError> {
        let at = r.position();
        String::from_utf8(r.try_get_bytes()?).map_err(|_| CodecError::Invalid {
            what: "utf-8 string",
            at,
        })
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(self.len() as u64);
        for x in self {
            x.encode(w);
        }
    }
    fn decode(r: &mut ByteReader) -> Result<Self, CodecError> {
        // Every wire element occupies at least one byte in practice (the
        // one zero-byte type, `()`, is never shipped in a Vec), so the
        // length prefix is bounded by the remaining payload.
        let claimed = r.try_get_u64()?;
        let n = r.check_len(claimed, 1)?;
        let mut out = Vec::new();
        for _ in 0..n {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            None => w.put_u64(0),
            Some(x) => {
                w.put_u64(1);
                x.encode(w);
            }
        }
    }
    fn decode(r: &mut ByteReader) -> Result<Self, CodecError> {
        let at = r.position();
        match r.try_get_u64()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            _ => Err(CodecError::Invalid {
                what: "option discriminant",
                at,
            }),
        }
    }
}

impl<T: Wire, E: Wire> Wire for Result<T, E> {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            Ok(x) => {
                w.put_u64(0);
                x.encode(w);
            }
            Err(e) => {
                w.put_u64(1);
                e.encode(w);
            }
        }
    }
    fn decode(r: &mut ByteReader) -> Result<Self, CodecError> {
        let at = r.position();
        match r.try_get_u64()? {
            0 => Ok(Ok(T::decode(r)?)),
            1 => Ok(Err(E::decode(r)?)),
            _ => Err(CodecError::Invalid {
                what: "result discriminant",
                at,
            }),
        }
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, w: &mut ByteWriter) {
        self.0.encode(w);
        self.1.encode(w);
    }
    fn decode(r: &mut ByteReader) -> Result<Self, CodecError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn encode(&self, w: &mut ByteWriter) {
        self.0.encode(w);
        self.1.encode(w);
        self.2.encode(w);
    }
    fn decode(r: &mut ByteReader) -> Result<Self, CodecError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

impl<A: Wire, B: Wire, C: Wire, D: Wire> Wire for (A, B, C, D) {
    fn encode(&self, w: &mut ByteWriter) {
        self.0.encode(w);
        self.1.encode(w);
        self.2.encode(w);
        self.3.encode(w);
    }
    fn decode(r: &mut ByteReader) -> Result<Self, CodecError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?, D::decode(r)?))
    }
}

impl<T: Scalar> Wire for Mat<T> {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_mat(self);
    }
    fn decode(r: &mut ByteReader) -> Result<Self, CodecError> {
        r.try_get_mat()
    }
}

impl<T: Scalar> Wire for srsf_linalg::Lu<T> {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_mat(&self.lu);
        w.put_u64_slice(&self.piv.iter().map(|&v| v as u64).collect::<Vec<_>>());
    }
    fn decode(r: &mut ByteReader) -> Result<Self, CodecError> {
        let lu = r.try_get_mat()?;
        let piv = r
            .try_get_u64_slice()?
            .into_iter()
            .map(|v| v as usize)
            .collect();
        Ok(srsf_linalg::Lu { lu, piv })
    }
}

/// CRC-64/ECMA-182 (polynomial `0x42F0E1EBA9EA3693`, bit-reflected form
/// `0xC96C5795D7870F42`, init/xorout `!0`) over a byte slice.
///
/// Used by the checkpoint container in `srsf-core` to validate on-disk
/// snapshots *before* any `Wire` decode allocates: a truncated or
/// bit-flipped file is rejected from its header and checksum alone.
pub fn crc64(bytes: &[u8]) -> u64 {
    const POLY: u64 = 0xC96C_5795_D787_0F42;
    // Byte-at-a-time table, built on the fly: checkpoint I/O is rare and
    // file-sized, so a lazily recomputed 2 KiB table beats a static one
    // for code simplicity at no measurable cost.
    let mut table = [0u64; 256];
    for (i, slot) in table.iter_mut().enumerate() {
        let mut crc = i as u64;
        for _ in 0..8 {
            crc = if crc & 1 == 1 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
        }
        *slot = crc;
    }
    let mut crc = !0u64;
    for &b in bytes {
        crc = (crc >> 8) ^ table[((crc ^ b as u64) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;
    use srsf_linalg::c64;

    #[test]
    fn round_trip_primitives() {
        let mut w = ByteWriter::new();
        w.put_u64(42);
        w.put_f64(-1.5);
        w.put_u64_slice(&[1, 2, 3]);
        let mut r = ByteReader::new(w.finish());
        assert_eq!(r.get_u64(), 42);
        assert_eq!(r.get_f64(), -1.5);
        assert_eq!(r.get_u64_slice(), vec![1, 2, 3]);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn round_trip_real_matrix() {
        let m = Mat::from_fn(3, 2, |i, j| (i * 10 + j) as f64 - 5.0);
        let mut w = ByteWriter::new();
        w.put_mat(&m);
        let mut r = ByteReader::new(w.finish());
        let back: Mat<f64> = r.get_mat();
        assert_eq!(back, m);
    }

    #[test]
    fn round_trip_complex() {
        let m = Mat::from_fn(2, 4, |i, j| c64::new(i as f64, -(j as f64)));
        let v = vec![c64::new(1.0, 2.0), c64::new(-3.0, 0.5)];
        let mut w = ByteWriter::new();
        w.put_mat(&m);
        w.put_scalar_slice(&v);
        let mut r = ByteReader::new(w.finish());
        let back: Mat<c64> = r.get_mat();
        let backv: Vec<c64> = r.get_scalar_slice();
        assert_eq!(back, m);
        assert_eq!(backv, v);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn empty_matrix_round_trip() {
        let m: Mat<f64> = Mat::zeros(0, 5);
        let mut w = ByteWriter::new();
        w.put_mat(&m);
        let mut r = ByteReader::new(w.finish());
        let back: Mat<f64> = r.get_mat();
        assert_eq!(back.nrows(), 0);
        assert_eq!(back.ncols(), 5);
    }

    #[test]
    fn sizes_as_expected() {
        let mut w = ByteWriter::new();
        assert!(w.is_empty());
        w.put_scalar(1.0f64);
        assert_eq!(w.len(), 8);
        w.put_scalar(c64::ONE);
        assert_eq!(w.len(), 24);
    }

    #[test]
    fn truncated_u64_is_an_error_not_a_panic() {
        let mut r = ByteReader::new(vec![1, 2, 3]);
        match r.try_get_u64() {
            Err(CodecError::Truncated {
                needed: 8,
                remaining: 3,
                at: 0,
            }) => {}
            other => panic!("unexpected: {other:?}"),
        }
        // The reader did not advance past the corrupt read.
        assert_eq!(r.remaining(), 3);
    }

    #[test]
    fn truncated_slice_payload_detected() {
        let mut w = ByteWriter::new();
        w.put_u64_slice(&[10, 20, 30]);
        let mut bytes = w.finish();
        bytes.truncate(20); // claims 3 elements, holds ~1.5
        let mut r = ByteReader::new(bytes);
        assert!(matches!(
            r.try_get_u64_slice(),
            Err(CodecError::Oversized { claimed: 3, .. })
        ));
    }

    #[test]
    fn garbage_length_prefix_rejected_before_allocation() {
        // A frame claiming u64::MAX elements must be rejected up front
        // rather than attempting an attacker-sized allocation.
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX);
        w.put_u64(7);
        let mut r = ByteReader::new(w.finish());
        assert!(matches!(
            r.try_get_u64_slice(),
            Err(CodecError::Oversized {
                claimed: u64::MAX,
                ..
            })
        ));
    }

    #[test]
    fn garbage_matrix_header_rejected() {
        // Claimed dims beyond any real matrix (ids are u32).
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX / 2);
        w.put_u64(u64::MAX / 2);
        let mut r = ByteReader::new(w.finish());
        assert!(matches!(
            r.try_get_mat::<f64>(),
            Err(CodecError::Invalid { .. })
        ));
        // Claimed dims that fit in u64 but not in the payload.
        let mut w = ByteWriter::new();
        w.put_u64(1 << 20);
        w.put_u64(1 << 20);
        w.put_f64(1.0);
        let mut r = ByteReader::new(w.finish());
        assert!(matches!(
            r.try_get_mat::<f64>(),
            Err(CodecError::Oversized { .. })
        ));
    }

    #[test]
    fn zero_dim_matrix_header_with_absurd_other_dim_rejected() {
        // (u64::MAX, 0) passes a product-only check with 0 payload bytes;
        // each dimension must be bounded on its own.
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX);
        w.put_u64(0);
        let mut r = ByteReader::new(w.finish());
        assert!(matches!(
            r.try_get_mat::<f64>(),
            Err(CodecError::Invalid { .. })
        ));
        // Legitimate empty matrices still decode.
        let m: Mat<f64> = Mat::zeros(0, 5);
        let mut w = ByteWriter::new();
        w.put_mat(&m);
        assert_eq!(ByteReader::new(w.finish()).try_get_mat::<f64>().unwrap(), m);
    }

    #[test]
    fn narrowing_wire_types_reject_out_of_range_slots() {
        // A slot holding 2^32 + 5 is corruption, not the u32 value 5.
        let mut w = ByteWriter::new();
        w.put_u64((1u64 << 32) + 5);
        assert!(matches!(
            u32::from_bytes(w.finish()),
            Err(CodecError::Invalid { .. })
        ));
        let mut w = ByteWriter::new();
        w.put_u64((1u64 << 32) + 5);
        assert!(i32::from_bytes(w.finish()).is_err());
        // Signed round trips are exact, including negatives.
        for v in [i32::MIN, -1, 0, 7, i32::MAX] {
            assert_eq!(i32::from_bytes(v.to_bytes()).unwrap(), v);
        }
        for v in [0u32, 1, u32::MAX] {
            assert_eq!(u32::from_bytes(v.to_bytes()).unwrap(), v);
        }
    }

    #[test]
    fn string_wire_is_raw_bytes_not_words() {
        let s = "hello, ranks".to_string();
        let bytes = s.to_bytes();
        // length prefix + raw utf-8, not one u64 per byte
        assert_eq!(bytes.len(), 8 + s.len());
        assert_eq!(String::from_bytes(bytes).unwrap(), s);
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX); // garbage length
        assert!(String::from_bytes(w.finish()).is_err());
    }

    #[test]
    fn truncated_matrix_round_trip_fails_cleanly() {
        let m = Mat::from_fn(4, 4, |i, j| (i + j) as f64);
        let mut w = ByteWriter::new();
        w.put_mat(&m);
        let full = w.finish();
        for cut in [0, 7, 8, 15, 16, 40, full.len() - 1] {
            let mut bytes = full.clone();
            bytes.truncate(cut);
            let mut r = ByteReader::new(bytes);
            assert!(
                r.try_get_mat::<f64>().is_err(),
                "cut at {cut} must not decode"
            );
        }
        let mut r = ByteReader::new(full);
        assert_eq!(r.try_get_mat::<f64>().unwrap(), m);
    }

    #[test]
    #[should_panic(expected = "truncated payload")]
    fn panicking_reader_names_the_shortfall() {
        let mut r = ByteReader::new(vec![0; 4]);
        let _ = r.get_u64();
    }

    #[test]
    fn wire_round_trip_containers() {
        let v: Vec<Option<(u64, f64)>> = vec![Some((1, 2.5)), None, Some((3, -0.5))];
        let mut w = ByteWriter::new();
        v.encode(&mut w);
        let mut r = ByteReader::new(w.finish());
        assert_eq!(Vec::<Option<(u64, f64)>>::decode(&mut r).unwrap(), v);
        assert_eq!(r.remaining(), 0);

        let res: Result<String, u32> = Ok("hello".to_string());
        let bytes = res.to_bytes();
        assert_eq!(Result::<String, u32>::from_bytes(bytes).unwrap(), res);

        let res: Result<String, u32> = Err(404);
        let bytes = res.to_bytes();
        assert_eq!(Result::<String, u32>::from_bytes(bytes).unwrap(), res);
    }

    #[test]
    fn wire_round_trip_linalg() {
        let m = Mat::from_fn(3, 5, |i, j| c64::new(i as f64, j as f64));
        let mut r = ByteReader::new(m.to_bytes());
        assert_eq!(Mat::<c64>::decode(&mut r).unwrap(), m);

        let lu = srsf_linalg::Lu {
            lu: Mat::from_fn(2, 2, |i, j| (i * 2 + j) as f64),
            piv: vec![1, 0],
        };
        let mut r = ByteReader::new(lu.to_bytes());
        let back = srsf_linalg::Lu::<f64>::decode(&mut r).unwrap();
        assert_eq!(back.lu, lu.lu);
        assert_eq!(back.piv, lu.piv);
    }

    #[test]
    fn wire_decode_rejects_bad_discriminants() {
        let mut w = ByteWriter::new();
        w.put_u64(7);
        assert!(matches!(
            Option::<u64>::from_bytes(w.finish()),
            Err(CodecError::Invalid { .. })
        ));
        let mut w = ByteWriter::new();
        w.put_u64(2);
        assert!(matches!(
            Result::<u64, u64>::from_bytes(w.finish()),
            Err(CodecError::Invalid { .. })
        ));
    }

    #[test]
    fn wire_vec_garbage_length_rejected() {
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX);
        assert!(Vec::<u64>::from_bytes(w.finish()).is_err());
    }

    #[test]
    fn crc64_known_answer_and_sensitivity() {
        // CRC-64/XZ (reflected ECMA-182) check value for "123456789".
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
        assert_eq!(crc64(b""), 0);
        let mut data = vec![0u8; 1024];
        data[500] = 7;
        let clean = crc64(&data);
        data[500] = 6;
        assert_ne!(crc64(&data), clean);
    }
}
