//! Per-rank communication and compute accounting.
//!
//! Section IV of the paper analyzes the parallel algorithm in terms of the
//! number of messages and the number of words moved per process. The
//! runtime records exactly those quantities, so the bounds
//! `msgs = O(log N + log p)` and `words = O(sqrt(N/p) + log p)` (Eq. 13)
//! can be measured rather than assumed.

use crate::codec::{ByteReader, ByteWriter, CodecError, Wire};
use crate::netmodel::NetworkModel;

/// Counters for one rank.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CommStats {
    /// Point-to-point messages sent.
    pub msgs_sent: u64,
    /// 8-byte words sent (payload volume).
    pub words_sent: u64,
    /// Seconds spent in local computation (explicitly timed sections).
    pub compute_s: f64,
    /// Seconds spent blocked in `recv` / barriers.
    pub wait_s: f64,
}

impl CommStats {
    /// Accumulate another rank-phase into this one.
    pub fn merge(&mut self, other: &CommStats) {
        self.msgs_sent += other.msgs_sent;
        self.words_sent += other.words_sent;
        self.compute_s += other.compute_s;
        self.wait_s += other.wait_s;
    }

    /// Modeled network time for this rank's traffic under `model`.
    pub fn modeled_comm_s(&self, model: &NetworkModel) -> f64 {
        model.cost(self.msgs_sent, self.words_sent)
    }
}

impl Wire for CommStats {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(self.msgs_sent);
        w.put_u64(self.words_sent);
        w.put_f64(self.compute_s);
        w.put_f64(self.wait_s);
    }
    fn decode(r: &mut ByteReader) -> Result<Self, CodecError> {
        Ok(Self {
            msgs_sent: r.try_get_u64()?,
            words_sent: r.try_get_u64()?,
            compute_s: r.try_get_f64()?,
            wait_s: r.try_get_f64()?,
        })
    }
}

/// Counters for a whole world (one entry per rank).
#[derive(Clone, Debug, Default)]
pub struct WorldStats {
    /// Per-rank statistics, indexed by rank.
    pub per_rank: Vec<CommStats>,
}

impl WorldStats {
    /// Largest message count over ranks (the bound in §IV is per process).
    pub fn max_msgs(&self) -> u64 {
        self.per_rank.iter().map(|r| r.msgs_sent).max().unwrap_or(0)
    }

    /// Largest word count over ranks.
    pub fn max_words(&self) -> u64 {
        self.per_rank
            .iter()
            .map(|r| r.words_sent)
            .max()
            .unwrap_or(0)
    }

    /// Total messages across ranks.
    pub fn total_msgs(&self) -> u64 {
        self.per_rank.iter().map(|r| r.msgs_sent).sum()
    }

    /// Total words across ranks.
    pub fn total_words(&self) -> u64 {
        self.per_rank.iter().map(|r| r.words_sent).sum()
    }

    /// Critical-path estimate: the slowest rank's compute time plus its
    /// modeled network time. This is the "parallel time" reported by the
    /// scaling harnesses on hosts with fewer cores than simulated ranks
    /// (see DESIGN.md §5).
    pub fn critical_path_s(&self, model: &NetworkModel) -> f64 {
        self.per_rank
            .iter()
            .map(|r| r.compute_s + r.modeled_comm_s(model))
            .fold(0.0, f64::max)
    }

    /// Largest per-rank compute time (the `tcomp` column of the tables).
    pub fn max_compute_s(&self) -> f64 {
        self.per_rank
            .iter()
            .map(|r| r.compute_s)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = CommStats {
            msgs_sent: 2,
            words_sent: 100,
            compute_s: 1.0,
            wait_s: 0.5,
        };
        let b = CommStats {
            msgs_sent: 3,
            words_sent: 50,
            compute_s: 0.25,
            wait_s: 0.25,
        };
        a.merge(&b);
        assert_eq!(a.msgs_sent, 5);
        assert_eq!(a.words_sent, 150);
        assert!((a.compute_s - 1.25).abs() < 1e-15);
    }

    #[test]
    fn world_aggregates() {
        let w = WorldStats {
            per_rank: vec![
                CommStats {
                    msgs_sent: 5,
                    words_sent: 10,
                    compute_s: 2.0,
                    wait_s: 0.0,
                },
                CommStats {
                    msgs_sent: 7,
                    words_sent: 4,
                    compute_s: 1.0,
                    wait_s: 0.0,
                },
            ],
        };
        assert_eq!(w.max_msgs(), 7);
        assert_eq!(w.max_words(), 10);
        assert_eq!(w.total_msgs(), 12);
        assert_eq!(w.total_words(), 14);
        assert_eq!(w.max_compute_s(), 2.0);
        let model = NetworkModel::new(1.0, 0.1);
        // rank0: 2.0 + 5 + 1.0 = 8; rank1: 1.0 + 7 + 0.4 = 8.4
        assert!((w.critical_path_s(&model) - 8.4).abs() < 1e-12);
    }

    #[test]
    fn empty_world() {
        let w = WorldStats::default();
        assert_eq!(w.max_msgs(), 0);
        assert_eq!(w.critical_path_s(&NetworkModel::intra_node()), 0.0);
    }
}
