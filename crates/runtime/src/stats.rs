//! Per-rank communication and compute accounting.
//!
//! Section IV of the paper analyzes the parallel algorithm in terms of the
//! number of messages and the number of words moved per process. The
//! runtime records exactly those quantities, so the bounds
//! `msgs = O(log N + log p)` and `words = O(sqrt(N/p) + log p)` (Eq. 13)
//! can be measured rather than assumed.

use crate::codec::{ByteReader, ByteWriter, CodecError, Wire};
use crate::netmodel::NetworkModel;
use srsf_trace::metrics::HIST_BUCKETS;
use srsf_trace::{Histogram, Span, TraceReport};

/// Counters for one rank.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CommStats {
    /// Point-to-point messages sent.
    pub msgs_sent: u64,
    /// 8-byte words sent (payload volume).
    pub words_sent: u64,
    /// Seconds spent in local computation (explicitly timed sections).
    pub compute_s: f64,
    /// Seconds spent blocked in `recv` / barriers.
    pub wait_s: f64,
}

impl CommStats {
    /// Accumulate another rank-phase into this one.
    pub fn merge(&mut self, other: &CommStats) {
        self.msgs_sent += other.msgs_sent;
        self.words_sent += other.words_sent;
        self.compute_s += other.compute_s;
        self.wait_s += other.wait_s;
    }

    /// Modeled network time for this rank's traffic under `model`.
    pub fn modeled_comm_s(&self, model: &NetworkModel) -> f64 {
        model.cost(self.msgs_sent, self.words_sent)
    }
}

impl Wire for CommStats {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(self.msgs_sent);
        w.put_u64(self.words_sent);
        w.put_f64(self.compute_s);
        w.put_f64(self.wait_s);
    }
    fn decode(r: &mut ByteReader) -> Result<Self, CodecError> {
        Ok(Self {
            msgs_sent: r.try_get_u64()?,
            words_sent: r.try_get_u64()?,
            compute_s: r.try_get_f64()?,
            wait_s: r.try_get_f64()?,
        })
    }
}

// The trace types live in zero-dep `srsf-trace`; their wire encodings
// live here because this crate owns the `Wire` trait. Reports cross a
// real process boundary (TCP worker result frames, `TAG_SERVE_TRACE`
// replies), so every decode is total: truncated or corrupted bytes are
// a [`CodecError`], never a panic — fuzzed in `srsf-core`'s
// `wire_fuzz` suite alongside the factorization frames.

impl Wire for Span {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(self.cat as u64);
        self.name.encode(w);
        w.put_u64(self.tid as u64);
        w.put_u64(self.start_ns);
        w.put_u64(self.dur_ns);
        w.put_u64(self.bytes);
    }
    fn decode(r: &mut ByteReader) -> Result<Self, CodecError> {
        let at = r.position();
        let cat = u8::try_from(r.try_get_u64()?).map_err(|_| CodecError::Invalid {
            what: "span category",
            at,
        })?;
        let name = String::decode(r)?;
        let at = r.position();
        let tid = u32::try_from(r.try_get_u64()?).map_err(|_| CodecError::Invalid {
            what: "span tid",
            at,
        })?;
        Ok(Span {
            cat,
            name,
            tid,
            start_ns: r.try_get_u64()?,
            dur_ns: r.try_get_u64()?,
            bytes: r.try_get_u64()?,
        })
    }
}

impl Wire for TraceReport {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(self.rank as u64);
        w.put_u64(self.dropped);
        self.spans.encode(w);
    }
    fn decode(r: &mut ByteReader) -> Result<Self, CodecError> {
        let at = r.position();
        let rank = u32::try_from(r.try_get_u64()?).map_err(|_| CodecError::Invalid {
            what: "trace report rank",
            at,
        })?;
        Ok(TraceReport {
            rank,
            dropped: r.try_get_u64()?,
            spans: Vec::<Span>::decode(r)?,
        })
    }
}

impl Wire for Histogram {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u64_slice(&self.counts);
        w.put_u64(self.count);
        w.put_u64(self.sum);
    }
    fn decode(r: &mut ByteReader) -> Result<Self, CodecError> {
        let at = r.position();
        let counts: Vec<u64> = r.try_get_u64_slice()?;
        let counts: [u64; HIST_BUCKETS] = counts.try_into().map_err(|_| CodecError::Invalid {
            what: "histogram bucket count",
            at,
        })?;
        Ok(Histogram {
            counts,
            count: r.try_get_u64()?,
            sum: r.try_get_u64()?,
        })
    }
}

/// Counters for a whole world (one entry per rank).
#[derive(Clone, Debug, Default)]
pub struct WorldStats {
    /// Per-rank statistics, indexed by rank.
    pub per_rank: Vec<CommStats>,
}

impl WorldStats {
    /// Largest message count over ranks (the bound in §IV is per process).
    pub fn max_msgs(&self) -> u64 {
        self.per_rank.iter().map(|r| r.msgs_sent).max().unwrap_or(0)
    }

    /// Largest word count over ranks.
    pub fn max_words(&self) -> u64 {
        self.per_rank
            .iter()
            .map(|r| r.words_sent)
            .max()
            .unwrap_or(0)
    }

    /// Total messages across ranks.
    pub fn total_msgs(&self) -> u64 {
        self.per_rank.iter().map(|r| r.msgs_sent).sum()
    }

    /// Total words across ranks.
    pub fn total_words(&self) -> u64 {
        self.per_rank.iter().map(|r| r.words_sent).sum()
    }

    /// Critical-path estimate: the slowest rank's compute time plus its
    /// modeled network time. This is the "parallel time" reported by the
    /// scaling harnesses on hosts with fewer cores than simulated ranks
    /// (see DESIGN.md §5).
    pub fn critical_path_s(&self, model: &NetworkModel) -> f64 {
        self.per_rank
            .iter()
            .map(|r| r.compute_s + r.modeled_comm_s(model))
            .fold(0.0, f64::max)
    }

    /// Largest per-rank compute time (the `tcomp` column of the tables).
    pub fn max_compute_s(&self) -> f64 {
        self.per_rank
            .iter()
            .map(|r| r.compute_s)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = CommStats {
            msgs_sent: 2,
            words_sent: 100,
            compute_s: 1.0,
            wait_s: 0.5,
        };
        let b = CommStats {
            msgs_sent: 3,
            words_sent: 50,
            compute_s: 0.25,
            wait_s: 0.25,
        };
        a.merge(&b);
        assert_eq!(a.msgs_sent, 5);
        assert_eq!(a.words_sent, 150);
        assert!((a.compute_s - 1.25).abs() < 1e-15);
    }

    #[test]
    fn world_aggregates() {
        let w = WorldStats {
            per_rank: vec![
                CommStats {
                    msgs_sent: 5,
                    words_sent: 10,
                    compute_s: 2.0,
                    wait_s: 0.0,
                },
                CommStats {
                    msgs_sent: 7,
                    words_sent: 4,
                    compute_s: 1.0,
                    wait_s: 0.0,
                },
            ],
        };
        assert_eq!(w.max_msgs(), 7);
        assert_eq!(w.max_words(), 10);
        assert_eq!(w.total_msgs(), 12);
        assert_eq!(w.total_words(), 14);
        assert_eq!(w.max_compute_s(), 2.0);
        let model = NetworkModel::new(1.0, 0.1);
        // rank0: 2.0 + 5 + 1.0 = 8; rank1: 1.0 + 7 + 0.4 = 8.4
        assert!((w.critical_path_s(&model) - 8.4).abs() < 1e-12);
    }

    #[test]
    fn trace_wire_round_trips() {
        let rep = TraceReport {
            rank: 3,
            dropped: 7,
            spans: vec![
                Span {
                    cat: 2,
                    name: "recv level 3, interior, kind PHASE_UPDATE".to_string(),
                    tid: 5,
                    start_ns: 123,
                    dur_ns: 456,
                    bytes: 4096,
                },
                Span {
                    cat: 0,
                    name: String::new(),
                    tid: 0,
                    start_ns: 0,
                    dur_ns: u64::MAX,
                    bytes: 0,
                },
            ],
        };
        let back = TraceReport::from_bytes(rep.to_bytes()).expect("round trip");
        assert_eq!(back, rep);

        let mut h = Histogram::new();
        for v in [0u64, 1, 100, u64::MAX] {
            h.record(v);
        }
        let back = Histogram::from_bytes(h.to_bytes()).expect("round trip");
        assert_eq!(back, h);

        // Truncation is an error, not a panic.
        let mut bytes = rep.to_bytes();
        bytes.truncate(bytes.len() - 1);
        assert!(TraceReport::from_bytes(bytes).is_err());
    }

    #[test]
    fn empty_world() {
        let w = WorldStats::default();
        assert_eq!(w.max_msgs(), 0);
        assert_eq!(w.critical_path_s(&NetworkModel::intra_node()), 0.0);
    }
}
