//! Pluggable message transports: ranks as threads or as real OS processes.
//!
//! A [`World`](crate::world::World) runs the same rank closure over one of
//! two backends, selected with [`Transport`]:
//!
//! * [`Transport::InProc`] — every rank is an OS thread of the calling
//!   process; frames move through in-memory channels. Fast to spin up,
//!   deterministic, and the right default for tests and benches.
//! * [`Transport::Tcp`] — every rank is a **separate OS process** and
//!   frames move over localhost TCP sockets, so ranks genuinely share no
//!   memory. The calling process becomes rank 0 and launches ranks
//!   `1..p` by re-executing its own binary (`std::env::current_exe`)
//!   with the `SRSF_RANK` / `SRSF_WORLD` / `SRSF_ADDR` / `SRSF_SEQ`
//!   environment set. A spawned worker re-runs `main` until it reaches
//!   the matching `World::run` call, joins the rendezvous, runs *only*
//!   its rank, ships its result back to rank 0, and exits.
//!
//! Both backends implement [`RankTransport`] — tagged point-to-point
//! send/recv with out-of-order buffering, plus a barrier — and the
//! communication counters are maintained *above* the trait (in
//! [`RankCtx`](crate::world::RankCtx)), so per-rank message/word counts
//! are identical across backends by construction: the paper's §IV bounds
//! measured over TCP are measurements of real inter-process traffic.
//!
//! # Wire format
//!
//! Every frame is length-prefixed: a 16-byte header
//! `(payload_len: u64 LE, src: u32 LE, tag: u32 LE)` followed by
//! `payload_len` raw bytes. Tags below [`tags::CTRL_BASE`] are algorithm
//! data; the top of the range is transport-internal (handshake, barrier,
//! worker results — see below). Frames from other processes are decoded
//! with the bounds-checked [`codec`](crate::codec) readers, so a
//! truncated or hostile frame surfaces as an error, not a panic or an
//! attacker-sized allocation.
//!
//! # Rendezvous / handshake
//!
//! 1. Rank 0 binds an ephemeral rendezvous listener on `127.0.0.1` and
//!    spawns ranks `1..p` with its address in `SRSF_ADDR`.
//! 2. Each worker binds its own ephemeral peer listener, connects to the
//!    rendezvous, and sends `HELLO{magic, version, session, world, rank,
//!    peer_port}`. Rank 0 validates every field (stale sessions and
//!    stray connections are rejected) and the hello assigns the worker
//!    its slot.
//! 3. Rank 0 broadcasts `PEERS{world, ports[0..p]}` over the rendezvous
//!    connections, which stay open as the rank-0 data links.
//! 4. Workers complete the mesh: rank `i` dials ranks `1..i` (sending
//!    `DIAL{magic, session, rank}`) and accepts connections from ranks
//!    `i+1..p`, giving every pair of ranks a dedicated socket.
//!
//! After the handshake each rank runs one reader thread per link that
//! decodes frames into a single matching queue; barriers are centralized
//! control frames through rank 0 (`BARRIER` / `BARRIER_ACK`), which do
//! not touch the data counters — same as the in-process barrier. On both
//! backends a barrier honors the world's receive timeout, so a rank that
//! died before arriving surfaces as a panic, not a hang.
//!
//! When the rank closure returns, workers send `RESULT{CommStats, R}`
//! (both [`Wire`]-encoded) to rank 0 and exit; a panicking worker sends
//! `PANIC{message}` instead, and rank 0 re-panics with the worker's
//! message so failures look the same as on the in-process backend.
//!
//! # Re-exec discipline
//!
//! Spawning by re-exec means a worker re-runs everything `main` does
//! before the `World::run` call, so that prefix must be deterministic
//! and reasonably cheap. Programs that run several TCP worlds are
//! handled with a per-thread session counter (`SRSF_SEQ`): a worker
//! executes earlier sessions on the in-process backend (pure
//! recomputation to reach the same program point) and joins over TCP
//! exactly at the session it was spawned for. Test binaries should pass
//! `[test_name, "--exact"]` to [`set_tcp_child_args`] so a worker re-runs
//! only the one test that spawned it.
//!
//! The session counter is per *launcher thread*, but a re-executed
//! worker cannot tell which launcher thread a session belonged to —
//! create TCP worlds from one thread of a program at a time.
//! (Concurrent TCP worlds from *different test functions* are fine:
//! `--exact` re-runs make each worker see only its own test's
//! sessions.)

use crate::codec::{ByteReader, ByteWriter, Bytes, Wire};
use crate::stats::{CommStats, WorldStats};
use crate::tags;
use crate::world::{RankCtx, World};
use std::cell::{Cell, RefCell};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
// Sync primitives come through the srsf-verify shims: identical to
// `std::sync` in a normal build, schedule-explored under
// `--cfg srsf_model` (see crates/verify).
use srsf_verify::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use srsf_verify::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Message-transport backend selection for a `World`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Transport {
    /// Ranks as threads of this process, frames over in-memory channels.
    #[default]
    InProc,
    /// Ranks as spawned OS processes, frames over localhost TCP sockets.
    Tcp,
    /// Either backend wrapped in the deterministic fault injector: every
    /// rank's transport is a [`FaultyTransport`] replaying the seeded
    /// [`FaultPlan`] (delays, drops with bounded redelivery, duplicated
    /// frames, a one-shot rank crash, a permanent link cut). Recoverable
    /// plans leave solutions and counters bit-identical to the fault-free
    /// run; crash/cut plans surface as typed failures, never hangs.
    Faulty {
        /// The backend actually carrying the frames.
        inner: BaseTransport,
        /// The seeded fault schedule.
        plan: FaultPlan,
    },
}

/// The concrete frame carrier under a [`Transport`] selection — what is
/// left once the fault-injection wrapper is peeled off.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BaseTransport {
    /// Ranks as threads of this process, frames over in-memory channels.
    #[default]
    InProc,
    /// Ranks as spawned OS processes, frames over localhost TCP sockets.
    Tcp,
}

impl From<BaseTransport> for Transport {
    fn from(b: BaseTransport) -> Self {
        match b {
            BaseTransport::InProc => Transport::InProc,
            BaseTransport::Tcp => Transport::Tcp,
        }
    }
}

impl Transport {
    /// The backend that actually carries frames (the fault wrapper is
    /// transparent to dispatch).
    pub fn base(&self) -> BaseTransport {
        match self {
            Transport::InProc => BaseTransport::InProc,
            Transport::Tcp => BaseTransport::Tcp,
            Transport::Faulty { inner, .. } => *inner,
        }
    }

    /// The fault schedule, when this selection injects faults.
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        match self {
            Transport::Faulty { plan, .. } => Some(*plan),
            _ => None,
        }
    }

    /// Wrap this selection in the deterministic fault injector (replaces
    /// any plan already attached).
    pub fn with_faults(self, plan: FaultPlan) -> Transport {
        Transport::Faulty {
            inner: self.base(),
            plan,
        }
    }
}

impl core::fmt::Display for Transport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Transport::InProc => f.write_str("inproc"),
            Transport::Tcp => f.write_str("tcp"),
            Transport::Faulty { inner, .. } => write!(
                f,
                "faulty({})",
                match inner {
                    BaseTransport::InProc => "inproc",
                    BaseTransport::Tcp => "tcp",
                }
            ),
        }
    }
}

impl core::str::FromStr for Transport {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "inproc" | "threads" => Ok(Transport::InProc),
            "tcp" | "process" | "processes" => Ok(Transport::Tcp),
            other => Err(format!(
                "unknown transport {other:?} (expected \"inproc\" or \"tcp\")"
            )),
        }
    }
}

/// A seeded, deterministic fault schedule for [`Transport::Faulty`].
///
/// Every per-frame decision (delay, drop, duplicate) is a pure hash of
/// `(seed, src, dst, per-link sequence number)`, so the same plan replays
/// the same faults on every run and on both backends. Crash and cut
/// faults are indexed by *barrier count* — the solve phases of Algorithm
/// 2 run a barrier per level on both backends, so "crash at barrier k"
/// lands at the same protocol point regardless of transport timing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for every per-frame fault decision.
    pub seed: u64,
    /// Upper bound (exclusive range is `0..=max`) on the deterministic
    /// per-frame delivery delay, in microseconds. `0` disables delays.
    pub max_delay_us: u32,
    /// Per-mille probability that a frame is "dropped" — withheld by the
    /// sender and redelivered (exactly once, link order preserved) at its
    /// next transport operation, modelling a retransmit.
    pub drop_permille: u16,
    /// Per-mille probability that a frame is delivered twice; the
    /// receiver's sequence-number dedup discards the copy.
    pub dup_permille: u16,
    /// One-shot rank crash: `(rank, k)` panics `rank` (after announcing
    /// its death to peers) when it *enters its k-th barrier*, `k >= 1`.
    pub crash: Option<(u32, u32)>,
    /// Permanent link cut: `(a, b, after)` silently discards every data
    /// frame between ranks `a` and `b` once each side has passed `after`
    /// barriers (`after = 0` cuts the link from the start). Barriers
    /// themselves are control traffic and stay up, so the failure
    /// surfaces as a bounded receive timeout, not a hang.
    pub cut: Option<(u32, u32, u32)>,
}

impl FaultPlan {
    /// A plan with the given seed and no faults enabled.
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// Set the per-frame delivery-delay bound, in microseconds.
    pub fn with_max_delay_us(mut self, us: u32) -> Self {
        self.max_delay_us = us;
        self
    }

    /// Set the per-mille frame-drop (withhold + redeliver) probability.
    pub fn with_drop_permille(mut self, pm: u16) -> Self {
        assert!(pm <= 1000, "permille probability out of range");
        self.drop_permille = pm;
        self
    }

    /// Set the per-mille frame-duplication probability.
    pub fn with_dup_permille(mut self, pm: u16) -> Self {
        assert!(pm <= 1000, "permille probability out of range");
        self.dup_permille = pm;
        self
    }

    /// Crash `rank` when it enters its `k`-th barrier (`k >= 1`).
    pub fn with_crash(mut self, rank: u32, k: u32) -> Self {
        assert!(k >= 1, "barriers are counted from 1");
        self.crash = Some((rank, k));
        self
    }

    /// Cut the `a`–`b` link permanently once `after` barriers have passed.
    pub fn with_cut(mut self, a: u32, b: u32, after: u32) -> Self {
        self.cut = Some((a, b, after));
        self
    }

    /// `true` when no plan entry can alter delivery — such a plan is
    /// bit-identical to no wrapper at all.
    pub fn is_noop(&self) -> bool {
        self.max_delay_us == 0
            && self.drop_permille == 0
            && self.dup_permille == 0
            && self.crash.is_none()
            && self.cut.is_none()
    }
}

/// A received frame: source rank, tag, payload.
#[derive(Debug)]
pub struct RawMsg {
    /// Sending rank.
    pub src: usize,
    /// Message tag.
    pub tag: u32,
    /// Payload bytes.
    pub payload: Bytes,
}

/// What a reader pushes into the matching queue.
enum Event {
    Frame(RawMsg),
    /// The link to `src` closed; no further frames from it can arrive.
    Eof(usize),
}

/// Why a receive did not complete.
#[derive(Debug)]
pub enum RecvError {
    /// No matching frame arrived within the timeout.
    Timeout {
        /// The waiting rank.
        rank: usize,
        /// Rank the frame was expected from.
        src: usize,
        /// Tag the receive was matching.
        tag: u32,
        /// How long the rank waited.
        waited: Duration,
    },
    /// The link to `src` closed with the receive still unmatched.
    Disconnected {
        /// The waiting rank.
        rank: usize,
        /// Rank the frame was expected from.
        src: usize,
        /// Tag the receive was matching.
        tag: u32,
    },
    /// The peer died of a panic and relayed its message before the link
    /// closed — reported instead of a bare disconnect so a resident
    /// session names the root cause, not the symptom.
    PeerPanicked {
        /// The waiting rank.
        rank: usize,
        /// The rank that panicked.
        src: usize,
        /// The peer's panic message.
        message: String,
    },
}

impl core::fmt::Display for RecvError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RecvError::Timeout {
                rank,
                src,
                tag,
                waited,
            } => write!(
                f,
                "rank {rank} timed out after {waited:.1?} waiting for a message from rank {src} \
                 with tag {tag} ({})",
                tags::describe(*tag)
            ),
            RecvError::Disconnected { rank, src, tag } => write!(
                f,
                "rank {rank} lost rank {src} while waiting for tag {tag} ({})",
                tags::describe(*tag)
            ),
            RecvError::PeerPanicked { rank, src, message } => {
                write!(f, "rank {rank}: rank {src} panicked: {message}")
            }
        }
    }
}

impl RecvError {
    /// `true` when the peer is gone (link closed or panic relayed), as
    /// opposed to a matching frame simply not having arrived yet.
    pub fn is_fatal(&self) -> bool {
        !matches!(self, RecvError::Timeout { .. })
    }
}

impl std::error::Error for RecvError {}

/// The backend surface a [`RankCtx`](crate::world::RankCtx) runs on:
/// tagged point-to-point messaging with out-of-order buffering, plus a
/// barrier. Implementations do **not** count traffic — the counters live
/// in `RankCtx`, which is what makes the counts backend-invariant.
pub trait RankTransport: Send {
    /// This rank's id in `0..size`.
    fn rank(&self) -> usize;

    /// World size `p`.
    fn size(&self) -> usize;

    /// Ship `payload` to rank `dst` under `tag`.
    fn send(&mut self, dst: usize, tag: u32, payload: Bytes);

    /// Next frame from `src` whose tag is in `matching` (other frames are
    /// buffered for later receives).
    fn recv_any_of(
        &mut self,
        src: usize,
        matching: &[u32],
        timeout: Duration,
    ) -> Result<RawMsg, RecvError>;

    /// Blocking receive of the next `(src, tag)` frame.
    fn recv(&mut self, src: usize, tag: u32, timeout: Duration) -> Result<Bytes, RecvError> {
        Ok(self.recv_any_of(src, &[tag], timeout)?.payload)
    }

    /// Synchronize all ranks.
    fn barrier(&mut self, timeout: Duration) -> Result<(), RecvError>;

    /// Opportunistically pump the fabric: move every frame the backend
    /// has already delivered into the matching queue, without blocking.
    /// Purely a latency lever for compute/communication overlap — a later
    /// tag-matched receive performs the same drain on demand — so the
    /// default is a no-op and traffic counters are unaffected.
    fn progress(&mut self) {}

    /// Tell every peer this rank is going away without further sends, so
    /// their blocked receives fail fast (`Disconnected`) instead of
    /// waiting out the timeout. The TCP backend gets this for free from
    /// socket EOF on process exit; the in-process backend pushes explicit
    /// EOF events (a dead thread closes no channels — its peers all still
    /// hold clones of every sender).
    fn announce_death(&mut self) {}
}

/// Frame matching shared by both backends: a single incoming channel (fed
/// by senders or reader threads) plus a buffer of frames received ahead
/// of the receive that wants them.
struct MsgQueue {
    rank: usize,
    pending: Vec<RawMsg>,
    rx: Receiver<Event>,
    closed: Vec<bool>,
}

impl MsgQueue {
    fn new(rank: usize, size: usize, rx: Receiver<Event>) -> Self {
        Self {
            rank,
            pending: Vec::new(),
            rx,
            closed: vec![false; size],
        }
    }

    fn recv_where(
        &mut self,
        src: usize,
        matching: &[u32],
        timeout: Duration,
    ) -> Result<RawMsg, RecvError> {
        let hit = |m: &RawMsg| m.src == src && matching.contains(&m.tag);
        if let Some(pos) = self.pending.iter().position(hit) {
            return Ok(self.pending.swap_remove(pos));
        }
        if self.closed[src] {
            return Err(self.link_down(src, matching[0]));
        }
        let start = Instant::now();
        let deadline = start + timeout;
        let timed_out = || RecvError::Timeout {
            rank: self.rank,
            src,
            tag: matching[0],
            waited: start.elapsed(),
        };
        loop {
            let now = Instant::now();
            if now >= deadline {
                return Err(timed_out());
            }
            match self.rx.recv_timeout(deadline - now) {
                Ok(Event::Frame(m)) if hit(&m) => return Ok(m),
                Ok(Event::Frame(m)) => self.pending.push(m),
                Ok(Event::Eof(s)) => {
                    self.closed[s] = true;
                    if s == src {
                        return Err(self.link_down(src, matching[0]));
                    }
                }
                Err(RecvTimeoutError::Timeout) => return Err(timed_out()),
                Err(RecvTimeoutError::Disconnected) => return Err(self.link_down(src, matching[0])),
            }
        }
    }

    /// Non-blocking drain: move every event already queued by the fabric
    /// into the pending buffer, so later tag-matched receives hit the
    /// buffer instead of waiting on the channel. Backs the transports'
    /// `progress` hook.
    fn drain_ready(&mut self) {
        loop {
            match self.rx.try_recv() {
                Ok(Event::Frame(m)) => self.pending.push(m),
                Ok(Event::Eof(s)) => self.closed[s] = true,
                Err(_) => break,
            }
        }
    }

    /// The error for a dead link to `src`: if the peer relayed a panic
    /// frame before closing, surface its message as the cause.
    fn link_down(&mut self, src: usize, tag: u32) -> RecvError {
        if let Some(pos) = self
            .pending
            .iter()
            .position(|m| m.src == src && m.tag == TAG_PANIC)
        {
            let m = self.pending.swap_remove(pos);
            return RecvError::PeerPanicked {
                rank: self.rank,
                src,
                message: String::from_utf8_lossy(&m.payload).into_owned(),
            };
        }
        RecvError::Disconnected {
            rank: self.rank,
            src,
            tag,
        }
    }
}

// ---------------------------------------------------------------------------
// In-process backend
// ---------------------------------------------------------------------------

/// A barrier whose wait can time out, so a rank that died before
/// arriving surfaces as a diagnosable error instead of hanging the
/// world forever — the same contract the TCP barrier gets from its
/// control-frame receives.
struct TimeoutBarrier {
    state: Mutex<BarrierState>,
    cv: Condvar,
    p: usize,
}

struct BarrierState {
    arrived: usize,
    generation: u64,
    /// First rank that announced its death; a broken barrier can never
    /// complete again, so waiters fail fast naming the dead rank instead
    /// of waiting out their timeout.
    dead: Option<usize>,
}

/// Outcome of a [`TimeoutBarrier::wait`].
enum BarrierWait {
    /// All ranks arrived.
    Done,
    /// The timeout elapsed with ranks still missing.
    TimedOut,
    /// A rank announced its death; the barrier can never complete.
    Broken(usize),
}

impl TimeoutBarrier {
    fn new(p: usize) -> Self {
        Self {
            state: Mutex::new(BarrierState {
                arrived: 0,
                generation: 0,
                dead: None,
            }),
            cv: Condvar::new(),
            p,
        }
    }

    /// Mark the barrier permanently broken by the death of `rank`, waking
    /// every current waiter.
    fn defect(&self, rank: usize) {
        // INVARIANT: poisoning requires a panicked holder, whose panic already ends the run
        let mut s = self.state.lock().expect("barrier lock");
        if s.dead.is_none() {
            s.dead = Some(rank);
        }
        self.cv.notify_all();
    }

    fn wait(&self, timeout: Duration) -> BarrierWait {
        // INVARIANT: poisoning requires a panicked holder, whose panic already ends the run
        let mut s = self.state.lock().expect("barrier lock");
        if let Some(dead) = s.dead {
            return BarrierWait::Broken(dead);
        }
        let gen = s.generation;
        s.arrived += 1;
        if s.arrived == self.p {
            s.arrived = 0;
            s.generation += 1;
            self.cv.notify_all();
            return BarrierWait::Done;
        }
        let deadline = Instant::now() + timeout;
        while s.generation == gen {
            if let Some(dead) = s.dead {
                s.arrived -= 1;
                return BarrierWait::Broken(dead);
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                // Withdraw this arrival so the state stays consistent for
                // the ranks still waiting (they will time out themselves).
                s.arrived -= 1;
                return BarrierWait::TimedOut;
            }
            // INVARIANT: poisoning requires a panicked holder, whose panic already ends the run
            s = self.cv.wait_timeout(s, remaining).expect("barrier lock").0;
        }
        BarrierWait::Done
    }
}

/// The in-process backend: per-rank mpsc channels and a shared barrier.
struct InProcTransport {
    rank: usize,
    size: usize,
    senders: Vec<Sender<Event>>,
    queue: MsgQueue,
    barrier: Arc<TimeoutBarrier>,
}

impl RankTransport for InProcTransport {
    fn rank(&self) -> usize {
        self.rank
    }
    fn size(&self) -> usize {
        self.size
    }
    fn send(&mut self, dst: usize, tag: u32, payload: Bytes) {
        // A hung-up receiver means the peer rank is already gone: the
        // frame is undeliverable, and the failure surfaces as a *typed*
        // error at this rank's next receive from `dst` (channel EOF) —
        // mirroring TCP, where a send to a dead peer lands in the OS
        // buffer and the death is observed at recv. Panicking here would
        // bypass the resident world's graceful-degradation path.
        let _ = self.senders[dst].send(Event::Frame(RawMsg {
            src: self.rank,
            tag,
            payload,
        }));
    }
    fn recv_any_of(
        &mut self,
        src: usize,
        matching: &[u32],
        timeout: Duration,
    ) -> Result<RawMsg, RecvError> {
        self.queue.recv_where(src, matching, timeout)
    }
    fn barrier(&mut self, timeout: Duration) -> Result<(), RecvError> {
        match self.barrier.wait(timeout) {
            BarrierWait::Done => Ok(()),
            BarrierWait::TimedOut => Err(RecvError::Timeout {
                rank: self.rank,
                src: 0,
                tag: TAG_BARRIER,
                waited: timeout,
            }),
            BarrierWait::Broken(dead) => Err(RecvError::Disconnected {
                rank: self.rank,
                src: dead,
                tag: TAG_BARRIER,
            }),
        }
    }
    fn announce_death(&mut self) {
        for (dst, tx) in self.senders.iter().enumerate() {
            if dst != self.rank {
                let _ = tx.send(Event::Eof(self.rank));
            }
        }
        // Peers blocked *inside* the shared barrier see no channel EOF;
        // breaking the barrier is what fails them fast.
        self.barrier.defect(self.rank);
    }
    fn progress(&mut self) {
        self.queue.drain_ready();
    }
}

/// Build the `p` connected in-process transports of one world.
pub(crate) fn inproc_world(p: usize) -> Vec<Box<dyn RankTransport>> {
    let mut senders = Vec::with_capacity(p);
    let mut receivers = Vec::with_capacity(p);
    for _ in 0..p {
        let (tx, rx) = channel::<Event>();
        senders.push(tx);
        receivers.push(rx);
    }
    let barrier = Arc::new(TimeoutBarrier::new(p));
    receivers
        .into_iter()
        .enumerate()
        .map(|(rank, rx)| {
            Box::new(InProcTransport {
                rank,
                size: p,
                senders: senders.clone(),
                queue: MsgQueue::new(rank, p, rx),
                barrier: barrier.clone(),
            }) as Box<dyn RankTransport>
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Deterministic fault injection
// ---------------------------------------------------------------------------

/// splitmix64-style mixer: the pure hash behind every per-frame fault
/// decision, so a [`FaultPlan`] replays identically on both backends.
fn fault_hash(seed: u64, src: u64, dst: u64, seq: u64, salt: u64) -> u64 {
    let mut z = seed
        .wrapping_add(src.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(dst.wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .wrapping_add(seq.wrapping_mul(0x94d0_49bb_1331_11eb))
        .wrapping_add(salt.wrapping_mul(0xd6e8_feb8_6659_fd93));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A [`RankTransport`] wrapper that injects the faults of a seeded
/// [`FaultPlan`] while guaranteeing that *recoverable* faults (delay,
/// drop-with-redelivery, duplication) cannot change what the algorithm
/// observes:
///
/// * every outgoing data frame gets an 8-byte per-link sequence header,
///   stripped (and deduplicated) on receive;
/// * a "dropped" frame is withheld and redelivered at the sender's next
///   transport operation — flushing at the top of every `send` preserves
///   per-link FIFO order, so a drop is exactly a bounded delay;
/// * duplicated frames carry the same sequence number and are discarded
///   by the receiver's dedup set.
///
/// Control frames (barrier, worker results — tags at
/// [`tags::CTRL_BASE`] and above) are written below this wrapper and pass
/// through untouched. Crash and cut faults are *not* recoverable: a crash
/// announces the rank's death and panics at its k-th barrier; a cut
/// silently discards data frames on one link so the peer's receive fails
/// by bounded timeout.
pub struct FaultyTransport {
    inner: Box<dyn RankTransport>,
    plan: FaultPlan,
    /// Next per-destination sequence number.
    next_seq: Vec<u64>,
    /// Sequence numbers already delivered, per source.
    seen: Vec<std::collections::HashSet<u64>>,
    /// Dropped frames awaiting redelivery: `(dst, tag, seq-framed payload)`.
    withheld: Vec<(usize, u32, Bytes)>,
    /// Barriers this rank has entered (the index for crash/cut faults).
    barriers: u64,
}

impl FaultyTransport {
    /// Wrap `inner` under `plan`.
    pub fn new(inner: Box<dyn RankTransport>, plan: FaultPlan) -> Self {
        let p = inner.size();
        Self {
            inner,
            plan,
            next_seq: vec![0; p],
            seen: (0..p).map(|_| std::collections::HashSet::new()).collect(),
            withheld: Vec::new(),
            barriers: 0,
        }
    }

    /// Redeliver every withheld frame, in original order. Runs at the top
    /// of every transport operation, so a withheld frame is delayed by at
    /// most one operation and per-link FIFO order is preserved.
    fn flush_withheld(&mut self) {
        for (dst, tag, framed) in std::mem::take(&mut self.withheld) {
            self.inner.send(dst, tag, framed);
        }
    }

    fn cut_active(&self, peer: usize) -> bool {
        let me = self.inner.rank() as u32;
        let peer = peer as u32;
        match self.plan.cut {
            Some((a, b, after)) => {
                ((me, peer) == (a, b) || (me, peer) == (b, a)) && self.barriers >= after as u64
            }
            None => false,
        }
    }
}

impl RankTransport for FaultyTransport {
    fn rank(&self) -> usize {
        self.inner.rank()
    }
    fn size(&self) -> usize {
        self.inner.size()
    }

    fn send(&mut self, dst: usize, tag: u32, payload: Bytes) {
        self.flush_withheld();
        let me = self.inner.rank();
        let seq = self.next_seq[dst];
        self.next_seq[dst] += 1;
        let mut framed = Vec::with_capacity(8 + payload.len());
        framed.extend_from_slice(&seq.to_le_bytes());
        framed.extend_from_slice(&payload);
        if self.cut_active(dst) {
            return;
        }
        let roll = |salt: u64| fault_hash(self.plan.seed, me as u64, dst as u64, seq, salt);
        if self.plan.max_delay_us > 0 {
            let us = roll(3) % (self.plan.max_delay_us as u64 + 1);
            if us > 0 {
                std::thread::sleep(Duration::from_micros(us));
            }
        }
        if self.plan.drop_permille > 0 && roll(1) % 1000 < self.plan.drop_permille as u64 {
            self.withheld.push((dst, tag, framed));
            return;
        }
        let dup = self.plan.dup_permille > 0 && roll(2) % 1000 < self.plan.dup_permille as u64;
        if dup {
            self.inner.send(dst, tag, framed.clone());
        }
        self.inner.send(dst, tag, framed);
    }

    fn recv_any_of(
        &mut self,
        src: usize,
        matching: &[u32],
        timeout: Duration,
    ) -> Result<RawMsg, RecvError> {
        self.flush_withheld();
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            let mut m = self.inner.recv_any_of(src, matching, remaining)?;
            if tags::is_control(m.tag) {
                // Control frames (worker results, relayed panics) are
                // written below the wrapper and carry no sequence header.
                return Ok(m);
            }
            debug_assert!(m.payload.len() >= 8, "data frame without a seq header");
            if m.payload.len() < 8 {
                return Ok(m);
            }
            // INVARIANT: the slice is the fixed-width 8-byte seq header
            let seq = u64::from_le_bytes(m.payload[..8].try_into().unwrap());
            m.payload.drain(..8);
            if self.seen[src].insert(seq) {
                return Ok(m);
            }
            // A duplicated frame: discard and keep waiting.
        }
    }

    fn barrier(&mut self, timeout: Duration) -> Result<(), RecvError> {
        self.flush_withheld();
        self.barriers += 1;
        let me = self.inner.rank() as u32;
        if self.plan.crash == Some((me, self.barriers as u32)) {
            self.inner.announce_death();
            // INVARIANT: deliberate — the injected crash *is* a rank death; peers
            // observe it as Disconnected/PeerPanicked and degrade gracefully
            panic!(
                "injected fault: rank {me} crashed at barrier {}",
                self.barriers
            );
        }
        self.inner.barrier(timeout)
    }

    fn progress(&mut self) {
        self.flush_withheld();
        self.inner.progress();
    }

    fn announce_death(&mut self) {
        self.inner.announce_death();
    }
}

impl Drop for FaultyTransport {
    fn drop(&mut self) {
        // A frame withheld by the rank's final transport operation must
        // still reach its peer (recoverable faults may not lose frames).
        // Skip on panic: a crashed rank legitimately loses its tail, and
        // its peers may already be gone. The catch guards against a peer
        // that exited first — a send to it would panic, and a panic out
        // of drop aborts.
        if !std::thread::panicking() {
            let _ =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.flush_withheld()));
        }
    }
}

/// Wrap `t` in a [`FaultyTransport`] when a plan is present.
pub(crate) fn maybe_faulty(
    t: Box<dyn RankTransport>,
    plan: Option<FaultPlan>,
) -> Box<dyn RankTransport> {
    match plan {
        Some(plan) => Box::new(FaultyTransport::new(t, plan)),
        None => t,
    }
}

// ---------------------------------------------------------------------------
// TCP backend: framing
// ---------------------------------------------------------------------------

const TAG_HELLO: u32 = tags::CTRL_BASE;
const TAG_PEERS: u32 = tags::CTRL_BASE + 1;
const TAG_DIAL: u32 = tags::CTRL_BASE + 2;
const TAG_BARRIER: u32 = tags::CTRL_BASE + 3;
const TAG_BARRIER_ACK: u32 = tags::CTRL_BASE + 4;
const TAG_RESULT: u32 = tags::CTRL_BASE + 5;
const TAG_PANIC: u32 = tags::CTRL_BASE + 6;

/// `b"SRSFTCP1"` — first field of every handshake payload.
const MAGIC: u64 = u64::from_le_bytes(*b"SRSFTCP1");
const VERSION: u64 = 1;
const FRAME_HDR: usize = 16;
/// Sanity cap on a data-frame payload; a corrupted header cannot demand
/// more.
const MAX_FRAME: u64 = 1 << 32;
/// Cap on handshake-frame payloads, which are read from connectors that
/// have not yet proven a magic number (HELLO/DIAL are 48 bytes; PEERS is
/// `8 + 8p`).
const HANDSHAKE_FRAME_CAP: u64 = 1 << 20;
/// Per-connection budget for reading a HELLO/DIAL off a fresh accept: a
/// genuine rank sends it immediately after connecting, so a connector
/// silent for this long is a stray to reject — without letting it eat
/// the whole handshake deadline while real ranks queue in the backlog.
const ACCEPT_READ_TIMEOUT: Duration = Duration::from_secs(5);
/// Floor on how long the rendezvous, peer-table and mesh steps may take.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(30);

/// The handshake deadline: workers re-execute `main`'s prefix before they
/// can connect — real recomputation, not a hang — and replay earlier TCP
/// sessions in-process, so the deadline scales with the world's receive
/// timeout (floored at [`HANDSHAKE_TIMEOUT`] so short test timeouts keep
/// a functional handshake). `SRSF_HANDSHAKE_SECS` overrides it for
/// launch prefixes heavier than the receive timeout.
fn handshake_timeout(recv_timeout: Duration) -> Duration {
    match std::env::var("SRSF_HANDSHAKE_SECS") {
        Ok(s) => match s.trim().parse::<u64>() {
            Ok(secs) => Duration::from_secs(secs),
            // INVARIANT: deliberate — a malformed override must fail loudly at
            // startup instead of being silently replaced by the default (the
            // operator believes they lengthened the handshake window)
            Err(_) => panic!("SRSF_HANDSHAKE_SECS must be a whole number of seconds, got {s:?}"),
        },
        Err(std::env::VarError::NotPresent) => HANDSHAKE_TIMEOUT.max(recv_timeout),
        // INVARIANT: deliberate — same malformed-override argument as above
        Err(std::env::VarError::NotUnicode(v)) => {
            panic!("SRSF_HANDSHAKE_SECS is not valid UTF-8: {v:?}")
        }
    }
}

/// Bounded dial retry with deterministic exponential backoff: up to
/// [`DIAL_RETRIES`] retries sleeping 10, 20, 40, 80, 160, 320 ms between
/// attempts, so a worker that dials a peer an instant before its listener
/// is up (or mid SYN-queue overflow on a loaded host) recovers instead of
/// failing the whole handshake.
const DIAL_RETRIES: u32 = 6;
const DIAL_BACKOFF: Duration = Duration::from_millis(10);

fn connect_with_retry<A: std::net::ToSocketAddrs>(addr: A) -> std::io::Result<TcpStream> {
    let mut backoff = DIAL_BACKOFF;
    let mut last = None;
    for attempt in 0..=DIAL_RETRIES {
        if attempt > 0 {
            std::thread::sleep(backoff);
            backoff *= 2;
        }
        match TcpStream::connect(&addr) {
            Ok(s) => return Ok(s),
            Err(e) => last = Some(e),
        }
    }
    // INVARIANT: the loop always runs at least once, so `last` is Some here
    Err(last.expect("at least one dial attempt"))
}
/// Slice length for the result wait's liveness polling: rank 0 waits for
/// a worker's result as long as the worker process is alive (its compute
/// may legitimately outlast any protocol timeout — the in-process
/// backend's join has the same semantics), failing fast only when the
/// process has exited without reporting.
const RESULT_POLL: Duration = Duration::from_secs(1);

/// Environment a spawned worker process reads its assignment from.
pub(crate) const ENV_RANK: &str = "SRSF_RANK";
pub(crate) const ENV_WORLD: &str = "SRSF_WORLD";
pub(crate) const ENV_ADDR: &str = "SRSF_ADDR";
pub(crate) const ENV_SEQ: &str = "SRSF_SEQ";
/// Set (to any value) to let worker processes inherit stdout instead of
/// discarding it.
pub(crate) const ENV_WORKER_STDOUT: &str = "SRSF_WORKER_STDOUT";

fn write_frame(s: &mut TcpStream, src: usize, tag: u32, payload: &[u8]) -> std::io::Result<()> {
    let mut hdr = [0u8; FRAME_HDR];
    hdr[0..8].copy_from_slice(&(payload.len() as u64).to_le_bytes());
    hdr[8..12].copy_from_slice(&(src as u32).to_le_bytes());
    hdr[12..16].copy_from_slice(&tag.to_le_bytes());
    s.write_all(&hdr)?;
    s.write_all(payload)
}

/// Read one frame; `Ok(None)` on a clean EOF at a frame boundary.
/// `cap` bounds the allocation the header can demand: handshake reads
/// (which face arbitrary local connectors, *before* any magic check)
/// pass [`HANDSHAKE_FRAME_CAP`]; established rank links pass
/// [`MAX_FRAME`].
fn read_frame(s: &mut TcpStream, cap: u64) -> std::io::Result<Option<(usize, u32, Bytes)>> {
    let mut hdr = [0u8; FRAME_HDR];
    if !read_exact_or_eof(s, &mut hdr)? {
        return Ok(None);
    }
    // INVARIANT: the slice is a fixed-width field of the 16-byte header
    let len = u64::from_le_bytes(hdr[0..8].try_into().unwrap());
    if len > cap {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame claims {len} payload bytes (cap {cap})"),
        ));
    }
    // INVARIANT: the slice is a fixed-width field of the 16-byte header
    let src = u32::from_le_bytes(hdr[8..12].try_into().unwrap()) as usize;
    // INVARIANT: the slice is a fixed-width field of the 16-byte header
    let tag = u32::from_le_bytes(hdr[12..16].try_into().unwrap());
    let mut payload = vec![0u8; len as usize];
    s.read_exact(&mut payload)?;
    Ok(Some((src, tag, payload)))
}

/// `read_exact`, except a clean EOF before the first byte returns
/// `Ok(false)`.
fn read_exact_or_eof(s: &mut impl Read, buf: &mut [u8]) -> std::io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        let n = s.read(&mut buf[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(false);
            }
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-frame",
            ));
        }
        filled += n;
    }
    Ok(true)
}

/// One reader thread per link: decode frames into the matching queue,
/// then report the link's EOF. The per-link thread is what keeps sockets
/// drained at all times — a rank blocked in compute cannot back-pressure
/// its peers into a send/send deadlock.
fn spawn_reader(mut stream: TcpStream, src: usize, tx: Sender<Event>) {
    std::thread::Builder::new()
        .name(format!("srsf-tcp-read-{src}"))
        .spawn(move || loop {
            match read_frame(&mut stream, MAX_FRAME) {
                Ok(Some((hdr_src, tag, payload))) => {
                    debug_assert_eq!(hdr_src, src, "frame src does not match its link");
                    // The link identity (fixed at handshake) is
                    // authoritative over the self-reported header field.
                    if tx.send(Event::Frame(RawMsg { src, tag, payload })).is_err() {
                        break;
                    }
                }
                Ok(None) | Err(_) => {
                    let _ = tx.send(Event::Eof(src));
                    break;
                }
            }
        })
        // INVARIANT: OS-thread spawn fails only on resource exhaustion
        .expect("spawn tcp reader thread");
}

// ---------------------------------------------------------------------------
// TCP backend: transport
// ---------------------------------------------------------------------------

/// The TCP backend: one socket per peer (write side owned here, read side
/// owned by the reader threads feeding `queue`).
struct TcpTransport {
    rank: usize,
    size: usize,
    peers: Vec<Option<TcpStream>>,
    queue: MsgQueue,
    barrier_seq: u64,
}

impl RankTransport for TcpTransport {
    fn rank(&self) -> usize {
        self.rank
    }
    fn size(&self) -> usize {
        self.size
    }
    fn send(&mut self, dst: usize, tag: u32, payload: Bytes) {
        let me = self.rank;
        // A dead or missing link makes the frame undeliverable; the
        // failure surfaces as a *typed* error at the next receive from
        // `dst` (the reader thread reports the socket EOF), so sends stay
        // best-effort and the resident world can degrade gracefully
        // instead of panicking mid-solve.
        let Some(s) = self.peers[dst].as_mut() else {
            return;
        };
        if let Err(e) = write_frame(s, me, tag, &payload) {
            eprintln!("srsf-runtime: rank {me} failed sending tag {tag} to rank {dst}: {e}");
            // Drop the write half: every later send to `dst` is a no-op.
            self.peers[dst] = None;
        }
    }
    fn recv_any_of(
        &mut self,
        src: usize,
        matching: &[u32],
        timeout: Duration,
    ) -> Result<RawMsg, RecvError> {
        self.queue.recv_where(src, matching, timeout)
    }

    /// Centralized message barrier through rank 0. Control frames bypass
    /// the data counters, mirroring the in-process `Barrier`.
    fn barrier(&mut self, timeout: Duration) -> Result<(), RecvError> {
        let seq = self.barrier_seq;
        self.barrier_seq += 1;
        if self.size == 1 {
            return Ok(());
        }
        let me = self.rank;
        let payload = seq.to_le_bytes().to_vec();
        if me == 0 {
            for src in 1..self.size {
                let m = self.queue.recv_where(src, &[TAG_BARRIER], timeout)?;
                assert_eq!(
                    m.payload, payload,
                    "barrier desync: rank {src} is at a different barrier than rank 0"
                );
            }
            for dst in 1..self.size {
                // INVARIANT: the handshake established a link to every rank
                let s = self.peers[dst].as_mut().expect("barrier link");
                write_frame(s, 0, TAG_BARRIER_ACK, &payload)
                    // INVARIANT: deliberate — an unreachable peer is unrecoverable for this rank;
                    // panicking with rank/tag context is how workers report fatal transport faults
                    // (the parent maps it to TAG_PANIC / exit status)
                    .unwrap_or_else(|e| panic!("barrier ack to rank {dst}: {e}"));
            }
        } else {
            // INVARIANT: the handshake established a link to rank 0
            let s = self.peers[0].as_mut().expect("barrier link");
            write_frame(s, me, TAG_BARRIER, &payload)
                // INVARIANT: deliberate — an unreachable peer is unrecoverable for this rank;
                // panicking with rank/tag context is how workers report fatal transport faults
                // (the parent maps it to TAG_PANIC / exit status)
                .unwrap_or_else(|e| panic!("rank {me} barrier arrival: {e}"));
            let m = self.queue.recv_where(0, &[TAG_BARRIER_ACK], timeout)?;
            assert_eq!(m.payload, payload, "barrier desync at rank {me}");
        }
        Ok(())
    }

    fn progress(&mut self) {
        // The per-link reader threads already drain the sockets into the
        // event channel; this moves their harvest into the matching queue.
        self.queue.drain_ready();
    }
}

// ---------------------------------------------------------------------------
// Session bookkeeping, launcher configuration
// ---------------------------------------------------------------------------

/// The assignment a spawned worker process reads from its environment.
pub(crate) struct WorkerJob {
    pub rank: usize,
    pub world: usize,
    pub addr: String,
    pub seq: u64,
}

fn parse_worker_env() -> Option<WorkerJob> {
    let rank: usize = std::env::var(ENV_RANK).ok()?.parse().ok()?;
    let world: usize = std::env::var(ENV_WORLD).ok()?.parse().ok()?;
    let addr = std::env::var(ENV_ADDR).ok()?;
    let seq: u64 = std::env::var(ENV_SEQ).ok()?.parse().ok()?;
    Some(WorkerJob {
        rank,
        world,
        addr,
        seq,
    })
}

pub(crate) fn worker_job() -> Option<&'static WorkerJob> {
    static JOB: OnceLock<Option<WorkerJob>> = OnceLock::new();
    JOB.get_or_init(parse_worker_env).as_ref()
}

/// `true` when this process is a spawned TCP worker rank rather than the
/// launching process. Programs that print around `World::run` can use
/// this to keep output on the launcher only (workers re-run `main` up to
/// the `run` call and then exit inside it, so code *before* the call runs
/// in every rank process).
pub fn is_spawned_worker() -> bool {
    worker_job().is_some()
}

thread_local! {
    /// TCP sessions created by this thread, in order. A worker is spawned
    /// for one specific session (`SRSF_SEQ`) and must re-reach exactly
    /// that `World::run` call; earlier sessions re-run in-process.
    static TCP_SESSION: Cell<u64> = const { Cell::new(0) };
    /// Override for the argv a TCP world hands to spawned workers.
    static CHILD_ARGS: RefCell<Option<Vec<String>>> = const { RefCell::new(None) };
}

pub(crate) fn next_session_seq() -> u64 {
    TCP_SESSION.with(|c| {
        let v = c.get() + 1;
        c.set(v);
        v
    })
}

/// Override the arguments passed to re-executed worker processes for TCP
/// worlds created *by this thread* (`None` restores the default: the
/// launching process's own arguments).
///
/// Required inside `cargo test` binaries, where the default would make a
/// worker re-run the whole test suite: pass
/// `vec!["<full_test_name>".into(), "--exact".into()]` so the worker
/// re-runs only the test that spawned it.
pub fn set_tcp_child_args(args: Option<Vec<String>>) {
    CHILD_ARGS.with(|c| *c.borrow_mut() = args);
}

fn child_args() -> Vec<String> {
    CHILD_ARGS
        .with(|c| c.borrow().clone())
        .unwrap_or_else(|| std::env::args().skip(1).collect())
}

/// Kills still-running workers if the launcher unwinds mid-session, so a
/// failed test cannot strand rank processes waiting on their timeouts.
#[derive(Default)]
pub(crate) struct ChildGuard {
    spawned: Vec<(usize, std::process::Child)>,
    done: bool,
}

impl ChildGuard {
    /// Panic early (with the worker's exit status) if a worker died
    /// before completing the handshake.
    fn check_none_exited(&mut self) {
        for (rank, child) in &mut self.spawned {
            if let Ok(Some(status)) = child.try_wait() {
                // INVARIANT: deliberate — a worker dying mid-handshake leaves the job
                // unstartable; failing fast with its exit status is the report
                panic!("worker rank {rank} exited during the handshake: {status}");
            }
        }
    }

    /// `Some(status)` if the worker for `rank` has exited.
    pub(crate) fn exited(&mut self, rank: usize) -> Option<std::process::ExitStatus> {
        self.spawned
            .iter_mut()
            .find(|(r, _)| *r == rank)
            .and_then(|(_, child)| child.try_wait().ok().flatten())
    }

    /// Exit status of the worker for `rank`, waiting briefly for the
    /// process to be reaped (its socket EOF precedes the exit by a
    /// moment).
    pub(crate) fn status_of(&mut self, rank: usize) -> String {
        let Some((_, child)) = self.spawned.iter_mut().find(|(r, _)| *r == rank) else {
            return "unknown worker".to_string();
        };
        for _ in 0..200 {
            if let Ok(Some(status)) = child.try_wait() {
                return status.to_string();
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        "process still running".to_string()
    }

    /// Mark the session complete and reap every worker, leaving the
    /// guard disarmed for its eventual drop.
    pub(crate) fn finish_ref(&mut self) {
        self.done = true;
        for (_, child) in &mut self.spawned {
            let _ = child.wait();
        }
    }

    /// Give workers up to `budget` to exit on their own (they observe the
    /// closed rank-0 links), disarming the guard if they all do; any
    /// stragglers are killed by the guard's drop.
    pub(crate) fn wait_graceful(&mut self, budget: Duration) {
        if self.done {
            return;
        }
        let deadline = Instant::now() + budget;
        loop {
            let all_exited = self
                .spawned
                .iter_mut()
                .all(|(_, child)| matches!(child.try_wait(), Ok(Some(_))));
            if all_exited {
                self.done = true;
                return;
            }
            if Instant::now() >= deadline {
                return;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}

impl Drop for ChildGuard {
    fn drop(&mut self) {
        if !self.done {
            for (_, child) in &mut self.spawned {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
    }
}

// ---------------------------------------------------------------------------
// TCP backend: launcher (rank 0) and worker entry
// ---------------------------------------------------------------------------

/// Validate a rendezvous `HELLO`; returns the worker's `(rank, peer
/// port)`. Uses the bounds-checked readers throughout — this is the one
/// place where bytes from an arbitrary connector reach the runtime.
fn read_hello(s: &mut TcpStream, p: usize, seq: u64) -> Result<(usize, u16), String> {
    let (_, tag, payload) = read_frame(s, HANDSHAKE_FRAME_CAP)
        .map_err(|e| format!("hello read failed: {e}"))?
        .ok_or("connection closed before HELLO")?;
    if tag != TAG_HELLO {
        return Err(format!("expected HELLO, got tag {tag}"));
    }
    let mut r = ByteReader::new(payload);
    let mut next = |what: &'static str| {
        r.try_get_u64()
            .map_err(|e| format!("malformed HELLO ({what}): {e}"))
    };
    if next("magic")? != MAGIC {
        return Err("bad magic — connector is not an srsf worker".into());
    }
    let version = next("version")?;
    if version != VERSION {
        return Err(format!("wire version {version}, expected {VERSION}"));
    }
    let got_seq = next("session")?;
    if got_seq != seq {
        return Err(format!(
            "worker from session {got_seq}, this is session {seq}"
        ));
    }
    let world = next("world")? as usize;
    if world != p {
        return Err(format!(
            "worker built a {world}-rank world, launcher has {p}"
        ));
    }
    let rank = next("rank")? as usize;
    if rank == 0 || rank >= p {
        return Err(format!("worker rank {rank} out of range 1..{p}"));
    }
    let port = next("port")?;
    let port = u16::try_from(port).map_err(|_| format!("peer port {port} out of range"))?;
    Ok((rank, port))
}

/// Rank-0 side of the TCP launch: spawn the worker processes, run the
/// rendezvous and peer-table broadcast, and wire up rank 0's transport.
/// Shared between the run-to-completion path ([`run_tcp_parent`]) and the
/// resident-session path (`World::run_resident`), which keeps the
/// returned transport and guard alive inside a
/// [`crate::world::WorldHandle`].
pub(crate) fn tcp_parent_setup(world: &World, seq: u64) -> (Box<dyn RankTransport>, ChildGuard) {
    let p = world.size();
    let recv_timeout = world.recv_timeout();
    // INVARIANT: deliberate — a handshake fault before the transport exists can
    // only be reported by dying; the parent turns it into a worker exit status
    let listener = TcpListener::bind(("127.0.0.1", 0)).expect("bind rendezvous listener");
    listener
        .set_nonblocking(true)
        // INVARIANT: deliberate — a handshake fault before the transport exists can
        // only be reported by dying; the parent turns it into a worker exit status
        .expect("nonblocking rendezvous listener");
    // INVARIANT: deliberate — a handshake fault before the transport exists can
    // only be reported by dying; the parent turns it into a worker exit status
    let addr = listener.local_addr().expect("rendezvous address");
    // INVARIANT: deliberate — a handshake fault before the transport exists can
    // only be reported by dying; the parent turns it into a worker exit status
    let exe = std::env::current_exe().expect("current_exe for worker re-exec");
    let args = child_args();

    let mut children = ChildGuard::default();
    for rank in 1..p {
        let mut cmd = std::process::Command::new(&exe);
        cmd.args(&args)
            .env(ENV_RANK, rank.to_string())
            .env(ENV_WORLD, p.to_string())
            .env(ENV_ADDR, addr.to_string())
            .env(ENV_SEQ, seq.to_string());
        if std::env::var_os(ENV_WORKER_STDOUT).is_none() {
            // Workers re-run main's prefix, so their stdout would
            // duplicate the launcher's; panics still reach stderr.
            cmd.stdout(std::process::Stdio::null());
        }
        let child = cmd
            .spawn()
            // INVARIANT: deliberate — a handshake fault before the transport exists can
            // only be reported by dying; the parent turns it into a worker exit status
            .unwrap_or_else(|e| panic!("spawn worker rank {rank}: {e}"));
        children.spawned.push((rank, child));
    }

    // Rendezvous: collect one valid HELLO per worker rank.
    let handshake = handshake_timeout(recv_timeout);
    let deadline = Instant::now() + handshake;
    let mut streams: Vec<Option<TcpStream>> = (0..p).map(|_| None).collect();
    let mut ports = vec![0u16; p];
    let mut got = 0;
    while got + 1 < p {
        // The deadline binds every branch: a stray connector that stalls
        // mid-hello must not extend the wait past it (its read timeout
        // is capped at the remaining budget), and repeated dials cannot
        // keep the accept arm hot forever.
        let remaining = deadline.saturating_duration_since(Instant::now());
        assert!(
            remaining > Duration::ZERO,
            "rendezvous timed out with {got} of {} workers connected",
            p - 1
        );
        match listener.accept() {
            Ok((mut s, _)) => {
                s.set_nonblocking(false).ok();
                s.set_nodelay(true).ok();
                s.set_read_timeout(Some(remaining.min(ACCEPT_READ_TIMEOUT)))
                    .ok();
                match read_hello(&mut s, p, seq) {
                    Ok((rank, port)) => {
                        assert!(
                            streams[rank].is_none(),
                            "worker rank {rank} connected twice"
                        );
                        ports[rank] = port;
                        streams[rank] = Some(s);
                        got += 1;
                    }
                    Err(e) => eprintln!("srsf-runtime: rejected rendezvous connection: {e}"),
                }
            }
            Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                children.check_none_exited();
                std::thread::sleep(Duration::from_millis(2));
            }
            // INVARIANT: deliberate — a handshake fault before the transport exists can
            // only be reported by dying; the parent turns it into a worker exit status
            Err(e) => panic!("rendezvous accept failed: {e}"),
        }
    }

    // Broadcast the peer table; the rendezvous links stay open as the
    // rank-0 data links.
    let mut w = ByteWriter::new();
    w.put_u64(p as u64);
    for &port in &ports {
        w.put_u64(port as u64);
    }
    let table = w.finish();
    for rank in 1..p {
        // INVARIANT: the accept loop above filled every stream slot
        let s = streams[rank].as_mut().expect("rendezvous link");
        s.set_read_timeout(None).ok();
        write_frame(s, 0, TAG_PEERS, &table)
            // INVARIANT: deliberate — a handshake fault before the transport exists can
            // only be reported by dying; the parent turns it into a worker exit status
            .unwrap_or_else(|e| panic!("send peer table to rank {rank}: {e}"));
    }

    let (tx, rx) = channel();
    for rank in 1..p {
        let read_half = streams[rank]
            .as_ref()
            // INVARIANT: the accept loop above filled every stream slot
            .unwrap()
            .try_clone()
            // INVARIANT: deliberate — a handshake fault before the transport exists can
            // only be reported by dying; the parent turns it into a worker exit status
            .expect("clone rank link");
        spawn_reader(read_half, rank, tx.clone());
    }
    drop(tx);

    let transport = TcpTransport {
        rank: 0,
        size: p,
        peers: streams,
        queue: MsgQueue::new(0, p, rx),
        barrier_seq: 0,
    };
    (
        maybe_faulty(Box::new(transport), world.fault_plan()),
        children,
    )
}

/// Collect the `RESULT`/`PANIC` frame of every worker rank. The wait
/// mirrors the in-process join: block as long as the worker process is
/// alive (post-communication compute has no protocol deadline), fail
/// fast once it has exited without reporting — the exit status then
/// names the real cause instead of a timeout. A relayed worker panic
/// re-panics here.
pub(crate) fn collect_tcp_results<R: Wire>(
    transport: &mut dyn RankTransport,
    children: &mut ChildGuard,
    p: usize,
) -> (Vec<R>, Vec<CommStats>) {
    let mut results = Vec::with_capacity(p - 1);
    let mut stats = Vec::with_capacity(p - 1);
    for src in 1..p {
        let m = loop {
            match transport.recv_any_of(src, &[TAG_RESULT, TAG_PANIC], RESULT_POLL) {
                Ok(m) => break m,
                Err(e @ (RecvError::Disconnected { .. } | RecvError::PeerPanicked { .. })) => {
                    let status = children.status_of(src);
                    // INVARIANT: deliberate — a worker dying without a result frame is fatal to
                    // the job; its exit status is the diagnostic
                    panic!("worker rank {src} exited without reporting a result ({status}): {e}");
                }
                Err(RecvError::Timeout { .. }) => {
                    if let Some(status) = children.exited(src) {
                        // The result frame may still be draining through
                        // the reader thread (exit closely follows the
                        // send); give it one more poll before declaring
                        // the worker dead.
                        match transport.recv_any_of(src, &[TAG_RESULT, TAG_PANIC], RESULT_POLL) {
                            Ok(m) => break m,
                            // INVARIANT: deliberate — same dead-worker argument as above
                            Err(e) => panic!(
                                "worker rank {src} exited without reporting a result \
                                 ({status}): {e}"
                            ),
                        }
                    }
                }
            }
        };
        if m.tag == TAG_PANIC {
            let msg = String::from_utf8_lossy(&m.payload).into_owned();
            // INVARIANT: deliberate — re-raising a worker panic on the driver thread is
            // the TAG_PANIC protocol's whole point
            panic!("rank {src} panicked: {msg}");
        }
        let mut r = ByteReader::new(m.payload);
        let s =
            // INVARIANT: result frames come from our own encoder; a malformed one is a
            // peer bug worth dying loudly on
            CommStats::decode(&mut r).unwrap_or_else(|e| panic!("rank {src} result frame: {e}"));
        // INVARIANT: same trusted result-frame argument as above
        let val = R::decode(&mut r).unwrap_or_else(|e| panic!("rank {src} result frame: {e}"));
        stats.push(s);
        results.push(val);
    }
    children.finish_ref();
    (results, stats)
}

/// Rank-0 side of a TCP world: spawn workers, run the rendezvous, run
/// rank 0 in this process, then collect the workers' results.
pub(crate) fn run_tcp_parent<R, F>(world: &World, seq: u64, f: F) -> (Vec<R>, WorldStats)
where
    R: Send + Wire,
    F: Fn(&mut RankCtx) -> R + Send + Sync,
{
    let p = world.size();
    let (transport, mut children) = tcp_parent_setup(world, seq);
    let mut ctx = RankCtx::from_transport(transport, world.recv_timeout());
    srsf_trace::enter_rank(0);
    let r0 = f(&mut ctx);
    let stats0 = ctx.stats();
    let mut transport = ctx.into_transport();

    let (worker_results, worker_stats) =
        collect_tcp_results::<R>(&mut *transport, &mut children, p);
    let mut results = Vec::with_capacity(p);
    let mut world_stats = WorldStats {
        per_rank: Vec::with_capacity(p),
    };
    results.push(r0);
    world_stats.per_rank.push(stats0);
    results.extend(worker_results);
    world_stats.per_rank.extend(worker_stats);
    (results, world_stats)
}

/// Worker side of a TCP world: join the rendezvous, complete the mesh,
/// run this rank's closure, report the result, and exit the process
/// (nothing after the launching `World::run` call may execute here).
pub(crate) fn run_tcp_worker<R, F>(job: &WorkerJob, world: &World, f: F) -> !
where
    R: Send + Wire,
    F: Fn(&mut RankCtx) -> R + Send + Sync,
{
    let p = world.size();
    let rank = job.rank;
    assert_eq!(
        job.world, p,
        "worker rank {rank} was spawned for a {}-rank world but this process built one with \
         {p} ranks — the program must be deterministic up to its World::run calls",
        job.world
    );
    assert!(rank >= 1 && rank < p, "worker rank {rank} out of range");

    let mut hub = connect_with_retry(job.addr.as_str())
        // INVARIANT: deliberate — a handshake fault before the transport exists can
        // only be reported by dying; the parent turns it into a worker exit status
        .unwrap_or_else(|e| panic!("rank {rank}: cannot reach rendezvous {}: {e}", job.addr));
    hub.set_nodelay(true).ok();
    let handshake = handshake_timeout(world.recv_timeout());
    hub.set_read_timeout(Some(handshake)).ok();
    // INVARIANT: deliberate — a handshake fault before the transport exists can
    // only be reported by dying; the parent turns it into a worker exit status
    let listener = TcpListener::bind(("127.0.0.1", 0)).expect("bind peer listener");
    // INVARIANT: deliberate — a handshake fault before the transport exists can
    // only be reported by dying; the parent turns it into a worker exit status
    let my_port = listener.local_addr().expect("peer listener address").port();

    let mut w = ByteWriter::new();
    w.put_u64(MAGIC);
    w.put_u64(VERSION);
    w.put_u64(job.seq);
    w.put_u64(p as u64);
    w.put_u64(rank as u64);
    w.put_u64(my_port as u64);
    write_frame(&mut hub, rank, TAG_HELLO, &w.finish())
        // INVARIANT: deliberate — a handshake fault before the transport exists can
        // only be reported by dying; the parent turns it into a worker exit status
        .unwrap_or_else(|e| panic!("rank {rank}: send HELLO: {e}"));

    let (src, tag, payload) = read_frame(&mut hub, HANDSHAKE_FRAME_CAP)
        // INVARIANT: deliberate — a handshake fault before the transport exists can
        // only be reported by dying; the parent turns it into a worker exit status
        .unwrap_or_else(|e| panic!("rank {rank}: read peer table: {e}"))
        // INVARIANT: deliberate — a handshake fault before the transport exists can
        // only be reported by dying; the parent turns it into a worker exit status
        .unwrap_or_else(|| panic!("rank {rank}: rendezvous closed before the peer table"));
    assert_eq!((src, tag), (0, TAG_PEERS), "handshake: expected PEERS");
    let mut r = ByteReader::new(payload);
    let world_size = r
        .try_get_u64()
        // INVARIANT: deliberate — a handshake fault before the transport exists can
        // only be reported by dying; the parent turns it into a worker exit status
        .unwrap_or_else(|e| panic!("rank {rank}: peer table: {e}")) as usize;
    assert_eq!(world_size, p, "peer table world size mismatch");
    let ports: Vec<u16> = (0..p)
        .map(|_| {
            r.try_get_u64()
                // INVARIANT: deliberate — a handshake fault before the transport exists can
                // only be reported by dying; the parent turns it into a worker exit status
                .unwrap_or_else(|e| panic!("rank {rank}: peer table: {e}")) as u16
        })
        .collect();

    // Mesh: dial every lower worker rank, accept every higher one.
    let mut peers: Vec<Option<TcpStream>> = (0..p).map(|_| None).collect();
    for dst in 1..rank {
        let mut s = connect_with_retry(("127.0.0.1", ports[dst]))
            // INVARIANT: deliberate — a handshake fault before the transport exists can
            // only be reported by dying; the parent turns it into a worker exit status
            .unwrap_or_else(|e| panic!("rank {rank}: dial rank {dst}: {e}"));
        s.set_nodelay(true).ok();
        let mut w = ByteWriter::new();
        w.put_u64(MAGIC);
        w.put_u64(job.seq);
        w.put_u64(rank as u64);
        write_frame(&mut s, rank, TAG_DIAL, &w.finish())
            // INVARIANT: deliberate — a handshake fault before the transport exists can
            // only be reported by dying; the parent turns it into a worker exit status
            .unwrap_or_else(|e| panic!("rank {rank}: DIAL rank {dst}: {e}"));
        peers[dst] = Some(s);
    }
    listener
        .set_nonblocking(true)
        // INVARIANT: deliberate — a handshake fault before the transport exists can
        // only be reported by dying; the parent turns it into a worker exit status
        .expect("nonblocking peer listener");
    let deadline = Instant::now() + handshake;
    let mut accepted = 0;
    while accepted < p - 1 - rank {
        // As in the rendezvous loop: the deadline binds every branch and
        // caps how long a stalled dialer can hold the accept arm.
        let remaining = deadline.saturating_duration_since(Instant::now());
        assert!(
            remaining > Duration::ZERO,
            "rank {rank}: peer mesh timed out ({accepted} of {} dials)",
            p - 1 - rank
        );
        match listener.accept() {
            Ok((mut s, _)) => {
                s.set_nonblocking(false).ok();
                s.set_nodelay(true).ok();
                s.set_read_timeout(Some(remaining.min(ACCEPT_READ_TIMEOUT)))
                    .ok();
                match read_dial(&mut s, p, job.seq) {
                    Ok(peer) => {
                        assert!(
                            peer > rank && peers[peer].is_none(),
                            "unexpected DIAL from rank {peer}"
                        );
                        s.set_read_timeout(None).ok();
                        peers[peer] = Some(s);
                        accepted += 1;
                    }
                    Err(e) => eprintln!("srsf-runtime: rank {rank} rejected peer dial: {e}"),
                }
            }
            Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            // INVARIANT: deliberate — a handshake fault before the transport exists can
            // only be reported by dying; the parent turns it into a worker exit status
            Err(e) => panic!("rank {rank}: peer accept failed: {e}"),
        }
    }

    hub.set_read_timeout(None).ok();
    // A second handle to the rank-0 link for the result frame, taken
    // before the transport owns the stream.
    // INVARIANT: deliberate — a handshake fault before the transport exists can
    // only be reported by dying; the parent turns it into a worker exit status
    let mut result_link = hub.try_clone().expect("clone rank-0 link");
    peers[0] = Some(hub);

    let (tx, rx) = channel();
    for peer in 0..p {
        if peer == rank {
            continue;
        }
        let read_half = peers[peer]
            .as_ref()
            // INVARIANT: the dial/accept loops above established every peer link
            .unwrap_or_else(|| panic!("rank {rank}: missing link to rank {peer}"))
            .try_clone()
            // INVARIANT: deliberate — a handshake fault before the transport exists can
            // only be reported by dying; the parent turns it into a worker exit status
            .expect("clone peer link");
        spawn_reader(read_half, peer, tx.clone());
    }
    drop(tx);

    let transport = TcpTransport {
        rank,
        size: p,
        peers,
        queue: MsgQueue::new(rank, p, rx),
        barrier_seq: 0,
    };
    let mut ctx = RankCtx::from_transport(
        maybe_faulty(Box::new(transport), world.fault_plan()),
        world.recv_timeout(),
    );
    srsf_trace::enter_rank(rank);
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut ctx)));
    let code = match outcome {
        Ok(val) => {
            // `process::exit` below skips destructors: pump the transport
            // once so a frame withheld by a fault plan on this rank's
            // final send is redelivered before the process goes away.
            ctx.progress();
            let mut w = ByteWriter::new();
            ctx.stats().encode(&mut w);
            val.encode(&mut w);
            write_frame(&mut result_link, rank, TAG_RESULT, &w.finish())
                // INVARIANT: deliberate — an unreachable peer is unrecoverable for this rank;
                // panicking with rank/tag context is how workers report fatal transport faults
                // (the parent maps it to TAG_PANIC / exit status)
                .unwrap_or_else(|e| panic!("rank {rank}: send result: {e}"));
            0
        }
        Err(payload) => {
            let msg = panic_message(payload);
            let _ = write_frame(&mut result_link, rank, TAG_PANIC, msg.as_bytes());
            101
        }
    };
    std::process::exit(code);
}

/// Validate a peer-mesh `DIAL`; returns the dialing rank.
fn read_dial(s: &mut TcpStream, p: usize, seq: u64) -> Result<usize, String> {
    let (_, tag, payload) = read_frame(s, HANDSHAKE_FRAME_CAP)
        .map_err(|e| format!("dial read failed: {e}"))?
        .ok_or("connection closed before DIAL")?;
    if tag != TAG_DIAL {
        return Err(format!("expected DIAL, got tag {tag}"));
    }
    let mut r = ByteReader::new(payload);
    let mut next = |what: &'static str| {
        r.try_get_u64()
            .map_err(|e| format!("malformed DIAL ({what}): {e}"))
    };
    if next("magic")? != MAGIC {
        return Err("bad magic".into());
    }
    let got_seq = next("session")?;
    if got_seq != seq {
        return Err(format!(
            "dial from session {got_seq}, this is session {seq}"
        ));
    }
    let rank = next("rank")? as usize;
    if rank == 0 || rank >= p {
        return Err(format!("dialing rank {rank} out of range"));
    }
    Ok(rank)
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
