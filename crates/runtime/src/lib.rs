//! `srsf-runtime`: a simulated distributed-memory runtime.
//!
//! **Substitution note (see DESIGN.md §5).** The paper runs on up to 1024
//! processes of NERSC Perlmutter via Julia's `Distributed.jl`. Rust MPI
//! bindings are immature and this reproduction targets a single host, so
//! the distributed algorithm runs against this crate instead: every rank is
//! an OS thread with its own address space discipline (ranks only share
//! data through explicit messages), point-to-point channels carry typed
//! byte payloads, and per-rank counters record exactly the quantities the
//! paper analyzes in §IV — message counts and word volumes.
//!
//! * [`world`] — spawn a `p`-rank world, each rank running a closure
//!   against a [`world::RankCtx`] handle (send / recv / barrier).
//! * [`stats`] — per-rank communication and compute accounting.
//! * [`netmodel`] — an α–β (latency–bandwidth) network cost model with
//!   intra-node and inter-node presets, used to reproduce the paper's
//!   "1 process per compute node" experiment (Table VII).
//! * [`codec`] — serialization of scalar matrices/vectors into byte
//!   payloads (`bytes`-based, no copies on the receive path beyond the
//!   channel transfer).

pub mod codec;
pub mod netmodel;
pub mod stats;
pub mod world;

pub use netmodel::NetworkModel;
pub use stats::{CommStats, WorldStats};
pub use world::{RankCtx, World};
