//! `srsf-runtime`: a distributed-memory runtime with pluggable transports.
//!
//! **Two backends, one program (supersedes the DESIGN.md §5 substitution
//! note).** The paper runs on up to 1024 processes of NERSC Perlmutter
//! via Julia's `Distributed.jl`. This crate runs the same message-passing
//! programs on a single host over either of two backends, selected per
//! [`World`](world::World):
//!
//! * [`Transport::InProc`] — every rank is an OS thread; tagged byte
//!   messages move through in-memory channels. Fast, deterministic, the
//!   default for tests and benches.
//! * [`Transport::Tcp`] — every rank is a **real OS process**: rank 0
//!   spawns ranks `1..p` by re-executing the current binary with an
//!   `SRSF_RANK`/`SRSF_WORLD` environment, a rendezvous handshake wires a
//!   full socket mesh, and length-prefix-framed messages cross genuine
//!   process boundaries. Ranks share no memory, by construction of the
//!   operating system rather than by code discipline.
//!
//! Rank programs are written once against [`world::RankCtx`]
//! (send / recv / barrier) and run unchanged on both backends. The
//! per-rank counters — exactly the quantities the paper analyzes in §IV,
//! message counts and word volumes — are maintained above the transport,
//! so the counts are identical across backends and the §IV communication
//! bounds are a *measured property of real inter-process traffic*, not a
//! simulation artifact (the transport-equivalence tests in `srsf-core`
//! assert this bit-for-bit).
//!
//! * [`world`] — spawn a `p`-rank world, each rank running a closure
//!   against a [`world::RankCtx`] handle (send / recv / barrier).
//! * [`transport`] — the [`Transport`] backends: the in-process channel
//!   fabric and the TCP process launcher, wire format, and
//!   rendezvous/handshake protocol (documented on the module).
//! * [`tags`] — the shared message-tag scheme; lets receive-timeout
//!   panics name the algorithm step (level / phase / kind) they were
//!   waiting on.
//! * [`stats`] — per-rank communication and compute accounting, plus
//!   the wire encodings of the `srsf-trace` span reports and latency
//!   histograms (re-exported here), so traces and metrics cross process
//!   boundaries like any other typed rank result.
//! * [`netmodel`] — an α–β (latency–bandwidth) network cost model with
//!   intra-node and inter-node presets, used to reproduce the paper's
//!   "1 process per compute node" experiment (Table VII).
//! * [`codec`] — serialization of scalar matrices/vectors into byte
//!   payloads, with bounds-checked readers for frames that crossed a
//!   process boundary, and the [`codec::Wire`] trait that carries typed
//!   rank results back from worker processes.

#![forbid(unsafe_code)]

pub mod codec;
pub mod netmodel;
pub mod stats;
pub mod tags;
pub mod transport;
pub mod world;

pub use codec::{crc64, CodecError, Wire};
pub use netmodel::NetworkModel;
pub use srsf_trace::{Histogram, MetricsRegistry, MetricsSnapshot, Span, TraceReport};
pub use stats::{CommStats, WorldStats};
pub use transport::{
    is_spawned_worker, set_tcp_child_args, BaseTransport, FaultPlan, RecvError, Transport,
};
pub use world::{RankCtx, RankHealth, World, WorldHandle};
