//! The rank world: `p` simulated processes over OS threads.
//!
//! Each rank runs a user closure against a [`RankCtx`] that exposes the
//! message-passing surface (tagged point-to-point send/recv, barrier) and
//! the accounting hooks. Ranks share no mutable state: all coordination
//! goes through byte messages, so the algorithm code is structured exactly
//! as an MPI program would be — the property that makes this an honest
//! stand-in for the paper's multi-node runs (DESIGN.md §5).
//!
//! Deadlock discipline: the factorization's protocol is bulk-synchronous
//! (compute phases separated by barriers; every `recv` has a matching
//! `send` issued in the same round), and `recv` carries a generous timeout
//! so protocol bugs surface as panics rather than hangs.

use crate::codec::Bytes;
use crate::stats::{CommStats, WorldStats};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// A tagged point-to-point message.
#[derive(Clone, Debug)]
struct Msg {
    src: usize,
    tag: u32,
    payload: Bytes,
}

/// Per-rank handle: rank id, world size, channels, counters.
pub struct RankCtx {
    rank: usize,
    size: usize,
    senders: Vec<Sender<Msg>>,
    receiver: Receiver<Msg>,
    /// Messages received but not yet claimed by a matching `recv`.
    pending: Vec<Msg>,
    barrier: Arc<Barrier>,
    stats: CommStats,
    recv_timeout: Duration,
}

impl RankCtx {
    /// This rank's id in `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size `p`.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Send `payload` to rank `dst` under `tag`. Counts one message and
    /// `ceil(len/8)` words.
    pub fn send(&mut self, dst: usize, tag: u32, payload: Bytes) {
        assert!(dst < self.size, "rank {dst} out of range");
        assert_ne!(dst, self.rank, "self-sends are a protocol bug");
        self.stats.msgs_sent += 1;
        self.stats.words_sent += (payload.len() as u64).div_ceil(8);
        self.senders[dst]
            .send(Msg {
                src: self.rank,
                tag,
                payload,
            })
            .expect("receiver hung up");
    }

    /// Blocking receive of the next message from `src` with `tag`.
    /// Out-of-order messages are buffered, so rank pairs can interleave
    /// tags freely.
    pub fn recv(&mut self, src: usize, tag: u32) -> Bytes {
        if let Some(pos) = self
            .pending
            .iter()
            .position(|m| m.src == src && m.tag == tag)
        {
            return self.pending.swap_remove(pos).payload;
        }
        let start = Instant::now();
        loop {
            let m = self
                .receiver
                .recv_timeout(self.recv_timeout)
                .unwrap_or_else(|_| {
                    panic!(
                        "rank {} timed out waiting for (src={src}, tag={tag})",
                        self.rank
                    )
                });
            if m.src == src && m.tag == tag {
                self.stats.wait_s += start.elapsed().as_secs_f64();
                return m.payload;
            }
            self.pending.push(m);
        }
    }

    /// Synchronize all ranks.
    pub fn barrier(&mut self) {
        let start = Instant::now();
        self.barrier.wait();
        self.stats.wait_s += start.elapsed().as_secs_f64();
    }

    /// Run `f` and account its wall time as local computation.
    pub fn compute<R>(&mut self, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let r = f();
        self.stats.compute_s += start.elapsed().as_secs_f64();
        r
    }

    /// Current counters (snapshot).
    pub fn stats(&self) -> CommStats {
        self.stats
    }
}

/// A world of `p` ranks.
pub struct World {
    p: usize,
    recv_timeout: Duration,
}

impl World {
    /// Create a world with `p` ranks.
    pub fn new(p: usize) -> Self {
        assert!(p >= 1);
        Self {
            p,
            recv_timeout: Duration::from_secs(120),
        }
    }

    /// Override the receive timeout (tests use short ones).
    pub fn with_recv_timeout(mut self, t: Duration) -> Self {
        self.recv_timeout = t;
        self
    }

    /// Run `f(rank_ctx)` on every rank concurrently; returns the per-rank
    /// results and the communication statistics.
    pub fn run<R, F>(&self, f: F) -> (Vec<R>, WorldStats)
    where
        R: Send,
        F: Fn(&mut RankCtx) -> R + Send + Sync,
    {
        let p = self.p;
        let mut senders = Vec::with_capacity(p);
        let mut receivers = Vec::with_capacity(p);
        for _ in 0..p {
            let (tx, rx) = channel::<Msg>();
            senders.push(tx);
            receivers.push(rx);
        }
        let barrier = Arc::new(Barrier::new(p));
        let f = &f;
        let mut ctxs: Vec<RankCtx> = receivers
            .into_iter()
            .enumerate()
            .map(|(rank, receiver)| RankCtx {
                rank,
                size: p,
                senders: senders.clone(),
                receiver,
                pending: Vec::new(),
                barrier: barrier.clone(),
                stats: CommStats::default(),
                recv_timeout: self.recv_timeout,
            })
            .collect();
        drop(senders);

        let mut out: Vec<Option<(R, CommStats)>> = (0..p).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(p);
            for (rank, mut ctx) in ctxs.drain(..).enumerate() {
                handles.push((
                    rank,
                    scope.spawn(move || {
                        let r = f(&mut ctx);
                        (r, ctx.stats)
                    }),
                ));
            }
            for (rank, h) in handles {
                out[rank] = Some(h.join().expect("rank panicked"));
            }
        });

        let mut results = Vec::with_capacity(p);
        let mut stats = WorldStats::default();
        for slot in out {
            let (r, s) = slot.expect("missing rank result");
            results.push(r);
            stats.per_rank.push(s);
        }
        (results, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{ByteReader, ByteWriter};

    #[test]
    fn single_rank_world() {
        let (results, stats) = World::new(1).run(|ctx| {
            assert_eq!(ctx.rank(), 0);
            assert_eq!(ctx.size(), 1);
            ctx.compute(|| 7 * 6)
        });
        assert_eq!(results, vec![42]);
        assert_eq!(stats.per_rank.len(), 1);
        assert_eq!(stats.total_msgs(), 0);
        assert!(stats.per_rank[0].compute_s >= 0.0);
    }

    #[test]
    fn ring_pass() {
        let p = 4;
        let (results, stats) = World::new(p).run(|ctx| {
            let me = ctx.rank();
            let next = (me + 1) % ctx.size();
            let prev = (me + ctx.size() - 1) % ctx.size();
            let mut w = ByteWriter::new();
            w.put_u64(me as u64);
            ctx.send(next, 0, w.finish());
            let mut r = ByteReader::new(ctx.recv(prev, 0));
            r.get_u64()
        });
        assert_eq!(results, vec![3, 0, 1, 2]);
        assert_eq!(stats.total_msgs(), 4);
        // one u64 payload = 1 word each
        assert_eq!(stats.total_words(), 4);
    }

    #[test]
    fn out_of_order_tags_are_buffered() {
        let (results, _) = World::new(2).run(|ctx| {
            if ctx.rank() == 0 {
                // Send tag 2 first, then tag 1.
                let mut w = ByteWriter::new();
                w.put_u64(222);
                ctx.send(1, 2, w.finish());
                let mut w = ByteWriter::new();
                w.put_u64(111);
                ctx.send(1, 1, w.finish());
                0
            } else {
                // Receive in the opposite order.
                let a = ByteReader::new(ctx.recv(0, 1)).get_u64();
                let b = ByteReader::new(ctx.recv(0, 2)).get_u64();
                assert_eq!((a, b), (111, 222));
                1
            }
        });
        assert_eq!(results, vec![0, 1]);
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        let p = 4;
        World::new(p).run(|ctx| {
            counter.fetch_add(1, Ordering::SeqCst);
            ctx.barrier();
            // After the barrier every rank must see all increments.
            assert_eq!(counter.load(Ordering::SeqCst), p);
        });
    }

    #[test]
    fn word_counting_rounds_up() {
        let (_, stats) = World::new(2).run(|ctx| {
            if ctx.rank() == 0 {
                let mut w = ByteWriter::new();
                w.put_u64(1); // 8 bytes
                w.put_u64(2); // 16 bytes total
                ctx.send(1, 0, w.finish());
            } else {
                ctx.recv(0, 0);
            }
        });
        assert_eq!(stats.per_rank[0].msgs_sent, 1);
        assert_eq!(stats.per_rank[0].words_sent, 2);
        assert_eq!(stats.per_rank[1].msgs_sent, 0);
    }

    #[test]
    #[should_panic]
    fn recv_timeout_panics_rather_than_hangs() {
        World::new(2)
            .with_recv_timeout(Duration::from_millis(50))
            .run(|ctx| {
                if ctx.rank() == 1 {
                    let _ = ctx.recv(0, 9); // never sent
                }
            });
    }
}
