//! The rank world: `p` ranks over a pluggable message transport.
//!
//! Each rank runs a user closure against a [`RankCtx`] that exposes the
//! message-passing surface (tagged point-to-point send/recv, barrier) and
//! the accounting hooks. Ranks share no mutable state: all coordination
//! goes through byte messages, so the algorithm code is structured exactly
//! as an MPI program would be. Which fabric carries the bytes is chosen
//! with [`World::transport`]:
//!
//! * [`Transport::InProc`] (default) — ranks as scoped OS threads of this
//!   process over in-memory channels;
//! * [`Transport::Tcp`] — ranks as spawned OS processes over localhost
//!   sockets (see [`crate::transport`] for the launcher, handshake and
//!   wire format).
//!
//! The per-rank [`CommStats`] counters are maintained here, *above* the
//! transport, so the same program moves the same messages and words on
//! either backend — backend equivalence of the counters is structural,
//! and the paper's §IV communication bounds can be measured over real
//! inter-process traffic.
//!
//! Deadlock discipline: the factorization's protocol is bulk-synchronous
//! (compute phases separated by barriers; every `recv` has a matching
//! `send` issued in the same round), and `recv` carries a generous timeout
//! so protocol bugs surface as panics rather than hangs. The panic names
//! the waiting rank, the expected source, and the tag decoded back into
//! algorithm terms (level / phase / kind — see [`crate::tags`]).

use crate::codec::{Bytes, Wire};
use crate::stats::{CommStats, WorldStats};
use crate::tags;
use crate::transport::{self, RankTransport, Transport};
use std::time::{Duration, Instant};

/// Per-rank handle: rank id, world size, messaging, counters.
pub struct RankCtx {
    transport: Box<dyn RankTransport>,
    stats: CommStats,
    recv_timeout: Duration,
}

impl RankCtx {
    pub(crate) fn from_transport(
        transport: Box<dyn RankTransport>,
        recv_timeout: Duration,
    ) -> Self {
        Self {
            transport,
            stats: CommStats::default(),
            recv_timeout,
        }
    }

    pub(crate) fn into_transport(self) -> Box<dyn RankTransport> {
        self.transport
    }

    /// This rank's id in `0..size`.
    pub fn rank(&self) -> usize {
        self.transport.rank()
    }

    /// World size `p`.
    pub fn size(&self) -> usize {
        self.transport.size()
    }

    /// Send `payload` to rank `dst` under `tag`. Counts one message and
    /// `ceil(len/8)` words.
    pub fn send(&mut self, dst: usize, tag: u32, payload: Bytes) {
        assert!(dst < self.size(), "rank {dst} out of range");
        assert_ne!(dst, self.rank(), "self-sends are a protocol bug");
        assert!(
            !tags::is_control(tag),
            "tag {tag} is reserved for transport control frames"
        );
        self.stats.msgs_sent += 1;
        self.stats.words_sent += (payload.len() as u64).div_ceil(8);
        self.transport.send(dst, tag, payload);
    }

    /// Blocking receive of the next message from `src` with `tag`.
    /// Out-of-order messages are buffered, so rank pairs can interleave
    /// tags freely.
    ///
    /// # Panics
    ///
    /// Panics when no matching message arrives within the world's receive
    /// timeout (or the link to `src` dies), naming the waiting rank, the
    /// expected source and the decoded tag — on both backends.
    pub fn recv(&mut self, src: usize, tag: u32) -> Bytes {
        let start = Instant::now();
        match self.transport.recv_any_of(src, &[tag], self.recv_timeout) {
            Ok(m) => {
                self.stats.wait_s += start.elapsed().as_secs_f64();
                m.payload
            }
            Err(e) => panic!("{e}"),
        }
    }

    /// Synchronize all ranks.
    pub fn barrier(&mut self) {
        let start = Instant::now();
        if let Err(e) = self.transport.barrier(self.recv_timeout) {
            panic!("barrier failed: {e}");
        }
        self.stats.wait_s += start.elapsed().as_secs_f64();
    }

    /// Run `f` and account its wall time as local computation.
    pub fn compute<R>(&mut self, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let r = f();
        self.stats.compute_s += start.elapsed().as_secs_f64();
        r
    }

    /// Current counters (snapshot).
    pub fn stats(&self) -> CommStats {
        self.stats
    }
}

/// A world of `p` ranks.
pub struct World {
    p: usize,
    recv_timeout: Duration,
    transport: Transport,
}

impl World {
    /// Create a world with `p` ranks on the in-process backend.
    pub fn new(p: usize) -> Self {
        assert!(p >= 1);
        Self {
            p,
            recv_timeout: Duration::from_secs(120),
            transport: Transport::InProc,
        }
    }

    /// Select the message transport (default: [`Transport::InProc`]).
    pub fn transport(mut self, t: Transport) -> Self {
        self.transport = t;
        self
    }

    /// Override the receive timeout (tests use short ones). Honored by
    /// both backends.
    pub fn with_recv_timeout(mut self, t: Duration) -> Self {
        self.recv_timeout = t;
        self
    }

    /// World size `p`.
    pub fn size(&self) -> usize {
        self.p
    }

    pub(crate) fn recv_timeout(&self) -> Duration {
        self.recv_timeout
    }

    /// Run `f(rank_ctx)` on every rank concurrently; returns the per-rank
    /// results and the communication statistics.
    ///
    /// On [`Transport::Tcp`] this call spawns ranks `1..p` as real OS
    /// processes (re-executing the current binary; see
    /// [`crate::transport`]) and runs rank 0 in the calling process. In a
    /// spawned worker the call never returns: the worker runs its rank,
    /// reports its result to rank 0, and exits. `R: Wire` is what carries
    /// the workers' results across the process boundary; on the
    /// in-process backend it is not exercised.
    pub fn run<R, F>(&self, f: F) -> (Vec<R>, WorldStats)
    where
        R: Send + Wire,
        F: Fn(&mut RankCtx) -> R + Send + Sync,
    {
        match self.transport {
            Transport::InProc => self.run_inproc(f),
            Transport::Tcp => {
                let seq = transport::next_session_seq();
                if let Some(job) = transport::worker_job() {
                    if job.seq == seq {
                        transport::run_tcp_worker(job, self, f)
                    } else {
                        // A worker re-running main's prefix has hit a TCP
                        // session *earlier* than the one it was spawned
                        // for: recompute it in-process to reach the same
                        // program point with the same state.
                        self.run_inproc(f)
                    }
                } else if self.p == 1 {
                    // A 1-rank world exchanges no messages; there is no
                    // transport to exercise and nothing to spawn.
                    self.run_inproc(f)
                } else {
                    transport::run_tcp_parent(self, seq, f)
                }
            }
        }
    }

    fn run_inproc<R, F>(&self, f: F) -> (Vec<R>, WorldStats)
    where
        R: Send,
        F: Fn(&mut RankCtx) -> R + Send + Sync,
    {
        let p = self.p;
        let f = &f;
        let mut ctxs: Vec<RankCtx> = transport::inproc_world(p)
            .into_iter()
            .map(|t| RankCtx::from_transport(t, self.recv_timeout))
            .collect();

        let mut out: Vec<Option<(R, CommStats)>> = (0..p).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(p);
            for (rank, mut ctx) in ctxs.drain(..).enumerate() {
                handles.push((
                    rank,
                    scope.spawn(move || {
                        let r = f(&mut ctx);
                        (r, ctx.stats)
                    }),
                ));
            }
            for (rank, h) in handles {
                match h.join() {
                    Ok(v) => out[rank] = Some(v),
                    // Re-raise the rank's own panic payload so the
                    // diagnostic (e.g. a decoded recv timeout) survives,
                    // mirroring how the TCP backend relays worker panics.
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });

        let mut results = Vec::with_capacity(p);
        let mut stats = WorldStats::default();
        for slot in out {
            let (r, s) = slot.expect("missing rank result");
            results.push(r);
            stats.per_rank.push(s);
        }
        (results, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{ByteReader, ByteWriter};

    #[test]
    fn single_rank_world() {
        let (results, stats) = World::new(1).run(|ctx| {
            assert_eq!(ctx.rank(), 0);
            assert_eq!(ctx.size(), 1);
            ctx.compute(|| 7 * 6)
        });
        assert_eq!(results, vec![42]);
        assert_eq!(stats.per_rank.len(), 1);
        assert_eq!(stats.total_msgs(), 0);
        assert!(stats.per_rank[0].compute_s >= 0.0);
    }

    #[test]
    fn ring_pass() {
        let p = 4;
        let (results, stats) = World::new(p).run(|ctx| {
            let me = ctx.rank();
            let next = (me + 1) % ctx.size();
            let prev = (me + ctx.size() - 1) % ctx.size();
            let mut w = ByteWriter::new();
            w.put_u64(me as u64);
            ctx.send(next, 0, w.finish());
            let mut r = ByteReader::new(ctx.recv(prev, 0));
            r.get_u64()
        });
        assert_eq!(results, vec![3, 0, 1, 2]);
        assert_eq!(stats.total_msgs(), 4);
        // one u64 payload = 1 word each
        assert_eq!(stats.total_words(), 4);
    }

    #[test]
    fn out_of_order_tags_are_buffered() {
        let (results, _) = World::new(2).run(|ctx| {
            if ctx.rank() == 0 {
                // Send tag 2 first, then tag 1.
                let mut w = ByteWriter::new();
                w.put_u64(222);
                ctx.send(1, 2, w.finish());
                let mut w = ByteWriter::new();
                w.put_u64(111);
                ctx.send(1, 1, w.finish());
                0
            } else {
                // Receive in the opposite order.
                let a = ByteReader::new(ctx.recv(0, 1)).get_u64();
                let b = ByteReader::new(ctx.recv(0, 2)).get_u64();
                assert_eq!((a, b), (111, 222));
                1
            }
        });
        assert_eq!(results, vec![0, 1]);
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        let p = 4;
        World::new(p).run(|ctx| {
            counter.fetch_add(1, Ordering::SeqCst);
            ctx.barrier();
            // After the barrier every rank must see all increments.
            assert_eq!(counter.load(Ordering::SeqCst), p);
        });
    }

    #[test]
    fn word_counting_rounds_up() {
        let (_, stats) = World::new(2).run(|ctx| {
            if ctx.rank() == 0 {
                let mut w = ByteWriter::new();
                w.put_u64(1); // 8 bytes
                w.put_u64(2); // 16 bytes total
                ctx.send(1, 0, w.finish());
            } else {
                ctx.recv(0, 0);
            }
        });
        assert_eq!(stats.per_rank[0].msgs_sent, 1);
        assert_eq!(stats.per_rank[0].words_sent, 2);
        assert_eq!(stats.per_rank[1].msgs_sent, 0);
    }

    #[test]
    #[should_panic(expected = "timed out")]
    fn recv_timeout_panics_rather_than_hangs() {
        World::new(2)
            .with_recv_timeout(Duration::from_millis(50))
            .run(|ctx| {
                if ctx.rank() == 1 {
                    let _ = ctx.recv(0, 9); // never sent
                }
            });
    }

    #[test]
    fn timeout_panic_names_rank_src_and_decoded_tag() {
        let t = crate::tags::tag(3, 2, crate::tags::KIND_SOLVE_UP);
        let err = std::panic::catch_unwind(|| {
            World::new(2)
                .with_recv_timeout(Duration::from_millis(30))
                .run(|ctx| {
                    if ctx.rank() == 1 {
                        let _ = ctx.recv(0, t);
                    }
                });
        })
        .unwrap_err();
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "?".into());
        assert!(msg.contains("rank 1 timed out"), "{msg}");
        assert!(msg.contains("from rank 0"), "{msg}");
        assert!(msg.contains("level 3"), "{msg}");
        assert!(msg.contains("SOLVE_UP"), "{msg}");
    }

    #[test]
    #[should_panic(expected = "barrier failed")]
    fn barrier_with_a_missing_rank_times_out_instead_of_hanging() {
        World::new(2)
            .with_recv_timeout(Duration::from_millis(50))
            .run(|ctx| {
                // Rank 1 returns without arriving; rank 0 must not hang.
                if ctx.rank() == 0 {
                    ctx.barrier();
                }
            });
    }

    #[test]
    #[should_panic(expected = "reserved for transport control")]
    fn control_tags_are_rejected_on_the_data_path() {
        World::new(2).run(|ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, u32::MAX, Vec::new());
            }
        });
    }
}
