//! The rank world: `p` ranks over a pluggable message transport.
//!
//! Each rank runs a user closure against a [`RankCtx`] that exposes the
//! message-passing surface (tagged point-to-point send/recv, barrier) and
//! the accounting hooks. Ranks share no mutable state: all coordination
//! goes through byte messages, so the algorithm code is structured exactly
//! as an MPI program would be. Which fabric carries the bytes is chosen
//! with [`World::transport`]:
//!
//! * [`Transport::InProc`] (default) — ranks as scoped OS threads of this
//!   process over in-memory channels;
//! * [`Transport::Tcp`] — ranks as spawned OS processes over localhost
//!   sockets (see [`crate::transport`] for the launcher, handshake and
//!   wire format).
//!
//! The per-rank [`CommStats`] counters are maintained here, *above* the
//! transport, so the same program moves the same messages and words on
//! either backend — backend equivalence of the counters is structural,
//! and the paper's §IV communication bounds can be measured over real
//! inter-process traffic.
//!
//! Deadlock discipline: the factorization's protocol is bulk-synchronous
//! (compute phases separated by barriers; every `recv` has a matching
//! `send` issued in the same round), and `recv` carries a generous timeout
//! so protocol bugs surface as panics rather than hangs. The panic names
//! the waiting rank, the expected source, and the tag decoded back into
//! algorithm terms (level / phase / kind — see [`crate::tags`]).

use crate::codec::{Bytes, Wire};
use crate::stats::{CommStats, WorldStats};
use crate::tags;
use crate::transport::{self, BaseTransport, FaultPlan, RankTransport, RecvError, Transport};
// Sync primitives come through the srsf-verify shims: identical to
// `std::sync` in a normal build, schedule-explored under
// `--cfg srsf_model` (see crates/verify).
use srsf_verify::sync::atomic::{AtomicBool, Ordering};
use srsf_verify::sync::Arc;
use std::time::{Duration, Instant};

/// How finely the idle wait of a resident serve loop slices its receive,
/// so a cleared session-liveness flag is noticed promptly.
const IDLE_POLL: Duration = Duration::from_millis(100);

/// Per-rank handle: rank id, world size, messaging, counters.
pub struct RankCtx {
    transport: Box<dyn RankTransport>,
    stats: CommStats,
    recv_timeout: Duration,
    /// Cleared when the resident session this rank serves is torn down
    /// (in-process backend only; TCP ranks learn the same from link EOF).
    alive: Option<Arc<AtomicBool>>,
}

impl RankCtx {
    pub(crate) fn from_transport(
        transport: Box<dyn RankTransport>,
        recv_timeout: Duration,
    ) -> Self {
        Self {
            transport,
            stats: CommStats::default(),
            recv_timeout,
            alive: None,
        }
    }

    pub(crate) fn set_alive_flag(&mut self, flag: Arc<AtomicBool>) {
        self.alive = Some(flag);
    }

    /// Propagate this rank's death to its peers so their blocked receives
    /// fail fast; see [`RankTransport::announce_death`].
    pub(crate) fn announce_death(&mut self) {
        self.transport.announce_death();
    }

    pub(crate) fn into_transport(self) -> Box<dyn RankTransport> {
        self.transport
    }

    /// This rank's id in `0..size`.
    pub fn rank(&self) -> usize {
        self.transport.rank()
    }

    /// World size `p`.
    pub fn size(&self) -> usize {
        self.transport.size()
    }

    /// Send `payload` to rank `dst` under `tag`. Counts one message and
    /// `ceil(len/8)` words.
    pub fn send(&mut self, dst: usize, tag: u32, payload: Bytes) {
        assert!(dst < self.size(), "rank {dst} out of range");
        assert_ne!(dst, self.rank(), "self-sends are a protocol bug");
        assert!(
            !tags::is_control(tag),
            "tag {tag} is reserved for transport control frames"
        );
        assert!(
            !tags::is_serve(tag),
            "tag {tag} is a serve-envelope tag; use send_service"
        );
        self.stats.msgs_sent += 1;
        self.stats.words_sent += (payload.len() as u64).div_ceil(8);
        let mut sp = srsf_trace::span!(srsf_trace::Cat::Comm, "send {}", tags::describe(tag));
        sp.add_bytes(payload.len() as u64);
        self.transport.send(dst, tag, payload);
    }

    /// Send a resident-session service frame (command dispatch, RHS or
    /// solution slab, stats probe — a [`tags::is_serve`] tag), **without**
    /// touching the §IV data counters. Service frames are the serving
    /// API's envelope — the residency analogue of the old rank-0 record
    /// gather, and of the transports' own control frames — not Algorithm
    /// 2 traffic, so counting them would pollute the per-solve
    /// communication-bound measurements the counters exist for.
    pub fn send_service(&mut self, dst: usize, tag: u32, payload: Bytes) {
        assert!(dst < self.size(), "rank {dst} out of range");
        assert_ne!(dst, self.rank(), "self-sends are a protocol bug");
        assert!(tags::is_serve(tag), "send_service requires a serve tag");
        self.transport.send(dst, tag, payload);
    }

    /// Blocking wait for the next `(src, tag)` service frame during the
    /// *idle* phase of a resident serve loop. Idleness is not a protocol
    /// error — a resident rank may legitimately wait arbitrarily long for
    /// the next command — so no receive timeout applies; instead the wait
    /// is sliced so session teardown is noticed promptly. Returns `None`
    /// when the session is over without a frame: the rank-0 handle was
    /// dropped (liveness flag cleared on the in-process backend, link EOF
    /// on TCP), which a resident worker treats as an implicit shutdown.
    pub fn recv_service_idle(&mut self, src: usize, tag: u32) -> Option<Bytes> {
        loop {
            match self
                .transport
                .recv_any_of(src, &[tag, tags::TAG_SERVE_PING], IDLE_POLL)
            {
                Ok(m) if m.tag == tags::TAG_SERVE_PING => {
                    // Health probe ([`WorldHandle::health`]): echo the
                    // nonce back on the uncounted service path and keep
                    // waiting for a real command. Only the idle wait
                    // answers probes — a rank busy mid-solve reads as
                    // unresponsive, which is exactly what the probe asks.
                    self.transport.send(src, tags::TAG_SERVE_PONG, m.payload);
                    continue;
                }
                Ok(m) => return Some(m.payload),
                Err(RecvError::Timeout { .. }) => {
                    // Acquire pairs with the Release store in
                    // `WorldHandle::finish`/`Drop`: a cleared flag makes the
                    // driver's last frames visible to the drain below. No
                    // other state rides on this flag, so SeqCst adds nothing.
                    let torn_down = self
                        .alive
                        .as_ref()
                        .is_some_and(|flag| !flag.load(Ordering::Acquire));
                    if torn_down {
                        // Drain before giving up: a frame sent just before
                        // the flag cleared may land between our timeout and
                        // the flag check, and returning `None` here would
                        // silently drop it. The srsf-verify model of this
                        // loop (`shutdown_by_liveness_flag_terminates` in
                        // crates/verify/tests/models.rs) catches exactly
                        // this lost-command window when the drain is absent.
                        return match self.transport.recv_any_of(src, &[tag], Duration::ZERO) {
                            Ok(m) => Some(m.payload),
                            Err(_) => None,
                        };
                    }
                }
                // Rank 0 is gone (or died of a panic): session over.
                Err(_) => return None,
            }
        }
    }

    /// Blocking receive of the next message from `src` with `tag`.
    /// Out-of-order messages are buffered, so rank pairs can interleave
    /// tags freely.
    ///
    /// # Panics
    ///
    /// Panics when no matching message arrives within the world's receive
    /// timeout (or the link to `src` dies), naming the waiting rank, the
    /// expected source and the decoded tag — on both backends. Code that
    /// must degrade gracefully instead (the resident serve loop) uses
    /// [`RankCtx::try_recv`].
    pub fn recv(&mut self, src: usize, tag: u32) -> Bytes {
        match self.try_recv(src, tag) {
            Ok(payload) => payload,
            // INVARIANT: deliberate — a recv timeout or disconnect is unrecoverable
            // for the rank; the error names the offending tag via tags::describe
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`RankCtx::recv`]: a timeout or a dead link
    /// comes back as a typed [`RecvError`] instead of a panic, so a
    /// resident serve loop can convert a mid-solve rank failure into a
    /// typed error for the caller rather than poisoning the process.
    pub fn try_recv(&mut self, src: usize, tag: u32) -> Result<Bytes, RecvError> {
        let mut sp = srsf_trace::span!(srsf_trace::Cat::Comm, "recv {}", tags::describe(tag));
        let start = Instant::now();
        let m = self.transport.recv_any_of(src, &[tag], self.recv_timeout)?;
        self.stats.wait_s += start.elapsed().as_secs_f64();
        sp.add_bytes(m.payload.len() as u64);
        Ok(m.payload)
    }

    /// Synchronize all ranks.
    ///
    /// # Panics
    ///
    /// Panics when the barrier cannot complete within the receive timeout
    /// (a peer died or stalled); [`RankCtx::try_barrier`] is the fallible
    /// variant.
    pub fn barrier(&mut self) {
        if let Err(e) = self.try_barrier() {
            // INVARIANT: deliberate — a barrier failure means a peer died; the rank
            // cannot make progress
            panic!("barrier failed: {e}");
        }
    }

    /// Fallible variant of [`RankCtx::barrier`].
    pub fn try_barrier(&mut self) -> Result<(), RecvError> {
        let _sp = srsf_trace::span!(srsf_trace::Cat::Comm, "barrier");
        let start = Instant::now();
        self.transport.barrier(self.recv_timeout)?;
        self.stats.wait_s += start.elapsed().as_secs_f64();
        Ok(())
    }

    /// Opportunistically pump the transport without blocking: frames that
    /// already arrived move into the matching queue, so a compute phase
    /// can overlap with in-flight neighbor traffic and the eventual
    /// blocking [`recv`](Self::recv) finds its frame pre-buffered. Never
    /// waits and touches no counters — receives are counted (and their
    /// wait time accounted) only where they block.
    pub fn progress(&mut self) {
        self.transport.progress();
    }

    /// Run `f` and account its wall time as local computation.
    pub fn compute<R>(&mut self, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let r = f();
        self.stats.compute_s += start.elapsed().as_secs_f64();
        r
    }

    /// Current counters (snapshot).
    pub fn stats(&self) -> CommStats {
        self.stats
    }
}

/// A world of `p` ranks.
pub struct World {
    p: usize,
    recv_timeout: Duration,
    transport: Transport,
}

impl World {
    /// Create a world with `p` ranks on the in-process backend.
    pub fn new(p: usize) -> Self {
        assert!(p >= 1);
        Self {
            p,
            recv_timeout: Duration::from_secs(120),
            transport: Transport::InProc,
        }
    }

    /// Select the message transport (default: [`Transport::InProc`]).
    pub fn transport(mut self, t: Transport) -> Self {
        self.transport = t;
        self
    }

    /// Override the receive timeout (tests use short ones). Honored by
    /// both backends.
    pub fn with_recv_timeout(mut self, t: Duration) -> Self {
        self.recv_timeout = t;
        self
    }

    /// World size `p`.
    pub fn size(&self) -> usize {
        self.p
    }

    pub(crate) fn recv_timeout(&self) -> Duration {
        self.recv_timeout
    }

    /// The fault schedule attached to this world's transport selection,
    /// if any (see [`Transport::Faulty`]).
    pub(crate) fn fault_plan(&self) -> Option<FaultPlan> {
        self.transport.fault_plan()
    }

    /// Run `f(rank_ctx)` on every rank concurrently; returns the per-rank
    /// results and the communication statistics.
    ///
    /// On [`Transport::Tcp`] this call spawns ranks `1..p` as real OS
    /// processes (re-executing the current binary; see
    /// [`crate::transport`]) and runs rank 0 in the calling process. In a
    /// spawned worker the call never returns: the worker runs its rank,
    /// reports its result to rank 0, and exits. `R: Wire` is what carries
    /// the workers' results across the process boundary; on the
    /// in-process backend it is not exercised.
    pub fn run<R, F>(&self, f: F) -> (Vec<R>, WorldStats)
    where
        R: Send + Wire,
        F: Fn(&mut RankCtx) -> R + Send + Sync,
    {
        match self.transport.base() {
            BaseTransport::InProc => self.run_inproc(f),
            BaseTransport::Tcp => {
                let seq = transport::next_session_seq();
                if let Some(job) = transport::worker_job() {
                    if job.seq == seq {
                        transport::run_tcp_worker(job, self, f)
                    } else {
                        // A worker re-running main's prefix has hit a TCP
                        // session *earlier* than the one it was spawned
                        // for: recompute it in-process to reach the same
                        // program point with the same state.
                        self.run_inproc(f)
                    }
                } else if self.p == 1 {
                    // A 1-rank world exchanges no messages; there is no
                    // transport to exercise and nothing to spawn.
                    self.run_inproc(f)
                } else {
                    transport::run_tcp_parent(self, seq, f)
                }
            }
        }
    }

    fn run_inproc<R, F>(&self, f: F) -> (Vec<R>, WorldStats)
    where
        R: Send,
        F: Fn(&mut RankCtx) -> R + Send + Sync,
    {
        let p = self.p;
        let f = &f;
        let plan = self.fault_plan();
        let mut ctxs: Vec<RankCtx> = transport::inproc_world(p)
            .into_iter()
            .map(|t| RankCtx::from_transport(transport::maybe_faulty(t, plan), self.recv_timeout))
            .collect();

        let mut out: Vec<Option<(R, CommStats)>> = (0..p).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(p);
            for (rank, mut ctx) in ctxs.drain(..).enumerate() {
                handles.push((
                    rank,
                    scope.spawn(move || {
                        // Tag this thread for the tracing layer so its
                        // spans collect under the rank it executes.
                        srsf_trace::enter_rank(rank);
                        let out =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut ctx)));
                        match out {
                            Ok(r) => {
                                let s = ctx.stats();
                                (r, s)
                            }
                            Err(payload) => {
                                // Fail peers fast: a dead thread closes no
                                // channels, so push explicit EOFs (and
                                // break the shared barrier) first.
                                ctx.announce_death();
                                std::panic::resume_unwind(payload)
                            }
                        }
                    }),
                ));
            }
            for (rank, h) in handles {
                match h.join() {
                    Ok(v) => out[rank] = Some(v),
                    // Re-raise the rank's own panic payload so the
                    // diagnostic (e.g. a decoded recv timeout) survives,
                    // mirroring how the TCP backend relays worker panics.
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });

        let mut results = Vec::with_capacity(p);
        let mut stats = WorldStats::default();
        for slot in out {
            // INVARIANT: every rank thread fills its slot before joining; an empty
            // slot implies a panicked rank, which already propagated via join
            let (r, s) = slot.expect("missing rank result");
            results.push(r);
            stats.per_rank.push(s);
        }
        (results, stats)
    }

    /// Run a **resident** session: `factor` runs once on every rank (the
    /// expensive build phase, free to borrow caller state); its per-rank
    /// output `S` then stays on the rank that produced it, where `serve`
    /// keeps ranks `1..p` alive — typically a request/response command
    /// loop built from [`RankCtx::recv_service_idle`] — until the session
    /// is shut down. Rank 0 returns to the caller as soon as *its*
    /// `factor` completes, yielding its own `S` plus a live
    /// [`WorldHandle`] through which the caller drives further protocol
    /// rounds against the resident ranks.
    ///
    /// Backend mapping:
    ///
    /// * [`Transport::InProc`] — `factor` runs on scoped rank threads
    ///   (borrows allowed); each rank's `S` then moves into a fresh
    ///   detached serve thread over a new channel fabric. `serve` must
    ///   therefore own its captures (`'static`).
    /// * [`Transport::Tcp`] — one continuous session: worker processes run
    ///   `factor` then `serve` back to back and only exit (reporting their
    ///   final counters) when `serve` returns; the handle keeps rank 0's
    ///   sockets and the child guard alive.
    ///
    /// Shutdown is cooperative and tag-based: the caller's protocol makes
    /// every `serve` return (e.g. a broadcast shutdown command), then
    /// [`WorldHandle::finish`] joins/collects the workers. Dropping the
    /// handle without that round is safe — workers observe the teardown
    /// (liveness flag / link EOF) from their idle wait and exit cleanly.
    pub fn run_resident<S, F, G>(&self, factor: F, serve: G) -> (S, WorldHandle)
    where
        S: Send + 'static,
        F: Fn(&mut RankCtx) -> S + Send + Sync,
        G: Fn(&mut RankCtx, S) + Send + Sync + 'static,
    {
        match self.transport.base() {
            BaseTransport::InProc => self.resident_inproc(factor, Arc::new(serve)),
            BaseTransport::Tcp => {
                let seq = transport::next_session_seq();
                if let Some(job) = transport::worker_job() {
                    if job.seq == seq {
                        // This process is a spawned worker of this very
                        // session: run factor + serve to completion and
                        // exit inside the call (never returns).
                        transport::run_tcp_worker(job, self, move |ctx: &mut RankCtx| {
                            let s = factor(ctx);
                            serve(ctx, s);
                        })
                    } else {
                        // A worker replaying an *earlier* resident session
                        // of main's prefix: recompute it in-process so the
                        // prefix reaches the same program point with the
                        // same state (the handle's solves are
                        // backend-invariant by construction).
                        self.resident_inproc(factor, Arc::new(serve))
                    }
                } else if self.p == 1 {
                    self.resident_inproc(factor, Arc::new(serve))
                } else {
                    self.resident_tcp_parent(seq, factor)
                }
            }
        }
    }

    fn resident_inproc<S, F, G>(&self, factor: F, serve: Arc<G>) -> (S, WorldHandle)
    where
        S: Send + 'static,
        F: Fn(&mut RankCtx) -> S + Send + Sync,
        G: Fn(&mut RankCtx, S) + Send + Sync + 'static,
    {
        let p = self.p;
        // Phase 1: the build runs on scoped rank threads exactly like a
        // normal `run` (the closure may borrow caller state).
        let (mut states, _) = self.run_inproc(factor);
        let s0 = states.remove(0);
        // Phase 2: a fresh channel fabric whose worker ranks own their
        // resident state. The fabric swap is invisible to the protocol —
        // the serve loop's first frame is the first frame on it.
        let plan = self.fault_plan();
        let mut transports = transport::inproc_world(p);
        let alive = Arc::new(AtomicBool::new(true));
        // The caller's thread becomes rank 0 for the serve session; tag it
        // so its solve-sweep spans collect under rank 0.
        srsf_trace::enter_rank(0);
        let mut ctx0 = RankCtx::from_transport(
            transport::maybe_faulty(transports.remove(0), plan),
            self.recv_timeout,
        );
        ctx0.set_alive_flag(alive.clone());
        let mut joins = Vec::with_capacity(p - 1);
        for (i, (t, s)) in transports.into_iter().zip(states).enumerate() {
            let serve = serve.clone();
            let timeout = self.recv_timeout;
            let alive = alive.clone();
            let join = std::thread::Builder::new()
                .name(format!("srsf-serve-{}", i + 1))
                .spawn(move || {
                    srsf_trace::enter_rank(i + 1);
                    let mut ctx =
                        RankCtx::from_transport(transport::maybe_faulty(t, plan), timeout);
                    ctx.set_alive_flag(alive);
                    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        serve(&mut ctx, s)
                    }));
                    match out {
                        Ok(()) => ctx.stats(),
                        Err(payload) => {
                            // Fail peers fast: a dead thread closes no
                            // channels, so push explicit EOFs first.
                            ctx.announce_death();
                            std::panic::resume_unwind(payload)
                        }
                    }
                })
                // INVARIANT: OS-thread spawn fails only on resource exhaustion; the
                // resident world cannot exist without its serve threads
                .expect("spawn resident serve thread");
            joins.push(join);
        }
        (
            s0,
            WorldHandle {
                ctx: Some(ctx0),
                backend: ResidentBackend::InProc { joins },
                alive,
                p,
                probe_nonce: 0,
                metrics: Arc::new(srsf_trace::MetricsRegistry::new()),
            },
        )
    }

    fn resident_tcp_parent<S, F>(&self, seq: u64, factor: F) -> (S, WorldHandle)
    where
        F: Fn(&mut RankCtx) -> S + Send + Sync,
    {
        let (transport, children) = transport::tcp_parent_setup(self, seq);
        srsf_trace::enter_rank(0);
        let mut ctx = RankCtx::from_transport(transport, self.recv_timeout);
        let s0 = factor(&mut ctx);
        (
            s0,
            WorldHandle {
                ctx: Some(ctx),
                backend: ResidentBackend::Tcp { children },
                alive: Arc::new(AtomicBool::new(true)),
                p: self.p,
                probe_nonce: 0,
                metrics: Arc::new(srsf_trace::MetricsRegistry::new()),
            },
        )
    }
}

enum ResidentBackend {
    /// Detached serve threads over in-memory channels.
    InProc {
        joins: Vec<std::thread::JoinHandle<CommStats>>,
    },
    /// Worker processes held by the kill-on-unwind guard.
    Tcp { children: transport::ChildGuard },
}

/// A live resident rank world, returned by [`World::run_resident`]: rank
/// 0's context plus the worker ranks parked in their serve loops.
///
/// The handle is the session's lifetime. Drive protocol rounds through
/// [`WorldHandle::ctx`]; end the session by making every worker's serve
/// closure return (the caller's shutdown round) and then calling
/// [`WorldHandle::finish`] to join the workers and collect their final
/// counters. Dropping the handle instead is safe on both backends:
/// teardown is observed from the workers' idle wait (liveness flag /
/// link EOF) and they exit cleanly; TCP children that still fail to exit
/// within a short grace period are killed by the guard.
pub struct WorldHandle {
    ctx: Option<RankCtx>,
    backend: ResidentBackend,
    alive: Arc<AtomicBool>,
    p: usize,
    /// Monotonic nonce for health probes, so a stale PONG from an earlier
    /// (timed-out) probe is never mistaken for the current reply.
    probe_nonce: u64,
    /// The session's serve-metrics registry ([`WorldHandle::metrics`]).
    metrics: Arc<srsf_trace::MetricsRegistry>,
}

/// Liveness of one resident rank, as reported by [`WorldHandle::health`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RankHealth {
    /// The rank answered the probe from its idle wait.
    Alive,
    /// The rank's process/thread is running but did not answer within the
    /// probe timeout — typically busy inside a solve phase.
    Unresponsive,
    /// The rank's serve loop has exited (cleanly or by crash).
    Dead,
}

impl WorldHandle {
    /// Rank 0's live context, for issuing protocol rounds against the
    /// resident ranks.
    pub fn ctx(&mut self) -> &mut RankCtx {
        self.ctx
            .as_mut()
            // INVARIANT: documented — calling ctx() after finish() is a driver-side
            // usage bug, not a runtime condition
            .expect("resident session already finished")
    }

    /// World size `p`.
    pub fn size(&self) -> usize {
        self.p
    }

    /// The session's serve-metrics registry: per-solve latency
    /// histograms, served/failed counters, and per-rank resident-memory
    /// gauges (see `srsf_trace::MetricsRegistry`). The serving layer
    /// above (the resident solve service) feeds it; callers snapshot it
    /// at any time. Shared — clones observe the same registry.
    pub fn metrics(&self) -> Arc<srsf_trace::MetricsRegistry> {
        self.metrics.clone()
    }

    /// `true` while the worker for `rank` is still running its serve
    /// loop — lets a shutdown round skip ranks that already exited (e.g.
    /// after reporting a factorization error) instead of writing to a
    /// dead link.
    pub fn worker_live(&mut self, rank: usize) -> bool {
        assert!(rank >= 1 && rank < self.p, "rank {rank} is not a worker");
        match &mut self.backend {
            ResidentBackend::InProc { joins } => !joins[rank - 1].is_finished(),
            ResidentBackend::Tcp { children } => children.exited(rank).is_none(),
        }
    }

    /// Probe the liveness of every rank: sends each live worker a PING on
    /// the uncounted service path and waits up to `timeout` for the
    /// matching PONG (nonce-checked, so a stale reply from an earlier
    /// probe never satisfies a later one). Index 0 is rank 0 — the caller
    /// itself — and always [`RankHealth::Alive`].
    ///
    /// A rank parked in its idle wait answers within one poll slice; a
    /// rank busy mid-solve reads as [`RankHealth::Unresponsive`]; a rank
    /// whose serve loop exited (clean shutdown or crash) reads as
    /// [`RankHealth::Dead`]. Probes ride the service envelope and touch
    /// no §IV data counters.
    pub fn health(&mut self, timeout: Duration) -> Vec<RankHealth> {
        let mut out = Vec::with_capacity(self.p);
        out.push(RankHealth::Alive);
        for rank in 1..self.p {
            out.push(self.probe_rank(rank, timeout));
        }
        out
    }

    fn probe_rank(&mut self, rank: usize, timeout: Duration) -> RankHealth {
        if !self.worker_live(rank) {
            return RankHealth::Dead;
        }
        self.probe_nonce += 1;
        let nonce = self.probe_nonce.to_le_bytes();
        let ctx = self.ctx();
        ctx.send_service(rank, tags::TAG_SERVE_PING, nonce.to_vec());
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            match ctx
                .transport
                .recv_any_of(rank, &[tags::TAG_SERVE_PONG], remaining)
            {
                Ok(m) if m.payload == nonce => return RankHealth::Alive,
                // A stale PONG from an earlier probe that timed out while
                // the rank was busy: discard and keep waiting.
                Ok(_) => continue,
                Err(RecvError::Timeout { .. }) => return RankHealth::Unresponsive,
                Err(_) => return RankHealth::Dead,
            }
        }
    }

    /// Join every worker after the caller's shutdown round has made their
    /// serve closures return; yields the cumulative per-rank counters
    /// (rank 0's from its live context; workers' as reported at exit).
    /// Worker panics propagate. On TCP the wait is liveness-aware: a
    /// worker process that died without reporting fails fast with its
    /// exit status rather than hanging.
    pub fn finish(mut self) -> WorldStats {
        // Release pairs with the Acquire load in `recv_service_idle`:
        // everything rank 0 sent before this store is visible to a worker
        // that observes the cleared flag (and drains before exiting).
        self.alive.store(false, Ordering::Release);
        // INVARIANT: documented — finish() consumes the session; a second call
        // cannot compile, so ctx is always present here
        let ctx = self.ctx.take().expect("resident session already finished");
        let stats0 = ctx.stats();
        let mut per_rank = vec![CommStats::default(); self.p];
        per_rank[0] = stats0;
        match &mut self.backend {
            ResidentBackend::InProc { joins } => {
                // Close rank 0's side first so any worker still idling
                // observes the teardown instead of waiting on a command.
                drop(ctx);
                for (i, join) in joins.drain(..).enumerate() {
                    match join.join() {
                        Ok(s) => per_rank[i + 1] = s,
                        Err(payload) => std::panic::resume_unwind(payload),
                    }
                }
            }
            ResidentBackend::Tcp { children } => {
                let mut transport = ctx.into_transport();
                let (_, stats) =
                    transport::collect_tcp_results::<()>(&mut *transport, children, self.p);
                for (i, s) in stats.into_iter().enumerate() {
                    per_rank[i + 1] = s;
                }
            }
        }
        WorldStats { per_rank }
    }

    /// Quiet teardown for a *degraded* world — one already known to have
    /// lost a rank. Like [`WorldHandle::finish`], but a worker's panic
    /// payload is swallowed instead of re-raised and a TCP child that
    /// died without reporting is reaped instead of failing fast, so the
    /// caller can surface the failure once (typed) rather than again at
    /// teardown. Returns rank 0's counters; workers that exited
    /// abnormally report zeros.
    pub fn reap(mut self) -> WorldStats {
        // Release pairs with the Acquire load in `recv_service_idle`,
        // exactly as in `finish`.
        self.alive.store(false, Ordering::Release);
        // INVARIANT: documented — reap() consumes the session; a second call
        // cannot compile, so ctx is always present here
        let ctx = self.ctx.take().expect("resident session already finished");
        let stats0 = ctx.stats();
        let mut per_rank = vec![CommStats::default(); self.p];
        per_rank[0] = stats0;
        // Close rank 0's side: survivors still blocked on the dead rank
        // observe EOF / the cleared flag within their bounded waits.
        drop(ctx);
        match &mut self.backend {
            ResidentBackend::InProc { joins } => {
                for (i, join) in joins.drain(..).enumerate() {
                    if let Ok(s) = join.join() {
                        per_rank[i + 1] = s;
                    }
                }
            }
            ResidentBackend::Tcp { children } => {
                children.wait_graceful(Duration::from_secs(5));
            }
        }
        WorldStats { per_rank }
    }
}

impl Drop for WorldHandle {
    fn drop(&mut self) {
        // Release for the same reason as in `finish` above.
        self.alive.store(false, Ordering::Release);
        // Closing rank 0's transport EOFs the TCP links / drops the
        // channel senders; workers notice from their idle wait and exit.
        drop(self.ctx.take());
        if let ResidentBackend::Tcp { children } = &mut self.backend {
            children.wait_graceful(Duration::from_secs(5));
        }
        // InProc serve threads are detached; they exit on the cleared
        // flag without anything to join (a join here could block a drop
        // behind a worker that is mid-solve).
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{ByteReader, ByteWriter};

    #[test]
    fn single_rank_world() {
        let (results, stats) = World::new(1).run(|ctx| {
            assert_eq!(ctx.rank(), 0);
            assert_eq!(ctx.size(), 1);
            ctx.compute(|| 7 * 6)
        });
        assert_eq!(results, vec![42]);
        assert_eq!(stats.per_rank.len(), 1);
        assert_eq!(stats.total_msgs(), 0);
        assert!(stats.per_rank[0].compute_s >= 0.0);
    }

    #[test]
    fn ring_pass() {
        let p = 4;
        let (results, stats) = World::new(p).run(|ctx| {
            let me = ctx.rank();
            let next = (me + 1) % ctx.size();
            let prev = (me + ctx.size() - 1) % ctx.size();
            let mut w = ByteWriter::new();
            w.put_u64(me as u64);
            ctx.send(next, 0, w.finish());
            let mut r = ByteReader::new(ctx.recv(prev, 0));
            r.get_u64()
        });
        assert_eq!(results, vec![3, 0, 1, 2]);
        assert_eq!(stats.total_msgs(), 4);
        // one u64 payload = 1 word each
        assert_eq!(stats.total_words(), 4);
    }

    #[test]
    fn out_of_order_tags_are_buffered() {
        let (results, _) = World::new(2).run(|ctx| {
            if ctx.rank() == 0 {
                // Send tag 2 first, then tag 1.
                let mut w = ByteWriter::new();
                w.put_u64(222);
                ctx.send(1, 2, w.finish());
                let mut w = ByteWriter::new();
                w.put_u64(111);
                ctx.send(1, 1, w.finish());
                0
            } else {
                // Receive in the opposite order.
                let a = ByteReader::new(ctx.recv(0, 1)).get_u64();
                let b = ByteReader::new(ctx.recv(0, 2)).get_u64();
                assert_eq!((a, b), (111, 222));
                1
            }
        });
        assert_eq!(results, vec![0, 1]);
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        let p = 4;
        World::new(p).run(|ctx| {
            counter.fetch_add(1, Ordering::SeqCst);
            ctx.barrier();
            // After the barrier every rank must see all increments.
            assert_eq!(counter.load(Ordering::SeqCst), p);
        });
    }

    #[test]
    fn word_counting_rounds_up() {
        let (_, stats) = World::new(2).run(|ctx| {
            if ctx.rank() == 0 {
                let mut w = ByteWriter::new();
                w.put_u64(1); // 8 bytes
                w.put_u64(2); // 16 bytes total
                ctx.send(1, 0, w.finish());
            } else {
                ctx.recv(0, 0);
            }
        });
        assert_eq!(stats.per_rank[0].msgs_sent, 1);
        assert_eq!(stats.per_rank[0].words_sent, 2);
        assert_eq!(stats.per_rank[1].msgs_sent, 0);
    }

    #[test]
    #[should_panic(expected = "timed out")]
    fn recv_timeout_panics_rather_than_hangs() {
        World::new(2)
            .with_recv_timeout(Duration::from_millis(50))
            .run(|ctx| {
                if ctx.rank() == 1 {
                    let _ = ctx.recv(0, 9); // never sent
                }
            });
    }

    #[test]
    fn timeout_panic_names_rank_src_and_decoded_tag() {
        let t = crate::tags::tag(3, 2, crate::tags::KIND_SOLVE_UP);
        let err = std::panic::catch_unwind(|| {
            World::new(2)
                .with_recv_timeout(Duration::from_millis(30))
                .run(|ctx| {
                    if ctx.rank() == 1 {
                        let _ = ctx.recv(0, t);
                    }
                });
        })
        .unwrap_err();
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "?".into());
        assert!(msg.contains("rank 1 timed out"), "{msg}");
        assert!(msg.contains("from rank 0"), "{msg}");
        assert!(msg.contains("level 3"), "{msg}");
        assert!(msg.contains("SOLVE_UP"), "{msg}");
    }

    #[test]
    #[should_panic(expected = "barrier failed")]
    fn barrier_with_a_missing_rank_times_out_instead_of_hanging() {
        World::new(2)
            .with_recv_timeout(Duration::from_millis(50))
            .run(|ctx| {
                // Rank 1 returns without arriving; rank 0 must not hang.
                if ctx.rank() == 0 {
                    ctx.barrier();
                }
            });
    }

    #[test]
    #[should_panic(expected = "reserved for transport control")]
    fn control_tags_are_rejected_on_the_data_path() {
        World::new(2).run(|ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, u32::MAX, Vec::new());
            }
        });
    }

    #[test]
    #[should_panic(expected = "use send_service")]
    fn serve_tags_are_rejected_on_the_counted_path() {
        World::new(2).run(|ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, crate::tags::TAG_SERVE_CMD, Vec::new());
            }
        });
    }

    /// A worker-side echo loop: empty command = shutdown, otherwise the
    /// payload comes back with this rank's id appended.
    fn echo_serve(ctx: &mut RankCtx, base: u64) {
        while let Some(cmd) = ctx.recv_service_idle(0, crate::tags::TAG_SERVE_CMD) {
            if cmd.is_empty() {
                break;
            }
            let mut w = ByteWriter::new();
            w.put_u64(ByteReader::new(cmd).get_u64() + base + ctx.rank() as u64);
            ctx.send_service(0, crate::tags::TAG_SERVE_SOL, w.finish());
        }
    }

    #[test]
    fn resident_world_serves_repeated_rounds_then_shuts_down() {
        let p = 4;
        let (s0, mut handle) =
            World::new(p).run_resident(|ctx| ctx.rank() as u64 + 100, echo_serve);
        assert_eq!(s0, 100, "rank 0 keeps its own factor output");
        for round in 0..3u64 {
            for dst in 1..p {
                let mut w = ByteWriter::new();
                w.put_u64(round);
                handle
                    .ctx()
                    .send_service(dst, crate::tags::TAG_SERVE_CMD, w.finish());
            }
            for src in 1..p {
                let reply = handle.ctx().recv(src, crate::tags::TAG_SERVE_SOL);
                let v = ByteReader::new(reply).get_u64();
                assert_eq!(v, round + 100 + src as u64 + src as u64);
            }
        }
        // Service-envelope traffic must not touch the data counters.
        assert_eq!(handle.ctx().stats().msgs_sent, 0);
        for dst in 1..p {
            assert!(handle.worker_live(dst), "rank {dst} died early");
            handle
                .ctx()
                .send_service(dst, crate::tags::TAG_SERVE_CMD, Vec::new());
        }
        let stats = handle.finish();
        assert_eq!(stats.per_rank.len(), p);
        assert_eq!(stats.total_msgs(), 0);
    }

    #[test]
    fn dropped_handle_leaves_no_live_workers() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let exits = Arc::new(AtomicUsize::new(0));
        let p = 4;
        let (_, handle) = {
            let exits = exits.clone();
            World::new(p).run_resident(
                |ctx| ctx.rank(),
                move |ctx, _| {
                    echo_serve(ctx, 0);
                    exits.fetch_add(1, Ordering::SeqCst);
                },
            )
        };
        // No shutdown round: dropping the handle is the teardown.
        drop(handle);
        let deadline = Instant::now() + Duration::from_secs(5);
        while exits.load(Ordering::SeqCst) < p - 1 {
            assert!(
                Instant::now() < deadline,
                "workers still alive after the handle was dropped"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Several rounds of an all-pairs exchange; returns the sum of
    /// everything received. Enough traffic that drop/dup/delay plans all
    /// actually fire.
    fn chatter(ctx: &mut RankCtx) -> u64 {
        let me = ctx.rank();
        let p = ctx.size();
        let mut acc = 0u64;
        for round in 0..6u64 {
            for dst in 0..p {
                if dst != me {
                    let mut w = ByteWriter::new();
                    w.put_u64(round * 100 + me as u64);
                    ctx.send(dst, round as u32 * 8, w.finish());
                }
            }
            for src in 0..p {
                if src != me {
                    acc += ByteReader::new(ctx.recv(src, round as u32 * 8)).get_u64();
                }
            }
            ctx.barrier();
        }
        acc
    }

    #[test]
    fn recoverable_fault_plan_is_bit_identical_to_the_clean_run() {
        let plan = crate::transport::FaultPlan::seeded(42)
            .with_max_delay_us(150)
            .with_drop_permille(250)
            .with_dup_permille(250);
        let (clean, clean_stats) = World::new(4).run(chatter);
        let (faulty, faulty_stats) = World::new(4)
            .transport(Transport::InProc.with_faults(plan))
            .run(chatter);
        assert_eq!(clean, faulty, "recoverable faults changed a result");
        for (c, f) in clean_stats.per_rank.iter().zip(&faulty_stats.per_rank) {
            assert_eq!(c.msgs_sent, f.msgs_sent, "message counters diverged");
            assert_eq!(c.words_sent, f.words_sent, "word counters diverged");
        }
    }

    #[test]
    fn injected_crash_fails_the_barrier_naming_the_dead_rank() {
        let plan = crate::transport::FaultPlan::seeded(7).with_crash(1, 1);
        let err = std::panic::catch_unwind(|| {
            World::new(2)
                .with_recv_timeout(Duration::from_secs(10))
                .transport(Transport::InProc.with_faults(plan))
                .run(|ctx| ctx.barrier());
        })
        .unwrap_err();
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "?".into());
        assert!(
            msg.contains("lost rank 1") || msg.contains("rank 1 crashed at barrier 1"),
            "{msg}"
        );
    }

    #[test]
    fn link_cut_surfaces_as_a_bounded_timeout_not_a_hang() {
        let plan = crate::transport::FaultPlan::seeded(3).with_cut(0, 1, 0);
        let start = Instant::now();
        let err = std::panic::catch_unwind(|| {
            World::new(2)
                .with_recv_timeout(Duration::from_millis(200))
                .transport(Transport::InProc.with_faults(plan))
                .run(|ctx| {
                    if ctx.rank() == 0 {
                        let mut w = ByteWriter::new();
                        w.put_u64(1);
                        ctx.send(1, 0, w.finish());
                    } else {
                        ctx.recv(0, 0);
                    }
                });
        })
        .unwrap_err();
        assert!(start.elapsed() < Duration::from_secs(10), "cut hung");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "?".into());
        assert!(msg.contains("timed out"), "{msg}");
    }

    #[test]
    fn health_probes_report_alive_then_dead() {
        let p = 3;
        let (_, mut handle) = World::new(p).run_resident(|ctx| ctx.rank() as u64, echo_serve);
        let h = handle.health(Duration::from_secs(10));
        assert_eq!(h, vec![RankHealth::Alive; p]);
        // Probes ride the service envelope: no data-counter traffic.
        assert_eq!(handle.ctx().stats().msgs_sent, 0);
        // Shut one worker down; its health must converge to Dead.
        handle
            .ctx()
            .send_service(1, crate::tags::TAG_SERVE_CMD, Vec::new());
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let h = handle.health(Duration::from_millis(100));
            if h[1] == RankHealth::Dead {
                assert_eq!(h[2], RankHealth::Alive, "rank 2 should still serve");
                break;
            }
            assert!(Instant::now() < deadline, "rank 1 never read as dead");
        }
    }

    #[test]
    fn dead_resident_rank_fails_the_next_round_instead_of_hanging() {
        let p = 2;
        let (_, mut handle) = World::new(p)
            .with_recv_timeout(Duration::from_secs(5))
            .run_resident(
                |ctx| ctx.rank(),
                |_ctx, _| panic!("worker died before serving"),
            );
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // The worker is gone; the receive must fail fast with a
            // link-down diagnostic, not wait out a timeout.
            let start = Instant::now();
            let _ = handle.ctx().recv(1, crate::tags::TAG_SERVE_SOL);
            start.elapsed()
        }))
        .unwrap_err();
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "?".into());
        assert!(msg.contains("lost rank 1"), "{msg}");
    }
}
