//! The shared message-tag scheme of the distributed factorization.
//!
//! Both transport backends carry `(src, tag, payload)` frames; the tag is
//! how a receiver matches a frame to the protocol step that expects it.
//! The distributed driver packs three coordinates into one `u32`:
//!
//! ```text
//! tag = level * 64 + phase * 8 + kind        (phase < 8, kind < 8)
//! ```
//!
//! * `level` — quad-tree level the step belongs to;
//! * `phase` — `0` = interior elimination, `1..=4` = the four boundary
//!   color rounds, `5` = fold shipments, `6`/`7` = level-transition,
//!   top-gather and solve bookkeeping steps;
//! * `kind` — which message of the step (see the `KIND_*` constants).
//!
//! Keeping the scheme here — in the runtime, next to the transports —
//! lets a receive timeout decode the tag it was waiting for back into
//! algorithm terms (see [`describe`]), instead of reporting a bare
//! integer: when a 4-process run hangs, "level 3, boundary color round 2,
//! PHASE_UPDATE" locates the bug; "tag 218" does not.
//!
//! The top of the `u32` range ([`CTRL_BASE`]`..`) is reserved for the TCP
//! backend's control frames (handshake, barrier, worker results); data
//! tags must stay below it, which [`crate::world::RankCtx::send`]
//! enforces.

/// Per-box elimination side effects shipped to tracking neighbors.
pub const KIND_PHASE_UPDATE: u32 = 0;
/// Block + active-set shipment from a retiring rank to its fold corner.
pub const KIND_FOLD: u32 = 1;
/// Authoritative parent active sets after a level transition.
pub const KIND_ACT_REFRESH: u32 = 2;
/// Remaining active blocks gathered on rank 0 for the top factorization.
pub const KIND_TOP: u32 = 3;
/// Elimination records gathered on rank 0 into the `Factorization`.
pub const KIND_RECORDS: u32 = 4;
/// Upward-pass solve deltas on remotely-owned entries.
pub const KIND_SOLVE_UP: u32 = 5;
/// Downward-pass request for remotely-owned solution values.
pub const KIND_SOLVE_REQ: u32 = 6;
/// Solution values (downward-pass replies, fold/top value exchanges).
pub const KIND_SOLVE_VAL: u32 = 7;

/// First tag reserved for transport-internal control frames; algorithm
/// data tags must be smaller.
pub const CTRL_BASE: u32 = u32::MAX - 15;

/// Base of the resident serve-session tag range: the request/response
/// command loop a [`crate::world::WorldHandle`] session runs between rank
/// 0 and the resident worker ranks. Far above any `(level, phase, kind)`
/// data tag, below the transport control range.
pub const SERVE_BASE: u32 = 1 << 20;
/// Worker → rank 0: factorization outcome, sent once when the rank
/// enters its serve loop.
pub const TAG_SERVE_READY: u32 = SERVE_BASE;
/// Rank 0 → worker: next command (solve / probe / shutdown).
pub const TAG_SERVE_CMD: u32 = SERVE_BASE + 1;
/// Rank 0 → worker: the right-hand-side row slab this rank owns.
pub const TAG_SERVE_RHS: u32 = SERVE_BASE + 2;
/// Worker → rank 0: the solved row slab this rank owns.
pub const TAG_SERVE_SOL: u32 = SERVE_BASE + 3;
/// Worker → rank 0: communication-counter snapshot (probe reply).
pub const TAG_SERVE_STATS: u32 = SERVE_BASE + 4;
/// Rank 0 → worker: liveness probe carrying a nonce
/// ([`crate::world::WorldHandle::health`]); uncounted, answered from the
/// idle wait so a busy rank reads as unresponsive rather than dead.
pub const TAG_SERVE_PING: u32 = SERVE_BASE + 5;
/// Worker → rank 0: liveness reply echoing the probe's nonce.
pub const TAG_SERVE_PONG: u32 = SERVE_BASE + 6;
/// Worker → rank 0: snapshot-restore outcome, sent once when a rank
/// rebuilt from an on-disk checkpoint enters its serve loop (the
/// restore-path analogue of [`TAG_SERVE_READY`]).
pub const TAG_SERVE_CKPT: u32 = SERVE_BASE + 7;
/// Worker → rank 0: a `Wire`-encoded span/metrics trace report — the
/// reply to the serve loop's trace-request command (the `KIND_TRACE`
/// frame of the tracing layer; see `srsf-trace`). Uncounted like every
/// serve frame, which is what keeps traced runs bit-identical to
/// untraced ones in the §IV counters.
pub const TAG_SERVE_TRACE: u32 = SERVE_BASE + 8;

/// `true` for tags in the resident serve-session range. Serve frames are
/// the service *envelope* (command dispatch, RHS/solution slabs, stats
/// probes) rather than Algorithm 2 traffic, and are exempt from the §IV
/// data counters — see [`crate::world::RankCtx::send_service`].
pub fn is_serve(tag: u32) -> bool {
    (SERVE_BASE..SERVE_BASE + 9).contains(&tag)
}

/// Compose a data tag from its `(level, phase, kind)` coordinates.
pub fn tag(level: u8, phase: u8, kind: u32) -> u32 {
    debug_assert!(phase < 8 && kind < 8);
    (level as u32) * 64 + (phase as u32) * 8 + kind
}

/// Split a data tag back into `(level, phase, kind)`.
pub fn decode(tag: u32) -> (u8, u8, u32) {
    ((tag / 64) as u8, ((tag / 8) % 8) as u8, tag % 8)
}

/// `true` for tags in the transport-internal control range.
pub fn is_control(tag: u32) -> bool {
    tag >= CTRL_BASE
}

/// Human name of a message kind.
pub fn kind_name(kind: u32) -> &'static str {
    match kind {
        KIND_PHASE_UPDATE => "PHASE_UPDATE",
        KIND_FOLD => "FOLD",
        KIND_ACT_REFRESH => "ACT_REFRESH",
        KIND_TOP => "TOP",
        KIND_RECORDS => "RECORDS",
        KIND_SOLVE_UP => "SOLVE_UP",
        KIND_SOLVE_REQ => "SOLVE_REQ",
        KIND_SOLVE_VAL => "SOLVE_VAL",
        _ => "UNKNOWN",
    }
}

/// Human name of a phase slot.
fn phase_name(phase: u8) -> String {
    match phase {
        0 => "interior".to_string(),
        1..=4 => format!("boundary color round {}", phase - 1),
        5 => "fold".to_string(),
        _ => "transition/gather".to_string(),
    }
}

/// Decode a tag into algorithm terms for diagnostics: level, phase and
/// kind for data tags, the serve-loop step for resident-session tags,
/// the control-frame name for transport tags.
pub fn describe(t: u32) -> String {
    if is_control(t) {
        let name = match t - CTRL_BASE {
            0 => "HELLO",
            1 => "PEERS",
            2 => "DIAL",
            3 => "BARRIER",
            4 => "BARRIER_ACK",
            5 => "RESULT",
            6 => "PANIC",
            _ => "RESERVED",
        };
        return format!("control {name}");
    }
    if is_serve(t) {
        let name = match t - SERVE_BASE {
            0 => "READY (factorization outcome)",
            1 => "CMD (solve/probe/shutdown dispatch)",
            2 => "RHS (right-hand-side row slab)",
            3 => "SOL (solution row slab)",
            4 => "STATS (counter probe reply)",
            5 => "PING (health probe)",
            6 => "PONG (health reply)",
            7 => "CKPT (snapshot restore outcome)",
            8 => "TRACE (span/metrics report)",
            _ => "RESERVED",
        };
        return format!("resident serve {name}");
    }
    let (level, phase, kind) = decode(t);
    format!(
        "level {level}, {}, kind {}",
        phase_name(phase),
        kind_name(kind)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_and_orders() {
        for level in [0u8, 1, 3, 7] {
            for phase in 0..8u8 {
                for kind in 0..8u32 {
                    let t = tag(level, phase, kind);
                    assert!(!is_control(t));
                    assert_eq!(decode(t), (level, phase, kind));
                }
            }
        }
    }

    #[test]
    fn describe_names_algorithm_terms() {
        let t = tag(3, 2, KIND_SOLVE_UP);
        let d = describe(t);
        assert!(d.contains("level 3"), "{d}");
        assert!(d.contains("color round 1"), "{d}");
        assert!(d.contains("SOLVE_UP"), "{d}");
        assert!(describe(CTRL_BASE + 3).contains("BARRIER"));
    }

    #[test]
    fn describe_names_serve_steps() {
        assert!(describe(TAG_SERVE_CMD).contains("resident serve CMD"));
        assert!(describe(TAG_SERVE_RHS).contains("RHS"));
        assert!(describe(TAG_SERVE_SOL).contains("SOL"));
        assert!(describe(TAG_SERVE_READY).contains("READY"));
        assert!(describe(TAG_SERVE_STATS).contains("STATS"));
        assert!(describe(TAG_SERVE_PING).contains("PING"));
        assert!(describe(TAG_SERVE_PONG).contains("PONG"));
        assert!(describe(TAG_SERVE_CKPT).contains("CKPT"));
        assert!(describe(TAG_SERVE_TRACE).contains("TRACE"));
        for t in [
            TAG_SERVE_READY,
            TAG_SERVE_CMD,
            TAG_SERVE_RHS,
            TAG_SERVE_SOL,
            TAG_SERVE_STATS,
            TAG_SERVE_PING,
            TAG_SERVE_PONG,
            TAG_SERVE_CKPT,
            TAG_SERVE_TRACE,
        ] {
            assert!(is_serve(t) && !is_control(t));
        }
        assert!(!is_serve(tag(7, 7, 7)));
        assert!(!is_serve(CTRL_BASE));
    }
}
