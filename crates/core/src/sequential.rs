//! Algorithm 1: the sequential multi-level factorization.
//!
//! A bottom-up sweep over the quad-tree: every box at every level is
//! skeletonized and its redundant DOFs eliminated, levels are merged, and
//! the few DOFs surviving above `min_compress_level` are finished with a
//! dense pivoted LU. The result approximates `A^{-1}` as the composition
//! Eq. (12) of per-box operators plus the top solve.

use crate::elimination::{apply_output, eliminate_box, BoxElimination, FactorError};
use crate::levels::merge_to_parent;
use crate::skeletonize::CompressionCtx;
use crate::solve;
use crate::stats::FactorStats;
use crate::store::{ActiveSets, BlockStore};
use crate::FactorOpts;
use srsf_geometry::point::{BBox, Point};
use srsf_geometry::tree::{BoxId, QuadTree};
use srsf_kernels::kernel::Kernel;
use srsf_linalg::{LinOp, Lu, Mat, Scalar};
use std::time::Instant;

/// The strong recursive skeletonization factorization of a kernel matrix.
///
/// Stores the per-box elimination records in elimination order plus the
/// dense factorization of the top block; [`Factorization::solve`] applies
/// the approximate inverse in O(N).
pub struct Factorization<T> {
    pub(crate) n: usize,
    pub(crate) records: Vec<BoxElimination<T>>,
    /// Global ids of the DOFs in the dense top block, in assembly order.
    pub(crate) top_idx: Vec<u32>,
    pub(crate) top_lu: Lu<T>,
    pub(crate) stats: FactorStats,
}

impl<T: Scalar> Factorization<T> {
    /// Problem size `N`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Apply the approximate inverse in place: `b := A^{-1} b`.
    pub fn apply_inverse(&self, b: &mut [T]) {
        solve::apply_inverse(self, b);
    }

    /// Solve `A x = b`.
    pub fn solve(&self, b: &[T]) -> Vec<T> {
        let mut x = b.to_vec();
        self.apply_inverse(&mut x);
        x
    }

    /// Apply the approximate inverse to an `n x nrhs` block of right-hand
    /// sides in place: `B := A^{-1} B`, one GEMM-driven sweep over the
    /// records instead of `nrhs` vector sweeps.
    pub fn apply_inverse_mat(&self, b: &mut Mat<T>) {
        solve::apply_inverse_mat(self, b);
    }

    /// Solve `A X = B` for every column of `b` at once.
    pub fn solve_mat(&self, b: &Mat<T>) -> Mat<T> {
        let mut x = b.clone();
        self.apply_inverse_mat(&mut x);
        x
    }

    /// Blocked apply scheduled over `n_threads` workers by the records'
    /// `(level, color)` stamps; bit-identical to
    /// [`Factorization::apply_inverse_mat`] for any thread count. Runs of
    /// same-color records (whole rounds for a colored-driver
    /// factorization) compute concurrently and merge in record order.
    pub fn apply_inverse_mat_threaded(&self, b: &mut Mat<T>, n_threads: usize) {
        solve::apply_inverse_mat_threaded(self, b, n_threads);
    }

    /// Threaded single-batch apply of one right-hand side vector; see
    /// [`Factorization::apply_inverse_mat_threaded`].
    pub fn apply_inverse_threaded(&self, b: &mut [T], n_threads: usize) {
        let mut m = Mat::from_vec(b.len(), 1, b.to_vec());
        solve::apply_inverse_mat_threaded(self, &mut m, n_threads);
        b.copy_from_slice(m.as_slice());
    }

    /// Factorization statistics (ranks per level, timings, memory).
    pub fn stats(&self) -> &FactorStats {
        &self.stats
    }

    /// Number of per-box elimination records.
    pub fn n_records(&self) -> usize {
        self.records.len()
    }

    /// Size of the dense top block.
    pub fn top_size(&self) -> usize {
        self.top_idx.len()
    }

    /// Approximate memory footprint of the factorization in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.records
            .iter()
            .map(BoxElimination::heap_bytes)
            .sum::<usize>()
            + self.top_lu.heap_bytes()
            + self.top_idx.capacity() * 4
    }

    pub(crate) fn from_parts(
        n: usize,
        records: Vec<BoxElimination<T>>,
        top_idx: Vec<u32>,
        top_lu: Lu<T>,
        mut stats: FactorStats,
    ) -> Self {
        stats.top_size = top_idx.len();
        stats.record_bytes = records
            .iter()
            .map(BoxElimination::heap_bytes)
            .sum::<usize>()
            + top_lu.heap_bytes();
        Self {
            n,
            records,
            top_idx,
            top_lu,
            stats,
        }
    }
}

impl<T: Scalar> LinOp<T> for Factorization<T> {
    fn dim(&self) -> usize {
        self.n
    }
    /// Applying the factorization as an operator means applying the
    /// approximate **inverse** — this is what makes it a preconditioner.
    fn apply(&self, x: &[T]) -> Vec<T> {
        self.solve(x)
    }
}

/// Pick the tree domain: the unit square when all points fit (the paper's
/// setting), otherwise the enclosing square.
pub fn domain_for(pts: &[Point]) -> BBox {
    if pts.iter().all(|p| BBox::UNIT.contains(p)) {
        BBox::UNIT
    } else {
        BBox::enclosing(pts)
    }
}

/// Factor the kernel matrix over `pts` (Algorithm 1).
#[deprecated(
    since = "0.1.0",
    note = "use `Solver::builder(kernel, pts).build()` instead"
)]
pub fn factorize<K: Kernel>(
    kernel: &K,
    pts: &[Point],
    opts: &FactorOpts,
) -> Result<Factorization<K::Elem>, FactorError> {
    let tree = QuadTree::build(pts, domain_for(pts), opts.leaf_size);
    factorize_with_tree(kernel, pts, &tree, opts)
}

/// Factor against a caller-provided tree (shared by drivers and tests).
///
/// The sequential driver is the only one that hands the dense kernels a
/// thread budget (`FactorOpts::gemm_threads`): it owns the whole machine,
/// whereas the colored/distributed drivers already parallelize across
/// boxes and ranks. The budget is thread-local and restored on exit, so
/// it never leaks into callers or sibling drivers.
pub fn factorize_with_tree<K: Kernel>(
    kernel: &K,
    pts: &[Point],
    tree: &QuadTree,
    opts: &FactorOpts,
) -> Result<Factorization<K::Elem>, FactorError> {
    let prev = srsf_linalg::set_gemm_threads(opts.gemm_threads);
    let result = factorize_with_tree_inner(kernel, pts, tree, opts);
    srsf_linalg::set_gemm_threads(prev);
    result
}

fn factorize_with_tree_inner<K: Kernel>(
    kernel: &K,
    pts: &[Point],
    tree: &QuadTree,
    opts: &FactorOpts,
) -> Result<Factorization<K::Elem>, FactorError> {
    let t_total = Instant::now();
    let n = pts.len();
    let leaf = tree.leaf_level();
    let mut stats = FactorStats::new(n, leaf);
    let mut store = BlockStore::new(kernel, pts);
    let mut act = ActiveSets::new();
    for id in tree.boxes_at_level(leaf) {
        act.set(id, tree.leaf_points(&id).to_vec());
    }

    let lmin = (opts.min_compress_level as u8).min(leaf);
    let ctx = CompressionCtx::new(kernel, pts, tree, opts);
    let mut records = Vec::new();
    if leaf >= lmin && leaf >= 1 {
        let mut level = leaf;
        loop {
            let t0 = Instant::now();
            for b in tree.boxes_at_level(level) {
                let out = eliminate_box(&store, &act, tree, &b, opts, &ctx)?;
                if let Some(rec) = &out.record {
                    stats.add_rank(level, rec.skel.len());
                }
                stats.compression.absorb(&out.compression);
                apply_output(&mut store, &mut act, &b, &out, &ctx);
                if let Some(rec) = out.record {
                    records.push(rec);
                }
            }
            stats.eliminate_s += t0.elapsed().as_secs_f64();
            stats.peak_store_bytes = stats.peak_store_bytes.max(store.heap_bytes());
            if level == lmin {
                break;
            }
            let t1 = Instant::now();
            merge_to_parent(&mut store, &mut act, tree, level);
            stats.merge_s += t1.elapsed().as_secs_f64();
            level -= 1;
        }
    }

    // Dense top factorization over the remaining active DOFs.
    let t2 = Instant::now();
    let top_level = if leaf >= lmin { lmin } else { leaf };
    let (top_idx, top_lu) = factor_top(&store, &act, tree, top_level, &ctx)?;
    stats.top_s = t2.elapsed().as_secs_f64();
    stats.total_s = t_total.elapsed().as_secs_f64();

    Ok(Factorization::from_parts(
        n, records, top_idx, top_lu, stats,
    ))
}

/// Assemble and LU-factor the dense top block over all boxes at
/// `top_level`, in row-major box order. A pivot breakdown is reported as
/// [`FactorError::SingularTop`] — the top system is a property of the
/// whole remaining active set, not of any one box.
pub(crate) fn factor_top<K: Kernel>(
    store: &BlockStore<'_, K>,
    act: &ActiveSets,
    tree: &QuadTree,
    top_level: u8,
    ctx: &CompressionCtx,
) -> Result<(Vec<u32>, Lu<K::Elem>), FactorError> {
    let boxes: Vec<BoxId> = tree.boxes_at_level(top_level).collect();
    let sizes: Vec<usize> = boxes.iter().map(|b| act.get(b).len()).collect();
    let total: usize = sizes.iter().sum();
    let mut top_idx = Vec::with_capacity(total);
    for b in &boxes {
        top_idx.extend_from_slice(act.get(b));
    }
    let mut a = Mat::zeros(total, total);
    let mut r0 = 0;
    for (i, bi) in boxes.iter().enumerate() {
        if sizes[i] == 0 {
            continue;
        }
        let mut c0 = 0;
        for (j, bj) in boxes.iter().enumerate() {
            if sizes[j] == 0 {
                continue;
            }
            let blk = ctx.get_block(store, act, bi, bj);
            a.set_block(r0, c0, &blk);
            c0 += sizes[j];
        }
        r0 += sizes[i];
    }
    let lu = Lu::factor(a).map_err(|e| FactorError::SingularTop {
        size: total,
        step: e.step,
    })?;
    Ok((top_idx, lu))
}
