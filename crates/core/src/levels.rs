//! Level transitions: merging skeletons to parents (Figure 3) and
//! regrouping the modified-interaction data structure (Section III-C).
//!
//! After every box of level `l` is skeletonized, each parent box at level
//! `l-1` takes ownership of its children's skeletons. Stored blocks are
//! regrouped: a parent pair at distance <= 1 may contain modified child
//! sub-blocks (children at distance <= 2), so those blocks are assembled
//! and stored; parent pairs at distance 2 consist entirely of children at
//! distance >= 3 whose interactions are untouched kernel entries
//! (Theorem 2), so they stay implicit.

use crate::store::{ActiveSets, BlockStore};
use srsf_geometry::neighbors::near_field;
use srsf_geometry::tree::{BoxId, QuadTree};
use srsf_kernels::kernel::Kernel;
use srsf_linalg::Mat;

/// Parent active set: children's surviving skeletons, concatenated in
/// `children()` order (deterministic across all drivers).
pub fn parent_active(act: &ActiveSets, parent: &BoxId) -> Vec<u32> {
    let mut out = Vec::new();
    for c in parent.children() {
        out.extend_from_slice(act.get(&c));
    }
    out
}

/// Assemble the block `A[parent_a, parent_b]` from child-level data.
/// Returns `(block, any_child_modified)`; when no child sub-block was
/// modified the block equals a pure kernel evaluation and need not be
/// stored.
pub fn assemble_parent_block<K: Kernel>(
    store: &BlockStore<'_, K>,
    act: &ActiveSets,
    pa: &BoxId,
    pb: &BoxId,
) -> (Mat<K::Elem>, bool) {
    let rows: usize = pa.children().iter().map(|c| act.get(c).len()).sum();
    let cols: usize = pb.children().iter().map(|c| act.get(c).len()).sum();
    let mut out = Mat::zeros(rows, cols);
    let mut any_stored = false;
    let mut r0 = 0;
    for ca in pa.children() {
        let na = act.get(&ca).len();
        if na == 0 {
            continue;
        }
        let mut c0 = 0;
        for cb in pb.children() {
            let ncb = act.get(&cb).len();
            if ncb == 0 {
                continue;
            }
            let blk = if ca.chebyshev(&cb) <= 2 {
                if store.contains(&ca, &cb) {
                    any_stored = true;
                }
                store.get(&ca, &cb, act)
            } else {
                store.eval_kernel(act.get(&ca), act.get(&cb))
            };
            out.set_block(r0, c0, &blk);
            c0 += ncb;
        }
        r0 += na;
    }
    (out, any_stored)
}

/// Transition from `child_level` to its parent: set parent active sets,
/// materialize modified parent blocks at distance <= 1, and drop the
/// child-level data.
pub fn merge_to_parent<K: Kernel>(
    store: &mut BlockStore<'_, K>,
    act: &mut ActiveSets,
    tree: &QuadTree,
    child_level: u8,
) {
    assert!(child_level >= 1);
    let parent_level = child_level - 1;
    // Parent active sets (children still present in `act`).
    let parents: Vec<BoxId> = tree.boxes_at_level(parent_level).collect();
    let parent_acts: Vec<Vec<u32>> = parents.iter().map(|p| parent_active(act, p)).collect();
    // Materialize modified parent pairs at distance <= 1.
    let mut to_insert = Vec::new();
    for pa in &parents {
        let mut targets = vec![*pa];
        targets.extend(near_field(pa));
        for pb in targets {
            let (blk, any) = assemble_parent_block(store, act, pa, &pb);
            if any {
                to_insert.push((*pa, pb, blk));
            }
        }
    }
    for (pa, pb, blk) in to_insert {
        store.insert(pa, pb, blk);
    }
    for (p, a) in parents.into_iter().zip(parent_acts) {
        act.set(p, a);
    }
    store.drop_level(child_level);
    act.drop_level(child_level);
}

#[cfg(test)]
mod tests {
    use super::*;
    use srsf_geometry::grid::UnitGrid;
    use srsf_geometry::point::BBox;
    use srsf_kernels::laplace::LaplaceKernel;
    use srsf_linalg::norms::max_abs_diff;

    #[test]
    fn parent_active_concatenates_children() {
        let mut act = ActiveSets::new();
        let p = BoxId {
            level: 1,
            ix: 0,
            iy: 0,
        };
        let cs = p.children();
        act.set(cs[0], vec![1, 2]);
        act.set(cs[1], vec![5]);
        act.set(cs[2], vec![]);
        act.set(cs[3], vec![9, 10]);
        assert_eq!(parent_active(&act, &p), vec![1, 2, 5, 9, 10]);
    }

    #[test]
    fn unmodified_parent_block_is_pure_kernel() {
        let grid = UnitGrid::new(8);
        let k = LaplaceKernel::new(&grid);
        let pts = grid.points();
        let tree = QuadTree::build(&pts, BBox::UNIT, 1); // leaf level 3, 1 pt/leaf
        let store = BlockStore::new(&k, &pts);
        let mut act = ActiveSets::new();
        for id in tree.boxes_at_level(3) {
            act.set(id, tree.leaf_points(&id).to_vec());
        }
        let pa = BoxId {
            level: 2,
            ix: 0,
            iy: 0,
        };
        let pb = BoxId {
            level: 2,
            ix: 1,
            iy: 0,
        };
        let (blk, any) = assemble_parent_block(&store, &act, &pa, &pb);
        assert!(!any, "nothing was modified");
        let ra = parent_active(&act, &pa);
        let rb = parent_active(&act, &pb);
        let want = store.eval_kernel(&ra, &rb);
        assert!(max_abs_diff(&blk, &want) < 1e-15);
    }

    #[test]
    fn modified_child_block_propagates_to_parent() {
        let grid = UnitGrid::new(8);
        let k = LaplaceKernel::new(&grid);
        let pts = grid.points();
        let tree = QuadTree::build(&pts, BBox::UNIT, 1);
        let mut store = BlockStore::new(&k, &pts);
        let mut act = ActiveSets::new();
        for id in tree.boxes_at_level(3) {
            act.set(id, tree.leaf_points(&id).to_vec());
        }
        // Modify one child pair inside (parent (0,0), parent (1,0)).
        let ca = BoxId {
            level: 3,
            ix: 1,
            iy: 0,
        };
        let cb = BoxId {
            level: 3,
            ix: 2,
            iy: 0,
        };
        let mut blk = store.get(&ca, &cb, &act);
        blk[(0, 0)] += 7.5;
        store.insert(ca, cb, blk);
        let pa = BoxId {
            level: 2,
            ix: 0,
            iy: 0,
        };
        let pb = BoxId {
            level: 2,
            ix: 1,
            iy: 0,
        };
        let (parent_blk, any) = assemble_parent_block(&store, &act, &pa, &pb);
        assert!(any);
        let ra = parent_active(&act, &pa);
        let rb = parent_active(&act, &pb);
        let pure = store.eval_kernel(&ra, &rb);
        let diff = max_abs_diff(&parent_blk, &pure);
        assert!(
            (diff - 7.5).abs() < 1e-12,
            "exactly the injected bump: {diff}"
        );
    }

    #[test]
    fn merge_drops_child_level_and_sets_parents() {
        let grid = UnitGrid::new(8);
        let k = LaplaceKernel::new(&grid);
        let pts = grid.points();
        let tree = QuadTree::build(&pts, BBox::UNIT, 1);
        let mut store = BlockStore::new(&k, &pts);
        let mut act = ActiveSets::new();
        for id in tree.boxes_at_level(3) {
            act.set(id, tree.leaf_points(&id).to_vec());
        }
        // Store one modified pair so materialization has something to do.
        let ca = BoxId {
            level: 3,
            ix: 0,
            iy: 0,
        };
        let cb = BoxId {
            level: 3,
            ix: 1,
            iy: 0,
        };
        let mut blk = store.get(&ca, &cb, &act);
        blk[(0, 0)] += 1.0;
        store.insert(ca, cb, blk);

        merge_to_parent(&mut store, &mut act, &tree, 3);
        // Child data gone.
        assert!(act.get(&ca).is_empty());
        assert!(!store.contains(&ca, &cb));
        // Parents own the union of children's points.
        assert_eq!(act.total_at_level(2), 64);
        let p00 = BoxId {
            level: 2,
            ix: 0,
            iy: 0,
        };
        assert_eq!(act.get(&p00).len(), 4);
        // The modified pair was folded into the parent self-block.
        assert!(store.contains(&p00, &p00));
        let self_blk = store.get(&p00, &p00, &act);
        let pure = store.eval_kernel(act.get(&p00), act.get(&p00));
        assert!((max_abs_diff(&self_blk, &pure) - 1.0).abs() < 1e-12);
        // Kernel consistency of an untouched parent pair: implicit get.
        let far = BoxId {
            level: 2,
            ix: 3,
            iy: 3,
        };
        let g = store.get(&p00, &far, &act);
        assert_eq!(
            g[(0, 0)],
            k.entry(&pts, act.get(&p00)[0] as usize, act.get(&far)[0] as usize)
        );
    }
}
