//! [`Wire`] encodings for the factorization types that cross a process
//! boundary on the TCP transport.
//!
//! Worker ranks return `Result<(CommStats, Option<(Factorization, ...)>),
//! FactorError>` from `World::run`; on the TCP backend that value is
//! serialized back to rank 0 as a result frame, so everything in it needs
//! a total, bounds-checked decode (a corrupted frame must surface as a
//! [`CodecError`], not a panic). The same encodings also serve the
//! record-gather messages inside the distributed factorization itself.

use crate::distributed::{RankState, TopFactor};
use crate::elimination::{BoxElimination, FactorError};
use crate::error::SrsfError;
use crate::sequential::Factorization;
use crate::stats::FactorStats;
use srsf_geometry::point::Point;
use srsf_geometry::tree::BoxId;
use srsf_linalg::Scalar;
use srsf_runtime::codec::{crc64, ByteReader, ByteWriter, CodecError, Wire};
use std::collections::HashMap;
use std::path::Path;

/// Pack a box id the way the distributed driver's messages do:
/// `level << 48 | ix << 24 | iy`.
pub(crate) fn put_box(w: &mut ByteWriter, b: &BoxId) {
    w.put_u64(((b.level as u64) << 48) | ((b.ix as u64) << 24) | b.iy as u64);
}

pub(crate) fn try_get_box(r: &mut ByteReader) -> Result<BoxId, CodecError> {
    let v = r.try_get_u64()?;
    Ok(BoxId {
        level: (v >> 48) as u8,
        ix: ((v >> 24) & 0xFF_FFFF) as u32,
        iy: (v & 0xFF_FFFF) as u32,
    })
}

/// Length-prefixed id slice (u32 ids widened to u64 slots) — the one
/// encoding shared by the in-protocol messages in `distributed.rs` and
/// the [`Wire`] record/factorization impls below.
pub(crate) fn put_ids(w: &mut ByteWriter, ids: &[u32]) {
    w.put_u64(ids.len() as u64);
    for &i in ids {
        w.put_u64(i as u64);
    }
}

pub(crate) fn try_get_ids(r: &mut ByteReader) -> Result<Vec<u32>, CodecError> {
    Ok(r.try_get_u64_slice()?
        .into_iter()
        .map(|v| v as u32)
        .collect())
}

/// Wire wrapper for a scalar vector (e.g. a distributed solution).
///
/// `Vec<T: Scalar>` cannot take the generic `Vec<T: Wire>` container
/// encoding without overlapping impls (`f64` is both), so the rank
/// results that carry a solution wrap it in this newtype, which encodes
/// as a plain length-prefixed scalar slice.
pub struct ScalarVec<T>(pub Vec<T>);

impl<T: Scalar> Wire for ScalarVec<T> {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_scalar_slice(&self.0);
    }
    fn decode(r: &mut ByteReader) -> Result<Self, CodecError> {
        Ok(ScalarVec(r.try_get_scalar_slice()?))
    }
}

impl Wire for FactorError {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            FactorError::SingularDiagonal { box_id } => {
                w.put_u64(0);
                put_box(w, box_id);
            }
            FactorError::SingularTop { size, step } => {
                w.put_u64(1);
                w.put_u64(*size as u64);
                w.put_u64(*step as u64);
            } // `FactorError` is non_exhaustive for downstream crates; new
              // in-crate variants must be added here to cross the wire.
        }
    }
    fn decode(r: &mut ByteReader) -> Result<Self, CodecError> {
        let at = r.position();
        match r.try_get_u64()? {
            0 => Ok(FactorError::SingularDiagonal {
                box_id: try_get_box(r)?,
            }),
            1 => Ok(FactorError::SingularTop {
                size: r.try_get_u64()? as usize,
                step: r.try_get_u64()? as usize,
            }),
            _ => Err(CodecError::Invalid {
                what: "FactorError discriminant",
                at,
            }),
        }
    }
}

impl<T: Scalar> Wire for BoxElimination<T> {
    fn encode(&self, w: &mut ByteWriter) {
        put_box(w, &self.box_id);
        // (level, color) scheduling stamp for the threaded solve apply.
        w.put_u64(((self.level as u64) << 8) | self.color as u64);
        put_ids(w, &self.redundant);
        put_ids(w, &self.skel);
        put_ids(w, &self.nbr);
        w.put_mat(&self.t);
        self.lu.encode(w);
        w.put_mat(&self.es);
        w.put_mat(&self.en);
        w.put_mat(&self.fs);
        w.put_mat(&self.fnb);
    }
    fn decode(r: &mut ByteReader) -> Result<Self, CodecError> {
        let box_id = try_get_box(r)?;
        let stamp = r.try_get_u64()?;
        Ok(BoxElimination {
            box_id,
            level: (stamp >> 8) as u8,
            color: (stamp & 0xFF) as u8,
            redundant: try_get_ids(r)?,
            skel: try_get_ids(r)?,
            nbr: try_get_ids(r)?,
            t: r.try_get_mat()?,
            lu: Wire::decode(r)?,
            es: r.try_get_mat()?,
            en: r.try_get_mat()?,
            fs: r.try_get_mat()?,
            fnb: r.try_get_mat()?,
        })
    }
}

impl Wire for FactorStats {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(self.n as u64);
        w.put_u64(self.leaf_level as u64);
        w.put_u64(self.ranks.len() as u64);
        for (&level, &(count, sum)) in &self.ranks {
            w.put_u64(level as u64);
            w.put_u64(count as u64);
            w.put_u64(sum as u64);
        }
        w.put_f64(self.eliminate_s);
        w.put_f64(self.merge_s);
        w.put_f64(self.top_s);
        w.put_f64(self.total_s);
        w.put_f64(self.solve_s);
        w.put_u64(self.top_size as u64);
        w.put_u64(self.record_bytes as u64);
        w.put_u64(self.peak_store_bytes as u64);
        w.put_u64(self.compression.sketch_retries);
        w.put_u64(self.compression.sketch_fallbacks);
        w.put_u64(self.compression.fft_block_applies);
        w.put_u64(self.compression.dense_block_applies);
    }
    fn decode(r: &mut ByteReader) -> Result<Self, CodecError> {
        let n = r.try_get_u64()? as usize;
        let leaf_level = r.try_get_u64()? as u8;
        let at = r.position();
        let n_levels = r.try_get_u64()?;
        if n_levels > 256 {
            // Levels are u8, so more than 256 entries is corruption.
            return Err(CodecError::Invalid {
                what: "FactorStats level count",
                at,
            });
        }
        let mut stats = FactorStats::new(n, leaf_level);
        for _ in 0..n_levels {
            let level = r.try_get_u64()? as u8;
            let count = r.try_get_u64()? as usize;
            let sum = r.try_get_u64()? as usize;
            stats.ranks.insert(level, (count, sum));
        }
        stats.eliminate_s = r.try_get_f64()?;
        stats.merge_s = r.try_get_f64()?;
        stats.top_s = r.try_get_f64()?;
        stats.total_s = r.try_get_f64()?;
        stats.solve_s = r.try_get_f64()?;
        stats.top_size = r.try_get_u64()? as usize;
        stats.record_bytes = r.try_get_u64()? as usize;
        stats.peak_store_bytes = r.try_get_u64()? as usize;
        stats.compression.sketch_retries = r.try_get_u64()?;
        stats.compression.sketch_fallbacks = r.try_get_u64()?;
        stats.compression.fft_block_applies = r.try_get_u64()?;
        stats.compression.dense_block_applies = r.try_get_u64()?;
        Ok(stats)
    }
}

impl<T: Scalar> Wire for Factorization<T> {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(self.n as u64);
        self.records.encode(w);
        put_ids(w, &self.top_idx);
        self.top_lu.encode(w);
        self.stats.encode(w);
    }
    fn decode(r: &mut ByteReader) -> Result<Self, CodecError> {
        let n = r.try_get_u64()? as usize;
        let records = Wire::decode(r)?;
        let top_idx = try_get_ids(r)?;
        let top_lu = Wire::decode(r)?;
        let stats = FactorStats::decode(r)?;
        Ok(Factorization::from_parts(
            n, records, top_idx, top_lu, stats,
        ))
    }
}

// ---------------------------------------------------------------------------
// Checkpoint container
//
// A versioned, length- and CRC-checked on-disk envelope around a `Wire`
// payload. The 40-byte header is validated — magic, version, scalar tag,
// payload length, CRC-64 — *before* any decode allocation, so a
// truncated or bit-flipped snapshot is rejected from the header and
// checksum alone (`tests/wire_fuzz.rs` exercises this).
//
//   bytes  0..8   magic  b"SRSFCKP1"
//   bytes  8..16  container version (little-endian u64, currently 1)
//   bytes 16..24  scalar tag (size_of::<T>: 8 = f64, 16 = c64; 0 = manifest)
//   bytes 24..32  payload length in bytes
//   bytes 32..40  CRC-64/XZ of the payload
//   bytes 40..    the Wire-encoded payload
// ---------------------------------------------------------------------------

/// Container magic: "SRSF" + "CKP" + format generation.
const CKPT_MAGIC: &[u8; 8] = b"SRSFCKP1";
/// Container version; bump on any layout change.
/// v2: `FactorStats` carries the four compression-telemetry counters.
const CKPT_VERSION: u64 = 2;
/// Header length in bytes.
const CKPT_HEADER: usize = 40;
/// Scalar tag of the scalar-independent manifest file.
const MANIFEST_TAG: u64 = 0;

/// Scalar tag stored in the container header: the element width
/// distinguishes the two supported scalars (`f64` = 8, `c64` = 16), so a
/// snapshot cannot be decoded as the wrong element type.
pub(crate) fn scalar_tag<T: Scalar>() -> u64 {
    std::mem::size_of::<T>() as u64
}

fn ckpt_err(path: &Path, reason: impl Into<String>) -> SrsfError {
    SrsfError::Checkpoint {
        path: path.display().to_string(),
        reason: reason.into(),
    }
}

/// Write `payload` to `path` inside the checkpoint container.
pub(crate) fn write_container(path: &Path, tag: u64, payload: &[u8]) -> Result<(), SrsfError> {
    let mut bytes = Vec::with_capacity(CKPT_HEADER + payload.len());
    bytes.extend_from_slice(CKPT_MAGIC);
    bytes.extend_from_slice(&CKPT_VERSION.to_le_bytes());
    bytes.extend_from_slice(&tag.to_le_bytes());
    bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    bytes.extend_from_slice(&crc64(payload).to_le_bytes());
    bytes.extend_from_slice(payload);
    std::fs::write(path, bytes).map_err(|e| ckpt_err(path, e.to_string()))
}

/// Read and validate a checkpoint container, returning the raw payload.
/// Every header field is checked against the file contents before the
/// payload leaves this function; a corrupted file never reaches a
/// decoder.
pub(crate) fn read_container(path: &Path, expected_tag: u64) -> Result<Vec<u8>, SrsfError> {
    let bytes = std::fs::read(path).map_err(|e| ckpt_err(path, e.to_string()))?;
    if bytes.len() < CKPT_HEADER {
        return Err(ckpt_err(
            path,
            format!("truncated header ({} bytes)", bytes.len()),
        ));
    }
    if &bytes[0..8] != CKPT_MAGIC {
        return Err(ckpt_err(path, "bad magic (not a checkpoint file)"));
    }
    let word = |i: usize| u64::from_le_bytes(bytes[i..i + 8].try_into().unwrap_or([0; 8]));
    let version = word(8);
    if version != CKPT_VERSION {
        return Err(ckpt_err(
            path,
            format!("unsupported container version {version} (expected {CKPT_VERSION})"),
        ));
    }
    let tag = word(16);
    if tag != expected_tag {
        return Err(ckpt_err(
            path,
            format!("scalar tag {tag} does not match expected {expected_tag}"),
        ));
    }
    let len = word(24) as usize;
    if bytes.len() - CKPT_HEADER != len {
        return Err(ckpt_err(
            path,
            format!(
                "payload length {} does not match header ({len})",
                bytes.len() - CKPT_HEADER
            ),
        ));
    }
    let crc = word(32);
    let actual = crc64(&bytes[CKPT_HEADER..]);
    if crc != actual {
        return Err(ckpt_err(
            path,
            format!("CRC mismatch (header {crc:#018x}, payload {actual:#018x})"),
        ));
    }
    Ok(bytes[CKPT_HEADER..].to_vec())
}

impl<T: Scalar> Factorization<T> {
    /// Save this factorization to `path` inside the versioned,
    /// CRC-checked checkpoint container.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), SrsfError> {
        write_container(path.as_ref(), scalar_tag::<T>(), &self.to_bytes())
    }

    /// Load a factorization saved with [`Factorization::save`]. The
    /// container header and checksum are validated before any decode
    /// allocation, so truncation or bit corruption is rejected cheaply.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, SrsfError> {
        let path = path.as_ref();
        let payload = read_container(path, scalar_tag::<T>())?;
        Self::from_bytes(payload).map_err(|e| ckpt_err(path, e.to_string()))
    }
}

/// FNV-1a over the bit patterns of the point coordinates: a cheap,
/// deterministic fingerprint tying a checkpoint directory to the geometry
/// it was factored over. Restore refuses a point set whose hash differs.
pub(crate) fn geometry_hash(pts: &[Point]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for p in pts {
        for v in [p.x, p.y] {
            for b in v.to_bits().to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
    }
    h
}

/// The checkpoint directory's run description, written by rank 0 as
/// `manifest.ckpt`: everything restore needs to rebuild the tree and the
/// rank world, plus the geometry fingerprint it must match.
pub(crate) struct CkptManifest {
    pub(crate) p: usize,
    pub(crate) n: usize,
    pub(crate) leaf_size: usize,
    pub(crate) min_compress_level: usize,
    /// Scalar tag of the per-rank snapshots (see [`scalar_tag`]).
    pub(crate) scalar: u64,
    pub(crate) geom_hash: u64,
}

impl Wire for CkptManifest {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(self.p as u64);
        w.put_u64(self.n as u64);
        w.put_u64(self.leaf_size as u64);
        w.put_u64(self.min_compress_level as u64);
        w.put_u64(self.scalar);
        w.put_u64(self.geom_hash);
    }
    fn decode(r: &mut ByteReader) -> Result<Self, CodecError> {
        Ok(CkptManifest {
            p: r.try_get_u64()? as usize,
            n: r.try_get_u64()? as usize,
            leaf_size: r.try_get_u64()? as usize,
            min_compress_level: r.try_get_u64()? as usize,
            scalar: r.try_get_u64()?,
            geom_hash: r.try_get_u64()?,
        })
    }
}

/// Write the manifest for a checkpointed run into `dir/manifest.ckpt`.
pub(crate) fn write_manifest(dir: &Path, m: &CkptManifest) -> Result<(), SrsfError> {
    write_container(&dir.join("manifest.ckpt"), MANIFEST_TAG, &m.to_bytes())
}

/// Read and validate `dir/manifest.ckpt`.
pub(crate) fn read_manifest(dir: &Path) -> Result<CkptManifest, SrsfError> {
    let path = dir.join("manifest.ckpt");
    let payload = read_container(&path, MANIFEST_TAG)?;
    CkptManifest::from_bytes(payload).map_err(|e| ckpt_err(&path, e.to_string()))
}

/// Per-rank snapshot file name within a checkpoint directory.
pub(crate) fn rank_ckpt_name(rank: usize) -> String {
    format!("rank_{rank}.ckpt")
}

/// Encode one rank's factor-phase output — its [`RankState`] plus (rank 0
/// only) the dense top factorization — as a snapshot payload. HashMaps go
/// out key-sorted so the bytes (and hence the container CRC) are
/// deterministic.
pub(crate) fn encode_rank_snapshot<T: Scalar>(state: &RankState<T>, top: &TopFactor<T>) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(state.records.len() as u64);
    for (key, rec) in &state.records {
        w.put_u64(*key);
        rec.encode(&mut w);
    }
    w.put_u64(state.record_phase.len() as u64);
    for &(level, phase) in &state.record_phase {
        w.put_u64(((level as u64) << 8) | phase as u64);
    }
    let mut act: Vec<_> = state.act_end.iter().collect();
    act.sort_by_key(|(level, _)| **level);
    w.put_u64(act.len() as u64);
    for (level, entries) in act {
        w.put_u64(*level as u64);
        w.put_u64(entries.len() as u64);
        for (b, ids) in entries {
            put_box(&mut w, b);
            put_ids(&mut w, ids);
        }
    }
    let mut folds: Vec<_> = state.fold_ids.iter().collect();
    folds.sort_by_key(|((level, member), _)| (*level, *member));
    w.put_u64(folds.len() as u64);
    for ((level, member), ids) in folds {
        w.put_u64(*level as u64);
        w.put_u64(*member as u64);
        put_ids(&mut w, ids);
    }
    state.stats.encode(&mut w);
    match top {
        Some((idx, lu)) => {
            w.put_u64(1);
            put_ids(&mut w, idx);
            lu.encode(&mut w);
        }
        None => w.put_u64(0),
    }
    w.finish()
}

/// Decode a rank snapshot produced by [`encode_rank_snapshot`]. Total:
/// every read is bounds-checked, so even a payload that passed the CRC
/// (e.g. crafted rather than corrupted) cannot panic the decoder.
#[allow(clippy::type_complexity)]
pub(crate) fn decode_rank_snapshot<T: Scalar>(
    bytes: Vec<u8>,
) -> Result<(RankState<T>, TopFactor<T>), CodecError> {
    let mut r = ByteReader::new(bytes);
    let n_records = r.try_get_u64()? as usize;
    let mut records = Vec::new();
    for _ in 0..n_records {
        let key = r.try_get_u64()?;
        records.push((key, BoxElimination::decode(&mut r)?));
    }
    let n_phases = r.try_get_u64()? as usize;
    let mut record_phase = Vec::new();
    for _ in 0..n_phases {
        let packed = r.try_get_u64()?;
        record_phase.push(((packed >> 8) as u8, (packed & 0xFF) as u8));
    }
    let n_levels = r.try_get_u64()? as usize;
    let mut act_end = HashMap::new();
    for _ in 0..n_levels {
        let level = r.try_get_u64()? as u8;
        let n_entries = r.try_get_u64()? as usize;
        let mut entries = Vec::new();
        for _ in 0..n_entries {
            let b = try_get_box(&mut r)?;
            entries.push((b, try_get_ids(&mut r)?));
        }
        act_end.insert(level, entries);
    }
    let n_folds = r.try_get_u64()? as usize;
    let mut fold_ids = HashMap::new();
    for _ in 0..n_folds {
        let level = r.try_get_u64()? as u8;
        let member = r.try_get_u64()? as usize;
        fold_ids.insert((level, member), try_get_ids(&mut r)?);
    }
    let stats = FactorStats::decode(&mut r)?;
    let at = r.position();
    let top = match r.try_get_u64()? {
        0 => None,
        1 => {
            let idx = try_get_ids(&mut r)?;
            let lu = Wire::decode(&mut r)?;
            Some((idx, lu))
        }
        _ => {
            return Err(CodecError::Invalid {
                what: "rank snapshot top discriminant",
                at,
            })
        }
    };
    Ok((
        RankState {
            records,
            record_phase,
            act_end,
            fold_ids,
            stats,
        },
        top,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use srsf_linalg::{c64, Lu, Mat};

    fn sample_record<T: Scalar>(v: T) -> BoxElimination<T> {
        BoxElimination {
            box_id: BoxId {
                level: 3,
                ix: 5,
                iy: 6,
            },
            level: 3,
            color: 2,
            redundant: vec![1, 2],
            skel: vec![3],
            nbr: vec![4, 5, 6],
            t: Mat::from_fn(1, 2, |_, _| v),
            lu: Lu {
                lu: Mat::from_fn(2, 2, |i, j| if i == j { v } else { T::ZERO }),
                piv: vec![0, 1],
            },
            es: Mat::from_fn(1, 2, |_, _| v),
            en: Mat::from_fn(3, 2, |_, _| v),
            fs: Mat::from_fn(2, 1, |_, _| v),
            fnb: Mat::from_fn(2, 3, |_, _| v),
        }
    }

    #[test]
    fn record_round_trip_real_and_complex() {
        let rec = sample_record(1.5f64);
        let back = BoxElimination::<f64>::from_bytes(rec.to_bytes()).unwrap();
        assert_eq!(back.box_id, rec.box_id);
        assert_eq!((back.level, back.color), (3, 2));
        assert_eq!(back.nbr, rec.nbr);
        assert_eq!(back.en, rec.en);
        let rec = sample_record(c64::new(0.5, -2.0));
        let back = BoxElimination::<c64>::from_bytes(rec.to_bytes()).unwrap();
        assert_eq!(back.fnb, rec.fnb);
    }

    #[test]
    fn truncated_record_is_an_error() {
        let rec = sample_record(1.0f64);
        let bytes = rec.to_bytes();
        for cut in [0, 8, 17, bytes.len() / 2, bytes.len() - 1] {
            let mut short = bytes.clone();
            short.truncate(cut);
            assert!(
                BoxElimination::<f64>::from_bytes(short).is_err(),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn factor_error_round_trip() {
        for e in [
            FactorError::SingularDiagonal {
                box_id: BoxId {
                    level: 2,
                    ix: 1,
                    iy: 3,
                },
            },
            FactorError::SingularTop { size: 40, step: 7 },
        ] {
            let back = FactorError::from_bytes(e.to_bytes()).unwrap();
            assert_eq!(format!("{back}"), format!("{e}"));
        }
    }

    #[test]
    fn factorization_round_trip() {
        let stats = {
            let mut s = FactorStats::new(9, 2);
            s.add_rank(2, 4);
            s.add_rank(2, 6);
            s.total_s = 1.25;
            s
        };
        let f = Factorization::from_parts(
            9,
            vec![sample_record(2.0f64)],
            vec![0, 4, 8],
            Lu {
                lu: Mat::from_fn(3, 3, |i, j| (i + 2 * j) as f64 + 1.0),
                piv: vec![0, 2, 1],
            },
            stats,
        );
        let back = Factorization::<f64>::from_bytes(f.to_bytes()).unwrap();
        assert_eq!(back.n(), 9);
        assert_eq!(back.n_records(), 1);
        assert_eq!(back.top_size(), 3);
        assert_eq!(back.stats().avg_rank(2), Some(5.0));
        // Same solve behavior bit for bit.
        let mut x1 = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0];
        let mut x2 = x1.clone();
        f.apply_inverse(&mut x1);
        back.apply_inverse(&mut x2);
        assert_eq!(x1, x2);
    }
}
