//! [`Wire`] encodings for the factorization types that cross a process
//! boundary on the TCP transport.
//!
//! Worker ranks return `Result<(CommStats, Option<(Factorization, ...)>),
//! FactorError>` from `World::run`; on the TCP backend that value is
//! serialized back to rank 0 as a result frame, so everything in it needs
//! a total, bounds-checked decode (a corrupted frame must surface as a
//! [`CodecError`], not a panic). The same encodings also serve the
//! record-gather messages inside the distributed factorization itself.

use crate::elimination::{BoxElimination, FactorError};
use crate::sequential::Factorization;
use crate::stats::FactorStats;
use srsf_geometry::tree::BoxId;
use srsf_linalg::Scalar;
use srsf_runtime::codec::{ByteReader, ByteWriter, CodecError, Wire};

/// Pack a box id the way the distributed driver's messages do:
/// `level << 48 | ix << 24 | iy`.
pub(crate) fn put_box(w: &mut ByteWriter, b: &BoxId) {
    w.put_u64(((b.level as u64) << 48) | ((b.ix as u64) << 24) | b.iy as u64);
}

pub(crate) fn try_get_box(r: &mut ByteReader) -> Result<BoxId, CodecError> {
    let v = r.try_get_u64()?;
    Ok(BoxId {
        level: (v >> 48) as u8,
        ix: ((v >> 24) & 0xFF_FFFF) as u32,
        iy: (v & 0xFF_FFFF) as u32,
    })
}

/// Length-prefixed id slice (u32 ids widened to u64 slots) — the one
/// encoding shared by the in-protocol messages in `distributed.rs` and
/// the [`Wire`] record/factorization impls below.
pub(crate) fn put_ids(w: &mut ByteWriter, ids: &[u32]) {
    w.put_u64(ids.len() as u64);
    for &i in ids {
        w.put_u64(i as u64);
    }
}

pub(crate) fn try_get_ids(r: &mut ByteReader) -> Result<Vec<u32>, CodecError> {
    Ok(r.try_get_u64_slice()?
        .into_iter()
        .map(|v| v as u32)
        .collect())
}

/// Wire wrapper for a scalar vector (e.g. a distributed solution).
///
/// `Vec<T: Scalar>` cannot take the generic `Vec<T: Wire>` container
/// encoding without overlapping impls (`f64` is both), so the rank
/// results that carry a solution wrap it in this newtype, which encodes
/// as a plain length-prefixed scalar slice.
pub struct ScalarVec<T>(pub Vec<T>);

impl<T: Scalar> Wire for ScalarVec<T> {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_scalar_slice(&self.0);
    }
    fn decode(r: &mut ByteReader) -> Result<Self, CodecError> {
        Ok(ScalarVec(r.try_get_scalar_slice()?))
    }
}

impl Wire for FactorError {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            FactorError::SingularDiagonal { box_id } => {
                w.put_u64(0);
                put_box(w, box_id);
            }
            FactorError::SingularTop { size, step } => {
                w.put_u64(1);
                w.put_u64(*size as u64);
                w.put_u64(*step as u64);
            } // `FactorError` is non_exhaustive for downstream crates; new
              // in-crate variants must be added here to cross the wire.
        }
    }
    fn decode(r: &mut ByteReader) -> Result<Self, CodecError> {
        let at = r.position();
        match r.try_get_u64()? {
            0 => Ok(FactorError::SingularDiagonal {
                box_id: try_get_box(r)?,
            }),
            1 => Ok(FactorError::SingularTop {
                size: r.try_get_u64()? as usize,
                step: r.try_get_u64()? as usize,
            }),
            _ => Err(CodecError::Invalid {
                what: "FactorError discriminant",
                at,
            }),
        }
    }
}

impl<T: Scalar> Wire for BoxElimination<T> {
    fn encode(&self, w: &mut ByteWriter) {
        put_box(w, &self.box_id);
        // (level, color) scheduling stamp for the threaded solve apply.
        w.put_u64(((self.level as u64) << 8) | self.color as u64);
        put_ids(w, &self.redundant);
        put_ids(w, &self.skel);
        put_ids(w, &self.nbr);
        w.put_mat(&self.t);
        self.lu.encode(w);
        w.put_mat(&self.es);
        w.put_mat(&self.en);
        w.put_mat(&self.fs);
        w.put_mat(&self.fnb);
    }
    fn decode(r: &mut ByteReader) -> Result<Self, CodecError> {
        let box_id = try_get_box(r)?;
        let stamp = r.try_get_u64()?;
        Ok(BoxElimination {
            box_id,
            level: (stamp >> 8) as u8,
            color: (stamp & 0xFF) as u8,
            redundant: try_get_ids(r)?,
            skel: try_get_ids(r)?,
            nbr: try_get_ids(r)?,
            t: r.try_get_mat()?,
            lu: Wire::decode(r)?,
            es: r.try_get_mat()?,
            en: r.try_get_mat()?,
            fs: r.try_get_mat()?,
            fnb: r.try_get_mat()?,
        })
    }
}

impl Wire for FactorStats {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(self.n as u64);
        w.put_u64(self.leaf_level as u64);
        w.put_u64(self.ranks.len() as u64);
        for (&level, &(count, sum)) in &self.ranks {
            w.put_u64(level as u64);
            w.put_u64(count as u64);
            w.put_u64(sum as u64);
        }
        w.put_f64(self.eliminate_s);
        w.put_f64(self.merge_s);
        w.put_f64(self.top_s);
        w.put_f64(self.total_s);
        w.put_f64(self.solve_s);
        w.put_u64(self.top_size as u64);
        w.put_u64(self.record_bytes as u64);
        w.put_u64(self.peak_store_bytes as u64);
    }
    fn decode(r: &mut ByteReader) -> Result<Self, CodecError> {
        let n = r.try_get_u64()? as usize;
        let leaf_level = r.try_get_u64()? as u8;
        let at = r.position();
        let n_levels = r.try_get_u64()?;
        if n_levels > 256 {
            // Levels are u8, so more than 256 entries is corruption.
            return Err(CodecError::Invalid {
                what: "FactorStats level count",
                at,
            });
        }
        let mut stats = FactorStats::new(n, leaf_level);
        for _ in 0..n_levels {
            let level = r.try_get_u64()? as u8;
            let count = r.try_get_u64()? as usize;
            let sum = r.try_get_u64()? as usize;
            stats.ranks.insert(level, (count, sum));
        }
        stats.eliminate_s = r.try_get_f64()?;
        stats.merge_s = r.try_get_f64()?;
        stats.top_s = r.try_get_f64()?;
        stats.total_s = r.try_get_f64()?;
        stats.solve_s = r.try_get_f64()?;
        stats.top_size = r.try_get_u64()? as usize;
        stats.record_bytes = r.try_get_u64()? as usize;
        stats.peak_store_bytes = r.try_get_u64()? as usize;
        Ok(stats)
    }
}

impl<T: Scalar> Wire for Factorization<T> {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(self.n as u64);
        self.records.encode(w);
        put_ids(w, &self.top_idx);
        self.top_lu.encode(w);
        self.stats.encode(w);
    }
    fn decode(r: &mut ByteReader) -> Result<Self, CodecError> {
        let n = r.try_get_u64()? as usize;
        let records = Wire::decode(r)?;
        let top_idx = try_get_ids(r)?;
        let top_lu = Wire::decode(r)?;
        let stats = FactorStats::decode(r)?;
        Ok(Factorization::from_parts(
            n, records, top_idx, top_lu, stats,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srsf_linalg::{c64, Lu, Mat};

    fn sample_record<T: Scalar>(v: T) -> BoxElimination<T> {
        BoxElimination {
            box_id: BoxId {
                level: 3,
                ix: 5,
                iy: 6,
            },
            level: 3,
            color: 2,
            redundant: vec![1, 2],
            skel: vec![3],
            nbr: vec![4, 5, 6],
            t: Mat::from_fn(1, 2, |_, _| v),
            lu: Lu {
                lu: Mat::from_fn(2, 2, |i, j| if i == j { v } else { T::ZERO }),
                piv: vec![0, 1],
            },
            es: Mat::from_fn(1, 2, |_, _| v),
            en: Mat::from_fn(3, 2, |_, _| v),
            fs: Mat::from_fn(2, 1, |_, _| v),
            fnb: Mat::from_fn(2, 3, |_, _| v),
        }
    }

    #[test]
    fn record_round_trip_real_and_complex() {
        let rec = sample_record(1.5f64);
        let back = BoxElimination::<f64>::from_bytes(rec.to_bytes()).unwrap();
        assert_eq!(back.box_id, rec.box_id);
        assert_eq!((back.level, back.color), (3, 2));
        assert_eq!(back.nbr, rec.nbr);
        assert_eq!(back.en, rec.en);
        let rec = sample_record(c64::new(0.5, -2.0));
        let back = BoxElimination::<c64>::from_bytes(rec.to_bytes()).unwrap();
        assert_eq!(back.fnb, rec.fnb);
    }

    #[test]
    fn truncated_record_is_an_error() {
        let rec = sample_record(1.0f64);
        let bytes = rec.to_bytes();
        for cut in [0, 8, 17, bytes.len() / 2, bytes.len() - 1] {
            let mut short = bytes.clone();
            short.truncate(cut);
            assert!(
                BoxElimination::<f64>::from_bytes(short).is_err(),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn factor_error_round_trip() {
        for e in [
            FactorError::SingularDiagonal {
                box_id: BoxId {
                    level: 2,
                    ix: 1,
                    iy: 3,
                },
            },
            FactorError::SingularTop { size: 40, step: 7 },
        ] {
            let back = FactorError::from_bytes(e.to_bytes()).unwrap();
            assert_eq!(format!("{back}"), format!("{e}"));
        }
    }

    #[test]
    fn factorization_round_trip() {
        let stats = {
            let mut s = FactorStats::new(9, 2);
            s.add_rank(2, 4);
            s.add_rank(2, 6);
            s.total_s = 1.25;
            s
        };
        let f = Factorization::from_parts(
            9,
            vec![sample_record(2.0f64)],
            vec![0, 4, 8],
            Lu {
                lu: Mat::from_fn(3, 3, |i, j| (i + 2 * j) as f64 + 1.0),
                piv: vec![0, 2, 1],
            },
            stats,
        );
        let back = Factorization::<f64>::from_bytes(f.to_bytes()).unwrap();
        assert_eq!(back.n(), 9);
        assert_eq!(back.n_records(), 1);
        assert_eq!(back.top_size(), 3);
        assert_eq!(back.stats().avg_rank(2), Some(5.0));
        // Same solve behavior bit for bit.
        let mut x1 = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0];
        let mut x2 = x1.clone();
        f.apply_inverse(&mut x1);
        back.apply_inverse(&mut x2);
        assert_eq!(x1, x2);
    }
}
