//! `srsf-core`: the strong recursive skeletonization factorization (RS-S)
//! and its parallel variants — the paper's primary contribution.
//!
//! The factorization applies approximate block Gaussian elimination to the
//! dense kernel matrix in a multi-level sweep over a quad-tree (Section II
//! of the paper): for each box, the interaction with its far field is
//! compressed with a proxy-accelerated interpolative decomposition, the
//! redundant degrees of freedom are eliminated, and the Schur-complement
//! fill-in lands only on neighboring boxes. Three drivers share the same
//! per-box elimination kernel:
//!
//! * [`sequential`] — Algorithm 1: a level-by-level, box-by-box sweep.
//! * [`colored`] — the shared-memory reference of Section V-C (the paper's
//!   C++/OpenMP comparison): all boxes of a level are graph-colored and
//!   same-color boxes are processed concurrently, with snapshot reads and
//!   additive merge of Schur updates (provably order-equivalent).
//! * [`distributed`] — Algorithm 2, the contribution: leaf boxes are block
//!   partitioned over a process grid; *interior* boxes factor with zero
//!   communication, *boundary* boxes in four process-color rounds with
//!   neighbor-only update messages; ranks fold by 4 as the tree coarsens.
//!
//! Supporting modules: [`store`] (modified-interaction block store with
//! kernel-on-miss), [`skeletonize`] (proxy ID), [`elimination`] (the strong
//! skeletonization operator `Z(A; B)` of Eq. 10), [`levels`] (merge /
//! level-transition logic), [`solve`] (upward/downward substitution passes),
//! [`stats`] (ranks per level, memory, timing breakdowns).

#![forbid(unsafe_code)]

pub mod colored;
pub mod distributed;
pub mod elimination;
pub mod error;
pub mod levels;
pub mod sequential;
pub mod skeletonize;
pub mod solve;
pub mod solver;
pub mod stats;
pub mod store;
pub mod wire;

pub use error::SrsfError;
#[allow(deprecated)]
pub use sequential::factorize;
pub use sequential::Factorization;
pub use skeletonize::CompressionCtx;
pub use solver::{Driver, Factorized, Solver, SolverBuilder};
pub use srsf_runtime::{BaseTransport, FaultPlan, RankHealth, Transport};
pub use stats::{CompressionTelemetry, FactorStats};

/// How per-box skeletonization compresses the proxy matrix.
///
/// The deterministic baseline runs a full column-pivoted QR on the tall
/// proxy stack; the sketched path (the default) multiplies the stack by a
/// small seeded Rademacher sketch and pivots on that, verifying the
/// tolerance a-posteriori and falling back to the full CPQR when the
/// sketch cannot certify it — see `srsf_linalg::rid` for the algorithm
/// and `skeletonize` for the block-by-block assembly and the FFT leaf
/// fast path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum Compression {
    /// Full deterministic CPQR interpolative decomposition (the PR 2
    /// baseline path).
    Cpqr,
    /// Randomized sketch-then-ID with a-posteriori verification.
    Sketched {
        /// Extra sketch rows beyond the rank guess (default 10).
        oversample: usize,
        /// Base seed; mixed with `(kernel id, level, ix, iy)` per box so
        /// skeletons are identical across drivers, thread counts, and
        /// transports.
        seed: u64,
    },
}

impl Compression {
    /// The default sketched configuration.
    pub fn sketched() -> Self {
        Compression::Sketched {
            oversample: 10,
            seed: 0x5253_5346_5249_4431, // ascii "RSSFRID1"
        }
    }
}

impl Default for Compression {
    fn default() -> Self {
        Compression::sketched()
    }
}

/// Options controlling the factorization.
///
/// Construct with [`FactorOpts::default`] (the paper's parameters) and
/// adjust with the `with_*` setters — the struct is `#[non_exhaustive]`
/// so new knobs can be added without breaking downstream crates:
///
/// ```
/// use srsf_core::FactorOpts;
/// let opts = FactorOpts::default().with_tol(1e-8).with_leaf_size(32);
/// assert_eq!(opts.leaf_size, 32);
/// ```
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct FactorOpts {
    /// Relative tolerance for the interpolative decomposition (paper: ε).
    pub tol: f64,
    /// Target number of points per leaf box.
    pub leaf_size: usize,
    /// Proxy circle radius as a multiple of the box side (paper: 2.5).
    pub proxy_radius_factor: f64,
    /// Minimum number of proxy points on the circle.
    pub n_proxy_min: usize,
    /// Extra proxy points per wavelength for oscillatory kernels: the
    /// effective count is `max(n_proxy_min, ceil(proxy_osc_factor * kappa *
    /// radius) + 32)` where `kappa` is the kernel's oscillation parameter.
    pub proxy_osc_factor: f64,
    /// Coarsest tree level at which compression is applied (paper: 3; the
    /// remaining active DOFs above it are finished with a dense LU).
    pub min_compress_level: usize,
    /// Worker threads the dense GEMM may use for large products inside the
    /// *sequential* driver (`1` = serial, the default; `0` = auto-detect).
    /// Sequential-only by contract: the colored driver parallelizes across
    /// boxes (`Driver::Colored { threads, .. }`) and the distributed
    /// driver across ranks and per-rank boxes ([`rank_threads`]), so
    /// setting this with either of those drivers is rejected with
    /// [`SrsfError::UnsupportedOption`] rather than silently ignored.
    ///
    /// [`rank_threads`]: FactorOpts::rank_threads
    pub gemm_threads: usize,
    /// Worker threads each *distributed* rank uses for its per-phase box
    /// eliminations (`1` = serial, the default). Every rank runs its
    /// phase boxes in four sub-color rounds on a work-stealing pool and
    /// merges in fixed box order, so the factorization is bit-identical
    /// for every value of this knob; see the module docs of
    /// [`distributed`]. Rejected with [`SrsfError::UnsupportedOption`]
    /// by the sequential and colored drivers (which have their own
    /// threading levers), and `0` is rejected with
    /// [`SrsfError::InvalidThreadCount`].
    pub rank_threads: usize,
    /// Message transport for the distributed driver:
    /// [`Transport::InProc`] runs ranks as threads of this process (the
    /// default); [`Transport::Tcp`] runs every rank as a spawned OS
    /// process over localhost sockets. The factorization, solution, and
    /// per-rank message/word counters are identical across backends; the
    /// other drivers ignore this knob.
    pub transport: Transport,
    /// Residency mode for the distributed driver (default: off). When
    /// on, the rank world stays alive after factorization and serves
    /// every solve in place — records stay on their owning ranks and
    /// rank 0 never assembles the global record set. Off, all records
    /// are gathered onto rank 0 and solves run locally there. See
    /// [`solver::SolverBuilder::resident`]; the other drivers ignore
    /// this knob.
    pub resident: bool,
    /// Checkpoint directory for the distributed driver (default: none).
    /// When set, every rank writes a versioned, CRC-checked snapshot of
    /// its factorization state (`rank_{r}.ckpt`) the moment the factor
    /// sweep completes, and rank 0 writes a `manifest.ckpt` describing
    /// the run; [`crate::Solver::restore_resident`] rebuilds a resident
    /// world from that directory without re-factoring. The other drivers
    /// ignore this knob.
    pub checkpoint_dir: Option<std::path::PathBuf>,
    /// Bounded-receive timeout for the distributed driver's rank world
    /// (default: 120 s). Every receive and barrier waits at most this
    /// long before reporting the missing peer as a failure — the knob
    /// that bounds how long a crashed rank or a cut link can stall a
    /// build or a resident solve. The other drivers ignore this knob.
    pub recv_timeout: std::time::Duration,
    /// Span tracing for the distributed driver (default: off). When on,
    /// every rank records phase, compute, and comm-wait spans into
    /// per-thread ring buffers (`srsf-trace`); rank 0 gathers the
    /// reports and [`crate::Solver`] exposes them as Chrome trace-event
    /// JSON and a plain-text profile table. Tracing never touches the
    /// §IV counters — traced runs are bit-identical to untraced ones in
    /// solutions and message/word counts. The other drivers ignore this
    /// knob.
    pub trace: bool,
    /// Skeletonization compression path (default:
    /// [`Compression::sketched`]). [`Compression::Cpqr`] restores the
    /// deterministic full-CPQR baseline; both paths satisfy the same
    /// far-field accuracy bound (the sketched path verifies it
    /// a-posteriori per box and falls back to CPQR when it cannot).
    pub compression: Compression,
}

impl Default for FactorOpts {
    fn default() -> Self {
        Self {
            tol: 1e-6,
            leaf_size: 64,
            proxy_radius_factor: 2.5,
            n_proxy_min: 64,
            proxy_osc_factor: 2.0,
            min_compress_level: 3,
            gemm_threads: 1,
            rank_threads: 1,
            transport: Transport::InProc,
            resident: false,
            checkpoint_dir: None,
            recv_timeout: std::time::Duration::from_secs(120),
            trace: false,
            compression: Compression::default(),
        }
    }
}

impl FactorOpts {
    /// The paper's default parameters (same as [`FactorOpts::default`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the ID tolerance (paper: ε).
    pub fn with_tol(mut self, tol: f64) -> Self {
        self.tol = tol;
        self
    }

    /// Set the target number of points per leaf box.
    pub fn with_leaf_size(mut self, leaf_size: usize) -> Self {
        self.leaf_size = leaf_size;
        self
    }

    /// Set the proxy circle radius factor.
    pub fn with_proxy_radius_factor(mut self, factor: f64) -> Self {
        self.proxy_radius_factor = factor;
        self
    }

    /// Set the minimum number of proxy points.
    pub fn with_n_proxy_min(mut self, n: usize) -> Self {
        self.n_proxy_min = n;
        self
    }

    /// Set the oscillatory proxy point factor.
    pub fn with_proxy_osc_factor(mut self, factor: f64) -> Self {
        self.proxy_osc_factor = factor;
        self
    }

    /// Set the coarsest compressed tree level.
    pub fn with_min_compress_level(mut self, level: usize) -> Self {
        self.min_compress_level = level;
        self
    }

    /// Set the GEMM thread budget for the sequential driver's dense
    /// products (`1` = serial, `0` = auto-detect hardware parallelism).
    pub fn with_gemm_threads(mut self, threads: usize) -> Self {
        self.gemm_threads = threads;
        self
    }

    /// Set the per-rank elimination thread count for the distributed
    /// driver (`1` = serial; results are bit-identical for any value).
    pub fn with_rank_threads(mut self, threads: usize) -> Self {
        self.rank_threads = threads;
        self
    }

    /// Set the message transport for the distributed driver.
    pub fn with_transport(mut self, transport: Transport) -> Self {
        self.transport = transport;
        self
    }

    /// Set the distributed driver's residency mode (keep the rank world
    /// alive and serve solves in place; see
    /// [`solver::SolverBuilder::resident`]).
    pub fn with_resident(mut self, resident: bool) -> Self {
        self.resident = resident;
        self
    }

    /// Set the checkpoint directory: every rank snapshots its
    /// factorization state there as soon as the factor sweep completes
    /// (see [`crate::Solver::restore_resident`]).
    pub fn with_checkpoint_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.checkpoint_dir = Some(dir.into());
        self
    }

    /// Set the distributed driver's bounded-receive timeout — how long a
    /// rank waits on a missing peer before reporting it failed.
    pub fn with_recv_timeout(mut self, t: std::time::Duration) -> Self {
        self.recv_timeout = t;
        self
    }

    /// Enable span tracing for the distributed driver (see
    /// [`solver::SolverBuilder::trace`]). Traced runs stay bit-identical
    /// to untraced ones in solutions and §IV counters.
    pub fn with_trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Set the skeletonization compression path (sketched by default;
    /// [`Compression::Cpqr`] restores the deterministic baseline).
    pub fn with_compression(mut self, compression: Compression) -> Self {
        self.compression = compression;
        self
    }
}
