//! `srsf-core`: the strong recursive skeletonization factorization (RS-S)
//! and its parallel variants — the paper's primary contribution.
//!
//! The factorization applies approximate block Gaussian elimination to the
//! dense kernel matrix in a multi-level sweep over a quad-tree (Section II
//! of the paper): for each box, the interaction with its far field is
//! compressed with a proxy-accelerated interpolative decomposition, the
//! redundant degrees of freedom are eliminated, and the Schur-complement
//! fill-in lands only on neighboring boxes. Three drivers share the same
//! per-box elimination kernel:
//!
//! * [`sequential`] — Algorithm 1: a level-by-level, box-by-box sweep.
//! * [`colored`] — the shared-memory reference of Section V-C (the paper's
//!   C++/OpenMP comparison): all boxes of a level are graph-colored and
//!   same-color boxes are processed concurrently, with snapshot reads and
//!   additive merge of Schur updates (provably order-equivalent).
//! * [`distributed`] — Algorithm 2, the contribution: leaf boxes are block
//!   partitioned over a process grid; *interior* boxes factor with zero
//!   communication, *boundary* boxes in four process-color rounds with
//!   neighbor-only update messages; ranks fold by 4 as the tree coarsens.
//!
//! Supporting modules: [`store`] (modified-interaction block store with
//! kernel-on-miss), [`skeletonize`] (proxy ID), [`elimination`] (the strong
//! skeletonization operator `Z(A; B)` of Eq. 10), [`levels`] (merge /
//! level-transition logic), [`solve`] (upward/downward substitution passes),
//! [`stats`] (ranks per level, memory, timing breakdowns).

pub mod colored;
pub mod distributed;
pub mod elimination;
pub mod levels;
pub mod sequential;
pub mod skeletonize;
pub mod solve;
pub mod stats;
pub mod store;

pub use sequential::{factorize, Factorization};
pub use stats::FactorStats;

/// Options controlling the factorization.
#[derive(Clone, Debug)]
pub struct FactorOpts {
    /// Relative tolerance for the interpolative decomposition (paper: ε).
    pub tol: f64,
    /// Target number of points per leaf box.
    pub leaf_size: usize,
    /// Proxy circle radius as a multiple of the box side (paper: 2.5).
    pub proxy_radius_factor: f64,
    /// Minimum number of proxy points on the circle.
    pub n_proxy_min: usize,
    /// Extra proxy points per wavelength for oscillatory kernels: the
    /// effective count is `max(n_proxy_min, ceil(proxy_osc_factor * kappa *
    /// radius) + 32)` where `kappa` is the kernel's oscillation parameter.
    pub proxy_osc_factor: f64,
    /// Coarsest tree level at which compression is applied (paper: 3; the
    /// remaining active DOFs above it are finished with a dense LU).
    pub min_compress_level: usize,
}

impl Default for FactorOpts {
    fn default() -> Self {
        Self {
            tol: 1e-6,
            leaf_size: 64,
            proxy_radius_factor: 2.5,
            n_proxy_min: 64,
            proxy_osc_factor: 2.0,
            min_compress_level: 3,
        }
    }
}
