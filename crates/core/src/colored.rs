//! The shared-memory box-colored parallel driver (Section V-C).
//!
//! This is the paper's C++/OpenMP *reference* solver, reimplemented: all
//! boxes of a level are graph-colored so that neighbors get different
//! colors, and boxes of one color are processed concurrently. Two schemes
//! are provided:
//!
//! * [`BoxColoring::Four`] — the paper's scheme. Same-color boxes can sit
//!   at box distance 2 and then share Schur-update *targets* (pairs between
//!   their common neighbors). The driver therefore runs each color as a
//!   snapshot-read compute phase followed by a deterministic sequential
//!   merge; because same-color boxes never read what another same-color
//!   box writes (distance-2 analysis of Section III) and the shared writes
//!   are additive, this reproduces a sequential elimination order exactly
//!   (up to floating-point commutation of the additions, which the merge
//!   keeps in fixed box order — so results are bit-deterministic for any
//!   thread count).
//! * [`BoxColoring::Nine`] — distance-3 coloring: all writes disjoint,
//!   lock-free by construction; used as an ablation.

use crate::elimination::{apply_output, eliminate_box, EliminationOutput, FactorError};
use crate::levels::merge_to_parent;
use crate::sequential::{domain_for, factor_top, Factorization};
use crate::skeletonize::CompressionCtx;
use crate::stats::FactorStats;
use crate::store::{ActiveSets, BlockStore};
use crate::FactorOpts;
use srsf_geometry::point::Point;
pub use srsf_geometry::procgrid::BoxColoring as ColorScheme;
use srsf_geometry::tree::{BoxId, QuadTree};
use srsf_kernels::kernel::Kernel;
// Sync primitives come through the srsf-verify shims: identical to
// `std::sync` in a normal build, schedule-explored under
// `--cfg srsf_model` (see crates/verify).
use srsf_verify::sync::atomic::{AtomicUsize, Ordering};
use srsf_verify::sync::OnceLock;
use std::time::Instant;

/// Factor with the box-colored parallel schedule using `n_threads` worker
/// threads per color round.
#[deprecated(
    since = "0.1.0",
    note = "use `Solver::builder(kernel, pts).driver(Driver::Colored { .. }).build()` instead"
)]
pub fn colored_factorize<K: Kernel>(
    kernel: &K,
    pts: &[Point],
    opts: &FactorOpts,
    scheme: ColorScheme,
    n_threads: usize,
) -> Result<Factorization<K::Elem>, FactorError> {
    let tree = QuadTree::build(pts, domain_for(pts), opts.leaf_size);
    colored_factorize_with_tree(kernel, pts, &tree, opts, scheme, n_threads)
}

/// Factor with the box-colored schedule against a caller-provided tree
/// (the driver entry point used by `Solver`).
pub(crate) fn colored_factorize_with_tree<K: Kernel>(
    kernel: &K,
    pts: &[Point],
    tree: &QuadTree,
    opts: &FactorOpts,
    scheme: ColorScheme,
    n_threads: usize,
) -> Result<Factorization<K::Elem>, FactorError> {
    assert!(n_threads >= 1);
    let t_total = Instant::now();
    let n = pts.len();
    let leaf = tree.leaf_level();
    let mut stats = FactorStats::new(n, leaf);
    let mut store = BlockStore::new(kernel, pts);
    let mut act = ActiveSets::new();
    for id in tree.boxes_at_level(leaf) {
        act.set(id, tree.leaf_points(&id).to_vec());
    }

    let lmin = (opts.min_compress_level as u8).min(leaf);
    let ctx = CompressionCtx::new(kernel, pts, tree, opts);
    let mut records = Vec::new();
    if leaf >= lmin && leaf >= 1 {
        let mut level = leaf;
        loop {
            let t0 = Instant::now();
            for color in 0..scheme.count() {
                let boxes: Vec<BoxId> = tree
                    .boxes_at_level(level)
                    .filter(|b| scheme.color(b) == color)
                    .collect();
                let outputs =
                    eliminate_color_round(&store, &act, tree, &boxes, opts, &ctx, n_threads)?;
                // Deterministic merge in row-major box order.
                for (b, out) in boxes.iter().zip(outputs) {
                    if let Some(rec) = &out.record {
                        stats.add_rank(level, rec.skel.len());
                    }
                    stats.compression.absorb(&out.compression);
                    apply_output(&mut store, &mut act, b, &out, &ctx);
                    if let Some(mut rec) = out.record {
                        // Restamp with this driver's schedule color so the
                        // threaded solve apply sees whole color rounds.
                        rec.color = scheme.color(b);
                        records.push(rec);
                    }
                }
            }
            stats.eliminate_s += t0.elapsed().as_secs_f64();
            stats.peak_store_bytes = stats.peak_store_bytes.max(store.heap_bytes());
            if level == lmin {
                break;
            }
            let t1 = Instant::now();
            merge_to_parent(&mut store, &mut act, tree, level);
            stats.merge_s += t1.elapsed().as_secs_f64();
            level -= 1;
        }
    }

    let t2 = Instant::now();
    let top_level = if leaf >= lmin { lmin } else { leaf };
    let (top_idx, top_lu) = factor_top(&store, &act, tree, top_level, &ctx)?;
    stats.top_s = t2.elapsed().as_secs_f64();
    stats.total_s = t_total.elapsed().as_secs_f64();
    Ok(Factorization::from_parts(
        n, records, top_idx, top_lu, stats,
    ))
}

/// Snapshot-compute the eliminations of one color round across threads,
/// preserving the input box order in the output.
///
/// Boxes are handed out through a shared atomic index (pull
/// work-stealing) rather than fixed chunks: per-box cost tracks the
/// skeleton rank, which varies widely across a level, and static chunking
/// left threads idle at the tail of every round.
///
/// Shared with the distributed driver, whose per-rank sub-color rounds
/// (`FactorOpts::rank_threads`) run the same snapshot/merge schedule over
/// a rank's phase boxes.
pub(crate) fn eliminate_color_round<K: Kernel>(
    store: &BlockStore<'_, K>,
    act: &ActiveSets,
    tree: &QuadTree,
    boxes: &[BoxId],
    opts: &FactorOpts,
    ctx: &CompressionCtx,
    n_threads: usize,
) -> Result<Vec<EliminationOutput<K::Elem>>, FactorError> {
    if n_threads == 1 || boxes.len() <= 1 {
        return boxes
            .iter()
            .map(|b| eliminate_box(store, act, tree, b, opts, ctx))
            .collect();
    }
    let slots: Vec<OnceLock<Result<EliminationOutput<K::Elem>, FactorError>>> =
        (0..boxes.len()).map(|_| OnceLock::new()).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..n_threads.min(boxes.len()) {
            scope.spawn(|| loop {
                // Relaxed is enough: the claim index carries no data — each worker
                // publishes its elimination through the slot's OnceLock, whose set/get
                // provides the release/acquire edge (verified schedule-independent by
                // work_stealing_claims_each_chunk_once in crates/verify/tests/models.rs).
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= boxes.len() {
                    break;
                }
                let _ = slots[i].set(eliminate_box(store, act, tree, &boxes[i], opts, ctx));
            });
        }
    });
    slots
        .into_iter()
        // INVARIANT: the per-color barrier guarantees every slot in a finished
        // color was written exactly once
        .map(|s| s.into_inner().expect("missing elimination output"))
        .collect()
}
