//! The unified error type for the factorization drivers.
//!
//! Every public entry point returns [`SrsfError`] instead of panicking on
//! bad input, so callers can distinguish configuration mistakes (empty
//! point sets, nonsensical tolerances, oversized process grids) from
//! numerical failures (a singular sparsified diagonal block).

use crate::elimination::FactorError;
use srsf_geometry::tree::BoxId;

/// Errors raised by the factorization drivers and the [`crate::Solver`]
/// builder.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SrsfError {
    /// The point set is empty — there is nothing to factor.
    EmptyPointSet,
    /// The interpolative-decomposition tolerance must be positive and
    /// finite.
    InvalidTolerance {
        /// The offending tolerance.
        tol: f64,
    },
    /// The leaf population target must be at least 1.
    InvalidLeafSize,
    /// The selected driver needs at least one worker thread (the colored
    /// driver's `threads`, or the distributed driver's
    /// [`rank_threads`](crate::FactorOpts::rank_threads)).
    InvalidThreadCount,
    /// An option was set that the selected driver does not support; the
    /// message names the knob that driver threads through instead. Raised
    /// rather than silently ignoring the option (e.g. `gemm_threads` is
    /// sequential-only, `rank_threads` is distributed-only).
    UnsupportedOption {
        /// The option that was set.
        option: &'static str,
        /// The driver that rejects it.
        driver: &'static str,
        /// The knob to use with that driver instead.
        instead: &'static str,
    },
    /// The distributed driver needs a square power-of-two process grid,
    /// i.e. a rank count that is a power of four (1, 4, 16, …).
    InvalidProcessCount {
        /// The offending rank count.
        p: usize,
    },
    /// The process grid has more ranks than the quad-tree can feed: every
    /// rank must own at least a 2 x 2 block of leaf boxes (Section III-B's
    /// same-color-independence requirement).
    GridTooLarge {
        /// Ranks in the process grid.
        p: usize,
        /// Leaf boxes in the quad-tree.
        leaf_boxes: usize,
    },
    /// The right-hand side length does not match the point count.
    RhsLength {
        /// Expected length (`N`, the number of points).
        expected: usize,
        /// Length of the supplied right-hand side.
        got: usize,
    },
    /// A sparsified diagonal block was singular — the compression
    /// tolerance is too loose for this kernel/geometry.
    SingularDiagonal {
        /// The box whose `X_RR` failed to factor.
        box_id: BoxId,
    },
    /// The dense top block was singular: the DOFs surviving above the
    /// compression levels form a rank-deficient system. Unlike
    /// [`SrsfError::SingularDiagonal`] this is a property of the whole
    /// remaining active set, not of any particular box.
    SingularTop {
        /// Dimension of the dense top block.
        size: usize,
        /// Elimination step at which the pivoted LU broke down.
        step: usize,
    },
    /// A distributed rank died (or its link went down) mid-operation.
    /// The surviving ranks observed the failure within their receive
    /// timeout and the operation was abandoned; a resident world that
    /// raises this is poisoned — it refuses further solves but still
    /// reaps its workers on drop. Recover with
    /// [`crate::Solver::restore_resident`] from a checkpoint directory.
    RankFailed {
        /// The rank that failed (as observed by the rank reporting it).
        rank: usize,
        /// The protocol step the failure was observed at, in algorithm
        /// terms (a `srsf_runtime::tags::describe` string or a relayed
        /// panic message).
        step: String,
    },
    /// An on-disk checkpoint could not be written, or failed validation
    /// (bad magic/version, truncation, CRC mismatch) before any decode
    /// allocation.
    Checkpoint {
        /// Path of the offending file or directory.
        path: String,
        /// What went wrong.
        reason: String,
    },
}

impl core::fmt::Display for SrsfError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SrsfError::EmptyPointSet => write!(f, "the point set is empty"),
            SrsfError::InvalidTolerance { tol } => {
                write!(f, "tolerance must be positive and finite, got {tol}")
            }
            SrsfError::InvalidLeafSize => write!(f, "leaf_size must be at least 1"),
            SrsfError::InvalidThreadCount => {
                write!(f, "the selected driver needs at least one worker thread")
            }
            SrsfError::UnsupportedOption {
                option,
                driver,
                instead,
            } => {
                write!(
                    f,
                    "`{option}` is not supported by the {driver} driver; use {instead} instead"
                )
            }
            SrsfError::InvalidProcessCount { p } => {
                write!(
                    f,
                    "process count must be a power of four (1, 4, 16, ...), got {p}"
                )
            }
            SrsfError::GridTooLarge { p, leaf_boxes } => write!(
                f,
                "process grid with {p} ranks is too large for {leaf_boxes} leaf boxes \
                 (every rank needs a 2x2 block of leaves)"
            ),
            SrsfError::RhsLength { expected, got } => {
                write!(f, "right-hand side has length {got}, expected {expected}")
            }
            SrsfError::SingularDiagonal { box_id } => {
                write!(f, "singular sparsified diagonal block at {box_id:?}")
            }
            SrsfError::SingularTop { size, step } => {
                write!(
                    f,
                    "singular dense top block ({size} x {size}, pivot breakdown at step {step})"
                )
            }
            SrsfError::RankFailed { rank, step } => {
                write!(f, "rank {rank} failed during {step}")
            }
            SrsfError::Checkpoint { path, reason } => {
                write!(f, "checkpoint {path}: {reason}")
            }
        }
    }
}

impl std::error::Error for SrsfError {}

impl From<FactorError> for SrsfError {
    fn from(e: FactorError) -> Self {
        match e {
            FactorError::SingularDiagonal { box_id } => SrsfError::SingularDiagonal { box_id },
            FactorError::SingularTop { size, step } => SrsfError::SingularTop { size, step },
        }
    }
}
