//! The unified solver API: one builder, three execution drivers.
//!
//! The paper's point is that a single strong-recursive-skeletonization
//! factorization admits three execution strategies — sequential (Alg. 1),
//! shared-memory box-colored (§V-C), and distributed process-colored
//! (Alg. 2). This module exposes them behind one entry point:
//!
//! ```
//! use srsf_core::{Driver, Solver};
//! use srsf_geometry::grid::UnitGrid;
//! use srsf_kernels::laplace::LaplaceKernel;
//!
//! let grid = UnitGrid::new(32);
//! let kernel = LaplaceKernel::new(&grid);
//! let pts = grid.points();
//! let solver = Solver::builder(&kernel, &pts)
//!     .tol(1e-6)
//!     .driver(Driver::Sequential)
//!     .build()
//!     .unwrap();
//! let b = vec![1.0; pts.len()];
//! let x = solver.solve(&b);
//! assert_eq!(x.len(), pts.len());
//! ```
//!
//! Whatever driver built it, the result is a [`Solver`] implementing the
//! shared [`Factorized`] trait (`solve`, `apply_inverse`, `stats`,
//! `memory_bytes`) and `LinOp` — so it plugs into the Krylov methods of
//! `srsf-iterative` as a preconditioner unchanged.

use crate::colored::colored_factorize_with_tree;
use crate::distributed::{
    dist_factorize_resident, dist_factorize_with_tree, restore_resident_service, ResidentService,
};
use crate::error::SrsfError;
use crate::sequential::{domain_for, factorize_with_tree, Factorization};
use crate::stats::FactorStats;
use crate::FactorOpts;
use srsf_geometry::point::Point;
use srsf_geometry::procgrid::{BoxColoring, ProcessGrid};
use srsf_geometry::tree::QuadTree;
use srsf_kernels::kernel::Kernel;
use srsf_linalg::{LinOp, Mat, Scalar};
use srsf_runtime::{MetricsSnapshot, TraceReport, Transport, WorldStats};

/// Execution strategy for the factorization.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Driver {
    /// Algorithm 1: a level-by-level, box-by-box sequential sweep.
    Sequential,
    /// The shared-memory box-colored schedule of Section V-C.
    Colored {
        /// Box coloring scheme (the paper's reference uses four colors).
        scheme: BoxColoring,
        /// Worker threads per color round (must be at least 1).
        threads: usize,
    },
    /// Algorithm 2: leaf boxes block-partitioned over a process grid,
    /// factored with interior/boundary phases and four color rounds on a
    /// rank world — ranks as threads or as real OS processes, per
    /// [`SolverBuilder::transport`].
    Distributed {
        /// The `q x q` process grid (`p = q^2` ranks).
        grid: ProcessGrid,
    },
}

impl Driver {
    /// The box-colored driver with the paper's four-color scheme.
    pub fn colored(threads: usize) -> Self {
        Driver::Colored {
            scheme: BoxColoring::Four,
            threads,
        }
    }

    /// The distributed driver on a `p`-rank process grid.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a power of four (1, 4, 16, …); use
    /// [`Driver::try_distributed`] for fallible construction.
    pub fn distributed(p: usize) -> Self {
        Driver::Distributed {
            grid: ProcessGrid::new(p),
        }
    }

    /// The distributed driver on a `p`-rank process grid, or an
    /// [`SrsfError::InvalidProcessCount`] if `p` is not a power of four.
    pub fn try_distributed(p: usize) -> Result<Self, SrsfError> {
        let grid = ProcessGrid::try_new(p).ok_or(SrsfError::InvalidProcessCount { p })?;
        Ok(Driver::Distributed { grid })
    }
}

/// The capabilities every built factorization exposes, regardless of the
/// driver that produced it.
///
/// Object-safe on purpose: downstream code (preconditioned Krylov methods,
/// benchmark harnesses) takes `&dyn Factorized<T>` and never needs to know
/// how the factorization was scheduled.
pub trait Factorized<T: Scalar>: Sync {
    /// Problem size `N`.
    fn n(&self) -> usize;

    /// Apply the approximate inverse in place: `b := A^{-1} b`.
    fn apply_inverse(&self, b: &mut [T]);

    /// Solve `A x = b`.
    fn solve(&self, b: &[T]) -> Vec<T> {
        let mut x = b.to_vec();
        self.apply_inverse(&mut x);
        x
    }

    /// Apply the approximate inverse to every column of an `n x nrhs`
    /// block in place: `B := A^{-1} B`.
    ///
    /// The default forwards column-by-column through
    /// [`Factorized::apply_inverse`]; implementations with a level-3
    /// solve path (notably [`crate::Factorization`]) override it with one
    /// GEMM-driven sweep that amortizes the record traffic over all
    /// columns.
    fn apply_inverse_mat(&self, b: &mut Mat<T>) {
        for j in 0..b.ncols() {
            self.apply_inverse(b.col_mut(j));
        }
    }

    /// Solve `A X = B` for every column of `b` at once.
    fn solve_mat(&self, b: &Mat<T>) -> Mat<T> {
        let mut x = b.clone();
        self.apply_inverse_mat(&mut x);
        x
    }

    /// Factorization statistics (ranks per level, timings, memory).
    fn stats(&self) -> &FactorStats;

    /// Approximate memory footprint of the factorization in bytes.
    fn memory_bytes(&self) -> usize;
}

impl<T: Scalar> Factorized<T> for Factorization<T> {
    fn n(&self) -> usize {
        Factorization::n(self)
    }
    fn apply_inverse(&self, b: &mut [T]) {
        Factorization::apply_inverse(self, b);
    }
    fn apply_inverse_mat(&self, b: &mut Mat<T>) {
        Factorization::apply_inverse_mat(self, b);
    }
    fn stats(&self) -> &FactorStats {
        Factorization::stats(self)
    }
    fn memory_bytes(&self) -> usize {
        Factorization::memory_bytes(self)
    }
}

/// How a built solver serves its solves.
enum SolverBackend<T> {
    /// A factorization object local to the calling thread — the
    /// sequential and colored drivers always, and the distributed driver
    /// in its (default) gather mode, where rank 0 assembled the global
    /// record set. Boxed so the enum stays pointer-sized either way.
    Local(Box<Factorization<T>>),
    /// A live resident rank world ([`SolverBuilder::resident`]): records
    /// stay on their owning ranks and every solve runs Algorithm 2's
    /// solve phase in place. Boxed: the service (mutex + session handle +
    /// rank-0 state) dwarfs the `Local` variant.
    Resident(Box<ResidentService<T>>),
}

/// A built factorization plus the metadata of the driver that produced it.
///
/// Construct with [`Solver::builder`]. Implements [`Factorized`] and
/// `LinOp` (as the approximate *inverse*, which is what makes it a
/// preconditioner).
pub struct Solver<T> {
    backend: SolverBackend<T>,
    driver: Driver,
    comm: Option<WorldStats>,
    /// Resident factor bytes per rank ([`Driver::Distributed`] only —
    /// what each rank holds when records stay in place).
    per_rank_bytes: Option<Vec<usize>>,
    /// Per-rank span reports from a traced gathered build
    /// ([`SolverBuilder::trace`]); empty when tracing was off or the
    /// backend is resident (resident reports are drained on demand).
    traces: Vec<TraceReport>,
}

impl<T: Scalar> Solver<T> {
    /// Start building a solver for the kernel matrix over `pts`.
    ///
    /// Defaults: [`FactorOpts::default`] options and the
    /// [`Driver::Sequential`] driver.
    pub fn builder<'a, K: Kernel<Elem = T>>(
        kernel: &'a K,
        pts: &'a [Point],
    ) -> SolverBuilder<'a, K> {
        SolverBuilder {
            kernel,
            pts,
            opts: FactorOpts::default(),
            driver: Driver::Sequential,
        }
    }

    /// Problem size `N`.
    pub fn n(&self) -> usize {
        match &self.backend {
            SolverBackend::Local(f) => f.n(),
            SolverBackend::Resident(s) => s.n(),
        }
    }

    /// Solve `A x = b`. In residency mode the solve runs on the live rank
    /// world (records applied where they live); otherwise on the local
    /// factorization object.
    ///
    /// Panics if a resident rank fails mid-solve; use
    /// [`Solver::try_solve`] to observe that as a typed
    /// [`SrsfError::RankFailed`] instead.
    pub fn solve(&self, b: &[T]) -> Vec<T> {
        match &self.backend {
            SolverBackend::Local(f) => f.solve(b),
            SolverBackend::Resident(s) => s.solve(b),
        }
    }

    /// Fallible [`Solver::solve`]. A right-hand side of the wrong
    /// length is [`SrsfError::RhsLength`] (where the infallible
    /// [`Solver::solve`] panics); beyond that, local backends cannot
    /// fail. In residency mode a rank that dies (or a link that goes
    /// down) mid-solve surfaces as [`SrsfError::RankFailed`] within the
    /// receive timeout — no hang, no abort — and later solves fail fast
    /// with the same error. The degraded solver still shuts down (or
    /// drops) cleanly, and [`Solver::restore_resident`] can rebuild a
    /// fresh world from checkpoints.
    pub fn try_solve(&self, b: &[T]) -> Result<Vec<T>, SrsfError> {
        if b.len() != self.n() {
            return Err(SrsfError::RhsLength {
                expected: self.n(),
                got: b.len(),
            });
        }
        match &self.backend {
            SolverBackend::Local(f) => Ok(f.solve(b)),
            SolverBackend::Resident(s) => s.try_solve(b),
        }
    }

    /// Fallible [`Solver::solve_mat`]; see [`Solver::try_solve`].
    pub fn try_solve_mat(&self, b: &Mat<T>) -> Result<Mat<T>, SrsfError> {
        if b.nrows() != self.n() {
            return Err(SrsfError::RhsLength {
                expected: self.n(),
                got: b.nrows(),
            });
        }
        match &self.backend {
            SolverBackend::Local(f) => Ok(f.solve_mat(b)),
            SolverBackend::Resident(s) => s.try_solve_mat(b),
        }
    }

    /// Rebuild a resident solver from the per-rank snapshots a prior
    /// distributed build persisted under
    /// [`FactorOpts::checkpoint_dir`](crate::FactorOpts) (see
    /// [`SolverBuilder::checkpoint_dir`]): validate the manifest against
    /// `pts` (scalar type, size, bit-exact geometry hash), spin up a
    /// fresh rank world on `transport`, and have every rank load its
    /// CRC-checked snapshot — no kernel evaluations, no
    /// re-factorization. Restored solves are bit-identical to the
    /// original solver's.
    pub fn restore_resident(
        pts: &[Point],
        dir: impl AsRef<std::path::Path>,
        transport: Transport,
    ) -> Result<Solver<T>, SrsfError> {
        let (svc, grid) = restore_resident_service::<T>(pts, dir.as_ref(), transport)?;
        let comm = svc.comm().clone();
        let bytes = svc.bytes_per_rank().to_vec();
        Ok(Solver {
            backend: SolverBackend::Resident(Box::new(svc)),
            driver: Driver::Distributed { grid },
            comm: Some(comm),
            per_rank_bytes: Some(bytes),
            traces: Vec::new(),
        })
    }

    /// Apply the approximate inverse in place: `b := A^{-1} b`.
    pub fn apply_inverse(&self, b: &mut [T]) {
        match &self.backend {
            SolverBackend::Local(f) => f.apply_inverse(b),
            SolverBackend::Resident(s) => b.copy_from_slice(&s.solve(b)),
        }
    }

    /// Solve `A X = B` for every column of `b` at once (one blocked
    /// sweep over the records instead of `nrhs` vector sweeps). In
    /// residency mode the column block is scattered by row ownership and
    /// swept in place on the rank world.
    pub fn solve_mat(&self, b: &Mat<T>) -> Mat<T> {
        match &self.backend {
            SolverBackend::Local(f) => f.solve_mat(b),
            SolverBackend::Resident(s) => s.solve_mat(b),
        }
    }

    /// Apply the approximate inverse to an `n x nrhs` block in place.
    pub fn apply_inverse_mat(&self, b: &mut Mat<T>) {
        match &self.backend {
            SolverBackend::Local(f) => f.apply_inverse_mat(b),
            SolverBackend::Resident(s) => *b = s.solve_mat(b),
        }
    }

    /// Blocked apply scheduled over `n_threads` workers by the records'
    /// `(level, color)` stamps; bit-identical to
    /// [`Solver::apply_inverse_mat`] for any thread count. Whole color
    /// rounds run concurrently when the factorization came from the
    /// colored driver. In residency mode the solve is already
    /// rank-parallel — the thread count is ignored and the resident sweep
    /// runs instead.
    pub fn apply_inverse_mat_threaded(&self, b: &mut Mat<T>, n_threads: usize) {
        match &self.backend {
            SolverBackend::Local(f) => f.apply_inverse_mat_threaded(b, n_threads),
            SolverBackend::Resident(s) => *b = s.solve_mat(b),
        }
    }

    /// Threaded apply of one right-hand side vector; see
    /// [`Solver::apply_inverse_mat_threaded`].
    pub fn apply_inverse_threaded(&self, b: &mut [T], n_threads: usize) {
        match &self.backend {
            SolverBackend::Local(f) => f.apply_inverse_threaded(b, n_threads),
            SolverBackend::Resident(s) => b.copy_from_slice(&s.solve(b)),
        }
    }

    /// Factorization statistics (ranks per level, timings, memory). In
    /// residency mode the rank table is merged from every rank's records
    /// in place; timings are rank 0's.
    pub fn stats(&self) -> &FactorStats {
        match &self.backend {
            SolverBackend::Local(f) => f.stats(),
            SolverBackend::Resident(s) => s.stats(),
        }
    }

    /// Approximate memory footprint of the factorization in bytes.
    ///
    /// This is the *global* footprint: the rank-0 object in gather mode,
    /// the sum over ranks in residency mode. For the distributed driver
    /// the serving-relevant number is usually
    /// [`Solver::memory_bytes_max_rank`] — the paper's O(N/p) per-rank
    /// bound is about the largest single rank, which residency preserves
    /// and the gather path concentrates onto rank 0.
    pub fn memory_bytes(&self) -> usize {
        match &self.backend {
            SolverBackend::Local(f) => f.memory_bytes(),
            SolverBackend::Resident(s) => s.bytes_per_rank().iter().sum(),
        }
    }

    /// Peak resident factor bytes over ranks ([`Driver::Distributed`]
    /// only): what the most loaded rank holds when records stay in place.
    /// In gather mode this reports what the ranks held *before* shipping
    /// their records to rank 0 — the footprint residency would keep.
    pub fn memory_bytes_max_rank(&self) -> Option<usize> {
        self.per_rank_bytes
            .as_ref()
            .map(|v| v.iter().copied().max().unwrap_or(0))
    }

    /// Resident factor bytes per rank ([`Driver::Distributed`] only);
    /// see [`Solver::memory_bytes_max_rank`].
    pub fn memory_bytes_per_rank(&self) -> Option<&[usize]> {
        self.per_rank_bytes.as_deref()
    }

    /// Number of per-box elimination records (global count; in residency
    /// mode the records themselves are never assembled in one place).
    pub fn n_records(&self) -> usize {
        match &self.backend {
            SolverBackend::Local(f) => f.n_records(),
            SolverBackend::Resident(s) => s.records_per_rank().iter().sum(),
        }
    }

    /// Elimination records resident on each rank (residency mode only) —
    /// the probe asserting rank 0 never holds the global record set.
    pub fn records_per_rank(&self) -> Option<&[usize]> {
        match &self.backend {
            SolverBackend::Local(_) => None,
            SolverBackend::Resident(s) => Some(s.records_per_rank()),
        }
    }

    /// Size of the dense top block.
    pub fn top_size(&self) -> usize {
        match &self.backend {
            SolverBackend::Local(f) => f.top_size(),
            SolverBackend::Resident(s) => s.top_size(),
        }
    }

    /// The driver that built this solver.
    pub fn driver(&self) -> Driver {
        self.driver
    }

    /// `true` when this solver serves from a live resident rank world.
    pub fn is_resident(&self) -> bool {
        matches!(self.backend, SolverBackend::Resident(_))
    }

    /// Per-rank communication counters of the factorization phase
    /// ([`Driver::Distributed`] only).
    pub fn comm_stats(&self) -> Option<&WorldStats> {
        self.comm.as_ref()
    }

    /// Snapshot every rank's *cumulative* communication counters
    /// (residency mode only). Two snapshots bracketing `k` solves give
    /// exact per-solve message/word counts — how
    /// `comm_counts --solve-reps` measures the §IV solve-phase bound.
    pub fn resident_comm_probe(&self) -> Option<WorldStats> {
        match &self.backend {
            SolverBackend::Local(_) => None,
            SolverBackend::Resident(s) => Some(s.comm_probe()),
        }
    }

    /// Snapshot the serve metrics (residency mode only): per-solve
    /// latency histogram, served/failed counters, and per-rank
    /// resident-memory gauges — the registry behind
    /// `WorldHandle::metrics` in the runtime.
    pub fn metrics(&self) -> Option<MetricsSnapshot> {
        match &self.backend {
            SolverBackend::Local(_) => None,
            SolverBackend::Resident(s) => Some(s.metrics()),
        }
    }

    /// Per-rank span reports of a traced run ([`SolverBuilder::trace`];
    /// empty when tracing was off). Gathered builds return the reports
    /// collected with the rank results; resident solvers *drain* every
    /// rank's live ring buffers on each call (factorization spans the
    /// first time, spans of the solves since on later calls). Feed the
    /// reports to `srsf_trace::export::chrome_trace_json` /
    /// `profile_table` for Perfetto JSON or a plain-text profile.
    pub fn trace_reports(&self) -> Vec<TraceReport> {
        match &self.backend {
            SolverBackend::Local(_) => self.traces.clone(),
            SolverBackend::Resident(s) => s.trace_reports(),
        }
    }

    /// Shut the resident rank world down (broadcast the shutdown command,
    /// join the workers) and return the session's final per-rank
    /// counters. `None` for non-resident solvers or if already shut down;
    /// dropping the solver shuts the world down implicitly.
    pub fn shutdown(&self) -> Option<WorldStats> {
        match &self.backend {
            SolverBackend::Local(_) => None,
            SolverBackend::Resident(s) => s.shutdown(),
        }
    }

    /// Borrow the underlying factorization object, if one exists locally
    /// (`None` in residency mode — the records live on their ranks).
    pub fn try_factorization(&self) -> Option<&Factorization<T>> {
        match &self.backend {
            SolverBackend::Local(f) => Some(f),
            SolverBackend::Resident(_) => None,
        }
    }

    /// Borrow the underlying factorization.
    ///
    /// # Panics
    ///
    /// Panics in residency mode, where no global factorization object is
    /// ever assembled; use [`Solver::try_factorization`] to branch.
    pub fn factorization(&self) -> &Factorization<T> {
        self.try_factorization()
            // INVARIANT: deliberate — documented panicking accessor;
            // try_factorization is the fallible path
            .expect("a resident solver has no gathered factorization object")
    }

    /// Consume the solver, yielding the underlying factorization.
    ///
    /// # Panics
    ///
    /// Panics in residency mode; see [`Solver::factorization`].
    pub fn into_factorization(self) -> Factorization<T> {
        match self.backend {
            SolverBackend::Local(f) => *f,
            SolverBackend::Resident(_) => {
                // INVARIANT: deliberate — documented panicking accessor;
                // try_factorization is the fallible path
                panic!("a resident solver has no gathered factorization object")
            }
        }
    }
}

impl<T: Scalar> core::fmt::Debug for Solver<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Solver")
            .field("n", &self.n())
            .field("driver", &self.driver)
            .field("n_records", &self.n_records())
            .field("top_size", &self.top_size())
            .finish_non_exhaustive()
    }
}

impl<T: Scalar> Factorized<T> for Solver<T> {
    fn n(&self) -> usize {
        Solver::n(self)
    }
    fn apply_inverse(&self, b: &mut [T]) {
        Solver::apply_inverse(self, b);
    }
    fn apply_inverse_mat(&self, b: &mut Mat<T>) {
        Solver::apply_inverse_mat(self, b);
    }
    fn stats(&self) -> &FactorStats {
        Solver::stats(self)
    }
    fn memory_bytes(&self) -> usize {
        Solver::memory_bytes(self)
    }
}

impl<T: Scalar> LinOp<T> for Solver<T> {
    fn dim(&self) -> usize {
        self.n()
    }
    /// Applying the solver as an operator applies the approximate
    /// **inverse** — this is what makes it a preconditioner.
    fn apply(&self, x: &[T]) -> Vec<T> {
        self.solve(x)
    }
}

/// A built solver paired with the solution of the supplied right-hand
/// side (returned by [`SolverBuilder::build_with_solution`]).
pub type Solved<T> = (Solver<T>, Vec<T>);

type MaybeSolved<T> = (Solver<T>, Option<Vec<T>>);

/// Configures and builds a [`Solver`]; created by [`Solver::builder`].
#[derive(Clone, Debug)]
pub struct SolverBuilder<'a, K: Kernel> {
    kernel: &'a K,
    pts: &'a [Point],
    opts: FactorOpts,
    driver: Driver,
}

impl<'a, K: Kernel> SolverBuilder<'a, K> {
    /// Relative tolerance for the interpolative decomposition (paper: ε).
    pub fn tol(mut self, tol: f64) -> Self {
        self.opts = self.opts.with_tol(tol);
        self
    }

    /// Target number of points per leaf box.
    pub fn leaf_size(mut self, leaf_size: usize) -> Self {
        self.opts = self.opts.with_leaf_size(leaf_size);
        self
    }

    /// Proxy circle radius as a multiple of the box side (paper: 2.5).
    pub fn proxy_radius_factor(mut self, factor: f64) -> Self {
        self.opts = self.opts.with_proxy_radius_factor(factor);
        self
    }

    /// Minimum number of proxy points on the circle.
    pub fn n_proxy_min(mut self, n: usize) -> Self {
        self.opts = self.opts.with_n_proxy_min(n);
        self
    }

    /// Extra proxy points per wavelength for oscillatory kernels.
    pub fn proxy_osc_factor(mut self, factor: f64) -> Self {
        self.opts = self.opts.with_proxy_osc_factor(factor);
        self
    }

    /// Coarsest tree level at which compression is applied (paper: 3).
    pub fn min_compress_level(mut self, level: usize) -> Self {
        self.opts = self.opts.with_min_compress_level(level);
        self
    }

    /// GEMM thread budget for the sequential driver's dense products
    /// (`1` = serial, `0` = auto-detect). Sequential-only: the colored
    /// and distributed drivers have their own threading levers
    /// ([`Driver::Colored`]'s `threads` and [`rank_threads`]), so `build`
    /// rejects the combination with [`SrsfError::UnsupportedOption`]
    /// instead of silently ignoring the budget.
    ///
    /// [`rank_threads`]: SolverBuilder::rank_threads
    pub fn gemm_threads(mut self, threads: usize) -> Self {
        self.opts = self.opts.with_gemm_threads(threads);
        self
    }

    /// Worker threads each rank of [`Driver::Distributed`] uses for its
    /// per-phase box eliminations (`1` = serial, the default). The boxes
    /// of a phase run in four sub-color rounds on a work-stealing pool
    /// with a fixed merge order, so the factorization, the solution, and
    /// the communication counters are bit-identical for every thread
    /// count — this knob only changes wall-clock time. Distributed-only:
    /// `build` rejects it under the sequential and colored drivers with
    /// [`SrsfError::UnsupportedOption`], and `0` with
    /// [`SrsfError::InvalidThreadCount`].
    pub fn rank_threads(mut self, threads: usize) -> Self {
        self.opts = self.opts.with_rank_threads(threads);
        self
    }

    /// Message transport for [`Driver::Distributed`]:
    /// [`Transport::InProc`] (default) runs ranks as threads of this
    /// process; [`Transport::Tcp`] runs every rank as a real OS process
    /// over localhost sockets — `World::run` re-executes the current
    /// binary for ranks `1..p`, so the program must be deterministic up
    /// to this `build` call (see `srsf_runtime::transport`). Either way
    /// the factorization, the solution, and the per-rank communication
    /// counters are identical. Ignored by the other drivers.
    pub fn transport(mut self, transport: Transport) -> Self {
        self.opts = self.opts.with_transport(transport);
        self
    }

    /// Residency mode for [`Driver::Distributed`] (default: off). When
    /// on, `build` returns a solver backed by a **live resident rank
    /// world**: elimination records stay on the ranks that produced them
    /// (rank 0 holds only the dense top factorization and routing
    /// metadata — it never assembles the global record set), and every
    /// [`Solver::solve`]/[`Solver::solve_mat`] runs Algorithm 2's solve
    /// phase in place over a request/response command loop. This is the
    /// serving deployment of the paper: O(N/p) factor memory per rank and
    /// O(sqrt(N/p)) words moved per rank per solve, amortized over
    /// arbitrarily many right-hand sides. Results are bit-identical to
    /// the gather path's local solves on both transports.
    ///
    /// The world shuts down when the solver is dropped (or explicitly via
    /// [`Solver::shutdown`]). Off, the driver falls back to gathering all
    /// records onto rank 0 after factorization. Ignored by the other
    /// drivers.
    pub fn resident(mut self, resident: bool) -> Self {
        self.opts = self.opts.with_resident(resident);
        self
    }

    /// Directory where each rank of [`Driver::Distributed`] persists its
    /// factor snapshot when the build completes (created if absent;
    /// rank 0 also writes the manifest). A later
    /// [`Solver::restore_resident`] rebuilds a serving resident world
    /// from these files without re-factorizing. Ignored by the other
    /// drivers.
    pub fn checkpoint_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.opts = self.opts.with_checkpoint_dir(dir);
        self
    }

    /// Span tracing for [`Driver::Distributed`] (default: off). When on,
    /// every rank records phase, compute, and comm-wait spans into
    /// per-thread fixed-capacity ring buffers (`srsf-trace`), gathered as
    /// per-rank reports — [`Solver::trace_reports`] — and exportable as
    /// Chrome trace-event / Perfetto JSON or a plain-text profile table.
    /// Tracing is observation-only: a traced run is bit-identical to an
    /// untraced one in solutions and §IV message/word counters (the
    /// recorder never sends anything during the algorithm; reports move
    /// as uncounted result/service frames). Ignored by the other
    /// drivers.
    pub fn trace(mut self, trace: bool) -> Self {
        self.opts = self.opts.with_trace(trace);
        self
    }

    /// Select the skeletonization compression path (default:
    /// [`crate::Compression::sketched`]; [`crate::Compression::Cpqr`]
    /// restores the deterministic full-CPQR baseline). Both paths meet
    /// the same far-field accuracy bound — the sketched one verifies it
    /// a-posteriori per box and falls back to CPQR when it cannot.
    pub fn compression(mut self, compression: crate::Compression) -> Self {
        self.opts = self.opts.with_compression(compression);
        self
    }

    /// Replace the whole option set at once.
    pub fn opts(mut self, opts: FactorOpts) -> Self {
        self.opts = opts;
        self
    }

    /// Select the execution driver (default: [`Driver::Sequential`]).
    pub fn driver(mut self, driver: Driver) -> Self {
        self.driver = driver;
        self
    }

    /// The options as currently configured.
    pub fn current_opts(&self) -> &FactorOpts {
        &self.opts
    }

    /// Validate the configuration and run the selected driver.
    pub fn build(self) -> Result<Solver<K::Elem>, SrsfError> {
        let (solver, _) = self.build_inner(None)?;
        Ok(solver)
    }

    /// Build and additionally solve one right-hand side.
    ///
    /// For [`Driver::Distributed`] the solve runs *inside* the rank world
    /// (Algorithm 2's upward/downward passes with neighbor-only traffic),
    /// so its communication shows up in [`Solver::comm_stats`]; the other
    /// drivers solve locally after factoring.
    pub fn build_with_solution(self, rhs: &[K::Elem]) -> Result<Solved<K::Elem>, SrsfError> {
        if rhs.len() != self.pts.len() {
            return Err(SrsfError::RhsLength {
                expected: self.pts.len(),
                got: rhs.len(),
            });
        }
        let (solver, x) = self.build_inner(Some(rhs))?;
        // INVARIANT: build_inner(Some(rhs)) always produces a solution
        Ok((solver, x.expect("solution requested")))
    }

    fn build_inner(self, rhs: Option<&[K::Elem]>) -> Result<MaybeSolved<K::Elem>, SrsfError> {
        let Self {
            kernel,
            pts,
            opts,
            driver,
        } = self;
        if pts.is_empty() {
            return Err(SrsfError::EmptyPointSet);
        }
        if !(opts.tol > 0.0 && opts.tol.is_finite()) {
            return Err(SrsfError::InvalidTolerance { tol: opts.tol });
        }
        if opts.leaf_size == 0 {
            return Err(SrsfError::InvalidLeafSize);
        }
        // Each driver owns exactly one threading lever; reject the others
        // instead of silently ignoring them (`gemm_threads` used to be a
        // no-op under the colored and distributed drivers).
        let driver_name = match driver {
            Driver::Sequential => "sequential",
            Driver::Colored { .. } => "colored",
            Driver::Distributed { .. } => "distributed",
        };
        if opts.gemm_threads != 1 && !matches!(driver, Driver::Sequential) {
            return Err(SrsfError::UnsupportedOption {
                option: "gemm_threads",
                driver: driver_name,
                instead: match driver {
                    Driver::Colored { .. } => "`Driver::Colored { threads, .. }`",
                    _ => "`SolverBuilder::rank_threads`",
                },
            });
        }
        if opts.rank_threads != 1 && !matches!(driver, Driver::Distributed { .. }) {
            return Err(SrsfError::UnsupportedOption {
                option: "rank_threads",
                driver: driver_name,
                instead: match driver {
                    Driver::Colored { .. } => "`Driver::Colored { threads, .. }`",
                    _ => "`SolverBuilder::gemm_threads`",
                },
            });
        }
        let tree = QuadTree::build(pts, domain_for(pts), opts.leaf_size);
        let (backend, comm, x, per_rank_bytes, traces) = match driver {
            Driver::Sequential => {
                let fact = factorize_with_tree(kernel, pts, &tree, &opts)?;
                let x = rhs.map(|b| fact.solve(b));
                (
                    SolverBackend::Local(Box::new(fact)),
                    None,
                    x,
                    None,
                    Vec::new(),
                )
            }
            Driver::Colored { scheme, threads } => {
                if threads == 0 {
                    return Err(SrsfError::InvalidThreadCount);
                }
                let fact = colored_factorize_with_tree(kernel, pts, &tree, &opts, scheme, threads)?;
                let x = rhs.map(|b| fact.solve(b));
                (
                    SolverBackend::Local(Box::new(fact)),
                    None,
                    x,
                    None,
                    Vec::new(),
                )
            }
            Driver::Distributed { grid } => {
                if opts.rank_threads == 0 {
                    return Err(SrsfError::InvalidThreadCount);
                }
                let leaf = tree.leaf_level();
                // Every rank must own at least a 2x2 block of leaf boxes
                // (Section III-B); reject oversized grids instead of
                // leaving ranks idle or panicking deeper down.
                let fits = grid.q() == 1 || (leaf >= 1 && grid.q() <= 1u32 << (leaf - 1));
                if !fits {
                    return Err(SrsfError::GridTooLarge {
                        p: grid.p(),
                        leaf_boxes: 1usize << (2 * leaf),
                    });
                }
                if opts.resident {
                    let svc = catch_rank_failure(|| {
                        dist_factorize_resident(kernel, pts, &tree, &grid, &opts)
                    })??;
                    let comm = svc.comm().clone();
                    let bytes = svc.bytes_per_rank().to_vec();
                    let x = match rhs {
                        Some(b) => Some(svc.try_solve(b)?),
                        None => None,
                    };
                    (
                        SolverBackend::Resident(Box::new(svc)),
                        Some(comm),
                        x,
                        Some(bytes),
                        Vec::new(),
                    )
                } else {
                    let b = catch_rank_failure(|| {
                        dist_factorize_with_tree(kernel, pts, &tree, &grid, &opts, rhs)
                    })??;
                    (
                        SolverBackend::Local(Box::new(b.fact)),
                        Some(b.stats),
                        b.x,
                        Some(b.per_rank_bytes),
                        b.traces,
                    )
                }
            }
        };
        Ok((
            Solver {
                backend,
                driver,
                comm,
                per_rank_bytes,
                traces,
            },
            x,
        ))
    }
}

/// Run a distributed-driver call, converting the rank world's
/// death-panics into the typed error. A rank dying mid-factorization
/// surfaces on rank 0 as a panic whose message names the dead peer
/// (peer-panic relay, bounded-receive timeout, lost-peer, injected
/// fault, or a TCP worker exiting without a result); those shapes become
/// [`SrsfError::RankFailed`] here at the driver boundary — the rank
/// world has already torn itself down by the time the panic reaches us —
/// and anything else keeps unwinding untouched.
fn catch_rank_failure<R>(f: impl FnOnce() -> R) -> Result<R, SrsfError> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(r) => Ok(r),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&'static str>().copied());
            match msg.and_then(parse_rank_failure) {
                Some((rank, step)) => Err(SrsfError::RankFailed { rank, step }),
                None => std::panic::resume_unwind(payload),
            }
        }
    }
}

/// Recognize the panic-message shapes the runtime emits when a peer rank
/// dies, returning `(failed rank, step description)`.
fn parse_rank_failure(msg: &str) -> Option<(usize, String)> {
    let msg = msg.strip_prefix("barrier failed: ").unwrap_or(msg);
    // The step a receive-flavored message died in is the trailing
    // parenthesized tag description, when present.
    let paren_step = |msg: &str| -> Option<String> {
        let (_, tail) = msg.rsplit_once('(')?;
        Some(tail.trim_end_matches(')').to_string())
    };
    // "injected fault: rank R crashed at barrier K" (rank 0 itself hit a
    // FaultPlan crash point).
    if let Some(rest) = msg.strip_prefix("injected fault: rank ") {
        let rank = rest.split_whitespace().next()?.parse().ok()?;
        return Some((rank, msg.to_string()));
    }
    // "rank A: rank B panicked: <original message>"
    if let Some((head, tail)) = msg.split_once(" panicked: ") {
        let rank = head.rsplit("rank ").next()?.parse().ok()?;
        return Some((rank, format!("peer panic: {tail}")));
    }
    // "worker rank B exited without reporting a result" (TCP parent).
    if let Some(rest) = msg.strip_prefix("worker rank ") {
        let rank = rest.split_whitespace().next()?.parse().ok()?;
        return Some((rank, "worker exit before reporting a result".to_string()));
    }
    // "rank A timed out after .. waiting for a message from rank B with
    // tag T (STEP)"
    if msg.contains(" timed out after ") {
        let rest = msg.split("from rank ").nth(1)?;
        let rank = rest.split_whitespace().next()?.parse().ok()?;
        let step = paren_step(msg).unwrap_or_else(|| "message wait".to_string());
        return Some((rank, format!("timeout during {step}")));
    }
    // "rank A lost rank B while waiting for tag T (STEP)"
    if let Some(rest) = msg.split(" lost rank ").nth(1) {
        let rank = rest.split_whitespace().next()?.parse().ok()?;
        let step = paren_step(msg).unwrap_or_else(|| "message wait".to_string());
        return Some((rank, step));
    }
    None
}
