//! The unified solver API: one builder, three execution drivers.
//!
//! The paper's point is that a single strong-recursive-skeletonization
//! factorization admits three execution strategies — sequential (Alg. 1),
//! shared-memory box-colored (§V-C), and distributed process-colored
//! (Alg. 2). This module exposes them behind one entry point:
//!
//! ```
//! use srsf_core::{Driver, Solver};
//! use srsf_geometry::grid::UnitGrid;
//! use srsf_kernels::laplace::LaplaceKernel;
//!
//! let grid = UnitGrid::new(32);
//! let kernel = LaplaceKernel::new(&grid);
//! let pts = grid.points();
//! let solver = Solver::builder(&kernel, &pts)
//!     .tol(1e-6)
//!     .driver(Driver::Sequential)
//!     .build()
//!     .unwrap();
//! let b = vec![1.0; pts.len()];
//! let x = solver.solve(&b);
//! assert_eq!(x.len(), pts.len());
//! ```
//!
//! Whatever driver built it, the result is a [`Solver`] implementing the
//! shared [`Factorized`] trait (`solve`, `apply_inverse`, `stats`,
//! `memory_bytes`) and `LinOp` — so it plugs into the Krylov methods of
//! `srsf-iterative` as a preconditioner unchanged.

use crate::colored::colored_factorize_with_tree;
use crate::distributed::dist_factorize_with_tree;
use crate::error::SrsfError;
use crate::sequential::{domain_for, factorize_with_tree, Factorization};
use crate::stats::FactorStats;
use crate::FactorOpts;
use srsf_geometry::point::Point;
use srsf_geometry::procgrid::{BoxColoring, ProcessGrid};
use srsf_geometry::tree::QuadTree;
use srsf_kernels::kernel::Kernel;
use srsf_linalg::{LinOp, Mat, Scalar};
use srsf_runtime::{Transport, WorldStats};

/// Execution strategy for the factorization.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Driver {
    /// Algorithm 1: a level-by-level, box-by-box sequential sweep.
    Sequential,
    /// The shared-memory box-colored schedule of Section V-C.
    Colored {
        /// Box coloring scheme (the paper's reference uses four colors).
        scheme: BoxColoring,
        /// Worker threads per color round (must be at least 1).
        threads: usize,
    },
    /// Algorithm 2: leaf boxes block-partitioned over a process grid,
    /// factored with interior/boundary phases and four color rounds on a
    /// rank world — ranks as threads or as real OS processes, per
    /// [`SolverBuilder::transport`].
    Distributed {
        /// The `q x q` process grid (`p = q^2` ranks).
        grid: ProcessGrid,
    },
}

impl Driver {
    /// The box-colored driver with the paper's four-color scheme.
    pub fn colored(threads: usize) -> Self {
        Driver::Colored {
            scheme: BoxColoring::Four,
            threads,
        }
    }

    /// The distributed driver on a `p`-rank process grid.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a power of four (1, 4, 16, …); use
    /// [`Driver::try_distributed`] for fallible construction.
    pub fn distributed(p: usize) -> Self {
        Driver::Distributed {
            grid: ProcessGrid::new(p),
        }
    }

    /// The distributed driver on a `p`-rank process grid, or an
    /// [`SrsfError::InvalidProcessCount`] if `p` is not a power of four.
    pub fn try_distributed(p: usize) -> Result<Self, SrsfError> {
        let grid = ProcessGrid::try_new(p).ok_or(SrsfError::InvalidProcessCount { p })?;
        Ok(Driver::Distributed { grid })
    }
}

/// The capabilities every built factorization exposes, regardless of the
/// driver that produced it.
///
/// Object-safe on purpose: downstream code (preconditioned Krylov methods,
/// benchmark harnesses) takes `&dyn Factorized<T>` and never needs to know
/// how the factorization was scheduled.
pub trait Factorized<T: Scalar>: Sync {
    /// Problem size `N`.
    fn n(&self) -> usize;

    /// Apply the approximate inverse in place: `b := A^{-1} b`.
    fn apply_inverse(&self, b: &mut [T]);

    /// Solve `A x = b`.
    fn solve(&self, b: &[T]) -> Vec<T> {
        let mut x = b.to_vec();
        self.apply_inverse(&mut x);
        x
    }

    /// Apply the approximate inverse to every column of an `n x nrhs`
    /// block in place: `B := A^{-1} B`.
    ///
    /// The default forwards column-by-column through
    /// [`Factorized::apply_inverse`]; implementations with a level-3
    /// solve path (notably [`crate::Factorization`]) override it with one
    /// GEMM-driven sweep that amortizes the record traffic over all
    /// columns.
    fn apply_inverse_mat(&self, b: &mut Mat<T>) {
        for j in 0..b.ncols() {
            self.apply_inverse(b.col_mut(j));
        }
    }

    /// Solve `A X = B` for every column of `b` at once.
    fn solve_mat(&self, b: &Mat<T>) -> Mat<T> {
        let mut x = b.clone();
        self.apply_inverse_mat(&mut x);
        x
    }

    /// Factorization statistics (ranks per level, timings, memory).
    fn stats(&self) -> &FactorStats;

    /// Approximate memory footprint of the factorization in bytes.
    fn memory_bytes(&self) -> usize;
}

impl<T: Scalar> Factorized<T> for Factorization<T> {
    fn n(&self) -> usize {
        Factorization::n(self)
    }
    fn apply_inverse(&self, b: &mut [T]) {
        Factorization::apply_inverse(self, b);
    }
    fn apply_inverse_mat(&self, b: &mut Mat<T>) {
        Factorization::apply_inverse_mat(self, b);
    }
    fn stats(&self) -> &FactorStats {
        Factorization::stats(self)
    }
    fn memory_bytes(&self) -> usize {
        Factorization::memory_bytes(self)
    }
}

/// A built factorization plus the metadata of the driver that produced it.
///
/// Construct with [`Solver::builder`]. Implements [`Factorized`] and
/// `LinOp` (as the approximate *inverse*, which is what makes it a
/// preconditioner).
pub struct Solver<T> {
    fact: Factorization<T>,
    driver: Driver,
    comm: Option<WorldStats>,
}

impl<T: Scalar> Solver<T> {
    /// Start building a solver for the kernel matrix over `pts`.
    ///
    /// Defaults: [`FactorOpts::default`] options and the
    /// [`Driver::Sequential`] driver.
    pub fn builder<'a, K: Kernel<Elem = T>>(
        kernel: &'a K,
        pts: &'a [Point],
    ) -> SolverBuilder<'a, K> {
        SolverBuilder {
            kernel,
            pts,
            opts: FactorOpts::default(),
            driver: Driver::Sequential,
        }
    }

    /// Problem size `N`.
    pub fn n(&self) -> usize {
        self.fact.n()
    }

    /// Solve `A x = b`.
    pub fn solve(&self, b: &[T]) -> Vec<T> {
        self.fact.solve(b)
    }

    /// Apply the approximate inverse in place: `b := A^{-1} b`.
    pub fn apply_inverse(&self, b: &mut [T]) {
        self.fact.apply_inverse(b);
    }

    /// Solve `A X = B` for every column of `b` at once (one blocked
    /// sweep over the records instead of `nrhs` vector sweeps).
    pub fn solve_mat(&self, b: &Mat<T>) -> Mat<T> {
        self.fact.solve_mat(b)
    }

    /// Apply the approximate inverse to an `n x nrhs` block in place.
    pub fn apply_inverse_mat(&self, b: &mut Mat<T>) {
        self.fact.apply_inverse_mat(b);
    }

    /// Blocked apply scheduled over `n_threads` workers by the records'
    /// `(level, color)` stamps; bit-identical to
    /// [`Solver::apply_inverse_mat`] for any thread count. Whole color
    /// rounds run concurrently when the factorization came from the
    /// colored driver.
    pub fn apply_inverse_mat_threaded(&self, b: &mut Mat<T>, n_threads: usize) {
        self.fact.apply_inverse_mat_threaded(b, n_threads);
    }

    /// Threaded apply of one right-hand side vector; see
    /// [`Solver::apply_inverse_mat_threaded`].
    pub fn apply_inverse_threaded(&self, b: &mut [T], n_threads: usize) {
        self.fact.apply_inverse_threaded(b, n_threads);
    }

    /// Factorization statistics (ranks per level, timings, memory).
    pub fn stats(&self) -> &FactorStats {
        self.fact.stats()
    }

    /// Approximate memory footprint of the factorization in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.fact.memory_bytes()
    }

    /// Number of per-box elimination records.
    pub fn n_records(&self) -> usize {
        self.fact.n_records()
    }

    /// Size of the dense top block.
    pub fn top_size(&self) -> usize {
        self.fact.top_size()
    }

    /// The driver that built this solver.
    pub fn driver(&self) -> Driver {
        self.driver
    }

    /// Per-rank communication counters ([`Driver::Distributed`] only).
    pub fn comm_stats(&self) -> Option<&WorldStats> {
        self.comm.as_ref()
    }

    /// Borrow the underlying factorization.
    pub fn factorization(&self) -> &Factorization<T> {
        &self.fact
    }

    /// Consume the solver, yielding the underlying factorization.
    pub fn into_factorization(self) -> Factorization<T> {
        self.fact
    }
}

impl<T: Scalar> core::fmt::Debug for Solver<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Solver")
            .field("n", &self.n())
            .field("driver", &self.driver)
            .field("n_records", &self.n_records())
            .field("top_size", &self.top_size())
            .finish_non_exhaustive()
    }
}

impl<T: Scalar> Factorized<T> for Solver<T> {
    fn n(&self) -> usize {
        Solver::n(self)
    }
    fn apply_inverse(&self, b: &mut [T]) {
        Solver::apply_inverse(self, b);
    }
    fn apply_inverse_mat(&self, b: &mut Mat<T>) {
        Solver::apply_inverse_mat(self, b);
    }
    fn stats(&self) -> &FactorStats {
        Solver::stats(self)
    }
    fn memory_bytes(&self) -> usize {
        Solver::memory_bytes(self)
    }
}

impl<T: Scalar> LinOp<T> for Solver<T> {
    fn dim(&self) -> usize {
        self.n()
    }
    /// Applying the solver as an operator applies the approximate
    /// **inverse** — this is what makes it a preconditioner.
    fn apply(&self, x: &[T]) -> Vec<T> {
        self.solve(x)
    }
}

/// A built solver paired with the solution of the supplied right-hand
/// side (returned by [`SolverBuilder::build_with_solution`]).
pub type Solved<T> = (Solver<T>, Vec<T>);

type MaybeSolved<T> = (Solver<T>, Option<Vec<T>>);

/// Configures and builds a [`Solver`]; created by [`Solver::builder`].
#[derive(Clone, Debug)]
pub struct SolverBuilder<'a, K: Kernel> {
    kernel: &'a K,
    pts: &'a [Point],
    opts: FactorOpts,
    driver: Driver,
}

impl<'a, K: Kernel> SolverBuilder<'a, K> {
    /// Relative tolerance for the interpolative decomposition (paper: ε).
    pub fn tol(mut self, tol: f64) -> Self {
        self.opts = self.opts.with_tol(tol);
        self
    }

    /// Target number of points per leaf box.
    pub fn leaf_size(mut self, leaf_size: usize) -> Self {
        self.opts = self.opts.with_leaf_size(leaf_size);
        self
    }

    /// Proxy circle radius as a multiple of the box side (paper: 2.5).
    pub fn proxy_radius_factor(mut self, factor: f64) -> Self {
        self.opts = self.opts.with_proxy_radius_factor(factor);
        self
    }

    /// Minimum number of proxy points on the circle.
    pub fn n_proxy_min(mut self, n: usize) -> Self {
        self.opts = self.opts.with_n_proxy_min(n);
        self
    }

    /// Extra proxy points per wavelength for oscillatory kernels.
    pub fn proxy_osc_factor(mut self, factor: f64) -> Self {
        self.opts = self.opts.with_proxy_osc_factor(factor);
        self
    }

    /// Coarsest tree level at which compression is applied (paper: 3).
    pub fn min_compress_level(mut self, level: usize) -> Self {
        self.opts = self.opts.with_min_compress_level(level);
        self
    }

    /// GEMM thread budget for the sequential driver's dense products
    /// (`1` = serial, `0` = auto-detect; ignored by the colored and
    /// distributed drivers, whose in-rank work is always serial).
    pub fn gemm_threads(mut self, threads: usize) -> Self {
        self.opts = self.opts.with_gemm_threads(threads);
        self
    }

    /// Message transport for [`Driver::Distributed`]:
    /// [`Transport::InProc`] (default) runs ranks as threads of this
    /// process; [`Transport::Tcp`] runs every rank as a real OS process
    /// over localhost sockets — `World::run` re-executes the current
    /// binary for ranks `1..p`, so the program must be deterministic up
    /// to this `build` call (see `srsf_runtime::transport`). Either way
    /// the factorization, the solution, and the per-rank communication
    /// counters are identical. Ignored by the other drivers.
    pub fn transport(mut self, transport: Transport) -> Self {
        self.opts = self.opts.with_transport(transport);
        self
    }

    /// Replace the whole option set at once.
    pub fn opts(mut self, opts: FactorOpts) -> Self {
        self.opts = opts;
        self
    }

    /// Select the execution driver (default: [`Driver::Sequential`]).
    pub fn driver(mut self, driver: Driver) -> Self {
        self.driver = driver;
        self
    }

    /// The options as currently configured.
    pub fn current_opts(&self) -> &FactorOpts {
        &self.opts
    }

    /// Validate the configuration and run the selected driver.
    pub fn build(self) -> Result<Solver<K::Elem>, SrsfError> {
        let (solver, _) = self.build_inner(None)?;
        Ok(solver)
    }

    /// Build and additionally solve one right-hand side.
    ///
    /// For [`Driver::Distributed`] the solve runs *inside* the rank world
    /// (Algorithm 2's upward/downward passes with neighbor-only traffic),
    /// so its communication shows up in [`Solver::comm_stats`]; the other
    /// drivers solve locally after factoring.
    pub fn build_with_solution(self, rhs: &[K::Elem]) -> Result<Solved<K::Elem>, SrsfError> {
        if rhs.len() != self.pts.len() {
            return Err(SrsfError::RhsLength {
                expected: self.pts.len(),
                got: rhs.len(),
            });
        }
        let (solver, x) = self.build_inner(Some(rhs))?;
        Ok((solver, x.expect("solution requested")))
    }

    fn build_inner(self, rhs: Option<&[K::Elem]>) -> Result<MaybeSolved<K::Elem>, SrsfError> {
        let Self {
            kernel,
            pts,
            opts,
            driver,
        } = self;
        if pts.is_empty() {
            return Err(SrsfError::EmptyPointSet);
        }
        if !(opts.tol > 0.0 && opts.tol.is_finite()) {
            return Err(SrsfError::InvalidTolerance { tol: opts.tol });
        }
        if opts.leaf_size == 0 {
            return Err(SrsfError::InvalidLeafSize);
        }
        let tree = QuadTree::build(pts, domain_for(pts), opts.leaf_size);
        let (fact, comm, x) = match driver {
            Driver::Sequential => {
                let fact = factorize_with_tree(kernel, pts, &tree, &opts)?;
                let x = rhs.map(|b| fact.solve(b));
                (fact, None, x)
            }
            Driver::Colored { scheme, threads } => {
                if threads == 0 {
                    return Err(SrsfError::InvalidThreadCount);
                }
                let fact = colored_factorize_with_tree(kernel, pts, &tree, &opts, scheme, threads)?;
                let x = rhs.map(|b| fact.solve(b));
                (fact, None, x)
            }
            Driver::Distributed { grid } => {
                let leaf = tree.leaf_level();
                // Every rank must own at least a 2x2 block of leaf boxes
                // (Section III-B); reject oversized grids instead of
                // leaving ranks idle or panicking deeper down.
                let fits = grid.q() == 1 || (leaf >= 1 && grid.q() <= 1u32 << (leaf - 1));
                if !fits {
                    return Err(SrsfError::GridTooLarge {
                        p: grid.p(),
                        leaf_boxes: 1usize << (2 * leaf),
                    });
                }
                let (fact, stats, x) =
                    dist_factorize_with_tree(kernel, pts, &tree, &grid, &opts, rhs)?;
                (fact, Some(stats), x)
            }
        };
        Ok((Solver { fact, driver, comm }, x))
    }
}
