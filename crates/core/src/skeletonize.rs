//! Proxy-compressed interpolative decomposition of a box (Section II-C).
//!
//! For a box `B` with active columns `a_B`, the compression target is the
//! concatenation `[A_{F,B}; A_{B,F}^*]` of Eq. (5). Forming it would cost
//! O(N); instead (Eq. 7) the far field is represented by
//!
//! * the explicit (possibly modified) interactions against the distance-2
//!   ring `M(B)`, read from the block store, and
//! * kernel evaluations against a proxy circle of radius `2.5 L` that
//!   accounts for everything beyond `M(B)`,
//!
//! which has O(1) rows. A single column ID of the stack yields the skeleton
//! set and interpolation matrix `T` valid for both row and column
//! interactions (Eq. 6).

use crate::store::{ActiveSets, BlockStore};
use crate::FactorOpts;
use srsf_geometry::neighbors::dist2_ring;
use srsf_geometry::proxy::{proxy_circle, proxy_count};
use srsf_geometry::tree::{BoxId, QuadTree};
use srsf_kernels::kernel::Kernel;
use srsf_linalg::{interp_decomp, IdResult, Mat, Scalar};

/// Assemble the proxy-compressed tall matrix whose column ID skeletonizes
/// box `b`.
pub fn proxy_matrix<K: Kernel>(
    store: &BlockStore<'_, K>,
    act: &ActiveSets,
    tree: &QuadTree,
    b: &BoxId,
    opts: &FactorOpts,
) -> Mat<K::Elem> {
    let a_b = act.get(b);
    let nb = a_b.len();
    let pts = store.points();
    let kernel = store.kernel();

    // The row count is known before any block is materialized: each
    // nonempty ring box contributes its active count twice (both
    // directions) and the proxy circle twice `n_proxy` — so the tall
    // matrix is allocated once and every block written straight into it,
    // instead of staging a `Vec<Mat>` and copying each block a second
    // time during stacking.
    let ring: Vec<_> = dist2_ring(b)
        .into_iter()
        .filter(|m| !act.get(m).is_empty())
        .collect();
    let ring_rows: usize = ring.iter().map(|m| act.get(m).len()).sum();

    let bb = tree.bbox(b);
    let radius = opts.proxy_radius_factor * bb.side;
    let n_proxy = proxy_count(
        opts.n_proxy_min,
        opts.proxy_osc_factor,
        kernel.kappa(),
        radius,
    );
    let circle = proxy_circle(bb.center(), radius, n_proxy);

    let mut out = Mat::zeros(2 * ring_rows + 2 * n_proxy, nb);
    let mut r0 = 0;
    // Row blocks from the distance-2 ring, both directions.
    for m in &ring {
        let blk = store.get(m, b, act);
        out.set_block(r0, 0, &blk);
        r0 += blk.nrows();
        let blk_h = store.get(b, m, act).adjoint();
        out.set_block(r0, 0, &blk_h);
        r0 += blk_h.nrows();
    }
    // Proxy rows for the far field beyond M(B), filled in place.
    for j in 0..nb {
        let col = out.col_mut(j);
        for (p, c) in circle.iter().enumerate() {
            col[r0 + p] = kernel.proxy_row(pts, *c, a_b[j] as usize);
            col[r0 + n_proxy + p] = kernel.proxy_col(pts, a_b[j] as usize, *c).conj();
        }
    }
    out
}

/// Compute the skeleton/redundant split and interpolation matrix of a box.
pub fn skeletonize<K: Kernel>(
    store: &BlockStore<'_, K>,
    act: &ActiveSets,
    tree: &QuadTree,
    b: &BoxId,
    opts: &FactorOpts,
) -> IdResult<K::Elem> {
    let m = proxy_matrix(store, act, tree, b, opts);
    interp_decomp(m, opts.tol, usize::MAX)
}

/// Convenience: the defining ID error `||A[:,R] - A[:,S] T||_max` against a
/// freshly assembled proxy matrix (diagnostics and tests).
pub fn id_error<T: Scalar>(a: &Mat<T>, id: &IdResult<T>) -> f64 {
    let rows: Vec<usize> = (0..a.nrows()).collect();
    let ar = a.select(&rows, &id.redundant);
    let as_ = a.select(&rows, &id.skel);
    let approx = srsf_linalg::gemm::matmul(&as_, &id.t);
    srsf_linalg::norms::max_abs_diff(&ar, &approx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use srsf_geometry::grid::UnitGrid;
    use srsf_geometry::point::BBox;
    use srsf_kernels::laplace::LaplaceKernel;
    use srsf_linalg::norms::fro_norm;

    fn setup(m: usize, leaf: usize) -> (UnitGrid, LaplaceKernel, QuadTree) {
        let grid = UnitGrid::new(m);
        let k = LaplaceKernel::new(&grid);
        let tree = QuadTree::build(&grid.points(), BBox::UNIT, leaf);
        (grid, k, tree)
    }

    fn leaf_actives(grid: &UnitGrid, tree: &QuadTree) -> ActiveSets {
        let _ = grid;
        let mut act = ActiveSets::new();
        for id in tree.boxes_at_level(tree.leaf_level()) {
            act.set(id, tree.leaf_points(&id).to_vec());
        }
        act
    }

    #[test]
    fn proxy_matrix_shape_and_content() {
        let (grid, k, tree) = setup(16, 16);
        let pts = grid.points();
        let store = BlockStore::new(&k, &pts);
        let act = leaf_actives(&grid, &tree);
        let b = BoxId {
            level: tree.leaf_level(),
            ix: 2,
            iy: 2,
        };
        let opts = FactorOpts::default();
        let m = proxy_matrix(&store, &act, &tree, &b, &opts);
        assert_eq!(m.ncols(), 16);
        // Rows: both directions of every nonempty M(B) block plus the two
        // proxy blocks.
        let m_pts: usize = srsf_geometry::neighbors::dist2_ring(&b)
            .iter()
            .map(|mb| act.get(mb).len())
            .sum();
        assert_eq!(m.nrows() % 2, 0);
        assert!(m.nrows() >= 2 * m_pts + 2 * opts.n_proxy_min);
        assert!(fro_norm(&m) > 0.0);
    }

    #[test]
    fn skeleton_rank_much_smaller_than_box() {
        let (grid, k, tree) = setup(32, 64); // leaves of 64 points
        let pts = grid.points();
        let store = BlockStore::new(&k, &pts);
        let act = leaf_actives(&grid, &tree);
        let opts = FactorOpts {
            tol: 1e-6,
            ..FactorOpts::default()
        };
        let b = BoxId {
            level: tree.leaf_level(),
            ix: 1,
            iy: 1,
        };
        let id = skeletonize(&store, &act, &tree, &b, &opts);
        assert_eq!(id.rank() + id.redundant.len(), 64);
        assert!(id.rank() < 50, "rank {} should compress", id.rank());
        assert!(id.rank() > 5, "rank {} suspiciously small", id.rank());
    }

    #[test]
    fn tighter_tolerance_larger_skeleton() {
        let (grid, k, tree) = setup(32, 64);
        let pts = grid.points();
        let store = BlockStore::new(&k, &pts);
        let act = leaf_actives(&grid, &tree);
        let b = BoxId {
            level: tree.leaf_level(),
            ix: 2,
            iy: 1,
        };
        let loose = skeletonize(
            &store,
            &act,
            &tree,
            &b,
            &FactorOpts {
                tol: 1e-3,
                ..Default::default()
            },
        );
        let tight = skeletonize(
            &store,
            &act,
            &tree,
            &b,
            &FactorOpts {
                tol: 1e-9,
                ..Default::default()
            },
        );
        assert!(tight.rank() > loose.rank());
    }

    /// The heart of the proxy trick: the ID computed from the O(1)-row
    /// proxy matrix must compress the *true* far-field interaction too.
    #[test]
    fn proxy_id_compresses_true_far_field() {
        let (grid, k, tree) = setup(32, 64);
        let pts = grid.points();
        let store = BlockStore::new(&k, &pts);
        let act = leaf_actives(&grid, &tree);
        let opts = FactorOpts {
            tol: 1e-8,
            ..FactorOpts::default()
        };
        let lvl = tree.leaf_level();
        let b = BoxId {
            level: lvl,
            ix: 1,
            iy: 2,
        };
        let id = skeletonize(&store, &act, &tree, &b, &opts);

        // Assemble the exact far-field block A_{F,B} (all boxes at
        // distance > 2... here: > 1 minus the near field, i.e. F = beyond
        // N(B)) restricted to rows far from B.
        let a_b = act.get(&b);
        let mut far_rows: Vec<u32> = Vec::new();
        for other in tree.boxes_at_level(lvl) {
            if other.chebyshev(&b) > 2 {
                far_rows.extend_from_slice(act.get(&other));
            }
        }
        let afb = store.eval_kernel(&far_rows, a_b);
        let rows: Vec<usize> = (0..afb.nrows()).collect();
        let ar = afb.select(&rows, &id.redundant);
        let as_ = afb.select(&rows, &id.skel);
        let approx = srsf_linalg::gemm::matmul(&as_, &id.t);
        let err = srsf_linalg::norms::max_abs_diff(&ar, &approx);
        let scale = fro_norm(&afb);
        assert!(
            err < 1e-5 * scale.max(1e-12),
            "proxy ID failed on true far field: {err:.3e} vs scale {scale:.3e}"
        );
    }
}
