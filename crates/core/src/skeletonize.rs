//! Proxy-compressed interpolative decomposition of a box (Section II-C).
//!
//! For a box `B` with active columns `a_B`, the compression target is the
//! concatenation `[A_{F,B}; A_{B,F}^*]` of Eq. (5). Forming it would cost
//! O(N); instead (Eq. 7) the far field is represented by
//!
//! * the explicit (possibly modified) interactions against the distance-2
//!   ring `M(B)`, read from the block store, and
//! * kernel evaluations against a proxy circle of radius `2.5 L` that
//!   accounts for everything beyond `M(B)`,
//!
//! which has O(1) rows. A single column ID of the stack yields the skeleton
//! set and interpolation matrix `T` valid for both row and column
//! interactions (Eq. 6).
//!
//! # Randomized compression ([`crate::Compression::Sketched`], the default)
//!
//! Rather than assembling the full tall stack and running CPQR to
//! completion, the sketched path multiplies the stack by a seeded
//! Rademacher sketch `Ω` and pivots on the small product `Y = Ω·A`.
//! Because sketch entries are a pure function of `(seed, row, column)`
//! (`srsf_linalg::rid`), `Y` accumulates **block by block** — one
//! `Ω_blk · A_blk` GEMM per ring block and per proxy block — and the tall
//! matrix never exists in memory. The per-box seed mixes
//! `(kernel id, level, ix, iy)`, so skeletons are identical for every
//! driver, thread count, and transport.
//!
//! ## A-posteriori verification loop
//!
//! Each sketch attempt must certify the tolerance (see `srsf_linalg::rid`
//! module docs): the downdated-norm CPQR on the pivot rows of `Y` has to
//! stop early, and a held-out block of sketch rows has to be reproduced by
//! the candidate `(S, T)`. A failed attempt doubles the sketch and
//! reassembles; when the sketch stops being cheaper than the full stack
//! (`2 l ≥ m`) the box falls back to the deterministic
//! [`interp_decomp`] — accuracy is never worse than the CPQR baseline.
//!
//! ## FFT leaf fast path
//!
//! At the leaf level the ring blocks of a translation-invariant kernel
//! ([`Kernel::is_translation_invariant`]) on the uniform unit grid are
//! untouched kernel evaluations with the structure
//! `A[i,j] = s_i · t(x_i − x_j) · s_j`. The symbol `t` is tabulated once
//! per factorization — one kernel evaluation per *offset* — and such
//! blocks either assemble by table lookup (no transcendentals) or are
//! applied to the sketch through the [`Toeplitz2D`] circulant embedding:
//! one scatter, FFT convolution, and gather per sketch row and
//! direction, without materializing the block at all. Schur updates
//! destroy the structure above the leaves (and on modified leaf pairs,
//! which `BlockStore::contains` detects), so those blocks always go the
//! dense route. A per-box cost model picks whichever application is
//! cheaper: at the paper's default leaf size (64) the table-assembled
//! GEMM wins and the FFT convolution stays cold, while large uniform
//! leaves flip the inequality.
//!
//! Independently, a (complex-)symmetric kernel ([`Kernel::is_symmetric`])
//! with real entries makes the forward and adjoint blocks of an
//! unmodified pair identical (`A_{B,M}ᴴ = A_{M,B}`), so the sketch
//! evaluates each such pair once and applies the combined forward+adjoint
//! sketch in a single GEMM — Rademacher sums are exactly representable,
//! so this changes rounding order only.

use crate::store::{ActiveSets, BlockStore};
use crate::{Compression, CompressionTelemetry, FactorOpts};
use srsf_fft::toeplitz::Toeplitz2D;
use srsf_geometry::grid::UnitGrid;
use srsf_geometry::neighbors::dist2_ring;
use srsf_geometry::point::Point;
use srsf_geometry::proxy::{proxy_circle_from_unit, proxy_count, unit_circle};
use srsf_geometry::tree::{BoxId, QuadTree};
use srsf_kernels::kernel::Kernel;
use srsf_linalg::gemm::matmul_acc;
use srsf_linalg::rid::{derive_seed, id_from_sketch, sketch_block, sketch_sign, RID_VERIFY_ROWS};
use srsf_linalg::{c64, interp_decomp, IdResult, Mat, Scalar};

/// Per-level proxy geometry, computed once per factorization: all boxes
/// of a level share the circle radius and point count, so the
/// trigonometry happens once and each box only translates the result.
struct LevelGeom {
    radius: f64,
    n_proxy: usize,
    unit: Vec<Point>,
}

/// The leaf-level Toeplitz operator of a translation-invariant kernel on
/// the uniform grid, plus its per-point scaling and the raw symbol table
/// the operator was built from.
struct LeafFft {
    side: usize,
    toeplitz: Toeplitz2D,
    /// `s_i` per grid point; empty = identity (Laplace).
    scale: Vec<f64>,
    /// Raw symbol `t(dx, dy)`, row-major over `dy, dx ∈ [-(side-1),
    /// side-1]` — one kernel evaluation per *offset* instead of per
    /// entry, so unmodified leaf blocks assemble by table lookup with no
    /// transcendentals.
    table: Vec<c64>,
}

impl LeafFft {
    #[inline]
    fn scale_at(&self, i: usize) -> f64 {
        if self.scale.is_empty() {
            1.0
        } else {
            self.scale[i]
        }
    }

    /// Assemble an unmodified leaf block from the symbol table:
    /// `A[i,j] = s_i · t(x_i − x_j) · s_j` (`t` conjugated for the
    /// adjoint direction — the symbol is even, so only the conjugate
    /// distinguishes `A_{B,M}ᴴ` from `A_{M,B}` entries). Offsets between
    /// grid points are exact dyadics, so for an unscaled kernel the table
    /// entries are the very bits `Kernel::entry` would produce.
    fn table_block<T: Scalar>(&self, rows_act: &[u32], cols_act: &[u32], conj: bool) -> Mat<T> {
        let w = 2 * self.side - 1;
        let off = (self.side - 1) as i64;
        let coords = |g: &u32| {
            let g = *g as usize;
            (
                (g % self.side) as i64,
                (g / self.side) as i64,
                self.scale_at(g),
            )
        };
        let rc: Vec<_> = rows_act.iter().map(coords).collect();
        let cc: Vec<_> = cols_act.iter().map(coords).collect();
        Mat::from_fn(rc.len(), cc.len(), |i, j| {
            let (ix, iy, si) = rc[i];
            let (jx, jy, sj) = cc[j];
            let t = self.table[((iy - jy + off) as usize) * w + (ix - jx + off) as usize];
            let t = if conj { t.conj() } else { t };
            T::from_re_im(t.re, t.im).scale(si * sj)
        })
    }
}

/// Overrides the FFT cost model — tests force the path on small problems
/// where the model would (correctly) pick dense.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[cfg_attr(not(test), allow(dead_code))] // Always/Never are test-only overrides
pub(crate) enum FftGate {
    Auto,
    Always,
    Never,
}

/// Immutable per-factorization compression state, built once per driver
/// (per rank for the distributed driver — the construction is
/// deterministic, so every rank derives the identical context) and
/// shared by every `skeletonize` call.
pub struct CompressionCtx {
    compression: Compression,
    /// Kernel identity mixed into every per-box sketch seed.
    seed_id: u64,
    /// Indexed by tree level `0..=leaf`.
    geoms: Vec<LevelGeom>,
    leaf_level: u8,
    leaf_fft: Option<LeafFft>,
    fft_gate: FftGate,
}

impl CompressionCtx {
    /// Build the context for one factorization of `kernel` over `pts`.
    pub fn new<K: Kernel>(kernel: &K, pts: &[Point], tree: &QuadTree, opts: &FactorOpts) -> Self {
        let leaf = tree.leaf_level();
        let geoms = (0..=leaf)
            .map(|level| {
                let side = tree
                    .bbox(&BoxId {
                        level,
                        ix: 0,
                        iy: 0,
                    })
                    .side;
                let radius = opts.proxy_radius_factor * side;
                let n_proxy = proxy_count(
                    opts.n_proxy_min,
                    opts.proxy_osc_factor,
                    kernel.kappa(),
                    radius,
                );
                LevelGeom {
                    radius,
                    n_proxy,
                    unit: unit_circle(n_proxy),
                }
            })
            .collect();
        let sketched = matches!(opts.compression, Compression::Sketched { .. });
        let leaf_fft = if sketched && kernel.is_translation_invariant() {
            detect_unit_grid(pts).map(|side| build_leaf_fft(kernel, pts, side))
        } else {
            None
        };
        Self {
            compression: opts.compression,
            seed_id: kernel.seed_id(),
            geoms,
            leaf_level: leaf,
            leaf_fft,
            fft_gate: FftGate::Auto,
        }
    }

    #[cfg(test)]
    pub(crate) fn with_fft_gate(mut self, gate: FftGate) -> Self {
        self.fft_gate = gate;
        self
    }

    /// Whether the leaf FFT operator was built (translation-invariant
    /// kernel on a detected uniform grid under sketched compression).
    pub fn has_leaf_fft(&self) -> bool {
        self.leaf_fft.is_some()
    }

    fn geom(&self, level: u8) -> &LevelGeom {
        &self.geoms[level as usize]
    }

    /// Assemble the current block `A[act(m), act(b)]` like
    /// [`BlockStore::get`], but serve unmodified off-diagonal pairs from
    /// the symbol table when one was built. Active ids are grid points at
    /// every level, so this applies beyond the leaves: the Schur phase
    /// reads many still-untouched neighbor blocks and the dense top block
    /// is mostly fresh far-pair evaluations — the table skips their
    /// per-entry transcendentals. Only `m == b` is excluded (diagonal
    /// entries are singular self-interactions, not symbol values).
    pub(crate) fn get_block<K: Kernel>(
        &self,
        store: &BlockStore<'_, K>,
        act: &ActiveSets,
        m: &BoxId,
        b: &BoxId,
    ) -> Mat<K::Elem> {
        if m != b {
            if let Some(f) = &self.leaf_fft {
                if self.fft_gate != FftGate::Never && !store.contains(m, b) {
                    return f.table_block(act.get(m), act.get(b), false);
                }
            }
        }
        store.get(m, b, act)
    }
}

/// Detect whether `pts` is exactly the row-major [`UnitGrid`] layout with
/// a power-of-two side (bitwise comparison — the FFT identity is exact
/// only for the true grid).
fn detect_unit_grid(pts: &[Point]) -> Option<usize> {
    let n = pts.len();
    let side = (n as f64).sqrt().round() as usize;
    if side < 2 || side * side != n || !side.is_power_of_two() {
        return None;
    }
    let grid = UnitGrid::new(side);
    for (i, p) in pts.iter().enumerate() {
        let q = grid.point(i);
        if p.x.to_bits() != q.x.to_bits() || p.y.to_bits() != q.y.to_bits() {
            return None;
        }
    }
    Some(side)
}

/// Build the leaf Toeplitz operator: symbol `t(d) = entry / (s_i s_j)` at
/// a representative grid pair realizing each offset, `t(0,0) = 0` (ring
/// blocks never pair a point with itself). Requires the symmetric-kernel
/// contract of [`Kernel::is_translation_invariant`] (`t(−d) = t(d)`).
fn build_leaf_fft<K: Kernel>(kernel: &K, pts: &[Point], side: usize) -> LeafFft {
    let n = side * side;
    let scale_full: Vec<f64> = (0..n).map(|i| kernel.point_scale(i)).collect();
    let identity = scale_full.iter().all(|&s| s == 1.0);
    let w = 2 * side - 1;
    let off = side as i64 - 1;
    let mut table = vec![c64::ZERO; w * w];
    for dy in -off..=off {
        for dx in -off..=off {
            if dx == 0 && dy == 0 {
                continue; // ring blocks never pair a point with itself
            }
            let (i, j) = offset_pair(side, dx, dy);
            let e = kernel.entry(pts, i, j);
            let ss = scale_full[i] * scale_full[j];
            table[((dy + off) as usize) * w + (dx + off) as usize] =
                c64::new(e.re() / ss, e.im() / ss);
        }
    }
    let toeplitz = Toeplitz2D::new(side, |dx, dy| {
        table[((dy + off) as usize) * w + (dx + off) as usize]
    });
    LeafFft {
        side,
        toeplitz,
        scale: if identity { Vec::new() } else { scale_full },
        table,
    }
}

/// Pick a representative grid-index pair realizing the offset `(dx, dy)`.
fn offset_pair(m: usize, dx: i64, dy: i64) -> (usize, usize) {
    let jx = if dx >= 0 { 0i64 } else { -dx };
    let jy = if dy >= 0 { 0i64 } else { -dy };
    let ix = jx + dx;
    let iy = jy + dy;
    (
        (iy as usize) * m + ix as usize,
        (jy as usize) * m + jx as usize,
    )
}

/// Assemble the proxy-compressed tall matrix whose column ID skeletonizes
/// box `b` (the deterministic path, and the sketched path's fallback).
pub fn proxy_matrix<K: Kernel>(
    store: &BlockStore<'_, K>,
    act: &ActiveSets,
    tree: &QuadTree,
    b: &BoxId,
    opts: &FactorOpts,
    ctx: &CompressionCtx,
) -> Mat<K::Elem> {
    let _ = opts;
    let a_b = act.get(b);
    let nb = a_b.len();
    let pts = store.points();
    let kernel = store.kernel();

    // The row count is known before any block is materialized: each
    // nonempty ring box contributes its active count twice (both
    // directions) and the proxy circle twice `n_proxy` — so the tall
    // matrix is allocated once and every block written straight into it,
    // instead of staging a `Vec<Mat>` and copying each block a second
    // time during stacking.
    let ring: Vec<_> = dist2_ring(b)
        .into_iter()
        .filter(|m| !act.get(m).is_empty())
        .collect();
    let ring_rows: usize = ring.iter().map(|m| act.get(m).len()).sum();

    let geom = ctx.geom(b.level);
    let n_proxy = geom.n_proxy;
    let circle = proxy_circle_from_unit(tree.bbox(b).center(), geom.radius, &geom.unit);

    let mut out = Mat::zeros(2 * ring_rows + 2 * n_proxy, nb);
    let mut r0 = 0;
    // Row blocks from the distance-2 ring, both directions.
    for m in &ring {
        let blk = store.get(m, b, act);
        out.set_block(r0, 0, &blk);
        r0 += blk.nrows();
        let blk_h = store.get(b, m, act).adjoint();
        out.set_block(r0, 0, &blk_h);
        r0 += blk_h.nrows();
    }
    // Proxy rows for the far field beyond M(B), filled in place.
    for j in 0..nb {
        let col = out.col_mut(j);
        for (p, c) in circle.iter().enumerate() {
            col[r0 + p] = kernel.proxy_row(pts, *c, a_b[j] as usize);
            col[r0 + n_proxy + p] = kernel.proxy_col(pts, a_b[j] as usize, *c).conj();
        }
    }
    out
}

/// Compute the skeleton/redundant split and interpolation matrix of a
/// box, plus telemetry describing the compression path taken.
pub fn skeletonize<K: Kernel>(
    store: &BlockStore<'_, K>,
    act: &ActiveSets,
    tree: &QuadTree,
    b: &BoxId,
    opts: &FactorOpts,
    ctx: &CompressionCtx,
) -> (IdResult<K::Elem>, CompressionTelemetry) {
    let mut tel = CompressionTelemetry::default();
    let (oversample, seed) = match ctx.compression {
        Compression::Cpqr => {
            let m = proxy_matrix(store, act, tree, b, opts, ctx);
            return (interp_decomp(m, opts.tol, usize::MAX), tel);
        }
        Compression::Sketched { oversample, seed } => (oversample, seed),
    };

    let nb = act.get(b).len();
    let ring: Vec<BoxId> = dist2_ring(b)
        .into_iter()
        .filter(|m| !act.get(m).is_empty())
        .collect();
    let ring_rows: usize = ring.iter().map(|m| act.get(m).len()).sum();
    let m_rows = 2 * ring_rows + 2 * ctx.geom(b.level).n_proxy;

    // Driver-invariant rank guess. Non-leaf boxes carry the previous
    // level's realized information in `nb` itself — a parent's active set
    // is the union of its children's realized skeletons — so the guess
    // warm-starts from the measured ranks without introducing any
    // schedule-dependent state (a running average would differ between
    // drivers and break the bit-identity contract).
    let guess = if b.level == ctx.leaf_level {
        nb / 2 + 8
    } else {
        (5 * nb) / 8 + 8
    }
    .min(nb);
    let box_seed = derive_seed(
        seed ^ ctx.seed_id,
        b.level as u64,
        ((b.ix as u64) << 32) | b.iy as u64,
    );

    let mut l = (guess + oversample).max(4);
    loop {
        if 2 * (l + RID_VERIFY_ROWS) >= m_rows {
            tel.sketch_fallbacks += 1;
            let m = proxy_matrix(store, act, tree, b, opts, ctx);
            return (interp_decomp(m, opts.tol, usize::MAX), tel);
        }
        let y = sketch_proxy(
            store,
            act,
            tree,
            b,
            ctx,
            &ring,
            l + RID_VERIFY_ROWS,
            box_seed,
            &mut tel,
        );
        if let Some(id) = id_from_sketch(&y, l, opts.tol, usize::MAX) {
            return (id, tel);
        }
        tel.sketch_retries += 1;
        l *= 2;
    }
}

/// Form `Y = Ω · [proxy stack]` block by block, without materializing the
/// stack: dense `Ω_blk · A_blk` GEMMs for modified/ineligible blocks, the
/// Toeplitz FFT path for unmodified translation-invariant leaf blocks.
#[allow(clippy::too_many_arguments)]
fn sketch_proxy<K: Kernel>(
    store: &BlockStore<'_, K>,
    act: &ActiveSets,
    tree: &QuadTree,
    b: &BoxId,
    ctx: &CompressionCtx,
    ring: &[BoxId],
    rows: usize,
    seed: u64,
    tel: &mut CompressionTelemetry,
) -> Mat<K::Elem> {
    let a_b = act.get(b);
    let nb = a_b.len();
    let pts = store.points();
    let kernel = store.kernel();
    let geom = ctx.geom(b.level);
    let n_proxy = geom.n_proxy;
    let circle = proxy_circle_from_unit(tree.bbox(b).center(), geom.radius, &geom.unit);
    // A real symmetric kernel makes the two directions of an unmodified
    // pair literally the same block (`A_{B,M}ᴴ = A_{M,B}`): evaluate it
    // once and sketch both with the combined (fwd + adj) sketch — exact,
    // because Rademacher sums live in {-2, 0, 2}.
    let fuse = kernel.is_symmetric() && !K::Elem::IS_COMPLEX;

    let mut y = Mat::<K::Elem>::zeros(rows, nb);

    // Partition ring blocks into FFT-eligible (leaf level, unmodified
    // pair, operator available) and dense, tracking each block's row
    // offset in the virtual tall stack — the offset keys the sketch
    // columns, so the partition never changes the result, only the route.
    let fft = ctx
        .leaf_fft
        .as_ref()
        .filter(|_| b.level == ctx.leaf_level && ctx.fft_gate != FftGate::Never);
    let mut fwd_elig: Vec<(usize, BoxId)> = Vec::new();
    let mut adj_elig: Vec<(usize, BoxId)> = Vec::new();
    let mut r0 = 0;
    for m in ring {
        let am = act.get(m).len();
        if fft.is_some() && !store.contains(m, b) {
            fwd_elig.push((r0, *m));
        }
        r0 += am;
        if fft.is_some() && !store.contains(b, m) {
            adj_elig.push((r0, *m));
        }
        r0 += am;
    }
    let ring_rows = r0 / 2;

    // Cost model: an FFT direction costs one length-(2S)^2 convolution
    // per sketch row; the dense route costs the symbol-table lookup of
    // the eligible entries plus their GEMM flops. ~10 flops per FFT
    // butterfly point, ~4 per table lookup.
    let use_fft = match (fft, ctx.fft_gate) {
        (None, _) | (_, FftGate::Never) => false,
        (Some(_), FftGate::Always) => true,
        (Some(f), FftGate::Auto) => {
            let elig_rows: usize = fwd_elig
                .iter()
                .chain(adj_elig.iter())
                .map(|(_, m)| act.get(m).len())
                .sum();
            let n_dirs = usize::from(!fwd_elig.is_empty()) + usize::from(!adj_elig.is_empty());
            let big = 2 * f.side;
            let fft_cost = n_dirs as f64
                * rows as f64
                * 10.0
                * (big * big) as f64
                * ((big * big) as f64).log2();
            let dense_cost = elig_rows as f64 * nb as f64 * (4.0 + 2.0 * rows as f64);
            fft_cost < dense_cost
        }
    };
    if !use_fft {
        fwd_elig.clear();
        adj_elig.clear();
    }

    // Dense route: walk the ring with running offsets; every direction
    // not claimed by the FFT route is materialized — from the symbol
    // table when the pair is an untouched leaf kernel block, from the
    // store otherwise — and GEMMed into Y, pairwise-fused when the
    // kernel allows it.
    let mut r0 = 0;
    for m in ring {
        let am = act.get(m).len();
        let (fwd_off, adj_off) = (r0, r0 + am);
        r0 += 2 * am;
        let fwd_un = !store.contains(m, b);
        let adj_un = !store.contains(b, m);
        let (fwd_fft, adj_fft) = (use_fft && fwd_un, use_fft && adj_un);
        if fwd_fft && adj_fft {
            continue;
        }
        if !fwd_fft && !adj_fft && fuse && fwd_un && adj_un {
            let blk = match fft {
                Some(f) => f.table_block::<K::Elem>(act.get(m), a_b, false),
                None => store.get(m, b, act),
            };
            let mut omega = sketch_block::<K::Elem>(seed, rows, fwd_off, am);
            omega.axpy(K::Elem::ONE, &sketch_block(seed, rows, adj_off, am));
            matmul_acc(&mut y, K::Elem::ONE, &omega, &blk);
            tel.dense_block_applies += 2;
            continue;
        }
        if !fwd_fft {
            let blk = match (fwd_un, fft) {
                (true, Some(f)) => f.table_block::<K::Elem>(act.get(m), a_b, false),
                _ => store.get(m, b, act),
            };
            let omega = sketch_block::<K::Elem>(seed, rows, fwd_off, am);
            matmul_acc(&mut y, K::Elem::ONE, &omega, &blk);
            tel.dense_block_applies += 1;
        }
        if !adj_fft {
            let blk = match (adj_un, fft) {
                (true, Some(f)) => f.table_block::<K::Elem>(act.get(m), a_b, true),
                _ => store.get(b, m, act).adjoint(),
            };
            let omega = sketch_block::<K::Elem>(seed, rows, adj_off, am);
            matmul_acc(&mut y, K::Elem::ONE, &omega, &blk);
            tel.dense_block_applies += 1;
        }
    }

    // Proxy blocks: always dense (proxy points live off-grid). The same
    // pairwise fusion applies — for a real symmetric kernel the
    // conjugated column block *is* the row block.
    {
        let p_row = Mat::from_fn(n_proxy, nb, |p, j| {
            kernel.proxy_row(pts, circle[p], a_b[j] as usize)
        });
        let mut omega = sketch_block::<K::Elem>(seed, rows, 2 * ring_rows, n_proxy);
        if fuse {
            omega.axpy(
                K::Elem::ONE,
                &sketch_block(seed, rows, 2 * ring_rows + n_proxy, n_proxy),
            );
            matmul_acc(&mut y, K::Elem::ONE, &omega, &p_row);
        } else {
            matmul_acc(&mut y, K::Elem::ONE, &omega, &p_row);
            let p_col = Mat::from_fn(n_proxy, nb, |p, j| {
                kernel.proxy_col(pts, a_b[j] as usize, circle[p]).conj()
            });
            let omega = sketch_block::<K::Elem>(seed, rows, 2 * ring_rows + n_proxy, n_proxy);
            matmul_acc(&mut y, K::Elem::ONE, &omega, &p_col);
        }
        tel.dense_block_applies += 2;
    }

    // FFT route: per sketch row and direction, scatter ω·s over the grid,
    // convolve once for *all* eligible blocks of that direction (their
    // active sets are disjoint), and gather at the box's points.
    // Forward blocks contribute `s_j · (T v)[g_j]`, adjoint blocks the
    // conjugate — see `build_leaf_fft` for the symbol contract.
    if use_fft && (!fwd_elig.is_empty() || !adj_elig.is_empty()) {
        // INVARIANT: use_fft is only true when `fft` is Some.
        let f = fft.expect("fft operator gated above");
        let s2 = f.side * f.side;
        let mut scratch = f.toeplitz.scratch();
        let mut v = vec![c64::ZERO; s2];
        let mut out = vec![c64::ZERO; s2];
        for r in 0..rows {
            for (elig, conj) in [(&fwd_elig, false), (&adj_elig, true)] {
                if elig.is_empty() {
                    continue;
                }
                v.fill(c64::ZERO);
                for (off, m) in elig {
                    for (i, &gi) in act.get(m).iter().enumerate() {
                        let w = sketch_sign(seed, r, off + i) * f.scale_at(gi as usize);
                        v[gi as usize] = c64::new(w, 0.0);
                    }
                }
                f.toeplitz.apply_into(&v, &mut out, &mut scratch);
                for (j, &gj) in a_b.iter().enumerate() {
                    let t = if conj {
                        out[gj as usize].conj()
                    } else {
                        out[gj as usize]
                    };
                    let val = K::Elem::from_re_im(t.re, t.im).scale(f.scale_at(gj as usize));
                    y.col_mut(j)[r] += val;
                }
            }
        }
        tel.fft_block_applies += (fwd_elig.len() + adj_elig.len()) as u64;
    }

    y
}

/// Convenience: the defining ID error `||A[:,R] - A[:,S] T||_max` against a
/// freshly assembled proxy matrix (diagnostics and tests).
pub fn id_error<T: Scalar>(a: &Mat<T>, id: &IdResult<T>) -> f64 {
    let rows: Vec<usize> = (0..a.nrows()).collect();
    let ar = a.select(&rows, &id.redundant);
    let as_ = a.select(&rows, &id.skel);
    let approx = srsf_linalg::gemm::matmul(&as_, &id.t);
    srsf_linalg::norms::max_abs_diff(&ar, &approx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use srsf_geometry::point::BBox;
    use srsf_kernels::helmholtz::HelmholtzKernel;
    use srsf_kernels::laplace::LaplaceKernel;
    use srsf_linalg::norms::fro_norm;

    fn setup(m: usize, leaf: usize) -> (UnitGrid, LaplaceKernel, QuadTree) {
        let grid = UnitGrid::new(m);
        let k = LaplaceKernel::new(&grid);
        let tree = QuadTree::build(&grid.points(), BBox::UNIT, leaf);
        (grid, k, tree)
    }

    fn leaf_actives(grid: &UnitGrid, tree: &QuadTree) -> ActiveSets {
        let _ = grid;
        let mut act = ActiveSets::new();
        for id in tree.boxes_at_level(tree.leaf_level()) {
            act.set(id, tree.leaf_points(&id).to_vec());
        }
        act
    }

    fn cpqr_opts() -> FactorOpts {
        FactorOpts::default().with_compression(Compression::Cpqr)
    }

    #[test]
    fn proxy_matrix_shape_and_content() {
        let (grid, k, tree) = setup(16, 16);
        let pts = grid.points();
        let store = BlockStore::new(&k, &pts);
        let act = leaf_actives(&grid, &tree);
        let b = BoxId {
            level: tree.leaf_level(),
            ix: 2,
            iy: 2,
        };
        let opts = FactorOpts::default();
        let ctx = CompressionCtx::new(&k, &pts, &tree, &opts);
        let m = proxy_matrix(&store, &act, &tree, &b, &opts, &ctx);
        assert_eq!(m.ncols(), 16);
        // Rows: both directions of every nonempty M(B) block plus the two
        // proxy blocks.
        let m_pts: usize = srsf_geometry::neighbors::dist2_ring(&b)
            .iter()
            .map(|mb| act.get(mb).len())
            .sum();
        assert_eq!(m.nrows() % 2, 0);
        assert!(m.nrows() >= 2 * m_pts + 2 * opts.n_proxy_min);
        assert!(fro_norm(&m) > 0.0);
    }

    #[test]
    fn skeleton_rank_much_smaller_than_box() {
        let (grid, k, tree) = setup(32, 64); // leaves of 64 points
        let pts = grid.points();
        let store = BlockStore::new(&k, &pts);
        let act = leaf_actives(&grid, &tree);
        let opts = FactorOpts {
            tol: 1e-6,
            ..cpqr_opts()
        };
        let ctx = CompressionCtx::new(&k, &pts, &tree, &opts);
        let b = BoxId {
            level: tree.leaf_level(),
            ix: 1,
            iy: 1,
        };
        let (id, _) = skeletonize(&store, &act, &tree, &b, &opts, &ctx);
        assert_eq!(id.rank() + id.redundant.len(), 64);
        assert!(id.rank() < 50, "rank {} should compress", id.rank());
        assert!(id.rank() > 5, "rank {} suspiciously small", id.rank());
    }

    #[test]
    fn tighter_tolerance_larger_skeleton() {
        let (grid, k, tree) = setup(32, 64);
        let pts = grid.points();
        let store = BlockStore::new(&k, &pts);
        let act = leaf_actives(&grid, &tree);
        let b = BoxId {
            level: tree.leaf_level(),
            ix: 2,
            iy: 1,
        };
        let lo = FactorOpts {
            tol: 1e-3,
            ..cpqr_opts()
        };
        let hi = FactorOpts {
            tol: 1e-9,
            ..cpqr_opts()
        };
        let ctx_lo = CompressionCtx::new(&k, &pts, &tree, &lo);
        let ctx_hi = CompressionCtx::new(&k, &pts, &tree, &hi);
        let (loose, _) = skeletonize(&store, &act, &tree, &b, &lo, &ctx_lo);
        let (tight, _) = skeletonize(&store, &act, &tree, &b, &hi, &ctx_hi);
        assert!(tight.rank() > loose.rank());
    }

    /// Exact far-field block `A_{F,B}` for the accuracy assertions below.
    fn true_far_field(
        store: &BlockStore<'_, LaplaceKernel>,
        act: &ActiveSets,
        tree: &QuadTree,
        b: &BoxId,
    ) -> Mat<f64> {
        let a_b = act.get(b);
        let mut far_rows: Vec<u32> = Vec::new();
        for other in tree.boxes_at_level(b.level) {
            if other.chebyshev(b) > 2 {
                far_rows.extend_from_slice(act.get(&other));
            }
        }
        store.eval_kernel(&far_rows, a_b)
    }

    fn assert_far_field_bound(afb: &Mat<f64>, id: &IdResult<f64>, label: &str) {
        let rows: Vec<usize> = (0..afb.nrows()).collect();
        let ar = afb.select(&rows, &id.redundant);
        let as_ = afb.select(&rows, &id.skel);
        let approx = srsf_linalg::gemm::matmul(&as_, &id.t);
        let err = srsf_linalg::norms::max_abs_diff(&ar, &approx);
        let scale = fro_norm(afb);
        assert!(
            err < 1e-5 * scale.max(1e-12),
            "{label} ID failed on true far field: {err:.3e} vs scale {scale:.3e}"
        );
    }

    /// The heart of the proxy trick: the ID computed from the O(1)-row
    /// proxy matrix must compress the *true* far-field interaction too.
    #[test]
    fn proxy_id_compresses_true_far_field() {
        let (grid, k, tree) = setup(32, 64);
        let pts = grid.points();
        let store = BlockStore::new(&k, &pts);
        let act = leaf_actives(&grid, &tree);
        let opts = FactorOpts {
            tol: 1e-8,
            ..cpqr_opts()
        };
        let ctx = CompressionCtx::new(&k, &pts, &tree, &opts);
        let lvl = tree.leaf_level();
        let b = BoxId {
            level: lvl,
            ix: 1,
            iy: 2,
        };
        let (id, tel) = skeletonize(&store, &act, &tree, &b, &opts, &ctx);
        assert_eq!(tel, CompressionTelemetry::default());
        assert_far_field_bound(&true_far_field(&store, &act, &tree, &b), &id, "CPQR");
    }

    /// The sketched path must satisfy the *same* true-far-field bound as
    /// the deterministic path at the same tolerance.
    #[test]
    fn sketched_id_compresses_true_far_field() {
        let (grid, k, tree) = setup(32, 64);
        let pts = grid.points();
        let store = BlockStore::new(&k, &pts);
        let act = leaf_actives(&grid, &tree);
        let opts = FactorOpts {
            tol: 1e-8,
            ..FactorOpts::default().with_compression(Compression::sketched())
        };
        let ctx = CompressionCtx::new(&k, &pts, &tree, &opts);
        let b = BoxId {
            level: tree.leaf_level(),
            ix: 1,
            iy: 2,
        };
        let (id, tel) = skeletonize(&store, &act, &tree, &b, &opts, &ctx);
        assert!(tel.dense_block_applies > 0, "sketch should have run");
        assert_eq!(tel.sketch_fallbacks, 0);
        assert_far_field_bound(&true_far_field(&store, &act, &tree, &b), &id, "sketched");

        // And the skeleton count agrees with the deterministic path to
        // within the oversampling slack.
        let cp = FactorOpts {
            tol: 1e-8,
            ..cpqr_opts()
        };
        let ctx_cp = CompressionCtx::new(&k, &pts, &tree, &cp);
        let (full, _) = skeletonize(&store, &act, &tree, &b, &cp, &ctx_cp);
        assert!(
            id.rank() <= full.rank() + 6 && id.rank() + 6 >= full.rank(),
            "sketched rank {} vs deterministic {}",
            id.rank(),
            full.rank()
        );
    }

    /// Forcing the FFT route must exercise it (telemetry) and still meet
    /// the far-field bound — the Toeplitz application is exact on
    /// unmodified leaf blocks, so only the sketch statistics change.
    #[test]
    fn sketched_fft_path_compresses_true_far_field() {
        let (grid, k, tree) = setup(32, 64);
        let pts = grid.points();
        let store = BlockStore::new(&k, &pts);
        let act = leaf_actives(&grid, &tree);
        let opts = FactorOpts {
            tol: 1e-8,
            ..FactorOpts::default().with_compression(Compression::sketched())
        };
        let ctx = CompressionCtx::new(&k, &pts, &tree, &opts).with_fft_gate(FftGate::Always);
        assert!(ctx.has_leaf_fft(), "unit grid + Laplace must detect");
        let b = BoxId {
            level: tree.leaf_level(),
            ix: 1,
            iy: 2,
        };
        let (id, tel) = skeletonize(&store, &act, &tree, &b, &opts, &ctx);
        assert!(tel.fft_block_applies > 0, "FFT path should have run");
        assert_far_field_bound(
            &true_far_field(&store, &act, &tree, &b),
            &id,
            "FFT-sketched",
        );
    }

    /// The FFT route and the dense route apply the same operator: the
    /// sketches they produce agree to rounding, for both paper kernels
    /// (identity scaling and sqrt(b) scaling).
    #[test]
    fn fft_and_dense_sketches_agree() {
        // Laplace (f64, identity scale).
        let (grid, k, tree) = setup(16, 16);
        let pts = grid.points();
        let store = BlockStore::new(&k, &pts);
        let act = leaf_actives(&grid, &tree);
        let opts = FactorOpts::default();
        let b = BoxId {
            level: tree.leaf_level(),
            ix: 0,
            iy: 3,
        };
        let ring: Vec<BoxId> = dist2_ring(&b)
            .into_iter()
            .filter(|m| !act.get(m).is_empty())
            .collect();
        let ctx_d = CompressionCtx::new(&k, &pts, &tree, &opts).with_fft_gate(FftGate::Never);
        let ctx_f = CompressionCtx::new(&k, &pts, &tree, &opts).with_fft_gate(FftGate::Always);
        let mut t1 = CompressionTelemetry::default();
        let mut t2 = CompressionTelemetry::default();
        let yd = sketch_proxy(&store, &act, &tree, &b, &ctx_d, &ring, 12, 99, &mut t1);
        let yf = sketch_proxy(&store, &act, &tree, &b, &ctx_f, &ring, 12, 99, &mut t2);
        assert!(t1.fft_block_applies == 0 && t2.fft_block_applies > 0);
        let scale = fro_norm(&yd);
        assert!(
            srsf_linalg::norms::max_abs_diff(&yd, &yf) < 1e-12 * scale,
            "dense vs FFT sketch disagree"
        );

        // Helmholtz (c64, sqrt(b) scaling exercises the scale vector and
        // the conjugated adjoint direction).
        let hk = HelmholtzKernel::new(&grid, 10.0);
        let hstore = BlockStore::new(&hk, &pts);
        let hd = CompressionCtx::new(&hk, &pts, &tree, &opts).with_fft_gate(FftGate::Never);
        let hf = CompressionCtx::new(&hk, &pts, &tree, &opts).with_fft_gate(FftGate::Always);
        let mut t3 = CompressionTelemetry::default();
        let mut t4 = CompressionTelemetry::default();
        let zd = sketch_proxy(&hstore, &act, &tree, &b, &hd, &ring, 12, 99, &mut t3);
        let zf = sketch_proxy(&hstore, &act, &tree, &b, &hf, &ring, 12, 99, &mut t4);
        assert!(t4.fft_block_applies > 0);
        let hscale = fro_norm(&zd);
        assert!(
            srsf_linalg::norms::max_abs_diff(&zd, &zf) < 1e-12 * hscale,
            "Helmholtz dense vs FFT sketch disagree"
        );
    }

    /// Scattered (non-grid) points must not detect as a grid.
    #[test]
    fn no_fft_operator_off_grid() {
        let pts = srsf_geometry::grid::scattered_points(256, 7);
        let k = LaplaceKernel::with_params(1.0 / 256.0, 1.0);
        let tree = QuadTree::build(&pts, BBox::UNIT, 16);
        let ctx = CompressionCtx::new(&k, &pts, &tree, &FactorOpts::default());
        assert!(!ctx.has_leaf_fft());
    }
}
