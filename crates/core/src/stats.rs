//! Factorization statistics: skeleton ranks per level (Figure 9 of the
//! paper), timing breakdowns (`tcomp`/`tother`), and memory footprint.

use std::collections::BTreeMap;

/// Counters describing how the randomized compression behaved — per box
/// from `skeletonize`, accumulated per factorization (and per rank over
/// the wire) into [`FactorStats::compression`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompressionTelemetry {
    /// Sketch attempts rejected by the a-posteriori verification and
    /// retried with a doubled sketch.
    pub sketch_retries: u64,
    /// Boxes that exhausted the sketch budget and fell back to the full
    /// deterministic CPQR.
    pub sketch_fallbacks: u64,
    /// Ring/proxy blocks applied to the sketch through the Toeplitz FFT
    /// fast path.
    pub fft_block_applies: u64,
    /// Ring/proxy blocks applied to the sketch as dense GEMMs (always 0
    /// under [`crate::Compression::Cpqr`], which forms no sketch).
    pub dense_block_applies: u64,
}

impl CompressionTelemetry {
    /// Fold another telemetry record (a box, or a whole rank) into this one.
    pub fn absorb(&mut self, other: &CompressionTelemetry) {
        self.sketch_retries += other.sketch_retries;
        self.sketch_fallbacks += other.sketch_fallbacks;
        self.fft_block_applies += other.fft_block_applies;
        self.dense_block_applies += other.dense_block_applies;
    }
}

/// Statistics collected while building a factorization.
#[derive(Clone, Debug, Default)]
pub struct FactorStats {
    /// Problem size `N`.
    pub n: usize,
    /// Leaf level of the quad-tree.
    pub leaf_level: u8,
    /// Per-level `(boxes skeletonized, sum of skeleton ranks)`.
    pub ranks: BTreeMap<u8, (usize, usize)>,
    /// Seconds spent in per-box elimination (ID + Schur updates).
    pub eliminate_s: f64,
    /// Seconds spent in level transitions (merging/regrouping).
    pub merge_s: f64,
    /// Seconds spent on the dense top-level factorization.
    pub top_s: f64,
    /// Total wall time of the factorization.
    pub total_s: f64,
    /// Wall time of the (distributed) solve, when one was run.
    pub solve_s: f64,
    /// Size of the final dense top block.
    pub top_size: usize,
    /// Approximate bytes held by the factorization records.
    pub record_bytes: usize,
    /// Peak bytes held by the modified-block store.
    pub peak_store_bytes: usize,
    /// Randomized-compression behavior (retries, fallbacks, FFT vs dense
    /// sketch block applications).
    pub compression: CompressionTelemetry,
}

impl FactorStats {
    /// Fresh stats for a problem of size `n`.
    pub fn new(n: usize, leaf_level: u8) -> Self {
        Self {
            n,
            leaf_level,
            ..Self::default()
        }
    }

    /// Record one skeletonized box.
    pub fn add_rank(&mut self, level: u8, rank: usize) {
        let e = self.ranks.entry(level).or_insert((0, 0));
        e.0 += 1;
        e.1 += rank;
    }

    /// Average skeleton rank at a level (the quantity plotted in Fig. 9).
    pub fn avg_rank(&self, level: u8) -> Option<f64> {
        self.ranks
            .get(&level)
            .filter(|(count, _)| *count > 0)
            .map(|(count, sum)| *sum as f64 / *count as f64)
    }

    /// `(level, average rank)` rows from coarse to fine.
    pub fn rank_table(&self) -> Vec<(u8, f64)> {
        self.ranks
            .iter()
            .filter(|(_, (c, _))| *c > 0)
            .map(|(l, (c, s))| (*l, *s as f64 / *c as f64))
            .collect()
    }

    /// The paper's `tother` proxy: time not spent in per-box computation.
    pub fn other_s(&self) -> f64 {
        (self.total_s - self.eliminate_s - self.top_s).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_accounting() {
        let mut s = FactorStats::new(100, 4);
        s.add_rank(4, 10);
        s.add_rank(4, 20);
        s.add_rank(3, 40);
        assert_eq!(s.avg_rank(4), Some(15.0));
        assert_eq!(s.avg_rank(3), Some(40.0));
        assert_eq!(s.avg_rank(2), None);
        let table = s.rank_table();
        assert_eq!(table, vec![(3, 40.0), (4, 15.0)]);
    }

    #[test]
    fn other_time_nonnegative() {
        let mut s = FactorStats::new(10, 2);
        s.total_s = 5.0;
        s.eliminate_s = 3.0;
        s.top_s = 1.0;
        assert!((s.other_s() - 1.0).abs() < 1e-15);
        s.eliminate_s = 10.0;
        assert_eq!(s.other_s(), 0.0);
    }
}
