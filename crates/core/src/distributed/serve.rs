//! The resident serving mode: keep the rank world alive and serve
//! repeated solves in place.
//!
//! After [`factor_phase`](super::factorize::factor_phase) completes, each
//! rank's elimination records **stay where they were produced**: rank 0
//! holds only the dense top factorization plus routing metadata
//! (ownership maps, fold ids, per-level active sets), and ranks `1..p`
//! park in a request/response command loop
//! ([`serve_rank`]) driven by rank 0 through a live
//! [`WorldHandle`]. Every [`ResidentService::solve_mat`] then runs
//! Algorithm 2's solve phase — upward pass with neighbor delta exchange,
//! dense top solve on rank 0, downward pass with request/reply value
//! refresh — as one SPMD function executed by all ranks over the existing
//! `KIND_SOLVE_*` tags, with the rank-local sweeps GEMM-blocked via the
//! level-3 kernels of [`crate::solve`].
//!
//! **Bit-exactness.** The resident solve reproduces the gathered
//! [`Factorization::apply_inverse_mat`](crate::Factorization) sweep *bit
//! for bit* (asserted in `tests/resident_serve.rs`): per-rank records are
//! applied in global elimination-order (the sorted order key), and the
//! neighbor delta shipped for a remote row is the very `EN · B_R` GEMM
//! product row the serial merge would subtract — not an after-minus-before
//! difference, which would pick up the sender's stale copy of the remote
//! value. Within any `(level, phase)` round the four-color schedule
//! guarantees no row receives deltas from two different ranks and no rank
//! both holds phase records and receives non-empty deltas, so the
//! receive-order of the exchange cannot reorder the serial summation.
//!
//! **Counters.** Solve traffic moves under the algorithmic
//! `KIND_SOLVE_*` tags and lands in the §IV data counters, so
//! `comm_counts --solve-reps` measures the paper's per-solve bound
//! O(sqrt(N/p)) words. The service *envelope* — command dispatch, the
//! RHS scatter and solution gather slabs (O(N·nrhs/p) words, the
//! residency analogue of the old record gather), and stats probes — moves
//! as uncounted service frames ([`RankCtx::send_service`]).
//!
//! **Shutdown.** Tag-based and Drop-safe: [`ResidentService::shutdown`]
//! broadcasts a shutdown command and joins the workers through
//! [`WorldHandle::finish`]; dropping the service does the same, and a
//! handle dropped without the round still leaves no live workers (the
//! idle wait observes the teardown — see `run_resident`). A rank that
//! dies mid-solve surfaces as a typed
//! [`SrsfError::RankFailed`](crate::SrsfError) naming the dead rank and
//! the protocol step, on both transports, within the receive timeout —
//! never a hang: live workers abandon the solve and exit their loops,
//! rank 0 poisons the service so later calls fail fast with the same
//! error, and Drop still reaps the session.
//!
//! **Checkpoint/restore.** When the factorization ran with
//! [`FactorOpts::checkpoint_dir`](crate::FactorOpts) set, each rank
//! persisted its snapshot at factor completion;
//! [`restore_resident_service`] rebuilds a fresh rank world from those
//! snapshots — no kernel evaluations, no re-factorization — and restored
//! solves are bit-identical to the original service's.

use super::factorize::{factor_phase, resident_bytes, TopFactor};
use super::{get_ids, key_level_phase, owned_leaf_ids, owner_of_point, region_of, RankState};
use crate::elimination::{BoxElimination, FactorError};
use crate::error::SrsfError;
use crate::sequential::domain_for;
use crate::solve::{downward_parts, merge_upward, upward_parts};
use crate::stats::FactorStats;
use crate::wire::put_ids;
use crate::FactorOpts;
use srsf_geometry::point::Point;
use srsf_geometry::procgrid::ProcessGrid;
use srsf_geometry::tree::{BoxId, QuadTree};
use srsf_kernels::kernel::Kernel;
use srsf_linalg::{Mat, Scalar};
use srsf_runtime::codec::{ByteReader, ByteWriter, Wire};
use srsf_runtime::tags::{
    self, tag, KIND_SOLVE_REQ, KIND_SOLVE_UP, KIND_SOLVE_VAL, TAG_SERVE_CKPT, TAG_SERVE_CMD,
    TAG_SERVE_READY, TAG_SERVE_RHS, TAG_SERVE_SOL, TAG_SERVE_STATS, TAG_SERVE_TRACE,
};
use srsf_runtime::world::{RankCtx, World, WorldHandle};
use srsf_runtime::{CommStats, MetricsRegistry, RecvError, TraceReport, Transport, WorldStats};
use std::collections::HashMap;
use std::path::Path;
// Sync primitives come through the srsf-verify shims: identical to
// `std::sync` in a normal build, schedule-explored under
// `--cfg srsf_model` (see crates/verify).
use srsf_verify::sync::{Arc, Mutex};

/// Serve-loop opcodes (first u64 of a `TAG_SERVE_CMD` payload).
const CMD_SHUTDOWN: u64 = 0;
/// `[CMD_SOLVE, nrhs]`, followed by a `TAG_SERVE_RHS` slab.
const CMD_SOLVE: u64 = 1;
/// Reply with a `TAG_SERVE_STATS` counter snapshot.
const CMD_PROBE: u64 = 2;
/// Reply with a `TAG_SERVE_TRACE` span-report drain (`srsf-trace` ring
/// buffers; empty when tracing is off).
const CMD_TRACE: u64 = 3;

/// What every rank needs at serve time beyond its [`ServeState`]. Owned
/// (not borrowed) so the in-process backend's serve threads can outlive
/// the build call. Deliberately tiny: all ownership/routing derived from
/// the tree and points is precomputed into the per-rank state at build,
/// so neither the geometry nor the kernel is retained.
pub(crate) struct ResidentGeo {
    /// Problem size `N`.
    pub(crate) n: usize,
    pub(crate) grid: ProcessGrid,
}

/// One record's upward remote-delta routing: `(destination rank, remote
/// row ids, their positions within `rec.nbr`)`, destinations in
/// first-appearance order within the nbr list.
type DeltaRoute = Vec<(usize, Vec<u32>, Vec<u32>)>;

/// Per-round id lists keyed by destination/owner rank.
type IdsByRank = Vec<(usize, Vec<u32>)>;

/// One rank's resident solve state: its own elimination records in global
/// elimination order, the solve-routing metadata, and (rank 0 only) the
/// dense top factorization.
///
/// Records, geometry, and ownership are fixed at factorization time, so
/// everything a solve needs besides the actual row data is precomputed
/// here once — per-round record ranges, the per-record remote-delta
/// routing, the per-round downward refresh lists, rank 0's top reply
/// partition — and the per-solve hot path does no ownership math at all.
pub(crate) struct ServeState<T> {
    /// `(order key, record)`, sorted by key — the global elimination
    /// order restricted to this rank, which is what makes the resident
    /// sweeps bit-identical to the gathered serial sweep.
    records: Vec<(u64, BoxElimination<T>)>,
    /// Record index range of each `(level, phase)` round — contiguous
    /// because `records` is key-sorted.
    rounds: HashMap<(u8, u8), std::ops::Range<usize>>,
    /// Aligned with `records`: where each record's neighbor delta must be
    /// shipped (empty for records whose 1-ring stays on-rank).
    routing: Vec<DeltaRoute>,
    /// Per round: the sorted, deduplicated remote ids to refresh from
    /// each owner before the downward applications.
    need: HashMap<(u8, u8), IdsByRank>,
    /// Rank 0 only: the top-solve reply partition — which `top_idx`
    /// entries each active rank owns.
    top_reply: IdsByRank,
    /// Post-elimination active sets of owned boxes per level.
    act_end: HashMap<u8, Vec<(BoxId, Vec<u32>)>>,
    /// Ids received from each retiring fold member at each fold level.
    fold_ids: HashMap<(u8, usize), Vec<u32>>,
    /// The dense top factorization (rank 0 only).
    top: TopFactor<T>,
    leaf: u8,
    lmin: u8,
    top_level: u8,
    /// This rank's slab rows, in the canonical row-major leaf-box order.
    owned_leaf_ids: Vec<u32>,
    /// This rank's factorization stats (rank tables merged at build).
    stats: FactorStats,
    /// Resident footprint: records plus (rank 0) the top factorization.
    bytes: u64,
}

impl<T: Scalar> ServeState<T> {
    #[allow(clippy::too_many_arguments)]
    fn from_rank_state(
        state: RankState<T>,
        top: TopFactor<T>,
        tree: &QuadTree,
        pts: &[Point],
        grid: &ProcessGrid,
        leaf: u8,
        lmin: u8,
        me: usize,
    ) -> Self {
        let bytes = resident_bytes(&state, &top);
        let RankState {
            mut records,
            act_end,
            fold_ids,
            stats,
            ..
        } = state;
        records.sort_by_key(|(k, _)| *k);

        // Round ranges: key-sorted records make (level, phase) runs
        // contiguous.
        let mut rounds: HashMap<(u8, u8), std::ops::Range<usize>> = HashMap::new();
        let mut i = 0;
        while i < records.len() {
            let lp = key_level_phase(leaf, records[i].0);
            let start = i;
            while i < records.len() && key_level_phase(leaf, records[i].0) == lp {
                i += 1;
            }
            rounds.insert(lp, start..i);
        }

        // Upward delta routing: per record, the remote rows of its
        // neighbor delta grouped by owner, ids kept in nbr order (the
        // order the receiver applies — part of the bit-exactness
        // contract).
        let routing: Vec<DeltaRoute> = records
            .iter()
            .map(|(key, rec)| {
                let (level, _) = key_level_phase(leaf, *key);
                let mut route: DeltaRoute = Vec::new();
                for (j, &id) in rec.nbr.iter().enumerate() {
                    let owner = owner_of_point(grid, tree, pts, id, level);
                    if owner == me {
                        continue;
                    }
                    match route.iter_mut().find(|(d, _, _)| *d == owner) {
                        Some((_, ids, pos)) => {
                            ids.push(id);
                            pos.push(j as u32);
                        }
                        None => route.push((owner, vec![id], vec![j as u32])),
                    }
                }
                route
            })
            .collect();

        // Downward refresh lists: the union of each round's remote reads,
        // sorted and deduplicated per owner.
        let mut need: HashMap<(u8, u8), IdsByRank> = HashMap::new();
        for (&lp, range) in &rounds {
            let mut per_dst: IdsByRank = Vec::new();
            for route in &routing[range.clone()] {
                for (dst, ids, _) in route {
                    match per_dst.iter_mut().find(|(d, _)| d == dst) {
                        Some((_, acc)) => acc.extend_from_slice(ids),
                        None => per_dst.push((*dst, ids.clone())),
                    }
                }
            }
            for (_, ids) in &mut per_dst {
                ids.sort_unstable();
                ids.dedup();
            }
            need.insert(lp, per_dst);
        }

        // Rank 0's top reply partition.
        let top_level = lmin.min(leaf);
        let top_reply = match &top {
            Some((top_idx, _)) => grid
                .active_ranks(top_level)
                .into_iter()
                .filter(|&r| r != 0)
                .map(|dst| {
                    let ids: Vec<u32> = top_idx
                        .iter()
                        .copied()
                        .filter(|&id| owner_of_point(grid, tree, pts, id, top_level) == dst)
                        .collect();
                    (dst, ids)
                })
                .collect(),
            None => Vec::new(),
        };

        Self {
            records,
            rounds,
            routing,
            need,
            top_reply,
            act_end,
            fold_ids,
            top,
            leaf,
            lmin,
            top_level,
            owned_leaf_ids: owned_leaf_ids(tree, grid, me),
            stats,
            bytes,
        }
    }

    /// Record index range of one `(level, phase)` round.
    fn round_range(&self, level: u8, phase: u8) -> std::ops::Range<usize> {
        self.rounds.get(&(level, phase)).cloned().unwrap_or(0..0)
    }

    /// Ids of the entries this rank owned at `level` after elimination.
    fn owned_act_ids(&self, level: u8) -> Vec<u32> {
        self.act_end
            .get(&level)
            .map(|v| v.iter().flat_map(|(_, ids)| ids.iter().copied()).collect())
            .unwrap_or_default()
    }
}

/// Per-record neighbor-delta batches bound for one rank: `(row ids,
/// matching rows of the `EN B_R` product)`.
type DeltaBatch<'a, T> = Vec<(&'a [u32], Mat<T>)>;

/// The SPMD resident solve: every rank (rank 0 included) runs this over
/// its slab-initialized full-height working block `x` (`n x nrhs`; only
/// owned and protocol-refreshed rows are ever read — stale remote copies
/// are write-only). On return, rank 0's `x` holds the full solution;
/// worker copies are discarded by the caller.
///
/// Note on working memory: residency keeps the *factor* (record) memory
/// at O(N/p) per rank — the paper's bound, and what this mode exists
/// for — but the per-solve working block is allocated full-height for
/// global row addressing, O(N·nrhs) scratch per rank per solve (freed at
/// solve end; same shape the legacy in-world solve and the gathered
/// rank-0 sweep use). Shrinking it to owned+halo height needs a rank-
/// local row remap of every record index — a follow-up, not a
/// correctness issue.
///
/// `rank0_owned` is rank 0's cached per-rank slab row map (None on
/// workers).
///
/// Fallible by design: every receive and barrier is the bounded-timeout
/// variant, so a rank that dies (or a link that goes down) mid-solve
/// surfaces here as a typed [`RecvError`] within the receive timeout —
/// the caller (rank 0's service, a worker's serve loop) abandons the
/// solve instead of hanging or panicking.
fn solve_resident_mat<T: Scalar>(
    ctx: &mut RankCtx,
    geo: &ResidentGeo,
    st: &ServeState<T>,
    x: &mut Mat<T>,
    rank0_owned: Option<&[Vec<u32>]>,
) -> Result<(), RecvError> {
    let me = ctx.rank();
    let grid = &geo.grid;
    let levels: Vec<u8> = (st.lmin..=st.leaf).rev().collect();

    // ---- Upward pass -----------------------------------------------------
    for &level in &levels {
        let _sp = srsf_trace::span!(srsf_trace::Cat::Solve, "solve upward level {level}");
        if grid.is_active(me, level) {
            let neighbors = grid.neighbor_ranks(me, level);
            for phase in 0..=4u8 {
                let mut outgoing: HashMap<usize, DeltaBatch<'_, T>> =
                    neighbors.iter().map(|&r| (r, Vec::new())).collect();
                for i in st.round_range(level, phase) {
                    let rec = &st.records[i].1;
                    let (br, bs, dn) = upward_parts(rec, x);
                    // Remote rows of the neighbor delta: the exact rows of
                    // the `EN B_R` product the serial merge subtracts,
                    // routed by the precomputed ownership tables.
                    for (dst, ids, pos) in &st.routing[i] {
                        let rows = dn.gather_rows(pos);
                        outgoing
                            .get_mut(dst)
                            // INVARIANT: outgoing was pre-seeded with every
                            // neighbouring rank before the delta pass
                            .expect("delta for a non-adjacent rank")
                            .push((ids, rows));
                    }
                    merge_upward(rec, x, br, bs, dn);
                }
                for &dst in &neighbors {
                    let entries = outgoing.remove(&dst).unwrap_or_default();
                    let mut w = ByteWriter::new();
                    w.put_u64(entries.len() as u64);
                    for (ids, rows) in &entries {
                        put_ids(&mut w, ids);
                        w.put_mat(rows);
                    }
                    ctx.send(dst, tag(level, phase, KIND_SOLVE_UP), w.finish());
                }
                for &src in &neighbors {
                    let payload = ctx.try_recv(src, tag(level, phase, KIND_SOLVE_UP))?;
                    let mut r = ByteReader::new(payload);
                    // INVARIANT: this frame was encoded by a peer rank under the matching tag
                    // and the transport delivers whole messages, so decode cannot truncate
                    let n = r.get_u64();
                    for _ in 0..n {
                        let ids = get_ids(&mut r);
                        // INVARIANT: this frame was encoded by a peer rank under the matching tag
                        // and the transport delivers whole messages, so decode cannot truncate
                        let rows: Mat<T> = r.get_mat();
                        x.scatter_rows_sub(&ids, &rows);
                    }
                }
            }
        }
        ctx.try_barrier()?;
        // Fold value shipment when the next level retires this rank.
        if level > st.lmin {
            fold_up_mat(ctx, grid, st, level, x)?;
        }
    }

    // ---- Top solve on rank 0 ---------------------------------------------
    let top_sp = srsf_trace::span!(srsf_trace::Cat::Solve, "solve top level {}", st.top_level);
    let active_top = grid.active_ranks(st.top_level);
    if me == 0 {
        for &src in active_top.iter().filter(|&&r| r != 0) {
            let payload = ctx.try_recv(src, tag(st.top_level, 6, KIND_SOLVE_VAL))?;
            let mut r = ByteReader::new(payload);
            let ids = get_ids(&mut r);
            // INVARIANT: this frame was encoded by a peer rank under the matching tag
            // and the transport delivers whole messages, so decode cannot truncate
            let rows: Mat<T> = r.get_mat();
            x.scatter_rows(&ids, &rows);
        }
        // INVARIANT: rank 0 runs the top-level merge, so its record always exists
        let (top_idx, top_lu) = st.top.as_ref().expect("rank 0 holds the top");
        let mut vals = x.gather_rows(top_idx);
        top_lu.solve_mat(&mut vals);
        x.scatter_rows(top_idx, &vals);
        for (dst, ids) in &st.top_reply {
            let mut w = ByteWriter::new();
            put_ids(&mut w, ids);
            w.put_mat(&x.gather_rows(ids));
            ctx.send(*dst, tag(st.top_level, 7, KIND_SOLVE_VAL), w.finish());
        }
    } else if active_top.contains(&me) {
        let ids = st.owned_act_ids(st.top_level);
        let mut w = ByteWriter::new();
        put_ids(&mut w, &ids);
        w.put_mat(&x.gather_rows(&ids));
        ctx.send(0, tag(st.top_level, 6, KIND_SOLVE_VAL), w.finish());
        let payload = ctx.try_recv(0, tag(st.top_level, 7, KIND_SOLVE_VAL))?;
        let mut r = ByteReader::new(payload);
        let ids = get_ids(&mut r);
        // INVARIANT: this frame was encoded by a peer rank under the matching tag
        // and the transport delivers whole messages, so decode cannot truncate
        let rows: Mat<T> = r.get_mat();
        x.scatter_rows(&ids, &rows);
    }
    ctx.try_barrier()?;
    drop(top_sp);

    // ---- Downward pass ----------------------------------------------------
    for &level in levels.iter().rev() {
        let _sp = srsf_trace::span!(srsf_trace::Cat::Solve, "solve downward level {level}");
        if level > st.lmin {
            fold_down_mat(ctx, grid, st, level, x)?;
        }
        if grid.is_active(me, level) {
            let neighbors = grid.neighbor_ranks(me, level);
            for phase in (0..=4u8).rev() {
                // Refresh the remote values my phase records read (from
                // the precomputed per-round lists); within a round their
                // owners are write-quiescent, so the values are the
                // serial-sweep values.
                let empty: IdsByRank = Vec::new();
                let need = st.need.get(&(level, phase)).unwrap_or(&empty);
                for &dst in &neighbors {
                    let ids = need
                        .iter()
                        .find(|(d, _)| *d == dst)
                        .map(|(_, ids)| ids.as_slice())
                        .unwrap_or(&[]);
                    let mut w = ByteWriter::new();
                    put_ids(&mut w, ids);
                    ctx.send(dst, tag(level, phase, KIND_SOLVE_REQ), w.finish());
                }
                for &src in &neighbors {
                    let payload = ctx.try_recv(src, tag(level, phase, KIND_SOLVE_REQ))?;
                    let ids = get_ids(&mut ByteReader::new(payload));
                    let mut w = ByteWriter::new();
                    put_ids(&mut w, &ids);
                    w.put_mat(&x.gather_rows(&ids));
                    ctx.send(src, tag(level, phase, KIND_SOLVE_VAL), w.finish());
                }
                for &src in &neighbors {
                    let payload = ctx.try_recv(src, tag(level, phase, KIND_SOLVE_VAL))?;
                    let mut r = ByteReader::new(payload);
                    let ids = get_ids(&mut r);
                    // INVARIANT: this frame was encoded by a peer rank under the matching tag
                    // and the transport delivers whole messages, so decode cannot truncate
                    let rows: Mat<T> = r.get_mat();
                    x.scatter_rows(&ids, &rows);
                }
                // Apply my records of this round in reverse global order.
                for i in st.round_range(level, phase).rev() {
                    let rec = &st.records[i].1;
                    let (br, bs) = downward_parts(rec, x);
                    x.scatter_rows(&rec.redundant, &br);
                    x.scatter_rows(&rec.skel, &bs);
                }
            }
        }
        ctx.try_barrier()?;
    }

    // ---- Solution slab gather on rank 0 (service envelope) ----------------
    let _sp = srsf_trace::span!(srsf_trace::Cat::Solve, "solve slab gather");
    if me == 0 {
        // INVARIANT: the driver passes rank 0 its slab row map on entry
        let owned = rank0_owned.expect("rank 0 passes its slab row map");
        for src in 1..grid.p() {
            let payload = ctx.try_recv(src, TAG_SERVE_SOL)?;
            // INVARIANT: this frame was encoded by a peer rank under the matching tag
            // and the transport delivers whole messages, so decode cannot truncate
            let rows: Mat<T> = ByteReader::new(payload).get_mat();
            x.scatter_rows(&owned[src], &rows);
        }
    } else {
        let mut w = ByteWriter::new();
        w.put_mat(&x.gather_rows(&st.owned_leaf_ids));
        ctx.send_service(0, TAG_SERVE_SOL, w.finish());
    }
    Ok(())
}

/// Upward fold: retiring ranks ship their surviving rows to the corner.
fn fold_up_mat<T: Scalar>(
    ctx: &mut RankCtx,
    grid: &ProcessGrid,
    st: &ServeState<T>,
    child_level: u8,
    x: &mut Mat<T>,
) -> Result<(), RecvError> {
    let me = ctx.rank();
    let parent_level = child_level - 1;
    if grid.effective_q(parent_level) >= grid.effective_q(child_level)
        || !grid.is_active(me, child_level)
    {
        return Ok(());
    }
    let (x0, y0, _, _) = region_of(grid, me, child_level);
    let corner = grid.owner(&BoxId {
        level: parent_level,
        ix: (x0 / 2) as u32,
        iy: (y0 / 2) as u32,
    });
    if corner != me {
        let ids = st.owned_act_ids(child_level);
        let mut w = ByteWriter::new();
        put_ids(&mut w, &ids);
        w.put_mat(&x.gather_rows(&ids));
        ctx.send(corner, tag(child_level, 5, KIND_SOLVE_VAL), w.finish());
    } else {
        let stride = grid.q() / grid.effective_q(child_level);
        let (cx, cy) = grid.coords_of(me);
        for (dx, dy) in [(1u32, 0u32), (0, 1), (1, 1)] {
            let member = grid.rank_of(cx + dx * stride, cy + dy * stride);
            let payload = ctx.try_recv(member, tag(child_level, 5, KIND_SOLVE_VAL))?;
            let mut r = ByteReader::new(payload);
            let ids = get_ids(&mut r);
            // INVARIANT: this frame was encoded by a peer rank under the matching tag
            // and the transport delivers whole messages, so decode cannot truncate
            let rows: Mat<T> = r.get_mat();
            x.scatter_rows(&ids, &rows);
        }
    }
    Ok(())
}

/// Downward un-fold: corners return the surviving rows to the members
/// they absorbed.
fn fold_down_mat<T: Scalar>(
    ctx: &mut RankCtx,
    grid: &ProcessGrid,
    st: &ServeState<T>,
    child_level: u8,
    x: &mut Mat<T>,
) -> Result<(), RecvError> {
    let me = ctx.rank();
    let parent_level = child_level - 1;
    if grid.effective_q(parent_level) >= grid.effective_q(child_level)
        || !grid.is_active(me, child_level)
    {
        return Ok(());
    }
    let (x0, y0, _, _) = region_of(grid, me, child_level);
    let corner = grid.owner(&BoxId {
        level: parent_level,
        ix: (x0 / 2) as u32,
        iy: (y0 / 2) as u32,
    });
    if corner != me {
        let payload = ctx.try_recv(corner, tag(child_level, 6, KIND_SOLVE_VAL))?;
        let mut r = ByteReader::new(payload);
        let ids = get_ids(&mut r);
        debug_assert_eq!(ids, st.owned_act_ids(child_level));
        // INVARIANT: this frame was encoded by a peer rank under the matching tag
        // and the transport delivers whole messages, so decode cannot truncate
        let rows: Mat<T> = r.get_mat();
        x.scatter_rows(&ids, &rows);
    } else {
        let stride = grid.q() / grid.effective_q(child_level);
        let (cx, cy) = grid.coords_of(me);
        for (dx, dy) in [(1u32, 0u32), (0, 1), (1, 1)] {
            let member = grid.rank_of(cx + dx * stride, cy + dy * stride);
            let ids = st
                .fold_ids
                .get(&(child_level, member))
                .cloned()
                .unwrap_or_default();
            let mut w = ByteWriter::new();
            put_ids(&mut w, &ids);
            w.put_mat(&x.gather_rows(&ids));
            ctx.send(member, tag(child_level, 6, KIND_SOLVE_VAL), w.finish());
        }
    }
    Ok(())
}

/// The worker-rank serve loop: report the factorization outcome, then
/// answer solve / probe commands until a shutdown command — or until the
/// session is torn down around us (rank 0's handle dropped), which the
/// idle wait reports as `None` and we treat as an implicit shutdown.
fn serve_rank<T: Scalar>(
    ctx: &mut RankCtx,
    geo: &ResidentGeo,
    outcome: Result<ServeState<T>, FactorError>,
    factor_comm: CommStats,
) {
    let me = ctx.rank();
    debug_assert_ne!(me, 0, "rank 0 is the service side, not a serve loop");
    let mut w = ByteWriter::new();
    match &outcome {
        Ok(st) => {
            w.put_u64(1);
            w.put_u64(st.records.len() as u64);
            w.put_u64(st.bytes);
            st.stats.encode(&mut w);
            factor_comm.encode(&mut w);
        }
        Err(e) => {
            w.put_u64(0);
            e.encode(&mut w);
        }
    }
    ctx.send_service(0, TAG_SERVE_READY, w.finish());
    let Ok(st) = outcome else {
        return;
    };
    serve_loop(ctx, geo, &st);
}

/// The shared worker command loop, entered once a rank's serve state
/// exists (freshly factorized or restored from a snapshot). A
/// [`RecvError`] during a solve — a peer died or a link went down — makes
/// the worker log the typed failure and leave the loop (graceful
/// degradation): the rank exits cleanly, rank 0 observes the same
/// failure on its side of the protocol, and nothing hangs.
fn serve_loop<T: Scalar>(ctx: &mut RankCtx, geo: &ResidentGeo, st: &ServeState<T>) {
    let me = ctx.rank();
    while let Some(cmd) = ctx.recv_service_idle(0, TAG_SERVE_CMD) {
        let mut r = ByteReader::new(cmd);
        // INVARIANT: this frame was encoded by a peer rank under the matching tag
        // and the transport delivers whole messages, so decode cannot truncate
        match r.get_u64() {
            CMD_SHUTDOWN => break,
            CMD_SOLVE => {
                // INVARIANT: this frame was encoded by a peer rank under the matching tag
                // and the transport delivers whole messages, so decode cannot truncate
                let nrhs = r.get_u64() as usize;
                let slab: Mat<T> = match ctx.try_recv(0, TAG_SERVE_RHS) {
                    // INVARIANT: this frame was encoded by a peer rank under the
                    // matching tag and arrives whole, so decode cannot truncate
                    Ok(payload) => ByteReader::new(payload).get_mat(),
                    Err(e) => {
                        eprintln!("srsf-core: rank {me} abandoning resident serve: {e}");
                        return;
                    }
                };
                assert_eq!(slab.ncols(), nrhs, "rank {me}: RHS slab shape mismatch");
                let mut x = Mat::zeros(geo.n, nrhs);
                x.scatter_rows(&st.owned_leaf_ids, &slab);
                if let Err(e) = solve_resident_mat(ctx, geo, st, &mut x, None) {
                    eprintln!("srsf-core: rank {me} abandoning resident serve: {e}");
                    return;
                }
            }
            CMD_PROBE => {
                let mut w = ByteWriter::new();
                ctx.stats().encode(&mut w);
                ctx.send_service(0, TAG_SERVE_STATS, w.finish());
            }
            CMD_TRACE => {
                let mut w = ByteWriter::new();
                srsf_trace::take_report(me).encode(&mut w);
                ctx.send_service(0, TAG_SERVE_TRACE, w.finish());
            }
            // INVARIANT: deliberate — an unknown opcode means a protocol-version
            // mismatch between driver and rank; dying loudly beats misinterpreting
            op => panic!("rank {me}: unknown serve opcode {op}"),
        }
    }
}

/// Map a transport-level receive failure to the public typed error: the
/// peer we were waiting on is the failed rank; the tag names the
/// protocol step it died in.
fn recv_to_srsf(e: &RecvError) -> SrsfError {
    match e {
        RecvError::Timeout { src, tag, .. } | RecvError::Disconnected { src, tag, .. } => {
            SrsfError::RankFailed {
                rank: *src,
                step: tags::describe(*tag),
            }
        }
        RecvError::PeerPanicked { src, message, .. } => SrsfError::RankFailed {
            rank: *src,
            step: format!("peer panic: {message}"),
        },
    }
}

struct ServiceInner<T> {
    /// `None` once the session has been shut down.
    handle: Option<WorldHandle>,
    st: ServeState<T>,
    geo: Arc<ResidentGeo>,
    /// Per-rank slab row maps, cached for the scatter/gather envelope.
    owned: Vec<Vec<u32>>,
    /// Set when a solve observed a rank failure: the world is
    /// desynchronized, so every later call fails fast with the same
    /// error instead of timing out again. Shutdown/Drop still work.
    poisoned: Option<SrsfError>,
}

/// A live resident solve service: the distributed factorization left in
/// place on its rank world, served through rank 0. Owned by
/// [`crate::Solver`] when the builder's residency mode is on.
pub struct ResidentService<T> {
    inner: Mutex<ServiceInner<T>>,
    n: usize,
    p: usize,
    top_size: usize,
    stats: FactorStats,
    comm: WorldStats,
    per_rank_records: Vec<usize>,
    per_rank_bytes: Vec<usize>,
    /// The session's serve-metrics registry, shared with its
    /// [`WorldHandle`] — kept here so snapshots outlive shutdown.
    metrics: Arc<MetricsRegistry>,
}

impl<T: Scalar> ResidentService<T> {
    /// Problem size `N`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Size of the dense top block (resident on rank 0).
    pub fn top_size(&self) -> usize {
        self.top_size
    }

    /// Merged factorization statistics (global rank table; rank-0
    /// timings).
    pub fn stats(&self) -> &FactorStats {
        &self.stats
    }

    /// Per-rank communication counters of the factorization phase.
    pub fn comm(&self) -> &WorldStats {
        &self.comm
    }

    /// Elimination records resident on each rank. Rank 0's entry stays at
    /// its own share — the global record set is never assembled.
    pub fn records_per_rank(&self) -> &[usize] {
        &self.per_rank_records
    }

    /// Resident factor bytes held by each rank (records; plus the top
    /// factorization on rank 0).
    pub fn bytes_per_rank(&self) -> &[usize] {
        &self.per_rank_bytes
    }

    /// Snapshot the serve metrics: per-solve latency histogram,
    /// served/failed counters, per-rank resident-memory gauges. Works
    /// after shutdown too (the registry outlives the session).
    pub fn metrics(&self) -> srsf_runtime::MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Drain every rank's span buffers (`srsf-trace` ring buffers) into
    /// per-rank reports, rank order. Broadcasts the trace command to the
    /// workers and collects their `TAG_SERVE_TRACE` replies — uncounted
    /// service frames, so the probe never perturbs the §IV counters.
    /// Returns only rank 0's report when the service is poisoned or
    /// already shut down (the workers may be gone).
    pub fn trace_reports(&self) -> Vec<TraceReport> {
        // INVARIANT: lock poisoning requires a panicked driver call, which
        // already surfaced to the caller
        let inner = &mut *self.inner.lock().expect("resident service poisoned");
        let mut reports = vec![srsf_trace::take_report(0)];
        if inner.poisoned.is_some() {
            return reports;
        }
        let Some(handle) = inner.handle.as_mut() else {
            return reports;
        };
        for dst in 1..self.p {
            let mut w = ByteWriter::new();
            w.put_u64(CMD_TRACE);
            handle.ctx().send_service(dst, TAG_SERVE_CMD, w.finish());
        }
        for src in 1..self.p {
            let payload = handle.ctx().recv(src, TAG_SERVE_TRACE);
            reports.push(
                TraceReport::decode(&mut ByteReader::new(payload))
                    // INVARIANT: trace frames come from our own encoder over a
                    // reliable transport; a malformed one is a peer bug worth
                    // dying loudly on
                    .unwrap_or_else(|e| panic!("rank {src} trace frame: {e}")),
            );
        }
        reports
    }

    /// Solve `A X = B` on the resident world: scatter B's rows by leaf
    /// ownership, run the distributed blocked solve in place, gather the
    /// solution rows. Bit-identical to the gathered factorization's
    /// [`crate::Factorization::solve_mat`].
    ///
    /// Panics if a rank fails mid-solve; use
    /// [`ResidentService::try_solve_mat`] to observe that as a typed
    /// [`SrsfError::RankFailed`] instead.
    pub fn solve_mat(&self, b: &Mat<T>) -> Mat<T> {
        // INVARIANT: deliberate — the panicking convenience wrapper over
        // try_solve_mat, for callers with no degradation path
        self.try_solve_mat(b).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`ResidentService::solve_mat`]: a rank that dies (or a
    /// link that goes down) mid-solve surfaces as
    /// [`SrsfError::RankFailed`] within the receive timeout — no hang,
    /// no abort — and the service is poisoned: the world is
    /// desynchronized, so every later solve returns the same error
    /// immediately. Shutdown and Drop still reap the surviving workers.
    pub fn try_solve_mat(&self, b: &Mat<T>) -> Result<Mat<T>, SrsfError> {
        assert_eq!(b.nrows(), self.n, "right-hand side row count mismatch");
        // INVARIANT: lock poisoning requires a panicked driver call, which
        // already surfaced to the caller
        let inner = &mut *self.inner.lock().expect("resident service poisoned");
        if let Some(e) = &inner.poisoned {
            return Err(e.clone());
        }
        let handle = inner
            .handle
            .as_mut()
            // INVARIANT: documented — solve after shutdown() is a caller bug
            .expect("resident service already shut down");
        // Per-solve latency covers the whole round trip rank 0 sees: the
        // RHS scatter envelope, the SPMD sweep, the solution gather.
        let t_solve = std::time::Instant::now();
        let nrhs = b.ncols() as u64;
        for dst in 1..self.p {
            let mut w = ByteWriter::new();
            w.put_u64(CMD_SOLVE);
            w.put_u64(nrhs);
            handle.ctx().send_service(dst, TAG_SERVE_CMD, w.finish());
            let mut w = ByteWriter::new();
            w.put_mat(&b.gather_rows(&inner.owned[dst]));
            handle.ctx().send_service(dst, TAG_SERVE_RHS, w.finish());
        }
        let mut x = b.clone();
        if let Err(e) = solve_resident_mat(
            handle.ctx(),
            &inner.geo,
            &inner.st,
            &mut x,
            Some(&inner.owned),
        ) {
            let err = recv_to_srsf(&e);
            inner.poisoned = Some(err.clone());
            self.metrics
                .observe_solve(t_solve.elapsed().as_nanos() as u64, false);
            return Err(err);
        }
        self.metrics
            .observe_solve(t_solve.elapsed().as_nanos() as u64, true);
        Ok(x)
    }

    /// Solve `A x = b` (single right-hand side) on the resident world:
    /// the one-column case of [`ResidentService::solve_mat`]. Panics on
    /// rank failure; see [`ResidentService::try_solve`].
    pub fn solve(&self, b: &[T]) -> Vec<T> {
        // INVARIANT: deliberate — the panicking convenience wrapper over
        // try_solve, for callers with no degradation path
        self.try_solve(b).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`ResidentService::solve`]: the one-column case of
    /// [`ResidentService::try_solve_mat`].
    pub fn try_solve(&self, b: &[T]) -> Result<Vec<T>, SrsfError> {
        let m = Mat::from_vec(b.len(), 1, b.to_vec());
        Ok(self.try_solve_mat(&m)?.as_slice().to_vec())
    }

    /// Snapshot every rank's cumulative communication counters (the
    /// probe itself moves as uncounted service frames). Two snapshots
    /// bracketing `k` solves yield exact per-solve counters:
    /// `comm_counts --solve-reps` uses this to measure the §IV solve
    /// bound.
    pub fn comm_probe(&self) -> WorldStats {
        // INVARIANT: poisoning requires a panicked driver call, which already
        // surfaced to the caller
        let inner = &mut *self.inner.lock().expect("resident service poisoned");
        let handle = inner
            .handle
            .as_mut()
            // INVARIANT: documented — probing after shutdown() is a caller bug
            .expect("resident service already shut down");
        for dst in 1..self.p {
            let mut w = ByteWriter::new();
            w.put_u64(CMD_PROBE);
            handle.ctx().send_service(dst, TAG_SERVE_CMD, w.finish());
        }
        let mut per_rank = vec![CommStats::default(); self.p];
        per_rank[0] = handle.ctx().stats();
        for src in 1..self.p {
            let payload = handle.ctx().recv(src, TAG_SERVE_STATS);
            per_rank[src] = CommStats::decode(&mut ByteReader::new(payload))
                // INVARIANT: stats frames come from our own encoder over a reliable
                // transport; a malformed one is a peer bug worth dying loudly on
                .unwrap_or_else(|e| panic!("rank {src} stats frame: {e}"));
        }
        WorldStats { per_rank }
    }

    /// Broadcast the shutdown command and join the workers; returns the
    /// session's final per-rank counters. Idempotent: `None` if the
    /// service was already shut down.
    pub fn shutdown(&self) -> Option<WorldStats> {
        // INVARIANT: poisoning requires a panicked driver call, which already
        // surfaced to the caller
        let mut inner = self.inner.lock().expect("resident service poisoned");
        Self::shutdown_locked(&mut inner)
    }

    fn shutdown_locked(inner: &mut ServiceInner<T>) -> Option<WorldStats> {
        shutdown_inner(inner)
    }
}

/// Shut a service's session down, taking its handle. When the service is
/// poisoned the cooperative round would panic — a crashed worker's join
/// re-raises its panic payload out of [`WorldHandle::finish`] — and the
/// failure already surfaced to the caller as the typed error, so the
/// degraded world goes through the quiet [`WorldHandle::reap`] path
/// instead: broadcast the shutdown to whoever still listens, swallow the
/// dead rank, report best-effort counters. Shutdown and Drop of a
/// degraded world stay clean — no second panic.
fn shutdown_inner<T>(inner: &mut ServiceInner<T>) -> Option<WorldStats> {
    let mut handle = inner.handle.take()?;
    if inner.poisoned.is_some() {
        for dst in 1..handle.size() {
            if handle.worker_live(dst) {
                let mut w = ByteWriter::new();
                w.put_u64(CMD_SHUTDOWN);
                handle.ctx().send_service(dst, TAG_SERVE_CMD, w.finish());
            }
        }
        return Some(handle.reap());
    }
    Some(shutdown_session(handle))
}

/// The tag-based shutdown round: broadcast the shutdown command to every
/// still-live worker, then join them through the handle. Scalar-
/// independent — shared by the service's explicit shutdown, its Drop,
/// and the build-failure path.
fn shutdown_session(mut handle: WorldHandle) -> WorldStats {
    for dst in 1..handle.size() {
        if handle.worker_live(dst) {
            let mut w = ByteWriter::new();
            w.put_u64(CMD_SHUTDOWN);
            handle.ctx().send_service(dst, TAG_SERVE_CMD, w.finish());
        }
    }
    handle.finish()
}

impl<T> Drop for ResidentService<T> {
    fn drop(&mut self) {
        // During an unwind the workers may be desynchronized mid-protocol;
        // skip the cooperative round — the handle's own drop tears the
        // session down (flag/EOF) without blocking.
        if std::thread::panicking() {
            return;
        }
        if let Ok(inner) = self.inner.get_mut() {
            let _ = shutdown_inner(inner);
        }
    }
}

/// Build the resident service: run the distributed factorization on a
/// persistent rank world, leave every rank's records in place, and hand
/// back the live service. On any rank's factorization error the live
/// ranks are shut down first and the first error is returned; a rank
/// that dies before reporting surfaces as
/// [`SrsfError::RankFailed`] — the survivors are still shut down.
pub(crate) fn dist_factorize_resident<K: Kernel>(
    kernel: &K,
    pts: &[Point],
    tree: &QuadTree,
    grid: &ProcessGrid,
    opts: &FactorOpts,
) -> Result<ResidentService<K::Elem>, SrsfError> {
    let leaf = tree.leaf_level();
    let lmin = (opts.min_compress_level as u8).min(leaf);
    let p = grid.p();
    let geo = Arc::new(ResidentGeo {
        n: pts.len(),
        grid: *grid,
    });
    let world = World::new(p)
        .transport(opts.transport)
        .with_recv_timeout(opts.recv_timeout);

    type FactorOut<T> = (Result<ServeState<T>, FactorError>, CommStats);
    let factor = |ctx: &mut RankCtx| -> FactorOut<K::Elem> {
        // Every rank stores the flag (on the TCP backend each rank is its
        // own process); storing `false` keeps untraced runs self-cleaning.
        srsf_trace::set_enabled(opts.trace);
        let me = ctx.rank();
        let out =
            factor_phase(ctx, kernel, pts, tree, grid, opts, leaf, lmin).map(|(state, top)| {
                ServeState::from_rank_state(state, top, tree, pts, grid, leaf, lmin, me)
            });
        (out, ctx.stats())
    };
    let serve_geo = geo.clone();
    let serve = move |ctx: &mut RankCtx, s: FactorOut<K::Elem>| {
        serve_rank(ctx, &serve_geo, s.0, s.1);
    };
    let ((my_out, my_comm), mut handle) = world.run_resident(factor, serve);

    // Collect every worker's READY frame: factorization outcome plus its
    // residency numbers (record count, bytes, rank table, counters).
    let mut per_rank_records = vec![0usize; p];
    let mut per_rank_bytes = vec![0usize; p];
    let mut comm = WorldStats {
        per_rank: vec![CommStats::default(); p],
    };
    comm.per_rank[0] = my_comm;
    let mut worker_stats: Vec<FactorStats> = Vec::with_capacity(p - 1);
    let mut first_err: Option<SrsfError> = None;
    for src in 1..p {
        // A worker that dies before reporting (crash, cut link) must not
        // hang the build: the bounded receive converts it to a typed
        // failure and the survivors still get their shutdown round.
        let payload = match handle.ctx().try_recv(src, TAG_SERVE_READY) {
            Ok(payload) => payload,
            Err(e) => {
                let _ = shutdown_session(handle);
                return Err(recv_to_srsf(&e));
            }
        };
        let mut r = ByteReader::new(payload);
        // INVARIANT: this frame was encoded by a peer rank under the matching tag
        // and the transport delivers whole messages, so decode cannot truncate
        if r.get_u64() == 1 {
            // INVARIANT: this frame was encoded by a peer rank under the matching tag
            // and the transport delivers whole messages, so decode cannot truncate
            per_rank_records[src] = r.get_u64() as usize;
            // INVARIANT: this frame was encoded by a peer rank under the matching tag
            // and the transport delivers whole messages, so decode cannot truncate
            per_rank_bytes[src] = r.get_u64() as usize;
            let fstats = FactorStats::decode(&mut r)
                // INVARIANT: ready frames come from our own encoder; a malformed one
                // is a peer bug worth dying loudly on
                .unwrap_or_else(|e| panic!("rank {src} ready frame: {e}"));
            comm.per_rank[src] =
            // INVARIANT: same trusted ready-frame argument as above
                CommStats::decode(&mut r).unwrap_or_else(|e| panic!("rank {src} ready frame: {e}"));
            worker_stats.push(fstats);
        } else {
            let e = FactorError::decode(&mut r)
                // INVARIANT: same trusted ready-frame argument as above
                .unwrap_or_else(|e| panic!("rank {src} ready frame: {e}"));
            first_err.get_or_insert(e.into());
        }
    }

    let st = match (my_out, first_err) {
        (Ok(st), None) => st,
        (my, err) => {
            // Shut down the ranks that did reach their serve loops, then
            // report the failure.
            let _ = shutdown_session(handle);
            // INVARIANT: this branch is only reached when some rank reported a
            // failure, so at least one error exists
            return Err(err.unwrap_or_else(|| my.err().expect("some rank failed").into()));
        }
    };

    per_rank_records[0] = st.records.len();
    per_rank_bytes[0] = st.bytes as usize;
    // Merge the global rank table (the gathered path rebuilds the same
    // table from the shipped records); timings stay rank 0's.
    let mut stats = st.stats.clone();
    for ws in &worker_stats {
        for (&level, &(count, sum)) in &ws.ranks {
            let e = stats.ranks.entry(level).or_insert((0, 0));
            e.0 += count;
            e.1 += sum;
        }
        stats.peak_store_bytes = stats.peak_store_bytes.max(ws.peak_store_bytes);
        stats.compression.absorb(&ws.compression);
    }
    stats.top_size = st.top.as_ref().map(|(idx, _)| idx.len()).unwrap_or(0);
    stats.record_bytes = per_rank_bytes.iter().sum();

    let owned: Vec<Vec<u32>> = (0..p).map(|r| owned_leaf_ids(tree, grid, r)).collect();
    let metrics = handle.metrics();
    metrics.set_resident_bytes(&per_rank_bytes);
    Ok(ResidentService {
        n: pts.len(),
        p,
        top_size: stats.top_size,
        stats,
        comm,
        per_rank_records,
        per_rank_bytes,
        metrics,
        inner: Mutex::new(ServiceInner {
            handle: Some(handle),
            st,
            geo,
            owned,
            poisoned: None,
        }),
    })
}

/// A restored worker: report the snapshot-load outcome over
/// `TAG_SERVE_CKPT` (ok flag, record count, resident bytes, stats — or
/// the error string), then enter the shared serve loop.
fn serve_rank_restored<T: Scalar>(
    ctx: &mut RankCtx,
    geo: &ResidentGeo,
    outcome: Result<ServeState<T>, String>,
) {
    let me = ctx.rank();
    debug_assert_ne!(me, 0, "rank 0 is the service side, not a serve loop");
    let mut w = ByteWriter::new();
    match &outcome {
        Ok(st) => {
            w.put_u64(1);
            w.put_u64(st.records.len() as u64);
            w.put_u64(st.bytes);
            st.stats.encode(&mut w);
        }
        Err(msg) => {
            w.put_u64(0);
            msg.encode(&mut w);
        }
    }
    ctx.send_service(0, TAG_SERVE_CKPT, w.finish());
    let Ok(st) = outcome else {
        return;
    };
    serve_loop(ctx, geo, &st);
}

/// Rebuild a resident service from the per-rank snapshots a prior
/// factorization wrote under [`FactorOpts::checkpoint_dir`](crate::FactorOpts):
/// validate the manifest against the caller's point set (scalar type,
/// size, geometry hash), spin up a fresh rank world on `transport`, have
/// every rank load + CRC-check + decode its own `rank_{r}.ckpt`, rebuild
/// the routing from the replicated geometry, and leave the world
/// serving. No kernel evaluations, no re-factorization; restored solves
/// are bit-identical to the original service's.
pub(crate) fn restore_resident_service<T: Scalar>(
    pts: &[Point],
    dir: &Path,
    transport: Transport,
) -> Result<(ResidentService<T>, ProcessGrid), SrsfError> {
    use crate::wire::{
        decode_rank_snapshot, geometry_hash, rank_ckpt_name, read_container, read_manifest,
        scalar_tag,
    };
    let manifest = read_manifest(dir)?;
    let reject = |reason: String| -> SrsfError {
        SrsfError::Checkpoint {
            path: dir.display().to_string(),
            reason,
        }
    };
    if manifest.scalar != scalar_tag::<T>() {
        return Err(reject(format!(
            "scalar type mismatch (snapshot tag {}, caller tag {})",
            manifest.scalar,
            scalar_tag::<T>()
        )));
    }
    if manifest.n != pts.len() {
        return Err(reject(format!(
            "point count mismatch (snapshot {}, caller {})",
            manifest.n,
            pts.len()
        )));
    }
    if manifest.geom_hash != geometry_hash(pts) {
        return Err(reject(
            "geometry hash mismatch: restore needs the exact point set that was factorized"
                .to_string(),
        ));
    }
    let grid = ProcessGrid::try_new(manifest.p)
        .ok_or_else(|| reject(format!("rank count {} is not a power of four", manifest.p)))?;
    let p = grid.p();
    let tree = QuadTree::build(pts, domain_for(pts), manifest.leaf_size);
    let leaf = tree.leaf_level();
    let lmin = (manifest.min_compress_level as u8).min(leaf);
    let geo = Arc::new(ResidentGeo { n: pts.len(), grid });
    let world = World::new(p).transport(transport);

    let factor = |ctx: &mut RankCtx| -> Result<ServeState<T>, String> {
        let me = ctx.rank();
        let path = dir.join(rank_ckpt_name(me));
        let payload = read_container(&path, scalar_tag::<T>()).map_err(|e| e.to_string())?;
        let (state, top) =
            decode_rank_snapshot::<T>(payload).map_err(|e| format!("{}: {e}", path.display()))?;
        Ok(ServeState::from_rank_state(
            state, top, &tree, pts, &grid, leaf, lmin, me,
        ))
    };
    let serve_geo = geo.clone();
    let serve = move |ctx: &mut RankCtx, s: Result<ServeState<T>, String>| {
        serve_rank_restored(ctx, &serve_geo, s);
    };
    let (my_out, mut handle) = world.run_resident(factor, serve);

    // Collect every worker's snapshot-load report, exactly as the build
    // path collects READY frames — bounded receives, typed failures.
    let mut per_rank_records = vec![0usize; p];
    let mut per_rank_bytes = vec![0usize; p];
    let mut worker_stats: Vec<FactorStats> = Vec::with_capacity(p - 1);
    let mut first_err: Option<SrsfError> = None;
    for src in 1..p {
        let payload = match handle.ctx().try_recv(src, TAG_SERVE_CKPT) {
            Ok(payload) => payload,
            Err(e) => {
                let _ = shutdown_session(handle);
                return Err(recv_to_srsf(&e));
            }
        };
        let mut r = ByteReader::new(payload);
        // INVARIANT: this frame was encoded by a peer rank under the matching tag
        // and the transport delivers whole messages, so decode cannot truncate
        if r.get_u64() == 1 {
            // INVARIANT: same trusted restore-frame argument as above
            per_rank_records[src] = r.get_u64() as usize;
            // INVARIANT: same trusted restore-frame argument as above
            per_rank_bytes[src] = r.get_u64() as usize;
            let fstats = FactorStats::decode(&mut r)
                // INVARIANT: same trusted restore-frame argument as above
                .unwrap_or_else(|e| panic!("rank {src} restore frame: {e}"));
            worker_stats.push(fstats);
        } else {
            let msg = String::decode(&mut r)
                // INVARIANT: same trusted restore-frame argument as above
                .unwrap_or_else(|e| panic!("rank {src} restore frame: {e}"));
            first_err.get_or_insert(reject(format!("rank {src}: {msg}")));
        }
    }

    let st = match (my_out, first_err) {
        (Ok(st), None) => st,
        (my, err) => {
            let _ = shutdown_session(handle);
            // INVARIANT: this branch is only reached when some rank reported a
            // failure, so at least one error exists
            return Err(
                err.unwrap_or_else(|| reject(my.err().expect("some rank failed to restore")))
            );
        }
    };

    per_rank_records[0] = st.records.len();
    per_rank_bytes[0] = st.bytes as usize;
    // Merge the global rank table, exactly as the build path does.
    let mut stats = st.stats.clone();
    for ws in &worker_stats {
        for (&level, &(count, sum)) in &ws.ranks {
            let e = stats.ranks.entry(level).or_insert((0, 0));
            e.0 += count;
            e.1 += sum;
        }
        stats.peak_store_bytes = stats.peak_store_bytes.max(ws.peak_store_bytes);
        stats.compression.absorb(&ws.compression);
    }
    stats.top_size = st.top.as_ref().map(|(idx, _)| idx.len()).unwrap_or(0);
    stats.record_bytes = per_rank_bytes.iter().sum();

    let owned: Vec<Vec<u32>> = (0..p).map(|r| owned_leaf_ids(&tree, &grid, r)).collect();
    let metrics = handle.metrics();
    metrics.set_resident_bytes(&per_rank_bytes);
    let svc = ResidentService {
        n: pts.len(),
        p,
        top_size: stats.top_size,
        stats,
        // The restored session's counters start at zero: factorization
        // traffic happened in the original session, not this one.
        comm: WorldStats {
            per_rank: vec![CommStats::default(); p],
        },
        per_rank_records,
        per_rank_bytes,
        metrics,
        inner: Mutex::new(ServiceInner {
            handle: Some(handle),
            st,
            geo,
            owned,
            poisoned: None,
        }),
    };
    Ok((svc, grid))
}
