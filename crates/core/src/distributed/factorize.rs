//! The distributed factorization (Algorithm 2) and the gathered serving
//! mode.
//!
//! Leaf boxes are block-partitioned over a `q x q` process grid (Figure 4).
//! Every level runs as:
//!
//! 1. **Interior phase** — each rank factors its interior boxes (whose
//!    1-rings stay on-rank), shipping skeleton lists, replaced blocks and
//!    Schur deltas for the boundary-adjacent region its neighbors track.
//! 2. **Four color rounds** (Figure 5) — ranks of one color factor their
//!    boundary boxes; same-color ranks are never within box distance 2 of
//!    each other (every rank holds at least 2x2 boxes), so rounds are
//!    conflict-free and updates go to the 8 adjacent ranks only.
//! 3. **Level transition** — ranks materialize the parent-level blocks
//!    they own and refresh the parent active-set halo; when the coarser
//!    level would leave a rank with fewer than 2x2 boxes, 2x2 rank groups
//!    *fold* onto their corner rank, which inherits the group's blocks and
//!    active sets (Section III-C).
//!
//! Each phase of 1–2 is *hybrid-parallel and overlapped* rather than
//! bulk-synchronous:
//!
//! * A rank's phase boxes eliminate in four box-color sub-rounds on the
//!   work-stealing pool shared with the colored driver
//!   ([`FactorOpts::rank_threads`] workers), merged in fixed box order —
//!   so records, update frames and counters are bit-identical for every
//!   thread count.
//! * A neighbor's `KIND_PHASE_UPDATE` frame is posted *eagerly*, the
//!   moment the last box that neighbor tracks retires from the merge
//!   (per-neighbor completion counters over the phase's box set) — not at
//!   phase end — and the fabric is pumped between sub-rounds so incoming
//!   frames land in the matching queue while local boxes still eliminate.
//! * There is **no barrier** anywhere in the level sweep: the tag scheme
//!   (`tag = level*64 + phase*8 + kind`) makes every frame of the sweep
//!   unique per `(src, tag)`, and the matching queue buffers frames that
//!   arrive ahead of their receive, so tag matching alone orders the
//!   computation. (The in-world solve keeps its barriers; they separate
//!   reused solve tags across passes.)
//!
//! All data moves through explicit byte messages with per-rank counters,
//! so the §IV communication bounds (messages = O(log N + log p), words =
//! O(sqrt(N/p) + log p)) are measured rather than assumed. The rank world
//! runs on either runtime backend — ranks as threads
//! ([`Transport::InProc`](srsf_runtime::Transport)) or as real OS
//! processes over TCP sockets
//! ([`Transport::Tcp`](srsf_runtime::Transport)), selected via
//! [`FactorOpts::transport`] — and this module is backend-agnostic: the
//! same code, solutions, and counters on both (see
//! `tests/transport_equiv.rs`).
//!
//! The phase machinery up to (and including) the top factorization is
//! shared with the resident serving mode as [`factor_phase`]; everything
//! below it — the record gather onto rank 0, the one-shot in-world vector
//! solve — is the *gathered* mode only. The resident mode's counterpart
//! lives in [`super::serve`].

use super::{box_near_region, get_box, get_ids, order_key, owner_of_point, region_of, RankState};
use crate::colored::eliminate_color_round;
use crate::elimination::{apply_output, BoxElimination, EliminationOutput, FactorError};
use crate::levels::assemble_parent_block;
use crate::sequential::{domain_for, factor_top, Factorization};
use crate::skeletonize::CompressionCtx;
use crate::solve::{apply_downward, apply_upward, gather, scatter};
use crate::stats::FactorStats;
use crate::store::{ActiveSets, BlockStore};
use crate::wire::{put_box, put_ids, ScalarVec};
use crate::FactorOpts;
use srsf_geometry::neighbors::near_field;
use srsf_geometry::point::Point;
use srsf_geometry::procgrid::{BoxColoring, ProcessGrid};
use srsf_geometry::tree::{BoxId, QuadTree};
use srsf_kernels::kernel::Kernel;
use srsf_linalg::{Lu, Mat, Scalar};
use srsf_runtime::codec::{ByteReader, ByteWriter, Wire};
// The tag scheme (`tag = level * 64 + phase * 8 + kind`) lives in the
// runtime next to the transports, so a receive timeout on either backend
// can decode the step it was waiting on; see `srsf_runtime::tags`.
use srsf_runtime::tags::{
    tag, KIND_ACT_REFRESH, KIND_FOLD, KIND_PHASE_UPDATE, KIND_RECORDS, KIND_SOLVE_REQ,
    KIND_SOLVE_UP, KIND_SOLVE_VAL, KIND_TOP,
};
use srsf_runtime::world::{RankCtx, World};
use srsf_runtime::WorldStats;
use std::collections::{HashMap, HashSet};

/// Serialize one box's elimination side effects for a tracking rank:
/// skeleton metadata always, block payloads filtered by the owner rule.
fn encode_update<T: Scalar>(
    w: &mut ByteWriter,
    b: &BoxId,
    out: &EliminationOutput<T>,
    skel_ids: &[u32],
    dst_rank: usize,
    grid: &ProcessGrid,
) {
    put_box(w, b);
    put_ids(
        w,
        &out.skel_positions
            .iter()
            .map(|&p| p as u32)
            .collect::<Vec<_>>(),
    );
    put_ids(w, skel_ids);
    let tracked: Vec<&(BoxId, BoxId, Mat<T>)> = out
        .replaced
        .iter()
        .filter(|(x, y, _)| grid.owner(x) == dst_rank || grid.owner(y) == dst_rank)
        .collect();
    w.put_u64(tracked.len() as u64);
    for (x, y, m) in tracked {
        put_box(w, x);
        put_box(w, y);
        w.put_mat(m);
    }
    let deltas: Vec<&(BoxId, BoxId, Mat<T>)> = out
        .deltas
        .iter()
        .filter(|(x, y, _)| grid.owner(x) == dst_rank || grid.owner(y) == dst_rank)
        .collect();
    w.put_u64(deltas.len() as u64);
    for (x, y, m) in deltas {
        put_box(w, x);
        put_box(w, y);
        w.put_mat(m);
    }
}

/// Apply one received box update, mirroring `apply_output`'s order.
fn decode_and_apply_update<K: Kernel>(
    r: &mut ByteReader,
    store: &mut BlockStore<'_, K>,
    act: &mut ActiveSets,
) {
    let b = get_box(r);
    let skel_positions: Vec<usize> = get_ids(r).into_iter().map(|v| v as usize).collect();
    let skel_ids = get_ids(r);
    let was_eliminated = skel_ids.len() != act.get(&b).len();
    if was_eliminated {
        store.shrink_box(&b, &skel_positions);
    }
    // INVARIANT: this frame was encoded by a peer rank under the matching tag
    // and the transport delivers whole messages, so decode cannot truncate
    let n_replaced = r.get_u64() as usize;
    let mut replaced = Vec::with_capacity(n_replaced);
    for _ in 0..n_replaced {
        let x = get_box(r);
        let y = get_box(r);
        // INVARIANT: this frame was encoded by a peer rank under the matching tag
        // and the transport delivers whole messages, so decode cannot truncate
        replaced.push((x, y, r.get_mat::<K::Elem>()));
    }
    for (x, y, m) in replaced {
        store.insert(x, y, m);
    }
    act.set(b, skel_ids);
    // INVARIANT: this frame was encoded by a peer rank under the matching tag
    // and the transport delivers whole messages, so decode cannot truncate
    let n_deltas = r.get_u64() as usize;
    for _ in 0..n_deltas {
        let x = get_box(r);
        let y = get_box(r);
        // INVARIANT: this frame was encoded by a peer rank under the matching tag
        // and the transport delivers whole messages, so decode cannot truncate
        let m: Mat<K::Elem> = r.get_mat();
        store.add_delta(x, y, &m, act);
    }
}

fn encode_record<T: Scalar>(w: &mut ByteWriter, key: u64, rec: &BoxElimination<T>) {
    w.put_u64(key);
    rec.encode(w);
}

fn decode_record<T: Scalar>(r: &mut ByteReader) -> (u64, BoxElimination<T>) {
    // INVARIANT: this frame was encoded by a peer rank under the matching tag
    // and the transport delivers whole messages, so decode cannot truncate
    let key = r.get_u64();
    // INVARIANT: record frames are produced by our own encoder (trusted peer
    // rank); a malformed one is a peer bug worth dying loudly on
    let rec = BoxElimination::decode(r).unwrap_or_else(|e| panic!("malformed record frame: {e}"));
    (key, rec)
}

/// A factorization gathered on rank 0, the per-rank communication
/// counters, and (when a right-hand side was supplied) the solution.
pub type DistOutcome<T> = Result<(Factorization<T>, WorldStats, Option<Vec<T>>), FactorError>;

/// What the gathered-mode build yields: the factorization assembled on
/// rank 0, the algorithmic per-rank counters, the optional in-world
/// solution, and each rank's *resident* record footprint in bytes — what
/// the rank held before shipping its records to the gather (the number
/// [`crate::Solver::memory_bytes_per_rank`] reports).
pub(crate) struct DistBuild<T> {
    pub(crate) fact: Factorization<T>,
    pub(crate) stats: WorldStats,
    pub(crate) x: Option<Vec<T>>,
    pub(crate) per_rank_bytes: Vec<usize>,
    /// Per-rank span reports when [`FactorOpts::trace`] was on (one per
    /// rank, rank order); empty otherwise.
    pub(crate) traces: Vec<srsf_trace::TraceReport>,
}

/// Distributed factorization; returns the factorization assembled on rank
/// 0 and the per-rank communication statistics.
#[deprecated(
    since = "0.1.0",
    note = "use `Solver::builder(kernel, pts).driver(Driver::Distributed { grid }).build()` instead"
)]
pub fn dist_factorize<K: Kernel>(
    kernel: &K,
    pts: &[Point],
    grid: &ProcessGrid,
    opts: &FactorOpts,
) -> Result<(Factorization<K::Elem>, WorldStats), FactorError> {
    let tree = QuadTree::build(pts, domain_for(pts), opts.leaf_size);
    let b = dist_factorize_with_tree(kernel, pts, &tree, grid, opts, None)?;
    Ok((b.fact, b.stats))
}

/// Distributed factorization plus (optionally) one distributed solve.
#[deprecated(
    since = "0.1.0",
    note = "use `Solver::builder(kernel, pts).driver(Driver::Distributed { grid }) \
            .build_with_solution(rhs)` instead"
)]
pub fn dist_factorize_and_solve<K: Kernel>(
    kernel: &K,
    pts: &[Point],
    grid: &ProcessGrid,
    opts: &FactorOpts,
    rhs: Option<&[K::Elem]>,
) -> DistOutcome<K::Elem> {
    let tree = QuadTree::build(pts, domain_for(pts), opts.leaf_size);
    let b = dist_factorize_with_tree(kernel, pts, &tree, grid, opts, rhs)?;
    Ok((b.fact, b.stats, b.x))
}

/// Distributed factorization against a caller-provided tree (the
/// gathered-mode driver entry point used by `Solver`).
pub(crate) fn dist_factorize_with_tree<K: Kernel>(
    kernel: &K,
    pts: &[Point],
    tree: &QuadTree,
    grid: &ProcessGrid,
    opts: &FactorOpts,
    rhs: Option<&[K::Elem]>,
) -> Result<DistBuild<K::Elem>, FactorError> {
    let leaf = tree.leaf_level();
    let lmin = (opts.min_compress_level as u8).min(leaf);
    let world = World::new(grid.p())
        .transport(opts.transport)
        .with_recv_timeout(opts.recv_timeout);

    let (results, _total_stats) =
        world.run(|ctx| run_rank(ctx, kernel, pts, tree, grid, opts, leaf, lmin, rhs));

    // Report the *algorithmic* per-rank counters (pre record-gather); the
    // gather that assembles the Factorization on rank 0 is an API artifact
    // outside Algorithm 2's communication analysis.
    let mut fact = None;
    let mut stats = WorldStats::default();
    let mut per_rank_bytes = Vec::with_capacity(grid.p());
    let mut traces = Vec::new();
    for r in results {
        match r {
            Ok((rank_stats, bytes, trace, payload)) => {
                stats.per_rank.push(rank_stats);
                per_rank_bytes.push(bytes as usize);
                if let Some(t) = trace {
                    traces.push(t);
                }
                if let Some(p) = payload {
                    fact = Some(p);
                }
            }
            Err(e) => return Err(e),
        }
    }
    // INVARIANT: the rank-0 closure always assembles the factorization when
    // no rank returned an error above
    let (f, x) = fact.expect("rank 0 must produce the factorization");
    Ok(DistBuild {
        fact: f,
        stats,
        x: x.map(|v| v.0),
        per_rank_bytes,
        traces,
    })
}

/// What every rank returns from the world: its algorithmic counters, its
/// resident record bytes (what the rank held before the gather), its span
/// report (when [`FactorOpts::trace`] is on), and, on rank 0 only, the
/// gathered factorization (plus the solution when a right-hand side was
/// supplied). On the TCP backend this type crosses the process boundary
/// as a result frame, hence the [`Wire`] bound met via `crate::wire`
/// ([`ScalarVec`] wraps the solution vector).
type RankOutput<T> = Result<
    (
        srsf_runtime::stats::CommStats,
        u64,
        Option<srsf_trace::TraceReport>,
        Option<(Factorization<T>, Option<ScalarVec<T>>)>,
    ),
    FactorError,
>;

/// A rank's factorization-phase output: its records and routing state,
/// plus (rank 0 only) the dense top factorization.
pub(crate) type FactorPhaseOutcome<T> = Result<(RankState<T>, TopFactor<T>), FactorError>;

/// The factorization half of a rank's work: the level sweep (interior
/// phase, four color rounds, level transitions with folds) and the top
/// gather/factorization, leaving this rank's elimination records and
/// solve-routing metadata in the returned [`RankState`]. Everything both
/// serving modes share ends here; the caller decides whether the records
/// are then gathered (this module) or stay resident ([`super::serve`]).
#[allow(clippy::too_many_arguments)]
pub(crate) fn factor_phase<K: Kernel>(
    ctx: &mut RankCtx,
    kernel: &K,
    pts: &[Point],
    tree: &QuadTree,
    grid: &ProcessGrid,
    opts: &FactorOpts,
    leaf: u8,
    lmin: u8,
) -> FactorPhaseOutcome<K::Elem> {
    let me = ctx.rank();
    let t_total = std::time::Instant::now();
    let mut store = BlockStore::new(kernel, pts);
    let mut act = ActiveSets::new();
    // Leaf active sets derive from the replicated tree geometry: no
    // communication needed to initialize the halo.
    for id in tree.boxes_at_level(leaf) {
        act.set(id, tree.leaf_points(&id).to_vec());
    }
    let mut state = RankState::<K::Elem> {
        records: Vec::new(),
        record_phase: Vec::new(),
        act_end: HashMap::new(),
        fold_ids: HashMap::new(),
        stats: FactorStats::new(pts.len(), leaf),
    };
    // Deterministic construction: every rank derives the identical
    // compression context (seeded sketches are a pure function of box
    // coordinates), so no communication is needed to agree on skeletons.
    let cctx = CompressionCtx::new(kernel, pts, tree, opts);

    if leaf >= lmin && leaf >= 1 {
        let mut level = leaf;
        loop {
            if grid.is_active(me, level) {
                let (interior, boundary) = grid.classify_level(me, level);
                {
                    let _sp = srsf_trace::span!(srsf_trace::Cat::Phase, "level {level} interior");
                    run_phase(
                        ctx, grid, tree, &mut store, &mut act, &interior, level, 0, opts, &cctx,
                        &mut state,
                    )?;
                }
                let my_color = grid.color(me, level);
                for color in 0..4u8 {
                    let mine = if color == my_color {
                        boundary.clone()
                    } else {
                        Vec::new()
                    };
                    let _sp = srsf_trace::span!(
                        srsf_trace::Cat::Phase,
                        "level {level} color round {color}"
                    );
                    run_phase(
                        ctx,
                        grid,
                        tree,
                        &mut store,
                        &mut act,
                        &mine,
                        level,
                        1 + color,
                        opts,
                        &cctx,
                        &mut state,
                    )?;
                }
                let snapshot: Vec<(BoxId, Vec<u32>)> = tree
                    .boxes_at_level(level)
                    .filter(|b| grid.owner(b) == me)
                    .map(|b| (b, act.get(&b).to_vec()))
                    .collect();
                state.act_end.insert(level, snapshot);
            }
            // No barrier between phases or levels: every frame of the
            // sweep is unique per (src, tag) and the matching queue
            // buffers early arrivals, so tag matching alone orders the
            // computation (ranks that finished a level early simply park
            // in their next tag-matched receive).
            if level == lmin {
                break;
            }
            {
                let _sp = srsf_trace::span!(srsf_trace::Cat::Phase, "level {level} transition");
                level_transition(ctx, grid, tree, &mut store, &mut act, level, &mut state);
            }
            level -= 1;
        }
    } else {
        let snapshot: Vec<(BoxId, Vec<u32>)> = tree
            .boxes_at_level(leaf)
            .filter(|b| grid.owner(b) == me)
            .map(|b| (b, act.get(&b).to_vec()))
            .collect();
        state.act_end.insert(leaf, snapshot);
    }

    // Top gather and dense factorization on rank 0.
    let top_level = if leaf >= lmin { lmin } else { leaf };
    let top = {
        let _sp = srsf_trace::span!(srsf_trace::Cat::Phase, "top gather+factor");
        gather_top(ctx, grid, tree, &mut store, &mut act, top_level, &cctx)?
    };
    state.stats.total_s = t_total.elapsed().as_secs_f64();
    if let Some(dir) = &opts.checkpoint_dir {
        write_rank_checkpoint(dir, me, &state, &top, pts, grid, opts);
    }
    Ok((state, top))
}

/// Snapshot this rank's factor-phase output into `dir/rank_{me}.ckpt`
/// (rank 0 additionally writes the run manifest) — the persistence hook
/// behind [`FactorOpts::checkpoint_dir`] and
/// [`crate::Solver::restore_resident`]. Runs the moment the factor sweep
/// completes, on both serving modes and both transports (on TCP every
/// rank is its own process and writes its own file).
fn write_rank_checkpoint<T: Scalar>(
    dir: &std::path::Path,
    me: usize,
    state: &RankState<T>,
    top: &TopFactor<T>,
    pts: &[Point],
    grid: &ProcessGrid,
    opts: &FactorOpts,
) {
    use crate::wire::{
        encode_rank_snapshot, geometry_hash, rank_ckpt_name, scalar_tag, write_container,
        write_manifest, CkptManifest,
    };
    // A checkpoint write failure is an environmental I/O fault (disk full,
    // bad path) a worker rank cannot return through the factor result.
    // INVARIANT: deliberate — dying loudly with the path beats serving
    // without the snapshot the caller asked for.
    let fail = |e: crate::SrsfError| -> ! { panic!("rank {me}: {e}") };
    if let Err(e) = std::fs::create_dir_all(dir) {
        fail(crate::SrsfError::Checkpoint {
            path: dir.display().to_string(),
            reason: e.to_string(),
        });
    }
    let payload = encode_rank_snapshot(state, top);
    if let Err(e) = write_container(&dir.join(rank_ckpt_name(me)), scalar_tag::<T>(), &payload) {
        fail(e);
    }
    if me == 0 {
        let manifest = CkptManifest {
            p: grid.p(),
            n: pts.len(),
            leaf_size: opts.leaf_size,
            min_compress_level: opts.min_compress_level,
            scalar: scalar_tag::<T>(),
            geom_hash: geometry_hash(pts),
        };
        if let Err(e) = write_manifest(dir, &manifest) {
            fail(e);
        }
    }
}

/// This rank's resident record footprint: what it holds when records stay
/// in place (records plus, on rank 0, the dense top factorization).
pub(crate) fn resident_bytes<T: Scalar>(state: &RankState<T>, top: &TopFactor<T>) -> u64 {
    let records: usize = state
        .records
        .iter()
        .map(|(_, r)| r.heap_bytes())
        .sum::<usize>();
    let top: usize = top
        .as_ref()
        .map(|(idx, lu)| lu.heap_bytes() + idx.capacity() * 4)
        .unwrap_or(0);
    (records + top) as u64
}

#[allow(clippy::too_many_arguments)]
fn run_rank<K: Kernel>(
    ctx: &mut RankCtx,
    kernel: &K,
    pts: &[Point],
    tree: &QuadTree,
    grid: &ProcessGrid,
    opts: &FactorOpts,
    leaf: u8,
    lmin: u8,
    rhs: Option<&[K::Elem]>,
) -> RankOutput<K::Elem> {
    // Every rank stores the flag (on the TCP backend each rank is its own
    // process); storing `false` keeps untraced runs self-cleaning.
    srsf_trace::set_enabled(opts.trace);
    let (mut state, top) = factor_phase(ctx, kernel, pts, tree, grid, opts, leaf, lmin)?;
    let top_level = if leaf >= lmin { lmin } else { leaf };
    let bytes = resident_bytes(&state, &top);
    // Snapshot the *algorithmic* communication counters here: everything
    // after this point (solve traffic is reported separately; shipping the
    // records to rank 0 is an API convenience, not part of Algorithm 2)
    // must not pollute the §IV bound measurements.
    let algo_stats = ctx.stats();

    // Optional distributed solve.
    let t_solve = std::time::Instant::now();
    let x = rhs.map(|b| {
        dist_solve(
            ctx,
            grid,
            tree,
            pts,
            &state,
            top.as_ref(),
            top_level,
            leaf,
            lmin,
            b,
        )
    });
    if rhs.is_some() {
        state.stats.solve_s = t_solve.elapsed().as_secs_f64();
    }
    let x = match x {
        Some(Some(v)) => Some(v),
        _ => None,
    };

    // Gather records on rank 0 and assemble the factorization object.
    let f = gather_factorization(ctx, grid, top, state, pts.len())?;
    // Drain this rank's span buffers last so the report covers the whole
    // build (the record gather included).
    let trace = opts.trace.then(|| srsf_trace::take_report(ctx.rank()));
    Ok((algo_stats, bytes, trace, f.map(|f| (f, x.map(ScalarVec)))))
}

/// Eliminate `boxes` (phase `phase` of `level`) in four box-color
/// sub-rounds on the per-rank thread pool, posting each neighbor's update
/// frame the moment its last tracked box retires, then apply the
/// neighbors' updates. Every active rank calls this each phase (possibly
/// with no boxes) so the message pattern stays globally consistent.
///
/// Determinism: same-color boxes sit at box distance >= 2 and never read
/// each other's writes (the colored driver's §V-C argument), so each
/// sub-round snapshot-computes on [`eliminate_color_round`]'s
/// work-stealing pool and merges in fixed box order — records, frames and
/// counters are bit-identical for every `rank_threads` value and both
/// transports. Overlap: a neighbor's frame goes out as soon as the last
/// box it tracks is merged (its per-box encodings depend only on that
/// box's own output and active set, which later merges never touch), and
/// the fabric is pumped between sub-rounds so early frames are already in
/// the matching queue when the blocking receives run.
#[allow(clippy::too_many_arguments)]
fn run_phase<K: Kernel>(
    ctx: &mut RankCtx,
    grid: &ProcessGrid,
    tree: &QuadTree,
    store: &mut BlockStore<'_, K>,
    act: &mut ActiveSets,
    boxes: &[BoxId],
    level: u8,
    phase: u8,
    opts: &FactorOpts,
    cctx: &CompressionCtx,
    state: &mut RankState<K::Elem>,
) -> Result<(), FactorError> {
    let me = ctx.rank();
    let neighbors = grid.neighbor_ranks(me, level);
    let regions: Vec<(usize, (i64, i64, i64, i64))> = neighbors
        .iter()
        .map(|&r| (r, region_of(grid, r, level)))
        .collect();

    // Per-neighbor eager-send state: how many of this phase's boxes the
    // neighbor tracks (within distance 2 of its region) and the frame
    // under construction. Neighbors tracking nothing get their empty
    // frame immediately, before any elimination starts.
    let mut remaining: HashMap<usize, usize> = HashMap::new();
    let mut frames: HashMap<usize, ByteWriter> = HashMap::new();
    for (r, region) in &regions {
        let n = boxes
            .iter()
            .filter(|b| box_near_region(b, *region, 2))
            .count();
        let mut w = ByteWriter::new();
        w.put_u64(n as u64);
        if n == 0 {
            ctx.send(*r, tag(level, phase, KIND_PHASE_UPDATE), w.finish());
        } else {
            remaining.insert(*r, n);
            frames.insert(*r, w);
        }
    }

    let scheme = BoxColoring::Four;
    for color in 0..scheme.count() {
        let cboxes: Vec<BoxId> = boxes
            .iter()
            .filter(|b| scheme.color(b) == color)
            .copied()
            .collect();
        let outputs = {
            let _sp = srsf_trace::span!(
                srsf_trace::Cat::Compute,
                "eliminate level {level} phase {phase} sub-round {color}"
            );
            ctx.compute(|| {
                eliminate_color_round(store, act, tree, &cboxes, opts, cctx, opts.rank_threads)
            })?
        };
        // Deterministic merge in box order; eager sends fire from here.
        let merge_sp = srsf_trace::span!(
            srsf_trace::Cat::Compute,
            "merge level {level} phase {phase} sub-round {color}"
        );
        for (b, out) in cboxes.iter().zip(outputs) {
            ctx.compute(|| apply_output(store, act, b, &out, cctx));
            state.stats.compression.absorb(&out.compression);
            if let Some(rec) = &out.record {
                state.stats.add_rank(level, rec.skel.len());
                state.records.push((
                    order_key(state.stats.leaf_level, level, phase, color, b),
                    rec.clone(),
                ));
                state.record_phase.push((level, phase));
            }
            // Post-apply skeleton ids: later merges never touch `act(b)`
            // (deltas land on the block store only), so encoding now is
            // byte-identical to encoding at phase end.
            let skel_ids: Vec<u32> = match &out.record {
                Some(rec) => rec.skel.clone(),
                None => act.get(b).to_vec(),
            };
            for (r, region) in &regions {
                if !box_near_region(b, *region, 2) {
                    continue;
                }
                // INVARIANT: `frames`/`remaining` were seeded with every
                // neighbor tracking at least one box, and an entry is only
                // removed when its counter hits zero
                let w = frames.get_mut(r).expect("pending frame");
                encode_update(w, b, &out, &skel_ids, *r, grid);
                // INVARIANT: `remaining` is kept in lockstep with `frames`
                let left = remaining.get_mut(r).expect("pending count");
                *left -= 1;
                if *left == 0 {
                    remaining.remove(r);
                    // INVARIANT: same seeding argument as `frames` above
                    let w = frames.remove(r).expect("pending frame");
                    ctx.send(*r, tag(level, phase, KIND_PHASE_UPDATE), w.finish());
                }
            }
        }
        drop(merge_sp);
        // Pump the fabric between sub-rounds: frames that already arrived
        // move into the matching queue while the next round eliminates.
        ctx.progress();
    }

    // Apply the neighbors' updates (tag-matched; frames that arrived
    // early were buffered by the matching queue or the drains above).
    for &src in &neighbors {
        let payload = ctx.recv(src, tag(level, phase, KIND_PHASE_UPDATE));
        let mut r = ByteReader::new(payload);
        // INVARIANT: this frame was encoded by a peer rank under the matching tag
        // and the transport delivers whole messages, so decode cannot truncate
        let n_updates = r.get_u64();
        for _ in 0..n_updates {
            decode_and_apply_update(&mut r, store, act);
        }
    }
    Ok(())
}

/// Level transition: fold shipments, parent-block materialization, child
/// cleanup, and the parent active-set halo refresh.
fn level_transition<K: Kernel>(
    ctx: &mut RankCtx,
    grid: &ProcessGrid,
    tree: &QuadTree,
    store: &mut BlockStore<'_, K>,
    act: &mut ActiveSets,
    child_level: u8,
    state: &mut RankState<K::Elem>,
) {
    let me = ctx.rank();
    let parent_level = child_level - 1;
    let child_active = grid.is_active(me, child_level);
    let parent_active_rank = grid.is_active(me, parent_level);
    let fold = grid.effective_q(parent_level) < grid.effective_q(child_level);

    if fold && child_active {
        // The corner rank of my 2x2 group at the parent level.
        let (x0, y0, _, _) = region_of(grid, me, child_level);
        let my_first_parent = BoxId {
            level: parent_level,
            ix: (x0 / 2) as u32,
            iy: (y0 / 2) as u32,
        };
        let corner = grid.owner(&my_first_parent);
        if corner != me {
            // Ship all stored child-level blocks plus all known child
            // active sets to the corner, then retire.
            let mut w = ByteWriter::new();
            let pairs: Vec<_> = store
                .stored_pairs()
                .filter(|((a, _), _)| a.level == child_level)
                .map(|((a, b), m)| (*a, *b, m.clone()))
                .collect();
            w.put_u64(pairs.len() as u64);
            for (a, b, m) in &pairs {
                put_box(&mut w, a);
                put_box(&mut w, b);
                w.put_mat(m);
            }
            let acts: Vec<(BoxId, Vec<u32>)> = tree
                .boxes_at_level(child_level)
                .filter(|b| !act.get(b).is_empty() || grid.owner(b) == me)
                .map(|b| (b, act.get(&b).to_vec()))
                .collect();
            w.put_u64(acts.len() as u64);
            for (b, ids) in &acts {
                put_box(&mut w, b);
                put_ids(&mut w, ids);
            }
            // Also ship the ids this rank still owns (for the solve's fold
            // value exchange).
            let owned_ids: Vec<u32> = state
                .act_end
                .get(&child_level)
                .map(|v| v.iter().flat_map(|(_, ids)| ids.iter().copied()).collect())
                .unwrap_or_default();
            put_ids(&mut w, &owned_ids);
            ctx.send(corner, tag(child_level, 5, KIND_FOLD), w.finish());
        } else {
            // Receive from the three retiring members of my group.
            let stride = grid.q() / grid.effective_q(child_level);
            let (cx, cy) = grid.coords_of(me);
            for (dx, dy) in [(1u32, 0u32), (0, 1), (1, 1)] {
                let member = grid.rank_of(cx + dx * stride, cy + dy * stride);
                let payload = ctx.recv(member, tag(child_level, 5, KIND_FOLD));
                let mut r = ByteReader::new(payload);
                // INVARIANT: this frame was encoded by a peer rank under the matching tag
                // and the transport delivers whole messages, so decode cannot truncate
                let n_pairs = r.get_u64();
                for _ in 0..n_pairs {
                    let a = get_box(&mut r);
                    let b = get_box(&mut r);
                    // INVARIANT: this frame was encoded by a peer rank under the matching tag
                    // and the transport delivers whole messages, so decode cannot truncate
                    let m: Mat<K::Elem> = r.get_mat();
                    store.insert(a, b, m);
                }
                // INVARIANT: this frame was encoded by a peer rank under the matching tag
                // and the transport delivers whole messages, so decode cannot truncate
                let n_acts = r.get_u64();
                for _ in 0..n_acts {
                    let b = get_box(&mut r);
                    let ids = get_ids(&mut r);
                    act.set(b, ids);
                }
                let fold_ids = get_ids(&mut r);
                state.fold_ids.insert((child_level, member), fold_ids);
            }
        }
    }

    if parent_active_rank {
        // Materialize parent pairs (P, Q) at distance <= 1 where I own one
        // side, assembling from child data.
        let mut done: HashSet<(BoxId, BoxId)> = HashSet::new();
        let mut to_insert = Vec::new();
        let my_parents: Vec<BoxId> = tree
            .boxes_at_level(parent_level)
            .filter(|p| grid.owner(p) == me)
            .collect();
        for p in &my_parents {
            let mut targets = vec![*p];
            targets.extend(near_field(p));
            for q in targets {
                for (a, b) in [(*p, q), (q, *p)] {
                    if !done.insert((a, b)) {
                        continue;
                    }
                    let (blk, any) = assemble_parent_block(store, act, &a, &b);
                    if any {
                        to_insert.push((a, b, blk));
                    }
                }
            }
        }
        // Parent active sets: every parent whose children I know —
        // conservatively, my parents and those of adjacent regions.
        let mut parent_acts = Vec::new();
        let my_region = region_of(grid, me, parent_level);
        for p in tree.boxes_at_level(parent_level) {
            if box_near_region(&p, my_region, 2) {
                parent_acts.push((p, crate::levels::parent_active(act, &p)));
            }
        }
        store.drop_level(child_level);
        act.drop_level(child_level);
        for (a, b, m) in to_insert {
            store.insert(a, b, m);
        }
        for (p, ids) in parent_acts {
            act.set(p, ids);
        }
        // Halo refresh: authoritative parent active sets to adjacent ranks.
        let neighbors = grid.neighbor_ranks(me, parent_level);
        for &dst in &neighbors {
            let region = region_of(grid, dst, parent_level);
            let entries: Vec<(BoxId, Vec<u32>)> = my_parents
                .iter()
                .filter(|p| box_near_region(p, region, 2))
                .map(|p| (*p, act.get(p).to_vec()))
                .collect();
            let mut w = ByteWriter::new();
            w.put_u64(entries.len() as u64);
            for (b, ids) in &entries {
                put_box(&mut w, b);
                put_ids(&mut w, ids);
            }
            ctx.send(dst, tag(parent_level, 6, KIND_ACT_REFRESH), w.finish());
        }
        for &src in &neighbors {
            let payload = ctx.recv(src, tag(parent_level, 6, KIND_ACT_REFRESH));
            let mut r = ByteReader::new(payload);
            // INVARIANT: this frame was encoded by a peer rank under the matching tag
            // and the transport delivers whole messages, so decode cannot truncate
            let n = r.get_u64();
            for _ in 0..n {
                let b = get_box(&mut r);
                let ids = get_ids(&mut r);
                act.set(b, ids);
            }
        }
    } else {
        // Retired ranks drop their child-level data.
        store.drop_level(child_level);
        act.drop_level(child_level);
    }
    // No trailing barrier: the fold and halo-refresh frames above carry
    // level-unique tags, so the parent level's receives match them
    // without a rendezvous.
}

/// The dense top factorization (index map + LU), present on rank 0 only.
pub(crate) type TopFactor<T> = Option<(Vec<u32>, Lu<T>)>;

/// Gather the remaining active blocks on rank 0 and factor the top.
fn gather_top<K: Kernel>(
    ctx: &mut RankCtx,
    grid: &ProcessGrid,
    tree: &QuadTree,
    store: &mut BlockStore<'_, K>,
    act: &mut ActiveSets,
    top_level: u8,
    cctx: &CompressionCtx,
) -> Result<TopFactor<K::Elem>, FactorError> {
    let me = ctx.rank();
    let active = grid.active_ranks(top_level);
    if me != 0 {
        if active.contains(&me) {
            let mut w = ByteWriter::new();
            // Owned active sets.
            let owned: Vec<(BoxId, Vec<u32>)> = tree
                .boxes_at_level(top_level)
                .filter(|b| grid.owner(b) == me)
                .map(|b| (b, act.get(&b).to_vec()))
                .collect();
            w.put_u64(owned.len() as u64);
            for (b, ids) in &owned {
                put_box(&mut w, b);
                put_ids(&mut w, ids);
            }
            // Stored pairs whose row box I own (authoritative, deduped).
            let pairs: Vec<_> = store
                .stored_pairs()
                .filter(|((a, _), _)| a.level == top_level && grid.owner(a) == me)
                .map(|((a, b), m)| (*a, *b, m.clone()))
                .collect();
            w.put_u64(pairs.len() as u64);
            for (a, b, m) in &pairs {
                put_box(&mut w, a);
                put_box(&mut w, b);
                w.put_mat(m);
            }
            ctx.send(0, tag(top_level, 6, KIND_TOP), w.finish());
        }
        return Ok(None);
    }
    for &src in active.iter().filter(|&&r| r != 0) {
        let payload = ctx.recv(src, tag(top_level, 6, KIND_TOP));
        let mut r = ByteReader::new(payload);
        // INVARIANT: this frame was encoded by a peer rank under the matching tag
        // and the transport delivers whole messages, so decode cannot truncate
        let n_acts = r.get_u64();
        for _ in 0..n_acts {
            let b = get_box(&mut r);
            let ids = get_ids(&mut r);
            act.set(b, ids);
        }
        // INVARIANT: this frame was encoded by a peer rank under the matching tag
        // and the transport delivers whole messages, so decode cannot truncate
        let n_pairs = r.get_u64();
        for _ in 0..n_pairs {
            let a = get_box(&mut r);
            let b = get_box(&mut r);
            // INVARIANT: this frame was encoded by a peer rank under the matching tag
            // and the transport delivers whole messages, so decode cannot truncate
            let m: Mat<K::Elem> = r.get_mat();
            store.insert(a, b, m);
        }
    }
    let (top_idx, top_lu) = factor_top(store, act, tree, top_level, cctx)?;
    Ok(Some((top_idx, top_lu)))
}

/// Gather all records on rank 0 and assemble the global factorization.
fn gather_factorization<T: Scalar>(
    ctx: &mut RankCtx,
    grid: &ProcessGrid,
    top: Option<(Vec<u32>, Lu<T>)>,
    state: RankState<T>,
    n: usize,
) -> Result<Option<Factorization<T>>, FactorError> {
    let me = ctx.rank();
    if me != 0 {
        let mut w = ByteWriter::new();
        w.put_u64(state.records.len() as u64);
        for (key, rec) in &state.records {
            encode_record(&mut w, *key, rec);
        }
        // Compression telemetry rides the record frame so rank 0's
        // gathered stats cover every rank's boxes, not just its own.
        w.put_u64(state.stats.compression.sketch_retries);
        w.put_u64(state.stats.compression.sketch_fallbacks);
        w.put_u64(state.stats.compression.fft_block_applies);
        w.put_u64(state.stats.compression.dense_block_applies);
        ctx.send(0, tag(0, 7, KIND_RECORDS), w.finish());
        return Ok(None);
    }
    let mut keyed: Vec<(u64, BoxElimination<T>)> = state.records;
    let mut stats = state.stats;
    for src in 1..grid.p() {
        let payload = ctx.recv(src, tag(0, 7, KIND_RECORDS));
        let mut r = ByteReader::new(payload);
        // INVARIANT: this frame was encoded by a peer rank under the matching tag
        // and the transport delivers whole messages, so decode cannot truncate
        let n_recs = r.get_u64();
        for _ in 0..n_recs {
            keyed.push(decode_record(&mut r));
        }
        // INVARIANT: same frame as above — the peer appended exactly four
        // telemetry counters after its records, so decode cannot truncate.
        let (retries, fallbacks, fft, dense) = (r.get_u64(), r.get_u64(), r.get_u64(), r.get_u64());
        stats.compression.absorb(&crate::CompressionTelemetry {
            sketch_retries: retries,
            sketch_fallbacks: fallbacks,
            fft_block_applies: fft,
            dense_block_applies: dense,
        });
    }
    keyed.sort_by_key(|(k, _)| *k);
    stats.ranks.clear();
    let leaf = stats.leaf_level;
    let records: Vec<BoxElimination<T>> = keyed
        .into_iter()
        .map(|(key, rec)| {
            let level = leaf - ((key >> 46) as u8);
            stats.add_rank(level, rec.skel.len());
            rec
        })
        .collect();
    // INVARIANT: rank 0 runs the top-level merge, so its record always exists
    let (top_idx, top_lu) = top.expect("rank 0 holds the top factorization");
    Ok(Some(Factorization::from_parts(
        n, records, top_idx, top_lu, stats,
    )))
}

/// The distributed solve: upward pass with neighbor delta exchange, top
/// solve on rank 0, downward pass with request/reply value refresh.
#[allow(clippy::too_many_arguments)]
fn dist_solve<T: Scalar>(
    ctx: &mut RankCtx,
    grid: &ProcessGrid,
    tree: &QuadTree,
    pts: &[Point],
    state: &RankState<T>,
    top: Option<&(Vec<u32>, Lu<T>)>,
    top_level: u8,
    leaf: u8,
    lmin: u8,
    b: &[T],
) -> Option<Vec<T>> {
    let me = ctx.rank();
    let mut x = b.to_vec();
    let levels: Vec<u8> = (lmin..=leaf).rev().collect();

    // ---- Upward pass -----------------------------------------------------
    for &level in &levels {
        let _sp = srsf_trace::span!(srsf_trace::Cat::Solve, "solve upward level {level}");
        if grid.is_active(me, level) {
            let neighbors = grid.neighbor_ranks(me, level);
            for phase in 0..=4u8 {
                // Apply my records of this phase; collect deltas on entries
                // owned by other ranks.
                let mut remote: HashMap<usize, Vec<(u32, T)>> = HashMap::new();
                for (i, (_, rec)) in state.records.iter().enumerate() {
                    if state.record_phase[i] != (level, phase) {
                        continue;
                    }
                    let before: Vec<T> = gather(&x, &rec.nbr);
                    apply_upward(rec, &mut x);
                    for (j, &id) in rec.nbr.iter().enumerate() {
                        let owner = owner_of_point(grid, tree, pts, id, level);
                        if owner != me {
                            let delta = x[id as usize] - before[j];
                            if delta != T::ZERO {
                                remote.entry(owner).or_default().push((id, delta));
                            }
                        }
                    }
                }
                for &dst in &neighbors {
                    let items = remote.remove(&dst).unwrap_or_default();
                    let mut w = ByteWriter::new();
                    w.put_u64(items.len() as u64);
                    for (id, v) in &items {
                        w.put_u64(*id as u64);
                        w.put_scalar(*v);
                    }
                    ctx.send(dst, tag(level, phase, KIND_SOLVE_UP), w.finish());
                }
                debug_assert!(remote.is_empty(), "delta for a non-adjacent rank");
                for &src in &neighbors {
                    let payload = ctx.recv(src, tag(level, phase, KIND_SOLVE_UP));
                    let mut r = ByteReader::new(payload);
                    // INVARIANT: this frame was encoded by a peer rank under the matching tag
                    // and the transport delivers whole messages, so decode cannot truncate
                    let n_items = r.get_u64();
                    for _ in 0..n_items {
                        // INVARIANT: this frame was encoded by a peer rank under the matching tag
                        // and the transport delivers whole messages, so decode cannot truncate
                        let id = r.get_u64() as usize;
                        // INVARIANT: this frame was encoded by a peer rank under the matching tag
                        // and the transport delivers whole messages, so decode cannot truncate
                        let v: T = r.get_scalar();
                        x[id] += v;
                    }
                }
            }
        }
        ctx.barrier();
        // Fold value shipment when the next level retires this rank.
        if level > lmin {
            solve_fold_up(ctx, grid, state, level, &mut x);
        }
    }

    // ---- Top solve on rank 0 ---------------------------------------------
    let top_sp = srsf_trace::span!(srsf_trace::Cat::Solve, "solve top level {top_level}");
    let active_top = grid.active_ranks(top_level);
    if me == 0 {
        for &src in active_top.iter().filter(|&&r| r != 0) {
            let payload = ctx.recv(src, tag(top_level, 6, KIND_SOLVE_VAL));
            let mut r = ByteReader::new(payload);
            let ids = get_ids(&mut r);
            // INVARIANT: this frame was encoded by a peer rank under the matching tag
            // and the transport delivers whole messages, so decode cannot truncate
            let vals: Vec<T> = r.get_scalar_slice();
            for (id, v) in ids.iter().zip(vals.iter()) {
                x[*id as usize] = *v;
            }
        }
        // INVARIANT: rank 0 runs the top-level merge, so its record always exists
        let (top_idx, top_lu) = top.expect("rank 0 has the top");
        let mut vals = gather(&x, top_idx);
        top_lu.solve_vec(&mut vals);
        scatter(&mut x, top_idx, &vals);
        // Send each active rank back the entries it owns.
        for &dst in active_top.iter().filter(|&&r| r != 0) {
            let items: Vec<(u32, T)> = top_idx
                .iter()
                .filter(|&&id| owner_of_point(grid, tree, pts, id, top_level) == dst)
                .map(|&id| (id, x[id as usize]))
                .collect();
            let mut w = ByteWriter::new();
            put_ids(&mut w, &items.iter().map(|(i, _)| *i).collect::<Vec<_>>());
            w.put_scalar_slice(&items.iter().map(|(_, v)| *v).collect::<Vec<_>>());
            ctx.send(dst, tag(top_level, 7, KIND_SOLVE_VAL), w.finish());
        }
    } else if active_top.contains(&me) {
        let owned_ids: Vec<u32> = state
            .act_end
            .get(&top_level)
            .map(|v| v.iter().flat_map(|(_, ids)| ids.iter().copied()).collect())
            .unwrap_or_default();
        let vals: Vec<T> = gather(&x, &owned_ids);
        let mut w = ByteWriter::new();
        put_ids(&mut w, &owned_ids);
        w.put_scalar_slice(&vals);
        ctx.send(0, tag(top_level, 6, KIND_SOLVE_VAL), w.finish());
        let payload = ctx.recv(0, tag(top_level, 7, KIND_SOLVE_VAL));
        let mut r = ByteReader::new(payload);
        let ids = get_ids(&mut r);
        // INVARIANT: this frame was encoded by a peer rank under the matching tag
        // and the transport delivers whole messages, so decode cannot truncate
        let vals: Vec<T> = r.get_scalar_slice();
        for (id, v) in ids.iter().zip(vals.iter()) {
            x[*id as usize] = *v;
        }
    }
    ctx.barrier();
    drop(top_sp);

    // ---- Downward pass ----------------------------------------------------
    for &level in levels.iter().rev() {
        let _sp = srsf_trace::span!(srsf_trace::Cat::Solve, "solve downward level {level}");
        // Un-fold: corners return the still-active values to members.
        if level > lmin {
            solve_fold_down(ctx, grid, state, level, &mut x);
        }
        if grid.is_active(me, level) {
            let neighbors = grid.neighbor_ranks(me, level);
            for phase in (0..=4u8).rev() {
                // Refresh remote values my phase records read.
                let mut needed: HashMap<usize, Vec<u32>> = HashMap::new();
                for (i, (_, rec)) in state.records.iter().enumerate() {
                    if state.record_phase[i] != (level, phase) {
                        continue;
                    }
                    for &id in &rec.nbr {
                        let owner = owner_of_point(grid, tree, pts, id, level);
                        if owner != me {
                            needed.entry(owner).or_default().push(id);
                        }
                    }
                }
                for &dst in &neighbors {
                    let mut ids = needed.remove(&dst).unwrap_or_default();
                    ids.sort_unstable();
                    ids.dedup();
                    let mut w = ByteWriter::new();
                    put_ids(&mut w, &ids);
                    ctx.send(dst, tag(level, phase, KIND_SOLVE_REQ), w.finish());
                }
                for &src in &neighbors {
                    let payload = ctx.recv(src, tag(level, phase, KIND_SOLVE_REQ));
                    let mut r = ByteReader::new(payload);
                    let ids = get_ids(&mut r);
                    let vals: Vec<T> = gather(&x, &ids);
                    let mut w = ByteWriter::new();
                    put_ids(&mut w, &ids);
                    w.put_scalar_slice(&vals);
                    ctx.send(src, tag(level, phase, KIND_SOLVE_VAL), w.finish());
                }
                for &src in &neighbors {
                    let payload = ctx.recv(src, tag(level, phase, KIND_SOLVE_VAL));
                    let mut r = ByteReader::new(payload);
                    let ids = get_ids(&mut r);
                    // INVARIANT: this frame was encoded by a peer rank under the matching tag
                    // and the transport delivers whole messages, so decode cannot truncate
                    let vals: Vec<T> = r.get_scalar_slice();
                    for (id, v) in ids.iter().zip(vals.iter()) {
                        x[*id as usize] = *v;
                    }
                }
                // Apply my records of this phase in reverse order.
                for i in (0..state.records.len()).rev() {
                    if state.record_phase[i] != (level, phase) {
                        continue;
                    }
                    apply_downward(&state.records[i].1, &mut x);
                }
            }
        }
        ctx.barrier();
    }

    // ---- Final gather on rank 0 -------------------------------------------
    if me == 0 {
        for src in 1..grid.p() {
            let payload = ctx.recv(src, tag(1, 7, KIND_SOLVE_VAL));
            let mut r = ByteReader::new(payload);
            let ids = get_ids(&mut r);
            // INVARIANT: this frame was encoded by a peer rank under the matching tag
            // and the transport delivers whole messages, so decode cannot truncate
            let vals: Vec<T> = r.get_scalar_slice();
            for (id, v) in ids.iter().zip(vals.iter()) {
                x[*id as usize] = *v;
            }
        }
        Some(x)
    } else {
        // Send every entry of a leaf box I own.
        let mut ids: Vec<u32> = Vec::new();
        for b in tree.boxes_at_level(leaf) {
            if grid.owner(&b) == me {
                ids.extend_from_slice(tree.leaf_points(&b));
            }
        }
        let vals: Vec<T> = gather(&x, &ids);
        let mut w = ByteWriter::new();
        put_ids(&mut w, &ids);
        w.put_scalar_slice(&vals);
        ctx.send(0, tag(1, 7, KIND_SOLVE_VAL), w.finish());
        None
    }
}

/// Upward fold in the solve: retiring ranks ship their surviving entries'
/// values to the corner.
fn solve_fold_up<T: Scalar>(
    ctx: &mut RankCtx,
    grid: &ProcessGrid,
    state: &RankState<T>,
    child_level: u8,
    x: &mut [T],
) {
    let me = ctx.rank();
    let parent_level = child_level - 1;
    if grid.effective_q(parent_level) >= grid.effective_q(child_level) {
        return;
    }
    if !grid.is_active(me, child_level) {
        return;
    }
    let (x0, y0, _, _) = region_of(grid, me, child_level);
    let corner = grid.owner(&BoxId {
        level: parent_level,
        ix: (x0 / 2) as u32,
        iy: (y0 / 2) as u32,
    });
    if corner != me {
        let ids: Vec<u32> = state
            .act_end
            .get(&child_level)
            .map(|v| v.iter().flat_map(|(_, ids)| ids.iter().copied()).collect())
            .unwrap_or_default();
        let vals: Vec<T> = gather(x, &ids);
        let mut w = ByteWriter::new();
        put_ids(&mut w, &ids);
        w.put_scalar_slice(&vals);
        ctx.send(corner, tag(child_level, 5, KIND_SOLVE_VAL), w.finish());
    } else {
        let stride = grid.q() / grid.effective_q(child_level);
        let (cx, cy) = grid.coords_of(me);
        for (dx, dy) in [(1u32, 0u32), (0, 1), (1, 1)] {
            let member = grid.rank_of(cx + dx * stride, cy + dy * stride);
            let payload = ctx.recv(member, tag(child_level, 5, KIND_SOLVE_VAL));
            let mut r = ByteReader::new(payload);
            let ids = get_ids(&mut r);
            // INVARIANT: this frame was encoded by a peer rank under the matching tag
            // and the transport delivers whole messages, so decode cannot truncate
            let vals: Vec<T> = r.get_scalar_slice();
            for (id, v) in ids.iter().zip(vals.iter()) {
                x[*id as usize] = *v;
            }
        }
    }
}

/// Downward un-fold: corners return the surviving entries' values to the
/// members they absorbed.
fn solve_fold_down<T: Scalar>(
    ctx: &mut RankCtx,
    grid: &ProcessGrid,
    state: &RankState<T>,
    child_level: u8,
    x: &mut [T],
) {
    let me = ctx.rank();
    let parent_level = child_level - 1;
    if grid.effective_q(parent_level) >= grid.effective_q(child_level) {
        return;
    }
    if !grid.is_active(me, child_level) {
        return;
    }
    let (x0, y0, _, _) = region_of(grid, me, child_level);
    let corner = grid.owner(&BoxId {
        level: parent_level,
        ix: (x0 / 2) as u32,
        iy: (y0 / 2) as u32,
    });
    if corner != me {
        let ids: Vec<u32> = state
            .act_end
            .get(&child_level)
            .map(|v| v.iter().flat_map(|(_, ids)| ids.iter().copied()).collect())
            .unwrap_or_default();
        let payload = ctx.recv(corner, tag(child_level, 6, KIND_SOLVE_VAL));
        let mut r = ByteReader::new(payload);
        let got_ids = get_ids(&mut r);
        debug_assert_eq!(got_ids, ids);
        // INVARIANT: this frame was encoded by a peer rank under the matching tag
        // and the transport delivers whole messages, so decode cannot truncate
        let vals: Vec<T> = r.get_scalar_slice();
        for (id, v) in got_ids.iter().zip(vals.iter()) {
            x[*id as usize] = *v;
        }
    } else {
        let stride = grid.q() / grid.effective_q(child_level);
        let (cx, cy) = grid.coords_of(me);
        for (dx, dy) in [(1u32, 0u32), (0, 1), (1, 1)] {
            let member = grid.rank_of(cx + dx * stride, cy + dy * stride);
            let ids = state
                .fold_ids
                .get(&(child_level, member))
                .cloned()
                .unwrap_or_default();
            let vals: Vec<T> = gather(x, &ids);
            let mut w = ByteWriter::new();
            put_ids(&mut w, &ids);
            w.put_scalar_slice(&vals);
            ctx.send(member, tag(child_level, 6, KIND_SOLVE_VAL), w.finish());
        }
    }
}
