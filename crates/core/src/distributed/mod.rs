//! Algorithm 2: the distributed-memory parallel factorization and its two
//! serving modes.
//!
//! Leaf boxes are block-partitioned over a `q x q` process grid (Figure
//! 4) and factored level by level with interior/boundary phases and four
//! process-color rounds — see [`factorize`] for the phase structure and
//! the communication pattern. What happens *after* the factorization is
//! the mode split:
//!
//! * **Gathered** (the historical default) — every rank ships its
//!   elimination records to rank 0, which assembles a global
//!   [`Factorization`](crate::Factorization) and serves every later
//!   solve locally. Simple, but rank 0 holds O(N) records: the gather is
//!   an API artifact outside Algorithm 2's analysis, and it forfeits the
//!   paper's O(N/p) per-rank memory bound the moment the build returns.
//! * **Resident** ([`serve`]) — the rank world *stays alive*: records
//!   remain on the ranks that produced them, rank 0 holds only the dense
//!   top factorization plus routing metadata, and repeated
//!   `solve`/`solve_mat` calls run Algorithm 2's upward/downward passes
//!   in place over a request/response command loop
//!   (`srsf_runtime::world::WorldHandle`). This is the paper's serving
//!   deployment: the cheap solve phase — O(sqrt(N/p)) words moved per
//!   rank per solve — amortized over many right-hand sides, with the
//!   per-rank memory bound intact.
//!
//! Select with [`crate::SolverBuilder::resident`]. Both modes run on
//! either runtime backend — ranks as threads
//! ([`Transport::InProc`](srsf_runtime::Transport)) or as real OS
//! processes over TCP sockets
//! ([`Transport::Tcp`](srsf_runtime::Transport)) — and both are
//! backend-agnostic: the same code, solutions, and counters either way.
//!
//! This module holds the pieces the two halves share: the geometry of
//! rank regions, point ownership, the global elimination-order key, and
//! the per-rank factorization state.

mod factorize;
mod serve;

#[allow(deprecated)]
pub use factorize::{dist_factorize, dist_factorize_and_solve};
pub(crate) use factorize::{dist_factorize_with_tree, TopFactor};
pub use serve::ResidentService;
pub(crate) use serve::{dist_factorize_resident, restore_resident_service};

use crate::elimination::BoxElimination;
use crate::stats::FactorStats;
use crate::wire::{try_get_box, try_get_ids};
use srsf_geometry::point::Point;
use srsf_geometry::procgrid::ProcessGrid;
use srsf_geometry::tree::{BoxId, QuadTree};
use srsf_runtime::codec::ByteReader;
use std::collections::HashMap;

pub(crate) fn get_box(r: &mut ByteReader) -> BoxId {
    // INVARIANT: deliberate — these frames come from our own encoder over a
    // reliable transport; try_get_box is the path for untrusted bytes
    try_get_box(r).unwrap_or_else(|e| panic!("{e}"))
}

pub(crate) fn get_ids(r: &mut ByteReader) -> Vec<u32> {
    // INVARIANT: deliberate — same trusted-frame argument as get_box above
    try_get_ids(r).unwrap_or_else(|e| panic!("{e}"))
}

/// Inclusive box-coordinate bounds of a rank's block at a level.
pub(crate) fn region_of(grid: &ProcessGrid, rank: usize, level: u8) -> (i64, i64, i64, i64) {
    let qe = grid.effective_q(level);
    let s = 1u32 << level;
    let block = (s / qe) as i64;
    let (ex, ey) = grid.effective_coords(rank, level);
    let x0 = ex as i64 * block;
    let y0 = ey as i64 * block;
    (x0, y0, x0 + block - 1, y0 + block - 1)
}

/// `true` if `b` is within Chebyshev distance `d` of the rank's region.
pub(crate) fn box_near_region(b: &BoxId, region: (i64, i64, i64, i64), d: i64) -> bool {
    let (x0, y0, x1, y1) = region;
    let bx = b.ix as i64;
    let by = b.iy as i64;
    bx >= x0 - d && bx <= x1 + d && by >= y0 - d && by <= y1 + d
}

/// Owner rank of point `ptid` at `level` (via its ancestor box).
pub(crate) fn owner_of_point(
    grid: &ProcessGrid,
    tree: &QuadTree,
    pts: &[Point],
    ptid: u32,
    level: u8,
) -> usize {
    let p = pts[ptid as usize];
    let s = 1u64 << level;
    let dom = tree.domain();
    let inv = s as f64 / dom.side;
    let ix = (((p.x - dom.lo.x) * inv) as u64).min(s - 1) as u32;
    let iy = (((p.y - dom.lo.y) * inv) as u64).min(s - 1) as u32;
    grid.owner(&BoxId { level, ix, iy })
}

/// Global elimination-order key: level sweep, then phase, then the
/// phase's sub-color round, then row-major within the round.
///
/// The sub-color bits mirror the order `run_phase` actually eliminates a
/// rank's phase boxes in (four `BoxColoring::Four` rounds, merged in box
/// order within each round), so sorting records by key reproduces the
/// elimination order bit-exactly — the contract both the gathered
/// factorization and the resident serve state rely on. Cross-rank records
/// sharing a `(level, phase)` always sit at box distance >= 2 (interior
/// boxes of different ranks, or boundary boxes of same-colored ranks), so
/// their relative order only fixes the floating-point summation order of
/// shared Schur targets, which the key makes deterministic.
pub(crate) fn order_key(leaf: u8, level: u8, phase: u8, color: u8, b: &BoxId) -> u64 {
    (((leaf - level) as u64) << 46)
        | ((phase as u64) << 42)
        | ((color as u64) << 40)
        | b.flat() as u64
}

/// Recover the `(level, phase)` coordinates an [`order_key`] was built
/// from.
pub(crate) fn key_level_phase(leaf: u8, key: u64) -> (u8, u8) {
    (leaf - ((key >> 46) as u8), ((key >> 42) & 0xF) as u8)
}

/// All point ids inside the leaf boxes `rank` owns, concatenated in
/// row-major box order — the canonical row layout of the resident serve
/// protocol's RHS/solution slabs (both sides derive it from the
/// replicated geometry, so slabs carry no id lists).
pub(crate) fn owned_leaf_ids(tree: &QuadTree, grid: &ProcessGrid, rank: usize) -> Vec<u32> {
    let leaf = tree.leaf_level();
    let mut ids = Vec::new();
    for b in tree.boxes_at_level(leaf) {
        if grid.owner(&b) == rank {
            ids.extend_from_slice(tree.leaf_points(&b));
        }
    }
    ids
}

/// Per-rank state shared between the factorization and solve passes.
pub(crate) struct RankState<T> {
    pub(crate) records: Vec<(u64, BoxElimination<T>)>,
    /// `(level, phase)` per record, aligned with `records`.
    pub(crate) record_phase: Vec<(u8, u8)>,
    /// Post-elimination active sets of *owned* boxes per level.
    pub(crate) act_end: HashMap<u8, Vec<(BoxId, Vec<u32>)>>,
    /// Fold bookkeeping for the solve: ids received from each retiring
    /// member at each fold level.
    pub(crate) fold_ids: HashMap<(u8, usize), Vec<u32>>,
    pub(crate) stats: FactorStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_key_round_trips_level_and_phase() {
        let leaf = 5u8;
        for level in 3..=leaf {
            for phase in 0..=4u8 {
                for color in 0..4u8 {
                    let b = BoxId {
                        level,
                        ix: 3,
                        iy: 1,
                    };
                    let key = order_key(leaf, level, phase, color, &b);
                    assert_eq!(key_level_phase(leaf, key), (level, phase));
                }
            }
        }
    }

    #[test]
    fn order_key_sorts_level_then_phase_then_color_then_row_major() {
        let leaf = 5u8;
        let b = |level, ix, iy| BoxId { level, ix, iy };
        // Finer level first, then phase, then sub-color round, then
        // row-major within the round.
        let seq = [
            order_key(leaf, 5, 0, 0, &b(5, 0, 0)),
            order_key(leaf, 5, 0, 0, &b(5, 2, 0)),
            order_key(leaf, 5, 0, 1, &b(5, 1, 0)),
            order_key(leaf, 5, 1, 0, &b(5, 0, 0)),
            order_key(leaf, 4, 0, 0, &b(4, 0, 0)),
        ];
        let mut sorted = seq;
        sorted.sort_unstable();
        assert_eq!(seq, sorted);
    }
}
