//! The strong skeletonization operator `Z(A; B)` (Section II-D).
//!
//! After the ID splits a box's active indices into skeletons `S` and
//! redundants `R`, the sparsification `S^* A S` decouples `R` from the far
//! field, and block Gaussian elimination of `X_RR` produces Schur updates
//! confined to `B` and its near field `N(B)` (Remark 2). This module
//! computes the elimination *record* (everything the solve phase needs)
//! and the set of block updates, without mutating the store — the three
//! drivers (sequential, box-colored, distributed) share it and differ only
//! in how they schedule the updates.

use crate::skeletonize::{skeletonize, CompressionCtx};
use crate::store::{ActiveSets, BlockStore};
use crate::{CompressionTelemetry, FactorOpts};
use srsf_geometry::neighbors::near_field;
use srsf_geometry::procgrid::BoxColoring;
use srsf_geometry::tree::{BoxId, QuadTree};
use srsf_kernels::kernel::Kernel;
use srsf_linalg::gemm::{adjoint_matmul_acc, adjoint_matmul_sub, matmul, matmul_sub};
use srsf_linalg::{Lu, Mat, Scalar};

/// Per-box factorization record: the pieces of `V = L S^* P^T` and
/// `W = P S U` (Eq. 10) needed to apply the inverse.
#[derive(Clone, Debug)]
pub struct BoxElimination<T> {
    /// The eliminated box.
    pub box_id: BoxId,
    /// Tree level of the box, stamped for the solve-phase scheduler.
    pub level: u8,
    /// Schedule color stamped at factorization time: the paper's
    /// geometric four-coloring by default, restamped by the colored
    /// driver with its own scheme. Contiguous same-`(level, color)` runs
    /// of records are what the threaded apply processes concurrently —
    /// same-color boxes sit at box distance >= 2, so their records read
    /// disjoint entries and overlap only in additive neighbor updates.
    pub color: u8,
    /// Global point ids of the redundant DOFs (eliminated here).
    pub redundant: Vec<u32>,
    /// Global point ids of the skeleton DOFs (stay active).
    pub skel: Vec<u32>,
    /// Global point ids of the neighbors' active DOFs at elimination time
    /// (concatenated over `N(B)` in row-major box order).
    pub nbr: Vec<u32>,
    /// Interpolation matrix `T` (`|S| x |R|`).
    pub t: Mat<T>,
    /// LU of the sparsified diagonal block `X_RR`.
    pub lu: Lu<T>,
    /// `X_SR U^{-1}` (`|S| x |R|`).
    pub es: Mat<T>,
    /// `X_NR U^{-1}` (`|N| x |R|`).
    pub en: Mat<T>,
    /// `L^{-1} P X_RS` (`|R| x |S|`).
    pub fs: Mat<T>,
    /// `L^{-1} P X_RN` (`|R| x |N|`).
    pub fnb: Mat<T>,
}

impl<T: Scalar> BoxElimination<T> {
    /// Approximate heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.t.heap_bytes()
            + self.lu.heap_bytes()
            + self.es.heap_bytes()
            + self.en.heap_bytes()
            + self.fs.heap_bytes()
            + self.fnb.heap_bytes()
            + (self.redundant.capacity() + self.skel.capacity() + self.nbr.capacity()) * 4
    }
}

/// Everything produced by eliminating one box.
pub struct EliminationOutput<T> {
    /// The solve-phase record (`None` when the box had no redundant DOFs —
    /// nothing was eliminated).
    pub record: Option<BoxElimination<T>>,
    /// Skeleton *positions* within the box's former active set.
    pub skel_positions: Vec<usize>,
    /// Replacement blocks for pairs involving `B` (restricted to `S`):
    /// `(row_box, col_box, new_block)`.
    pub replaced: Vec<(BoxId, BoxId, Mat<T>)>,
    /// Additive Schur deltas for neighbor pairs `(n_j, n_k)`.
    pub deltas: Vec<(BoxId, BoxId, Mat<T>)>,
    /// Compression path taken by this box's skeletonization (zeroed for
    /// boxes that skipped it — empty active set).
    pub compression: CompressionTelemetry,
}

/// Errors the factorization can raise.
#[derive(Debug)]
#[non_exhaustive]
pub enum FactorError {
    /// A sparsified diagonal block was singular — the compression
    /// tolerance is too loose for this kernel/geometry.
    SingularDiagonal {
        /// The box whose `X_RR` failed to factor.
        box_id: BoxId,
    },
    /// The dense top block was singular — the DOFs surviving above the
    /// compression levels form a rank-deficient system, independent of
    /// any particular box.
    SingularTop {
        /// Dimension of the dense top block.
        size: usize,
        /// Elimination step at which the pivoted LU broke down.
        step: usize,
    },
}

impl core::fmt::Display for FactorError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FactorError::SingularDiagonal { box_id } => {
                write!(f, "singular sparsified diagonal block at {box_id:?}")
            }
            FactorError::SingularTop { size, step } => {
                write!(
                    f,
                    "singular dense top block ({size} x {size}, pivot breakdown at step {step})"
                )
            }
        }
    }
}

impl std::error::Error for FactorError {}

/// Eliminate box `b`: skeletonize, sparsify, factor `X_RR`, and compute the
/// Schur updates. Pure (does not mutate `store`/`act`); apply the output
/// with [`apply_output`].
pub fn eliminate_box<K: Kernel>(
    store: &BlockStore<'_, K>,
    act: &ActiveSets,
    tree: &QuadTree,
    b: &BoxId,
    opts: &FactorOpts,
    ctx: &CompressionCtx,
) -> Result<EliminationOutput<K::Elem>, FactorError> {
    type T<K> = <K as Kernel>::Elem;
    let a_b: Vec<u32> = act.get(b).to_vec();
    if a_b.is_empty() {
        return Ok(EliminationOutput {
            record: None,
            skel_positions: Vec::new(),
            replaced: Vec::new(),
            deltas: Vec::new(),
            compression: CompressionTelemetry::default(),
        });
    }

    let (id, compression) = skeletonize(store, act, tree, b, opts, ctx);
    let skel_positions = id.skel.clone();
    let red_positions = id.redundant.clone();
    if red_positions.is_empty() {
        // Nothing to eliminate; the box keeps its full active set.
        return Ok(EliminationOutput {
            record: None,
            skel_positions,
            replaced: Vec::new(),
            deltas: Vec::new(),
            compression,
        });
    }
    let t = id.t; // |S| x |R|

    // Gather current blocks.
    let a_bb = store.get(b, b, act);
    let a_rr = a_bb.select(&red_positions, &red_positions);
    let a_rs = a_bb.select(&red_positions, &skel_positions);
    let a_sr = a_bb.select(&skel_positions, &red_positions);
    let a_ss = a_bb.select(&skel_positions, &skel_positions);

    // Neighbor boxes with nonempty active sets, fixed row-major order.
    let nbrs: Vec<BoxId> = near_field(b)
        .into_iter()
        .filter(|n| !act.get(n).is_empty())
        .collect();
    let nbr_sizes: Vec<usize> = nbrs.iter().map(|n| act.get(n).len()).collect();
    let n_total: usize = nbr_sizes.iter().sum();

    // Stacked A_{N,B} and A_{B,N}.
    let nb_len = a_b.len();
    let mut a_nb = Mat::<T<K>>::zeros(n_total, nb_len);
    let mut a_bn = Mat::<T<K>>::zeros(nb_len, n_total);
    {
        let mut r0 = 0;
        for n in &nbrs {
            let blk = ctx.get_block(store, act, n, b);
            a_nb.set_block(r0, 0, &blk);
            r0 += blk.nrows();
        }
        let mut c0 = 0;
        for n in &nbrs {
            let blk = ctx.get_block(store, act, b, n);
            a_bn.set_block(0, c0, &blk);
            c0 += blk.ncols();
        }
    }
    let all_rows: Vec<usize> = (0..n_total).collect();
    let a_nr = a_nb.select(&all_rows, &red_positions);
    let a_ns = a_nb.select(&all_rows, &skel_positions);
    let a_rn = {
        let cols: Vec<usize> = (0..n_total).collect();
        a_bn.select(&red_positions, &cols)
    };
    let a_sn = {
        let cols: Vec<usize> = (0..n_total).collect();
        a_bn.select(&skel_positions, &cols)
    };

    // Sparsification: X_RR = A_RR - T^H A_SR - A_RS T + T^H A_SS T, etc.
    let mut x_rr = a_rr;
    adjoint_matmul_sub(&mut x_rr, &t, &a_sr); // -= T^H A_SR
    let a_ss_t = matmul(&a_ss, &t);
    // -= A_RS T  and  += T^H (A_SS T), accumulated in place.
    matmul_sub(&mut x_rr, &a_rs, &t);
    adjoint_matmul_acc(&mut x_rr, T::<K>::ONE, &t, &a_ss_t);

    let mut x_sr = a_sr;
    x_sr.axpy(-T::<K>::ONE, &a_ss_t); // X_SR = A_SR - A_SS T
    let mut x_rs = a_rs;
    adjoint_matmul_sub(&mut x_rs, &t, &a_ss); // X_RS = A_RS - T^H A_SS
    let mut x_nr = a_nr;
    matmul_sub(&mut x_nr, &a_ns, &t); // X_NR = A_NR - A_NS T
    let mut x_rn = a_rn;
    adjoint_matmul_sub(&mut x_rn, &t, &a_sn); // X_RN = A_RN - T^H A_SN

    // Factor the redundant diagonal block.
    let lu = Lu::factor(x_rr).map_err(|_| FactorError::SingularDiagonal { box_id: *b })?;

    // Coupling matrices: ES = X_SR U^{-1}, EN = X_NR U^{-1},
    //                    FS = L^{-1} P X_RS, FN = L^{-1} P X_RN.
    let mut es = x_sr;
    lu.solve_upper_right(&mut es);
    let mut en = x_nr;
    lu.solve_upper_right(&mut en);
    let mut fs = x_rs;
    lu.forward_mat(&mut fs);
    let mut fnb = x_rn;
    lu.forward_mat(&mut fnb);

    // Replacement blocks (post-Schur) for pairs involving B.
    let mut replaced = Vec::with_capacity(1 + 2 * nbrs.len());
    let mut new_ss = a_ss;
    matmul_sub(&mut new_ss, &es, &fs);
    replaced.push((*b, *b, new_ss));
    {
        // (B, n_j): A_SN_j - ES FN_j ; (n_j, B): A_NS_j - EN_j FS.
        let sn_minus = {
            let mut m = a_sn;
            matmul_sub(&mut m, &es, &fnb);
            m
        };
        let ns_minus = {
            let mut m = a_ns;
            matmul_sub(&mut m, &en, &fs);
            m
        };
        let mut off = 0;
        for (j, n) in nbrs.iter().enumerate() {
            let w = nbr_sizes[j];
            let cols: Vec<usize> = (off..off + w).collect();
            let all_s: Vec<usize> = (0..skel_positions.len()).collect();
            replaced.push((*b, *n, sn_minus.select(&all_s, &cols)));
            replaced.push((*n, *b, ns_minus.select(&cols, &all_s).clone()));
            off += w;
        }
    }

    // Schur deltas for neighbor pairs: delta(n_j, n_k) = -EN_j FN_k.
    let full = matmul(&en, &fnb); // |N| x |N|
    let mut deltas = Vec::new();
    let mut roff = 0;
    for (j, nj) in nbrs.iter().enumerate() {
        let rows: Vec<usize> = (roff..roff + nbr_sizes[j]).collect();
        let mut coff = 0;
        for (k, nk) in nbrs.iter().enumerate() {
            let cols: Vec<usize> = (coff..coff + nbr_sizes[k]).collect();
            let mut d = full.select(&rows, &cols);
            d.scale_assign(-T::<K>::ONE);
            deltas.push((*nj, *nk, d));
            coff += nbr_sizes[k];
        }
        roff += nbr_sizes[j];
    }

    let record = BoxElimination {
        box_id: *b,
        level: b.level,
        color: BoxColoring::Four.color(b),
        redundant: red_positions.iter().map(|&p| a_b[p]).collect(),
        skel: skel_positions.iter().map(|&p| a_b[p]).collect(),
        nbr: nbrs
            .iter()
            .flat_map(|n| act.get(n).iter().copied())
            .collect(),
        t,
        lu,
        es,
        en,
        fs,
        fnb,
    };

    Ok(EliminationOutput {
        record: Some(record),
        skel_positions,
        replaced,
        deltas,
        compression,
    })
}

/// Apply an elimination output to the store and active sets: shrink the
/// box's stored pairs, install the replacement blocks, accumulate the
/// Schur deltas, and shrink the active set.
pub fn apply_output<K: Kernel>(
    store: &mut BlockStore<'_, K>,
    act: &mut ActiveSets,
    b: &BoxId,
    out: &EliminationOutput<K::Elem>,
    ctx: &CompressionCtx,
) {
    if out.record.is_none() {
        // Either empty box or full-rank ID: nothing changes.
        return;
    }
    // 1. Restrict stored far-ring pairs involving B to the skeleton rows/cols.
    store.shrink_box(b, &out.skel_positions);
    // 2. Install replacement blocks (the (B,B), (B,n), (n,B) pairs).
    for (ra, rb, m) in &out.replaced {
        store.insert(*ra, *rb, m.clone());
    }
    // 3. Shrink the active set.
    let skel_ids = out
        .record
        .as_ref()
        .map(|r| r.skel.clone())
        .unwrap_or_default();
    act.set(*b, skel_ids);
    // 4. Accumulate Schur deltas on neighbor pairs. A delta's first touch
    // materializes the pair's base block; go through the compression
    // context so unmodified off-diagonal pairs fill from the symbol table
    // instead of per-entry kernel evaluations.
    for (na, nb, d) in &out.deltas {
        if na != nb && !store.contains(na, nb) {
            let base = ctx.get_block(store, act, na, nb);
            store.insert(*na, *nb, base);
        }
        store.add_delta(*na, *nb, d, act);
    }
}
