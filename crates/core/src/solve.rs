//! The solution phase (Section II-F): applying the approximate inverse.
//!
//! `A^{-1} ~= W_1 … W_k · TOP^{-1} · V_k … V_1`: an upward pass applies the
//! `V` factors in elimination order, the dense top block is solved, and a
//! downward pass applies the `W` factors in reverse order. Each record
//! touches only its box's redundant/skeleton entries and its neighbors'
//! active entries — the locality that makes the distributed solve possible.
//!
//! Three application paths share the record data:
//!
//! * **Single vector** ([`apply_inverse`]) — level-2 matvecs per record;
//!   this is what the distributed driver's rank-local solve uses, where
//!   each rank holds one slice of one right-hand side.
//! * **Blocked multi-RHS** ([`apply_inverse_mat`]) — the same sweeps over
//!   an `n x nrhs` [`Mat`]: row-block gather/scatter plus `T^H B_S`,
//!   `L^{-1} P B_R`, and the Schur subtractions as GEMM/blocked-TRSM
//!   calls into `srsf-linalg`. This is the hot path of a served
//!   deployment, where the factorization is amortized over many incident
//!   right-hand sides at once.
//! * **Color-scheduled threaded apply** ([`apply_inverse_mat_threaded`])
//!   — records carry a `(level, color)` stamp from factorization time;
//!   contiguous same-stamp runs are applied concurrently under
//!   `std::thread::scope`. With the distance-3 `Nine` coloring all record
//!   writes are disjoint by construction; the distance-2 `Four` scheme
//!   additionally shares additive neighbor updates. Both run the same
//!   snapshot-read compute phase followed by a fixed-order merge
//!   (mirroring `eliminate_color_round`), so the result is bit-identical
//!   to the serial [`apply_inverse_mat`] for any thread count.

use crate::elimination::BoxElimination;
use crate::sequential::Factorization;
use srsf_linalg::gemm::{adjoint_matmul_sub, matmul, matmul_sub};
use srsf_linalg::{Mat, Scalar};
use std::ops::Range;
// Sync primitives come through the srsf-verify shims: identical to
// `std::sync` in a normal build, schedule-explored under
// `--cfg srsf_model` (see crates/verify).
use srsf_verify::sync::atomic::{AtomicUsize, Ordering};
use srsf_verify::sync::{Barrier, Mutex, RwLock};

#[inline]
pub(crate) fn gather<T: Scalar>(b: &[T], idx: &[u32]) -> Vec<T> {
    idx.iter().map(|&i| b[i as usize]).collect()
}

#[inline]
pub(crate) fn scatter<T: Scalar>(b: &mut [T], idx: &[u32], vals: &[T]) {
    for (&i, &v) in idx.iter().zip(vals.iter()) {
        b[i as usize] = v;
    }
}

/// Upward (forward) application of one record: `b := V b` with
/// `V = L^{-1} P S^*` restricted to `[R, S, N]`.
pub(crate) fn apply_upward<T: Scalar>(rec: &BoxElimination<T>, b: &mut [T]) {
    let mut br = gather(b, &rec.redundant);
    let bs = gather(b, &rec.skel);
    // b_R -= T^H b_S
    let mut th_bs = vec![T::ZERO; br.len()];
    rec.t.adjoint_matvec_acc_into(&bs, &mut th_bs);
    for (r, v) in br.iter_mut().zip(th_bs.iter()) {
        *r -= *v;
    }
    // b_R := L^{-1} P b_R
    rec.lu.forward_vec(&mut br);
    // b_S -= ES b_R ; b_N -= EN b_R
    let mut bs = bs;
    rec.es.matvec_sub_into(&br, &mut bs);
    let mut bn = gather(b, &rec.nbr);
    rec.en.matvec_sub_into(&br, &mut bn);
    scatter(b, &rec.redundant, &br);
    scatter(b, &rec.skel, &bs);
    scatter(b, &rec.nbr, &bn);
}

/// Downward (backward) application of one record: `b := W b` with
/// `W = P S U^{-1}`-style ordering (see Section II-D).
pub(crate) fn apply_downward<T: Scalar>(rec: &BoxElimination<T>, b: &mut [T]) {
    let mut br = gather(b, &rec.redundant);
    let bs = gather(b, &rec.skel);
    let bn = gather(b, &rec.nbr);
    // b_R -= FS b_S + FN b_N
    rec.fs.matvec_sub_into(&bs, &mut br);
    rec.fnb.matvec_sub_into(&bn, &mut br);
    // b_R := U^{-1} b_R
    rec.lu.backward_vec(&mut br);
    // b_S -= T b_R
    let mut bs = bs;
    rec.t.matvec_sub_into(&br, &mut bs);
    scatter(b, &rec.redundant, &br);
    scatter(b, &rec.skel, &bs);
}

/// Full solve: upward pass, dense top solve, downward pass.
pub(crate) fn apply_inverse<T: Scalar>(f: &Factorization<T>, b: &mut [T]) {
    assert_eq!(b.len(), f.n, "right-hand side length mismatch");
    for rec in &f.records {
        apply_upward(rec, b);
    }
    let mut top = gather(b, &f.top_idx);
    f.top_lu.solve_vec(&mut top);
    scatter(b, &f.top_idx, &top);
    for rec in f.records.iter().rev() {
        apply_downward(rec, b);
    }
}

// ---------------------------------------------------------------------------
// Blocked multi-RHS application
// ---------------------------------------------------------------------------

/// The snapshot-read compute half of the upward record application:
/// returns `(B_R, B_S, EN B_R)` where `B_R` and `B_S` are the updated
/// redundant/skeleton row blocks and `EN B_R` is the *additive* neighbor
/// delta, left unapplied so callers can merge it in a fixed record order.
pub(crate) fn upward_parts<T: Scalar>(
    rec: &BoxElimination<T>,
    b: &Mat<T>,
) -> (Mat<T>, Mat<T>, Mat<T>) {
    let mut br = b.gather_rows(&rec.redundant);
    let mut bs = b.gather_rows(&rec.skel);
    // B_R -= T^H B_S
    adjoint_matmul_sub(&mut br, &rec.t, &bs);
    // B_R := L^{-1} P B_R
    rec.lu.forward_mat(&mut br);
    // B_S -= ES B_R ; neighbor delta EN B_R is handed back for the merge.
    matmul_sub(&mut bs, &rec.es, &br);
    let dn = matmul(&rec.en, &br);
    (br, bs, dn)
}

/// Merge half of the upward application: overwrite the box's own row
/// blocks, subtract the neighbor delta.
pub(crate) fn merge_upward<T: Scalar>(
    rec: &BoxElimination<T>,
    b: &mut Mat<T>,
    br: Mat<T>,
    bs: Mat<T>,
    dn: Mat<T>,
) {
    b.scatter_rows(&rec.redundant, &br);
    b.scatter_rows(&rec.skel, &bs);
    b.scatter_rows_sub(&rec.nbr, &dn);
}

/// Upward application of one record to an `n x nrhs` block: the level-3
/// counterpart of [`apply_upward`].
pub(crate) fn apply_upward_mat<T: Scalar>(rec: &BoxElimination<T>, b: &mut Mat<T>) {
    let (br, bs, dn) = upward_parts(rec, b);
    merge_upward(rec, b, br, bs, dn);
}

/// The snapshot-read compute half of the downward record application:
/// returns the updated `(B_R, B_S)` row blocks. Downward writes touch
/// only the box's own rows, so no delta is needed.
pub(crate) fn downward_parts<T: Scalar>(rec: &BoxElimination<T>, b: &Mat<T>) -> (Mat<T>, Mat<T>) {
    let mut br = b.gather_rows(&rec.redundant);
    let mut bs = b.gather_rows(&rec.skel);
    let bn = b.gather_rows(&rec.nbr);
    // B_R -= FS B_S + FN B_N
    matmul_sub(&mut br, &rec.fs, &bs);
    matmul_sub(&mut br, &rec.fnb, &bn);
    // B_R := U^{-1} B_R
    rec.lu.backward_mat(&mut br);
    // B_S -= T B_R
    matmul_sub(&mut bs, &rec.t, &br);
    (br, bs)
}

/// Downward application of one record to an `n x nrhs` block: the
/// level-3 counterpart of [`apply_downward`].
pub(crate) fn apply_downward_mat<T: Scalar>(rec: &BoxElimination<T>, b: &mut Mat<T>) {
    let (br, bs) = downward_parts(rec, b);
    b.scatter_rows(&rec.redundant, &br);
    b.scatter_rows(&rec.skel, &bs);
}

/// Full blocked solve: upward pass, dense top solve (one blocked
/// triangular pair over all columns), downward pass.
pub(crate) fn apply_inverse_mat<T: Scalar>(f: &Factorization<T>, b: &mut Mat<T>) {
    assert_eq!(b.nrows(), f.n, "right-hand side row count mismatch");
    for rec in &f.records {
        apply_upward_mat(rec, b);
    }
    let mut top = b.gather_rows(&f.top_idx);
    f.top_lu.solve_mat(&mut top);
    b.scatter_rows(&f.top_idx, &top);
    for rec in f.records.iter().rev() {
        apply_downward_mat(rec, b);
    }
}

// ---------------------------------------------------------------------------
// Color-scheduled threaded application
// ---------------------------------------------------------------------------

/// Maximal contiguous runs of records sharing a `(level, color)` stamp.
///
/// Only *contiguous* runs are grouped: reordering records across stamps
/// would change the elimination order the factorization was built for.
/// The colored driver emits whole color rounds back-to-back, so its runs
/// span entire rounds; sequential/distributed record streams degrade to
/// short runs and lose parallelism but never correctness.
fn color_groups<T>(records: &[BoxElimination<T>]) -> Vec<Range<usize>> {
    let mut groups = Vec::new();
    let mut start = 0;
    for i in 1..=records.len() {
        let split = i == records.len()
            || (records[i - 1].level, records[i - 1].color) != (records[i].level, records[i].color);
        if split {
            groups.push(start..i);
            start = i;
        }
    }
    groups
}

/// One threaded substitution pass (upward or downward) over the color
/// groups.
///
/// The worker pool is spawned **once** per pass and synchronized with a
/// [`Barrier`] between groups — respawning `thread::scope` per group
/// costs more than a small group's compute. Per group, every worker
/// pulls record indices from a shared atomic counter (work-stealing:
/// per-box ranks vary widely), computes the record's row blocks against
/// a read-locked snapshot of `b`, and parks at the barrier; one
/// designated merger then write-locks `b` and applies the outputs in
/// serial record order (reverse order within a group on the downward
/// pass, mirroring the serial sweep), and a second barrier releases the
/// pool into the next group.
fn threaded_pass<T: Scalar>(
    records: &[BoxElimination<T>],
    groups: &[Range<usize>],
    b: &mut Mat<T>,
    n_threads: usize,
    downward: bool,
) {
    // (B_R, B_S, additive neighbor delta — upward only).
    type Parts<T> = (Mat<T>, Mat<T>, Option<Mat<T>>);
    let slots: Vec<Mutex<Option<Parts<T>>>> =
        (0..records.len()).map(|_| Mutex::new(None)).collect();
    let counters: Vec<AtomicUsize> = groups.iter().map(|_| AtomicUsize::new(0)).collect();
    let barrier = Barrier::new(n_threads);
    let lock = RwLock::new(std::mem::replace(b, Mat::zeros(0, 0)));
    let order: Vec<usize> = if downward {
        (0..groups.len()).rev().collect()
    } else {
        (0..groups.len()).collect()
    };

    let worker = |is_merger: bool| {
        for &gi in &order {
            let g = &groups[gi];
            {
                // INVARIANT: poisoning requires a panicked worker, and that panic
                // already propagates through the scope join
                let snapshot = lock.read().expect("rhs lock poisoned");
                loop {
                    // Relaxed is enough: the counter only partitions record indices — the
                    // per-record Mutex slots publish the data, and the group barrier orders
                    // every write before the merger reads (modeled by
                    // delta_merge_order_is_schedule_independent in crates/verify/tests/models.rs).
                    let k = counters[gi].fetch_add(1, Ordering::Relaxed);
                    if k >= g.len() {
                        break;
                    }
                    let i = g.start + k;
                    let rec = &records[i];
                    let out = if downward {
                        let (br, bs) = downward_parts(rec, &snapshot);
                        (br, bs, None)
                    } else {
                        let (br, bs, dn) = upward_parts(rec, &snapshot);
                        (br, bs, Some(dn))
                    };
                    // INVARIANT: poisoning requires a panicked worker, whose panic
                    // already propagates through the scope join
                    *slots[i].lock().expect("slot poisoned") = Some(out);
                }
            }
            barrier.wait();
            if is_merger {
                // INVARIANT: poisoning requires a panicked worker, whose panic
                // already propagates through the scope join
                let mut bm = lock.write().expect("rhs lock poisoned");
                let idx: Vec<usize> = if downward {
                    g.clone().rev().collect()
                } else {
                    g.clone().collect()
                };
                for i in idx {
                    let (br, bs, dn) = slots[i]
                        .lock()
                        // INVARIANT: poisoning requires a panicked worker (propagated
                        // at scope join)
                        .expect("slot poisoned")
                        .take()
                        // INVARIANT: the barrier orders every record's slot write
                        // before the merger's take
                        .expect("missing record output");
                    let rec = &records[i];
                    bm.scatter_rows(&rec.redundant, &br);
                    bm.scatter_rows(&rec.skel, &bs);
                    if let Some(dn) = dn {
                        bm.scatter_rows_sub(&rec.nbr, &dn);
                    }
                }
            }
            barrier.wait();
        }
    };
    std::thread::scope(|scope| {
        for _ in 1..n_threads {
            scope.spawn(|| worker(false));
        }
        worker(true);
    });
    // INVARIANT: all workers joined at scope end; poisoning would mean a panic
    // that already propagated
    *b = lock.into_inner().expect("rhs lock poisoned");
}

/// Threaded blocked solve, scheduled by the records' `(level, color)`
/// stamps: same-color records of a level compute concurrently against a
/// snapshot of `b` and merge in record order, so the result is
/// bit-identical to [`apply_inverse_mat`] for any `n_threads`.
///
/// With the distance-3 `Nine` coloring the records of a group write
/// disjoint rows outright; with the paper's `Four` scheme same-color
/// boxes at distance 2 share additive neighbor updates, which the
/// fixed-order merge applies exactly as the serial sweep would.
pub(crate) fn apply_inverse_mat_threaded<T: Scalar>(
    f: &Factorization<T>,
    b: &mut Mat<T>,
    n_threads: usize,
) {
    assert!(n_threads >= 1, "need at least one worker thread");
    if n_threads == 1 {
        return apply_inverse_mat(f, b);
    }
    assert_eq!(b.nrows(), f.n, "right-hand side row count mismatch");
    let groups = color_groups(&f.records);
    threaded_pass(&f.records, &groups, b, n_threads, false);
    let mut top = b.gather_rows(&f.top_idx);
    f.top_lu.solve_mat(&mut top);
    b.scatter_rows(&f.top_idx, &top);
    threaded_pass(&f.records, &groups, b, n_threads, true);
}
