//! The solution phase (Section II-F): applying the approximate inverse.
//!
//! `A^{-1} ~= W_1 … W_k · TOP^{-1} · V_k … V_1`: an upward pass applies the
//! `V` factors in elimination order, the dense top block is solved, and a
//! downward pass applies the `W` factors in reverse order. Each record
//! touches only its box's redundant/skeleton entries and its neighbors'
//! active entries — the locality that makes the distributed solve possible.

use crate::elimination::BoxElimination;
use crate::sequential::Factorization;
use srsf_linalg::Scalar;

#[inline]
pub(crate) fn gather<T: Scalar>(b: &[T], idx: &[u32]) -> Vec<T> {
    idx.iter().map(|&i| b[i as usize]).collect()
}

#[inline]
pub(crate) fn scatter<T: Scalar>(b: &mut [T], idx: &[u32], vals: &[T]) {
    for (&i, &v) in idx.iter().zip(vals.iter()) {
        b[i as usize] = v;
    }
}

/// Upward (forward) application of one record: `b := V b` with
/// `V = L^{-1} P S^*` restricted to `[R, S, N]`.
pub(crate) fn apply_upward<T: Scalar>(rec: &BoxElimination<T>, b: &mut [T]) {
    let mut br = gather(b, &rec.redundant);
    let bs = gather(b, &rec.skel);
    // b_R -= T^H b_S
    let mut th_bs = vec![T::ZERO; br.len()];
    rec.t.adjoint_matvec_acc_into(&bs, &mut th_bs);
    for (r, v) in br.iter_mut().zip(th_bs.iter()) {
        *r -= *v;
    }
    // b_R := L^{-1} P b_R
    rec.lu.forward_vec(&mut br);
    // b_S -= ES b_R ; b_N -= EN b_R
    let mut bs = bs;
    rec.es.matvec_sub_into(&br, &mut bs);
    let mut bn = gather(b, &rec.nbr);
    rec.en.matvec_sub_into(&br, &mut bn);
    scatter(b, &rec.redundant, &br);
    scatter(b, &rec.skel, &bs);
    scatter(b, &rec.nbr, &bn);
}

/// Downward (backward) application of one record: `b := W b` with
/// `W = P S U^{-1}`-style ordering (see Section II-D).
pub(crate) fn apply_downward<T: Scalar>(rec: &BoxElimination<T>, b: &mut [T]) {
    let mut br = gather(b, &rec.redundant);
    let bs = gather(b, &rec.skel);
    let bn = gather(b, &rec.nbr);
    // b_R -= FS b_S + FN b_N
    rec.fs.matvec_sub_into(&bs, &mut br);
    rec.fnb.matvec_sub_into(&bn, &mut br);
    // b_R := U^{-1} b_R
    rec.lu.backward_vec(&mut br);
    // b_S -= T b_R
    let mut bs = bs;
    rec.t.matvec_sub_into(&br, &mut bs);
    scatter(b, &rec.redundant, &br);
    scatter(b, &rec.skel, &bs);
}

/// Full solve: upward pass, dense top solve, downward pass.
pub(crate) fn apply_inverse<T: Scalar>(f: &Factorization<T>, b: &mut [T]) {
    assert_eq!(b.len(), f.n, "right-hand side length mismatch");
    for rec in &f.records {
        apply_upward(rec, b);
    }
    let mut top = gather(b, &f.top_idx);
    f.top_lu.solve_vec(&mut top);
    scatter(b, &f.top_idx, &top);
    for rec in f.records.iter().rev() {
        apply_downward(rec, b);
    }
}
