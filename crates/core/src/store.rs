//! The modified-interaction block store.
//!
//! The factorization reads matrix blocks between pairs of boxes. Most of
//! them are untouched kernel entries (Theorem 1 of the paper guarantees
//! this for pairs at box distance > 2), so the store only materializes
//! blocks that have actually been *modified* by Schur-complement updates —
//! everything else is evaluated from the kernel on demand against the
//! current active index sets. This mirrors the paper's "explicitly store
//! the modified interactions for every box" (Section III-C) while keeping
//! the memory footprint at O(N).

use srsf_geometry::neighbors::within_dist2;
use srsf_geometry::point::Point;
use srsf_geometry::tree::BoxId;
use srsf_kernels::kernel::Kernel;
use srsf_linalg::Mat;
use std::collections::HashMap;

/// Active (not-yet-eliminated) global point indices per box, in a fixed
/// deterministic order.
#[derive(Clone, Debug, Default)]
pub struct ActiveSets {
    map: HashMap<BoxId, Vec<u32>>,
}

impl ActiveSets {
    /// Empty set collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Active indices of a box (empty slice if unknown).
    pub fn get(&self, b: &BoxId) -> &[u32] {
        self.map.get(b).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Replace the active set of a box.
    pub fn set(&mut self, b: BoxId, ids: Vec<u32>) {
        self.map.insert(b, ids);
    }

    /// Remove all boxes at `level` (after a level transition).
    pub fn drop_level(&mut self, level: u8) {
        self.map.retain(|k, _| k.level != level);
    }

    /// Number of tracked boxes.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` if no box is tracked.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Total number of active indices across boxes at `level`.
    pub fn total_at_level(&self, level: u8) -> usize {
        self.map
            .iter()
            .filter(|(k, _)| k.level == level)
            .map(|(_, v)| v.len())
            .sum()
    }
}

/// Key of a directed pair block `A[row_box, col_box]`.
pub type PairKey = (BoxId, BoxId);

/// Block store: modified blocks plus kernel-on-miss evaluation.
pub struct BlockStore<'a, K: Kernel> {
    kernel: &'a K,
    pts: &'a [Point],
    blocks: HashMap<PairKey, Mat<K::Elem>>,
}

impl<'a, K: Kernel> BlockStore<'a, K> {
    /// New store over a kernel and its point set.
    pub fn new(kernel: &'a K, pts: &'a [Point]) -> Self {
        Self {
            kernel,
            pts,
            blocks: HashMap::new(),
        }
    }

    /// The point set.
    pub fn points(&self) -> &'a [Point] {
        self.pts
    }

    /// The kernel.
    pub fn kernel(&self) -> &'a K {
        self.kernel
    }

    /// Evaluate raw kernel entries for explicit index lists.
    pub fn eval_kernel(&self, rows: &[u32], cols: &[u32]) -> Mat<K::Elem> {
        Mat::from_fn(rows.len(), cols.len(), |i, j| {
            self.kernel
                .entry_or_diag(self.pts, rows[i] as usize, cols[j] as usize)
        })
    }

    /// `true` if the pair has a materialized (modified) block.
    pub fn contains(&self, a: &BoxId, b: &BoxId) -> bool {
        self.blocks.contains_key(&(*a, *b))
    }

    /// Number of materialized blocks.
    pub fn n_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Approximate heap bytes held by materialized blocks.
    pub fn heap_bytes(&self) -> usize {
        self.blocks.values().map(Mat::heap_bytes).sum()
    }

    /// The block `A[active(a), active(b)]`: stored version if modified,
    /// kernel evaluation otherwise.
    pub fn get(&self, a: &BoxId, b: &BoxId, act: &ActiveSets) -> Mat<K::Elem> {
        if let Some(m) = self.blocks.get(&(*a, *b)) {
            debug_assert_eq!(m.nrows(), act.get(a).len(), "stale rows for {a:?},{b:?}");
            debug_assert_eq!(m.ncols(), act.get(b).len(), "stale cols for {a:?},{b:?}");
            m.clone()
        } else {
            self.eval_kernel(act.get(a), act.get(b))
        }
    }

    /// Borrow a stored block if present.
    pub fn get_stored(&self, a: &BoxId, b: &BoxId) -> Option<&Mat<K::Elem>> {
        self.blocks.get(&(*a, *b))
    }

    /// Insert/replace the stored block of a pair.
    pub fn insert(&mut self, a: BoxId, b: BoxId, m: Mat<K::Elem>) {
        self.blocks.insert((a, b), m);
    }

    /// Remove a stored block.
    pub fn remove(&mut self, a: &BoxId, b: &BoxId) -> Option<Mat<K::Elem>> {
        self.blocks.remove(&(*a, *b))
    }

    /// `block(a,b) += delta`, materializing from the kernel first if the
    /// pair was still implicit. `delta` must match the current active sets.
    pub fn add_delta(&mut self, a: BoxId, b: BoxId, delta: &Mat<K::Elem>, act: &ActiveSets) {
        let entry = self.blocks.entry((a, b)).or_insert_with(|| {
            // Hoist the active-set lookups out of the per-entry closure.
            let rows = act.get(&a);
            let cols = act.get(&b);
            Mat::from_fn(rows.len(), cols.len(), |i, j| {
                self.kernel
                    .entry_or_diag(self.pts, rows[i] as usize, cols[j] as usize)
            })
        });
        entry.axpy(srsf_linalg::Scalar::ONE, delta);
    }

    /// After box `b` was eliminated, restrict every stored block involving
    /// `b` (excluding `(b, b)`, which the caller replaces outright) to the
    /// surviving positions `keep` of its former active set.
    pub fn shrink_box(&mut self, b: &BoxId, keep: &[usize]) {
        let all: Vec<usize> = Vec::new();
        let _ = all;
        for d in within_dist2(b) {
            if let Some(m) = self.blocks.get(&(*b, d)) {
                let cols: Vec<usize> = (0..m.ncols()).collect();
                let shrunk = m.select(keep, &cols);
                self.blocks.insert((*b, d), shrunk);
            }
            if let Some(m) = self.blocks.get(&(d, *b)) {
                let rows: Vec<usize> = (0..m.nrows()).collect();
                let shrunk = m.select(&rows, keep);
                self.blocks.insert((d, *b), shrunk);
            }
        }
    }

    /// Drop every stored block whose boxes live at `level` (after the
    /// factorization has moved past it).
    pub fn drop_level(&mut self, level: u8) {
        self.blocks.retain(|(a, _), _| a.level != level);
    }

    /// Iterate stored pairs (for fold transfers in the distributed driver).
    pub fn stored_pairs(&self) -> impl Iterator<Item = (&PairKey, &Mat<K::Elem>)> {
        self.blocks.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srsf_geometry::grid::UnitGrid;
    use srsf_kernels::laplace::LaplaceKernel;
    use srsf_linalg::norms::max_abs_diff;

    fn setup() -> (UnitGrid, LaplaceKernel, Vec<Point>) {
        let grid = UnitGrid::new(8);
        let k = LaplaceKernel::new(&grid);
        let pts = grid.points();
        (grid, k, pts)
    }

    fn bid(level: u8, ix: u32, iy: u32) -> BoxId {
        BoxId { level, ix, iy }
    }

    #[test]
    fn kernel_on_miss_matches_direct_eval() {
        let (_, k, pts) = setup();
        let store = BlockStore::new(&k, &pts);
        let mut act = ActiveSets::new();
        let a = bid(2, 0, 0);
        let b = bid(2, 3, 3);
        act.set(a, vec![0, 1, 2]);
        act.set(b, vec![60, 61]);
        let m = store.get(&a, &b, &act);
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.ncols(), 2);
        assert_eq!(m[(1, 0)], k.entry(&pts, 1, 60));
        // Diagonal folding on a self pair.
        let s = store.get(&a, &a, &act);
        assert_eq!(s[(2, 2)], k.diag(&pts, 2));
    }

    #[test]
    fn stored_block_takes_priority() {
        let (_, k, pts) = setup();
        let mut store = BlockStore::new(&k, &pts);
        let mut act = ActiveSets::new();
        let a = bid(2, 0, 0);
        let b = bid(2, 1, 0);
        act.set(a, vec![0]);
        act.set(b, vec![9]);
        let m = Mat::from_vec(1, 1, vec![123.0]);
        store.insert(a, b, m);
        assert!(store.contains(&a, &b));
        assert_eq!(store.get(&a, &b, &act)[(0, 0)], 123.0);
        assert!(!store.contains(&b, &a));
    }

    #[test]
    fn add_delta_materializes_then_accumulates() {
        let (_, k, pts) = setup();
        let mut store = BlockStore::new(&k, &pts);
        let mut act = ActiveSets::new();
        let a = bid(2, 1, 1);
        let b = bid(2, 2, 1);
        act.set(a, vec![3, 4]);
        act.set(b, vec![20, 21, 22]);
        let base = store.get(&a, &b, &act);
        let delta = Mat::from_fn(2, 3, |i, j| (i + j) as f64);
        store.add_delta(a, b, &delta, &act);
        store.add_delta(a, b, &delta, &act);
        let got = store.get(&a, &b, &act);
        let mut want = base;
        want.axpy(2.0, &delta);
        assert!(max_abs_diff(&got, &want) < 1e-15);
    }

    #[test]
    fn shrink_box_restricts_stored_pairs() {
        let (_, k, pts) = setup();
        let mut store = BlockStore::new(&k, &pts);
        let mut act = ActiveSets::new();
        let b = bid(3, 4, 4);
        let d = bid(3, 5, 4); // neighbor
        act.set(b, vec![10, 11, 12, 13]);
        act.set(d, vec![20, 21]);
        store.insert(b, d, Mat::from_fn(4, 2, |i, j| (10 * i + j) as f64));
        store.insert(d, b, Mat::from_fn(2, 4, |i, j| (100 * i + j) as f64));
        store.shrink_box(&b, &[1, 3]);
        let bd = store.get_stored(&b, &d).unwrap();
        assert_eq!(bd.nrows(), 2);
        assert_eq!(bd[(0, 0)], 10.0);
        assert_eq!(bd[(1, 1)], 31.0);
        let db = store.get_stored(&d, &b).unwrap();
        assert_eq!(db.ncols(), 2);
        assert_eq!(db[(1, 0)], 101.0);
        assert_eq!(db[(0, 1)], 3.0);
    }

    #[test]
    fn drop_level_clears_blocks_and_actives() {
        let (_, k, pts) = setup();
        let mut store = BlockStore::new(&k, &pts);
        store.insert(bid(3, 0, 0), bid(3, 1, 0), Mat::zeros(1, 1));
        store.insert(bid(2, 0, 0), bid(2, 1, 0), Mat::zeros(1, 1));
        assert_eq!(store.n_blocks(), 2);
        store.drop_level(3);
        assert_eq!(store.n_blocks(), 1);
        assert!(store.contains(&bid(2, 0, 0), &bid(2, 1, 0)));

        let mut act = ActiveSets::new();
        act.set(bid(3, 0, 0), vec![1]);
        act.set(bid(2, 0, 0), vec![2]);
        act.drop_level(3);
        assert!(act.get(&bid(3, 0, 0)).is_empty());
        assert_eq!(act.get(&bid(2, 0, 0)), &[2]);
        assert_eq!(act.total_at_level(2), 1);
    }
}
