//! The distributed driver must reproduce the sequential factorization's
//! accuracy, its solve must match the gathered factorization's solve, and
//! its communication must be neighbor-only with sane counters.

use srsf_core::distributed::{dist_factorize, dist_factorize_and_solve};
use srsf_core::{factorize, FactorOpts};
use srsf_geometry::grid::UnitGrid;
use srsf_geometry::procgrid::ProcessGrid;
use srsf_kernels::assemble::assemble_dense;
use srsf_kernels::helmholtz::HelmholtzKernel;
use srsf_kernels::laplace::LaplaceKernel;
use srsf_kernels::util::random_vector;
use srsf_linalg::{c64, DenseOp};

fn opts() -> FactorOpts {
    FactorOpts {
        tol: 1e-8,
        leaf_size: 16,
        ..FactorOpts::default()
    }
}

#[test]
fn dist_p4_matches_sequential_accuracy() {
    let grid = UnitGrid::new(32); // N = 1024, leaf level 3
    let kernel = LaplaceKernel::new(&grid);
    let pts = grid.points();
    let pg = ProcessGrid::new(4);
    let (f, stats) = dist_factorize(&kernel, &pts, &pg, &opts()).expect("dist factorization");
    assert_eq!(f.n(), 1024);

    let a = DenseOp::new(assemble_dense(&kernel, &pts));
    let b = random_vector::<f64>(1024, 42);
    let x = f.solve(&b);
    let r = srsf_linalg::relative_residual(&a, &x, &b);
    assert!(r < 1e-5, "distributed relres {r:.3e}");

    // Sequential reference: same accuracy class.
    let fs = factorize(&kernel, &pts, &opts()).unwrap();
    let xs = fs.solve(&b);
    let rs = srsf_linalg::relative_residual(&a, &xs, &b);
    assert!(r < rs * 50.0 + 1e-7, "dist {r:.3e} vs seq {rs:.3e}");

    // Communication happened, on every rank.
    assert_eq!(stats.per_rank.len(), 4);
    for (rank, s) in stats.per_rank.iter().enumerate() {
        assert!(s.msgs_sent > 0, "rank {rank} sent nothing");
    }
    // Rank 0 receives the gathers, so ranks 1..3 send more data.
    assert!(stats.total_words() > 0);
}

#[test]
fn dist_p16_with_fold_matches_accuracy() {
    let grid = UnitGrid::new(32); // leaf level 3: 8x8 boxes, 2x2 per rank
    let kernel = LaplaceKernel::new(&grid);
    let pts = grid.points();
    let pg = ProcessGrid::new(16);
    // Folding exercised: level 3 uses all 16 ranks, level 2 folds to 4...
    let (f, stats) = dist_factorize(&kernel, &pts, &pg, &opts()).expect("dist factorization");
    let a = DenseOp::new(assemble_dense(&kernel, &pts));
    let b = random_vector::<f64>(1024, 17);
    let x = f.solve(&b);
    let r = srsf_linalg::relative_residual(&a, &x, &b);
    assert!(r < 1e-5, "p=16 relres {r:.3e}");
    assert_eq!(stats.per_rank.len(), 16);
}

#[test]
fn dist_solve_matches_gathered_solve() {
    let grid = UnitGrid::new(32);
    let kernel = LaplaceKernel::new(&grid);
    let pts = grid.points();
    let pg = ProcessGrid::new(4);
    let b = random_vector::<f64>(1024, 5);
    let (f, _, x_dist) =
        dist_factorize_and_solve(&kernel, &pts, &pg, &opts(), Some(&b)).expect("factorize+solve");
    let x_dist = x_dist.expect("solution returned");
    let x_gathered = f.solve(&b);
    let diff = srsf_linalg::vecops::rel_diff(&x_dist, &x_gathered);
    assert!(diff < 1e-10, "distributed solve diverges: {diff:.3e}");
}

#[test]
fn dist_helmholtz_complex_path() {
    let grid = UnitGrid::new(32);
    let kernel = HelmholtzKernel::new(&grid, 10.0);
    let pts = grid.points();
    let pg = ProcessGrid::new(4);
    let b = random_vector::<c64>(1024, 3);
    let (f, _, x_dist) =
        dist_factorize_and_solve(&kernel, &pts, &pg, &opts(), Some(&b)).expect("helmholtz dist");
    let a = DenseOp::new(assemble_dense(&kernel, &pts));
    let x = x_dist.expect("solution");
    let r = srsf_linalg::relative_residual(&a, &x, &b);
    assert!(r < 1e-5, "helmholtz dist relres {r:.3e}");
    let diff = srsf_linalg::vecops::rel_diff(&x, &f.solve(&b));
    assert!(diff < 1e-10, "dist vs gathered: {diff:.3e}");
}

#[test]
fn single_rank_world_reduces_to_sequential() {
    let grid = UnitGrid::new(16);
    let kernel = LaplaceKernel::new(&grid);
    let pts = grid.points();
    let pg = ProcessGrid::new(1);
    let o = FactorOpts {
        tol: 1e-8,
        leaf_size: 16,
        min_compress_level: 2,
        ..FactorOpts::default()
    };
    let (f, stats) = dist_factorize(&kernel, &pts, &pg, &o).unwrap();
    let fs = factorize(&kernel, &pts, &o).unwrap();
    let b = random_vector::<f64>(256, 9);
    let diff = srsf_linalg::vecops::rel_diff(&f.solve(&b), &fs.solve(&b));
    assert!(diff < 1e-12, "p=1 must match sequential: {diff:.3e}");
    // No point-to-point traffic on a single rank.
    assert_eq!(stats.total_msgs(), 0);
}
