//! The distributed driver must reproduce the sequential factorization's
//! accuracy, its solve must match the gathered factorization's solve, and
//! its communication must be neighbor-only with sane counters.

use srsf_core::{Driver, FactorOpts, Solver};
use srsf_geometry::grid::UnitGrid;
use srsf_kernels::assemble::assemble_dense;
use srsf_kernels::helmholtz::HelmholtzKernel;
use srsf_kernels::laplace::LaplaceKernel;
use srsf_kernels::util::random_vector;
use srsf_linalg::{c64, DenseOp};

fn opts() -> FactorOpts {
    FactorOpts::default().with_tol(1e-8).with_leaf_size(16)
}

#[test]
fn dist_p4_matches_sequential_accuracy() {
    let grid = UnitGrid::new(32); // N = 1024, leaf level 3
    let kernel = LaplaceKernel::new(&grid);
    let pts = grid.points();
    let f = Solver::builder(&kernel, &pts)
        .opts(opts())
        .driver(Driver::distributed(4))
        .build()
        .expect("dist factorization");
    assert_eq!(f.n(), 1024);

    let a = DenseOp::new(assemble_dense(&kernel, &pts));
    let b = random_vector::<f64>(1024, 42);
    let x = f.solve(&b);
    let r = srsf_linalg::relative_residual(&a, &x, &b);
    assert!(r < 1e-5, "distributed relres {r:.3e}");

    // Sequential reference: same accuracy class.
    let fs = Solver::builder(&kernel, &pts).opts(opts()).build().unwrap();
    let xs = fs.solve(&b);
    let rs = srsf_linalg::relative_residual(&a, &xs, &b);
    assert!(r < rs * 50.0 + 1e-7, "dist {r:.3e} vs seq {rs:.3e}");

    // Communication happened, on every rank.
    let stats = f.comm_stats().expect("distributed comm stats");
    assert_eq!(stats.per_rank.len(), 4);
    for (rank, s) in stats.per_rank.iter().enumerate() {
        assert!(s.msgs_sent > 0, "rank {rank} sent nothing");
    }
    // Rank 0 receives the gathers, so ranks 1..3 send more data.
    assert!(stats.total_words() > 0);
}

#[test]
fn dist_p16_with_fold_matches_accuracy() {
    let grid = UnitGrid::new(32); // leaf level 3: 8x8 boxes, 2x2 per rank
    let kernel = LaplaceKernel::new(&grid);
    let pts = grid.points();
    // Folding exercised: level 3 uses all 16 ranks, level 2 folds to 4...
    let f = Solver::builder(&kernel, &pts)
        .opts(opts())
        .driver(Driver::distributed(16))
        .build()
        .expect("dist factorization");
    let a = DenseOp::new(assemble_dense(&kernel, &pts));
    let b = random_vector::<f64>(1024, 17);
    let x = f.solve(&b);
    let r = srsf_linalg::relative_residual(&a, &x, &b);
    assert!(r < 1e-5, "p=16 relres {r:.3e}");
    assert_eq!(f.comm_stats().unwrap().per_rank.len(), 16);
}

#[test]
fn dist_solve_matches_gathered_solve() {
    let grid = UnitGrid::new(32);
    let kernel = LaplaceKernel::new(&grid);
    let pts = grid.points();
    let b = random_vector::<f64>(1024, 5);
    let (f, x_dist) = Solver::builder(&kernel, &pts)
        .opts(opts())
        .driver(Driver::distributed(4))
        .build_with_solution(&b)
        .expect("factorize+solve");
    let x_gathered = f.solve(&b);
    let diff = srsf_linalg::vecops::rel_diff(&x_dist, &x_gathered);
    assert!(diff < 1e-10, "distributed solve diverges: {diff:.3e}");
}

#[test]
fn dist_helmholtz_complex_path() {
    let grid = UnitGrid::new(32);
    let kernel = HelmholtzKernel::new(&grid, 10.0);
    let pts = grid.points();
    let b = random_vector::<c64>(1024, 3);
    let (f, x) = Solver::builder(&kernel, &pts)
        .opts(opts())
        .driver(Driver::distributed(4))
        .build_with_solution(&b)
        .expect("helmholtz dist");
    let a = DenseOp::new(assemble_dense(&kernel, &pts));
    let r = srsf_linalg::relative_residual(&a, &x, &b);
    assert!(r < 1e-5, "helmholtz dist relres {r:.3e}");
    let diff = srsf_linalg::vecops::rel_diff(&x, &f.solve(&b));
    assert!(diff < 1e-10, "dist vs gathered: {diff:.3e}");
}

#[test]
fn single_rank_world_matches_colored_schedule() {
    // A rank eliminates its phase boxes in four box-color sub-rounds
    // (that is what makes `rank_threads` bit-deterministic), so a 1-rank
    // world runs the colored driver's schedule, not the sequential
    // row-major sweep — the drivers still agree at the compression
    // tolerance (see solver_api::driver_equivalence_on_one_laplace_problem),
    // but the near-machine-precision reference is the colored driver.
    let grid = UnitGrid::new(16);
    let kernel = LaplaceKernel::new(&grid);
    let pts = grid.points();
    let o = FactorOpts::default()
        .with_tol(1e-8)
        .with_leaf_size(16)
        .with_min_compress_level(2);
    let f = Solver::builder(&kernel, &pts)
        .opts(o.clone())
        .driver(Driver::distributed(1))
        .build()
        .unwrap();
    let fc = Solver::builder(&kernel, &pts)
        .opts(o)
        .driver(Driver::colored(1))
        .build()
        .unwrap();
    let b = random_vector::<f64>(256, 9);
    let diff = srsf_linalg::vecops::rel_diff(&f.solve(&b), &fc.solve(&b));
    assert!(
        diff < 1e-12,
        "p=1 must match the colored driver: {diff:.3e}"
    );
    // No point-to-point traffic on a single rank.
    assert_eq!(f.comm_stats().unwrap().total_msgs(), 0);
}
