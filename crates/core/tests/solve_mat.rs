//! The blocked multi-RHS solve path and the color-scheduled threaded
//! apply: `solve_mat` must agree column-for-column with repeated single
//! `solve` calls across scalar types and all three drivers, and the
//! threaded apply must be bit-identical to the serial blocked apply for
//! any thread count.

use srsf_core::colored::ColorScheme;
use srsf_core::{Driver, FactorOpts, Factorized, Solver, SrsfError};
use srsf_geometry::grid::UnitGrid;
use srsf_geometry::point::Point;
use srsf_kernels::helmholtz::HelmholtzKernel;
use srsf_kernels::kernel::Kernel;
use srsf_kernels::laplace::LaplaceKernel;
use srsf_kernels::util::random_vector;
use srsf_linalg::{c64, Mat, Scalar};

fn opts() -> FactorOpts {
    FactorOpts::default().with_tol(1e-8).with_leaf_size(16)
}

/// Deterministic random `n x nrhs` block, column seeds derived from `seed`.
fn rhs_mat<T: Scalar>(n: usize, nrhs: usize, seed: u64) -> Mat<T> {
    let mut m = Mat::zeros(n, nrhs);
    for j in 0..nrhs {
        m.col_mut(j)
            .copy_from_slice(&random_vector::<T>(n, seed + j as u64));
    }
    m
}

fn drivers() -> Vec<Driver> {
    vec![
        Driver::Sequential,
        Driver::Colored {
            scheme: ColorScheme::Four,
            threads: 2,
        },
        Driver::Colored {
            scheme: ColorScheme::Nine,
            threads: 3,
        },
        Driver::distributed(4),
    ]
}

/// `solve_mat` column `j` must match `solve(col j)` up to roundoff (the
/// blocked path reorders the floating-point work but applies the same
/// operators).
fn assert_solve_mat_matches<T: Scalar, K: Kernel<Elem = T>>(
    kernel: &K,
    pts: &[Point],
    driver: Driver,
    nrhs_cases: &[usize],
) {
    let f = Solver::builder(kernel, pts)
        .opts(opts())
        .driver(driver)
        .build()
        .unwrap();
    for &nrhs in nrhs_cases {
        let b = rhs_mat::<T>(pts.len(), nrhs, 17);
        let x = f.solve_mat(&b);
        assert_eq!(x.nrows(), pts.len());
        assert_eq!(x.ncols(), nrhs);
        for j in 0..nrhs {
            let xj = f.solve(b.col(j));
            let scale = xj.iter().map(|v| v.abs()).fold(1.0f64, f64::max);
            for (got, want) in x.col(j).iter().zip(xj.iter()) {
                let diff = (*got - *want).abs();
                assert!(
                    diff <= 1e-10 * scale,
                    "driver {driver:?} nrhs {nrhs} col {j}: diff {diff:.3e} (scale {scale:.3e})"
                );
            }
        }
    }
}

#[test]
fn solve_mat_matches_repeated_solve_f64() {
    let grid = UnitGrid::new(16);
    let kernel = LaplaceKernel::new(&grid);
    let pts = grid.points();
    for driver in drivers() {
        assert_solve_mat_matches::<f64, _>(&kernel, &pts, driver, &[0, 1, 7, 64]);
    }
}

#[test]
fn solve_mat_matches_repeated_solve_c64() {
    let grid = UnitGrid::new(16);
    let kernel = HelmholtzKernel::new(&grid, 12.0);
    let pts = grid.points();
    for driver in drivers() {
        assert_solve_mat_matches::<c64, _>(&kernel, &pts, driver, &[0, 1, 7]);
    }
}

#[test]
fn trait_object_mat_solve_agrees_with_concrete() {
    // The `Factorized` default (column-by-column) and the blocked
    // override must agree to roundoff through the trait object.
    let grid = UnitGrid::new(16);
    let kernel = LaplaceKernel::new(&grid);
    let pts = grid.points();
    let f = Solver::builder(&kernel, &pts).opts(opts()).build().unwrap();
    let b = rhs_mat::<f64>(pts.len(), 5, 3);
    let via_trait = {
        let d: &dyn Factorized<f64> = &f;
        d.solve_mat(&b)
    };
    let concrete = f.factorization().solve_mat(&b);
    for j in 0..5 {
        for (p, q) in via_trait.col(j).iter().zip(concrete.col(j).iter()) {
            assert!((p - q).abs() <= 1e-10 * q.abs().max(1.0));
        }
    }
}

#[test]
fn threaded_apply_bit_identical_to_serial() {
    let grid = UnitGrid::new(32);
    let kernel = LaplaceKernel::new(&grid);
    let pts = grid.points();
    // All stamp layouts: color rounds (Four and Nine) and the
    // sequential driver's row-major stream (short runs, still exact).
    let builds = vec![
        Driver::Sequential,
        Driver::Colored {
            scheme: ColorScheme::Four,
            threads: 2,
        },
        Driver::Colored {
            scheme: ColorScheme::Nine,
            threads: 2,
        },
    ];
    for driver in builds {
        let f = Solver::builder(&kernel, &pts)
            .opts(opts())
            .driver(driver)
            .build()
            .unwrap();
        let b = rhs_mat::<f64>(pts.len(), 4, 99);
        let mut serial = b.clone();
        f.apply_inverse_mat(&mut serial);
        for threads in [1usize, 2, 3, 8] {
            let mut par = b.clone();
            f.apply_inverse_mat_threaded(&mut par, threads);
            assert_eq!(serial, par, "driver {driver:?}, {threads} threads");
        }
        // Single-vector threaded wrapper matches the nrhs=1 blocked path.
        let mut v1 = b.col(0).to_vec();
        f.apply_inverse_threaded(&mut v1, 4);
        let mut m1 = Mat::from_vec(pts.len(), 1, b.col(0).to_vec());
        f.apply_inverse_mat(&mut m1);
        assert_eq!(v1.as_slice(), m1.as_slice(), "driver {driver:?} vec path");
    }
}

/// A rank-one "kernel": every interaction is 1, so any top block larger
/// than 1 x 1 is exactly singular.
struct OnesKernel;

impl Kernel for OnesKernel {
    type Elem = f64;
    fn entry(&self, _pts: &[Point], _i: usize, _j: usize) -> f64 {
        1.0
    }
    fn diag(&self, _pts: &[Point], _i: usize) -> f64 {
        1.0
    }
    fn proxy_row(&self, _pts: &[Point], _y: Point, _j: usize) -> f64 {
        1.0
    }
    fn proxy_col(&self, _pts: &[Point], _i: usize, _y: Point) -> f64 {
        1.0
    }
}

#[test]
fn singular_top_is_reported_as_such() {
    // Four points in one leaf box with no compression levels: the whole
    // matrix becomes the dense top block, which is rank one. The error
    // must name the top system, not blame an innocent box.
    let pts = vec![
        Point { x: 0.1, y: 0.1 },
        Point { x: 0.9, y: 0.1 },
        Point { x: 0.1, y: 0.9 },
        Point { x: 0.9, y: 0.9 },
    ];
    let err = Solver::builder(&OnesKernel, &pts)
        .leaf_size(64)
        .build()
        .unwrap_err();
    match err {
        SrsfError::SingularTop { size, step } => {
            assert_eq!(size, 4);
            assert!(step >= 1, "rank-one system must survive step 0");
        }
        other => panic!("expected SingularTop, got {other:?}"),
    }
}
