//! The unified `Solver` builder API: defaults, error paths, and
//! driver equivalence.

use srsf_core::{Driver, FactorOpts, Factorized, Solver, SrsfError};
use srsf_geometry::grid::UnitGrid;
use srsf_geometry::procgrid::ProcessGrid;
use srsf_kernels::laplace::LaplaceKernel;
use srsf_kernels::util::random_vector;
use srsf_linalg::vecops::rel_diff;

#[test]
fn builder_defaults_match_factor_opts_default() {
    // Building with no setters must be identical to passing
    // `FactorOpts::default()` explicitly — bitwise, since the sequential
    // driver is deterministic.
    let grid = UnitGrid::new(32);
    let kernel = LaplaceKernel::new(&grid);
    let pts = grid.points();
    let b = random_vector::<f64>(grid.n(), 4);

    let f_bare = Solver::builder(&kernel, &pts).build().unwrap();
    let f_opts = Solver::builder(&kernel, &pts)
        .opts(FactorOpts::default())
        .build()
        .unwrap();
    assert_eq!(f_bare.solve(&b), f_opts.solve(&b));
    assert_eq!(f_bare.n_records(), f_opts.n_records());
    assert_eq!(f_bare.top_size(), f_opts.top_size());

    // And the individual setters must agree with the equivalent opts.
    let d = FactorOpts::default();
    let f_setters = Solver::builder(&kernel, &pts)
        .tol(d.tol)
        .leaf_size(d.leaf_size)
        .proxy_radius_factor(d.proxy_radius_factor)
        .n_proxy_min(d.n_proxy_min)
        .proxy_osc_factor(d.proxy_osc_factor)
        .min_compress_level(d.min_compress_level)
        .build()
        .unwrap();
    assert_eq!(f_bare.solve(&b), f_setters.solve(&b));
}

#[test]
fn empty_point_set_is_an_error_not_a_panic() {
    let grid = UnitGrid::new(8);
    let kernel = LaplaceKernel::new(&grid);
    let err = Solver::builder(&kernel, &[]).build().unwrap_err();
    assert_eq!(err, SrsfError::EmptyPointSet);
}

#[test]
fn non_positive_tolerance_is_an_error() {
    let grid = UnitGrid::new(8);
    let kernel = LaplaceKernel::new(&grid);
    let pts = grid.points();
    for tol in [0.0, -1e-6, f64::NAN, f64::INFINITY] {
        let err = Solver::builder(&kernel, &pts).tol(tol).build().unwrap_err();
        match err {
            SrsfError::InvalidTolerance { tol: t } => {
                assert!(t.is_nan() == tol.is_nan() && (t.is_nan() || t == tol))
            }
            other => panic!("expected InvalidTolerance, got {other:?}"),
        }
    }
}

#[test]
fn zero_leaf_size_is_an_error() {
    let grid = UnitGrid::new(8);
    let kernel = LaplaceKernel::new(&grid);
    let pts = grid.points();
    let err = Solver::builder(&kernel, &pts)
        .leaf_size(0)
        .build()
        .unwrap_err();
    assert_eq!(err, SrsfError::InvalidLeafSize);
}

#[test]
fn zero_threads_is_an_error() {
    let grid = UnitGrid::new(8);
    let kernel = LaplaceKernel::new(&grid);
    let pts = grid.points();
    let err = Solver::builder(&kernel, &pts)
        .driver(Driver::Colored {
            scheme: srsf_core::colored::ColorScheme::Four,
            threads: 0,
        })
        .build()
        .unwrap_err();
    assert_eq!(err, SrsfError::InvalidThreadCount);
}

#[test]
fn non_power_of_four_process_count_is_an_error() {
    assert_eq!(
        Driver::try_distributed(8).unwrap_err(),
        SrsfError::InvalidProcessCount { p: 8 }
    );
    assert!(Driver::try_distributed(16).is_ok());
    assert_eq!(Driver::try_distributed(4).unwrap(), Driver::distributed(4));
}

#[test]
fn oversized_process_grid_is_an_error_not_a_panic() {
    // 16x16 points with leaf_size 16 -> leaf level 2 (4x4 = 16 leaf
    // boxes). A 16-rank grid would leave ranks without a 2x2 leaf block.
    let grid = UnitGrid::new(16);
    let kernel = LaplaceKernel::new(&grid);
    let pts = grid.points();
    let err = Solver::builder(&kernel, &pts)
        .leaf_size(16)
        .driver(Driver::Distributed {
            grid: ProcessGrid::new(16),
        })
        .build()
        .unwrap_err();
    match err {
        SrsfError::GridTooLarge { p, leaf_boxes } => {
            assert_eq!(p, 16);
            assert_eq!(leaf_boxes, 16);
        }
        other => panic!("expected GridTooLarge, got {other:?}"),
    }
    // A 4-rank grid on the same tree is fine.
    assert!(Solver::builder(&kernel, &pts)
        .leaf_size(16)
        .driver(Driver::distributed(4))
        .build()
        .is_ok());
}

#[test]
fn mismatched_rhs_length_is_an_error() {
    let grid = UnitGrid::new(8);
    let kernel = LaplaceKernel::new(&grid);
    let pts = grid.points();
    let err = Solver::builder(&kernel, &pts)
        .build_with_solution(&[1.0; 3])
        .unwrap_err();
    assert_eq!(
        err,
        SrsfError::RhsLength {
            expected: 64,
            got: 3
        }
    );
    // The fallible solve entry points return the same typed error
    // instead of hitting the infallible path's length assert.
    let s = Solver::builder(&kernel, &pts).build().unwrap();
    assert_eq!(
        s.try_solve(&[1.0; 3]).unwrap_err(),
        SrsfError::RhsLength {
            expected: 64,
            got: 3
        }
    );
    assert_eq!(
        s.try_solve_mat(&srsf_linalg::Mat::zeros(3, 2)).unwrap_err(),
        SrsfError::RhsLength {
            expected: 64,
            got: 3
        }
    );
}

#[test]
fn errors_display_and_propagate() {
    let e = SrsfError::GridTooLarge {
        p: 64,
        leaf_boxes: 16,
    };
    let msg = e.to_string();
    assert!(msg.contains("64") && msg.contains("16"), "{msg}");
    let boxed: Box<dyn std::error::Error> = Box::new(e);
    assert!(!boxed.to_string().is_empty());
}

/// The three drivers must agree to within the ID tolerance on the same
/// Laplace problem, consumed through the shared `Factorized` interface.
#[test]
fn driver_equivalence_on_one_laplace_problem() {
    let grid = UnitGrid::new(32);
    let kernel = LaplaceKernel::new(&grid);
    let pts = grid.points();
    let b = random_vector::<f64>(grid.n(), 12);
    let tol = 1e-8;

    let build = |driver: Driver| {
        Solver::builder(&kernel, &pts)
            .tol(tol)
            .leaf_size(16)
            .driver(driver)
            .build()
            .unwrap_or_else(|e| panic!("{driver:?}: {e}"))
    };
    let seq = build(Driver::Sequential);
    let col = build(Driver::colored(2));
    let dist = build(Driver::distributed(4));

    let x_seq = Factorized::solve(&seq, &b);
    let x_col = Factorized::solve(&col, &b);
    let x_dist = Factorized::solve(&dist, &b);
    // Same factorization, different schedules: solutions agree to within
    // the compression tolerance (amplified by conditioning head-room).
    let dc = rel_diff(&x_col, &x_seq);
    let dd = rel_diff(&x_dist, &x_seq);
    assert!(dc < 1e3 * tol, "colored vs sequential: {dc:.3e}");
    assert!(dd < 1e3 * tol, "distributed vs sequential: {dd:.3e}");
}

/// Each driver owns exactly one threading lever; the others are rejected
/// with a typed error naming the supported knob instead of being
/// silently ignored (`gemm_threads` used to be a no-op under the colored
/// and distributed drivers).
#[test]
fn mismatched_threading_knobs_are_typed_errors() {
    let grid = UnitGrid::new(8);
    let kernel = LaplaceKernel::new(&grid);
    let pts = grid.points();

    // gemm_threads is sequential-only: both parallel drivers reject it.
    for (driver, name) in [
        (Driver::colored(2), "colored"),
        (Driver::distributed(1), "distributed"),
    ] {
        let err = Solver::builder(&kernel, &pts)
            .driver(driver)
            .gemm_threads(2)
            .build()
            .unwrap_err();
        match err {
            SrsfError::UnsupportedOption { option, driver, .. } => {
                assert_eq!((option, driver), ("gemm_threads", name));
            }
            other => panic!("expected UnsupportedOption for {name}, got {other:?}"),
        }
        // `0` (auto-detect) is just as unsupported as an explicit count.
        assert!(Solver::builder(&kernel, &pts)
            .driver(driver)
            .gemm_threads(0)
            .build()
            .is_err());
    }

    // rank_threads is distributed-only: the local drivers reject it...
    for (driver, name) in [
        (Driver::Sequential, "sequential"),
        (Driver::colored(2), "colored"),
    ] {
        let err = Solver::builder(&kernel, &pts)
            .driver(driver)
            .rank_threads(2)
            .build()
            .unwrap_err();
        match err {
            SrsfError::UnsupportedOption { option, driver, .. } => {
                assert_eq!((option, driver), ("rank_threads", name));
            }
            other => panic!("expected UnsupportedOption for {name}, got {other:?}"),
        }
    }
    // ... and the distributed driver needs at least one worker.
    let err = Solver::builder(&kernel, &pts)
        .driver(Driver::distributed(1))
        .rank_threads(0)
        .build()
        .unwrap_err();
    assert_eq!(err, SrsfError::InvalidThreadCount);

    // The supported combinations still build.
    assert!(Solver::builder(&kernel, &pts)
        .driver(Driver::distributed(1))
        .rank_threads(2)
        .build()
        .is_ok());
    assert!(Solver::builder(&kernel, &pts)
        .gemm_threads(2)
        .build()
        .is_ok());
}

#[test]
fn gemm_threads_knob_does_not_change_results() {
    let grid = UnitGrid::new(32);
    let kernel = LaplaceKernel::new(&grid);
    let pts = grid.points();
    let b = random_vector::<f64>(grid.n(), 5);

    let serial = Solver::builder(&kernel, &pts)
        .tol(1e-7)
        .leaf_size(16)
        .build()
        .unwrap();
    // The threaded GEMM splits only over output columns, so per-column
    // arithmetic is unchanged; a thread budget must not alter the result.
    let threaded = Solver::builder(&kernel, &pts)
        .tol(1e-7)
        .leaf_size(16)
        .gemm_threads(3)
        .build()
        .unwrap();
    // The budget is restored after the build: no leak into this thread.
    assert_eq!(srsf_linalg::gemm_threads(), 1);

    let xs = serial.solve(&b);
    let xt = threaded.solve(&b);
    assert!(
        rel_diff(&xt, &xs) < 1e-12,
        "thread budget changed the result"
    );

    // `0` (auto-detect) is also accepted.
    let auto = Solver::builder(&kernel, &pts)
        .tol(1e-7)
        .leaf_size(16)
        .gemm_threads(0)
        .build()
        .unwrap();
    assert!(rel_diff(&auto.solve(&b), &xs) < 1e-12);
}
