//! The box-colored shared-memory driver (the paper's Table VI reference)
//! must be thread-count deterministic and as accurate as sequential.

use srsf_core::colored::ColorScheme;
use srsf_core::{Driver, FactorOpts, Solver};
use srsf_geometry::grid::UnitGrid;
use srsf_kernels::assemble::assemble_dense;
use srsf_kernels::laplace::LaplaceKernel;
use srsf_kernels::util::random_vector;
use srsf_linalg::DenseOp;

fn opts() -> FactorOpts {
    FactorOpts::default().with_tol(1e-8).with_leaf_size(16)
}

fn colored(
    kernel: &LaplaceKernel,
    pts: &[srsf_geometry::point::Point],
    scheme: ColorScheme,
    threads: usize,
) -> Solver<f64> {
    Solver::builder(kernel, pts)
        .opts(opts())
        .driver(Driver::Colored { scheme, threads })
        .build()
        .unwrap()
}

#[test]
fn colored_four_accuracy() {
    let grid = UnitGrid::new(32);
    let kernel = LaplaceKernel::new(&grid);
    let pts = grid.points();
    let f = colored(&kernel, &pts, ColorScheme::Four, 2);
    let a = DenseOp::new(assemble_dense(&kernel, &pts));
    let b = random_vector::<f64>(1024, 21);
    let r = srsf_linalg::relative_residual(&a, &f.solve(&b), &b);
    assert!(r < 1e-5, "colored relres {r:.3e}");
}

#[test]
fn colored_deterministic_across_thread_counts() {
    // Snapshot-read + fixed-order merge makes the factorization bitwise
    // independent of the number of worker threads.
    let grid = UnitGrid::new(32);
    let kernel = LaplaceKernel::new(&grid);
    let pts = grid.points();
    let b = random_vector::<f64>(1024, 8);
    let f1 = colored(&kernel, &pts, ColorScheme::Four, 1);
    let f4 = colored(&kernel, &pts, ColorScheme::Four, 4);
    let x1 = f1.solve(&b);
    let x4 = f4.solve(&b);
    assert_eq!(x1, x4, "thread count changed the factorization");
}

#[test]
fn nine_coloring_matches_four_accuracy() {
    let grid = UnitGrid::new(32);
    let kernel = LaplaceKernel::new(&grid);
    let pts = grid.points();
    let b = random_vector::<f64>(1024, 2);
    let a = DenseOp::new(assemble_dense(&kernel, &pts));
    let f4 = colored(&kernel, &pts, ColorScheme::Four, 2);
    let f9 = colored(&kernel, &pts, ColorScheme::Nine, 2);
    let r4 = srsf_linalg::relative_residual(&a, &f4.solve(&b), &b);
    let r9 = srsf_linalg::relative_residual(&a, &f9.solve(&b), &b);
    assert!(r4 < 1e-5 && r9 < 1e-5, "four {r4:.3e}, nine {r9:.3e}");
}

#[test]
fn colored_vs_sequential_same_accuracy_class() {
    let grid = UnitGrid::new(32);
    let kernel = LaplaceKernel::new(&grid);
    let pts = grid.points();
    let b = random_vector::<f64>(1024, 33);
    let a = DenseOp::new(assemble_dense(&kernel, &pts));
    let fs = Solver::builder(&kernel, &pts).opts(opts()).build().unwrap();
    let fc = colored(&kernel, &pts, ColorScheme::Four, 2);
    let rs = srsf_linalg::relative_residual(&a, &fs.solve(&b), &b);
    let rc = srsf_linalg::relative_residual(&a, &fc.solve(&b), &b);
    assert!(
        rc < rs * 50.0 + 1e-7,
        "colored {rc:.3e} vs sequential {rs:.3e}"
    );
}
