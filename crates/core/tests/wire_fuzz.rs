//! Fuzz + property tests for the factorization [`Wire`] encodings in
//! `srsf_core::wire` — the frames that cross a process boundary on the
//! TCP transport (worker result frames, record gathers).
//!
//! Mirrors `crates/runtime/tests/codec_fuzz.rs`: every decoder must be
//! *total* over adversarial bytes (random streams, truncations,
//! bit flips) — returning `CodecError` rather than panicking or sizing
//! an allocation from a corrupt length — and decode must invert encode.
//! Miri-compatible; iteration counts shrink under the interpreter.

use srsf_core::elimination::{BoxElimination, FactorError};
use srsf_core::sequential::Factorization;
use srsf_core::wire::ScalarVec;
use srsf_core::FactorStats;
use srsf_geometry::tree::BoxId;
use srsf_linalg::{c64, Lu, Mat, Scalar};
use srsf_runtime::codec::{ByteReader, ByteWriter, CodecError, Wire};
use srsf_runtime::{Histogram, Span, TraceReport};
use std::panic::{catch_unwind, AssertUnwindSafe};

const fn iters(full: usize, miri: usize) -> usize {
    if cfg!(miri) {
        miri
    } else {
        full
    }
}

/// xorshift64* — same tiny PRNG as the runtime codec fuzz suite.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
    fn bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| self.next() as u8).collect()
    }
    fn finite_f64(&mut self) -> f64 {
        f64::from_bits(self.next() & 0x7FEF_FFFF_FFFF_FFFF) // clear sign+inf/nan space
    }
}

fn decode_total<T: Wire>(name: &str, bytes: &[u8]) -> Result<T, CodecError> {
    let owned = bytes.to_vec();
    catch_unwind(AssertUnwindSafe(move || {
        T::decode(&mut ByteReader::new(owned))
    }))
    .unwrap_or_else(|_| {
        panic!(
            "decoding {name} panicked instead of returning CodecError; payload = {:02x?}",
            bytes
        )
    })
}

/// Totality sweep: random streams, then strict prefixes and bit flips of
/// the valid encodings produced by `sample`.
fn fuzz_type<T: Wire>(name: &str, seed: u64, mut sample: impl FnMut(&mut Rng) -> Vec<u8>) {
    let mut rng = Rng::new(seed);
    for _ in 0..iters(1500, 16) {
        let len = rng.below(129);
        let payload = rng.bytes(len);
        let _ = decode_total::<T>(name, &payload);
    }
    for _ in 0..iters(32, 3) {
        let valid = sample(&mut rng);
        let step = if cfg!(miri) { 16 } else { 1 };
        for cut in (0..valid.len()).step_by(step) {
            let _ = decode_total::<T>(name, &valid[..cut]);
        }
        if !valid.is_empty() {
            for _ in 0..iters(24, 2) {
                let mut bent = valid.clone();
                let at = rng.below(bent.len());
                bent[at] ^= 1 << rng.below(8);
                let _ = decode_total::<T>(name, &bent);
            }
        }
    }
}

/// Round trip via bytes: `encode(decode(valid)) == valid`. This works
/// even for types whose fields are crate-private (e.g.
/// [`Factorization`]), because the valid frame is hand-assembled from
/// the documented wire layout rather than from a constructed value.
fn byte_round_trip<T: Wire>(name: &str, seed: u64, mut sample: impl FnMut(&mut Rng) -> Vec<u8>) {
    let mut rng = Rng::new(seed);
    for _ in 0..iters(64, 4) {
        let valid = sample(&mut rng);
        let x = T::from_bytes(valid.clone())
            .unwrap_or_else(|e| panic!("{name}: valid frame failed to decode: {e}"));
        assert_eq!(
            x.to_bytes(),
            valid,
            "{name}: re-encoding a decoded frame changed the bytes"
        );
    }
}

// ---- frame generators (documented wire layout) -------------------------

fn gen_box_id(rng: &mut Rng) -> BoxId {
    BoxId {
        level: rng.below(12) as u8,
        ix: rng.below(1 << 12) as u32,
        iy: rng.below(1 << 12) as u32,
    }
}

fn gen_record<T: Scalar>(rng: &mut Rng, v: impl Fn(&mut Rng) -> T) -> BoxElimination<T> {
    let nr = rng.below(4);
    let ns = rng.below(4);
    let nn = rng.below(5);
    let mat = |rng: &mut Rng, m: usize, n: usize| {
        let vals: Vec<T> = (0..m * n).map(|_| v(rng)).collect();
        Mat::from_vec(m, n, vals)
    };
    let t = mat(rng, ns, nr);
    let lu = Lu {
        lu: mat(rng, nr, nr),
        piv: (0..nr).map(|_| rng.below(nr.max(1))).collect(),
    };
    BoxElimination {
        box_id: gen_box_id(rng),
        level: rng.below(12) as u8,
        color: rng.below(4) as u8,
        redundant: (0..nr).map(|_| rng.next() as u32).collect(),
        skel: (0..ns).map(|_| rng.next() as u32).collect(),
        nbr: (0..nn).map(|_| rng.next() as u32).collect(),
        es: mat(rng, nr, ns),
        en: mat(rng, nr, nn),
        fs: mat(rng, ns, nr),
        fnb: mat(rng, nn, nr),
        t,
        lu,
    }
}

fn gen_stats(rng: &mut Rng) -> FactorStats {
    let mut s = FactorStats::new(rng.below(1 << 20), rng.below(12) as u8);
    for _ in 0..rng.below(5) {
        s.ranks
            .insert(rng.below(12) as u8, (rng.below(100), rng.below(10_000)));
    }
    s.eliminate_s = rng.finite_f64();
    s.merge_s = rng.finite_f64();
    s.top_s = rng.finite_f64();
    s.total_s = rng.finite_f64();
    s.solve_s = rng.finite_f64();
    s.top_size = rng.below(1 << 16);
    s.record_bytes = rng.below(1 << 30);
    s.peak_store_bytes = rng.below(1 << 30);
    s.compression.sketch_retries = rng.below(1 << 10) as u64;
    s.compression.sketch_fallbacks = rng.below(1 << 10) as u64;
    s.compression.fft_block_applies = rng.below(1 << 20) as u64;
    s.compression.dense_block_applies = rng.below(1 << 20) as u64;
    s
}

fn gen_error(rng: &mut Rng) -> FactorError {
    if rng.next() & 1 == 0 {
        FactorError::SingularDiagonal {
            box_id: gen_box_id(rng),
        }
    } else {
        FactorError::SingularTop {
            size: rng.below(1 << 16),
            step: rng.below(1 << 16),
        }
    }
}

fn gen_span(rng: &mut Rng) -> Span {
    let name: String = (0..rng.below(12))
        .map(|_| (b'a' + rng.below(26) as u8) as char)
        .collect();
    Span {
        cat: rng.below(5) as u8,
        name,
        tid: rng.next() as u32,
        start_ns: rng.next(),
        dur_ns: rng.next(),
        bytes: rng.next(),
    }
}

fn gen_trace_report(rng: &mut Rng) -> TraceReport {
    TraceReport {
        rank: rng.next() as u32,
        dropped: rng.next(),
        spans: (0..rng.below(4)).map(|_| gen_span(rng)).collect(),
    }
}

fn gen_histogram(rng: &mut Rng) -> Histogram {
    let mut h = Histogram::new();
    for _ in 0..rng.below(16) {
        h.record(rng.next() >> rng.below(64));
    }
    h
}

/// Hand-assemble a valid `Factorization<f64>` frame from the documented
/// layout: `n, Vec<BoxElimination>, top ids, top Lu, FactorStats`.
fn gen_factorization_frame(rng: &mut Rng) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(rng.below(1 << 20) as u64);
    let records: Vec<BoxElimination<f64>> = (0..rng.below(3))
        .map(|_| gen_record(rng, Rng::finite_f64))
        .collect();
    records.encode(&mut w);
    let top_n = rng.below(4);
    w.put_u64(top_n as u64);
    for _ in 0..top_n {
        w.put_u64(rng.next() & 0xFFFF_FFFF);
    }
    let top_lu = Lu::<f64> {
        lu: Mat::from_vec(
            top_n,
            top_n,
            (0..top_n * top_n).map(|i| i as f64 + 1.0).collect(),
        ),
        piv: (0..top_n).collect(),
    };
    top_lu.encode(&mut w);
    gen_stats(rng).encode(&mut w);
    w.finish()
}

// ---- totality ----------------------------------------------------------

#[test]
fn scalar_vec_decode_is_total() {
    fuzz_type::<ScalarVec<f64>>("ScalarVec<f64>", 71, |r| {
        let n = r.below(6);
        ScalarVec((0..n).map(|_| r.finite_f64()).collect::<Vec<f64>>()).to_bytes()
    });
}

#[test]
fn factor_error_decode_is_total() {
    fuzz_type::<FactorError>("FactorError", 72, |r| gen_error(r).to_bytes());
}

#[test]
fn record_decode_is_total() {
    fuzz_type::<BoxElimination<f64>>("BoxElimination<f64>", 73, |r| {
        gen_record(r, Rng::finite_f64).to_bytes()
    });
    fuzz_type::<BoxElimination<c64>>("BoxElimination<c64>", 74, |r| {
        gen_record(r, |r| c64::new(r.finite_f64(), r.finite_f64())).to_bytes()
    });
}

#[test]
fn stats_decode_is_total() {
    fuzz_type::<FactorStats>("FactorStats", 75, |r| gen_stats(r).to_bytes());
}

#[test]
fn factorization_decode_is_total() {
    fuzz_type::<Factorization<f64>>("Factorization<f64>", 76, gen_factorization_frame);
}

/// Worker result frames are `Result<(CommStats-ish payload), FactorError>`
/// shaped at the transport layer; here the inner error path must stay
/// total too when nested in the generic containers.
#[test]
fn nested_result_frames_are_total() {
    fuzz_type::<Result<ScalarVec<f64>, FactorError>>("Result<ScalarVec,FactorError>", 77, |r| {
        let v: Result<ScalarVec<f64>, FactorError> = if r.next() & 1 == 0 {
            Ok(ScalarVec((0..r.below(5)).map(|_| r.finite_f64()).collect()))
        } else {
            Err(gen_error(r))
        };
        v.to_bytes()
    });
}

/// Trace reports cross the wire on worker result frames and on the
/// `KIND_TRACE` serve round; histograms cross inside metrics snapshots.
/// Both decoders narrow u64 fields (rank, tid, category, bucket count)
/// and must reject out-of-range values rather than truncate or panic.
#[test]
fn trace_report_decode_is_total() {
    fuzz_type::<Span>("Span", 78, |r| gen_span(r).to_bytes());
    fuzz_type::<TraceReport>("TraceReport", 79, |r| gen_trace_report(r).to_bytes());
    fuzz_type::<Histogram>("Histogram", 80, |r| gen_histogram(r).to_bytes());
}

// ---- round trips -------------------------------------------------------

#[test]
fn factor_error_round_trip() {
    let mut rng = Rng::new(81);
    for _ in 0..iters(256, 8) {
        let e = gen_error(&mut rng);
        let back = FactorError::from_bytes(e.to_bytes()).expect("decode");
        match (&e, &back) {
            (
                FactorError::SingularDiagonal { box_id: a },
                FactorError::SingularDiagonal { box_id: b },
            ) => assert_eq!(a, b),
            (
                FactorError::SingularTop { size: s1, step: t1 },
                FactorError::SingularTop { size: s2, step: t2 },
            ) => assert_eq!((s1, t1), (s2, t2)),
            _ => panic!("variant changed across the wire"),
        }
    }
}

#[test]
fn record_round_trip_bytes() {
    byte_round_trip::<BoxElimination<f64>>("BoxElimination<f64>", 82, |r| {
        gen_record(r, Rng::finite_f64).to_bytes()
    });
    byte_round_trip::<BoxElimination<c64>>("BoxElimination<c64>", 83, |r| {
        gen_record(r, |r| c64::new(r.finite_f64(), r.finite_f64())).to_bytes()
    });
}

#[test]
fn stats_round_trip_bytes() {
    byte_round_trip::<FactorStats>("FactorStats", 84, |r| gen_stats(r).to_bytes());
}

/// `Factorization::decode` normalizes the derived stats fields
/// (`top_size`, `record_bytes`) from the actual payload via
/// `from_parts`, so raw byte equality only holds after one
/// decode/encode normalization pass: the round trip must be idempotent
/// from then on.
#[test]
fn factorization_round_trip_bytes() {
    let mut rng = Rng::new(85);
    for _ in 0..iters(64, 4) {
        let frame = gen_factorization_frame(&mut rng);
        let normalized = Factorization::<f64>::from_bytes(frame)
            .expect("valid frame decodes")
            .to_bytes();
        let again = Factorization::<f64>::from_bytes(normalized.clone())
            .expect("normalized frame decodes")
            .to_bytes();
        assert_eq!(
            again, normalized,
            "Factorization<f64>: decode/encode is not idempotent"
        );
    }
}

#[test]
fn trace_report_round_trip_bytes() {
    byte_round_trip::<Span>("Span", 87, |r| gen_span(r).to_bytes());
    byte_round_trip::<TraceReport>("TraceReport", 88, |r| gen_trace_report(r).to_bytes());
    byte_round_trip::<Histogram>("Histogram", 89, |r| gen_histogram(r).to_bytes());
    // Value round trip too — every field is public plain data.
    let mut rng = Rng::new(90);
    for _ in 0..iters(128, 8) {
        let rep = gen_trace_report(&mut rng);
        assert_eq!(
            rep,
            TraceReport::from_bytes(rep.to_bytes()).expect("decode")
        );
        let h = gen_histogram(&mut rng);
        assert_eq!(h, Histogram::from_bytes(h.to_bytes()).expect("decode"));
    }
}

#[test]
fn scalar_vec_round_trip() {
    let mut rng = Rng::new(86);
    for _ in 0..iters(256, 8) {
        let v: Vec<f64> = (0..rng.below(9)).map(|_| rng.finite_f64()).collect();
        let back = ScalarVec::<f64>::from_bytes(ScalarVec(v.clone()).to_bytes()).expect("decode");
        assert_eq!(back.0, v);
    }
}

// ---- checkpoint container ----------------------------------------------

fn ckpt_path(name: &str) -> std::path::PathBuf {
    std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name)
}

/// `Factorization::save`/`load` round-trips through the versioned,
/// CRC-checked container: the loaded object re-encodes to the same bytes
/// as the saved one.
#[test]
#[cfg_attr(miri, ignore = "file I/O is outside Miri's isolation")]
fn factorization_save_load_round_trip() {
    let mut rng = Rng::new(91);
    let path = ckpt_path("wire_fuzz_roundtrip.ckpt");
    for _ in 0..iters(16, 0) {
        let f = Factorization::<f64>::from_bytes(gen_factorization_frame(&mut rng))
            .expect("valid frame decodes");
        f.save(&path).expect("save");
        let back = Factorization::<f64>::load(&path).expect("load");
        assert_eq!(
            back.to_bytes(),
            f.to_bytes(),
            "save/load round trip changed the factorization bytes"
        );
    }
}

/// Container rejection matrix: truncation at every prefix length, a bit
/// flip at every byte (header fields *and* CRC-guarded payload), a
/// corrupted magic, a future version, a mismatched scalar tag, and a
/// lying payload length must all surface as `SrsfError::Checkpoint` —
/// validated from the 40-byte header before any decode allocation, and
/// never a panic.
#[test]
#[cfg_attr(miri, ignore = "file I/O is outside Miri's isolation")]
fn checkpoint_container_rejects_corruption() {
    use srsf_core::SrsfError;

    let mut rng = Rng::new(92);
    let f = Factorization::<f64>::from_bytes(gen_factorization_frame(&mut rng))
        .expect("valid frame decodes");
    let good = ckpt_path("wire_fuzz_good.ckpt");
    f.save(&good).expect("save");
    let bytes = std::fs::read(&good).expect("read back");
    let bad = ckpt_path("wire_fuzz_bad.ckpt");

    let expect_rejected = |bytes: &[u8], what: &str| {
        std::fs::write(&bad, bytes).expect("write corrupted file");
        let res = catch_unwind(AssertUnwindSafe(|| Factorization::<f64>::load(&bad)))
            .unwrap_or_else(|_| panic!("{what}: load panicked instead of returning Checkpoint"));
        match res {
            Err(SrsfError::Checkpoint { .. }) => {}
            Err(e) => panic!("{what}: expected Checkpoint error, got {e}"),
            Ok(_) => panic!("{what}: corrupted container decoded successfully"),
        }
    };

    // Every strict prefix is a truncation (header-short or payload-short).
    let step = (bytes.len() / 64).max(1);
    for cut in (0..bytes.len()).step_by(step) {
        expect_rejected(&bytes[..cut], &format!("truncation at {cut}"));
    }
    // A flip anywhere breaks magic, version, tag, length, CRC, or payload.
    for _ in 0..iters(64, 0) {
        let mut bent = bytes.clone();
        let at = rng.below(bent.len());
        bent[at] ^= 1 << rng.below(8);
        expect_rejected(&bent, &format!("bit flip at {at}"));
    }
    // Targeted header corruption: magic, version, scalar tag, length.
    let mut bent = bytes.clone();
    bent[0..8].copy_from_slice(b"NOTSRSF!");
    expect_rejected(&bent, "bad magic");
    let mut bent = bytes.clone();
    bent[8..16].copy_from_slice(&99u64.to_le_bytes());
    expect_rejected(&bent, "future version");
    let mut bent = bytes.clone();
    bent[16..24].copy_from_slice(&16u64.to_le_bytes()); // claims c64
    expect_rejected(&bent, "scalar tag mismatch");
    let mut bent = bytes.clone();
    bent[24..32].copy_from_slice(&u64::MAX.to_le_bytes());
    expect_rejected(&bent, "length field lies");

    // The scalar tag also rejects a well-formed file of the other type.
    std::fs::write(&bad, &bytes).expect("copy good file");
    match Factorization::<c64>::load(&bad) {
        Err(SrsfError::Checkpoint { .. }) => {}
        Err(e) => panic!("cross-scalar load: expected Checkpoint error, got {e}"),
        Ok(_) => panic!("an f64 snapshot decoded as c64"),
    }
}
