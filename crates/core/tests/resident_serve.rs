//! Resident-vs-gathered equivalence: a solver built with
//! `.resident(true)` must serve repeated `solve`/`solve_mat` calls from
//! the live rank world with **bit-identical** results to the gathered
//! factorization's local blocked sweeps, while rank 0 never assembles the
//! global record set.
//!
//! Bit-reference note: the acceptance reference is the *serial blocked
//! sweep* (`Factorization::solve_mat`) of the same distributed
//! factorization — the path residency replaces. (The sequential *driver*
//! eliminates boxes in a different order, so its records differ in bits
//! from any distributed factorization — gathered or resident — by
//! construction; equivalence to it is asserted in the accuracy class, as
//! the existing distributed tests do.) The resident vector `solve` is the
//! one-column case of the blocked sweep and is compared against exactly
//! that.

use srsf_core::{Driver, FactorOpts, Solver};
use srsf_geometry::grid::UnitGrid;
use srsf_kernels::helmholtz::HelmholtzKernel;
use srsf_kernels::kernel::Kernel;
use srsf_kernels::laplace::LaplaceKernel;
use srsf_kernels::util::random_vector;
use srsf_linalg::{c64, Mat, Scalar};
use srsf_runtime::{set_tcp_child_args, Transport};

fn opts() -> FactorOpts {
    FactorOpts::default().with_tol(1e-8).with_leaf_size(16)
}

fn random_mat<T: Scalar>(n: usize, nrhs: usize, seed: u64) -> Mat<T> {
    let mut m = Mat::zeros(n, nrhs);
    for j in 0..nrhs {
        m.col_mut(j)
            .copy_from_slice(&random_vector::<T>(n, seed + j as u64));
    }
    m
}

fn assert_mat_bits<T: Scalar>(a: &Mat<T>, b: &Mat<T>, what: &str) {
    assert_eq!((a.nrows(), a.ncols()), (b.nrows(), b.ncols()), "{what}");
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice().iter()).enumerate() {
        assert_eq!(x.re(), y.re(), "{what}: entry {i} differs");
        assert_eq!(x.im(), y.im(), "{what}: entry {i} differs");
    }
}

/// Factor once in both modes, then serve repeated solves from the
/// resident world and compare against the gathered object's local sweeps.
fn assert_resident_equivalent<K: Kernel>(
    kernel: &K,
    pts: &[srsf_geometry::point::Point],
    p: usize,
    transport: Transport,
) {
    let resident = Solver::builder(kernel, pts)
        .opts(opts())
        .driver(Driver::distributed(p))
        .transport(transport)
        .resident(true)
        .build()
        .expect("resident build");
    let gathered = Solver::builder(kernel, pts)
        .opts(opts())
        .driver(Driver::distributed(p))
        .build()
        .expect("gathered build");

    // The residency probe: rank 0 never assembles the global record set.
    let per_rank = resident
        .records_per_rank()
        .expect("resident solver reports per-rank records")
        .to_vec();
    assert!(resident.is_resident());
    assert!(resident.try_factorization().is_none());
    assert_eq!(per_rank.len(), p);
    assert_eq!(
        per_rank.iter().sum::<usize>(),
        gathered.n_records(),
        "p={p}: the union of resident records is the gathered record set"
    );
    if p > 1 {
        assert!(
            per_rank[0] < gathered.n_records(),
            "p={p}: rank 0 must not hold the global record set \
             ({} of {} records)",
            per_rank[0],
            gathered.n_records()
        );
        // (Individual ranks may legitimately hold zero records — e.g. a
        // rank whose leaf boxes compress to nothing — so only the
        // distribution, not per-rank positivity, is asserted.)
        assert!(
            per_rank.iter().filter(|&&n| n > 0).count() > 1,
            "p={p}: records are not distributed"
        );
        // Per-rank peak memory stays a fraction of the gathered object.
        let max_rank = resident.memory_bytes_max_rank().expect("per-rank bytes");
        assert!(
            max_rank < gathered.memory_bytes(),
            "p={p}: max rank {} bytes vs gathered {}",
            max_rank,
            gathered.memory_bytes()
        );
    }
    assert_eq!(resident.n_records(), gathered.n_records());
    assert_eq!(resident.top_size(), gathered.top_size());
    assert_eq!(
        resident.stats().rank_table(),
        gathered.stats().rank_table(),
        "p={p}: merged rank table"
    );
    // Factorization-phase counters are mode-independent: residency
    // changes where records live, not what Algorithm 2 ships.
    let rc = resident.comm_stats().expect("resident comm");
    let gc = gathered.comm_stats().expect("gathered comm");
    for rank in 0..p {
        assert_eq!(
            (rc.per_rank[rank].msgs_sent, rc.per_rank[rank].words_sent),
            (gc.per_rank[rank].msgs_sent, gc.per_rank[rank].words_sent),
            "p={p}: rank {rank} factorization counters differ across modes"
        );
    }

    // Factor once, serve repeatedly: blocked multi-RHS ...
    for nrhs in [1usize, 7, 64] {
        let b = random_mat::<K::Elem>(pts.len(), nrhs, 1000 + nrhs as u64);
        let want = gathered.solve_mat(&b);
        for rep in 0..2 {
            let got = resident.solve_mat(&b);
            assert_mat_bits(&got, &want, &format!("p={p} nrhs={nrhs} rep={rep}"));
        }
    }
    // ... and single vectors (the one-column case of the blocked sweep).
    let b = random_vector::<K::Elem>(pts.len(), 77);
    let want = gathered.solve_mat(&Mat::from_vec(b.len(), 1, b.clone()));
    for rep in 0..3 {
        let got = resident.solve(&b);
        assert_eq!(got.len(), b.len());
        for (i, (x, y)) in got.iter().zip(want.as_slice().iter()).enumerate() {
            assert_eq!(x.re(), y.re(), "p={p} rep={rep}: vector entry {i}");
            assert_eq!(x.im(), y.im(), "p={p} rep={rep}: vector entry {i}");
        }
    }
    // Accuracy-class sanity against the vector sweep (different kernel
    // path, so close-not-bitwise).
    let xv = gathered.solve(&b);
    let diff = srsf_linalg::vecops::rel_diff(&resident.solve(&b), &xv);
    assert!(diff < 1e-10, "p={p}: blocked vs vector sweep diff {diff:e}");

    // Explicit shutdown returns the session counters once.
    let final_stats = resident.shutdown().expect("first shutdown");
    assert_eq!(final_stats.per_rank.len(), p);
    assert!(resident.shutdown().is_none(), "shutdown is idempotent");
}

#[test]
fn resident_matches_gathered_bitwise_p1() {
    let grid = UnitGrid::new(32);
    let kernel = LaplaceKernel::new(&grid);
    assert_resident_equivalent(&kernel, &grid.points(), 1, Transport::InProc);
}

#[test]
fn resident_matches_gathered_bitwise_p4() {
    let grid = UnitGrid::new(32);
    let kernel = LaplaceKernel::new(&grid);
    assert_resident_equivalent(&kernel, &grid.points(), 4, Transport::InProc);
}

#[test]
fn resident_matches_gathered_bitwise_p16_fold() {
    // Leaf level 3: 16 ranks at the leaf, folding 16 -> 4 -> 1.
    let grid = UnitGrid::new(32);
    let kernel = LaplaceKernel::new(&grid);
    assert_resident_equivalent(&kernel, &grid.points(), 16, Transport::InProc);
}

#[test]
fn resident_matches_gathered_bitwise_helmholtz_c64_p4() {
    let grid = UnitGrid::new(32);
    let kernel = HelmholtzKernel::new(&grid, 20.0);
    assert_resident_equivalent(&kernel, &grid.points(), 4, Transport::InProc);
    let _ = c64::ZERO;
}

/// The acceptance case: resident `solve_mat` over real OS processes,
/// nrhs = 16, p = 4, N = 1024 — bit-identical to the in-process resident
/// world and to the gathered blocked sweep.
#[test]
fn resident_tcp_matches_inproc_and_gathered_p4_nrhs16() {
    set_tcp_child_args(Some(vec![
        "resident_tcp_matches_inproc_and_gathered_p4_nrhs16".into(),
        "--exact".into(),
    ]));
    let grid = UnitGrid::new(32); // N = 1024
    let kernel = LaplaceKernel::new(&grid);
    let pts = grid.points();
    // TCP first: spawned workers must exit inside this session.
    let tcp = Solver::builder(&kernel, &pts)
        .opts(opts())
        .driver(Driver::distributed(4))
        .transport(Transport::Tcp)
        .resident(true)
        .build()
        .expect("tcp resident build");

    let b = random_mat::<f64>(pts.len(), 16, 42);
    let before = tcp.resident_comm_probe().expect("probe");
    let x_tcp_1 = tcp.solve_mat(&b);
    let mid = tcp.resident_comm_probe().expect("probe");
    let x_tcp_2 = tcp.solve_mat(&b);
    let x_tcp_3 = tcp.solve_mat(&b);
    let after = tcp.resident_comm_probe().expect("probe");
    assert_mat_bits(&x_tcp_2, &x_tcp_1, "tcp repeat 2");
    assert_mat_bits(&x_tcp_3, &x_tcp_1, "tcp repeat 3");

    // Per-solve counters are exact and repeatable: the two-solve window
    // moves exactly twice the one-solve window, on every rank.
    for rank in 0..4 {
        let one = (
            mid.per_rank[rank].msgs_sent - before.per_rank[rank].msgs_sent,
            mid.per_rank[rank].words_sent - before.per_rank[rank].words_sent,
        );
        let two = (
            after.per_rank[rank].msgs_sent - mid.per_rank[rank].msgs_sent,
            after.per_rank[rank].words_sent - mid.per_rank[rank].words_sent,
        );
        assert_eq!(two, (2 * one.0, 2 * one.1), "rank {rank} per-solve delta");
        if rank != 0 {
            assert!(one.0 > 0, "rank {rank} moved no solve messages");
        }
    }

    let inproc = Solver::builder(&kernel, &pts)
        .opts(opts())
        .driver(Driver::distributed(4))
        .resident(true)
        .build()
        .expect("inproc resident build");
    let gathered = Solver::builder(&kernel, &pts)
        .opts(opts())
        .driver(Driver::distributed(4))
        .build()
        .expect("gathered build");
    let x_in = inproc.solve_mat(&b);
    let x_gat = gathered.solve_mat(&b);
    assert_mat_bits(&x_tcp_1, &x_in, "tcp vs inproc resident");
    assert_mat_bits(&x_tcp_1, &x_gat, "tcp resident vs gathered sweep");

    // Per-solve counters are backend-invariant, like every other counter.
    let in_before = inproc.resident_comm_probe().expect("probe");
    let _ = inproc.solve_mat(&b);
    let in_after = inproc.resident_comm_probe().expect("probe");
    for rank in 0..4 {
        assert_eq!(
            in_after.per_rank[rank].msgs_sent - in_before.per_rank[rank].msgs_sent,
            mid.per_rank[rank].msgs_sent - before.per_rank[rank].msgs_sent,
            "rank {rank} per-solve msgs differ across transports"
        );
        assert_eq!(
            in_after.per_rank[rank].words_sent - in_before.per_rank[rank].words_sent,
            mid.per_rank[rank].words_sent - before.per_rank[rank].words_sent,
            "rank {rank} per-solve words differ across transports"
        );
    }

    // Tag-based shutdown: clean on both; drop (inproc/gathered) is
    // exercised implicitly at scope exit.
    let stats = tcp.shutdown().expect("tcp shutdown");
    assert_eq!(stats.per_rank.len(), 4);
}

/// Dropping a resident solver without an explicit shutdown must tear the
/// world down cleanly (no hang, no leaked workers) — the Drop path
/// broadcasts the shutdown command and joins the workers.
#[test]
fn dropping_a_resident_solver_shuts_the_world_down() {
    let grid = UnitGrid::new(32);
    let kernel = LaplaceKernel::new(&grid);
    let pts = grid.points();
    let solver = Solver::builder(&kernel, &pts)
        .opts(opts())
        .driver(Driver::distributed(4))
        .resident(true)
        .build()
        .expect("resident build");
    let b = random_vector::<f64>(pts.len(), 5);
    let _ = solver.solve(&b);
    drop(solver);
    // Reaching here without hanging is the assertion; build another
    // resident world to show the slate is clean.
    let again = Solver::builder(&kernel, &pts)
        .opts(opts())
        .driver(Driver::distributed(4))
        .resident(true)
        .build()
        .expect("second resident build");
    let _ = again.solve(&b);
}

/// `build_with_solution` in residency mode solves on the resident world.
#[test]
fn resident_build_with_solution_matches_serving() {
    let grid = UnitGrid::new(32);
    let kernel = LaplaceKernel::new(&grid);
    let pts = grid.points();
    let b = random_vector::<f64>(pts.len(), 9);
    let (solver, x) = Solver::builder(&kernel, &pts)
        .opts(opts())
        .driver(Driver::distributed(4))
        .resident(true)
        .build_with_solution(&b)
        .expect("resident build+solve");
    let again = solver.solve(&b);
    assert_eq!(x, again, "served solve repeats the build-time solution");
}
