//! The fault matrix: deterministic fault injection against the resident
//! serving stack.
//!
//! Two claims are asserted, matching the transport contract:
//!
//! * **Recoverable faults are invisible.** Seeded delay / drop-with-
//!   redelivery / duplication plans reorder and repeat frame deliveries
//!   but never lose one, and the matching-queue sequence dedup restores
//!   the exact logical stream — so the factorization, every solve, *and
//!   the per-rank communication counters* are bit-identical to the
//!   fault-free run, on both transports.
//! * **Unrecoverable faults are typed, bounded, and clean.** A rank
//!   crash or a permanent link cut surfaces as
//!   `SrsfError::RankFailed{rank, step}` within the configured receive
//!   timeout — never a hang, never an abort — the degraded service fails
//!   later calls fast with the same error, and shutdown/Drop still reap
//!   every surviving worker.
//!
//! Plus the recovery story: a resident build that persisted per-rank
//! snapshots (`checkpoint_dir`) is rebuilt by `Solver::restore_resident`
//! and serves bit-identical solutions — including after a crash killed
//! the original world.

use srsf_core::{Driver, FactorOpts, Solver, SrsfError};
use srsf_geometry::grid::UnitGrid;
use srsf_kernels::laplace::LaplaceKernel;
use srsf_kernels::util::random_vector;
use srsf_linalg::{Mat, Scalar};
use srsf_runtime::{set_tcp_child_args, FaultPlan, Transport};
use std::time::{Duration, Instant};

fn opts() -> FactorOpts {
    FactorOpts::default()
        .with_tol(1e-8)
        .with_leaf_size(16)
        .with_recv_timeout(Duration::from_secs(5))
}

fn random_mat<T: Scalar>(n: usize, nrhs: usize, seed: u64) -> Mat<T> {
    let mut m = Mat::zeros(n, nrhs);
    for j in 0..nrhs {
        m.col_mut(j)
            .copy_from_slice(&random_vector::<T>(n, seed + j as u64));
    }
    m
}

fn assert_mat_bits<T: Scalar>(a: &Mat<T>, b: &Mat<T>, what: &str) {
    assert_eq!((a.nrows(), a.ncols()), (b.nrows(), b.ncols()), "{what}");
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice().iter()).enumerate() {
        assert_eq!(x.re(), y.re(), "{what}: entry {i} differs");
        assert_eq!(x.im(), y.im(), "{what}: entry {i} differs");
    }
}

fn resident(
    kernel: &LaplaceKernel,
    pts: &[srsf_geometry::point::Point],
    p: usize,
    transport: Transport,
) -> Solver<f64> {
    Solver::builder(kernel, pts)
        .opts(opts())
        .driver(Driver::distributed(p))
        .transport(transport)
        .resident(true)
        .build()
        .expect("resident build")
}

/// The recoverable plans: each perturbs delivery timing/multiplicity but
/// loses nothing, so each must be bit-invisible end to end.
fn recoverable_plans() -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("delay", FaultPlan::seeded(7).with_max_delay_us(200)),
        (
            "drop+redeliver",
            FaultPlan::seeded(11)
                .with_drop_permille(120)
                .with_max_delay_us(50),
        ),
        ("duplicate", FaultPlan::seeded(13).with_dup_permille(150)),
        (
            "all-of-the-above",
            FaultPlan::seeded(17)
                .with_max_delay_us(100)
                .with_drop_permille(60)
                .with_dup_permille(60),
        ),
    ]
}

/// Recoverable plans x p in {1, 4} on the in-process backend: solutions
/// and per-rank counters (factorization and per-solve) bit-identical to
/// the fault-free world.
#[test]
fn recoverable_faults_are_bit_invisible_inproc() {
    let grid = UnitGrid::new(32);
    let kernel = LaplaceKernel::new(&grid);
    let pts = grid.points();
    for p in [1usize, 4] {
        let clean = resident(&kernel, &pts, p, Transport::InProc);
        let b = random_mat::<f64>(pts.len(), 5, 400 + p as u64);
        let want = clean.solve_mat(&b);
        let clean_factor = clean.comm_stats().expect("comm").clone();
        let pre = clean.resident_comm_probe().expect("probe");
        let _ = clean.solve_mat(&b);
        let post = clean.resident_comm_probe().expect("probe");

        for (name, plan) in recoverable_plans() {
            let faulty = resident(&kernel, &pts, p, Transport::InProc.with_faults(plan));
            let fc = faulty.comm_stats().expect("comm").clone();
            for rank in 0..p {
                assert_eq!(
                    (fc.per_rank[rank].msgs_sent, fc.per_rank[rank].words_sent),
                    (
                        clean_factor.per_rank[rank].msgs_sent,
                        clean_factor.per_rank[rank].words_sent
                    ),
                    "p={p} plan={name}: rank {rank} factorization counters drifted"
                );
            }
            let got = faulty.solve_mat(&b);
            assert_mat_bits(&got, &want, &format!("p={p} plan={name} solve 1"));
            let fpre = faulty.resident_comm_probe().expect("probe");
            let got2 = faulty.solve_mat(&b);
            let fpost = faulty.resident_comm_probe().expect("probe");
            assert_mat_bits(&got2, &want, &format!("p={p} plan={name} solve 2"));
            for rank in 0..p {
                assert_eq!(
                    (
                        fpost.per_rank[rank].msgs_sent - fpre.per_rank[rank].msgs_sent,
                        fpost.per_rank[rank].words_sent - fpre.per_rank[rank].words_sent
                    ),
                    (
                        post.per_rank[rank].msgs_sent - pre.per_rank[rank].msgs_sent,
                        post.per_rank[rank].words_sent - pre.per_rank[rank].words_sent
                    ),
                    "p={p} plan={name}: rank {rank} per-solve counters drifted"
                );
            }
        }
    }
}

/// The combined recoverable plan over real OS processes: same bits as
/// the fault-free in-process world.
#[test]
fn recoverable_faults_are_bit_invisible_tcp_p4() {
    set_tcp_child_args(Some(vec![
        "recoverable_faults_are_bit_invisible_tcp_p4".into(),
        "--exact".into(),
    ]));
    let grid = UnitGrid::new(32);
    let kernel = LaplaceKernel::new(&grid);
    let pts = grid.points();
    let plan = FaultPlan::seeded(23)
        .with_max_delay_us(100)
        .with_drop_permille(60)
        .with_dup_permille(60);
    // TCP first: spawned workers must exit inside this session.
    let faulty = resident(&kernel, &pts, 4, Transport::Tcp.with_faults(plan));
    let b = random_mat::<f64>(pts.len(), 4, 900);
    let got = faulty.solve_mat(&b);
    let fc = faulty.comm_stats().expect("comm").clone();
    faulty.shutdown().expect("tcp shutdown");

    let clean = resident(&kernel, &pts, 4, Transport::InProc);
    let want = clean.solve_mat(&b);
    assert_mat_bits(&got, &want, "tcp faulty vs inproc clean");
    let cc = clean.comm_stats().expect("comm");
    for rank in 0..4 {
        assert_eq!(
            (fc.per_rank[rank].msgs_sent, fc.per_rank[rank].words_sent),
            (cc.per_rank[rank].msgs_sent, cc.per_rank[rank].words_sent),
            "rank {rank} factorization counters drifted under faults"
        );
    }
}

/// A worker crash mid-solve surfaces as a typed `RankFailed` naming the
/// dead rank, within the receive timeout; the poisoned service fails
/// later solves fast with the same error; Drop reaps the survivors; and
/// a fresh world builds cleanly afterwards.
#[test]
fn crash_mid_solve_is_typed_bounded_and_droppable_inproc() {
    let grid = UnitGrid::new(32);
    let kernel = LaplaceKernel::new(&grid);
    let pts = grid.points();
    // The resident factor phase is barrier-free, so a crash at barrier 1
    // fires during the *first solve's* first level barrier: the build
    // succeeds, the serve degrades.
    let plan = FaultPlan::seeded(3).with_crash(2, 1);
    let solver = resident(&kernel, &pts, 4, Transport::InProc.with_faults(plan));
    let b = random_vector::<f64>(pts.len(), 5);

    let t0 = Instant::now();
    let err = solver
        .try_solve(&b)
        .expect_err("a crashed rank must fail the solve");
    assert!(
        t0.elapsed() < Duration::from_secs(30),
        "failure detection took {:?} — not bounded",
        t0.elapsed()
    );
    match &err {
        SrsfError::RankFailed { rank, step } => {
            assert_eq!(*rank, 2, "wrong rank blamed: {err}");
            assert!(!step.is_empty(), "step must name where it died");
        }
        other => panic!("expected RankFailed, got {other}"),
    }

    // Poisoned: the same typed error, immediately — no second timeout.
    let t1 = Instant::now();
    let err2 = solver.try_solve(&b).expect_err("poisoned service");
    assert_eq!(err2, err, "poisoned service must repeat the failure");
    assert!(
        t1.elapsed() < Duration::from_secs(1),
        "fail-fast took {:?}",
        t1.elapsed()
    );

    // Degraded-but-droppable: no hang, no panic, and the slate is clean.
    drop(solver);
    let again = resident(&kernel, &pts, 4, Transport::InProc);
    let _ = again.solve(&b);
}

/// A permanently cut link during factorization fails the build with a
/// typed `RankFailed` within the receive timeout instead of hanging.
#[test]
fn cut_link_fails_the_build_typed_and_bounded() {
    let grid = UnitGrid::new(32);
    let kernel = LaplaceKernel::new(&grid);
    let pts = grid.points();
    let plan = FaultPlan::seeded(5).with_cut(1, 3, 0);
    let t0 = Instant::now();
    let Err(err) = Solver::builder(&kernel, &pts)
        .opts(opts())
        .driver(Driver::distributed(4))
        .transport(Transport::InProc.with_faults(plan))
        .resident(true)
        .build()
    else {
        panic!("a cut world cannot factor");
    };
    assert!(
        t0.elapsed() < Duration::from_secs(45),
        "cut detection took {:?} — not bounded by the receive timeout",
        t0.elapsed()
    );
    assert!(
        matches!(err, SrsfError::RankFailed { .. }),
        "expected RankFailed, got {err}"
    );
}

/// Checkpoint round trip on the in-process backend: a restored world
/// serves bit-identical solutions without re-factorizing, and a restore
/// against the wrong point set is rejected up front.
#[test]
fn checkpoint_restore_serves_bit_identical_solutions() {
    let dir = std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("ckpt_roundtrip");
    let grid = UnitGrid::new(32);
    let kernel = LaplaceKernel::new(&grid);
    let pts = grid.points();
    let original = Solver::builder(&kernel, &pts)
        .opts(opts())
        .driver(Driver::distributed(4))
        .resident(true)
        .checkpoint_dir(&dir)
        .build()
        .expect("checkpointed build");
    let b = random_mat::<f64>(pts.len(), 6, 777);
    let want = original.solve_mat(&b);
    let records = original
        .records_per_rank()
        .expect("per-rank records")
        .to_vec();
    original.shutdown().expect("shutdown");

    let restored = Solver::restore_resident(&pts, &dir, Transport::InProc).expect("restore");
    assert!(restored.is_resident());
    assert_eq!(
        restored.records_per_rank().expect("per-rank records"),
        &records[..],
        "restored record distribution differs"
    );
    for rep in 0..2 {
        let got = restored.try_solve_mat(&b).expect("restored solve");
        assert_mat_bits(&got, &want, &format!("restored solve rep={rep}"));
    }
    let bv = random_vector::<f64>(pts.len(), 31);
    let want_v = original_reference_vector(&kernel, &pts, &bv);
    let got_v = restored.try_solve(&bv).expect("restored vector solve");
    assert_eq!(
        got_v, want_v,
        "restored vector solve differs from gathered sweep"
    );
    restored.shutdown().expect("restored shutdown");

    // The geometry hash pins the exact point set: one perturbed
    // coordinate must be rejected before any world is spun up.
    let mut wrong = pts.clone();
    wrong[0].x += 1e-9;
    let Err(err) = Solver::<f64>::restore_resident(&wrong, &dir, Transport::InProc) else {
        panic!("perturbed geometry must be rejected");
    };
    assert!(
        matches!(err, SrsfError::Checkpoint { .. }),
        "expected Checkpoint error, got {err}"
    );
}

/// The gathered blocked sweep is the bit-reference for resident solves;
/// its one-column case references restored vector solves too.
fn original_reference_vector(
    kernel: &LaplaceKernel,
    pts: &[srsf_geometry::point::Point],
    b: &[f64],
) -> Vec<f64> {
    let gathered = Solver::builder(kernel, pts)
        .opts(opts())
        .driver(Driver::distributed(4))
        .build()
        .expect("gathered build");
    let x = gathered.solve_mat(&Mat::from_vec(b.len(), 1, b.to_vec()));
    x.as_slice().to_vec()
}

/// The chaos acceptance: a TCP resident world with per-rank checkpoints
/// loses a worker mid-solve — the failure is typed and bounded, the
/// degraded world drops cleanly, and `restore_resident` rebuilds a
/// serving world from the snapshots whose solutions are bit-identical to
/// the fault-free reference.
#[test]
fn tcp_crash_then_restore_from_checkpoint() {
    set_tcp_child_args(Some(vec![
        "tcp_crash_then_restore_from_checkpoint".into(),
        "--exact".into(),
    ]));
    // Deterministic path: TCP workers re-execute this test and must
    // resolve the same checkpoint directory as the parent.
    let dir = std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("ckpt_tcp_chaos");
    let grid = UnitGrid::new(32);
    let kernel = LaplaceKernel::new(&grid);
    let pts = grid.points();
    let plan = FaultPlan::seeded(29).with_crash(2, 1);
    let doomed = Solver::builder(&kernel, &pts)
        .opts(opts())
        .driver(Driver::distributed(4))
        .transport(Transport::Tcp.with_faults(plan))
        .resident(true)
        .checkpoint_dir(&dir)
        .build()
        .expect("factor phase is barrier-free; the crash fires mid-solve");
    let b = random_mat::<f64>(pts.len(), 3, 555);

    let t0 = Instant::now();
    let err = doomed
        .try_solve_mat(&b)
        .expect_err("crashed worker process must fail the solve");
    assert!(
        t0.elapsed() < Duration::from_secs(30),
        "TCP failure detection took {:?}",
        t0.elapsed()
    );
    assert!(
        matches!(err, SrsfError::RankFailed { .. }),
        "expected RankFailed, got {err}"
    );
    drop(doomed); // reaps the surviving worker processes

    // Recovery: restore from the snapshots the doomed world wrote at
    // factor completion, and match the fault-free reference bit for bit.
    let restored = Solver::restore_resident(&pts, &dir, Transport::InProc).expect("restore");
    let got = restored.try_solve_mat(&b).expect("restored solve");
    let clean = resident(&kernel, &pts, 4, Transport::InProc);
    let want = clean.solve_mat(&b);
    assert_mat_bits(&got, &want, "restored-after-crash vs fault-free");
}
