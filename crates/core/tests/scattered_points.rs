//! The sequential factorization on *non-uniform* point clouds: uneven leaf
//! populations, empty boxes, and clustered geometry. The paper's perfect-
//! tree assumption is presentational ("extensions are straightforward");
//! the implementation must not silently depend on grid structure.

use srsf_core::FactorOpts;
use srsf_geometry::grid::scattered_points;
use srsf_geometry::point::Point;
use srsf_kernels::assemble::assemble_dense;
use srsf_kernels::laplace::LaplaceKernel;
use srsf_kernels::util::random_vector;
use srsf_linalg::{DenseOp, Lu};

mod common;
use common::factorize;

/// Second-kind-style system: identity diagonal + smooth log kernel.
/// Well-conditioned regardless of the point distribution.
fn second_kind_kernel() -> LaplaceKernel {
    LaplaceKernel::with_params(0.05, 1.0)
}

fn check_cloud(pts: &[Point], tol_solution: f64) {
    let kernel = second_kind_kernel();
    let opts = FactorOpts::default()
        .with_tol(1e-9)
        .with_leaf_size(16)
        .with_min_compress_level(2);
    let f = factorize(&kernel, pts, &opts).expect("factorization");
    let a = assemble_dense(&kernel, pts);
    let b = random_vector::<f64>(pts.len(), 3);
    let x = f.solve(&b);
    let op = DenseOp::new(a.clone());
    let r = srsf_linalg::relative_residual(&op, &x, &b);
    assert!(r < tol_solution, "relres {r:.3e} on {} points", pts.len());
    // And against the dense LU solution.
    let mut xd = b.clone();
    Lu::factor(a).unwrap().solve_vec(&mut xd);
    let diff = srsf_linalg::vecops::rel_diff(&x, &xd);
    assert!(diff < tol_solution, "solution diff {diff:.3e}");
}

#[test]
fn uniform_random_cloud() {
    let pts = scattered_points(900, 42);
    check_cloud(&pts, 1e-6);
}

#[test]
fn clustered_cloud_with_empty_boxes() {
    // Two tight clusters in opposite corners: most tree boxes are empty.
    let mut pts = Vec::new();
    for p in scattered_points(400, 7) {
        pts.push(Point::new(0.02 + 0.2 * p.x, 0.02 + 0.2 * p.y));
    }
    for p in scattered_points(400, 8) {
        pts.push(Point::new(0.78 + 0.2 * p.x, 0.78 + 0.2 * p.y));
    }
    check_cloud(&pts, 1e-6);
}

#[test]
fn line_like_cloud() {
    // Points concentrated near a curve (boundary-IE-like geometry).
    let pts: Vec<Point> = (0..600)
        .map(|i| {
            let t = i as f64 / 600.0;
            let wiggle = 0.05 * (7.0 * std::f64::consts::PI * t).sin();
            Point::new(0.05 + 0.9 * t, 0.5 + wiggle)
        })
        .collect();
    check_cloud(&pts, 1e-6);
}

#[test]
fn tiny_clouds_fall_back_gracefully() {
    for n in [1usize, 2, 5, 17] {
        let pts = scattered_points(n, n as u64);
        let kernel = second_kind_kernel();
        let f = factorize(&kernel, &pts, &FactorOpts::default()).unwrap();
        let b = random_vector::<f64>(n, 1);
        let x = f.solve(&b);
        let a = assemble_dense(&kernel, &pts);
        let op = DenseOp::new(a);
        assert!(srsf_linalg::relative_residual(&op, &x, &b) < 1e-10, "n={n}");
    }
}

#[test]
fn points_outside_unit_square_use_enclosing_domain() {
    let pts: Vec<Point> = scattered_points(300, 5)
        .into_iter()
        .map(|p| Point::new(4.0 * p.x - 2.0, 4.0 * p.y - 2.0))
        .collect();
    check_cloud(&pts, 1e-6);
}
