//! Tracing is observation, not participation: turning span recording on
//! must not change a single bit of the computation. The factorization's
//! algorithmic traffic is counted only in the §IV `CommStats` sites and
//! trace reports ride the *uncounted* service/result frames, so a traced
//! run produces bit-identical solutions AND bit-identical per-rank
//! message/word counters on every transport.
//!
//! Everything lives in ONE `#[test]`: the trace enable flag is process
//! global (each rank stores `opts.trace` at entry), so concurrently
//! running traced and untraced builds in the same process would race on
//! it. A single sequential test in its own integration-test binary keeps
//! the flag deterministic; the TCP sessions run first so spawned worker
//! processes exit inside a TCP session instead of re-simulating the
//! in-process comparisons (see `set_tcp_child_args`).

use srsf_core::{Driver, FactorOpts, Solver, Transport};
use srsf_geometry::grid::UnitGrid;
use srsf_kernels::laplace::LaplaceKernel;
use srsf_kernels::util::random_vector;
use srsf_runtime::set_tcp_child_args;

fn opts(transport: Transport) -> FactorOpts {
    FactorOpts::default()
        .with_tol(1e-6)
        .with_leaf_size(16)
        .with_transport(transport)
}

/// Build twice — trace off, then trace on — and assert the observable
/// computation is bit-identical while the traced build actually observed
/// something.
fn assert_trace_invisible(p: usize, transport: Transport) {
    let grid = UnitGrid::new(32); // N = 1024
    let kernel = LaplaceKernel::new(&grid);
    let pts = grid.points();
    let b = random_vector::<f64>(grid.n(), 99);

    let (f_off, x_off) = Solver::builder(&kernel, &pts)
        .opts(opts(transport))
        .driver(Driver::distributed(p))
        .trace(false)
        .build_with_solution(&b)
        .expect("untraced factorization");
    let (f_on, x_on) = Solver::builder(&kernel, &pts)
        .opts(opts(transport))
        .driver(Driver::distributed(p))
        .trace(true)
        .build_with_solution(&b)
        .expect("traced factorization");

    // Bit-identical solutions (not merely close).
    assert_eq!(
        x_off, x_on,
        "p={p} {transport}: tracing changed the solution"
    );
    // Bit-identical §IV counters: spans never touch the counting sites
    // and reports ride uncounted service/result frames.
    let s_off = f_off.comm_stats().expect("untraced comm stats");
    let s_on = f_on.comm_stats().expect("traced comm stats");
    for rank in 0..p {
        assert_eq!(
            (
                s_off.per_rank[rank].msgs_sent,
                s_off.per_rank[rank].words_sent
            ),
            (
                s_on.per_rank[rank].msgs_sent,
                s_on.per_rank[rank].words_sent
            ),
            "p={p} {transport}: rank {rank} counters differ under tracing"
        );
    }
    // The untraced build carries no reports; the traced build carries
    // one non-empty report per rank.
    assert!(
        f_off.trace_reports().is_empty(),
        "p={p} {transport}: untraced build has trace reports"
    );
    let reports = f_on.trace_reports();
    assert_eq!(
        reports.len(),
        p,
        "p={p} {transport}: one report per rank expected"
    );
    for r in &reports {
        assert!(
            !r.spans.is_empty(),
            "p={p} {transport}: rank {} report is empty",
            r.rank
        );
        assert_eq!(r.dropped, 0, "p={p} {transport}: ring overflow");
    }
}

#[test]
fn tracing_is_bit_invisible() {
    set_tcp_child_args(Some(vec![
        "tracing_is_bit_invisible".into(),
        "--exact".into(),
    ]));
    // TCP first: spawned workers exit inside their TCP session.
    for p in [1usize, 4] {
        assert_trace_invisible(p, Transport::Tcp);
    }
    for p in [1usize, 4] {
        assert_trace_invisible(p, Transport::InProc);
    }
}
