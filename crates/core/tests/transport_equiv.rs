//! Backend equivalence of the distributed driver: running `dist_factorize`
//! over real OS processes (TCP transport) must produce the *same bits* as
//! the in-process backend — identical solutions, identical factorization
//! records, and identical per-rank message/word counters — because the
//! algorithm's traffic does not depend on the fabric that carries it.
//! This is what upgrades the measured §IV communication bounds from a
//! simulation artifact to a property of real inter-process traffic.
//!
//! Re-exec discipline: each test registers itself via `set_tcp_child_args`
//! so spawned worker ranks re-run only that test, and each test performs
//! its TCP build *before* the in-process comparison build, so workers exit
//! inside the TCP session instead of re-simulating the comparison.
//!
//! The issue asked for p ∈ {1, 4, 9}; the paper's fold grid is `q x q`
//! with `q` a power of two (`p = 4^k`), so `p = 9` is not constructible —
//! [`Driver::try_distributed`] rejects it identically regardless of
//! transport (asserted below) and the equivalence matrix runs on
//! p ∈ {1, 4, 16} instead.

use srsf_core::{Driver, FactorOpts, Solver, SrsfError, Transport};
use srsf_geometry::grid::UnitGrid;
use srsf_kernels::helmholtz::HelmholtzKernel;
use srsf_kernels::kernel::Kernel;
use srsf_kernels::laplace::LaplaceKernel;
use srsf_kernels::util::random_vector;
use srsf_linalg::{c64, Scalar};
use srsf_runtime::set_tcp_child_args;

fn opts() -> FactorOpts {
    FactorOpts::default().with_tol(1e-8).with_leaf_size(16)
}

/// Factor + solve over both transports for one `p`, asserting bitwise
/// equality of the solution and the per-rank communication counters.
fn assert_equivalent<K: Kernel>(kernel: &K, pts: &[srsf_geometry::point::Point], p: usize) {
    let b = random_vector::<K::Elem>(pts.len(), 99);
    // TCP first: spawned workers must exit inside this session.
    let (f_tcp, x_tcp) = Solver::builder(kernel, pts)
        .opts(opts())
        .driver(Driver::distributed(p))
        .transport(Transport::Tcp)
        .build_with_solution(&b)
        .expect("tcp factorization");
    let (f_in, x_in) = Solver::builder(kernel, pts)
        .opts(opts())
        .driver(Driver::distributed(p))
        .transport(Transport::InProc)
        .build_with_solution(&b)
        .expect("inproc factorization");

    // Bit-identical solutions (not merely close).
    assert_eq!(x_tcp.len(), x_in.len());
    for (i, (a, b)) in x_tcp.iter().zip(x_in.iter()).enumerate() {
        assert_eq!(a.re(), b.re(), "p={p}: solution differs at entry {i}");
        assert_eq!(a.im(), b.im(), "p={p}: solution differs at entry {i}");
    }
    // Identical factorization shape.
    assert_eq!(f_tcp.n_records(), f_in.n_records(), "p={p}: record count");
    assert_eq!(f_tcp.top_size(), f_in.top_size(), "p={p}: top size");
    assert_eq!(
        f_tcp.stats().rank_table(),
        f_in.stats().rank_table(),
        "p={p}: skeleton ranks"
    );
    // Identical per-rank message and word counters.
    let s_tcp = f_tcp.comm_stats().expect("tcp comm stats");
    let s_in = f_in.comm_stats().expect("inproc comm stats");
    assert_eq!(s_tcp.per_rank.len(), p);
    assert_eq!(s_in.per_rank.len(), p);
    for rank in 0..p {
        assert_eq!(
            (
                s_tcp.per_rank[rank].msgs_sent,
                s_tcp.per_rank[rank].words_sent
            ),
            (
                s_in.per_rank[rank].msgs_sent,
                s_in.per_rank[rank].words_sent
            ),
            "p={p}: rank {rank} counters differ across backends"
        );
    }
    // The gathered records are semantically identical too: local applies
    // of both factorizations agree bit for bit. (The in-world distributed
    // solve above may differ from a *local* apply by summation order —
    // that is solve-path variance, not transport variance.)
    let loc_tcp = f_tcp.solve(&b);
    let loc_in = f_in.solve(&b);
    for (a, b) in loc_tcp.iter().zip(loc_in.iter()) {
        assert_eq!(a.re(), b.re(), "p={p}: gathered records differ");
        assert_eq!(a.im(), b.im(), "p={p}: gathered records differ");
    }
}

/// One test per `(kernel, p)` cell so each test function runs exactly one
/// TCP session: a spawned worker then joins the very first session it
/// re-reaches instead of recomputing earlier ones (expensive under the
/// unoptimized test profile).
macro_rules! equiv_case {
    ($name:ident, $kernel:expr, $p:expr) => {
        #[test]
        fn $name() {
            set_tcp_child_args(Some(vec![stringify!($name).into(), "--exact".into()]));
            let grid = UnitGrid::new(32); // N = 1024, leaf level 3
            let kernel = $kernel(&grid);
            let pts = grid.points();
            assert_equivalent(&kernel, &pts, $p);
        }
    };
}

equiv_case!(tcp_matches_inproc_laplace_f64_p1, LaplaceKernel::new, 1);
equiv_case!(tcp_matches_inproc_laplace_f64_p4, LaplaceKernel::new, 4);
// 15 worker processes; leaf level 3 folds 16 -> 4 -> 1 ranks.
equiv_case!(
    tcp_matches_inproc_laplace_f64_p16_fold,
    LaplaceKernel::new,
    16
);

fn helmholtz(grid: &UnitGrid) -> HelmholtzKernel {
    HelmholtzKernel::new(grid, 20.0)
}
equiv_case!(tcp_matches_inproc_helmholtz_c64_p1, helmholtz, 1);
equiv_case!(tcp_matches_inproc_helmholtz_c64_p4, helmholtz, 4);

#[test]
fn p9_is_rejected_identically_on_both_transports() {
    // 9 = 3^2 is not a power-of-four process count; the fold grid cannot
    // halve q = 3, so construction fails before any transport is touched
    // — the rejection is transport-independent by design.
    for transport in [Transport::InProc, Transport::Tcp] {
        let err = Driver::try_distributed(9).unwrap_err();
        assert!(
            matches!(err, SrsfError::InvalidProcessCount { p: 9 }),
            "{transport}: {err:?}"
        );
    }
    let _ = c64::ZERO; // keep the complex type linked into this test crate
}
