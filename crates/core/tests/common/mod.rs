//! Shared helpers for the core integration tests.

use srsf_core::{FactorOpts, Factorization, Solver, SrsfError};
use srsf_geometry::point::Point;
use srsf_kernels::kernel::Kernel;

/// The builder-based replacement for the old `factorize` free function.
pub fn factorize<K: Kernel>(
    kernel: &K,
    pts: &[Point],
    opts: &FactorOpts,
) -> Result<Factorization<K::Elem>, SrsfError> {
    Solver::builder(kernel, pts)
        .opts(opts.clone())
        .build()
        .map(Solver::into_factorization)
}
