//! Bit-identity of the hybrid-parallel distributed driver: the
//! `rank_threads` knob must change wall-clock time and nothing else.
//! Every rank eliminates its phase boxes in four box-color sub-rounds
//! with snapshot reads and a fixed merge order, so the factorization
//! records, the solutions, and the per-rank communication counters are
//! identical bits for every thread count — on both transports.
//!
//! Test layout: the `inproc_threads_*` tests run the p × rank_threads
//! matrix entirely in-process (they exercise the only new cross-thread
//! code path and are what the nightly TSan job runs); the `tcp_threads_*`
//! tests then pin a threaded TCP world against its in-process twin,
//! following transport_equiv.rs's re-exec discipline (TCP session first,
//! one session per test function).

use srsf_core::{Compression, Driver, FactorOpts, Solver, Transport};
use srsf_geometry::grid::UnitGrid;
use srsf_geometry::point::Point;
use srsf_kernels::helmholtz::HelmholtzKernel;
use srsf_kernels::kernel::Kernel;
use srsf_kernels::laplace::LaplaceKernel;
use srsf_kernels::util::random_vector;
use srsf_linalg::Scalar;
use srsf_runtime::set_tcp_child_args;

fn opts() -> FactorOpts {
    FactorOpts::default().with_tol(1e-8).with_leaf_size(16)
}

type Built<T> = (Solver<T>, Vec<T>);

fn build<K: Kernel>(
    kernel: &K,
    pts: &[Point],
    p: usize,
    threads: usize,
    transport: Transport,
) -> Built<K::Elem> {
    let b = random_vector::<K::Elem>(pts.len(), 7);
    Solver::builder(kernel, pts)
        .opts(opts())
        .driver(Driver::distributed(p))
        .rank_threads(threads)
        .transport(transport)
        .build_with_solution(&b)
        .unwrap_or_else(|e| panic!("p={p}, {threads} threads, {transport}: {e}"))
}

/// Bitwise comparison of two builds: solution, factorization shape,
/// per-rank counters, and the gathered records (via local applies).
fn assert_identical<T: Scalar>(label: &str, (f_a, x_a): &Built<T>, (f_b, x_b): &Built<T>) {
    assert_eq!(x_a.len(), x_b.len());
    for (i, (a, b)) in x_a.iter().zip(x_b.iter()).enumerate() {
        assert_eq!(a.re(), b.re(), "{label}: solution differs at entry {i}");
        assert_eq!(a.im(), b.im(), "{label}: solution differs at entry {i}");
    }
    assert_eq!(f_a.n_records(), f_b.n_records(), "{label}: record count");
    assert_eq!(f_a.top_size(), f_b.top_size(), "{label}: top size");
    assert_eq!(
        f_a.stats().rank_table(),
        f_b.stats().rank_table(),
        "{label}: skeleton ranks"
    );
    // The sketched path's counters are part of the determinism contract:
    // every box takes the same retry/fallback/FFT-vs-dense route on every
    // schedule, so the global counters match exactly.
    assert_eq!(
        f_a.stats().compression,
        f_b.stats().compression,
        "{label}: compression telemetry"
    );
    let s_a = f_a.comm_stats().expect("comm stats");
    let s_b = f_b.comm_stats().expect("comm stats");
    assert_eq!(s_a.per_rank.len(), s_b.per_rank.len());
    for (rank, (a, b)) in s_a.per_rank.iter().zip(s_b.per_rank.iter()).enumerate() {
        assert_eq!(
            (a.msgs_sent, a.words_sent),
            (b.msgs_sent, b.words_sent),
            "{label}: rank {rank} counters differ"
        );
    }
    let rhs = random_vector::<T>(x_a.len(), 23);
    for (a, b) in f_a.solve(&rhs).iter().zip(f_b.solve(&rhs).iter()) {
        assert_eq!(a.re(), b.re(), "{label}: gathered records differ");
        assert_eq!(a.im(), b.im(), "{label}: gathered records differ");
    }
}

/// In-process p × rank_threads matrix: {1, 2, 4} threads against the
/// serial reference, for one `(kernel, p)` cell.
fn assert_thread_invariant<K: Kernel>(kernel: &K, pts: &[Point], p: usize) {
    let serial = build(kernel, pts, p, 1, Transport::InProc);
    for threads in [2usize, 4] {
        let threaded = build(kernel, pts, p, threads, Transport::InProc);
        assert_identical(&format!("p={p}, {threads}t vs 1t"), &threaded, &serial);
    }
}

macro_rules! inproc_case {
    ($name:ident, $kernel:expr, $p:expr) => {
        #[test]
        fn $name() {
            let grid = UnitGrid::new(32); // N = 1024, leaf level 3
            let kernel = $kernel(&grid);
            let pts = grid.points();
            assert_thread_invariant(&kernel, &pts, $p);
        }
    };
}

fn helmholtz(grid: &UnitGrid) -> HelmholtzKernel {
    HelmholtzKernel::new(grid, 20.0)
}

inproc_case!(inproc_threads_bitwise_laplace_f64_p1, LaplaceKernel::new, 1);
inproc_case!(inproc_threads_bitwise_laplace_f64_p4, LaplaceKernel::new, 4);
// 16 ranks x up to 4 workers each; leaf level 3 folds 16 -> 4 -> 1.
inproc_case!(
    inproc_threads_bitwise_laplace_f64_p16_fold,
    LaplaceKernel::new,
    16
);
inproc_case!(inproc_threads_bitwise_helmholtz_c64_p1, helmholtz, 1);
inproc_case!(inproc_threads_bitwise_helmholtz_c64_p4, helmholtz, 4);

/// One TCP session per test (workers exit inside it), at 4 rank threads;
/// transitively with the in-process matrix above this pins every
/// (transport, p, threads) cell to the same bits.
macro_rules! tcp_case {
    ($name:ident, $kernel:expr, $p:expr) => {
        #[test]
        fn $name() {
            set_tcp_child_args(Some(vec![stringify!($name).into(), "--exact".into()]));
            let grid = UnitGrid::new(32);
            let kernel = $kernel(&grid);
            let pts = grid.points();
            // TCP first: spawned workers must exit inside this session.
            let tcp = build(&kernel, &pts, $p, 4, Transport::Tcp);
            let inproc = build(&kernel, &pts, $p, 4, Transport::InProc);
            assert_identical(concat!(stringify!($name), " tcp vs inproc"), &tcp, &inproc);
        }
    };
}

/// Explicit non-default sketch parameters (the inproc matrix above pins
/// the *default* `Compression::sketched()`): a custom `(oversample,
/// seed)` must be just as schedule-invariant across ranks and thread
/// counts — the per-box seeds derive only from box coordinates.
#[test]
fn inproc_threads_bitwise_explicit_sketched() {
    let grid = UnitGrid::new(32);
    let kernel = LaplaceKernel::new(&grid);
    let pts = grid.points();
    let sketched = Compression::Sketched {
        oversample: 6,
        seed: 0xABCD_1234,
    };
    let build_s = |p: usize, threads: usize| {
        let b = random_vector::<f64>(pts.len(), 7);
        Solver::builder(&kernel, &pts)
            .opts(opts().with_compression(sketched))
            .driver(Driver::distributed(p))
            .rank_threads(threads)
            .build_with_solution(&b)
            .unwrap_or_else(|e| panic!("p={p}, {threads} threads: {e}"))
    };
    for p in [1usize, 4] {
        let serial = build_s(p, 1);
        let threaded = build_s(p, 4);
        assert_identical(&format!("sketched p={p}, 4t vs 1t"), &threaded, &serial);
    }
    // (Across *process counts* the phase partition — interior vs
    // boundary — reorders the floating-point Schur additions, so bits
    // differ with p under either compression path; the invariance
    // contract is per p, across threads and transports.)
}

tcp_case!(tcp_threads_bitwise_laplace_f64_p1, LaplaceKernel::new, 1);
tcp_case!(tcp_threads_bitwise_laplace_f64_p4, LaplaceKernel::new, 4);
tcp_case!(
    tcp_threads_bitwise_laplace_f64_p16_fold,
    LaplaceKernel::new,
    16
);
tcp_case!(tcp_threads_bitwise_helmholtz_c64_p4, helmholtz, 4);
