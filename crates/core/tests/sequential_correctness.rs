//! End-to-end correctness of the sequential factorization against dense
//! reference solves, for both paper kernels.

use srsf_core::FactorOpts;
use srsf_geometry::grid::UnitGrid;
use srsf_kernels::assemble::assemble_dense;
use srsf_kernels::helmholtz::HelmholtzKernel;
use srsf_kernels::laplace::LaplaceKernel;
use srsf_kernels::util::random_vector;
use srsf_linalg::{c64, DenseOp, LinOp, Lu, Scalar};

fn relres<T: Scalar>(a: &DenseOp<T>, x: &[T], b: &[T]) -> f64 {
    srsf_linalg::relative_residual(a, x, b)
}

mod common;
use common::factorize;

#[test]
fn laplace_factorization_solves_to_tolerance() {
    let grid = UnitGrid::new(32); // N = 1024
    let kernel = LaplaceKernel::new(&grid);
    let pts = grid.points();
    let opts = FactorOpts::default().with_tol(1e-8).with_leaf_size(16);
    let f = factorize(&kernel, &pts, &opts).expect("factorization");
    assert_eq!(f.n(), 1024);
    assert!(f.n_records() > 0, "compression must have happened");

    let a = DenseOp::new(assemble_dense(&kernel, &pts));
    let b = random_vector::<f64>(1024, 42);
    let x = f.solve(&b);
    let r = relres(&a, &x, &b);
    assert!(r < 1e-5, "relres {r:.3e} too large for tol 1e-8");
}

#[test]
fn laplace_matches_dense_lu_solution() {
    let grid = UnitGrid::new(16); // N = 256
    let kernel = LaplaceKernel::new(&grid);
    let pts = grid.points();
    let opts = FactorOpts::default()
        .with_tol(1e-10)
        .with_leaf_size(16)
        .with_min_compress_level(2);
    let f = factorize(&kernel, &pts, &opts).unwrap();
    let a = assemble_dense(&kernel, &pts);
    let b = random_vector::<f64>(256, 7);
    let x = f.solve(&b);
    let mut xd = b.clone();
    Lu::factor(a).unwrap().solve_vec(&mut xd);
    let diff = srsf_linalg::vecops::rel_diff(&x, &xd);
    assert!(diff < 1e-6, "solution mismatch {diff:.3e}");
}

#[test]
fn tighter_tolerance_improves_residual() {
    let grid = UnitGrid::new(32);
    let kernel = LaplaceKernel::new(&grid);
    let pts = grid.points();
    let a = DenseOp::new(assemble_dense(&kernel, &pts));
    let b = random_vector::<f64>(grid.n(), 3);
    let mut last = f64::INFINITY;
    for tol in [1e-3, 1e-6, 1e-9] {
        let opts = FactorOpts::default().with_tol(tol).with_leaf_size(16);
        let f = factorize(&kernel, &pts, &opts).unwrap();
        let r = relres(&a, &f.solve(&b), &b);
        assert!(
            r < last * 2.0,
            "residual should not degrade as tol tightens: {r:.3e} vs {last:.3e}"
        );
        assert!(r < tol * 1e3, "tol {tol:.0e} gave relres {r:.3e}");
        last = r;
    }
    assert!(last < 1e-6);
}

#[test]
fn helmholtz_factorization_solves_to_tolerance() {
    let grid = UnitGrid::new(32); // N = 1024
    let kappa = 15.0;
    let kernel = HelmholtzKernel::new(&grid, kappa);
    let pts = grid.points();
    let opts = FactorOpts::default().with_tol(1e-8).with_leaf_size(16);
    let f = factorize(&kernel, &pts, &opts).expect("factorization");
    let a = DenseOp::new(assemble_dense(&kernel, &pts));
    let b = random_vector::<c64>(1024, 11);
    let x = f.solve(&b);
    let r = relres(&a, &x, &b);
    assert!(r < 1e-5, "Helmholtz relres {r:.3e}");
}

#[test]
fn factorization_is_a_good_preconditioner_operator() {
    // Applying F then A should be close to identity.
    let grid = UnitGrid::new(16);
    let kernel = LaplaceKernel::new(&grid);
    let pts = grid.points();
    let opts = FactorOpts::default()
        .with_tol(1e-6)
        .with_leaf_size(16)
        .with_min_compress_level(2);
    let f = factorize(&kernel, &pts, &opts).unwrap();
    let a = DenseOp::new(assemble_dense(&kernel, &pts));
    let v = random_vector::<f64>(256, 5);
    let av = a.apply(&v);
    let round = f.apply(&av); // F(A v) ~= v
    let diff = srsf_linalg::vecops::rel_diff(&round, &v);
    assert!(diff < 1e-3, "F A v != v: {diff:.3e}");
}

#[test]
fn stats_record_ranks_and_memory() {
    let grid = UnitGrid::new(32);
    let kernel = LaplaceKernel::new(&grid);
    let pts = grid.points();
    let opts = FactorOpts::default().with_tol(1e-6).with_leaf_size(16);
    let f = factorize(&kernel, &pts, &opts).unwrap();
    let stats = f.stats();
    assert_eq!(stats.n, 1024);
    let table = stats.rank_table();
    assert!(!table.is_empty());
    for (_, avg) in &table {
        assert!(*avg > 0.0 && *avg < 64.0);
    }
    assert!(f.memory_bytes() > 0);
    assert!(f.top_size() > 0);
    assert!(stats.total_s > 0.0);
}

#[test]
fn small_problem_falls_back_to_dense() {
    // N small enough that the tree never reaches the compression level.
    let grid = UnitGrid::new(8); // N = 64, leaf_size 64 -> leaf level 0
    let kernel = LaplaceKernel::new(&grid);
    let pts = grid.points();
    let f = factorize(&kernel, &pts, &FactorOpts::default()).unwrap();
    assert_eq!(f.n_records(), 0);
    assert_eq!(f.top_size(), 64);
    let a = DenseOp::new(assemble_dense(&kernel, &pts));
    let b = random_vector::<f64>(64, 1);
    let x = f.solve(&b);
    assert!(relres(&a, &x, &b) < 1e-12, "dense fallback must be exact");
}
