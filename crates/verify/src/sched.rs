//! The cooperative model-checking scheduler behind [`crate::Model`].
//!
//! # How a model run works
//!
//! A model is a closure using the [`crate::sync`] / [`crate::thread`]
//! shims. [`Model::check`] runs the closure many times; in each run,
//! every shim operation (atomic access, lock, channel op, barrier
//! arrival) is a **yield point**: the running thread hands a scheduling
//! token to the scheduler, which picks which registered thread runs
//! next. Exactly one model thread executes at any moment, so each run is
//! one *serialized interleaving* — a schedule — and everything between
//! two yield points is atomic by construction.
//!
//! # Exploration
//!
//! Schedules are enumerated by **depth-first search with a preemption
//! bound**: at each yield point where more than one thread could run, the
//! scheduler records the alternatives; after the run it backtracks to the
//! deepest decision with an untried alternative and re-executes with that
//! prefix. Switching away from a thread that *could* have continued
//! counts as a preemption, and schedules exceeding the bound are pruned
//! — the classic result (Musuvathi & Qadeer's iterative context
//! bounding) is that almost all real concurrency bugs manifest within
//! two preemptions, which keeps the search tractable while staying
//! systematic. Exploration is exhaustive (within the bound) up to
//! [`Model::max_schedules`].
//!
//! # What a run can detect
//!
//! * **Panics** — any assertion failure inside the model;
//! * **deadlock** — no runnable thread while some are blocked (this is
//!   also how *lost wakeups* surface: a missed `notify` leaves its waiter
//!   blocked forever, because modeled waits never time out);
//! * **livelock** — a run exceeding the step budget;
//! * **schedule-dependent results** — the closure's return value is
//!   compared across every explored schedule and must be identical.
//!
//! # Determinism and replay
//!
//! Model closures must be deterministic apart from scheduling (no real
//! time, no ambient randomness). Every failure report prints the
//! schedule as a comma-separated list of the thread ids chosen at each
//! branching decision; [`Model::replay`] (or the `SRSF_MODEL_REPLAY`
//! environment variable) re-executes exactly that interleaving, so a
//! failure found on schedule 8141 of 10000 reproduces deterministically
//! in one run under a debugger.
//!
//! # Scope
//!
//! The scheduler serializes all shim operations, so it verifies model
//! logic under **sequential consistency**. It cannot observe weak-memory
//! reorderings — that is what the ThreadSanitizer CI job is for; the two
//! are complementary. Threads created with `std::thread` (rather than
//! [`crate::thread::spawn`]) are invisible to the scheduler and must not
//! be used inside a model.

use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, Once};

/// Sentinel panic payload used to unwind model threads when a run is
/// aborted (another thread failed, or a deadlock was detected). Caught
/// and swallowed by the thread wrapper; never observed by user code.
pub(crate) struct ModelAbort;

/// Upper bound on threads a single model may register.
const MAX_THREADS: usize = 16;

/// Scheduling-step budget per run; exceeding it is reported as a
/// livelock.
const MAX_STEPS: usize = 1_000_000;

/// Key space for "waiting for thread `t` to finish" (join) resources,
/// disjoint from object-address and channel keys.
#[cfg_attr(not(srsf_model), allow(dead_code))] // called by the model-mode shims only
pub(crate) fn thread_key(tid: usize) -> usize {
    (usize::MAX / 2) + tid
}

/// A fresh resource key for objects without a stable address (channels).
/// Tagged into the top of the key space so it cannot collide with the
/// object-address keys used by locks and condvars.
#[cfg_attr(not(srsf_model), allow(dead_code))] // called by the model-mode shims only
pub(crate) fn fresh_key() -> usize {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    // Relaxed: the counter only needs uniqueness, never ordering.
    (usize::MAX / 4) * 3 + NEXT.fetch_add(1, Ordering::Relaxed)
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum TState {
    /// Eligible to be scheduled.
    Runnable,
    /// Waiting for `wake`/`wake_one` on a resource key.
    Blocked(usize),
    /// Exited (normally or by unwinding).
    Finished,
}

struct ExecState {
    threads: Vec<TState>,
    /// Threads whose last decision was a spin-yield (and have not run a
    /// real operation since): a spin-yield avoids handing the token to
    /// them, so two polling loops cannot ping-pong without the thread
    /// they are waiting on making progress.
    spinning: Vec<bool>,
    /// Which thread holds the execution token.
    running: usize,
    /// Alternatives (thread ids) at each branching decision, in order.
    log_alt: Vec<Vec<usize>>,
    /// Index into `log_alt[i]` actually taken.
    taken: Vec<usize>,
    preemptions: usize,
    steps: usize,
    /// Set on failure/deadlock/livelock; makes every parked thread
    /// unwind with [`ModelAbort`] at its next wakeup.
    abort: bool,
    failure: Option<String>,
    finished: usize,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl ExecState {
    /// The schedule so far, as the thread ids chosen at each branching
    /// decision.
    fn schedule_tids(&self) -> Vec<usize> {
        self.log_alt
            .iter()
            .zip(&self.taken)
            .map(|(alts, &i)| alts[i])
            .collect()
    }
}

/// Why the current thread reached a scheduling decision.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Caller {
    /// A plain yield point: the caller can continue.
    Runnable,
    /// An explicit `yield_now` in a polling loop: prefer running someone
    /// else (free of preemption cost), continue only if alone.
    Spin,
    /// The caller just blocked or finished.
    Gone,
}

/// How the next run's branching decisions are forced.
#[derive(Clone)]
enum Prefix {
    /// DFS: indices into the alternative list at each decision.
    Indices(Vec<usize>),
    /// Replay: the thread id to choose at each decision.
    Tids(Vec<usize>),
}

/// One run's shared scheduler state; every model thread holds an `Arc`.
pub(crate) struct Execution {
    state: Mutex<ExecState>,
    cv: Condvar,
    preemption_bound: usize,
    prefix: Prefix,
}

thread_local! {
    /// The execution this OS thread participates in, if it is a model
    /// thread of an active run.
    static CURRENT: RefCell<Option<(Arc<Execution>, usize)>> = const { RefCell::new(None) };
}

/// Run `f` with the current model-thread context, or return `None` when
/// the calling thread is not part of an active model run (the shims then
/// fall back to plain `std` behavior).
#[cfg_attr(not(srsf_model), allow(dead_code))] // called by the model-mode shims only
pub(crate) fn with_current<R>(f: impl FnOnce(&Arc<Execution>, usize) -> R) -> Option<R> {
    CURRENT.with(|c| c.borrow().as_ref().map(|(e, t)| f(e, *t)))
}

/// `true` on threads registered with an active model run — used by the
/// quiet panic hook to keep expected model-thread unwinds off stderr.
/// Must tolerate being called while `with_current` holds the borrow
/// (a sentinel panic raised inside the closure runs the hook first):
/// an outstanding borrow itself proves this is a model thread.
fn in_model_thread() -> bool {
    CURRENT.with(|c| match c.try_borrow() {
        Ok(b) => b.is_some(),
        Err(_) => true,
    })
}

/// Install (once per process) a panic hook that suppresses output for
/// panics on model threads: sentinel aborts are pure control flow, and
/// genuine model failures are captured and re-reported with their replay
/// schedule by the controller.
fn install_quiet_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<ModelAbort>().is_some() || in_model_thread() {
                return;
            }
            prev(info);
        }));
    });
}

// Several entry points are reached only from the model-mode shims.
#[cfg_attr(not(srsf_model), allow(dead_code))]
impl Execution {
    fn new(preemption_bound: usize, prefix: Prefix) -> Self {
        Self {
            state: Mutex::new(ExecState {
                threads: Vec::new(),
                spinning: Vec::new(),
                running: 0,
                log_alt: Vec::new(),
                taken: Vec::new(),
                preemptions: 0,
                steps: 0,
                abort: false,
                failure: None,
                finished: 0,
                handles: Vec::new(),
            }),
            cv: Condvar::new(),
            preemption_bound,
            prefix,
        }
    }

    /// Register a new model thread (called on the *spawning* thread so
    /// registration order is deterministic). Returns its id.
    pub(crate) fn register(&self) -> usize {
        let mut st = self.lock();
        assert!(
            st.threads.len() < MAX_THREADS,
            "model spawned more than {MAX_THREADS} threads"
        );
        st.threads.push(TState::Runnable);
        st.spinning.push(false);
        st.threads.len() - 1
    }

    pub(crate) fn add_handle(&self, h: std::thread::JoinHandle<()>) {
        self.lock().handles.push(h);
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ExecState> {
        match self.state.lock() {
            Ok(g) => g,
            // A model thread can only panic while *running* (holding the
            // token, not this lock), so the state itself is consistent.
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Pick the next thread to run. Returns the chosen thread, or
    /// `None` when the run is over (all finished) or aborted.
    fn decide(&self, st: &mut ExecState, me: usize, caller: Caller) -> Option<usize> {
        if st.abort {
            return None;
        }
        st.steps += 1;
        if st.steps > MAX_STEPS {
            self.fail(
                st,
                format!("livelock: run exceeded {MAX_STEPS} scheduling steps"),
            );
            return None;
        }
        // A spin-yield marks the caller as spinning until its next real
        // operation; see the `spinning` field.
        st.spinning[me] = caller == Caller::Spin;
        let enabled: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s, TState::Runnable))
            .map(|(i, _)| i)
            .collect();
        if enabled.is_empty() {
            if st.finished == st.threads.len() {
                return None; // clean completion
            }
            let states: Vec<String> = st
                .threads
                .iter()
                .enumerate()
                .map(|(i, s)| match s {
                    TState::Blocked(k) => format!("thread {i} blocked on resource {k:#x}"),
                    TState::Runnable => format!("thread {i} runnable"),
                    TState::Finished => format!("thread {i} finished"),
                })
                .collect();
            self.fail(
                st,
                format!("deadlock: no runnable thread ({})", states.join("; ")),
            );
            return None;
        }

        // Order alternatives: continuing the current thread first (free),
        // then other enabled threads by id (each costs a preemption when
        // the current thread could have continued). A spinning caller
        // (explicit `yield_now`) instead *prefers* other threads — the
        // loom convention that a spin loop cannot make progress until
        // someone else runs — which keeps polling loops finite without
        // charging the switch to the preemption budget.
        let can_continue = caller == Caller::Runnable && enabled.contains(&me);
        let alts: Vec<usize> = match caller {
            Caller::Runnable if can_continue => {
                if st.preemptions >= self.preemption_bound {
                    vec![me]
                } else {
                    std::iter::once(me)
                        .chain(enabled.iter().copied().filter(|&t| t != me))
                        .collect()
                }
            }
            Caller::Spin => {
                // Prefer other threads that are not themselves spinning;
                // among only-spinners, any other thread; alone, continue.
                let fresh: Vec<usize> = enabled
                    .iter()
                    .copied()
                    .filter(|&t| t != me && !st.spinning[t])
                    .collect();
                if !fresh.is_empty() {
                    fresh
                } else {
                    let others: Vec<usize> = enabled.iter().copied().filter(|&t| t != me).collect();
                    if others.is_empty() {
                        vec![me]
                    } else {
                        others
                    }
                }
            }
            _ => enabled,
        };

        let next = if alts.len() == 1 {
            alts[0]
        } else {
            let di = st.taken.len();
            let idx = match &self.prefix {
                Prefix::Indices(p) if di < p.len() => {
                    assert!(
                        p[di] < alts.len(),
                        "exploration prefix diverged: the model is nondeterministic \
                         (decision {di} offers {} alternatives, prefix wants index {})",
                        alts.len(),
                        p[di]
                    );
                    p[di]
                }
                Prefix::Tids(p) if di < p.len() => match alts.iter().position(|&t| t == p[di]) {
                    Some(idx) => idx,
                    None => {
                        self.fail(
                            st,
                            format!(
                                "replay diverged at decision {di}: schedule wants thread {} \
                                 but the alternatives are {alts:?}",
                                p[di]
                            ),
                        );
                        return None;
                    }
                },
                _ => 0,
            };
            st.log_alt.push(alts.clone());
            st.taken.push(idx);
            alts[idx]
        };
        if can_continue && next != me {
            st.preemptions += 1;
        }
        st.running = next;
        Some(next)
    }

    /// Park until this thread holds the token (or the run aborted).
    /// Panics with the [`ModelAbort`] sentinel on abort.
    fn park_until_running(&self, mut st: std::sync::MutexGuard<'_, ExecState>, me: usize) {
        loop {
            if st.abort {
                drop(st);
                std::panic::panic_any(ModelAbort);
            }
            if st.running == me && st.threads[me] == TState::Runnable {
                return;
            }
            st = match self.cv.wait(st) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
    }

    /// First park of a freshly spawned model thread: wait to be
    /// scheduled for the first time.
    pub(crate) fn acquire_initial(&self, me: usize) {
        let st = self.lock();
        self.park_until_running(st, me);
    }

    /// A plain yield point: offer the scheduler a chance to preempt.
    pub(crate) fn yield_now(&self, me: usize) {
        let mut st = self.lock();
        if st.abort {
            drop(st);
            std::panic::panic_any(ModelAbort);
        }
        match self.decide(&mut st, me, Caller::Runnable) {
            Some(next) if next == me => {}
            Some(_) => {
                self.cv.notify_all();
                self.park_until_running(st, me);
            }
            None => {
                // Aborted (deadlock/livelock was recorded by decide).
                self.cv.notify_all();
                drop(st);
                std::panic::panic_any(ModelAbort);
            }
        }
    }

    /// An explicit spin-loop yield: schedule some *other* runnable
    /// thread if one exists (without charging the preemption budget), so
    /// polling loops cannot run unboundedly while their condition is in
    /// another thread's hands.
    pub(crate) fn yield_spin(&self, me: usize) {
        let mut st = self.lock();
        if st.abort {
            drop(st);
            std::panic::panic_any(ModelAbort);
        }
        match self.decide(&mut st, me, Caller::Spin) {
            Some(next) if next == me => {}
            Some(_) => {
                self.cv.notify_all();
                self.park_until_running(st, me);
            }
            None => {
                self.cv.notify_all();
                drop(st);
                std::panic::panic_any(ModelAbort);
            }
        }
    }

    /// Block the calling thread on `key` until some other thread calls
    /// [`Execution::wake`] / [`Execution::wake_one`] for it *and* the
    /// scheduler picks it again.
    pub(crate) fn block_on(&self, me: usize, key: usize) {
        let mut st = self.lock();
        if st.abort {
            drop(st);
            std::panic::panic_any(ModelAbort);
        }
        st.threads[me] = TState::Blocked(key);
        match self.decide(&mut st, me, Caller::Gone) {
            Some(_) => {
                self.cv.notify_all();
                self.park_until_running(st, me);
            }
            None => {
                self.cv.notify_all();
                drop(st);
                std::panic::panic_any(ModelAbort);
            }
        }
    }

    /// Mark every thread blocked on `key` runnable (they re-check their
    /// predicate when next scheduled). Does **not** yield.
    pub(crate) fn wake(&self, key: usize) {
        let mut st = self.lock();
        for s in st.threads.iter_mut() {
            if *s == TState::Blocked(key) {
                *s = TState::Runnable;
            }
        }
    }

    /// Wake the lowest-id thread blocked on `key` (deterministic
    /// `notify_one`). Returns `true` if a thread was woken.
    pub(crate) fn wake_one(&self, key: usize) -> bool {
        let mut st = self.lock();
        for s in st.threads.iter_mut() {
            if *s == TState::Blocked(key) {
                *s = TState::Runnable;
                return true;
            }
        }
        false
    }

    /// Mark the calling thread blocked on `key` **without yielding** —
    /// the atomic first half of a condvar wait: the caller still runs
    /// (to release its mutex) and must then call [`Execution::block_parked`].
    pub(crate) fn block_mark(&self, me: usize, key: usize) {
        let mut st = self.lock();
        st.threads[me] = TState::Blocked(key);
    }

    /// Second half of a condvar wait: hand off the token and park. The
    /// thread was already marked blocked by [`Execution::block_mark`]
    /// (and may have been re-woken in between; that is a valid wakeup).
    pub(crate) fn block_parked(&self, me: usize) {
        let mut st = self.lock();
        if st.abort {
            drop(st);
            std::panic::panic_any(ModelAbort);
        }
        if st.threads[me] == TState::Runnable {
            // Woken between mark and park (notify raced ahead): treat as
            // an ordinary yield so the token stays consistent.
            drop(st);
            self.yield_now(me);
            return;
        }
        match self.decide(&mut st, me, Caller::Gone) {
            Some(_) => {
                self.cv.notify_all();
                self.park_until_running(st, me);
            }
            None => {
                self.cv.notify_all();
                drop(st);
                std::panic::panic_any(ModelAbort);
            }
        }
    }

    /// `true` once thread `tid` has exited.
    pub(crate) fn is_finished(&self, tid: usize) -> bool {
        self.lock().threads[tid] == TState::Finished
    }

    /// Record a failure and abort the run; every parked thread unwinds
    /// with the sentinel at its next wakeup.
    fn fail(&self, st: &mut ExecState, msg: String) {
        if st.failure.is_none() {
            st.failure = Some(msg);
        }
        st.abort = true;
        self.cv.notify_all();
    }

    /// Thread exit paths, called exactly once per model thread by the
    /// spawn wrapper.
    pub(crate) fn exit_normal(&self, me: usize) {
        let mut st = self.lock();
        st.threads[me] = TState::Finished;
        st.finished += 1;
        // Wake joiners before choosing a successor so they are eligible.
        for s in st.threads.iter_mut() {
            if *s == TState::Blocked(thread_key(me)) {
                *s = TState::Runnable;
            }
        }
        let _ = self.decide(&mut st, me, Caller::Gone);
        self.cv.notify_all();
    }

    pub(crate) fn exit_panicked(&self, me: usize, msg: String) {
        let mut st = self.lock();
        st.threads[me] = TState::Finished;
        st.finished += 1;
        self.fail(&mut st, format!("thread {me} panicked: {msg}"));
    }

    pub(crate) fn exit_aborted(&self, me: usize) {
        let mut st = self.lock();
        st.threads[me] = TState::Finished;
        st.finished += 1;
        self.cv.notify_all();
    }

    /// Controller side: wait for every registered thread to exit, then
    /// join the OS threads and return the run record.
    fn wait_done(&self) -> (Vec<Vec<usize>>, Vec<usize>, Option<String>, Vec<usize>) {
        let mut st = self.lock();
        while st.finished < st.threads.len() {
            st = match self.cv.wait(st) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
        let handles = std::mem::take(&mut st.handles);
        let log = st.log_alt.clone();
        let taken = st.taken.clone();
        let failure = st.failure.clone();
        let tids = st.schedule_tids();
        drop(st);
        for h in handles {
            let _ = h.join();
        }
        (log, taken, failure, tids)
    }
}

/// Register the calling OS thread as model thread `tid` of `exec` for the
/// duration of `body` (used by the spawn wrapper).
pub(crate) fn enter_thread<R>(exec: &Arc<Execution>, tid: usize, body: impl FnOnce() -> R) -> R {
    CURRENT.with(|c| *c.borrow_mut() = Some((exec.clone(), tid)));
    let r = body();
    CURRENT.with(|c| *c.borrow_mut() = None);
    r
}

pub(crate) fn panic_msg(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Outcome of one schedule.
struct RunRecord<T> {
    log: Vec<Vec<usize>>,
    taken: Vec<usize>,
    failure: Option<String>,
    tids: Vec<usize>,
    value: Option<T>,
}

/// A bounded exhaustive exploration of a concurrent model.
///
/// ```no_run
/// use srsf_verify::{sync::atomic::{AtomicUsize, Ordering}, Model};
/// use std::sync::Arc;
///
/// let report = Model::new().check(|| {
///     let c = Arc::new(AtomicUsize::new(0));
///     let c2 = c.clone();
///     let t = srsf_verify::thread::spawn(move || c2.fetch_add(1, Ordering::SeqCst));
///     c.fetch_add(1, Ordering::SeqCst);
///     t.join().unwrap();
///     c.load(Ordering::SeqCst) // must be 2 on every schedule
/// });
/// assert!(report.schedules >= 1);
/// ```
pub struct Model {
    preemption_bound: usize,
    max_schedules: usize,
    replay: Option<Vec<usize>>,
}

impl Default for Model {
    fn default() -> Self {
        Self::new()
    }
}

/// What an exploration covered.
#[derive(Debug, Clone, Copy)]
pub struct Report {
    /// Distinct schedules executed.
    pub schedules: usize,
    /// `true` when the search space (within the preemption bound) was
    /// fully enumerated rather than cut off by `max_schedules`.
    pub exhausted: bool,
}

impl Model {
    /// A model with the default bounds: preemption bound 3, at most
    /// 200 000 schedules.
    pub fn new() -> Self {
        Self {
            preemption_bound: 3,
            max_schedules: 200_000,
            replay: None,
        }
    }

    /// Set the preemption bound (context switches away from a runnable
    /// thread per schedule). Bound 2–3 catches almost all real
    /// interleaving bugs; higher bounds grow the space combinatorially.
    pub fn preemption_bound(mut self, b: usize) -> Self {
        self.preemption_bound = b;
        self
    }

    /// Cap the number of schedules explored.
    pub fn max_schedules(mut self, n: usize) -> Self {
        self.max_schedules = n.max(1);
        self
    }

    /// Run exactly one schedule: the comma-separated thread ids a failure
    /// report printed (e.g. `"0,1,1,2"`).
    pub fn replay(mut self, schedule: &str) -> Self {
        self.replay = Some(parse_schedule(schedule));
        self
    }

    /// Explore the model. The closure runs once per schedule as model
    /// thread 0 and may spawn further threads with
    /// [`crate::thread::spawn`]; its return value must be identical
    /// across all schedules (schedule-independence is checked).
    ///
    /// # Panics
    ///
    /// Panics — printing the failing schedule and how to replay it — on
    /// any model panic, deadlock, lost wakeup, livelock, or
    /// schedule-dependent result.
    pub fn check<T, F>(mut self, f: F) -> Report
    where
        T: PartialEq + std::fmt::Debug + Send + 'static,
        F: Fn() -> T + Send + Sync + 'static,
    {
        install_quiet_hook();
        if self.replay.is_none() {
            if let Ok(s) = std::env::var("SRSF_MODEL_REPLAY") {
                if !s.trim().is_empty() {
                    self.replay = Some(parse_schedule(&s));
                }
            }
        }
        let f = Arc::new(f);

        if let Some(tids) = self.replay.clone() {
            let rec = self.run_once(f, Prefix::Tids(tids));
            if let Some(msg) = rec.failure {
                // INVARIANT: deliberate — panicking is how the checker reports a
                // failing replay to the test harness
                panic!(
                    "srsf-verify: replayed schedule [{}] failed: {msg}",
                    fmt_schedule(&rec.tids)
                );
            }
            return Report {
                schedules: 1,
                exhausted: false,
            };
        }

        // Depth-first search over branching decisions.
        let mut stack: Vec<(usize, usize)> = Vec::new(); // (chosen index, alternative count)
        let mut schedules = 0usize;
        let mut first: Option<(T, Vec<usize>)> = None;
        loop {
            let prefix: Vec<usize> = stack.iter().map(|&(c, _)| c).collect();
            let rec = self.run_once(f.clone(), Prefix::Indices(prefix));
            schedules += 1;
            if let Some(msg) = rec.failure {
                // INVARIANT: deliberate — panicking with the replay string is how
                // the checker reports a failing schedule to the test harness
                panic!(
                    "srsf-verify: model failed on schedule #{schedules} [{}]: {msg}\n\
                     replay with SRSF_MODEL_REPLAY=\"{}\"",
                    fmt_schedule(&rec.tids),
                    fmt_schedule(&rec.tids)
                );
            }
            // INVARIANT: a run with no failure stored its value before exit_normal
            let value = rec.value.expect("completed run must produce a value");
            match &first {
                None => first = Some((value, rec.tids.clone())),
                Some((v0, tids0)) => {
                    assert!(
                        *v0 == value,
                        "srsf-verify: schedule-dependent result\n  schedule [{}] -> {v0:?}\n  \
                         schedule [{}] -> {value:?}\nreplay the second with \
                         SRSF_MODEL_REPLAY=\"{}\"",
                        fmt_schedule(tids0),
                        fmt_schedule(&rec.tids),
                        fmt_schedule(&rec.tids)
                    );
                }
            }

            // Fold this run's new decisions into the DFS stack, then
            // backtrack to the deepest decision with an untried branch.
            for di in stack.len()..rec.taken.len() {
                stack.push((rec.taken[di], rec.log[di].len()));
            }
            let exhausted = loop {
                match stack.last_mut() {
                    None => break true,
                    Some((chosen, n)) => {
                        if *chosen + 1 < *n {
                            *chosen += 1;
                            break false;
                        }
                        stack.pop();
                    }
                }
            };
            if exhausted {
                return Report {
                    schedules,
                    exhausted: true,
                };
            }
            if schedules >= self.max_schedules {
                return Report {
                    schedules,
                    exhausted: false,
                };
            }
        }
    }

    fn run_once<T, F>(&self, f: Arc<F>, prefix: Prefix) -> RunRecord<T>
    where
        T: Send + 'static,
        F: Fn() -> T + Send + Sync + 'static,
    {
        let exec = Arc::new(Execution::new(self.preemption_bound, prefix));
        let root = exec.register();
        debug_assert_eq!(root, 0);
        let slot: Arc<Mutex<Option<T>>> = Arc::new(Mutex::new(None));
        let (exec2, slot2) = (exec.clone(), slot.clone());
        let handle = std::thread::Builder::new()
            .name("srsf-model-0".into())
            .spawn(move || {
                enter_thread(&exec2, root, || {
                    exec2.acquire_initial(root);
                    match catch_unwind(AssertUnwindSafe(|| f())) {
                        Ok(v) => {
                            *slot2.lock().unwrap_or_else(|p| p.into_inner()) = Some(v);
                            exec2.exit_normal(root);
                        }
                        Err(p) if p.downcast_ref::<ModelAbort>().is_some() => {
                            exec2.exit_aborted(root);
                        }
                        Err(p) => exec2.exit_panicked(root, panic_msg(&*p)),
                    }
                })
            })
            // INVARIANT: OS-thread spawn fails only on resource exhaustion; the
            // checker cannot proceed without its root thread
            .expect("spawn model root thread");
        exec.add_handle(handle);
        let (log, taken, failure, tids) = exec.wait_done();
        let value = slot.lock().unwrap_or_else(|p| p.into_inner()).take();
        RunRecord {
            log,
            taken,
            failure,
            tids,
            value,
        }
    }
}

fn parse_schedule(s: &str) -> Vec<usize> {
    s.split(',')
        .map(str::trim)
        .filter(|t| !t.is_empty())
        .map(|t| {
            t.parse::<usize>()
                // INVARIANT: deliberate — a malformed SRSF_MODEL_REPLAY is operator
                // error and the run cannot mean anything
                .unwrap_or_else(|_| panic!("bad schedule token {t:?} (expected a thread id)"))
        })
        .collect()
}

fn fmt_schedule(tids: &[usize]) -> String {
    tids.iter()
        .map(|t| t.to_string())
        .collect::<Vec<_>>()
        .join(",")
}
