//! Deterministic concurrency model checking for the srsf workspace.
//!
//! This crate is the solver's answer to "the concurrent code passed its
//! tests once, on one interleaving". It provides:
//!
//! * [`sync`] / [`thread`] — drop-in replacements for the `std`
//!   primitives the runtime and core crates use (`AtomicUsize`,
//!   `Mutex`, `RwLock`, `Condvar`, `Barrier`, `mpsc`, `spawn`). In a
//!   normal build they are plain re-exports of `std` and cost nothing.
//!   Compiled with `RUSTFLAGS="--cfg srsf_model"` they route every
//!   operation through a cooperative scheduler.
//! * [`sched`] — that scheduler: a loom-style explorer that runs a
//!   closure under every thread interleaving reachable within a
//!   preemption bound, detecting deadlocks, lost wakeups, panics, and
//!   schedule-dependent results, and printing a deterministic replay
//!   string for any failure.
//!
//! ```text
//! RUSTFLAGS="--cfg srsf_model" cargo test -p srsf-verify --tests
//! SRSF_MODEL_REPLAY="0,1,1,2" RUSTFLAGS="--cfg srsf_model" cargo test -p srsf-verify <failing test>
//! ```
//!
//! The subsystem models under `tests/` mirror the four concurrent cores
//! of the solver (transport matching queue, timeout barrier, resident
//! shutdown handshake, work-stealing claim, fixed-order delta merge) in
//! a few dozen lines each, small enough to explore exhaustively.

#![forbid(unsafe_code)]

pub mod sched;
pub mod sync;
pub mod thread;

pub use sched::{Model, Report};
