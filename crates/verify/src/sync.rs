//! Drop-in synchronization primitives.
//!
//! In a normal build every name here is a re-export of the `std::sync`
//! original — adopting the shim costs nothing. Under `--cfg srsf_model`
//! the same names resolve to scheduler-aware wrappers that route every
//! operation through the cooperative model-checking scheduler (see
//! [`crate::sched`]): each atomic access, lock acquisition, channel
//! operation, or barrier arrival becomes a yield point where the
//! explorer may switch threads.
//!
//! The wrappers keep `std` semantics on threads that are *not* part of
//! an active model run (they fall back to the plain operation), so a
//! whole workspace can be compiled with `--cfg srsf_model` and only the
//! model tests behave differently. The one rule: a primitive used inside
//! a model must be touched only by threads spawned with
//! [`crate::thread::spawn`] — `std::thread` threads are invisible to the
//! scheduler.
//!
//! Modeled waits never time out ([`Condvar::wait_timeout`] behaves as
//! `wait`, `recv_timeout` as `recv`): a lost wakeup therefore leaves the
//! waiter blocked forever and is reported as a deadlock instead of being
//! papered over by a timeout path.

pub use std::sync::{Arc, LockResult, OnceLock, PoisonError, TryLockError, TryLockResult};

#[cfg(not(srsf_model))]
pub use std::sync::{
    Barrier, BarrierWaitResult, Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard,
    RwLockWriteGuard, WaitTimeoutResult,
};

/// Atomic types (std re-export in normal builds).
#[cfg(not(srsf_model))]
pub mod atomic {
    pub use std::sync::atomic::*;
}

/// Multi-producer single-consumer channels (std re-export in normal
/// builds).
#[cfg(not(srsf_model))]
pub mod mpsc {
    pub use std::sync::mpsc::*;
}

#[cfg(srsf_model)]
pub use model::{
    atomic, mpsc, Barrier, BarrierWaitResult, Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard,
    RwLockWriteGuard, WaitTimeoutResult,
};

/// Scheduler-aware implementations used when compiled with
/// `--cfg srsf_model`.
#[cfg(srsf_model)]
mod model {
    use crate::sched::{fresh_key, with_current};
    use std::ops::{Deref, DerefMut};
    use std::sync::{LockResult, PoisonError};
    use std::time::Duration;

    /// Yield point: hand the scheduler a chance to preempt. No-op on
    /// non-model threads.
    fn hook() {
        let _ = with_current(|e, me| e.yield_now(me));
    }

    /// Atomic types routed through the model scheduler. Every operation
    /// is a yield point and executes with `SeqCst` regardless of the
    /// requested ordering: the checker verifies logic under sequential
    /// consistency (weak-memory effects are TSan's job).
    pub mod atomic {
        use super::hook;
        pub use std::sync::atomic::Ordering;

        macro_rules! int_atomic {
            ($(#[$meta:meta])* $name:ident, $std:ident, $ty:ty) => {
                $(#[$meta])*
                #[derive(Debug, Default)]
                pub struct $name {
                    inner: std::sync::atomic::$std,
                }

                impl $name {
                    /// Create a new atomic with the given initial value.
                    pub const fn new(v: $ty) -> Self {
                        Self {
                            inner: std::sync::atomic::$std::new(v),
                        }
                    }

                    /// Load the value (yield point).
                    pub fn load(&self, _order: Ordering) -> $ty {
                        hook();
                        self.inner.load(Ordering::SeqCst)
                    }

                    /// Store a value (yield point).
                    pub fn store(&self, v: $ty, _order: Ordering) {
                        hook();
                        self.inner.store(v, Ordering::SeqCst)
                    }

                    /// Swap in a value, returning the previous one
                    /// (yield point).
                    pub fn swap(&self, v: $ty, _order: Ordering) -> $ty {
                        hook();
                        self.inner.swap(v, Ordering::SeqCst)
                    }

                    /// Atomic add, returning the previous value (yield
                    /// point).
                    pub fn fetch_add(&self, v: $ty, _order: Ordering) -> $ty {
                        hook();
                        self.inner.fetch_add(v, Ordering::SeqCst)
                    }

                    /// Atomic subtract, returning the previous value
                    /// (yield point).
                    pub fn fetch_sub(&self, v: $ty, _order: Ordering) -> $ty {
                        hook();
                        self.inner.fetch_sub(v, Ordering::SeqCst)
                    }

                    /// Atomic maximum, returning the previous value
                    /// (yield point).
                    pub fn fetch_max(&self, v: $ty, _order: Ordering) -> $ty {
                        hook();
                        self.inner.fetch_max(v, Ordering::SeqCst)
                    }

                    /// Compare-and-exchange (yield point).
                    pub fn compare_exchange(
                        &self,
                        current: $ty,
                        new: $ty,
                        _success: Ordering,
                        _failure: Ordering,
                    ) -> Result<$ty, $ty> {
                        hook();
                        self.inner
                            .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
                    }

                    /// Consume the atomic and return the value.
                    pub fn into_inner(self) -> $ty {
                        self.inner.into_inner()
                    }
                }
            };
        }

        int_atomic!(
            /// Model-checked drop-in for [`std::sync::atomic::AtomicUsize`].
            AtomicUsize,
            AtomicUsize,
            usize
        );
        int_atomic!(
            /// Model-checked drop-in for [`std::sync::atomic::AtomicU64`].
            AtomicU64,
            AtomicU64,
            u64
        );
        int_atomic!(
            /// Model-checked drop-in for [`std::sync::atomic::AtomicU32`].
            AtomicU32,
            AtomicU32,
            u32
        );

        /// Model-checked drop-in for [`std::sync::atomic::AtomicBool`].
        #[derive(Debug, Default)]
        pub struct AtomicBool {
            inner: std::sync::atomic::AtomicBool,
        }

        impl AtomicBool {
            /// Create a new atomic flag with the given initial value.
            pub const fn new(v: bool) -> Self {
                Self {
                    inner: std::sync::atomic::AtomicBool::new(v),
                }
            }

            /// Load the flag (yield point).
            pub fn load(&self, _order: Ordering) -> bool {
                hook();
                self.inner.load(Ordering::SeqCst)
            }

            /// Store the flag (yield point).
            pub fn store(&self, v: bool, _order: Ordering) {
                hook();
                self.inner.store(v, Ordering::SeqCst)
            }

            /// Swap the flag, returning the previous value (yield point).
            pub fn swap(&self, v: bool, _order: Ordering) -> bool {
                hook();
                self.inner.swap(v, Ordering::SeqCst)
            }

            /// Compare-and-exchange on the flag (yield point).
            pub fn compare_exchange(
                &self,
                current: bool,
                new: bool,
                _success: Ordering,
                _failure: Ordering,
            ) -> Result<bool, bool> {
                hook();
                self.inner
                    .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
            }

            /// Consume the atomic and return the value.
            pub fn into_inner(self) -> bool {
                self.inner.into_inner()
            }
        }
    }

    /// Model-checked drop-in for [`std::sync::Mutex`]: acquisition spins
    /// on `try_lock` with the holder tracked by the scheduler, so
    /// contention becomes explicit blocked/wake transitions the explorer
    /// can reorder.
    #[derive(Debug)]
    pub struct Mutex<T> {
        inner: std::sync::Mutex<T>,
        key: usize,
    }

    impl<T> Mutex<T> {
        /// Create a new mutex guarding `t`.
        pub fn new(t: T) -> Self {
            Self {
                inner: std::sync::Mutex::new(t),
                key: fresh_key(),
            }
        }

        /// Acquire the lock (yield point; blocks in the scheduler when
        /// contended).
        pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
            if let Some((exec, me)) = with_current(|e, me| (e.clone(), me)) {
                loop {
                    exec.yield_now(me);
                    match self.inner.try_lock() {
                        Ok(g) => {
                            return Ok(MutexGuard {
                                inner: Some(g),
                                lock: self,
                            })
                        }
                        Err(std::sync::TryLockError::Poisoned(p)) => {
                            return Err(PoisonError::new(MutexGuard {
                                inner: Some(p.into_inner()),
                                lock: self,
                            }))
                        }
                        Err(std::sync::TryLockError::WouldBlock) => exec.block_on(me, self.key),
                    }
                }
            } else {
                match self.inner.lock() {
                    Ok(g) => Ok(MutexGuard {
                        inner: Some(g),
                        lock: self,
                    }),
                    Err(p) => Err(PoisonError::new(MutexGuard {
                        inner: Some(p.into_inner()),
                        lock: self,
                    })),
                }
            }
        }

        /// Consume the mutex and return the protected value.
        pub fn into_inner(self) -> LockResult<T> {
            self.inner.into_inner()
        }

        /// Mutable access without locking (requires `&mut self`).
        pub fn get_mut(&mut self) -> LockResult<&mut T> {
            self.inner.get_mut()
        }
    }

    /// Guard returned by [`Mutex::lock`]; wakes scheduler-blocked
    /// waiters on drop.
    pub struct MutexGuard<'a, T> {
        inner: Option<std::sync::MutexGuard<'a, T>>,
        lock: &'a Mutex<T>,
    }

    impl<T> Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            // INVARIANT: inner is Some for any live guard; only Drop and wait() take it
            self.inner.as_ref().expect("guard taken")
        }
    }

    impl<T> DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            // INVARIANT: inner is Some for any live guard; only Drop and wait() take it
            self.inner.as_mut().expect("guard taken")
        }
    }

    impl<T> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            if let Some(g) = self.inner.take() {
                drop(g);
                let _ = with_current(|e, _| e.wake(self.lock.key));
            }
        }
    }

    /// Model-checked drop-in for [`std::sync::Condvar`]. In a model,
    /// `wait` atomically registers the waiter *before* releasing the
    /// mutex (the scheduler token makes the pair indivisible), and
    /// `wait_timeout` never times out — a notification that can be
    /// missed therefore shows up as a deadlock, not a silent timeout.
    #[derive(Debug, Default)]
    pub struct Condvar {
        inner: std::sync::Condvar,
        key: usize,
    }

    impl Condvar {
        /// Create a new condition variable.
        pub fn new() -> Self {
            Self {
                inner: std::sync::Condvar::new(),
                key: fresh_key(),
            }
        }

        /// Release the guard and block until notified, then reacquire.
        pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
            if let Some((exec, me)) = with_current(|e, me| (e.clone(), me)) {
                let lock = guard.lock;
                exec.block_mark(me, self.key);
                drop(guard); // releases the mutex and wakes its waiters
                exec.block_parked(me);
                lock.lock()
            } else {
                self.std_wait(guard)
            }
        }

        /// Like [`Condvar::wait`]; in a model the timeout is ignored
        /// (never fires) so lost wakeups surface as deadlocks.
        pub fn wait_timeout<'a, T>(
            &self,
            guard: MutexGuard<'a, T>,
            dur: Duration,
        ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
            if with_current(|_, _| ()).is_some() {
                match self.wait(guard) {
                    Ok(g) => Ok((g, WaitTimeoutResult(false))),
                    Err(p) => {
                        let g = p.into_inner();
                        Err(PoisonError::new((g, WaitTimeoutResult(false))))
                    }
                }
            } else {
                let mut guard = guard;
                // INVARIANT: a live guard holds its std guard; wait() is the only other taker
                let std_g = guard.inner.take().expect("guard taken");
                let lock = guard.lock;
                drop(guard); // inner already taken: no unlock, no wake
                match self.inner.wait_timeout(std_g, dur) {
                    Ok((g, t)) => Ok((
                        MutexGuard {
                            inner: Some(g),
                            lock,
                        },
                        WaitTimeoutResult(t.timed_out()),
                    )),
                    Err(p) => {
                        let (g, t) = p.into_inner();
                        Err(PoisonError::new((
                            MutexGuard {
                                inner: Some(g),
                                lock,
                            },
                            WaitTimeoutResult(t.timed_out()),
                        )))
                    }
                }
            }
        }

        fn std_wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
            // INVARIANT: a live guard holds its std guard; wait() is the only other taker
            let std_g = guard.inner.take().expect("guard taken");
            let lock = guard.lock;
            drop(guard);
            match self.inner.wait(std_g) {
                Ok(g) => Ok(MutexGuard {
                    inner: Some(g),
                    lock,
                }),
                Err(p) => Err(PoisonError::new(MutexGuard {
                    inner: Some(p.into_inner()),
                    lock,
                })),
            }
        }

        /// Wake every waiter (deterministic in a model: all become
        /// runnable, the explorer decides the order).
        pub fn notify_all(&self) {
            self.inner.notify_all();
            let _ = with_current(|e, _| e.wake(self.key));
        }

        /// Wake one waiter (the lowest-id blocked thread in a model).
        pub fn notify_one(&self) {
            self.inner.notify_one();
            let _ = with_current(|e, _| e.wake_one(self.key));
        }
    }

    /// Result of [`Condvar::wait_timeout`]; in a model it never reports
    /// a timeout.
    #[derive(Debug, Clone, Copy)]
    pub struct WaitTimeoutResult(bool);

    impl WaitTimeoutResult {
        /// `true` if the wait ended by timing out rather than by a
        /// notification.
        pub fn timed_out(&self) -> bool {
            self.0
        }
    }

    /// Model-checked drop-in for [`std::sync::RwLock`] (readers
    /// preferred: a reader only blocks while a writer holds the lock).
    #[derive(Debug)]
    pub struct RwLock<T> {
        inner: std::sync::RwLock<T>,
        key: usize,
    }

    impl<T> RwLock<T> {
        /// Create a new reader-writer lock guarding `t`.
        pub fn new(t: T) -> Self {
            Self {
                inner: std::sync::RwLock::new(t),
                key: fresh_key(),
            }
        }

        /// Acquire shared read access (yield point).
        pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
            if let Some((exec, me)) = with_current(|e, me| (e.clone(), me)) {
                loop {
                    exec.yield_now(me);
                    match self.inner.try_read() {
                        Ok(g) => {
                            return Ok(RwLockReadGuard {
                                inner: Some(g),
                                lock: self,
                            })
                        }
                        Err(std::sync::TryLockError::Poisoned(p)) => {
                            return Err(PoisonError::new(RwLockReadGuard {
                                inner: Some(p.into_inner()),
                                lock: self,
                            }))
                        }
                        Err(std::sync::TryLockError::WouldBlock) => exec.block_on(me, self.key),
                    }
                }
            } else {
                match self.inner.read() {
                    Ok(g) => Ok(RwLockReadGuard {
                        inner: Some(g),
                        lock: self,
                    }),
                    Err(p) => Err(PoisonError::new(RwLockReadGuard {
                        inner: Some(p.into_inner()),
                        lock: self,
                    })),
                }
            }
        }

        /// Acquire exclusive write access (yield point).
        pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
            if let Some((exec, me)) = with_current(|e, me| (e.clone(), me)) {
                loop {
                    exec.yield_now(me);
                    match self.inner.try_write() {
                        Ok(g) => {
                            return Ok(RwLockWriteGuard {
                                inner: Some(g),
                                lock: self,
                            })
                        }
                        Err(std::sync::TryLockError::Poisoned(p)) => {
                            return Err(PoisonError::new(RwLockWriteGuard {
                                inner: Some(p.into_inner()),
                                lock: self,
                            }))
                        }
                        Err(std::sync::TryLockError::WouldBlock) => exec.block_on(me, self.key),
                    }
                }
            } else {
                match self.inner.write() {
                    Ok(g) => Ok(RwLockWriteGuard {
                        inner: Some(g),
                        lock: self,
                    }),
                    Err(p) => Err(PoisonError::new(RwLockWriteGuard {
                        inner: Some(p.into_inner()),
                        lock: self,
                    })),
                }
            }
        }

        /// Consume the lock and return the protected value.
        pub fn into_inner(self) -> LockResult<T> {
            self.inner.into_inner()
        }
    }

    /// Shared guard from [`RwLock::read`]; wakes waiters on drop.
    pub struct RwLockReadGuard<'a, T> {
        inner: Option<std::sync::RwLockReadGuard<'a, T>>,
        lock: &'a RwLock<T>,
    }

    impl<T> Deref for RwLockReadGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            // INVARIANT: inner is Some for any live guard; only Drop takes it
            self.inner.as_ref().expect("guard taken")
        }
    }

    impl<T> Drop for RwLockReadGuard<'_, T> {
        fn drop(&mut self) {
            if let Some(g) = self.inner.take() {
                drop(g);
                let _ = with_current(|e, _| e.wake(self.lock.key));
            }
        }
    }

    /// Exclusive guard from [`RwLock::write`]; wakes waiters on drop.
    pub struct RwLockWriteGuard<'a, T> {
        inner: Option<std::sync::RwLockWriteGuard<'a, T>>,
        lock: &'a RwLock<T>,
    }

    impl<T> Deref for RwLockWriteGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            // INVARIANT: inner is Some for any live guard; only Drop takes it
            self.inner.as_ref().expect("guard taken")
        }
    }

    impl<T> DerefMut for RwLockWriteGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            // INVARIANT: inner is Some for any live guard; only Drop takes it
            self.inner.as_mut().expect("guard taken")
        }
    }

    impl<T> Drop for RwLockWriteGuard<'_, T> {
        fn drop(&mut self) {
            if let Some(g) = self.inner.take() {
                drop(g);
                let _ = with_current(|e, _| e.wake(self.lock.key));
            }
        }
    }

    /// Model-checked drop-in for [`std::sync::Barrier`], implemented as
    /// a generation counter on the scheduler's block/wake primitives.
    #[derive(Debug)]
    pub struct Barrier {
        inner: std::sync::Barrier,
        state: std::sync::Mutex<(usize, u64)>, // (arrived, generation)
        n: usize,
        key: usize,
    }

    impl Barrier {
        /// A barrier for `n` threads.
        pub fn new(n: usize) -> Self {
            Self {
                inner: std::sync::Barrier::new(n),
                state: std::sync::Mutex::new((0, 0)),
                n,
                key: fresh_key(),
            }
        }

        /// Arrive and wait for the other `n - 1` threads (yield point).
        pub fn wait(&self) -> BarrierWaitResult {
            if let Some((exec, me)) = with_current(|e, me| (e.clone(), me)) {
                exec.yield_now(me);
                let gen_at_arrival = {
                    let mut s = self.state.lock().unwrap_or_else(|p| p.into_inner());
                    s.0 += 1;
                    if s.0 == self.n {
                        s.0 = 0;
                        s.1 += 1;
                        drop(s);
                        exec.wake(self.key);
                        return BarrierWaitResult(true);
                    }
                    s.1
                };
                loop {
                    {
                        let s = self.state.lock().unwrap_or_else(|p| p.into_inner());
                        if s.1 > gen_at_arrival {
                            break;
                        }
                    }
                    exec.block_on(me, self.key);
                }
                BarrierWaitResult(false)
            } else {
                BarrierWaitResult(self.inner.wait().is_leader())
            }
        }
    }

    /// Result of [`Barrier::wait`]: exactly one arriving thread is the
    /// leader per generation.
    #[derive(Debug, Clone, Copy)]
    pub struct BarrierWaitResult(bool);

    impl BarrierWaitResult {
        /// `true` for the single thread that completed the barrier.
        pub fn is_leader(&self) -> bool {
            self.0
        }
    }

    /// Model-checked drop-in for [`std::sync::mpsc`]: sends wake the
    /// scheduler-blocked receiver, dropping the last sender wakes it for
    /// disconnect, and `recv_timeout` never times out in a model (an
    /// undelivered frame is a deadlock, not a timeout).
    pub mod mpsc {
        use crate::sched::{fresh_key, with_current};
        pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};
        use std::time::Duration;

        /// Create an unbounded channel.
        pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
            let (tx, rx) = std::sync::mpsc::channel();
            let key = fresh_key();
            (
                Sender {
                    inner: Some(tx),
                    key,
                },
                Receiver { inner: rx, key },
            )
        }

        /// Sending half; wakes the modeled receiver on send and (via
        /// `Drop` of the last clone) on disconnect.
        #[derive(Debug)]
        pub struct Sender<T> {
            inner: Option<std::sync::mpsc::Sender<T>>,
            key: usize,
        }

        impl<T> Clone for Sender<T> {
            fn clone(&self) -> Self {
                Self {
                    inner: self.inner.clone(),
                    key: self.key,
                }
            }
        }

        impl<T> Drop for Sender<T> {
            fn drop(&mut self) {
                // Drop the inner sender *first* so a woken receiver
                // observes the disconnect, then wake it.
                drop(self.inner.take());
                let _ = with_current(|e, _| e.wake(self.key));
            }
        }

        impl<T> Sender<T> {
            /// Send a value (yield point in a model).
            pub fn send(&self, t: T) -> Result<(), SendError<T>> {
                if let Some((exec, me)) = with_current(|e, me| (e.clone(), me)) {
                    exec.yield_now(me);
                    // INVARIANT: inner is Some until Drop; no send can follow Drop
                    let r = self.inner.as_ref().expect("sender taken").send(t);
                    exec.wake(self.key);
                    r
                } else {
                    // INVARIANT: inner is Some until Drop; no send can follow Drop
                    self.inner.as_ref().expect("sender taken").send(t)
                }
            }
        }

        /// Receiving half.
        #[derive(Debug)]
        pub struct Receiver<T> {
            inner: std::sync::mpsc::Receiver<T>,
            key: usize,
        }

        impl<T> Receiver<T> {
            /// Receive, blocking in the scheduler until a frame or
            /// disconnect arrives.
            pub fn recv(&self) -> Result<T, RecvError> {
                if let Some((exec, me)) = with_current(|e, me| (e.clone(), me)) {
                    exec.yield_now(me);
                    loop {
                        match self.inner.try_recv() {
                            Ok(v) => return Ok(v),
                            Err(TryRecvError::Disconnected) => return Err(RecvError),
                            Err(TryRecvError::Empty) => exec.block_on(me, self.key),
                        }
                    }
                } else {
                    self.inner.recv()
                }
            }

            /// Non-blocking receive (yield point in a model).
            pub fn try_recv(&self) -> Result<T, TryRecvError> {
                if let Some((exec, me)) = with_current(|e, me| (e.clone(), me)) {
                    exec.yield_now(me);
                }
                self.inner.try_recv()
            }

            /// Receive with a timeout. In a model the timeout is ignored
            /// (never fires): a frame that never arrives is reported as
            /// a deadlock rather than masked by the timeout path.
            pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
                if with_current(|_, _| ()).is_some() {
                    match self.recv() {
                        Ok(v) => Ok(v),
                        Err(RecvError) => Err(RecvTimeoutError::Disconnected),
                    }
                } else {
                    self.inner.recv_timeout(timeout)
                }
            }
        }
    }
}
