//! Thread spawning for models.
//!
//! In a normal build this module re-exports `std::thread`. Under
//! `--cfg srsf_model`, [`spawn`] called from inside a model run
//! registers the new thread with the cooperative scheduler (see
//! [`crate::sched`]) so its steps participate in schedule exploration;
//! called outside a model run it falls back to `std::thread::spawn`.

#[cfg(not(srsf_model))]
pub use std::thread::*;

#[cfg(srsf_model)]
pub use model::{sleep, spawn, yield_now, JoinHandle};

#[cfg(srsf_model)]
mod model {
    use crate::sched::{enter_thread, panic_msg, thread_key, with_current, ModelAbort};
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::{Arc, Mutex};
    use std::time::Duration;

    type Slot<T> = Arc<Mutex<Option<std::thread::Result<T>>>>;

    enum Inner<T> {
        Model { tid: usize, slot: Slot<T> },
        Std(std::thread::JoinHandle<T>),
    }

    /// Handle to a spawned thread; joining a model thread blocks in the
    /// scheduler.
    pub struct JoinHandle<T>(Inner<T>);

    /// Spawn a thread. Inside a model run the thread is registered with
    /// the scheduler (deterministic id, participates in exploration);
    /// otherwise this is `std::thread::spawn`.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let Some((exec, _)) = with_current(|e, me| (e.clone(), me)) else {
            return JoinHandle(Inner::Std(std::thread::spawn(f)));
        };
        let tid = exec.register();
        let slot: Slot<T> = Arc::new(Mutex::new(None));
        let (exec2, slot2) = (exec.clone(), slot.clone());
        let handle = std::thread::Builder::new()
            .name(format!("srsf-model-{tid}"))
            .spawn(move || {
                enter_thread(&exec2, tid, || {
                    exec2.acquire_initial(tid);
                    match catch_unwind(AssertUnwindSafe(f)) {
                        Ok(v) => {
                            *slot2.lock().unwrap_or_else(|p| p.into_inner()) = Some(Ok(v));
                            exec2.exit_normal(tid);
                        }
                        Err(p) if p.downcast_ref::<ModelAbort>().is_some() => {
                            exec2.exit_aborted(tid);
                        }
                        Err(p) => {
                            let msg = panic_msg(&*p);
                            *slot2.lock().unwrap_or_else(|q| q.into_inner()) = Some(Err(p));
                            exec2.exit_panicked(tid, msg);
                        }
                    }
                })
            })
            // INVARIANT: OS-thread spawn fails only on resource exhaustion; the
            // model cannot continue without the registered thread
            .expect("spawn model thread");
        exec.add_handle(handle);
        JoinHandle(Inner::Model { tid, slot })
    }

    impl<T> JoinHandle<T> {
        /// Wait for the thread to finish and return its result.
        pub fn join(self) -> std::thread::Result<T> {
            match self.0 {
                Inner::Std(h) => h.join(),
                Inner::Model { tid, slot } => {
                    let (exec, me) = with_current(|e, me| (e.clone(), me))
                        // INVARIANT: model JoinHandles never escape the model closure, so
                        // join always runs on a registered model thread
                        .expect("model JoinHandle joined outside its model run");
                    while !exec.is_finished(tid) {
                        exec.block_on(me, thread_key(tid));
                    }
                    match slot.lock().unwrap_or_else(|p| p.into_inner()).take() {
                        Some(r) => r,
                        // The thread was unwound by a run abort; follow it.
                        None => std::panic::panic_any(ModelAbort),
                    }
                }
            }
        }
    }

    /// Yield: inside a model this is a *spin-loop* hint — the scheduler
    /// runs some other thread if one can run (a polling loop cannot make
    /// progress until someone else does). Outside a model it is a plain
    /// `std::thread::yield_now`.
    pub fn yield_now() {
        if let Some((exec, me)) = with_current(|e, me| (e.clone(), me)) {
            exec.yield_spin(me);
        } else {
            std::thread::yield_now();
        }
    }

    /// Sleeping has no meaning in a model (there is no time): it is a
    /// plain yield point. Outside a model it is `std::thread::sleep`.
    pub fn sleep(dur: Duration) {
        if with_current(|_, _| ()).is_some() {
            yield_now();
        } else {
            std::thread::sleep(dur);
        }
    }
}
